// opus_daemon — the long-running serving process (serve/daemon.h).
//
// Builds a cluster over a synthetic or CSV catalog, starts the OpuS
// control loop and the sharded serving engine, and answers opus_client
// commands on a Unix socket until `opus_client SOCKET shutdown`.
//
// Usage:
//   opus_daemon --socket PATH [--catalog FILE | --files N [--file-mb MB]]
//               [--users N] [--workers N] [--cache-mb MB] [--threads N]
//               [--policy NAME] [--update-interval N] [--window N]
//               [--tax-threads N] [--delta-drift F] [--delta-util-tol F]
//               [--delta-auto-off F]
//               [--agg-clusters N] [--agg-threshold F] [--agg-auto N]
//               [--stats-out FILE] [--stats-interval-ms N]
//               [--flight-out FILE] [--flight-capacity N]
//               [--p99-threshold-ms F]
//
//   --socket PATH       Unix socket to serve on (default /tmp/opus.sock)
//   --catalog FILE      CSV of name,size_bytes rows (no header)
//   --files N           synthetic catalog of N files (default 32)
//   --file-mb MB        synthetic file size (default 8)
//   --users N           registered user slots (default 4)
//   --workers N         cache workers / engine shards (default 4)
//   --cache-mb MB       cluster memory (default 64)
//   --threads N         engine probe threads (default: worker count)
//   --policy NAME       initial allocator (default opus)
//   --update-interval N accesses between reallocations (default 200)
//   --window N          learning-window length in accesses (default 800)
//   --tax-threads N     threads for OpuS leave-one-out tax solves
//   --delta-drift F     OpuS delta windows: per-user L1 drift beyond which
//                       a user is re-solved; 0 disables (default 0)
//   --delta-util-tol F  relative star-utility move beyond which a stale
//                       user's tax is re-solved anyway (default 0.01)
//   --delta-auto-off F  drifted-user fraction in [0,1] at which the delta
//                       machinery is skipped for the window (1 = never,
//                       the default)
//   --agg-clusters N    OpuS user aggregation: max clusters; 0 disables
//                       (default 0)
//   --agg-threshold F   L1 distance beyond which a user founds a new
//                       cluster (default 0.5)
//   --agg-auto N        drift-adaptive cluster auto-tuning with minimum
//                       cluster count N (>= 1): the per-window budget grows
//                       with observed drift and degrades to per-user solves
//                       at high drift; combine with --agg-clusters to cap
//                       the budget
//   --stats-out FILE    append one JSON line per window: windowed metric
//                       delta + latency quantiles (default: off)
//   --stats-interval-ms N  stats window length (default 1000; resolution
//                       is the daemon's ~100ms poll tick)
//   --flight-out FILE   flight-recorder dump target for `dump` and for
//                       automatic anomaly dumps (default opus_flight.json)
//   --flight-capacity N flight-recorder ring capacity (default 4096)
//   --p99-threshold-ms F  trip an automatic flight dump once when a sampled
//                       read p99 exceeds F ms (default 0 = disarmed)
//   --tcp-port N        also listen on TCP 127.0.0.1:N (0 = kernel-assigned;
//                       default: Unix socket only)
//   --mutex-reads       disable the optimistic seqlock read path: every
//                       unmanaged probe takes the shard mutex (A/B baseline)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/csv.h"
#include "cache/file_meta.h"
#include "common/strings.h"
#include "flag_parse.h"
#include "serve/daemon.h"

namespace {

using opus::tools::ParseFlagDouble;
using opus::tools::ParseFlagU64;

std::string ReadFile(const std::string& path, bool* ok) {
  std::ifstream in(path);
  *ok = static_cast<bool>(in);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  opus::serve::DaemonConfig config;
  config.cluster.num_workers = 4;
  config.cluster.num_users = 4;
  config.cluster.cache_capacity_bytes = 64 * opus::cache::kMiB;
  config.master.update_interval = 200;
  config.master.learning_window = 800;
  config.engine.threads = 0;  // 0 = default to the worker count below
  std::string catalog_path;
  std::uint64_t files = 32, file_mb = 8;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = i + 1 < argc ? argv[i + 1] : nullptr;
    const auto next = [&]() { return i + 1 < argc ? argv[++i] : nullptr; };
    std::uint64_t u = 0;
    double d = 0.0;
    if (arg == "--socket" && (v = next())) {
      config.socket_path = v;
    } else if (arg == "--catalog" && (v = next())) {
      catalog_path = v;
    } else if (arg == "--files" && (v = next())) {
      if (!ParseFlagU64("--files", v, 1, &files)) return 2;
    } else if (arg == "--file-mb" && (v = next())) {
      if (!ParseFlagU64("--file-mb", v, 1, &file_mb)) return 2;
    } else if (arg == "--users" && (v = next())) {
      if (!ParseFlagU64("--users", v, 1, &u)) return 2;
      config.cluster.num_users = static_cast<std::uint32_t>(u);
    } else if (arg == "--workers" && (v = next())) {
      if (!ParseFlagU64("--workers", v, 1, &u) || u > (1u << 20)) {
        std::fprintf(stderr, "--workers out of range\n");
        return 2;
      }
      config.cluster.num_workers = static_cast<std::uint32_t>(u);
    } else if (arg == "--cache-mb" && (v = next())) {
      if (!ParseFlagDouble("--cache-mb", v, 0.0, &d)) return 2;
      config.cluster.cache_capacity_bytes =
          static_cast<std::uint64_t>(d * static_cast<double>(opus::cache::kMiB));
    } else if (arg == "--threads" && (v = next())) {
      if (!ParseFlagU64("--threads", v, 1, &u) || u > 1024) {
        std::fprintf(stderr, "--threads out of range\n");
        return 2;
      }
      config.engine.threads = static_cast<unsigned>(u);
    } else if (arg == "--policy" && (v = next())) {
      config.policy = v;
    } else if (arg == "--update-interval" && (v = next())) {
      if (!ParseFlagU64("--update-interval", v, 1, &u)) return 2;
      config.master.update_interval = u;
    } else if (arg == "--window" && (v = next())) {
      if (!ParseFlagU64("--window", v, 1, &u)) return 2;
      config.master.learning_window = u;
    } else if (arg == "--tax-threads" && (v = next())) {
      if (!ParseFlagU64("--tax-threads", v, 0, &u) || u > 1024) {
        std::fprintf(stderr, "--tax-threads out of range\n");
        return 2;
      }
      config.tax_threads = static_cast<unsigned>(u);
    } else if (arg == "--delta-drift" && (v = next())) {
      if (!ParseFlagDouble("--delta-drift", v, 0.0, &d)) return 2;
      config.opus_tuning.delta.drift_threshold = d;
    } else if (arg == "--delta-util-tol" && (v = next())) {
      if (!ParseFlagDouble("--delta-util-tol", v, 0.0, &d)) return 2;
      config.opus_tuning.delta.utility_rel_tolerance = d;
    } else if (arg == "--delta-auto-off" && (v = next())) {
      if (!ParseFlagDouble("--delta-auto-off", v, 0.0, &d)) return 2;
      if (d > 1.0) {
        std::fprintf(stderr, "--delta-auto-off must be in [0, 1]\n");
        return 2;
      }
      config.opus_tuning.delta.auto_off_drift_fraction = d;
    } else if (arg == "--agg-auto" && (v = next())) {
      if (!ParseFlagU64("--agg-auto", v, 1, &u)) return 2;
      config.opus_tuning.aggregation.auto_tune = true;
      config.opus_tuning.aggregation.min_clusters =
          static_cast<std::size_t>(u);
    } else if (arg == "--agg-clusters" && (v = next())) {
      if (!ParseFlagU64("--agg-clusters", v, 0, &u)) return 2;
      config.opus_tuning.aggregation.max_clusters =
          static_cast<std::size_t>(u);
    } else if (arg == "--agg-threshold" && (v = next())) {
      if (!ParseFlagDouble("--agg-threshold", v, 0.0, &d)) return 2;
      config.opus_tuning.aggregation.similarity_threshold = d;
    } else if (arg == "--stats-out" && (v = next())) {
      config.stats_path = v;
    } else if (arg == "--stats-interval-ms" && (v = next())) {
      if (!ParseFlagU64("--stats-interval-ms", v, 0, &u)) return 2;
      config.stats_interval_ms = u;
    } else if (arg == "--flight-out" && (v = next())) {
      config.flight_path = v;
    } else if (arg == "--flight-capacity" && (v = next())) {
      if (!ParseFlagU64("--flight-capacity", v, 1, &u)) return 2;
      config.flight_capacity = static_cast<std::size_t>(u);
    } else if (arg == "--p99-threshold-ms" && (v = next())) {
      if (!ParseFlagDouble("--p99-threshold-ms", v, 0.0, &d)) return 2;
      config.p99_threshold_ms = d;
    } else if (arg == "--tcp-port" && (v = next())) {
      if (!ParseFlagU64("--tcp-port", v, 0, &u) || u > 65535) {
        std::fprintf(stderr, "--tcp-port out of range\n");
        return 2;
      }
      config.tcp_port = static_cast<int>(u);
    } else if (arg == "--mutex-reads") {
      config.engine.optimistic_unmanaged = false;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (config.engine.threads == 0) {
    config.engine.threads = config.cluster.num_workers;
  }

  opus::cache::Catalog catalog(1 * opus::cache::kMiB);
  if (!catalog_path.empty()) {
    bool ok = false;
    const std::string text = ReadFile(catalog_path, &ok);
    if (!ok) {
      std::fprintf(stderr, "cannot read %s\n", catalog_path.c_str());
      return 2;
    }
    for (const auto& row :
         opus::analysis::ParseCsv(text, /*has_header=*/false).rows) {
      std::uint64_t size_bytes = 0;
      if (row.size() != 2 || !opus::ParseU64(row[1], &size_bytes)) {
        std::fprintf(stderr, "catalog rows must be name,size_bytes\n");
        return 2;
      }
      catalog.Register(row[0], size_bytes);
    }
  } else {
    for (std::uint64_t f = 0; f < files; ++f) {
      catalog.Register("file" + std::to_string(f),
                       file_mb * opus::cache::kMiB);
    }
  }
  if (catalog.size() == 0) {
    std::fprintf(stderr, "empty catalog\n");
    return 2;
  }

  const std::string socket_path = config.socket_path;
  const int tcp_port = config.tcp_port;
  opus::serve::Daemon daemon(std::move(config), std::move(catalog));
  std::fprintf(stderr, "opus_daemon: %zu files, %u workers, serving on %s\n",
               daemon.cluster().catalog().size(),
               daemon.cluster().config().num_workers, socket_path.c_str());
  if (tcp_port >= 0) {
    std::fprintf(stderr, "opus_daemon: tcp 127.0.0.1:%d\n", tcp_port);
  }
  return daemon.Run();
}
