// opus_cli — command-line cache allocation.
//
// Reads a preference matrix from CSV (one row per user, one column per
// file; raw scores are normalized per row), runs the selected policy, and
// prints the allocation, per-user utilities, taxes and blocking — or emits
// machine-readable CSV with --csv.
//
// Usage:
//   opus_cli --prefs prefs.csv --capacity 2.0 [--policy opus]
//            [--sizes sizes.csv] [--threads N] [--csv] [--compare]
//            [--explain] [--simulate N [--workers W] [--cache-mb MB]
//            [--seed S]] [--metrics-out FILE] [--trace-out FILE]
//
//   --prefs FILE      required; CSV of non-negative scores (no header)
//   --capacity C      required; cache capacity in file units (or size
//                     units when --sizes is given)
//   --policy NAME     opus | fairride | maxmin | isolated | vcg-classic |
//                     optimal (default: opus)
//   --sizes FILE      optional; single CSV row of per-file sizes
//   --threads N       worker threads for OpuS's N leave-one-out tax solves
//                     (default: all hardware threads; 1 = serial; results
//                     are bit-identical at any thread count)
//   --agg-auto N      OpuS drift-adaptive user aggregation with minimum
//                     cluster count N (>= 1); coarse clusters at low drift,
//                     per-user solves at high drift
//   --delta-auto-off F  drifted-user fraction in [0,1] at which OpuS's
//                     delta machinery is skipped for a window (1 = never,
//                     the default)
//   --csv             machine-readable output (allocation + per-user rows)
//   --compare         run every policy and print a utility comparison
//   --explain         audit report of the OpuS decision (taxes, break-even,
//                     blocking, sharing verdict)
//   --simulate N      replay an N-event synthetic trace (truthful users
//                     drawn from the normalized preference rows) through a
//                     managed cluster instead of a one-shot allocation
//   --workers W       simulate: cluster worker count (default 4)
//   --cache-mb MB     simulate: cluster memory (default: capacity * 8 MiB)
//   --seed S          simulate: trace RNG seed (default 42)
//   --metrics-out F   simulate: write the end-of-run metrics registry
//                     (format from extension: .json/.csv/other=text);
//                     byte-identical across reruns and --threads
//   --trace-out F     simulate: write the structured event trace
//   --spans-out F     simulate: write the causal span trace (.json =
//                     Perfetto/Chrome trace_event format, loadable at
//                     ui.perfetto.dev; .csv/other = flat rows); same
//                     determinism bar as --metrics-out
//   --span-sample-n N simulate: record every Nth root span per root name
//                     (1 = all, 0 = disable span tracing; default 1)
//   --audit-out F     simulate: write the per-window fairness audit report
//                     (.json, or text otherwise); see opus_inspect audit
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/csv.h"
#include "analysis/report.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/explain.h"
#include "core/policy_factory.h"
#include "core/utility.h"
#include "obs/event_trace.h"
#include "obs/fairness_audit.h"
#include "obs/metrics.h"
#include "obs/span_trace.h"
#include "flag_parse.h"
#include "sim/simulator.h"
#include "workload/trace.h"

namespace {

using namespace opus;

using opus::tools::ParseFlagDouble;
using opus::tools::ParseFlagU64;

std::string ReadFile(const std::string& path, bool* ok) {
  std::ifstream in(path);
  if (!in) {
    *ok = false;
    return "";
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *ok = true;
  return ss.str();
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --prefs FILE --capacity C [--policy NAME] "
               "[--sizes FILE] [--threads N] [--agg-auto N] "
               "[--delta-auto-off F] [--csv] [--compare] "
               "[--explain] [--simulate N] [--workers W] [--cache-mb MB] "
               "[--seed S] [--metrics-out FILE] [--trace-out FILE] "
               "[--spans-out FILE] [--span-sample-n N] [--audit-out FILE]\n",
               argv0);
  return 2;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string prefs_path, sizes_path, policy = "opus";
  std::string metrics_out, trace_out, spans_out, audit_out;
  double capacity = -1.0, cache_mb = 0.0;
  unsigned threads = opus::HardwareThreads();
  std::size_t simulate = 0, workers = 4;
  std::uint64_t seed = 42, span_sample_n = 1;
  bool csv_output = false, compare = false, explain = false;
  OpusPolicyTuning tuning;

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto next = [&]() -> const char* {
      return (a + 1 < argc) ? argv[++a] : nullptr;
    };
    if (arg == "--prefs") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      prefs_path = v;
    } else if (arg == "--capacity") {
      if (!ParseFlagDouble(arg, next(), 0.0, &capacity)) return Usage(argv[0]);
    } else if (arg == "--policy") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      policy = v;
    } else if (arg == "--sizes") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      sizes_path = v;
    } else if (arg == "--threads") {
      std::uint64_t v = 0;
      if (!ParseFlagU64(arg, next(), 1, &v) || v > 1024) return Usage(argv[0]);
      threads = static_cast<unsigned>(v);
    } else if (arg == "--agg-auto") {
      std::uint64_t v = 0;
      if (!ParseFlagU64(arg, next(), 1, &v)) return Usage(argv[0]);
      tuning.aggregation.auto_tune = true;
      tuning.aggregation.min_clusters = static_cast<std::size_t>(v);
    } else if (arg == "--delta-auto-off") {
      double v = 0.0;
      if (!ParseFlagDouble(arg, next(), 0.0, &v) || v > 1.0) {
        std::fprintf(stderr, "--delta-auto-off must be in [0, 1]\n");
        return 2;
      }
      tuning.delta.auto_off_drift_fraction = v;
    } else if (arg == "--simulate") {
      std::uint64_t v = 0;
      if (!ParseFlagU64(arg, next(), 1, &v)) return Usage(argv[0]);
      simulate = static_cast<std::size_t>(v);
    } else if (arg == "--workers") {
      std::uint64_t v = 0;
      if (!ParseFlagU64(arg, next(), 1, &v) || v > (1u << 20)) {
        return Usage(argv[0]);
      }
      workers = static_cast<std::size_t>(v);
    } else if (arg == "--cache-mb") {
      if (!ParseFlagDouble(arg, next(), 0.0, &cache_mb)) return Usage(argv[0]);
    } else if (arg == "--seed") {
      if (!ParseFlagU64(arg, next(), 0, &seed)) return Usage(argv[0]);
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      metrics_out = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      trace_out = v;
    } else if (arg == "--spans-out") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      spans_out = v;
    } else if (arg == "--span-sample-n") {
      if (!ParseFlagU64(arg, next(), 0, &span_sample_n)) return Usage(argv[0]);
    } else if (arg == "--audit-out") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      audit_out = v;
    } else if (arg == "--csv") {
      csv_output = true;
    } else if (arg == "--compare") {
      compare = true;
    } else if (arg == "--explain") {
      explain = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (prefs_path.empty() || capacity < 0.0) return Usage(argv[0]);

  bool ok = false;
  const std::string prefs_text = ReadFile(prefs_path, &ok);
  if (!ok) {
    std::fprintf(stderr, "cannot read %s\n", prefs_path.c_str());
    return 1;
  }
  const auto prefs_csv = analysis::ParseCsv(prefs_text, /*has_header=*/false);
  const auto raw = analysis::ToNumeric(prefs_csv);
  if (raw.empty()) {
    std::fprintf(stderr, "empty preference matrix\n");
    return 1;
  }
  for (const auto& row : raw) {
    if (row.size() != raw[0].size()) {
      std::fprintf(stderr, "ragged preference matrix\n");
      return 1;
    }
  }

  CachingProblem problem =
      CachingProblem::FromRaw(Matrix::FromRows(raw), capacity);
  if (!sizes_path.empty()) {
    const std::string sizes_text = ReadFile(sizes_path, &ok);
    if (!ok) {
      std::fprintf(stderr, "cannot read %s\n", sizes_path.c_str());
      return 1;
    }
    const auto sizes =
        analysis::ToNumeric(analysis::ParseCsv(sizes_text, false));
    if (sizes.size() != 1 || sizes[0].size() != problem.num_files()) {
      std::fprintf(stderr, "--sizes must be one row of %zu values\n",
                   problem.num_files());
      return 1;
    }
    problem.file_sizes = sizes[0];
  }

  if (explain) {
    std::fputs(ExplainOpusDecision(problem).c_str(), stdout);
    return 0;
  }

  if (simulate > 0) {
    const auto allocator = MakeAllocatorByName(policy, threads, &tuning);
    if (!allocator) {
      std::fprintf(stderr, "unknown policy: %s\n", policy.c_str());
      return 1;
    }
    // One catalog file per preference column; sizes in units of one 8 MiB
    // mean file so --capacity keeps its meaning (file units).
    const double mean_file_bytes = 8.0 * 1024 * 1024;
    cache::Catalog catalog(1 * cache::kMiB);
    for (std::size_t j = 0; j < problem.num_files(); ++j) {
      catalog.Register("file-" + std::to_string(j),
                       static_cast<std::uint64_t>(problem.FileSize(j) *
                                                  mean_file_bytes));
    }
    sim::ManagedSimConfig cfg;
    cfg.cluster.num_workers = static_cast<std::uint32_t>(workers);
    cfg.cluster.num_users =
        static_cast<std::uint32_t>(problem.num_users());
    cfg.cluster.cache_capacity_bytes =
        cache_mb > 0.0
            ? static_cast<std::uint64_t>(cache_mb * 1024 * 1024)
            : static_cast<std::uint64_t>(capacity * mean_file_bytes);
    cfg.cluster.span_sample_every = span_sample_n;
    cfg.master.update_interval = std::max<std::size_t>(50, simulate / 10);
    cfg.master.learning_window = 4 * cfg.master.update_interval;

    Rng rng(seed);
    const workload::Trace trace = workload::GenerateTrace(
        workload::TruthfulSpecs(problem.preferences), simulate, rng);
    const sim::SimulationResult result =
        sim::RunManagedSimulation(cfg, *allocator, catalog, trace);

    analysis::Table table("simulation results");
    table.AddHeader({"metric", "value"});
    table.AddRow({"mean effective hit ratio",
                  FormatDouble(result.average_hit_ratio, 4)});
    for (std::size_t i = 0; i < result.per_user_hit_ratio.size(); ++i) {
      table.AddRow({"user " + std::to_string(i) + " hit ratio",
                    FormatDouble(result.per_user_hit_ratio[i], 4)});
    }
    table.AddRow({"reallocations", std::to_string(result.reallocations)});
    table.AddRow({"disk bytes read", FormatBytes(result.disk_bytes_read)});
    table.Print();

    if (!metrics_out.empty() &&
        !WriteFile(metrics_out, result.metrics.Export(
                                    obs::FormatForPath(metrics_out)))) {
      return 1;
    }
    if (!trace_out.empty() &&
        !WriteFile(trace_out,
                   obs::ExportEvents(result.trace_events,
                                     obs::FormatForPath(trace_out)))) {
      return 1;
    }
    if (!spans_out.empty() &&
        !WriteFile(spans_out, obs::ExportSpans(result.spans,
                                               obs::FormatForPath(spans_out)))) {
      return 1;
    }
    if (!audit_out.empty() &&
        !WriteFile(audit_out,
                   obs::FormatForPath(audit_out) == obs::ExportFormat::kJson
                       ? result.audit.ToJson()
                       : result.audit.ToText())) {
      return 1;
    }
    return 0;
  }
  if (!metrics_out.empty() || !trace_out.empty() || !spans_out.empty() ||
      !audit_out.empty()) {
    std::fprintf(stderr,
                 "--metrics-out/--trace-out/--spans-out/--audit-out require "
                 "--simulate\n");
    return Usage(argv[0]);
  }

  if (compare) {
    analysis::Table table("policy comparison");
    std::vector<std::string> header = {"policy"};
    for (std::size_t i = 0; i < problem.num_users(); ++i) {
      header.push_back("user" + std::to_string(i));
    }
    header.push_back("shared?");
    table.AddHeader(std::move(header));
    for (const char* name : {"isolated", "maxmin", "fairride", "optimal",
                             "vcg-classic", "opus"}) {
      const auto alloc = MakeAllocatorByName(name, threads, &tuning);
      const auto r = alloc->Allocate(problem);
      const auto utils = EvaluateUtilities(r, problem.preferences);
      std::vector<std::string> row = {name};
      for (double u : utils) row.push_back(FormatDouble(u, 4));
      row.push_back(r.shared ? "yes" : "no");
      table.AddRow(std::move(row));
    }
    table.Print();
    return 0;
  }

  const auto allocator = MakeAllocatorByName(policy, threads, &tuning);
  if (!allocator) {
    std::fprintf(stderr, "unknown policy: %s\n", policy.c_str());
    return 1;
  }
  const auto result = allocator->Allocate(problem);
  const auto utils = EvaluateUtilities(result, problem.preferences);

  if (csv_output) {
    analysis::CsvTable alloc_table;
    alloc_table.header = {"file", "allocation"};
    for (std::size_t j = 0; j < problem.num_files(); ++j) {
      alloc_table.rows.push_back(
          {std::to_string(j), FormatDouble(result.file_alloc[j], 6)});
    }
    std::fputs(analysis::WriteCsv(alloc_table).c_str(), stdout);
    analysis::CsvTable user_table;
    user_table.header = {"user", "utility", "tax", "blocking"};
    for (std::size_t i = 0; i < problem.num_users(); ++i) {
      user_table.rows.push_back({std::to_string(i),
                                 FormatDouble(utils[i], 6),
                                 FormatDouble(result.taxes[i], 6),
                                 FormatDouble(result.blocking[i], 6)});
    }
    std::fputs(analysis::WriteCsv(user_table).c_str(), stdout);
    return 0;
  }

  std::printf("policy: %s (%s)\n", result.policy.c_str(),
              result.shared ? "sharing" : "isolated");
  analysis::Table alloc_table("file allocation");
  alloc_table.AddHeader({"file", "size", "cached fraction"});
  for (std::size_t j = 0; j < problem.num_files(); ++j) {
    alloc_table.AddRow({std::to_string(j),
                        FormatDouble(problem.FileSize(j), 2),
                        FormatDouble(result.file_alloc[j], 4)});
  }
  alloc_table.Print();
  analysis::Table user_table("per-user outcome");
  user_table.AddHeader({"user", "utility", "tax", "blocking"});
  for (std::size_t i = 0; i < problem.num_users(); ++i) {
    user_table.AddRow({std::to_string(i), FormatDouble(utils[i], 4),
                       FormatDouble(result.taxes[i], 4),
                       FormatDouble(result.blocking[i], 4)});
  }
  user_table.Print();
  return 0;
}
