#!/usr/bin/env bash
# Daemon smoke test: start opus_daemon, drive the client command surface
# (serve, gen, status, metrics, audit, live reconfiguration, user churn,
# error replies) plus the runtime-telemetry surface (Prometheus scrape +
# exposition lint, --stats-out JSONL, watch mode, flight-recorder dump and
# anomaly auto-trip), then shut it down and check it exited cleanly.
#
# Usage: daemon_smoke.sh DAEMON_BIN CLIENT_BIN SOCKET_PATH [INSPECT_BIN]
#
# Artifacts (Prometheus scrape, stats JSONL, flight dumps) are left next to
# SOCKET_PATH so CI can upload them.
set -u

DAEMON="$1"
CLIENT="$2"
SOCKET="$3"
INSPECT="${4:-}"

ART_DIR="$(dirname "$SOCKET")"
STATS="$ART_DIR/daemon_smoke_stats.jsonl"
FLIGHT="$ART_DIR/daemon_smoke_flight.json"
DUMP="$ART_DIR/daemon_smoke_dump.json"
PROM="$ART_DIR/daemon_smoke_prom.txt"

WATCH_TXT="$ART_DIR/daemon_smoke_watch.txt"
# Loopback TCP listener on a PID-derived port (kernel-assigned port 0 is
# covered by DaemonPipeliningTest; a script needs a knowable number).
TCP_PORT=$((20000 + $$ % 20000))

rm -f "$SOCKET" "$STATS" "$FLIGHT" "$DUMP" "$PROM" "$WATCH_TXT"
# The tiny --p99-threshold-ms arms the anomaly trigger so the first timed
# batch trips an automatic flight dump (any sampled read is slower than
# a nanosecond).
"$DAEMON" --socket "$SOCKET" --tcp-port "$TCP_PORT" \
  --files 12 --file-mb 2 --users 3 --workers 4 \
  --cache-mb 12 --threads 4 --update-interval 50 --window 200 \
  --stats-out "$STATS" --stats-interval-ms 200 \
  --flight-out "$FLIGHT" --p99-threshold-ms 0.000001 &
DAEMON_PID=$!
trap 'kill "$DAEMON_PID" 2>/dev/null' EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

# Wait for the socket to come up.
for _ in $(seq 1 100); do
  if "$CLIENT" "$SOCKET" ping >/dev/null 2>&1; then break; fi
  sleep 0.1
done
"$CLIENT" "$SOCKET" ping | grep -q "ok pong" || fail "ping"

# Serve traffic: enough generated accesses to cross reallocation
# boundaries, plus a direct read.
"$CLIENT" "$SOCKET" gen 300 7 | grep -q "^ok events=300" || fail "gen"
"$CLIENT" "$SOCKET" serve 0 3 | grep -q "^ok mem_bytes=" || fail "serve"
"$CLIENT" "$SOCKET" status | grep -q "managed=1" || fail "status managed"
"$CLIENT" "$SOCKET" status | grep -q "events_served=301" || fail "status events"
"$CLIENT" "$SOCKET" metrics json | grep -q 'cluster.read.latency_sec' || fail "metrics json"
"$CLIENT" "$SOCKET" audit | grep -q "total_violations" || fail "audit"

# Status surfaces the solver reuse counters and the audit verdict.
"$CLIENT" "$SOCKET" status | grep -q "solver_solves=" || fail "status solver_solves"
"$CLIENT" "$SOCKET" status | grep -q "audit_clean=1" || fail "status audit_clean"

# The tiny p99 threshold must have tripped an automatic flight dump by now.
"$CLIENT" "$SOCKET" status | grep -Eq "flight_trips=[1-9]" || fail "anomaly trip"
[ -s "$FLIGHT" ] || fail "anomaly flight dump missing"

# Prometheus scrape: strip the "ok" reply line, then lint the exposition —
# every series needs HELP+TYPE for its family and no series repeats.
"$CLIENT" "$SOCKET" metrics prom | tail -n +2 > "$PROM"
grep -q '^opus_cluster_read_latency_sec_bucket{le=' "$PROM" || fail "prom histogram"
grep -q '^opus_serve_read_managed_ns{quantile="0.99"}' "$PROM" || fail "prom summary"
grep -q '^opus_master_solve_wall_sec' "$PROM" || fail "prom volatile metric"
awk '
  /^# HELP / { help[$3] = 1; next }
  /^# TYPE / { type[$3] = 1; next }
  /^#/ || NF == 0 { next }
  {
    if (seen[$0]++) { print "duplicate series: " $0; bad = 1 }
    name = $0; sub(/[{ ].*$/, "", name)
    fam = name; sub(/_(bucket|sum|count)$/, "", fam)
    if (!(fam in help) && !(name in help)) { print "no HELP: " name; bad = 1 }
    if (!(fam in type) && !(name in type)) { print "no TYPE: " name; bad = 1 }
  }
  END { exit bad }
' "$PROM" || fail "prom exposition lint"

# Watch mode: three polls over one connection.
WATCH_OUT=$("$CLIENT" "$SOCKET" watch 50 3 status) || fail "watch exit"
[ "$(printf '%s\n' "$WATCH_OUT" | grep -c '^-- watch ')" -eq 3 ] || fail "watch poll count"

# Watch rate derivation: traffic between polls surfaces as a "-- rates --"
# block with per-second deltas for the counters that moved.
"$CLIENT" "$SOCKET" watch 300 5 status > "$WATCH_TXT" &
WATCH_PID=$!
sleep 0.35
"$CLIENT" "$SOCKET" gen 200 13 >/dev/null || fail "gen during watch"
wait "$WATCH_PID" || fail "watch rates exit"
grep -q -- "-- rates --" "$WATCH_TXT" || fail "watch rates block"
grep -Eq 'events_served=\+[0-9]' "$WATCH_TXT" || fail "watch rates events/sec"

# TCP transport: the same command surface over the loopback listener.
"$CLIENT" --connect "127.0.0.1:$TCP_PORT" ping | grep -q "ok pong" || fail "tcp ping"
"$CLIENT" --connect "127.0.0.1:$TCP_PORT" status | grep -q "managed=" || fail "tcp status"

# Manual flight dump, loadable by opus_inspect spans (Perfetto round-trip).
"$CLIENT" "$SOCKET" dump "$DUMP" | grep -q "^ok dumped=" || fail "dump"
grep -q '"name": *"daemon.request"' "$DUMP" || fail "dump request span"
grep -q 'flight.latency.serve.read' "$DUMP" || fail "dump latency spans"
if [ -n "$INSPECT" ]; then
  "$INSPECT" spans "$DUMP" --top 5 >/dev/null || fail "opus_inspect spans on dump"
fi

# Stats appender: at least one windowed JSON line with metrics + latency.
for _ in $(seq 1 30); do
  [ -s "$STATS" ] && break
  sleep 0.1
done
[ -s "$STATS" ] || fail "stats file empty"
head -1 "$STATS" | grep -q '"seq":0' || fail "stats seq"
head -1 "$STATS" | grep -q '"metrics":{' || fail "stats metrics delta"
head -1 "$STATS" | grep -q '"latency":\[' || fail "stats latency"

# Live reconfiguration: policy swap, capacity override, user churn.
"$CLIENT" "$SOCKET" reconfig policy fairride | grep -q "ok policy=fairride" || fail "reconfig policy"
"$CLIENT" "$SOCKET" reconfig capacity 4.5 | grep -q "ok capacity_units=4.5" || fail "reconfig capacity"
"$CLIENT" "$SOCKET" dropuser 2 | grep -q "ok dropped=2" || fail "dropuser"
"$CLIENT" "$SOCKET" serve 2 0 && fail "serve for dropped user must fail"
"$CLIENT" "$SOCKET" adduser | grep -q "ok id=2" || fail "adduser"
"$CLIENT" "$SOCKET" gen 100 11 | grep -q "^ok events=100" || fail "gen after reconfig"

# Error replies exit non-zero and never crash the daemon.
"$CLIENT" "$SOCKET" serve 99 0 && fail "out-of-range user must fail"
"$CLIENT" "$SOCKET" gen 10x 7 && fail "garbage count must fail"
"$CLIENT" "$SOCKET" reconfig capacity -1 && fail "negative capacity must fail"
"$CLIENT" "$SOCKET" metrics yaml && fail "unknown metrics format must fail"
"$CLIENT" "$SOCKET" dump a b && fail "dump with two args must fail"
"$CLIENT" "$SOCKET" bogus && fail "unknown command must fail"
"$CLIENT" "$SOCKET" ping | grep -q "ok pong" || fail "daemon died after errors"

"$CLIENT" "$SOCKET" shutdown | grep -q "ok bye" || fail "shutdown"
wait "$DAEMON_PID"
RC=$?
trap - EXIT
[ "$RC" -eq 0 ] || fail "daemon exit code $RC"
[ ! -e "$SOCKET" ] || fail "socket not unlinked on shutdown"
echo "daemon smoke OK"
