#!/usr/bin/env bash
# Daemon smoke test: start opus_daemon, drive the client command surface
# (serve, gen, status, metrics, audit, live reconfiguration, user churn,
# error replies), then shut it down and check it exited cleanly.
#
# Usage: daemon_smoke.sh DAEMON_BIN CLIENT_BIN SOCKET_PATH
set -u

DAEMON="$1"
CLIENT="$2"
SOCKET="$3"

rm -f "$SOCKET"
"$DAEMON" --socket "$SOCKET" --files 12 --file-mb 2 --users 3 --workers 4 \
  --cache-mb 12 --threads 4 --update-interval 50 --window 200 &
DAEMON_PID=$!
trap 'kill "$DAEMON_PID" 2>/dev/null' EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

# Wait for the socket to come up.
for _ in $(seq 1 100); do
  if "$CLIENT" "$SOCKET" ping >/dev/null 2>&1; then break; fi
  sleep 0.1
done
"$CLIENT" "$SOCKET" ping | grep -q "ok pong" || fail "ping"

# Serve traffic: enough generated accesses to cross reallocation
# boundaries, plus a direct read.
"$CLIENT" "$SOCKET" gen 300 7 | grep -q "^ok events=300" || fail "gen"
"$CLIENT" "$SOCKET" serve 0 3 | grep -q "^ok mem_bytes=" || fail "serve"
"$CLIENT" "$SOCKET" status | grep -q "managed=1" || fail "status managed"
"$CLIENT" "$SOCKET" status | grep -q "events_served=301" || fail "status events"
"$CLIENT" "$SOCKET" metrics json | grep -q 'cluster.read.latency_sec' || fail "metrics json"
"$CLIENT" "$SOCKET" audit | grep -q "total_violations" || fail "audit"

# Live reconfiguration: policy swap, capacity override, user churn.
"$CLIENT" "$SOCKET" reconfig policy fairride | grep -q "ok policy=fairride" || fail "reconfig policy"
"$CLIENT" "$SOCKET" reconfig capacity 4.5 | grep -q "ok capacity_units=4.5" || fail "reconfig capacity"
"$CLIENT" "$SOCKET" dropuser 2 | grep -q "ok dropped=2" || fail "dropuser"
"$CLIENT" "$SOCKET" serve 2 0 && fail "serve for dropped user must fail"
"$CLIENT" "$SOCKET" adduser | grep -q "ok id=2" || fail "adduser"
"$CLIENT" "$SOCKET" gen 100 11 | grep -q "^ok events=100" || fail "gen after reconfig"

# Error replies exit non-zero and never crash the daemon.
"$CLIENT" "$SOCKET" serve 99 0 && fail "out-of-range user must fail"
"$CLIENT" "$SOCKET" gen 10x 7 && fail "garbage count must fail"
"$CLIENT" "$SOCKET" reconfig capacity -1 && fail "negative capacity must fail"
"$CLIENT" "$SOCKET" bogus && fail "unknown command must fail"
"$CLIENT" "$SOCKET" ping | grep -q "ok pong" || fail "daemon died after errors"

"$CLIENT" "$SOCKET" shutdown | grep -q "ok bye" || fail "shutdown"
wait "$DAEMON_PID"
RC=$?
trap - EXIT
[ "$RC" -eq 0 ] || fail "daemon exit code $RC"
[ ! -e "$SOCKET" ] || fail "socket not unlinked on shutdown"
echo "daemon smoke OK"
