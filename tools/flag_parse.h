// Strict flag-value parsing shared by the CLI tools.
//
// The atoi/atof/strtoull family silently accepts trailing garbage ("8x" →
// 8) and out-of-range input wraps or is UB, so a malformed flag value must
// be a diagnostic plus usage error, never a silently different run. These
// wrap the strict common/strings parsers with a stderr diagnostic naming
// the flag.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/strings.h"

namespace opus::tools {

inline bool ParseFlagU64(const std::string& flag, const char* v,
                         std::uint64_t min_value, std::uint64_t* out) {
  if (!v || !opus::ParseU64(v, out) || *out < min_value) {
    std::fprintf(stderr, "%s: expected an integer >= %llu, got '%s'\n",
                 flag.c_str(), static_cast<unsigned long long>(min_value),
                 v ? v : "(missing)");
    return false;
  }
  return true;
}

inline bool ParseFlagDouble(const std::string& flag, const char* v,
                            double min_value, double* out) {
  if (!v || !opus::ParseFiniteDouble(v, out) || *out < min_value) {
    std::fprintf(stderr, "%s: expected a finite number >= %g, got '%s'\n",
                 flag.c_str(), min_value, v ? v : "(missing)");
    return false;
  }
  return true;
}

}  // namespace opus::tools
