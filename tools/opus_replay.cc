// opus_replay — replay an access trace through the cache simulator.
//
// Reads a trace CSV (workload/trace_io.h format), a catalog CSV (one row
// per file: name,size_bytes), and replays the trace under the selected
// policy, printing per-user effective hit ratios, latency percentiles and
// cache activity. With --generate, synthesizes a Zipf trace instead and
// optionally writes it out for later replay.
//
// Usage:
//   opus_replay --catalog files.csv --trace trace.csv
//               [--policy opus|fairride|maxmin|isolated|optimal|lru|lfu]
//               [--cache-mb 1024] [--workers 5] [--users N]
//               [--update-interval 1000] [--window 4000]
//   opus_replay --catalog files.csv --generate 20000 --users 8
//               [--alpha 1.1] [--seed 42] [--save-trace trace.csv]
//
// --metrics-out FILE / --trace-out FILE additionally write the end-of-run
// metrics registry snapshot and structured event trace (format from the
// file extension: .json/.csv/anything else = text). Exports contain only
// deterministic metrics and are byte-identical across reruns.
//
// --spans-out FILE writes the causal span trace (.json = Perfetto/Chrome
// trace_event format, loadable at ui.perfetto.dev); --span-sample-n N keeps
// every Nth root span per root name (0 disables tracing). --audit-out FILE
// writes the per-window fairness audit report (managed policies only; empty
// report under lru/lfu).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "analysis/csv.h"
#include "analysis/histogram.h"
#include "analysis/report.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/policy_factory.h"
#include "flag_parse.h"
#include "obs/event_trace.h"
#include "obs/fairness_audit.h"
#include "obs/metrics.h"
#include "obs/span_trace.h"
#include "sim/simulator.h"
#include "workload/preference_gen.h"
#include "workload/trace_io.h"

namespace {

using namespace opus;

using opus::tools::ParseFlagDouble;
using opus::tools::ParseFlagU64;

std::string ReadFile(const std::string& path, bool* ok) {
  std::ifstream in(path);
  if (!in) {
    *ok = false;
    return "";
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *ok = true;
  return ss.str();
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --catalog FILE (--trace FILE | --generate N --users N)\n"
      "          [--policy NAME] [--cache-mb MB] [--workers W]\n"
      "          [--alpha A] [--seed S] [--save-trace FILE]\n"
      "          [--update-interval K] [--window W]\n"
      "          [--metrics-out FILE] [--trace-out FILE]\n"
      "          [--spans-out FILE] [--span-sample-n N] [--audit-out FILE]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string catalog_path, trace_path, save_trace_path, policy = "opus";
  std::string metrics_out, trace_out, spans_out, audit_out;
  std::size_t generate = 0, users = 0, workers = 5;
  std::size_t update_interval = 1000, window = 4000;
  double cache_mb = 1024.0, alpha = 1.1;
  std::uint64_t seed = 42, span_sample_n = 1;

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto next = [&]() -> const char* {
      return (a + 1 < argc) ? argv[++a] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--catalog" && (v = next())) {
      catalog_path = v;
    } else if (arg == "--trace" && (v = next())) {
      trace_path = v;
    } else if (arg == "--generate") {
      std::uint64_t n = 0;
      if (!ParseFlagU64(arg, next(), 1, &n)) return Usage(argv[0]);
      generate = static_cast<std::size_t>(n);
    } else if (arg == "--users") {
      std::uint64_t n = 0;
      if (!ParseFlagU64(arg, next(), 1, &n)) return Usage(argv[0]);
      users = static_cast<std::size_t>(n);
    } else if (arg == "--policy" && (v = next())) {
      policy = v;
    } else if (arg == "--cache-mb") {
      if (!ParseFlagDouble(arg, next(), 0.0, &cache_mb)) return Usage(argv[0]);
    } else if (arg == "--workers") {
      std::uint64_t n = 0;
      if (!ParseFlagU64(arg, next(), 1, &n) || n > (1u << 20)) {
        return Usage(argv[0]);
      }
      workers = static_cast<std::size_t>(n);
    } else if (arg == "--alpha") {
      if (!ParseFlagDouble(arg, next(), 0.0, &alpha)) return Usage(argv[0]);
    } else if (arg == "--seed") {
      if (!ParseFlagU64(arg, next(), 0, &seed)) return Usage(argv[0]);
    } else if (arg == "--save-trace" && (v = next())) {
      save_trace_path = v;
    } else if (arg == "--update-interval") {
      std::uint64_t n = 0;
      if (!ParseFlagU64(arg, next(), 1, &n)) return Usage(argv[0]);
      update_interval = static_cast<std::size_t>(n);
    } else if (arg == "--window") {
      std::uint64_t n = 0;
      if (!ParseFlagU64(arg, next(), 1, &n)) return Usage(argv[0]);
      window = static_cast<std::size_t>(n);
    } else if (arg == "--metrics-out" && (v = next())) {
      metrics_out = v;
    } else if (arg == "--trace-out" && (v = next())) {
      trace_out = v;
    } else if (arg == "--spans-out" && (v = next())) {
      spans_out = v;
    } else if (arg == "--span-sample-n") {
      if (!ParseFlagU64(arg, next(), 0, &span_sample_n)) return Usage(argv[0]);
    } else if (arg == "--audit-out" && (v = next())) {
      audit_out = v;
    } else {
      std::fprintf(stderr, "bad argument: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (catalog_path.empty() || (trace_path.empty() && generate == 0)) {
    return Usage(argv[0]);
  }

  // --- catalog ------------------------------------------------------------
  bool ok = false;
  const std::string catalog_text = ReadFile(catalog_path, &ok);
  if (!ok) {
    std::fprintf(stderr, "cannot read %s\n", catalog_path.c_str());
    return 1;
  }
  cache::Catalog catalog(1 * cache::kMiB);
  for (const auto& row :
       analysis::ParseCsv(catalog_text, /*has_header=*/false).rows) {
    std::uint64_t size_bytes = 0;
    if (row.size() != 2 || !ParseU64(row[1], &size_bytes)) {
      std::fprintf(stderr, "catalog rows must be name,size_bytes\n");
      return 1;
    }
    catalog.Register(row[0], size_bytes);
  }
  if (catalog.size() == 0) {
    std::fprintf(stderr, "empty catalog\n");
    return 1;
  }

  // --- trace --------------------------------------------------------------
  workload::Trace trace;
  if (!trace_path.empty()) {
    const std::string trace_text = ReadFile(trace_path, &ok);
    if (!ok) {
      std::fprintf(stderr, "cannot read %s\n", trace_path.c_str());
      return 1;
    }
    auto parsed = workload::DeserializeTrace(trace_text);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "malformed trace: %s\n", trace_path.c_str());
      return 1;
    }
    trace = std::move(*parsed);
    if (users == 0) {
      for (const auto& e : trace.events) {
        users = std::max<std::size_t>(users, e.user + 1);
      }
    }
  } else {
    if (users == 0) {
      std::fprintf(stderr, "--generate requires --users\n");
      return 1;
    }
    workload::ZipfPreferenceConfig pcfg;
    pcfg.num_users = users;
    pcfg.num_files = catalog.size();
    pcfg.alpha = alpha;
    Rng rng(seed);
    const Matrix prefs = workload::GenerateZipfPreferences(pcfg, rng);
    trace = workload::GenerateTrace(workload::TruthfulSpecs(prefs), generate,
                                    rng);
    if (!save_trace_path.empty()) {
      std::ofstream out(save_trace_path);
      out << workload::SerializeTrace(trace);
      std::printf("trace written to %s (%zu events)\n",
                  save_trace_path.c_str(), trace.events.size());
    }
  }
  if (users == 0) {
    std::fprintf(stderr, "no users\n");
    return 1;
  }

  // --- replay --------------------------------------------------------------
  sim::SimulationResult result;
  if (policy == "lru" || policy == "lfu") {
    sim::UnmanagedSimConfig cfg;
    cfg.cluster.num_workers = static_cast<std::uint32_t>(workers);
    cfg.cluster.num_users = static_cast<std::uint32_t>(users);
    cfg.cluster.cache_capacity_bytes =
        static_cast<std::uint64_t>(cache_mb * 1024 * 1024);
    cfg.cluster.eviction_policy = policy;
    cfg.cluster.span_sample_every = span_sample_n;
    result = sim::RunUnmanagedSimulation(cfg, catalog, trace);
  } else {
    const auto allocator = MakeAllocatorByName(policy);
    if (!allocator) {
      std::fprintf(stderr, "unknown policy: %s\n", policy.c_str());
      return 1;
    }
    sim::ManagedSimConfig cfg;
    cfg.cluster.num_workers = static_cast<std::uint32_t>(workers);
    cfg.cluster.num_users = static_cast<std::uint32_t>(users);
    cfg.cluster.cache_capacity_bytes =
        static_cast<std::uint64_t>(cache_mb * 1024 * 1024);
    cfg.cluster.span_sample_every = span_sample_n;
    cfg.master.update_interval = update_interval;
    cfg.master.learning_window = window;
    result = sim::RunManagedSimulation(cfg, *allocator, catalog, trace);
  }

  std::printf("policy=%s events=%zu users=%zu files=%zu cache=%s\n",
              result.policy.c_str(), trace.events.size(), users,
              catalog.size(),
              FormatBytes(static_cast<std::uint64_t>(cache_mb * 1024 * 1024))
                  .c_str());
  analysis::Table table("replay results");
  table.AddHeader({"metric", "value"});
  table.AddRow({"mean effective hit ratio",
                FormatDouble(result.average_hit_ratio, 4)});
  for (std::size_t i = 0; i < result.per_user_hit_ratio.size(); ++i) {
    table.AddRow({"user " + std::to_string(i) + " hit ratio",
                  FormatDouble(result.per_user_hit_ratio[i], 4)});
  }
  table.AddRow({"latency p50 (ms)",
                FormatDouble(1e3 * result.latency_p50_sec, 2)});
  table.AddRow({"latency p99 (ms)",
                FormatDouble(1e3 * result.latency_p99_sec, 2)});
  table.AddRow({"disk bytes read", FormatBytes(result.disk_bytes_read)});
  table.AddRow({"reallocations", std::to_string(result.reallocations)});
  table.AddRow({"evictions", std::to_string(result.evictions)});
  table.Print();

  // Latency distribution sketch (log buckets from 10 us to 100 s).
  analysis::Histogram hist = analysis::Histogram::Logarithmic(1e-5, 100.0, 14);
  hist.Add(result.latency_p50_sec, 50);
  hist.Add(result.latency_p95_sec, 45);
  hist.Add(result.latency_p99_sec, 5);
  std::puts("latency sketch (seconds; mass at p50/p95/p99):");
  std::fputs(hist.Render(30).c_str(), stdout);

  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    out << result.metrics.Export(obs::FormatForPath(metrics_out));
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return 1;
    }
    out << obs::ExportEvents(result.trace_events,
                             obs::FormatForPath(trace_out));
  }
  if (!spans_out.empty()) {
    std::ofstream out(spans_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", spans_out.c_str());
      return 1;
    }
    out << obs::ExportSpans(result.spans, obs::FormatForPath(spans_out));
  }
  if (!audit_out.empty()) {
    std::ofstream out(audit_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", audit_out.c_str());
      return 1;
    }
    out << (obs::FormatForPath(audit_out) == obs::ExportFormat::kJson
                ? result.audit.ToJson()
                : result.audit.ToText());
  }
  return 0;
}
