// opus_inspect — offline inspector for the observability exports.
//
// Subcommands:
//   opus_inspect diff BEFORE AFTER [--json]
//     Loads two metric snapshots (format from extension: .json or text)
//     and prints the per-metric delta AFTER - BEFORE (counters and
//     histogram counts subtract, gauges show the AFTER level) — the
//     "what changed between these two runs/windows" view.
//   opus_inspect spans FILE [--top K]
//     Loads a Perfetto/Chrome trace_event span file (--spans-out) and
//     prints: per-name aggregates (count, logical-tick totals, seconds
//     from latency attrs), the tier.access per-tier breakdown, and the
//     top-K slowest root spans with their child trees.
//   opus_inspect audit FILE [--threshold T]
//     Pretty-prints a fairness audit report (--audit-out). Exit status 1
//     when the report contains more than T violations (default 0) — the CI
//     gate. T must parse as a finite number; garbage is a usage error, it
//     must never silently become 0 and flip the gate.
//
// Exit codes: 0 success / clean audit, 1 audit violations or bad input,
// 2 usage.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "flag_parse.h"
#include "obs/fairness_audit.h"
#include "obs/metrics.h"
#include "obs/span_trace.h"

namespace {

using namespace opus;

std::string ReadFile(const std::string& path, bool* ok) {
  std::ifstream in(path);
  if (!in) {
    *ok = false;
    return "";
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *ok = true;
  return ss.str();
}

int Usage() {
  std::fprintf(stderr,
               "usage: opus_inspect diff BEFORE AFTER [--json]\n"
               "       opus_inspect spans FILE [--top K]\n"
               "       opus_inspect audit FILE [--threshold T]\n");
  return 2;
}

bool LoadSnapshot(const std::string& path, obs::MetricsSnapshot* out) {
  bool ok = false;
  const std::string text = ReadFile(path, &ok);
  if (!ok) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  const bool parsed = obs::FormatForPath(path) == obs::ExportFormat::kJson
                          ? obs::ParseMetricsJson(text, out)
                          : obs::ParseMetricsText(text, out);
  if (!parsed) {
    std::fprintf(stderr, "malformed metrics snapshot: %s\n", path.c_str());
  }
  return parsed;
}

int RunDiff(const std::vector<std::string>& args) {
  bool json = false;
  std::vector<std::string> paths;
  for (const auto& a : args) {
    if (a == "--json") {
      json = true;
    } else {
      paths.push_back(a);
    }
  }
  if (paths.size() != 2) return Usage();
  obs::MetricsSnapshot before, after;
  if (!LoadSnapshot(paths[0], &before) || !LoadSnapshot(paths[1], &after)) {
    return 1;
  }
  const obs::MetricsSnapshot delta = obs::DiffSnapshots(before, after);
  std::fputs(json ? delta.ToJson().c_str() : delta.ToText().c_str(), stdout);
  return 0;
}

// Seconds carried by a span's latency attributes (the simulation's virtual
// clock; logical ticks only order events). A malformed attribute value sets
// *bad and reports 0.0 so callers can fail the run instead of silently
// ranking the span as instantaneous.
double SpanSeconds(const obs::SpanRecord& s, bool* bad) {
  for (const auto& [k, v] : s.attrs) {
    if (k == "latency_sec" || k == "delay_sec") {
      double seconds = 0.0;
      if (!ParseFiniteDouble(v, &seconds)) {
        std::fprintf(stderr, "span id=%llu: malformed %s attr '%s'\n",
                     static_cast<unsigned long long>(s.id), k.c_str(),
                     v.c_str());
        if (bad) *bad = true;
        return 0.0;
      }
      return seconds;
    }
  }
  return 0.0;
}

std::string SpanAttr(const obs::SpanRecord& s, const std::string& key) {
  for (const auto& [k, v] : s.attrs) {
    if (k == key) return v;
  }
  return "";
}

void PrintTree(const obs::SpanRecord& s,
               const std::map<std::uint64_t, std::vector<std::size_t>>& kids,
               const std::vector<obs::SpanRecord>& spans, int depth,
               bool* bad) {
  std::printf("%*s%s [%llu,%llu)", 2 * depth + 4, "", s.name.c_str(),
              static_cast<unsigned long long>(s.begin_tick),
              static_cast<unsigned long long>(s.end_tick));
  const double sec = SpanSeconds(s, bad);
  if (sec > 0.0) std::printf(" %.6fs", sec);
  std::printf("\n");
  const auto it = kids.find(s.id);
  if (it == kids.end()) return;
  for (std::size_t idx : it->second) {
    PrintTree(spans[idx], kids, spans, depth + 1, bad);
  }
}

int RunSpans(const std::vector<std::string>& args) {
  std::size_t top = 5;
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--top") {
      std::uint64_t k = 0;
      const char* v = i + 1 < args.size() ? args[++i].c_str() : nullptr;
      if (!tools::ParseFlagU64("--top", v, 0, &k)) return Usage();
      top = static_cast<std::size_t>(k);
    } else {
      paths.push_back(args[i]);
    }
  }
  if (paths.size() != 1) return Usage();
  bool ok = false;
  const std::string text = ReadFile(paths[0], &ok);
  if (!ok) {
    std::fprintf(stderr, "cannot read %s\n", paths[0].c_str());
    return 1;
  }
  const auto spans = obs::ParseSpansPerfettoJson(text);
  if (!spans.has_value()) {
    std::fprintf(stderr, "malformed span file: %s\n", paths[0].c_str());
    return 1;
  }

  // Per-name aggregates.
  struct NameAgg {
    std::uint64_t count = 0;
    std::uint64_t ticks = 0;
    double seconds = 0.0;
  };
  std::map<std::string, NameAgg> by_name;
  std::map<std::string, std::uint64_t> tier_counts;
  std::map<std::uint64_t, std::vector<std::size_t>> kids;
  std::vector<std::size_t> roots;
  bool bad_attr = false;
  for (std::size_t i = 0; i < spans->size(); ++i) {
    const obs::SpanRecord& s = (*spans)[i];
    NameAgg& agg = by_name[s.name];
    ++agg.count;
    agg.ticks += s.end_tick - s.begin_tick;
    agg.seconds += SpanSeconds(s, &bad_attr);
    if (s.name == "tier.access") {
      const std::string tier = SpanAttr(s, "tier");
      if (!tier.empty()) ++tier_counts[tier];
    }
    if (s.parent == 0) {
      roots.push_back(i);
    } else {
      kids[s.parent].push_back(i);
    }
  }

  std::printf("spans: %zu (%zu roots)\n\n", spans->size(), roots.size());
  std::printf("%-28s %10s %12s %14s\n", "name", "count", "ticks", "seconds");
  for (const auto& [name, agg] : by_name) {
    std::printf("%-28s %10llu %12llu %14.6f\n", name.c_str(),
                static_cast<unsigned long long>(agg.count),
                static_cast<unsigned long long>(agg.ticks), agg.seconds);
  }

  if (!tier_counts.empty()) {
    std::printf("\ntier.access breakdown:\n");
    for (const auto& [tier, count] : tier_counts) {
      std::printf("  %-8s %llu\n", tier.c_str(),
                  static_cast<unsigned long long>(count));
    }
  }

  // Top-K slowest roots: ranked by attr seconds when present (the
  // simulation's virtual latency), logical-tick duration as tiebreak.
  std::sort(roots.begin(), roots.end(), [&](std::size_t a, std::size_t b) {
    const obs::SpanRecord& sa = (*spans)[a];
    const obs::SpanRecord& sb = (*spans)[b];
    const double da = SpanSeconds(sa, &bad_attr);
    const double db = SpanSeconds(sb, &bad_attr);
    if (da != db) return da > db;
    const std::uint64_t ta = sa.end_tick - sa.begin_tick;
    const std::uint64_t tb = sb.end_tick - sb.begin_tick;
    if (ta != tb) return ta > tb;
    return sa.id < sb.id;
  });
  const std::size_t show = std::min(top, roots.size());
  if (show > 0) std::printf("\ntop %zu slowest paths:\n", show);
  for (std::size_t k = 0; k < show; ++k) {
    const obs::SpanRecord& s = (*spans)[roots[k]];
    std::printf("  #%zu id=%llu %s", k + 1,
                static_cast<unsigned long long>(s.id), s.name.c_str());
    for (const auto& [key, value] : s.attrs) {
      std::printf(" %s=%s", key.c_str(), value.c_str());
    }
    std::printf("\n");
    const auto it = kids.find(s.id);
    if (it != kids.end()) {
      for (std::size_t idx : it->second) {
        PrintTree((*spans)[idx], kids, *spans, 0, &bad_attr);
      }
    }
  }
  if (bad_attr) {
    std::fprintf(stderr, "malformed latency attrs in %s\n", paths[0].c_str());
    return 1;
  }
  return 0;
}

int RunAudit(const std::vector<std::string>& args) {
  double threshold = 0.0;
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--threshold") {
      const char* v = i + 1 < args.size() ? args[++i].c_str() : nullptr;
      if (!tools::ParseFlagDouble("--threshold", v, 0.0, &threshold)) {
        return Usage();
      }
    } else {
      paths.push_back(args[i]);
    }
  }
  if (paths.size() != 1) return Usage();
  bool ok = false;
  const std::string text = ReadFile(paths[0], &ok);
  if (!ok) {
    std::fprintf(stderr, "cannot read %s\n", paths[0].c_str());
    return 1;
  }
  obs::AuditReport report;
  if (!obs::ParseAuditJson(text, &report)) {
    std::fprintf(stderr, "malformed audit report: %s\n", paths[0].c_str());
    return 1;
  }
  std::fputs(report.ToText().c_str(), stdout);
  return static_cast<double>(report.total_violations) > threshold ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "diff") return RunDiff(args);
  if (command == "spans") return RunSpans(args);
  if (command == "audit") return RunAudit(args);
  return Usage();
}
