// opus_client — one-shot (and polling) client for opus_daemon.
//
// Joins its arguments into a single command, sends it as one frame over
// the daemon's Unix socket (or TCP with --connect), and prints the reply.
// Exit 0 on an "ok" reply, 1 on an "err" reply or daemon-side close, 2 on
// usage/connect failure.
//
// `watch` keeps one connection open and re-sends the command COUNT times,
// INTERVAL_MS apart (COUNT 0 = until the daemon goes away), printing each
// reply under a "-- watch N --" header — the poor man's live dashboard for
// `status` / `metrics prom`. From the second sample on it also derives
// per-interval rates for every numeric value that changed ("-- rates --"
// block, key=+DELTA/s), so counters read as requests/sec or evictions/sec
// without post-processing.
//
// Usage:
//   opus_client SOCKET COMMAND [ARGS...]
//   opus_client --connect HOST:PORT COMMAND [ARGS...]
//   opus_client SOCKET watch INTERVAL_MS COUNT COMMAND [ARGS...]
//   opus_client /tmp/opus.sock status
//   opus_client /tmp/opus.sock serve 0 3
//   opus_client --connect 127.0.0.1:7070 reconfig policy fairride
//   opus_client /tmp/opus.sock watch 500 10 metrics prom
#include <cstdio>
#include <map>
#include <string>

#include <time.h>
#include <unistd.h>

#include "common/strings.h"
#include "serve/protocol.h"
#include "serve/watch.h"

namespace {

std::string JoinArgs(char** argv, int begin, int end) {
  std::string command;
  for (int i = begin; i < end; ++i) {
    if (!command.empty()) command += ' ';
    command += argv[i];
  }
  return command;
}

void SleepMs(std::uint64_t ms) {
  timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>((ms % 1000) * 1000000ull);
  ::nanosleep(&ts, nullptr);
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s SOCKET COMMAND [ARGS...]\n"
      "       %s --connect HOST:PORT COMMAND [ARGS...]\n"
      "       %s SOCKET watch INTERVAL_MS COUNT COMMAND [ARGS...]\n"
      "       %s --connect HOST:PORT watch INTERVAL_MS COUNT COMMAND ...\n",
      argv0, argv0, argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int arg = 1;
  bool tcp = false;
  if (arg < argc && std::string(argv[arg]) == "--connect") {
    tcp = true;
    ++arg;
  }
  if (argc < arg + 2) return Usage(argv[0]);
  const std::string target = argv[arg++];

  std::uint64_t interval_ms = 0, count = 1;
  const bool watch = std::string(argv[arg]) == "watch";
  if (watch) {
    if (argc < arg + 4) return Usage(argv[0]);
    if (!opus::ParseU64(argv[arg + 1], &interval_ms)) {
      std::fprintf(stderr, "bad watch interval '%s'\n", argv[arg + 1]);
      return 2;
    }
    if (!opus::ParseU64(argv[arg + 2], &count)) {
      std::fprintf(stderr, "bad watch count '%s'\n", argv[arg + 2]);
      return 2;
    }
    arg += 3;
  }
  const std::string command = JoinArgs(argv, arg, argc);

  const int fd = tcp ? opus::serve::DialTcp(target)
                     : opus::serve::DialUnix(target);
  if (fd < 0) {
    std::fprintf(stderr, "cannot connect to %s\n", target.c_str());
    return 2;
  }
  int exit_code = 0;
  std::map<std::string, double> prev_samples;
  for (std::uint64_t i = 0; count == 0 || i < count; ++i) {
    if (i > 0) SleepMs(interval_ms);
    std::string reply;
    const bool ok = opus::serve::WriteFrame(fd, command) &&
                    opus::serve::ReadFrame(fd, &reply);
    if (!ok) {
      std::fprintf(stderr, "daemon closed the connection\n");
      exit_code = 1;
      break;
    }
    if (watch) std::printf("-- watch %llu --\n", (unsigned long long)i);
    std::printf("%s\n", reply.c_str());
    if (watch && reply.rfind("ok", 0) == 0) {
      std::map<std::string, double> samples =
          opus::serve::ParseNumericSamples(reply);
      if (i > 0) {
        const std::string rates = opus::serve::FormatRates(
            prev_samples, samples,
            static_cast<double>(interval_ms) / 1000.0);
        if (!rates.empty()) {
          std::printf("-- rates --\n%s\n", rates.c_str());
        }
      }
      prev_samples = std::move(samples);
    }
    std::fflush(stdout);
    if (reply.rfind("ok", 0) != 0) exit_code = 1;
  }
  ::close(fd);
  return exit_code;
}
