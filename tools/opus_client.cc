// opus_client — one-shot client for opus_daemon.
//
// Joins its arguments into a single command, sends it as one frame over
// the daemon's Unix socket, and prints the reply. Exit 0 on an "ok" reply,
// 1 on an "err" reply or daemon-side close, 2 on usage/connect failure.
//
// Usage:
//   opus_client SOCKET COMMAND [ARGS...]
//   opus_client /tmp/opus.sock status
//   opus_client /tmp/opus.sock serve 0 3
//   opus_client /tmp/opus.sock reconfig policy fairride
#include <cstdio>
#include <string>

#include <unistd.h>

#include "serve/protocol.h"

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s SOCKET COMMAND [ARGS...]\n", argv[0]);
    return 2;
  }
  std::string command;
  for (int i = 2; i < argc; ++i) {
    if (!command.empty()) command += ' ';
    command += argv[i];
  }
  const int fd = opus::serve::DialUnix(argv[1]);
  if (fd < 0) {
    std::fprintf(stderr, "cannot connect to %s\n", argv[1]);
    return 2;
  }
  std::string reply;
  const bool ok = opus::serve::WriteFrame(fd, command) &&
                  opus::serve::ReadFrame(fd, &reply);
  ::close(fd);
  if (!ok) {
    std::fprintf(stderr, "daemon closed the connection\n");
    return 1;
  }
  std::printf("%s\n", reply.c_str());
  return reply.rfind("ok", 0) == 0 ? 0 : 1;
}
