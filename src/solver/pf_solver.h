// Proportional-fairness solver for the cache allocation problem (Eq. (2)):
//
//   maximize   sum_i w_i * log( sum_j p_ij * a_j )
//   subject to 0 <= a_j <= 1,  sum_j a_j <= C.
//
// The paper solves this with CVXPY; we ship a native projected-gradient
// method with Barzilai-Borwein steps, Armijo backtracking, and a
// projected-gradient optimality residual. The solver supports warm starts,
// which matter because OpuS's VCG tax computation solves N+1 closely related
// instances (full problem plus each leave-one-out problem).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/matrix.h"

namespace opus {

struct PfOptions {
  // Stop when the unit-step projected-gradient residual drops below this.
  double tolerance = 1e-9;
  // Hard iteration cap (safety net; typical solves need a few hundred).
  int max_iterations = 50000;
  // Check the residual every `check_interval` iterations.
  int check_interval = 10;
};

struct PfSolution {
  std::vector<double> allocation;  // a_j, feasible for the capped simplex
  std::vector<double> utilities;   // U_i = p_i . a (0 for zero-weight users)
  double objective = 0.0;          // sum of w_i log U_i over active users
  double residual = 0.0;           // final optimality residual
  int iterations = 0;
  bool converged = false;
};

// Solves the PF problem.
//
// `preferences` is N x M; rows need not be normalized but must be
// non-negative. `weights` (size N, default all-ones) scales each user's log
// term; a weight of zero removes the user from the objective entirely —
// this is how leave-one-out tax problems are posed without reshaping the
// matrix. Users whose preference row sums to zero are likewise ignored.
// `warm_start` (size M, feasible or not — it is projected) seeds the
// iteration. `file_sizes` (size M, positive; empty = unit sizes) switches
// the capacity constraint to sum_j s_j a_j <= C for heterogeneous files
// (paper Sec. V-B). Requires capacity >= 0.
PfSolution SolveProportionalFairness(
    const Matrix& preferences, double capacity,
    const PfOptions& options = {},
    std::span<const double> weights = {},
    std::span<const double> warm_start = {},
    std::span<const double> file_sizes = {});

// Deterministic accumulator over a batch of PF solves (observability):
// OpuS's N+1 tax solves fold their PfSolutions into one of these — in a
// fixed index order when the solves ran in parallel — so downstream
// metrics are identical at any thread count.
struct PfStats {
  std::uint64_t solves = 0;
  std::uint64_t iterations = 0;
  double max_residual = 0.0;

  void Observe(const PfSolution& solution);
};

// Max KKT violation of `allocation` for the PF problem: the L-inf norm of
// Proj(a + grad f(a)) - a. Zero iff `allocation` is optimal. Used by tests.
double PfOptimalityResidual(const Matrix& preferences, double capacity,
                            std::span<const double> allocation,
                            std::span<const double> weights = {},
                            std::span<const double> file_sizes = {});

}  // namespace opus
