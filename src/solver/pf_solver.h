// Proportional-fairness solver for the cache allocation problem (Eq. (2)):
//
//   maximize   sum_i w_i * log( sum_j p_ij * a_j )
//   subject to 0 <= a_j <= 1,  sum_j a_j <= C.
//
// The paper solves this with CVXPY; we ship a native projected-gradient
// method with Barzilai-Borwein steps, Armijo backtracking, and a
// projected-gradient optimality residual. The solver supports warm starts,
// which matter because OpuS's VCG tax computation solves N+1 closely related
// instances (full problem plus each leave-one-out problem).
//
// Two engines solve the same problem:
//  - Sparse (production): Objective/Gradient iterate a CsrMatrix's nonzeros
//    only (O(nnz) per pass) with the exact breakpoint projection and a
//    warm-started tau fast path. Preference validation and row sums are
//    computed once at CSR build time, so OpuS's N leave-one-out solves
//    never re-validate the matrix.
//  - Dense reference (PfOptions::use_dense_reference): the original
//    O(N*M)-per-pass implementation with the bisection projection, kept as
//    a cross-check and as the benchmark baseline.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/matrix.h"

namespace opus {

struct PfOptions {
  // Stop when the unit-step projected-gradient residual drops below this.
  double tolerance = 1e-9;
  // Hard iteration cap (safety net; typical solves need a few hundred).
  int max_iterations = 50000;
  // Check the residual every `check_interval` iterations.
  int check_interval = 10;
  // Use the dense reference engine (pre-sparse-rewrite behaviour: dense
  // passes, per-solve validation, bisection projection). Benchmarks and
  // cross-check tests only.
  bool use_dense_reference = false;
};

struct PfSolution {
  std::vector<double> allocation;  // a_j, feasible for the capped simplex
  std::vector<double> utilities;   // U_i = p_i . a (0 for zero-weight users)
  double objective = 0.0;          // sum of w_i log U_i over active users
  double residual = 0.0;           // final optimality residual
  int iterations = 0;
  bool converged = false;
  // True when a caller-supplied warm start seeded the iteration (the
  // projected warm point had finite objective); false for cold solves and
  // for warm points that were rejected (zero utility for an active user).
  bool warm_start_used = false;

  // Projection cost accounting: total capped-simplex projections, how many
  // resolved via the warm-started tau fast path, and how many ran the full
  // breakpoint (or bisection) solve.
  std::uint64_t projection_calls = 0;
  std::uint64_t projection_warm_hits = 0;
  std::uint64_t projection_exact = 0;
};

// Solves the PF problem.
//
// `preferences` is N x M; rows need not be normalized but must be
// non-negative. `weights` (size N, default all-ones) scales each user's log
// term; a weight of zero removes the user from the objective entirely —
// this is how leave-one-out tax problems are posed without reshaping the
// matrix. Users whose preference row sums to zero are likewise ignored.
// `warm_start` (size M, feasible or not — it is projected) seeds the
// iteration. `file_sizes` (size M, positive; empty = unit sizes) switches
// the capacity constraint to sum_j s_j a_j <= C for heterogeneous files
// (paper Sec. V-B). Requires capacity >= 0.
PfSolution SolveProportionalFairness(
    const Matrix& preferences, double capacity,
    const PfOptions& options = {},
    std::span<const double> weights = {},
    std::span<const double> warm_start = {},
    std::span<const double> file_sizes = {});

// CSR entry point: identical semantics on a prebuilt (validated) sparse
// view; per-pass cost is O(nnz) instead of O(N*M). `utility_offsets`
// (size N, default zeros) adds a fixed term to each user's utility:
// U_i = offset_i + p_i . a. This poses column-restricted subproblems —
// coordinates frozen at known values contribute their utility through the
// offset — and is how OpuS's active-set-restricted leave-one-out tax
// solves re-optimize only the columns near the departing user's support.
PfSolution SolveProportionalFairnessCsr(
    const CsrMatrix& preferences, double capacity,
    const PfOptions& options = {},
    std::span<const double> weights = {},
    std::span<const double> warm_start = {},
    std::span<const double> file_sizes = {},
    std::span<const double> utility_offsets = {});

// Deterministic accumulator over a batch of PF solves (observability):
// OpuS's N+1 tax solves fold their PfSolutions into one of these — in a
// fixed index order when the solves ran in parallel — so downstream
// metrics are identical at any thread count. The restricted_* fields are
// maintained by the caller (OpusAllocator), not Observe().
struct PfStats {
  std::uint64_t solves = 0;
  std::uint64_t iterations = 0;
  std::uint64_t projection_calls = 0;
  std::uint64_t projection_warm_hits = 0;
  std::uint64_t projection_exact = 0;
  std::uint64_t restricted_solves = 0;
  std::uint64_t restricted_fallbacks = 0;
  std::uint64_t warm_started_solves = 0;
  double max_residual = 0.0;

  void Observe(const PfSolution& solution);
};

// Max KKT violation of `allocation` for the PF problem: the L-inf norm of
// Proj(a + grad f(a)) - a. Zero iff `allocation` is optimal. Used by tests.
double PfOptimalityResidual(const Matrix& preferences, double capacity,
                            std::span<const double> allocation,
                            std::span<const double> weights = {},
                            std::span<const double> file_sizes = {});

// CSR variant of the residual, used by the restricted leave-one-out tax
// fast path to decide whether a composed solution is already optimal for
// the full problem or must fall back to a full solve.
double PfOptimalityResidualCsr(const CsrMatrix& preferences, double capacity,
                               std::span<const double> allocation,
                               std::span<const double> weights = {},
                               std::span<const double> file_sizes = {});

// Utilities U_i = p_i . a against a CSR matrix (O(nnz)); bitwise identical
// to the dense dot products (zeros add exactly nothing).
void CsrUtilities(const CsrMatrix& preferences,
                  std::span<const double> allocation,
                  std::vector<double>& utilities);

}  // namespace opus
