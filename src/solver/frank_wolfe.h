// Frank-Wolfe (conditional gradient) solver for the PF problem — an
// independent second algorithm used to cross-validate the projected
// gradient solver (tests/solver/cross_check_test.cc) and as a
// projection-free alternative for very large catalogs.
//
// Each iteration maximizes the linearized objective over the feasible set
//   argmax_s <grad f(a), s>  s.t. 0 <= s_j <= 1, sum_j w_j s_j <= C,
// which for this polytope is a fractional knapsack with values grad_j and
// sizes w_j, then steps a <- a + gamma (s - a) with exact line search on
// the 1-D concave slice.
#pragma once

#include <span>

#include "solver/pf_solver.h"

namespace opus {

struct FrankWolfeOptions {
  // Stop when the Frank-Wolfe duality gap <grad, s - a> drops below this.
  // The gap directly bounds objective suboptimality (f* - f <= gap).
  // Classic FW zigzags on polytope faces (O(1/k)), so gaps much below
  // ~1e-5 are uneconomical — use the projected-gradient solver when
  // tighter solutions are needed; this backend exists for cross-checking.
  double gap_tolerance = 2e-5;
  int max_iterations = 200000;
};

// Solves the same problem as SolveProportionalFairness (weights all-one).
// Returns a PfSolution; `residual` holds the final duality gap.
PfSolution SolveProportionalFairnessFw(
    const Matrix& preferences, double capacity,
    const FrankWolfeOptions& options = {},
    std::span<const double> file_sizes = {});

}  // namespace opus
