// Fractional knapsack over unit-size files:
//
//   maximize   sum_j v_j * a_j
//   subject to 0 <= a_j <= 1,  sum_j a_j <= C.
//
// This is the utilitarian (social-welfare-maximizing) allocation used by the
// classic VCG baseline (Sec. IV-B) and by the global-optimum ("optimal LFU")
// policy in Fig. 8: cache whole files in descending total-value order, with
// at most one fractional file at the capacity boundary.
#pragma once

#include <span>
#include <vector>

namespace opus {

struct KnapsackSolution {
  std::vector<double> allocation;  // a_j in [0,1]
  double value = 0.0;              // sum_j v_j a_j
};

// Solves the fractional knapsack. Values may be zero (such files are cached
// only if everything positive already fits — i.e. never beyond need).
// Ties are broken by lower file index for determinism. Requires
// capacity >= 0 and all values >= 0.
KnapsackSolution SolveFractionalKnapsack(std::span<const double> values,
                                         double capacity);

// Heterogeneous-size variant: file j occupies sizes[j] > 0 units when fully
// cached; the greedy order is by value density v_j / s_j (ties by lower
// index). Empty `sizes` means all-ones.
KnapsackSolution SolveFractionalKnapsack(std::span<const double> values,
                                         double capacity,
                                         std::span<const double> sizes);

}  // namespace opus
