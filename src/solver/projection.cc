#include "solver/projection.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/mathutil.h"

namespace opus {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double WeightAt(std::span<const double> weights, std::size_t j) {
  return weights.empty() ? 1.0 : weights[j];
}

double ClampedWeightedSum(std::span<const double> y,
                          std::span<const double> weights, double tau) {
  double s = 0.0;
  for (std::size_t j = 0; j < y.size(); ++j) {
    const double w = WeightAt(weights, j);
    s += w * Clamp(y[j] - tau * w, 0.0, 1.0);
  }
  return s;
}

// Writes x_j = clamp(y_j - tau * w_j, 0, 1), then absorbs the remaining
// capacity residue into interior coordinates so downstream capacity checks
// hold to tight tolerance regardless of how tau was located.
void FinishProjection(std::span<const double> y, double capacity,
                      std::span<const double> weights, double tau,
                      std::vector<double>& x) {
  for (std::size_t j = 0; j < y.size(); ++j) {
    x[j] = Clamp(y[j] - tau * WeightAt(weights, j), 0.0, 1.0);
  }
  double total = 0.0;
  for (std::size_t j = 0; j < x.size(); ++j) {
    total += WeightAt(weights, j) * x[j];
  }
  double residual = capacity - total;  // in weighted units
  for (std::size_t j = 0; j < x.size() && std::fabs(residual) > 1e-15; ++j) {
    if (x[j] > 0.0 && x[j] < 1.0) {
      const double w = WeightAt(weights, j);
      const double nx = Clamp(x[j] + residual / w, 0.0, 1.0);
      residual -= (nx - x[j]) * w;
      x[j] = nx;
    }
  }
}

void CheckInputs(std::span<const double> y, double capacity,
                 std::span<const double> weights) {
  OPUS_CHECK_GE(capacity, 0.0);
  if (!weights.empty()) {
    OPUS_CHECK_EQ(weights.size(), y.size());
    for (double w : weights) OPUS_CHECK_GT(w, 0.0);
  }
}

}  // namespace

std::vector<double> ProjectCappedSimplex(std::span<const double> y,
                                         double capacity) {
  return ProjectCappedSimplex(y, capacity, {});
}

std::vector<double> ProjectCappedSimplex(std::span<const double> y,
                                         double capacity,
                                         std::span<const double> weights) {
  CheckInputs(y, capacity, weights);
  std::vector<double> x;
  CappedSimplexProjector projector;  // fresh state: always the exact path
  projector.Project(y, capacity, weights, x);
  return x;
}

std::vector<double> ProjectCappedSimplexBisect(
    std::span<const double> y, double capacity,
    std::span<const double> weights) {
  CheckInputs(y, capacity, weights);
  std::vector<double> x(y.size());
  // Fast path: the box-clamped point may already satisfy the capacity.
  double clamped_sum = 0.0;
  for (std::size_t j = 0; j < y.size(); ++j) {
    x[j] = Clamp(y[j], 0.0, 1.0);
    clamped_sum += WeightAt(weights, j) * x[j];
  }
  if (clamped_sum <= capacity) return x;

  // Bisection for tau: the weighted clamped sum is non-increasing in tau,
  // equals clamped_sum > C at tau = 0, and reaches 0 once
  // tau >= max_j(y_j / w_j).
  double lo = 0.0;
  double hi = 0.0;
  for (std::size_t j = 0; j < y.size(); ++j) {
    hi = std::max(hi, y[j] / WeightAt(weights, j));
  }
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (ClampedWeightedSum(y, weights, mid) > capacity) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-15 * std::max(1.0, hi)) break;
  }
  FinishProjection(y, capacity, weights, 0.5 * (lo + hi), x);
  return x;
}

void CappedSimplexProjector::Project(std::span<const double> y,
                                     double capacity,
                                     std::span<const double> weights,
                                     std::vector<double>& out) {
  ++stats_.calls;
  OPUS_CHECK_GE(capacity, 0.0);
  if (!weights.empty()) OPUS_CHECK_EQ(weights.size(), y.size());
  out.resize(y.size());
  double clamped_sum = 0.0;
  for (std::size_t j = 0; j < y.size(); ++j) {
    out[j] = Clamp(y[j], 0.0, 1.0);
    clamped_sum += WeightAt(weights, j) * out[j];
  }
  if (clamped_sum <= capacity) {
    ++stats_.clamp_fast;
    return;
  }

  // Capacity binds: locate tau with g(tau) = C. clamped_sum > C >= 0
  // guarantees some y_j > 0, so tau_max > 0 and a crossing exists.
  double tau_max = 0.0;
  for (std::size_t j = 0; j < y.size(); ++j) {
    tau_max = std::max(tau_max, y[j] / WeightAt(weights, j));
  }
  double tau = 0.0;
  if (have_tau_ && WarmTau(y, capacity, weights, last_tau_, tau_max, &tau)) {
    ++stats_.warm_hits;
  } else {
    tau = ExactTau(y, capacity, weights);
    ++stats_.exact_solves;
  }
  last_tau_ = tau;
  have_tau_ = true;
  FinishProjection(y, capacity, weights, tau, out);
}

double CappedSimplexProjector::ExactTau(std::span<const double> y,
                                        double capacity,
                                        std::span<const double> weights) {
  // Segment state at tau = 0+: coordinates with y_j > 1 sit at their upper
  // bound (contributing w_j), coordinates with 0 < y_j <= 1 are interior
  // (contributing w_j * (y_j - tau * w_j)), the rest are zero.
  events_.clear();
  double at_one = 0.0;  // sum of w_j over at-upper-bound coordinates
  double wy = 0.0;      // sum of w_j * y_j over interior coordinates
  double ww = 0.0;      // sum of w_j^2 over interior coordinates
  for (std::size_t j = 0; j < y.size(); ++j) {
    const double w = WeightAt(weights, j);
    const double yj = y[j];
    if (yj <= 0.0) continue;
    const double t_one = (yj - 1.0) / w;  // leaves the upper bound here
    if (t_one > 0.0) {
      at_one += w;
      events_.push_back({t_one, -w, w * yj, w * w});
    } else {
      wy += w * yj;
      ww += w * w;
    }
    events_.push_back({yj / w, 0.0, -(w * yj), -(w * w)});  // reaches zero
  }
  std::sort(events_.begin(), events_.end(),
            [](const Event& a, const Event& b) { return a.tau < b.tau; });

  double prev = 0.0;
  std::size_t k = 0;
  for (;;) {
    const double next = k < events_.size() ? events_[k].tau : kInf;
    if (ww > 0.0) {
      // g(t) = at_one + wy - t * ww on [prev, next]; solve g(t) = C.
      const double t = (at_one + wy - capacity) / ww;
      if (t <= next) return Clamp(t, prev, next);
    } else if (at_one + wy <= capacity) {
      // Flat segment already at/below capacity (numerical edge): the
      // crossing happened at the segment boundary.
      return prev;
    }
    if (k >= events_.size()) break;
    prev = next;
    while (k < events_.size() && events_[k].tau == next) {
      at_one += events_[k].d_at_one;
      wy += events_[k].d_wy;
      ww += events_[k].d_ww;
      ++k;
    }
  }
  // Past the last breakpoint g is 0 <= C; only reachable through floating-
  // point pathologies. The capacity touch-up repairs the residue.
  return prev;
}

bool CappedSimplexProjector::WarmTau(std::span<const double> y,
                                     double capacity,
                                     std::span<const double> weights,
                                     double tau0, double tau_max,
                                     double* tau) const {
  // Safeguarded Newton on the piecewise-linear g: the bracket [lo, hi]
  // always contains the crossing (g(0) > C, g(tau_max) = 0 <= C), and once
  // an iterate lands in the crossing's linear segment one Newton step
  // solves it exactly. Typical warm calls resolve in 2-4 O(M) passes.
  double lo = 0.0;
  double hi = tau_max;
  double t = Clamp(tau0, lo, hi);
  for (int it = 0; it < 24; ++it) {
    double g = 0.0;
    double slope = 0.0;  // -g'(t): sum of w_j^2 over interior coordinates
    for (std::size_t j = 0; j < y.size(); ++j) {
      const double w = WeightAt(weights, j);
      const double v = y[j] - t * w;
      if (v >= 1.0) {
        g += w;
      } else if (v > 0.0) {
        g += w * v;
        slope += w * w;
      }
    }
    const double err = g - capacity;
    if (std::fabs(err) <= 1e-12 * std::max(1.0, capacity)) {
      *tau = t;
      return true;
    }
    if (err > 0.0) {
      lo = t;
    } else {
      hi = t;
    }
    double next = slope > 0.0 ? t + err / slope : 0.5 * (lo + hi);
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    if (next == t) return false;  // bracket exhausted without convergence
    t = next;
  }
  return false;
}

bool IsFeasibleCappedSimplex(std::span<const double> x, double capacity,
                             double tol, std::span<const double> weights) {
  double total = 0.0;
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (x[j] < -tol || x[j] > 1.0 + tol) return false;
    total += WeightAt(weights, j) * x[j];
  }
  return total <= capacity + tol;
}

}  // namespace opus
