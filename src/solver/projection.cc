#include "solver/projection.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/mathutil.h"

namespace opus {
namespace {

double WeightAt(std::span<const double> weights, std::size_t j) {
  return weights.empty() ? 1.0 : weights[j];
}

double ClampedWeightedSum(std::span<const double> y,
                          std::span<const double> weights, double tau) {
  double s = 0.0;
  for (std::size_t j = 0; j < y.size(); ++j) {
    const double w = WeightAt(weights, j);
    s += w * Clamp(y[j] - tau * w, 0.0, 1.0);
  }
  return s;
}

}  // namespace

std::vector<double> ProjectCappedSimplex(std::span<const double> y,
                                         double capacity) {
  return ProjectCappedSimplex(y, capacity, {});
}

std::vector<double> ProjectCappedSimplex(std::span<const double> y,
                                         double capacity,
                                         std::span<const double> weights) {
  OPUS_CHECK_GE(capacity, 0.0);
  if (!weights.empty()) {
    OPUS_CHECK_EQ(weights.size(), y.size());
    for (double w : weights) OPUS_CHECK_GT(w, 0.0);
  }
  std::vector<double> x(y.size());
  // Fast path: the box-clamped point may already satisfy the capacity.
  double clamped_sum = 0.0;
  for (std::size_t j = 0; j < y.size(); ++j) {
    x[j] = Clamp(y[j], 0.0, 1.0);
    clamped_sum += WeightAt(weights, j) * x[j];
  }
  if (clamped_sum <= capacity) return x;

  // Bisection for tau: the weighted clamped sum is non-increasing in tau,
  // equals clamped_sum > C at tau = 0, and reaches 0 once
  // tau >= max_j(y_j / w_j).
  double lo = 0.0;
  double hi = 0.0;
  for (std::size_t j = 0; j < y.size(); ++j) {
    hi = std::max(hi, y[j] / WeightAt(weights, j));
  }
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (ClampedWeightedSum(y, weights, mid) > capacity) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-15 * std::max(1.0, hi)) break;
  }
  const double tau = 0.5 * (lo + hi);
  for (std::size_t j = 0; j < y.size(); ++j) {
    x[j] = Clamp(y[j] - tau * WeightAt(weights, j), 0.0, 1.0);
  }
  // Exact-capacity touch-up: absorb the bisection residue in interior
  // coordinates so downstream capacity checks hold to tight tolerance.
  double total = 0.0;
  for (std::size_t j = 0; j < x.size(); ++j) {
    total += WeightAt(weights, j) * x[j];
  }
  double residual = capacity - total;  // in weighted units
  for (std::size_t j = 0; j < x.size() && std::fabs(residual) > 1e-15; ++j) {
    if (x[j] > 0.0 && x[j] < 1.0) {
      const double w = WeightAt(weights, j);
      const double nx = Clamp(x[j] + residual / w, 0.0, 1.0);
      residual -= (nx - x[j]) * w;
      x[j] = nx;
    }
  }
  return x;
}

bool IsFeasibleCappedSimplex(std::span<const double> x, double capacity,
                             double tol, std::span<const double> weights) {
  double total = 0.0;
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (x[j] < -tol || x[j] > 1.0 + tol) return false;
    total += WeightAt(weights, j) * x[j];
  }
  return total <= capacity + tol;
}

}  // namespace opus
