#include "solver/frank_wolfe.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/mathutil.h"
#include "solver/knapsack.h"

namespace opus {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

double Objective(const Matrix& prefs, std::span<const double> a,
                 std::vector<double>& utilities) {
  double obj = 0.0;
  for (std::size_t i = 0; i < prefs.rows(); ++i) {
    const double u = Dot(prefs.row(i), a);
    utilities[i] = u;
    double row_sum = 0.0;
    for (double p : prefs.row(i)) row_sum += p;
    if (row_sum <= 0.0) continue;
    if (u <= 0.0) return kNegInf;
    obj += std::log(u);
  }
  return obj;
}

}  // namespace

PfSolution SolveProportionalFairnessFw(const Matrix& preferences,
                                       double capacity,
                                       const FrankWolfeOptions& options,
                                       std::span<const double> file_sizes) {
  OPUS_CHECK_GE(capacity, 0.0);
  const std::size_t n = preferences.rows();
  const std::size_t m = preferences.cols();
  if (!file_sizes.empty()) OPUS_CHECK_EQ(file_sizes.size(), m);

  PfSolution sol;
  sol.utilities.assign(n, 0.0);
  if (m == 0 || capacity == 0.0) {
    sol.allocation.assign(m, 0.0);
    sol.converged = true;
    return sol;
  }

  double total_size = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    total_size += file_sizes.empty() ? 1.0 : file_sizes[j];
  }
  // Start from the uniform interior point.
  std::vector<double> a(m, std::min(1.0, capacity / total_size));
  std::vector<double> utilities(n, 0.0);
  double f = Objective(preferences, a, utilities);
  if (f == kNegInf) {
    // No active user: any feasible point works.
    sol.allocation = std::move(a);
    sol.converged = true;
    return sol;
  }

  std::vector<double> grad(m, 0.0);
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    sol.iterations = iter;
    // grad_j = sum_i p_ij / U_i over active users.
    std::fill(grad.begin(), grad.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      double row_sum = 0.0;
      for (double p : preferences.row(i)) row_sum += p;
      if (row_sum <= 0.0 || utilities[i] <= 0.0) continue;
      const auto row = preferences.row(i);
      for (std::size_t j = 0; j < m; ++j) {
        grad[j] += row[j] / utilities[i];
      }
    }

    // Linear maximization oracle over the (weighted) capped simplex.
    const KnapsackSolution vertex =
        SolveFractionalKnapsack(grad, capacity, file_sizes);

    double gap = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      gap += grad[j] * (vertex.allocation[j] - a[j]);
    }
    if (gap < options.gap_tolerance) {
      sol.residual = gap;
      sol.converged = true;
      break;
    }

    // Exact line search on gamma in [0, 1] for the concave 1-D slice
    // g(gamma) = sum_i log(U_i + gamma D_i): golden-section is robust and
    // cheap (the per-user direction D_i is precomputable).
    std::vector<double> dir_util(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      double d = 0.0;
      const auto row = preferences.row(i);
      for (std::size_t j = 0; j < m; ++j) {
        d += row[j] * (vertex.allocation[j] - a[j]);
      }
      dir_util[i] = d;
    }
    auto slice = [&](double gamma) {
      double obj = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (utilities[i] <= 0.0) continue;
        const double u = utilities[i] + gamma * dir_util[i];
        if (u <= 0.0) return kNegInf;
        obj += std::log(u);
      }
      return obj;
    };
    double lo = 0.0, hi = 1.0;
    constexpr double kInvPhi = 0.6180339887498949;
    double x1 = hi - kInvPhi * (hi - lo);
    double x2 = lo + kInvPhi * (hi - lo);
    double f1 = slice(x1), f2 = slice(x2);
    for (int it = 0; it < 60; ++it) {
      if (f1 < f2) {
        lo = x1;
        x1 = x2;
        f1 = f2;
        x2 = lo + kInvPhi * (hi - lo);
        f2 = slice(x2);
      } else {
        hi = x2;
        x2 = x1;
        f2 = f1;
        x1 = hi - kInvPhi * (hi - lo);
        f1 = slice(x1);
      }
    }
    const double gamma = Clamp(0.5 * (lo + hi), 0.0, 1.0);
    if (gamma <= 0.0) {
      sol.residual = gap;
      break;
    }
    for (std::size_t j = 0; j < m; ++j) {
      a[j] += gamma * (vertex.allocation[j] - a[j]);
    }
    f = Objective(preferences, a, utilities);
  }

  sol.allocation = std::move(a);
  sol.objective = f;
  for (std::size_t i = 0; i < n; ++i) {
    sol.utilities[i] = Dot(preferences.row(i), sol.allocation);
  }
  return sol;
}

}  // namespace opus
