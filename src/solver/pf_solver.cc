#include "solver/pf_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/mathutil.h"
#include "solver/projection.h"

namespace opus {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

double UserWeight(std::span<const double> weights, std::size_t i) {
  return weights.empty() ? 1.0 : weights[i];
}

double OffsetAt(std::span<const double> offsets, std::size_t i) {
  return offsets.empty() ? 0.0 : offsets[i];
}

// --- Dense reference engine (pre-sparse-rewrite behaviour) ---------------

// Users that participate in the objective: positive weight and a non-zero
// preference row. The dense engine re-validates the matrix per solve, like
// the original implementation did; the sparse engine validates once at CSR
// build time instead.
struct DenseOps {
  const Matrix& prefs;
  std::uint64_t projection_calls = 0;
  std::uint64_t projection_exact = 0;

  std::size_t rows() const { return prefs.rows(); }
  std::size_t cols() const { return prefs.cols(); }
  double Offset(std::size_t) const { return 0.0; }

  std::vector<std::size_t> Active(std::span<const double> weights) const {
    std::vector<std::size_t> active;
    for (std::size_t i = 0; i < prefs.rows(); ++i) {
      if (!weights.empty() && weights[i] <= 0.0) continue;
      double row_sum = 0.0;
      for (double p : prefs.row(i)) {
        OPUS_CHECK_GE(p, 0.0);
        row_sum += p;
      }
      if (row_sum > 0.0) active.push_back(i);
    }
    return active;
  }

  // Objective sum_i w_i log(p_i . a) over active users; -inf if any active
  // user has zero utility.
  double Objective(std::span<const double> weights,
                   const std::vector<std::size_t>& active,
                   std::span<const double> a,
                   std::vector<double>& utilities) const {
    double obj = 0.0;
    for (std::size_t i : active) {
      const double u = Dot(prefs.row(i), a);
      utilities[i] = u;
      if (u <= 0.0) return kNegInf;
      obj += UserWeight(weights, i) * std::log(u);
    }
    return obj;
  }

  // grad_j = sum_i w_i p_ij / U_i. `utilities` must already hold p_i . a.
  void Gradient(std::span<const double> weights,
                const std::vector<std::size_t>& active,
                const std::vector<double>& utilities,
                std::vector<double>& g) const {
    std::fill(g.begin(), g.end(), 0.0);
    for (std::size_t i : active) {
      const double scale = UserWeight(weights, i) / utilities[i];
      const auto row = prefs.row(i);
      for (std::size_t j = 0; j < row.size(); ++j) g[j] += scale * row[j];
    }
  }

  void Project(std::span<const double> y, double capacity,
               std::span<const double> file_sizes, std::vector<double>& out) {
    out = ProjectCappedSimplexBisect(y, capacity, file_sizes);
    ++projection_calls;
    ++projection_exact;
  }

  double Utility(std::size_t i, std::span<const double> a) const {
    return Dot(prefs.row(i), a);
  }

  std::uint64_t warm_hits() const { return 0; }
};

// --- Sparse production engine --------------------------------------------

struct SparseOps {
  const CsrMatrix& prefs;
  std::span<const double> offsets;  // fixed utility term per user (or empty)
  CappedSimplexProjector projector;

  std::size_t rows() const { return prefs.rows(); }
  std::size_t cols() const { return prefs.cols(); }
  double Offset(std::size_t i) const { return OffsetAt(offsets, i); }

  // Row sums are cached in the CSR view, so the active-user scan is O(N)
  // and never re-validates preferences.
  std::vector<std::size_t> Active(std::span<const double> weights) const {
    std::vector<std::size_t> active;
    for (std::size_t i = 0; i < prefs.rows(); ++i) {
      if (!weights.empty() && weights[i] <= 0.0) continue;
      if (prefs.row_sum(i) > 0.0 || Offset(i) > 0.0) active.push_back(i);
    }
    return active;
  }

  double Objective(std::span<const double> weights,
                   const std::vector<std::size_t>& active,
                   std::span<const double> a,
                   std::vector<double>& utilities) const {
    double obj = 0.0;
    for (std::size_t i : active) {
      const double u = Utility(i, a);
      utilities[i] = u;
      if (u <= 0.0) return kNegInf;
      obj += UserWeight(weights, i) * std::log(u);
    }
    return obj;
  }

  void Gradient(std::span<const double> weights,
                const std::vector<std::size_t>& active,
                const std::vector<double>& utilities,
                std::vector<double>& g) const {
    std::fill(g.begin(), g.end(), 0.0);
    for (std::size_t i : active) {
      const double scale = UserWeight(weights, i) / utilities[i];
      const auto cols = prefs.row_cols(i);
      const auto vals = prefs.row_vals(i);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        g[cols[k]] += scale * vals[k];
      }
    }
  }

  void Project(std::span<const double> y, double capacity,
               std::span<const double> file_sizes, std::vector<double>& out) {
    projector.Project(y, capacity, file_sizes, out);
  }

  double Utility(std::size_t i, std::span<const double> a) const {
    double u = Offset(i);
    const auto cols = prefs.row_cols(i);
    const auto vals = prefs.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) u += vals[k] * a[cols[k]];
    return u;
  }

  std::uint64_t projection_calls_total() const {
    return projector.stats().calls;
  }
  std::uint64_t warm_hits() const { return projector.stats().warm_hits; }
  std::uint64_t exact_solves() const { return projector.stats().exact_solves; }
};

void RecordProjectionStats(const DenseOps& ops, PfSolution& sol) {
  sol.projection_calls = ops.projection_calls;
  sol.projection_warm_hits = 0;
  sol.projection_exact = ops.projection_exact;
}

void RecordProjectionStats(const SparseOps& ops, PfSolution& sol) {
  sol.projection_calls = ops.projection_calls_total();
  sol.projection_warm_hits = ops.warm_hits();
  sol.projection_exact = ops.exact_solves();
}

// Shared projected-gradient core: Barzilai-Borwein steps, Armijo
// backtracking on the projected step, periodic KKT residual checks. The
// engine (`Ops`) supplies Objective/Gradient/Project/Utility; both engines
// run the byte-same control flow, so dense-vs-sparse differences reduce to
// per-pass arithmetic over zeros (exactly nothing in IEEE) and projection
// root-finding noise.
template <typename Ops>
PfSolution SolveCore(Ops& ops, double capacity, const PfOptions& options,
                     std::span<const double> weights,
                     std::span<const double> warm_start,
                     std::span<const double> file_sizes) {
  OPUS_CHECK_GE(capacity, 0.0);
  const std::size_t n = ops.rows();
  if (!weights.empty()) OPUS_CHECK_EQ(weights.size(), n);
  const std::size_t m = ops.cols();
  if (!file_sizes.empty()) {
    OPUS_CHECK_EQ(file_sizes.size(), m);
    for (double s : file_sizes) OPUS_CHECK_GT(s, 0.0);
  }
  double total_size = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    total_size += file_sizes.empty() ? 1.0 : file_sizes[j];
  }

  PfSolution sol;
  sol.utilities.assign(n, 0.0);

  const auto active = ops.Active(weights);
  if (m == 0 || capacity == 0.0 || active.empty()) {
    // Nothing to allocate or nobody to please: any feasible point is
    // optimal; return the zero allocation (or projected warm start when no
    // user is active but capacity exists — zero keeps results deterministic).
    sol.allocation.assign(m, 0.0);
    sol.objective = active.empty() ? 0.0 : kNegInf;
    sol.converged = true;
    // Utilities are still reported against the returned allocation (zero
    // here), which for restricted subproblems is the fixed offset term.
    for (std::size_t i = 0; i < n; ++i) sol.utilities[i] = ops.Offset(i);
    RecordProjectionStats(ops, sol);
    return sol;
  }

  // If capacity covers every file, a_j = 1 is optimal (objective is
  // monotone non-decreasing in each a_j).
  if (capacity >= total_size) {
    sol.allocation.assign(m, 1.0);
    std::vector<double> util(n, 0.0);
    sol.objective = ops.Objective(weights, active, sol.allocation, util);
    for (std::size_t i = 0; i < n; ++i) {
      sol.utilities[i] = ops.Utility(i, sol.allocation);
    }
    sol.converged = true;
    RecordProjectionStats(ops, sol);
    return sol;
  }

  // Starting point: warm start if provided (projected), else uniform spread
  // which guarantees positive utility for every active user.
  std::vector<double> a;
  const double uniform_fill = capacity / total_size;  // < 1 here
  if (!warm_start.empty()) {
    OPUS_CHECK_EQ(warm_start.size(), m);
    ops.Project(warm_start, capacity, file_sizes, a);
    std::vector<double> util(n, 0.0);
    if (ops.Objective(weights, active, a, util) == kNegInf) {
      a.assign(m, uniform_fill);
    } else {
      sol.warm_start_used = true;
    }
  } else {
    a.assign(m, uniform_fill);
  }

  std::vector<double> utilities(n, 0.0);
  std::vector<double> g(m, 0.0), g_prev(m, 0.0), a_prev(m, 0.0);
  std::vector<double> cand(m, 0.0), trial(m, 0.0), proj(m, 0.0);
  std::vector<double> cand_util(n, 0.0);

  double f = ops.Objective(weights, active, a, utilities);
  OPUS_CHECK(f > kNegInf);
  ops.Gradient(weights, active, utilities, g);

  double step = 1.0;
  bool have_prev = false;

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    sol.iterations = iter;

    // Barzilai-Borwein step length from the previous iterate pair.
    if (have_prev) {
      double sy = 0.0, ss = 0.0;
      for (std::size_t j = 0; j < m; ++j) {
        const double s = a[j] - a_prev[j];
        const double y = g_prev[j] - g[j];  // curvature of -f
        ss += s * s;
        sy += s * y;
      }
      if (sy > 1e-18 && ss > 0.0) {
        step = Clamp(ss / sy, 1e-12, 1e12);
      } else {
        step = std::min(step * 2.0, 1e12);
      }
    }

    // Armijo backtracking on the projected step.
    double f_cand = kNegInf;
    bool accepted = false;
    for (int bt = 0; bt < 80; ++bt) {
      for (std::size_t j = 0; j < m; ++j) trial[j] = a[j] + step * g[j];
      ops.Project(trial, capacity, file_sizes, cand);
      f_cand = ops.Objective(weights, active, cand, cand_util);
      if (f_cand > kNegInf) {
        double descent = 0.0;  // <g, cand - a> >= 0 for a projected ascent
        for (std::size_t j = 0; j < m; ++j) descent += g[j] * (cand[j] - a[j]);
        if (f_cand >= f + 1e-4 * descent || descent <= 0.0) {
          accepted = true;
          break;
        }
      }
      step *= 0.5;
    }
    if (!accepted) break;  // numerically stuck; residual reported below

    std::swap(a_prev, a);
    std::swap(g_prev, g);
    std::swap(a, cand);
    std::swap(utilities, cand_util);
    f = f_cand;
    ops.Gradient(weights, active, utilities, g);
    have_prev = true;

    if (iter % options.check_interval == 0) {
      // Unit-step projected-gradient residual: zero iff KKT-optimal.
      for (std::size_t j = 0; j < m; ++j) trial[j] = a[j] + g[j];
      ops.Project(trial, capacity, file_sizes, proj);
      const double res = MaxAbsDiff(proj, a);
      if (res < options.tolerance) {
        sol.residual = res;
        sol.converged = true;
        break;
      }
    }
  }

  if (!sol.converged) {
    for (std::size_t j = 0; j < m; ++j) trial[j] = a[j] + g[j];
    ops.Project(trial, capacity, file_sizes, proj);
    sol.residual = MaxAbsDiff(proj, a);
    sol.converged = sol.residual < options.tolerance * 10.0;
  }

  sol.allocation = std::move(a);
  sol.objective = f;
  for (std::size_t i = 0; i < n; ++i) {
    sol.utilities[i] = ops.Utility(i, sol.allocation);
  }
  RecordProjectionStats(ops, sol);
  return sol;
}

}  // namespace

PfSolution SolveProportionalFairness(const Matrix& preferences,
                                     double capacity,
                                     const PfOptions& options,
                                     std::span<const double> weights,
                                     std::span<const double> warm_start,
                                     std::span<const double> file_sizes) {
  if (options.use_dense_reference) {
    DenseOps ops{preferences};
    return SolveCore(ops, capacity, options, weights, warm_start, file_sizes);
  }
  // One-time validation + row sums happen in the CSR build; repeated solves
  // over the same matrix should prebuild the view (CachingProblem caches
  // it) and call SolveProportionalFairnessCsr directly.
  const CsrMatrix csr = CsrMatrix::FromDense(preferences);
  return SolveProportionalFairnessCsr(csr, capacity, options, weights,
                                      warm_start, file_sizes);
}

PfSolution SolveProportionalFairnessCsr(const CsrMatrix& preferences,
                                        double capacity,
                                        const PfOptions& options,
                                        std::span<const double> weights,
                                        std::span<const double> warm_start,
                                        std::span<const double> file_sizes,
                                        std::span<const double> utility_offsets) {
  if (!utility_offsets.empty()) {
    OPUS_CHECK_EQ(utility_offsets.size(), preferences.rows());
  }
  SparseOps ops{preferences, utility_offsets};
  return SolveCore(ops, capacity, options, weights, warm_start, file_sizes);
}

double PfOptimalityResidual(const Matrix& preferences, double capacity,
                            std::span<const double> allocation,
                            std::span<const double> weights,
                            std::span<const double> file_sizes) {
  const CsrMatrix csr = CsrMatrix::FromDense(preferences);
  return PfOptimalityResidualCsr(csr, capacity, allocation, weights,
                                 file_sizes);
}

double PfOptimalityResidualCsr(const CsrMatrix& preferences, double capacity,
                               std::span<const double> allocation,
                               std::span<const double> weights,
                               std::span<const double> file_sizes) {
  OPUS_CHECK_EQ(allocation.size(), preferences.cols());
  SparseOps ops{preferences, {}};
  const auto active = ops.Active(weights);
  std::vector<double> utilities(preferences.rows(), 0.0);
  if (ops.Objective(weights, active, allocation, utilities) == kNegInf) {
    return std::numeric_limits<double>::infinity();
  }
  std::vector<double> g(preferences.cols(), 0.0);
  ops.Gradient(weights, active, utilities, g);
  std::vector<double> trial(preferences.cols());
  for (std::size_t j = 0; j < trial.size(); ++j) {
    trial[j] = allocation[j] + g[j];
  }
  const auto proj = ProjectCappedSimplex(trial, capacity, file_sizes);
  return MaxAbsDiff(proj, allocation);
}

void CsrUtilities(const CsrMatrix& preferences,
                  std::span<const double> allocation,
                  std::vector<double>& utilities) {
  OPUS_CHECK_EQ(allocation.size(), preferences.cols());
  utilities.assign(preferences.rows(), 0.0);
  for (std::size_t i = 0; i < preferences.rows(); ++i) {
    const auto cols = preferences.row_cols(i);
    const auto vals = preferences.row_vals(i);
    double u = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k) u += vals[k] * allocation[cols[k]];
    utilities[i] = u;
  }
}

void PfStats::Observe(const PfSolution& solution) {
  ++solves;
  iterations += static_cast<std::uint64_t>(solution.iterations);
  projection_calls += solution.projection_calls;
  projection_warm_hits += solution.projection_warm_hits;
  projection_exact += solution.projection_exact;
  warm_started_solves += solution.warm_start_used ? 1 : 0;
  max_residual = std::max(max_residual, solution.residual);
}

}  // namespace opus
