#include "solver/pf_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/mathutil.h"
#include "solver/projection.h"

namespace opus {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Users that participate in the objective: positive weight and a non-zero
// preference row.
std::vector<std::size_t> ActiveUsers(const Matrix& prefs,
                                     std::span<const double> weights) {
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < prefs.rows(); ++i) {
    if (!weights.empty() && weights[i] <= 0.0) continue;
    double row_sum = 0.0;
    for (double p : prefs.row(i)) {
      OPUS_CHECK_GE(p, 0.0);
      row_sum += p;
    }
    if (row_sum > 0.0) active.push_back(i);
  }
  return active;
}

double UserWeight(std::span<const double> weights, std::size_t i) {
  return weights.empty() ? 1.0 : weights[i];
}

// Objective sum_i w_i log(p_i . a) over active users; -inf if any active
// user has zero utility.
double Objective(const Matrix& prefs, std::span<const double> weights,
                 const std::vector<std::size_t>& active,
                 std::span<const double> a, std::vector<double>& utilities) {
  double obj = 0.0;
  for (std::size_t i : active) {
    const double u = Dot(prefs.row(i), a);
    utilities[i] = u;
    if (u <= 0.0) return kNegInf;
    obj += UserWeight(weights, i) * std::log(u);
  }
  return obj;
}

// grad_j = sum_i w_i p_ij / U_i. `utilities` must already hold p_i . a.
void Gradient(const Matrix& prefs, std::span<const double> weights,
              const std::vector<std::size_t>& active,
              const std::vector<double>& utilities, std::vector<double>& g) {
  std::fill(g.begin(), g.end(), 0.0);
  for (std::size_t i : active) {
    const double scale = UserWeight(weights, i) / utilities[i];
    const auto row = prefs.row(i);
    for (std::size_t j = 0; j < row.size(); ++j) g[j] += scale * row[j];
  }
}

}  // namespace

PfSolution SolveProportionalFairness(const Matrix& preferences,
                                     double capacity,
                                     const PfOptions& options,
                                     std::span<const double> weights,
                                     std::span<const double> warm_start,
                                     std::span<const double> file_sizes) {
  OPUS_CHECK_GE(capacity, 0.0);
  if (!weights.empty()) OPUS_CHECK_EQ(weights.size(), preferences.rows());
  const std::size_t m = preferences.cols();
  if (!file_sizes.empty()) {
    OPUS_CHECK_EQ(file_sizes.size(), m);
    for (double s : file_sizes) OPUS_CHECK_GT(s, 0.0);
  }
  double total_size = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    total_size += file_sizes.empty() ? 1.0 : file_sizes[j];
  }

  PfSolution sol;
  sol.utilities.assign(preferences.rows(), 0.0);

  const auto active = ActiveUsers(preferences, weights);
  if (m == 0 || capacity == 0.0 || active.empty()) {
    // Nothing to allocate or nobody to please: any feasible point is
    // optimal; return the zero allocation (or projected warm start when no
    // user is active but capacity exists — zero keeps results deterministic).
    sol.allocation.assign(m, 0.0);
    sol.objective = active.empty() ? 0.0 : kNegInf;
    sol.converged = true;
    // Utilities for inactive users are still reported against the returned
    // allocation (zero here).
    return sol;
  }

  // If capacity covers every file, a_j = 1 is optimal (objective is
  // monotone non-decreasing in each a_j).
  if (capacity >= total_size) {
    sol.allocation.assign(m, 1.0);
    std::vector<double> util(preferences.rows(), 0.0);
    sol.objective =
        Objective(preferences, weights, active, sol.allocation, util);
    for (std::size_t i = 0; i < preferences.rows(); ++i) {
      sol.utilities[i] = Dot(preferences.row(i), sol.allocation);
    }
    sol.converged = true;
    return sol;
  }

  // Starting point: warm start if provided (projected), else uniform spread
  // which guarantees positive utility for every active user.
  std::vector<double> a;
  const double uniform_fill = capacity / total_size;  // < 1 here
  if (!warm_start.empty()) {
    OPUS_CHECK_EQ(warm_start.size(), m);
    a = ProjectCappedSimplex(warm_start, capacity, file_sizes);
    std::vector<double> util(preferences.rows(), 0.0);
    if (Objective(preferences, weights, active, a, util) == kNegInf) {
      a.assign(m, uniform_fill);
    }
  } else {
    a.assign(m, uniform_fill);
  }

  std::vector<double> utilities(preferences.rows(), 0.0);
  std::vector<double> g(m, 0.0), g_prev(m, 0.0), a_prev(m, 0.0);
  std::vector<double> cand(m, 0.0), trial(m, 0.0);
  std::vector<double> cand_util(preferences.rows(), 0.0);

  double f = Objective(preferences, weights, active, a, utilities);
  OPUS_CHECK(f > kNegInf);
  Gradient(preferences, weights, active, utilities, g);

  double step = 1.0;
  bool have_prev = false;

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    sol.iterations = iter;

    // Barzilai-Borwein step length from the previous iterate pair.
    if (have_prev) {
      double sy = 0.0, ss = 0.0;
      for (std::size_t j = 0; j < m; ++j) {
        const double s = a[j] - a_prev[j];
        const double y = g_prev[j] - g[j];  // curvature of -f
        ss += s * s;
        sy += s * y;
      }
      if (sy > 1e-18 && ss > 0.0) {
        step = Clamp(ss / sy, 1e-12, 1e12);
      } else {
        step = std::min(step * 2.0, 1e12);
      }
    }

    // Armijo backtracking on the projected step.
    double f_cand = kNegInf;
    bool accepted = false;
    for (int bt = 0; bt < 80; ++bt) {
      for (std::size_t j = 0; j < m; ++j) trial[j] = a[j] + step * g[j];
      cand = ProjectCappedSimplex(trial, capacity, file_sizes);
      f_cand = Objective(preferences, weights, active, cand, cand_util);
      if (f_cand > kNegInf) {
        double descent = 0.0;  // <g, cand - a> >= 0 for a projected ascent
        for (std::size_t j = 0; j < m; ++j) descent += g[j] * (cand[j] - a[j]);
        if (f_cand >= f + 1e-4 * descent || descent <= 0.0) {
          accepted = true;
          break;
        }
      }
      step *= 0.5;
    }
    if (!accepted) break;  // numerically stuck; residual reported below

    a_prev = a;
    g_prev = g;
    a = cand;
    utilities = cand_util;
    f = f_cand;
    Gradient(preferences, weights, active, utilities, g);
    have_prev = true;

    if (iter % options.check_interval == 0) {
      // Unit-step projected-gradient residual: zero iff KKT-optimal.
      for (std::size_t j = 0; j < m; ++j) trial[j] = a[j] + g[j];
      const auto proj = ProjectCappedSimplex(trial, capacity, file_sizes);
      const double res = MaxAbsDiff(proj, a);
      if (res < options.tolerance) {
        sol.residual = res;
        sol.converged = true;
        break;
      }
    }
  }

  if (!sol.converged) {
    for (std::size_t j = 0; j < m; ++j) trial[j] = a[j] + g[j];
    const auto proj = ProjectCappedSimplex(trial, capacity, file_sizes);
    sol.residual = MaxAbsDiff(proj, a);
    sol.converged = sol.residual < options.tolerance * 10.0;
  }

  sol.allocation = std::move(a);
  sol.objective = f;
  for (std::size_t i = 0; i < preferences.rows(); ++i) {
    sol.utilities[i] = Dot(preferences.row(i), sol.allocation);
  }
  return sol;
}

double PfOptimalityResidual(const Matrix& preferences, double capacity,
                            std::span<const double> allocation,
                            std::span<const double> weights,
                            std::span<const double> file_sizes) {
  OPUS_CHECK_EQ(allocation.size(), preferences.cols());
  const auto active = ActiveUsers(preferences, weights);
  std::vector<double> utilities(preferences.rows(), 0.0);
  std::vector<double> a(allocation.begin(), allocation.end());
  if (Objective(preferences, weights, active, a, utilities) == kNegInf) {
    return std::numeric_limits<double>::infinity();
  }
  std::vector<double> g(preferences.cols(), 0.0);
  Gradient(preferences, weights, active, utilities, g);
  std::vector<double> trial(preferences.cols());
  for (std::size_t j = 0; j < trial.size(); ++j) trial[j] = a[j] + g[j];
  const auto proj = ProjectCappedSimplex(trial, capacity, file_sizes);
  return MaxAbsDiff(proj, a);
}

void PfStats::Observe(const PfSolution& solution) {
  ++solves;
  iterations += static_cast<std::uint64_t>(solution.iterations);
  max_residual = std::max(max_residual, solution.residual);
}

}  // namespace opus
