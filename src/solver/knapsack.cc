#include "solver/knapsack.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace opus {

KnapsackSolution SolveFractionalKnapsack(std::span<const double> values,
                                         double capacity) {
  return SolveFractionalKnapsack(values, capacity, {});
}

KnapsackSolution SolveFractionalKnapsack(std::span<const double> values,
                                         double capacity,
                                         std::span<const double> sizes) {
  OPUS_CHECK_GE(capacity, 0.0);
  if (!sizes.empty()) {
    OPUS_CHECK_EQ(sizes.size(), values.size());
    for (double s : sizes) OPUS_CHECK_GT(s, 0.0);
  }
  auto size_of = [&](std::size_t j) {
    return sizes.empty() ? 1.0 : sizes[j];
  };
  KnapsackSolution sol;
  sol.allocation.assign(values.size(), 0.0);

  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return values[a] / size_of(a) > values[b] / size_of(b);
                   });

  double remaining = capacity;
  for (std::size_t j : order) {
    OPUS_CHECK_GE(values[j], 0.0);
    if (remaining <= 0.0) break;
    if (values[j] <= 0.0) break;  // zero-value files are never worth caching
    const double take = std::min(1.0, remaining / size_of(j));
    sol.allocation[j] = take;
    sol.value += values[j] * take;
    remaining -= take * size_of(j);
  }
  return sol;
}

}  // namespace opus
