// Euclidean projection onto the capped simplex
//   S = { x in R^M : 0 <= x_j <= 1, sum_j x_j <= C }.
//
// This is the feasible set of the cache allocation problem (files of unit
// size cached fractionally, total capacity C). The projection is the
// workhorse of the projected-gradient PF solver.
#pragma once

#include <span>
#include <vector>

namespace opus {

// Returns argmin_{x in S} ||x - y||_2. Requires capacity >= 0.
//
// Implementation: if clamp(y, 0, 1) already fits the capacity it is optimal;
// otherwise the KKT conditions give x_j = clamp(y_j - tau, 0, 1) for the
// unique tau >= 0 with sum_j x_j = C, located by bisection (the sum is
// continuous and non-increasing in tau).
std::vector<double> ProjectCappedSimplex(std::span<const double> y,
                                         double capacity);

// Weighted variant for heterogeneous file sizes (paper Sec. V-B): the
// feasible set becomes { 0 <= x_j <= 1, sum_j w_j x_j <= C } with w_j > 0
// (the file sizes). KKT gives x_j = clamp(y_j - tau * w_j, 0, 1).
// An empty `weights` span means all-ones (the unweighted set).
std::vector<double> ProjectCappedSimplex(std::span<const double> y,
                                         double capacity,
                                         std::span<const double> weights);

// True iff x is feasible for S up to tolerance `tol`. Empty `weights`
// means all-ones.
bool IsFeasibleCappedSimplex(std::span<const double> x, double capacity,
                             double tol = 1e-9,
                             std::span<const double> weights = {});

}  // namespace opus
