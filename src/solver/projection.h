// Euclidean projection onto the capped simplex
//   S = { x in R^M : 0 <= x_j <= 1, sum_j x_j <= C }.
//
// This is the feasible set of the cache allocation problem (files of unit
// size cached fractionally, total capacity C). The projection is the
// workhorse of the projected-gradient PF solver.
//
// Two implementations of the same map:
//  - ProjectCappedSimplex: exact sort-based breakpoint algorithm. The KKT
//    conditions give x_j = clamp(y_j - tau * w_j, 0, 1); the weighted sum
//    g(tau) = sum_j w_j x_j(tau) is piecewise linear and non-increasing
//    with at most 2M breakpoints ((y_j - 1)/w_j where a coordinate leaves
//    its upper bound, y_j/w_j where it hits zero). Sorting the breakpoints
//    and sweeping the segments locates the exact tau with g(tau) = C in
//    O(M log M).
//  - ProjectCappedSimplexBisect: the original 200-round bisection on tau,
//    kept as an independent cross-check path (tests assert the two agree).
//
// CappedSimplexProjector adds a warm-started tau fast path on top of the
// exact algorithm for the projection-heavy inner loops of the PF solver
// (Armijo backtracking, residual checks): consecutive projections of nearby
// points have nearby tau, so a safeguarded Newton iteration on g seeded
// with the previous tau usually resolves in a few O(M) passes without
// sorting; when it fails to converge it falls back to the exact sort.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace opus {

// Returns argmin_{x in S} ||x - y||_2 via the exact breakpoint algorithm.
// Requires capacity >= 0.
std::vector<double> ProjectCappedSimplex(std::span<const double> y,
                                         double capacity);

// Weighted variant for heterogeneous file sizes (paper Sec. V-B): the
// feasible set becomes { 0 <= x_j <= 1, sum_j w_j x_j <= C } with w_j > 0
// (the file sizes). KKT gives x_j = clamp(y_j - tau * w_j, 0, 1).
// An empty `weights` span means all-ones (the unweighted set).
std::vector<double> ProjectCappedSimplex(std::span<const double> y,
                                         double capacity,
                                         std::span<const double> weights);

// Bisection reference implementation of the same projection (the pre-
// breakpoint production path). Kept as an algorithmically independent
// cross-check; also the projection used by the dense reference PF engine
// so benchmarks measure the full pre-optimization baseline.
std::vector<double> ProjectCappedSimplexBisect(
    std::span<const double> y, double capacity,
    std::span<const double> weights = {});

// Reusable projection engine with workspace reuse and a warm-started tau
// fast path. One projector serves one solve (single-threaded); parallel
// solves each own a projector, so results are independent of thread count.
class CappedSimplexProjector {
 public:
  struct Stats {
    std::uint64_t calls = 0;       // total projections
    std::uint64_t clamp_fast = 0;  // box clamp already feasible (no tau)
    std::uint64_t warm_hits = 0;   // warm-started Newton resolved tau
    std::uint64_t exact_solves = 0;  // full breakpoint sort runs
  };

  // Projects `y` onto the (weighted) capped simplex into `out`. Empty
  // `weights` means all-ones; weights must be positive (validated by the
  // caller once, not per call — this runs in the solver's inner loop).
  void Project(std::span<const double> y, double capacity,
               std::span<const double> weights, std::vector<double>& out);

  const Stats& stats() const { return stats_; }

 private:
  struct Event {
    double tau;
    double d_at_one;  // delta to the at-upper-bound weight sum
    double d_wy;      // delta to sum of w_j * y_j over interior coords
    double d_ww;      // delta to sum of w_j^2 over interior coords
  };

  // Exact breakpoint solve for tau with g(tau) = capacity; requires the
  // box-clamped point to exceed capacity.
  double ExactTau(std::span<const double> y, double capacity,
                  std::span<const double> weights);

  // Safeguarded Newton on g seeded at `tau0`; returns true and writes
  // `*tau` on convergence, false to request the exact path.
  bool WarmTau(std::span<const double> y, double capacity,
               std::span<const double> weights, double tau0, double tau_max,
               double* tau) const;

  Stats stats_;
  std::vector<Event> events_;  // reused breakpoint workspace
  double last_tau_ = 0.0;
  bool have_tau_ = false;
};

// True iff x is feasible for S up to tolerance `tol`. Empty `weights`
// means all-ones.
bool IsFeasibleCappedSimplex(std::span<const double> x, double capacity,
                             double tol = 1e-9,
                             std::span<const double> weights = {});

}  // namespace opus
