#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace opus {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatDouble(double x, int precision) {
  return StrFormat("%.*f", precision, x);
}

std::string FormatBytes(std::uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  return StrFormat("%.1f %s", v, units[u]);
}

bool ParseU64(const std::string& s, std::uint64_t* out) {
  if (s.empty() || !std::isdigit(static_cast<unsigned char>(s[0]))) {
    return false;  // no leading whitespace, sign, or empty field
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool ParseFiniteDouble(const std::string& s, double* out) {
  if (s.empty() || std::isspace(static_cast<unsigned char>(s[0]))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno == ERANGE || end != s.c_str() + s.size() || !std::isfinite(v)) {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace opus
