// Fixed-size thread pool shared by the parallel layers of the library (the
// sweep engine, Algorithm 1's leave-one-out tax solves, the bench drivers).
//
// Design constraints, in order:
//  - Determinism first: the pool never owns results. Callers hand
//    ParallelFor an index space and write into pre-sized slabs keyed by
//    index, so output is byte-identical regardless of scheduling. There is
//    no work stealing and no unordered reduction anywhere in the pool.
//  - No oversubscription: one process-wide pool (`Shared()`) sized to the
//    hardware, reused by every layer. A ParallelFor issued from inside a
//    pool task runs inline on the calling thread (nested parallelism would
//    otherwise deadlock a fixed pool and oversubscribe the machine).
//  - The calling thread participates: ParallelFor on a zero-worker pool
//    degrades to a plain serial loop, so a `threads=1` configuration takes
//    exactly the historical serial code path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace opus {

// Hardware thread count, never zero (hardware_concurrency() may return 0).
unsigned HardwareThreads();

class ThreadPool {
 public:
  // Spawns `num_workers` long-lived worker threads (0 is valid: every
  // ParallelFor then runs inline on the caller).
  explicit ThreadPool(unsigned num_workers);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  unsigned num_workers() const {
    return static_cast<unsigned>(workers_.size());
  }

  // Runs body(i) for every i in [0, n) and blocks until all complete.
  // Indices are claimed dynamically in increasing order; any index may run
  // on any thread, so `body` must only touch per-index state (or otherwise
  // synchronize). `max_parallelism` caps the number of threads executing
  // the loop, counting the caller (0 = caller plus every worker);
  // max_parallelism=1 is exactly a serial loop. Calls from inside a pool
  // task run inline serially — see file comment.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                   unsigned max_parallelism = 0);

  // ParallelFor variant whose body additionally receives a dense slot id in
  // [0, SlotBound(n, max_parallelism)): every thread that joins the loop
  // claims one slot for its whole participation, so the body can index
  // pre-sized per-thread scratch (weight vectors, log buffers, restriction
  // masks) without allocation or sharing. Index-to-slot assignment is
  // scheduling-dependent; determinism still comes from writing results into
  // index-keyed slabs, exactly as with ParallelFor.
  void ParallelForSlot(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t)>& body,
      unsigned max_parallelism = 0);

  // Upper bound (inclusive of the caller) on distinct slot ids a
  // ParallelForSlot with these arguments can hand out.
  unsigned SlotBound(std::size_t n, unsigned max_parallelism = 0) const {
    unsigned bound = num_workers() + 1;
    if (max_parallelism != 0 && max_parallelism < bound) {
      bound = max_parallelism;
    }
    if (n < bound) bound = static_cast<unsigned>(n);
    return bound == 0 ? 1 : bound;
  }

  // Process-wide pool with HardwareThreads() - 1 workers (at least 1), so a
  // caller-participating ParallelFor uses the whole machine. Created on
  // first use; never destroyed.
  static ThreadPool& Shared();

 private:
  struct Job {
    std::size_t n = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    // Slot-aware body (ParallelForSlot); exactly one of body/slot_body set.
    const std::function<void(std::size_t, std::size_t)>* slot_body = nullptr;
    unsigned max_parallelism = 0;  // 0 = unlimited
    std::atomic<std::size_t> next{0};
    std::atomic<unsigned> next_slot{0};
    unsigned joined = 0;     // threads executing this job; pool mutex
    std::size_t completed = 0;  // finished iterations; job mutex
    std::mutex mu;
    std::condition_variable done;
  };

  void WorkerLoop();
  // Executes iterations of `job` until the index space is exhausted.
  static void Execute(Job& job);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Job>> queue_;  // jobs with unclaimed indices
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace opus
