// Small numeric helpers shared across modules.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace opus {

// True iff |a - b| <= tol (absolute tolerance).
bool NearlyEqual(double a, double b, double tol = 1e-9);

// Clamps x into [lo, hi]. Requires lo <= hi.
double Clamp(double x, double lo, double hi);

// Sum of a span of doubles using Kahan compensation (taxes are differences
// of large sums of logs; naive summation loses digits at N=150 users).
double KahanSum(std::span<const double> xs);

// Normalizes `v` in place so it sums to 1. Entries must be non-negative.
// Returns false (leaving v untouched) when the sum is zero.
bool NormalizeToOne(std::vector<double>& v);

// Dot product of equal-length spans.
double Dot(std::span<const double> a, std::span<const double> b);

// L-infinity distance between equal-length spans.
double MaxAbsDiff(std::span<const double> a, std::span<const double> b);

// Arithmetic mean; requires non-empty input.
double Mean(std::span<const double> xs);

}  // namespace opus
