// Minimal dense row-major matrix of doubles, plus an immutable CSR
// (compressed sparse row) view of it.
//
// Used for N-by-M preference matrices and per-(user,file) access matrices.
// Header-only by design: the types are storage conventions, not behaviour.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/check.h"

namespace opus {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  // Builds from nested initializer data; all rows must have equal length.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows) {
    if (rows.empty()) return Matrix();
    Matrix m(rows.size(), rows[0].size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      OPUS_CHECK_EQ(rows[i].size(), m.cols_);
      for (std::size_t j = 0; j < m.cols_; ++j) m(i, j) = rows[i][j];
    }
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j) {
    OPUS_CHECK_LT(i, rows_);
    OPUS_CHECK_LT(j, cols_);
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    OPUS_CHECK_LT(i, rows_);
    OPUS_CHECK_LT(j, cols_);
    return data_[i * cols_ + j];
  }

  std::span<const double> row(std::size_t i) const {
    OPUS_CHECK_LT(i, rows_);
    return {data_.data() + i * cols_, cols_};
  }
  std::span<double> row(std::size_t i) {
    OPUS_CHECK_LT(i, rows_);
    return {data_.data() + i * cols_, cols_};
  }

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// CSR (compressed sparse row) view of a non-negative matrix.
//
// Zipf/TPC-H preference matrices are overwhelmingly sparse, so the PF
// solver's Objective/Gradient passes iterate nonzeros only (O(nnz) instead
// of O(N*M)). Building the view validates every entry once (entries must be
// non-negative), which hoists the per-solve preference validation out of the
// solver's hot path: OpuS's N+1 leave-one-out solves share one view and
// never re-validate the matrix. Per-row sums are cached at build time for
// the active-user test and the tax welfare accounting.
//
// A shared view (CachingProblem's cache) is treated as immutable. The
// mutating helpers (NormalizeRowsInPlace, ZeroRow, Compact) exist for
// owned copies only: sparse problem construction and the allocator's
// cross-window warm state, which tombstones departed users' rows and
// compacts the storage under churn.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  // Builds directly from CSR parts (no dense intermediate) — the only way
  // to construct instances whose dense form would not fit in memory.
  // `row_ptr` has rows+1 monotone entries ending at col_idx.size(); each
  // row's columns must be strictly ascending and < cols; values must be
  // non-negative (zeros are permitted and simply carried).
  static CsrMatrix FromParts(std::size_t rows, std::size_t cols,
                             std::vector<std::size_t> row_ptr,
                             std::vector<std::uint32_t> col_idx,
                             std::vector<double> values) {
    OPUS_CHECK_EQ(row_ptr.size(), rows + 1);
    OPUS_CHECK_EQ(col_idx.size(), values.size());
    OPUS_CHECK_EQ(row_ptr[0], 0u);
    OPUS_CHECK_EQ(row_ptr[rows], col_idx.size());
    CsrMatrix c;
    c.rows_ = rows;
    c.cols_ = cols;
    c.row_ptr_ = std::move(row_ptr);
    c.col_idx_ = std::move(col_idx);
    c.values_ = std::move(values);
    c.row_sums_.assign(rows, 0.0);
    for (std::size_t i = 0; i < rows; ++i) {
      OPUS_CHECK_LE(c.row_ptr_[i], c.row_ptr_[i + 1]);
      double sum = 0.0;
      for (std::size_t k = c.row_ptr_[i]; k < c.row_ptr_[i + 1]; ++k) {
        OPUS_CHECK_LT(c.col_idx_[k], cols);
        if (k > c.row_ptr_[i]) OPUS_CHECK_LT(c.col_idx_[k - 1], c.col_idx_[k]);
        OPUS_CHECK_GE(c.values_[k], 0.0);
        sum += c.values_[k];
      }
      c.row_sums_[i] = sum;
    }
    return c;
  }

  // Builds the view, checking every entry is non-negative (aborts on a
  // negative or NaN entry — the solver's former per-pass validation).
  static CsrMatrix FromDense(const Matrix& dense) {
    CsrMatrix c;
    c.rows_ = dense.rows();
    c.cols_ = dense.cols();
    c.row_ptr_.assign(c.rows_ + 1, 0);
    c.row_sums_.assign(c.rows_, 0.0);
    for (std::size_t i = 0; i < c.rows_; ++i) {
      double sum = 0.0;
      for (std::size_t j = 0; j < c.cols_; ++j) {
        const double v = dense(i, j);
        OPUS_CHECK_GE(v, 0.0);
        if (v > 0.0) {
          c.col_idx_.push_back(static_cast<std::uint32_t>(j));
          c.values_.push_back(v);
          sum += v;
        }
      }
      c.row_ptr_[i + 1] = c.col_idx_.size();
      c.row_sums_[i] = sum;
    }
    return c;
  }

  // Restriction to a strictly ascending subset of columns, renumbered to
  // 0..columns.size()-1. Used by the active-set-restricted leave-one-out
  // tax solves, which only re-optimize coordinates near the departing
  // user's support.
  CsrMatrix ColumnSubset(std::span<const std::size_t> columns) const {
    constexpr std::uint32_t kAbsent = 0xffffffffu;
    std::vector<std::uint32_t> new_index(cols_, kAbsent);
    for (std::size_t k = 0; k < columns.size(); ++k) {
      OPUS_CHECK_LT(columns[k], cols_);
      if (k > 0) OPUS_CHECK_LT(columns[k - 1], columns[k]);
      new_index[columns[k]] = static_cast<std::uint32_t>(k);
    }
    CsrMatrix c;
    c.rows_ = rows_;
    c.cols_ = columns.size();
    c.row_ptr_.assign(rows_ + 1, 0);
    c.row_sums_.assign(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
      double sum = 0.0;
      for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
        const std::uint32_t nj = new_index[col_idx_[k]];
        if (nj == kAbsent) continue;
        c.col_idx_.push_back(nj);
        c.values_.push_back(values_[k]);
        sum += values_[k];
      }
      c.row_ptr_[i + 1] = c.col_idx_.size();
      c.row_sums_[i] = sum;
    }
    return c;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  // Column indices / values of row i's nonzeros, in ascending column order.
  std::span<const std::uint32_t> row_cols(std::size_t i) const {
    OPUS_CHECK_LT(i, rows_);
    return {col_idx_.data() + row_ptr_[i], row_ptr_[i + 1] - row_ptr_[i]};
  }
  std::span<const double> row_vals(std::size_t i) const {
    OPUS_CHECK_LT(i, rows_);
    return {values_.data() + row_ptr_[i], row_ptr_[i + 1] - row_ptr_[i]};
  }

  // Cached sum of row i (identical to summing the dense row: zeros add
  // exactly nothing in IEEE arithmetic).
  double row_sum(std::size_t i) const {
    OPUS_CHECK_LT(i, rows_);
    return row_sums_[i];
  }

  // nnz / (rows * cols); 0 for an empty matrix.
  double NnzRatio() const {
    return rows_ * cols_ == 0
               ? 0.0
               : static_cast<double>(nnz()) /
                     static_cast<double>(rows_ * cols_);
  }

  // Scales every row to sum to 1 (rows summing to 0 stay zero). Identical
  // arithmetic to normalizing the dense row: each stored value is divided
  // by the plain left-to-right sum of the row's entries.
  void NormalizeRowsInPlace() {
    for (std::size_t i = 0; i < rows_; ++i) {
      const double total = row_sums_[i];
      if (total <= 0.0) continue;
      for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
        values_[k] /= total;
      }
      double sum = 0.0;
      for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
        sum += values_[k];
      }
      row_sums_[i] = sum;
    }
  }

  // Tombstones row i: its stored values become explicit zeros (the row
  // behaves as empty everywhere — utilities, gradients, L1 distances — at
  // unchanged storage). Returns the number of entries newly zeroed; the
  // owner decides when the accumulated tombstones justify a Compact().
  std::size_t ZeroRow(std::size_t i) {
    OPUS_CHECK_LT(i, rows_);
    std::size_t zeroed = 0;
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      if (values_[k] != 0.0) ++zeroed;
      values_[k] = 0.0;
    }
    row_sums_[i] = 0.0;
    return zeroed;
  }

  // Drops every explicitly-stored zero and releases the freed capacity, so
  // storage returns to O(live nnz) after mass ZeroRow churn.
  void Compact() {
    std::size_t out = 0;
    for (std::size_t i = 0; i < rows_; ++i) {
      const std::size_t begin = row_ptr_[i], end = row_ptr_[i + 1];
      row_ptr_[i] = out;
      for (std::size_t k = begin; k < end; ++k) {
        if (values_[k] == 0.0) continue;
        col_idx_[out] = col_idx_[k];
        values_[out] = values_[k];
        ++out;
      }
    }
    row_ptr_[rows_] = out;
    col_idx_.resize(out);
    values_.resize(out);
    col_idx_.shrink_to_fit();
    values_.shrink_to_fit();
  }

  // Bytes of heap storage held (used by warm-state memory accounting).
  std::size_t MemoryBytes() const {
    return row_ptr_.capacity() * sizeof(std::size_t) +
           col_idx_.capacity() * sizeof(std::uint32_t) +
           values_.capacity() * sizeof(double) +
           row_sums_.capacity() * sizeof(double);
  }

  // Order-dependent O(nnz) content hash over the structure and the value
  // bit patterns (FNV-1a over dims, row extents, columns, and doubles).
  // Two matrices with equal hash are equal up to a ~2^-64 collision — the
  // warm-state problem key trades that collision odds for never storing or
  // comparing a second full copy of the inputs.
  std::uint64_t ContentHash() const {
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
      for (int b = 0; b < 8; ++b) {
        h ^= (v >> (8 * b)) & 0xffu;
        h *= 1099511628211ull;
      }
    };
    mix(rows_);
    mix(cols_);
    for (std::size_t i = 1; i < row_ptr_.size(); ++i) mix(row_ptr_[i]);
    for (std::uint32_t c : col_idx_) mix(c);
    for (double v : values_) {
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(v));
      std::memcpy(&bits, &v, sizeof(bits));
      mix(bits);
    }
    return h;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::uint32_t> col_idx_;
  std::vector<double> values_;
  std::vector<double> row_sums_;
};

// L1 distance between row `ia` of `a` and row `ib` of `b` (a two-pointer
// merge over both rows' nonzeros). The delta-window drift signal compares
// the current problem's rows against the warm state's without ever
// materializing either matrix densely.
inline double RowL1DistanceBetween(const CsrMatrix& a, std::size_t ia,
                                   const CsrMatrix& b, std::size_t ib) {
  const auto ac = a.row_cols(ia);
  const auto av = a.row_vals(ia);
  const auto bc = b.row_cols(ib);
  const auto bv = b.row_vals(ib);
  double dist = 0.0;
  std::size_t i = 0, j = 0;
  while (i < ac.size() && j < bc.size()) {
    if (ac[i] == bc[j]) {
      dist += std::fabs(av[i] - bv[j]);
      ++i;
      ++j;
    } else if (ac[i] < bc[j]) {
      dist += av[i++];
    } else {
      dist += bv[j++];
    }
  }
  for (; i < ac.size(); ++i) dist += av[i];
  for (; j < bc.size(); ++j) dist += bv[j];
  return dist;
}

// FNV-1a over a vector of doubles' bit patterns (order-dependent), used
// with CsrMatrix::ContentHash to key warm state on the problem shape
// (file sizes, priority weights) without retaining full copies.
inline std::uint64_t HashDoubles(std::span<const double> values,
                                 std::uint64_t seed = 1469598103934665603ull) {
  std::uint64_t h = seed;
  auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(values.size());
  for (double v : values) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  }
  return h;
}

}  // namespace opus
