// Minimal dense row-major matrix of doubles.
//
// Used for N-by-M preference matrices and per-(user,file) access matrices.
// Header-only by design: the type is a storage convention, not behaviour.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/check.h"

namespace opus {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  // Builds from nested initializer data; all rows must have equal length.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows) {
    if (rows.empty()) return Matrix();
    Matrix m(rows.size(), rows[0].size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      OPUS_CHECK_EQ(rows[i].size(), m.cols_);
      for (std::size_t j = 0; j < m.cols_; ++j) m(i, j) = rows[i][j];
    }
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j) {
    OPUS_CHECK_LT(i, rows_);
    OPUS_CHECK_LT(j, cols_);
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    OPUS_CHECK_LT(i, rows_);
    OPUS_CHECK_LT(j, cols_);
    return data_[i * cols_ + j];
  }

  std::span<const double> row(std::size_t i) const {
    OPUS_CHECK_LT(i, rows_);
    return {data_.data() + i * cols_, cols_};
  }
  std::span<double> row(std::size_t i) {
    OPUS_CHECK_LT(i, rows_);
    return {data_.data() + i * cols_, cols_};
  }

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace opus
