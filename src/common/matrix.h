// Minimal dense row-major matrix of doubles, plus an immutable CSR
// (compressed sparse row) view of it.
//
// Used for N-by-M preference matrices and per-(user,file) access matrices.
// Header-only by design: the types are storage conventions, not behaviour.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"

namespace opus {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  // Builds from nested initializer data; all rows must have equal length.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows) {
    if (rows.empty()) return Matrix();
    Matrix m(rows.size(), rows[0].size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      OPUS_CHECK_EQ(rows[i].size(), m.cols_);
      for (std::size_t j = 0; j < m.cols_; ++j) m(i, j) = rows[i][j];
    }
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j) {
    OPUS_CHECK_LT(i, rows_);
    OPUS_CHECK_LT(j, cols_);
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    OPUS_CHECK_LT(i, rows_);
    OPUS_CHECK_LT(j, cols_);
    return data_[i * cols_ + j];
  }

  std::span<const double> row(std::size_t i) const {
    OPUS_CHECK_LT(i, rows_);
    return {data_.data() + i * cols_, cols_};
  }
  std::span<double> row(std::size_t i) {
    OPUS_CHECK_LT(i, rows_);
    return {data_.data() + i * cols_, cols_};
  }

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// Immutable CSR (compressed sparse row) view of a non-negative dense matrix.
//
// Zipf/TPC-H preference matrices are overwhelmingly sparse, so the PF
// solver's Objective/Gradient passes iterate nonzeros only (O(nnz) instead
// of O(N*M)). Building the view validates every entry once (entries must be
// non-negative), which hoists the per-solve preference validation out of the
// solver's hot path: OpuS's N+1 leave-one-out solves share one view and
// never re-validate the matrix. Per-row sums are cached at build time for
// the active-user test and the tax welfare accounting.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  // Builds the view, checking every entry is non-negative (aborts on a
  // negative or NaN entry — the solver's former per-pass validation).
  static CsrMatrix FromDense(const Matrix& dense) {
    CsrMatrix c;
    c.rows_ = dense.rows();
    c.cols_ = dense.cols();
    c.row_ptr_.assign(c.rows_ + 1, 0);
    c.row_sums_.assign(c.rows_, 0.0);
    for (std::size_t i = 0; i < c.rows_; ++i) {
      double sum = 0.0;
      for (std::size_t j = 0; j < c.cols_; ++j) {
        const double v = dense(i, j);
        OPUS_CHECK_GE(v, 0.0);
        if (v > 0.0) {
          c.col_idx_.push_back(static_cast<std::uint32_t>(j));
          c.values_.push_back(v);
          sum += v;
        }
      }
      c.row_ptr_[i + 1] = c.col_idx_.size();
      c.row_sums_[i] = sum;
    }
    return c;
  }

  // Restriction to a strictly ascending subset of columns, renumbered to
  // 0..columns.size()-1. Used by the active-set-restricted leave-one-out
  // tax solves, which only re-optimize coordinates near the departing
  // user's support.
  CsrMatrix ColumnSubset(std::span<const std::size_t> columns) const {
    constexpr std::uint32_t kAbsent = 0xffffffffu;
    std::vector<std::uint32_t> new_index(cols_, kAbsent);
    for (std::size_t k = 0; k < columns.size(); ++k) {
      OPUS_CHECK_LT(columns[k], cols_);
      if (k > 0) OPUS_CHECK_LT(columns[k - 1], columns[k]);
      new_index[columns[k]] = static_cast<std::uint32_t>(k);
    }
    CsrMatrix c;
    c.rows_ = rows_;
    c.cols_ = columns.size();
    c.row_ptr_.assign(rows_ + 1, 0);
    c.row_sums_.assign(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
      double sum = 0.0;
      for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
        const std::uint32_t nj = new_index[col_idx_[k]];
        if (nj == kAbsent) continue;
        c.col_idx_.push_back(nj);
        c.values_.push_back(values_[k]);
        sum += values_[k];
      }
      c.row_ptr_[i + 1] = c.col_idx_.size();
      c.row_sums_[i] = sum;
    }
    return c;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  // Column indices / values of row i's nonzeros, in ascending column order.
  std::span<const std::uint32_t> row_cols(std::size_t i) const {
    OPUS_CHECK_LT(i, rows_);
    return {col_idx_.data() + row_ptr_[i], row_ptr_[i + 1] - row_ptr_[i]};
  }
  std::span<const double> row_vals(std::size_t i) const {
    OPUS_CHECK_LT(i, rows_);
    return {values_.data() + row_ptr_[i], row_ptr_[i + 1] - row_ptr_[i]};
  }

  // Cached sum of row i (identical to summing the dense row: zeros add
  // exactly nothing in IEEE arithmetic).
  double row_sum(std::size_t i) const {
    OPUS_CHECK_LT(i, rows_);
    return row_sums_[i];
  }

  // nnz / (rows * cols); 0 for an empty matrix.
  double NnzRatio() const {
    return rows_ * cols_ == 0
               ? 0.0
               : static_cast<double>(nnz()) /
                     static_cast<double>(rows_ * cols_);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::uint32_t> col_idx_;
  std::vector<double> values_;
  std::vector<double> row_sums_;
};

}  // namespace opus
