#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace opus {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = SplitMix64(sm);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  OPUS_CHECK_GT(bound, 0u);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  OPUS_CHECK_LE(lo, hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  const std::uint64_t r = (span == 0) ? NextU64() : NextBounded(span);
  return lo + static_cast<std::int64_t>(r);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextUniform(double lo, double hi) {
  OPUS_CHECK_LE(lo, hi);
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  // Box-Muller; u1 in (0,1] to avoid log(0).
  const double u1 = 1.0 - NextDouble();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::NextExponential(double lambda) {
  OPUS_CHECK_GT(lambda, 0.0);
  return -std::log(1.0 - NextDouble()) / lambda;
}

std::vector<std::size_t> Rng::Permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  Shuffle(p);
  return p;
}

std::size_t Rng::NextDiscrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    OPUS_CHECK_GE(w, 0.0);
    total += w;
  }
  OPUS_CHECK_GT(total, 0.0);
  double x = NextDouble() * total;
  for (std::size_t k = 0; k + 1 < weights.size(); ++k) {
    x -= weights[k];
    if (x < 0.0) return k;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace opus
