#include "common/thread_pool.h"

#include <algorithm>

namespace opus {
namespace {

// Set for the lifetime of every pool worker; ParallelFor consults it to run
// nested loops inline instead of deadlocking on the fixed pool.
thread_local bool t_inside_pool_task = false;

}  // namespace

unsigned HardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned num_workers) {
  workers_.reserve(num_workers);
  for (unsigned t = 0; t < num_workers; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Execute(Job& job) {
  std::size_t ran = 0;
  std::size_t slot = 0;
  bool slot_claimed = false;
  for (std::size_t i = job.next.fetch_add(1); i < job.n;
       i = job.next.fetch_add(1)) {
    if (job.slot_body != nullptr) {
      if (!slot_claimed) {
        slot = job.next_slot.fetch_add(1);
        slot_claimed = true;
      }
      (*job.slot_body)(i, slot);
    } else {
      (*job.body)(i);
    }
    ++ran;
  }
  if (ran == 0) return;
  std::lock_guard<std::mutex> lk(job.mu);
  job.completed += ran;
  if (job.completed == job.n) job.done.notify_all();
}

void ThreadPool::WorkerLoop() {
  t_inside_pool_task = true;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    std::shared_ptr<Job> job;
    for (const auto& candidate : queue_) {
      const bool has_work = candidate->next.load() < candidate->n;
      const bool has_slot = candidate->max_parallelism == 0 ||
                            candidate->joined < candidate->max_parallelism;
      if (has_work && has_slot) {
        job = candidate;
        ++candidate->joined;
        break;
      }
    }
    if (job == nullptr) {
      if (stop_) return;
      work_cv_.wait(lk);
      continue;
    }
    lk.unlock();
    Execute(*job);
    lk.lock();
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& body,
                             unsigned max_parallelism) {
  if (n == 0) return;
  if (t_inside_pool_task || workers_.empty() || n == 1 ||
      max_parallelism == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->n = n;
  job->body = &body;
  job->max_parallelism = max_parallelism;
  {
    std::lock_guard<std::mutex> lk(mu_);
    job->joined = 1;  // the caller occupies the first parallelism slot
    queue_.push_back(job);
  }
  work_cv_.notify_all();
  Execute(*job);
  {
    std::unique_lock<std::mutex> lk(job->mu);
    job->done.wait(lk, [&] { return job->completed == job->n; });
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.erase(std::find(queue_.begin(), queue_.end(), job));
  }
}

void ThreadPool::ParallelForSlot(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    unsigned max_parallelism) {
  if (n == 0) return;
  if (t_inside_pool_task || workers_.empty() || n == 1 ||
      max_parallelism == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i, 0);
    return;
  }
  auto job = std::make_shared<Job>();
  job->n = n;
  job->slot_body = &body;
  job->max_parallelism = max_parallelism;
  {
    std::lock_guard<std::mutex> lk(mu_);
    job->joined = 1;
    queue_.push_back(job);
  }
  work_cv_.notify_all();
  Execute(*job);
  {
    std::unique_lock<std::mutex> lk(job->mu);
    job->done.wait(lk, [&] { return job->completed == job->n; });
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.erase(std::find(queue_.begin(), queue_.end(), job));
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool =
      new ThreadPool(std::max(1u, HardwareThreads() - 1));
  return *pool;
}

}  // namespace opus
