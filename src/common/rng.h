// Deterministic pseudo-random number generation for reproducible experiments.
//
// All stochastic components of the library (workload generators, trace
// simulators, probabilistic blocking) draw from an explicitly seeded Rng so
// that every experiment in EXPERIMENTS.md is bit-reproducible. The engine is
// splitmix64-seeded xoshiro256**, which is fast, high quality, and has a
// stable cross-platform output sequence (unlike std::mt19937 distributions,
// whose mapping is implementation-defined for some distributions).
#pragma once

#include <cstdint>
#include <vector>

namespace opus {

// Deterministic 64-bit PRNG (xoshiro256**). Not thread-safe; use one Rng per
// thread or per logical stream.
class Rng {
 public:
  // Seeds the four-word state from `seed` via splitmix64. Any seed is valid.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Next raw 64-bit value.
  std::uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [0, bound) using rejection sampling (unbiased).
  // Requires bound > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  // Bernoulli trial with success probability p (clamped to [0, 1]).
  bool NextBernoulli(double p);

  // Uniform double in [lo, hi). Requires lo <= hi.
  double NextUniform(double lo, double hi);

  // Standard normal via Box-Muller (no cached spare; deterministic stream).
  double NextGaussian();

  // Exponential with rate lambda > 0.
  double NextExponential(double lambda);

  // Fisher-Yates shuffle of `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(NextBounded(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // A random permutation of {0, 1, ..., n-1}.
  std::vector<std::size_t> Permutation(std::size_t n);

  // Samples an index in [0, weights.size()) with probability proportional to
  // weights[k]. Requires at least one strictly positive weight and no
  // negative weights.
  std::size_t NextDiscrete(const std::vector<double>& weights);

  // Derives an independent child stream (useful to give each user/file its
  // own deterministic stream regardless of consumption order elsewhere).
  Rng Fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace opus
