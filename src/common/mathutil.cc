#include "common/mathutil.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace opus {

bool NearlyEqual(double a, double b, double tol) {
  return std::fabs(a - b) <= tol;
}

double Clamp(double x, double lo, double hi) {
  OPUS_CHECK_LE(lo, hi);
  return std::min(hi, std::max(lo, x));
}

double KahanSum(std::span<const double> xs) {
  double sum = 0.0;
  double c = 0.0;
  for (double x : xs) {
    const double y = x - c;
    const double t = sum + y;
    c = (t - sum) - y;
    sum = t;
  }
  return sum;
}

bool NormalizeToOne(std::vector<double>& v) {
  double total = 0.0;
  for (double x : v) {
    OPUS_CHECK_GE(x, 0.0);
    total += x;
  }
  if (total <= 0.0) return false;
  for (double& x : v) x /= total;
  return true;
}

double Dot(std::span<const double> a, std::span<const double> b) {
  OPUS_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double MaxAbsDiff(std::span<const double> a, std::span<const double> b) {
  OPUS_CHECK_EQ(a.size(), b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

double Mean(std::span<const double> xs) {
  OPUS_CHECK(!xs.empty());
  return KahanSum(xs) / static_cast<double>(xs.size());
}

}  // namespace opus
