#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace opus::internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& msg) {
  std::fprintf(stderr, "OPUS_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, msg.empty() ? "" : " — ", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace opus::internal
