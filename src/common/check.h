// Contract-checking macros used across the OpuS library.
//
// OPUS_CHECK aborts with a diagnostic on contract violation; it is active in
// all build types because allocation-policy bugs silently corrupt fairness
// guarantees. OPUS_CHECK_* variants print both operands.
#pragma once

#include <sstream>
#include <string>

namespace opus::internal {

// Terminates the process after printing `msg` with source location.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& msg);

}  // namespace opus::internal

#define OPUS_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::opus::internal::CheckFailed(__FILE__, __LINE__, #cond, "");       \
    }                                                                     \
  } while (false)

#define OPUS_CHECK_MSG(cond, msg)                                         \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream oss_;                                            \
      oss_ << msg; /* NOLINT */                                           \
      ::opus::internal::CheckFailed(__FILE__, __LINE__, #cond, oss_.str()); \
    }                                                                     \
  } while (false)

#define OPUS_CHECK_OP(op, a, b)                                           \
  do {                                                                    \
    if (!((a)op(b))) {                                                    \
      std::ostringstream oss_;                                            \
      oss_ << "lhs=" << (a) << " rhs=" << (b);                            \
      ::opus::internal::CheckFailed(__FILE__, __LINE__, #a " " #op " " #b, \
                                    oss_.str());                          \
    }                                                                     \
  } while (false)

#define OPUS_CHECK_EQ(a, b) OPUS_CHECK_OP(==, a, b)
#define OPUS_CHECK_NE(a, b) OPUS_CHECK_OP(!=, a, b)
#define OPUS_CHECK_LT(a, b) OPUS_CHECK_OP(<, a, b)
#define OPUS_CHECK_LE(a, b) OPUS_CHECK_OP(<=, a, b)
#define OPUS_CHECK_GT(a, b) OPUS_CHECK_OP(>, a, b)
#define OPUS_CHECK_GE(a, b) OPUS_CHECK_OP(>=, a, b)
