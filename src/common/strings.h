// String formatting helpers for table/report output, plus strict numeric
// field parsers shared by the journal codec and the tool flag parsers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace opus {

// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

// Fixed-precision double, e.g. FormatDouble(0.12345, 3) == "0.123".
std::string FormatDouble(double x, int precision);

// Human-readable byte size, e.g. "300.0 MB".
std::string FormatBytes(std::uint64_t bytes);

// Strict numeric field parsers. The strtoull/strtod family accepts garbage
// suffixes ("8x" parses as 8) and silently wraps or saturates out-of-range
// input; these reject anything that is not exactly one in-range number.
//
// ParseU64 requires a leading digit (no whitespace or sign), the whole
// string consumed, and no ERANGE overflow.
bool ParseU64(const std::string& s, std::uint64_t* out);

// ParseFiniteDouble rejects leading whitespace, partial consumption,
// ERANGE, and non-finite results (inf/nan).
bool ParseFiniteDouble(const std::string& s, double* out);

}  // namespace opus
