// String formatting helpers for table/report output.
#pragma once

#include <string>
#include <vector>

namespace opus {

// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

// Fixed-precision double, e.g. FormatDouble(0.12345, 3) == "0.123".
std::string FormatDouble(double x, int precision);

// Human-readable byte size, e.g. "300.0 MB".
std::string FormatBytes(std::uint64_t bytes);

}  // namespace opus
