#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace opus {

ZipfDistribution::ZipfDistribution(std::size_t n, double alpha)
    : alpha_(alpha) {
  OPUS_CHECK_GE(n, 1u);
  OPUS_CHECK_GE(alpha, 0.0);
  pmf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    pmf_[k] = std::pow(static_cast<double>(k + 1), -alpha);
    total += pmf_[k];
  }
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    pmf_[k] /= total;
    acc += pmf_[k];
    cdf_[k] = acc;
  }
  cdf_.back() = 1.0;  // guard against rounding
}

double ZipfDistribution::TopMass(double k) const {
  if (k <= 0.0) return 0.0;
  const auto whole = static_cast<std::size_t>(k);
  double mass = 0.0;
  for (std::size_t i = 0; i < whole && i < pmf_.size(); ++i) mass += pmf_[i];
  const double frac = k - static_cast<double>(whole);
  if (frac > 0.0 && whole < pmf_.size()) mass += frac * pmf_[whole];
  return mass;
}

std::size_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace opus
