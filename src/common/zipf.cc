#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace opus {

ZipfDistribution::ZipfDistribution(std::size_t n, double alpha)
    : alpha_(alpha) {
  OPUS_CHECK_GE(n, 1u);
  OPUS_CHECK_GE(alpha, 0.0);
  pmf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    pmf_[k] = std::pow(static_cast<double>(k + 1), -alpha);
    total += pmf_[k];
  }
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    pmf_[k] /= total;
    acc += pmf_[k];
    cdf_[k] = acc;
  }
  cdf_.back() = 1.0;  // guard against rounding

  // Guide table: one cell per rank (n cells over [0,1)), each holding the
  // exact lower-bound rank for the cell's left edge. A cell spans 1/n of
  // probability mass, so on average one rank's worth of CDF — Sample's
  // local walk from guide_[g] is O(1) probes in expectation.
  guide_.resize(n + 1);
  std::size_t k = 0;
  for (std::size_t g = 0; g <= n; ++g) {
    const double edge = static_cast<double>(g) / static_cast<double>(n);
    while (k < n && cdf_[k] < edge) ++k;
    guide_[g] = static_cast<std::uint32_t>(k);
  }
}

double ZipfDistribution::TopMass(double k) const {
  if (k <= 0.0) return 0.0;
  const auto whole = static_cast<std::size_t>(k);
  double mass = 0.0;
  for (std::size_t i = 0; i < whole && i < pmf_.size(); ++i) mass += pmf_[i];
  const double frac = k - static_cast<double>(whole);
  if (frac > 0.0 && whole < pmf_.size()) mass += frac * pmf_[whole];
  return mass;
}

std::size_t ZipfDistribution::Sample(Rng& rng) const {
  // Inverse CDF via guide table. The result must equal
  // lower_bound(cdf_, u) exactly (callers depend on bit-identical rank
  // sequences), so the guide only *starts* the search: the walk below
  // corrects in either direction, which also absorbs any floating-point
  // rounding in the u * n cell computation.
  const double u = rng.NextDouble();
  const std::size_t n = cdf_.size();
  std::size_t g = static_cast<std::size_t>(u * static_cast<double>(n));
  if (g >= n) g = n;  // u is in [0,1), but guard the rounding edge anyway
  std::size_t k = guide_[g];
  if (k >= n) k = n - 1;
  if (cdf_[k] >= u) {
    while (k > 0 && cdf_[k - 1] >= u) --k;
  } else {
    // cdf_.back() == 1.0 > u bounds this walk.
    do {
      ++k;
    } while (cdf_[k] < u);
  }
  return k;
}

}  // namespace opus
