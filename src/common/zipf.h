// Zipf(α) popularity distributions over a finite catalog.
//
// The paper (Sec. VI, "File popularity") assumes user file preferences follow
// a Zipf distribution, matching skewed access patterns observed in production
// clusters. ZipfDistribution provides both the normalized probability vector
// (used directly as caching preferences) and an O(1)-ish sampler (used to
// draw access traces).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace opus {

// Probability mass p(k) ∝ (k+1)^-alpha for ranks k = 0..n-1, normalized.
class ZipfDistribution {
 public:
  // Requires n >= 1 and alpha >= 0 (alpha = 0 is uniform).
  ZipfDistribution(std::size_t n, double alpha);

  std::size_t size() const { return pmf_.size(); }
  double alpha() const { return alpha_; }

  // Probability of rank k (0-based, rank 0 most popular).
  double pmf(std::size_t k) const { return pmf_[k]; }

  // Full probability vector (sums to 1).
  const std::vector<double>& probabilities() const { return pmf_; }

  // Cumulative mass of the `k` most popular ranks (k may exceed size()).
  double TopMass(double k) const;

  // Samples a rank via guide-table inverse CDF: a precomputed table maps
  // u's leading bits to a starting index, and a short local walk lands on
  // the exact lower-bound rank — O(1) expected probes, and bit-identical
  // to a full binary search over the CDF for every u.
  std::size_t Sample(Rng& rng) const;

 private:
  double alpha_;
  std::vector<double> pmf_;
  std::vector<double> cdf_;
  // guide_[g] = smallest rank k with cdf_[k] >= g / guide_cells_.
  std::vector<std::uint32_t> guide_;
};

}  // namespace opus
