// Preference matrix generators (paper Sec. VI "File popularity"): user file
// preferences follow Zipf with per-user rank permutations, matching skewed
// production access patterns while keeping users heterogeneous.
#pragma once

#include <cstddef>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"

namespace opus::workload {

struct ZipfPreferenceConfig {
  std::size_t num_users = 20;
  std::size_t num_files = 60;
  double alpha = 1.1;  // paper's macro-benchmark exponent
  // Each user ranks files by an independent random permutation; with false,
  // everyone shares the global rank order (homogeneous demand).
  bool permute_per_user = true;
  // When permuting and >= 0: instead of an independent permutation, each
  // user's ranking is the global order with Gaussian jitter of this
  // magnitude (in catalog-size units) applied to each file's rank. 0 = global
  // order; ~0.3 = correlated-but-personal rankings (production popularity
  // skew is shared across tenants); < 0 = fully independent permutations.
  double rank_noise = -1.0;
  // A user draws interest in only this fraction of the catalog (the rest of
  // its row is zero). 1.0 = dense rows.
  double support_fraction = 1.0;
};

// Normalized N x M preference matrix; rows sum to 1.
Matrix GenerateZipfPreferences(const ZipfPreferenceConfig& config, Rng& rng);

// Preferences proportional to raw access counts (used when inferring
// preferences from a trace window). Rows with zero counts stay zero.
Matrix PreferencesFromCounts(const Matrix& counts);

}  // namespace opus::workload
