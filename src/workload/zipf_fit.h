// Workload characterization: maximum-likelihood fit of a Zipf exponent to
// observed access counts. Used to sanity-check synthetic workloads against
// the paper's Zipf(1.1) assumption and to characterize learned windows
// (e.g. deciding whether a trace is skewed enough for sharing to pay off).
#pragma once

#include <cstddef>
#include <span>

namespace opus::workload {

struct ZipfFit {
  double alpha = 0.0;          // fitted exponent (>= 0)
  double log_likelihood = 0.0; // at the fitted alpha
  std::size_t total_count = 0;
};

// Fits alpha by MLE for counts over a ranked catalog: counts[k] accesses
// to the k-th most popular item (the fit sorts internally, so any order is
// accepted). The likelihood of one access to rank k under Zipf(alpha) over
// n items is (k+1)^-alpha / H_n(alpha); alpha is located by golden-section
// search on the concave log-likelihood over [0, max_alpha].
//
// Requires at least one positive count; counts must be non-negative.
ZipfFit FitZipf(std::span<const double> counts, double max_alpha = 5.0);

}  // namespace opus::workload
