// The paper's worked examples as canonical, documented scenario builders —
// one definition shared by tests, benches and examples, together with the
// analytic expectations derived in the paper (and re-derived exactly in
// DESIGN.md where the paper rounds).
#pragma once

#include "core/types.h"

namespace opus::workload {

// Fig. 1 (Sec. II-A): users A, B over files F1-F3, capacity 2.
//   max-min & PF allocation: a = (1/2, 1, 1/2); U_A = U_B = 0.8;
//   isolated utilities 0.6; OpuS taxes log 1.25, net utilities 0.64.
CachingProblem Fig1Example();

// Fig. 2 misreport (Sec. III-C): user B's lie "F3 over F2" as the row it
// feeds the allocator (normalized).
std::vector<double> Fig2Misreport();

// Fig. 3 (Sec. III-D): users A-D over files F1-F3, capacity 2 (budgets
// 0.5). Truthful FairRide utilities: A = 2/3, B = 0.775, C = D = 0.70.
CachingProblem Fig3Example();

// Fig. 3b misreport: user B's lie "F1 over F2". Under FairRide it lifts B
// to 0.45 + 0.55*2/3 = 0.8167 and drops D to 0.55.
std::vector<double> Fig3Misreport();

// Analytic anchors (exact values; see tests/workload/paper_examples_test.cc
// for the assertions tying them to the allocators).
struct Fig1Expectations {
  static constexpr double kSharedUtility = 0.8;
  static constexpr double kIsolatedUtility = 0.6;
  static constexpr double kOpusNetUtility = 0.64;
};
struct Fig3Expectations {
  static constexpr double kFairRideTruthfulB = 0.775;
  static constexpr double kFairRideCheatB = 0.45 + 0.55 * 2.0 / 3.0;
  static constexpr double kFairRideTruthfulD = 0.70;
  static constexpr double kFairRideCheatD = 0.55;
};

}  // namespace opus::workload
