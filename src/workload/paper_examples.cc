#include "workload/paper_examples.h"

namespace opus::workload {

CachingProblem Fig1Example() {
  CachingProblem p;
  p.preferences = Matrix::FromRows({{0.4, 0.6, 0.0}, {0.0, 0.6, 0.4}});
  p.capacity = 2.0;
  return p;
}

std::vector<double> Fig2Misreport() { return {0.0, 0.4, 0.6}; }

CachingProblem Fig3Example() {
  CachingProblem p;
  p.preferences = Matrix::FromRows({{1.00, 0.00, 0.00},
                                    {0.45, 0.55, 0.00},
                                    {0.00, 0.55, 0.45},
                                    {0.00, 0.55, 0.45}});
  p.capacity = 2.0;
  return p;
}

std::vector<double> Fig3Misreport() { return {0.55, 0.45, 0.0}; }

}  // namespace opus::workload
