#include "workload/preference_gen.h"

#include <algorithm>

#include "common/check.h"
#include "common/zipf.h"

namespace opus::workload {

Matrix GenerateZipfPreferences(const ZipfPreferenceConfig& config, Rng& rng) {
  OPUS_CHECK_GT(config.num_users, 0u);
  OPUS_CHECK_GT(config.num_files, 0u);
  OPUS_CHECK_GT(config.support_fraction, 0.0);
  OPUS_CHECK_LE(config.support_fraction, 1.0);

  const auto support = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.support_fraction *
                                  static_cast<double>(config.num_files)));
  const ZipfDistribution zipf(support, config.alpha);

  Matrix prefs(config.num_users, config.num_files, 0.0);
  for (std::size_t i = 0; i < config.num_users; ++i) {
    std::vector<std::size_t> order;
    if (config.permute_per_user && config.rank_noise >= 0.0) {
      // Correlated ranking: global order with Gaussian rank jitter.
      std::vector<std::pair<double, std::size_t>> scored(config.num_files);
      for (std::size_t j = 0; j < config.num_files; ++j) {
        scored[j] = {static_cast<double>(j) +
                         config.rank_noise *
                             static_cast<double>(config.num_files) *
                             rng.NextGaussian(),
                     j};
      }
      std::sort(scored.begin(), scored.end());
      order.reserve(config.num_files);
      for (const auto& [score, j] : scored) order.push_back(j);
    } else if (config.permute_per_user) {
      order = rng.Permutation(config.num_files);
    } else {
      order.resize(config.num_files);
      for (std::size_t j = 0; j < config.num_files; ++j) order[j] = j;
    }
    for (std::size_t rank = 0; rank < support; ++rank) {
      prefs(i, order[rank]) = zipf.pmf(rank);
    }
  }
  return prefs;
}

Matrix PreferencesFromCounts(const Matrix& counts) {
  Matrix prefs = counts;
  for (std::size_t i = 0; i < prefs.rows(); ++i) {
    auto row = prefs.row(i);
    double total = 0.0;
    for (double v : row) {
      OPUS_CHECK_GE(v, 0.0);
      total += v;
    }
    if (total > 0.0) {
      for (double& v : row) v /= total;
    }
  }
  return prefs;
}

}  // namespace opus::workload
