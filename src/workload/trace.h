// Access-trace generation, including the paper's cheating scenarios.
//
// Each user emits *genuine* accesses (drawn from its true preference
// distribution at its genuine rate) and — once its cheat trigger fires —
// additional *spurious* accesses drawn from a manipulated distribution
// (Sec. III-C: "making spurious accesses if the cache preferences are
// inferred from historical access frequency"). The trace interleaves all
// streams as merged Poisson processes.
//
// The split matters for metrics: frequency learning must observe every
// access (that is the attack surface), while a user's effective hit ratio
// is meaningful only over its genuine workload — a cheater spamming cached
// files would otherwise inflate its own score by definition.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "cache/types.h"
#include "common/matrix.h"
#include "common/rng.h"

namespace opus::workload {

struct AccessEvent {
  cache::UserId user = 0;
  cache::FileId file = 0;
  double time_sec = 0.0;
  bool spurious = false;
};

struct UserTraceSpec {
  // Genuine access distribution over files (need not be normalized; must
  // have a positive sum) and rate (accesses per second).
  std::vector<double> true_prefs;
  double genuine_rate = 1.0;

  // Cheat phase: after this many genuine accesses, the user additionally
  // emits spurious accesses from `spurious_prefs` at `spurious_rate`.
  std::size_t cheat_after_genuine = std::numeric_limits<std::size_t>::max();
  double spurious_rate = 0.0;
  std::vector<double> spurious_prefs;
};

struct Trace {
  std::vector<AccessEvent> events;  // time-ordered

  // Events for one user (genuine only, or all).
  std::size_t CountFor(cache::UserId user, bool include_spurious) const;
};

// Generates `total_events` interleaved events. Deterministic given `rng`.
Trace GenerateTrace(const std::vector<UserTraceSpec>& specs,
                    std::size_t total_events, Rng& rng);

// Convenience: specs for `prefs.rows()` truthful users at unit rate.
std::vector<UserTraceSpec> TruthfulSpecs(const Matrix& prefs);

// Spec mutation helpers for the paper's two cheating micro-benchmarks.

// Fig. 5: the user triples its access rate after `after` genuine accesses
// (spurious stream = 2x extra rate over its own preferences).
void ApplyRateTripling(UserTraceSpec& spec, std::size_t after);

// Fig. 6: after `after` genuine accesses the user spams `claimed_prefs`
// (e.g. claiming F1 over F2) at `rate_multiplier` times its genuine rate.
void ApplyPreferenceShift(UserTraceSpec& spec, std::size_t after,
                          std::vector<double> claimed_prefs,
                          double rate_multiplier = 2.0);

}  // namespace opus::workload
