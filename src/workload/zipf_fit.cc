#include "workload/zipf_fit.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "common/check.h"

namespace opus::workload {
namespace {

// Log-likelihood of the sorted counts under Zipf(alpha):
//   sum_k c_k * (-alpha * log(k+1)) - total * log(H_n(alpha)).
double LogLikelihood(const std::vector<double>& sorted_counts, double total,
                     double alpha) {
  const std::size_t n = sorted_counts.size();
  double harmonic = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    harmonic += std::pow(static_cast<double>(k + 1), -alpha);
  }
  double ll = -total * std::log(harmonic);
  for (std::size_t k = 0; k < n; ++k) {
    if (sorted_counts[k] > 0.0) {
      ll -= alpha * sorted_counts[k] * std::log(static_cast<double>(k + 1));
    }
  }
  return ll;
}

}  // namespace

ZipfFit FitZipf(std::span<const double> counts, double max_alpha) {
  OPUS_CHECK(!counts.empty());
  OPUS_CHECK_GT(max_alpha, 0.0);
  std::vector<double> sorted(counts.begin(), counts.end());
  double total = 0.0;
  for (double c : sorted) {
    OPUS_CHECK_GE(c, 0.0);
    total += c;
  }
  OPUS_CHECK_GT(total, 0.0);
  std::sort(sorted.begin(), sorted.end(), std::greater<>());

  // Golden-section search on the concave log-likelihood.
  constexpr double kInvPhi = 0.6180339887498949;
  double lo = 0.0, hi = max_alpha;
  double x1 = hi - kInvPhi * (hi - lo);
  double x2 = lo + kInvPhi * (hi - lo);
  double f1 = LogLikelihood(sorted, total, x1);
  double f2 = LogLikelihood(sorted, total, x2);
  for (int iter = 0; iter < 100; ++iter) {
    if (f1 < f2) {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + kInvPhi * (hi - lo);
      f2 = LogLikelihood(sorted, total, x2);
    } else {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - kInvPhi * (hi - lo);
      f1 = LogLikelihood(sorted, total, x1);
    }
  }
  ZipfFit fit;
  fit.alpha = 0.5 * (lo + hi);
  fit.log_likelihood = LogLikelihood(sorted, total, fit.alpha);
  fit.total_count = static_cast<std::size_t>(total);
  return fit;
}

}  // namespace opus::workload
