#include "workload/tpch.h"

#include <cmath>

#include "common/check.h"
#include "common/strings.h"

namespace opus::workload {
namespace {

struct TableShape {
  const char* name;
  double share;            // of total dataset bytes (TPC-H SF volumes)
  std::uint64_t min_bytes; // floor so tiny tables stay realistic (>= 2 KB-ish)
};

// Relative volumes of the 8 TPC-H tables at any scale factor; the 2 KB and
// 400 B floors reproduce the fixed-size nation/region tables the paper
// quotes ("from 2 KB to 70 MB").
constexpr TableShape kShapes[] = {
    {"lineitem", 0.700, 1 << 20},
    {"orders", 0.165, 1 << 19},
    {"partsupp", 0.110, 1 << 18},
    {"part", 0.023, 1 << 16},
    {"customer", 0.023, 1 << 16},
    {"supplier", 0.0013, 1 << 12},
    {"nation", 0.0, 2048},
    {"region", 0.0, 512},
};

}  // namespace

std::uint64_t TpchDataset::TotalBytes() const {
  std::uint64_t total = 0;
  for (const auto& t : tables) total += t.size_bytes;
  return total;
}

std::vector<TpchDataset> GenerateTpchDatasets(const TpchConfig& config,
                                              Rng& rng) {
  OPUS_CHECK_GT(config.num_datasets, 0u);
  OPUS_CHECK_GT(config.dataset_bytes, 1u << 20);
  std::vector<TpchDataset> out;
  out.reserve(config.num_datasets);
  for (std::size_t d = 0; d < config.num_datasets; ++d) {
    TpchDataset ds;
    ds.name = StrFormat("tpch-%03zu", d);
    for (const TableShape& shape : kShapes) {
      const double jitter =
          std::exp(config.size_jitter_sigma * rng.NextGaussian());
      const double bytes =
          shape.share * static_cast<double>(config.dataset_bytes) * jitter;
      TpchTable t;
      t.name = StrFormat("%s/%s.parquet", ds.name.c_str(), shape.name);
      t.size_bytes =
          std::max<std::uint64_t>(shape.min_bytes,
                                  static_cast<std::uint64_t>(bytes));
      ds.tables.push_back(std::move(t));
    }
    out.push_back(std::move(ds));
  }
  return out;
}

cache::Catalog BuildDatasetCatalog(const std::vector<TpchDataset>& datasets,
                                   std::uint64_t block_size) {
  cache::Catalog catalog(block_size);
  for (const auto& ds : datasets) {
    catalog.Register(ds.name, ds.TotalBytes());
  }
  return catalog;
}

cache::Catalog BuildTableCatalog(const std::vector<TpchDataset>& datasets,
                                 std::uint64_t block_size) {
  cache::Catalog catalog(block_size);
  for (const auto& ds : datasets) {
    for (const auto& t : ds.tables) {
      catalog.Register(t.name, t.size_bytes);
    }
  }
  return catalog;
}

}  // namespace opus::workload
