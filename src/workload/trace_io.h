// Trace serialization: save generated access traces to CSV and load them
// back, so experiments can be replayed bit-for-bit outside the process
// that generated them (tools/opus_replay) and real-world traces can be
// fed to the simulator.
//
// Format (with header):
//   time_sec,user,file,spurious
//   0.013,0,4,0
//   ...
#pragma once

#include <optional>
#include <string>

#include "workload/trace.h"

namespace opus::workload {

// Serializes a trace to CSV text (with header).
std::string SerializeTrace(const Trace& trace);

// Parses CSV text (header required). Returns nullopt on malformed input:
// wrong header, non-numeric cells, negative time, or out-of-order events.
std::optional<Trace> DeserializeTrace(const std::string& text);

}  // namespace opus::workload
