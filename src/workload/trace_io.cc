#include "workload/trace_io.h"

#include <cstdlib>

#include "analysis/csv.h"
#include "common/strings.h"

namespace opus::workload {

std::string SerializeTrace(const Trace& trace) {
  analysis::CsvTable table;
  table.header = {"time_sec", "user", "file", "spurious"};
  table.rows.reserve(trace.events.size());
  for (const auto& e : trace.events) {
    table.rows.push_back({StrFormat("%.9f", e.time_sec),
                          std::to_string(e.user), std::to_string(e.file),
                          e.spurious ? "1" : "0"});
  }
  return analysis::WriteCsv(table);
}

std::optional<Trace> DeserializeTrace(const std::string& text) {
  const auto table = analysis::ParseCsv(text, /*has_header=*/true);
  if (table.header !=
      std::vector<std::string>{"time_sec", "user", "file", "spurious"}) {
    return std::nullopt;
  }
  Trace trace;
  trace.events.reserve(table.rows.size());
  double last_time = 0.0;
  for (const auto& row : table.rows) {
    if (row.size() != 4) return std::nullopt;
    char* end = nullptr;
    AccessEvent e;
    e.time_sec = std::strtod(row[0].c_str(), &end);
    if (end == row[0].c_str() || *end != '\0' || e.time_sec < 0.0) {
      return std::nullopt;
    }
    e.user = static_cast<cache::UserId>(
        std::strtoul(row[1].c_str(), &end, 10));
    if (*end != '\0') return std::nullopt;
    e.file = static_cast<cache::FileId>(
        std::strtoul(row[2].c_str(), &end, 10));
    if (*end != '\0') return std::nullopt;
    if (row[3] != "0" && row[3] != "1") return std::nullopt;
    e.spurious = row[3] == "1";
    if (e.time_sec < last_time) return std::nullopt;  // must be ordered
    last_time = e.time_sec;
    trace.events.push_back(e);
  }
  return trace;
}

}  // namespace opus::workload
