#include "workload/trace.h"

#include "common/check.h"

namespace opus::workload {

std::size_t Trace::CountFor(cache::UserId user, bool include_spurious) const {
  std::size_t count = 0;
  for (const auto& e : events) {
    if (e.user == user && (include_spurious || !e.spurious)) ++count;
  }
  return count;
}

Trace GenerateTrace(const std::vector<UserTraceSpec>& specs,
                    std::size_t total_events, Rng& rng) {
  OPUS_CHECK(!specs.empty());
  const std::size_t n = specs.size();
  for (const auto& s : specs) {
    OPUS_CHECK_GT(s.genuine_rate, 0.0);
    double total = 0.0;
    for (double p : s.true_prefs) total += p;
    OPUS_CHECK_GT(total, 0.0);
  }

  std::vector<std::size_t> genuine_count(n, 0);
  Trace trace;
  trace.events.reserve(total_events);
  double now = 0.0;

  for (std::size_t k = 0; k < total_events; ++k) {
    // Current stream rates: one genuine stream per user plus a spurious
    // stream for each user whose trigger has fired.
    std::vector<double> rates;
    rates.reserve(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      rates.push_back(specs[i].genuine_rate);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const bool cheating = genuine_count[i] >= specs[i].cheat_after_genuine &&
                            specs[i].spurious_rate > 0.0;
      rates.push_back(cheating ? specs[i].spurious_rate : 0.0);
    }
    double total_rate = 0.0;
    for (double r : rates) total_rate += r;

    now += rng.NextExponential(total_rate);
    const std::size_t stream = rng.NextDiscrete(rates);

    AccessEvent e;
    e.time_sec = now;
    if (stream < n) {
      e.user = static_cast<cache::UserId>(stream);
      e.spurious = false;
      e.file = static_cast<cache::FileId>(
          rng.NextDiscrete(specs[stream].true_prefs));
      ++genuine_count[stream];
    } else {
      const std::size_t i = stream - n;
      e.user = static_cast<cache::UserId>(i);
      e.spurious = true;
      OPUS_CHECK(!specs[i].spurious_prefs.empty());
      e.file =
          static_cast<cache::FileId>(rng.NextDiscrete(specs[i].spurious_prefs));
    }
    trace.events.push_back(e);
  }
  return trace;
}

std::vector<UserTraceSpec> TruthfulSpecs(const Matrix& prefs) {
  std::vector<UserTraceSpec> specs(prefs.rows());
  for (std::size_t i = 0; i < prefs.rows(); ++i) {
    specs[i].true_prefs.assign(prefs.row(i).begin(), prefs.row(i).end());
  }
  return specs;
}

void ApplyRateTripling(UserTraceSpec& spec, std::size_t after) {
  spec.cheat_after_genuine = after;
  // Tripled total rate = genuine + 2x spurious over the same distribution.
  spec.spurious_rate = 2.0 * spec.genuine_rate;
  spec.spurious_prefs = spec.true_prefs;
}

void ApplyPreferenceShift(UserTraceSpec& spec, std::size_t after,
                          std::vector<double> claimed_prefs,
                          double rate_multiplier) {
  OPUS_CHECK_GT(rate_multiplier, 0.0);
  spec.cheat_after_genuine = after;
  spec.spurious_rate = rate_multiplier * spec.genuine_rate;
  spec.spurious_prefs = std::move(claimed_prefs);
}

}  // namespace opus::workload
