// TPC-H-shaped dataset generation (paper Sec. VI "Workload").
//
// The paper generates 200+ TPC-H datasets of ~100 MB, each holding the 8
// benchmark tables whose sizes span 2 KB to 70 MB. The allocation policies
// only ever observe file names and sizes, so we synthesize datasets with the
// published table-size distribution instead of running dbgen (DESIGN.md
// substitution table).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/file_meta.h"
#include "common/rng.h"

namespace opus::workload {

struct TpchTable {
  std::string name;
  std::uint64_t size_bytes = 0;
};

struct TpchDataset {
  std::string name;
  std::vector<TpchTable> tables;  // the 8 TPC-H tables

  std::uint64_t TotalBytes() const;
};

struct TpchConfig {
  std::size_t num_datasets = 60;
  // Target size per dataset; table sizes follow TPC-H's published relative
  // volumes (lineitem ~70%, orders ~17%, ... region ~0.0004%) with mild
  // lognormal jitter so datasets are not identical.
  std::uint64_t dataset_bytes = 100ull * 1024 * 1024;
  double size_jitter_sigma = 0.08;
};

// Generates `config.num_datasets` datasets deterministically from `rng`.
std::vector<TpchDataset> GenerateTpchDatasets(const TpchConfig& config,
                                              Rng& rng);

// Registers every dataset as one catalog file (dataset-granularity caching,
// as in the paper's experiments where a "file" is a TPC-H dataset).
cache::Catalog BuildDatasetCatalog(const std::vector<TpchDataset>& datasets,
                                   std::uint64_t block_size = 1024 * 1024);

// Registers every table as its own catalog file (table-granularity caching,
// exercising the varying-file-size path of Sec. V-B).
cache::Catalog BuildTableCatalog(const std::vector<TpchDataset>& datasets,
                                 std::uint64_t block_size = 64 * 1024);

}  // namespace opus::workload
