// ServingEngine — the sharded concurrent data plane, replay-equivalent to
// the serial simulator by construction.
//
// The serial oracle (sim::RunManagedSimulation's loop) processes a pinned
// schedule as: for each event e — master.OnAccess(e) (learning update,
// possibly firing a reallocation), then cluster.Read(e) (store probe +
// metric/under-store accounting). The engine produces *identical* final
// store state, hit/eviction counts, metric snapshots, and audit reports
// while running the store probes concurrently:
//
//  - Chunking (the determinism boundary for control): reallocations fire
//    inside OnAccess exactly every `update_interval` observed accesses, so
//    the engine asks the master how many accesses remain
//    (accesses_until_update) and sizes each parallel phase to end just
//    before the boundary. The boundary event itself runs through the plain
//    serial path (OnAccess → realloc → Read), so every control-plane
//    mutation happens between parallel phases, exactly where the oracle
//    fires it.
//
//  - Shard affinity (the determinism boundary for data): during a phase,
//    thread t owns workers {w : w mod T == t} and probes only their
//    blocks. Each shard therefore sees its sub-stream of ops in pinned
//    event order regardless of thread interleaving, which makes per-shard
//    store evolution (hits, LRU/LFU state, evictions) deterministic and
//    equal to the serial run's. Managed-mode phases touch only
//    pinned-resident state and run lock-free under affinity; unmanaged
//    (cache-on-read) phases default to the optimistic seqlock read path
//    below and take the ShardedStore mutex only to mutate (misses/inserts)
//    or on the explicit mutex path (optimistic_unmanaged = false).
//
//  - Optimistic unmanaged reads (the seqlock path): resident probes run
//    lock-free — snapshot the shard's seqlock version, run the store's
//    side-effect-free Probe(), validate the version (ShardedStore::
//    TryProbe) — and the LRU/LFU touch the serial path would apply is
//    deferred into a per-shard pending list. Replay equivalence survives
//    because deferred touches are flushed, in recorded order and under the
//    shard WriteLock, BEFORE any insert on that shard (and at phase end):
//    since nothing else mutates the shard in between (affinity), the
//    store's actual op sequence is exactly the serial one, so hits,
//    eviction victims, and metrics stay byte-identical. A probe that
//    cannot get a consistent snapshot falls back to the locked path —
//    mandatory whenever the store is not armed for concurrent probes
//    (ReserveForConcurrentProbes) or validation keeps failing.
//
//  - Batched access stats (MPSC drain): per-access metric effects are not
//    applied in the probe. Each thread accumulates per-event byte totals
//    and per-worker u64 counter deltas in its own slab; at the phase
//    boundary the (single-threaded) drain replays CacheCluster::FinishRead
//    per event in pinned order — the same accounting tail the serial Read
//    calls — then flushes the worker counter deltas (order-free u64 sums).
//    Double-valued histogram observations thus happen in identical order,
//    making metric exports byte-identical.
//
// Span tracing is the one observability feature excluded from the
// equivalence bar: root-span sampling depends on global emission order, so
// the engine requires span tracing disabled (span_sample_every = 0) and
// the oracle run must match. Everything else is logical-clock based.
// Runtime telemetry (PR 8) is the one deliberately wall-clock feature:
// when EngineConfig::telemetry is set, probe threads time a deterministic
// sample of events (event-index based, so every thread and every rerun
// picks the same events) into per-thread recorders, and the single-threaded
// drain merges them into the central RuntimeTelemetry — the same MPSC-at-
// the-boundary shape as the access stats. Nothing recorded there touches
// the MetricsRegistry, so the byte-identity contract above is unaffected.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cluster.h"
#include "obs/flight_recorder.h"
#include "obs/latency.h"
#include "serve/sharded_store.h"
#include "sim/opus_master.h"
#include "workload/trace.h"

namespace opus::serve {

struct EngineConfig {
  // Probe-phase shard threads (clamped to the worker count; 1 = serial
  // phases, still drained through the same batched path).
  unsigned threads = 1;
  // Runtime telemetry sink (null = off). Must outlive the engine; written
  // only from the drain/serial path (single-threaded).
  obs::RuntimeTelemetry* telemetry = nullptr;
  // Optional flight recorder for phase/drain/realloc spans.
  obs::FlightRecorder* recorder = nullptr;
  // Time every Nth event (per Serve call, by event index). Sampling keeps
  // the clock reads off the common path: the overhead budget is <2% and a
  // steady_clock read costs ~25ns against ~1us/event.
  std::uint64_t telemetry_sample_every = 16;
  // Unmanaged phases use the lock-free seqlock probe path (see file
  // comment). False forces every unmanaged probe under the shard mutex —
  // the pre-optimistic behaviour, kept for A/B benchmarking
  // (bench_serving_throughput) and `opus_daemon --mutex-reads`.
  bool optimistic_unmanaged = true;
};

struct ServeStats {
  std::uint64_t events = 0;
  std::uint64_t bytes_from_memory = 0;
  std::uint64_t bytes_from_disk = 0;
  double effective_hit_sum = 0.0;  // mean = effective_hit_sum / events
  double latency_sum_sec = 0.0;
  std::size_t reallocations = 0;  // fired while serving this batch
};

class ServingEngine {
 public:
  // `cluster` must outlive the engine. `master` may be null (pure
  // unmanaged serving: no learning, no reallocation). The cluster must
  // have span tracing disabled (see file comment).
  ServingEngine(cache::CacheCluster* cluster, sim::OpusMaster* master,
                EngineConfig config);

  // Serves `events` in pinned order; returns aggregate outcomes. Final
  // cluster state and metrics equal a serial replay of the same schedule.
  // Not reentrant: one Serve call at a time.
  ServeStats Serve(const std::vector<workload::AccessEvent>& events);

  // Serves the sub-range [begin, end) of `events`. Splitting one schedule
  // across consecutive ServeRange calls is replay-equivalent to a single
  // Serve over the whole of it: chunk boundaries derive from master state
  // (accesses_until_update) that carries across calls. This is what lets
  // the daemon interleave control commands into a long `gen` at batch
  // boundaries without perturbing determinism.
  ServeStats ServeRange(const std::vector<workload::AccessEvent>& events,
                        std::size_t begin, std::size_t end);

  unsigned threads() const { return threads_; }

  // Live latency quantiles (empty vector when telemetry is off).
  std::vector<obs::LatencySample> TelemetrySnapshot() const;

 private:
  struct EventPartial {
    std::uint64_t mem = 0;
    std::uint64_t disk = 0;
    std::uint64_t nanos = 0;  // sampled per-event probe time (telemetry)
  };
  struct WorkerDelta {
    std::uint64_t hits = 0;
    std::uint64_t hit_bytes = 0;
    std::uint64_t misses = 0;
    std::uint64_t miss_bytes = 0;
  };
  // Per-probe-thread recorder slab: single writer during a phase, merged
  // into the central telemetry by the (single-threaded) drain, then
  // cleared — the recorders' quiescent point is the thread-pool join.
  struct ThreadRecorder {
    obs::LogLinearHistogram lock_wait;
    obs::LogLinearHistogram lock_hold;
    // Seqlock probe outcomes this phase (unsampled — cheap counters).
    std::uint64_t seq_retries = 0;
    std::uint64_t seq_fallbacks = 0;
  };

  // Probes events [begin, end) across threads_ shard-affine threads,
  // filling partials_ and worker_deltas_. No metric/under-store effects.
  void ProbeChunk(const std::vector<workload::AccessEvent>& events,
                  std::size_t begin, std::size_t end);
  // Drains events [begin, end) in order: master OnAccess (guaranteed not
  // to cross a reallocation boundary) + FinishRead accounting; then
  // flushes worker counter deltas.
  void DrainChunk(const std::vector<workload::AccessEvent>& events,
                  std::size_t begin, std::size_t end, ServeStats* stats);
  // The serial oracle path for a single event (used at realloc boundaries).
  void ServeSerial(const workload::AccessEvent& event, ServeStats* stats);

  // Records one sampled per-request probe time (summed across the event's
  // shard visits) into the mode + per-user histograms.
  void RecordReadLatency(cache::UserId user, bool managed,
                         std::uint64_t nanos);

  cache::CacheCluster* cluster_;
  sim::OpusMaster* master_;
  unsigned threads_;
  obs::RuntimeTelemetry* telemetry_;  // null = runtime telemetry off
  obs::FlightRecorder* recorder_;
  std::uint64_t sample_every_;
  std::uint64_t serial_tick_ = 0;  // sampling counter for ServeSerial
  // Pre-resolved central histograms (valid iff telemetry_ != nullptr).
  obs::LogLinearHistogram* read_managed_ns_ = nullptr;
  obs::LogLinearHistogram* read_unmanaged_ns_ = nullptr;
  obs::LogLinearHistogram* drain_wall_ns_ = nullptr;
  obs::LogLinearHistogram* realloc_wall_ns_ = nullptr;
  obs::LogLinearHistogram* batch_events_ = nullptr;
  obs::LogLinearHistogram* lock_wait_ns_ = nullptr;
  obs::LogLinearHistogram* lock_hold_ns_ = nullptr;
  // Per-phase seqlock totals (distribution of retry/fallback counts per
  // probe phase; all-zero phases record 0 so the count doubles as a phase
  // counter). Valid iff telemetry_ != nullptr.
  obs::LogLinearHistogram* seq_retries_ = nullptr;
  obs::LogLinearHistogram* seq_fallbacks_ = nullptr;
  // Per-user read histograms, index = UserId (empty when the user count
  // exceeds kMaxPerUserHistograms — cardinality must stay bounded).
  std::vector<obs::LogLinearHistogram*> user_read_ns_;
  std::vector<ThreadRecorder> thread_recorders_;  // [thread]; per phase
  ShardedStore sharded_;
  const bool optimistic_;
  // Per-(file, worker) block indices, precomputed so a probe thread walks
  // exactly its shards' blocks instead of filtering the whole file.
  std::vector<std::vector<std::vector<std::uint32_t>>> file_worker_blocks_;
  // Catalog blocks placed on each worker — the exact upper bound on that
  // shard's resident set, fed to ReserveForConcurrentProbes.
  std::vector<std::size_t> worker_block_counts_;
  // Deferred LRU/LFU touches per shard (optimistic unmanaged path).
  // Written only by the shard's owning thread; flushed under the shard
  // WriteLock before any insert and at phase end.
  std::vector<std::vector<cache::BlockId>> pending_touches_;  // [worker]
  std::vector<std::vector<EventPartial>> partials_;  // [thread][event-begin]
  std::vector<WorkerDelta> worker_deltas_;  // [worker]; single writer/phase
};

}  // namespace opus::serve
