#include "serve/daemon.h"

#include <algorithm>
#include <cerrno>
#include <deque>
#include <sstream>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/policy_factory.h"
#include "obs/prometheus.h"
#include "serve/protocol.h"
#include "workload/trace.h"

namespace opus::serve {
namespace {

std::vector<std::string> Tokenize(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

std::string Err(const std::string& reason) { return "err " + reason; }

// Collapses a pretty-printed JSON document onto one line so it can be a
// JSONL record. Safe for metric exports: no string in them contains a
// newline, so stripping '\n' + following indent never touches data.
std::string CompactJson(const std::string& json) {
  std::string out;
  out.reserve(json.size());
  for (std::size_t i = 0; i < json.size(); ++i) {
    if (json[i] == '\n') {
      while (i + 1 < json.size() && json[i + 1] == ' ') ++i;
      continue;
    }
    out.push_back(json[i]);
  }
  return out;
}

constexpr char kHelp[] =
    "ok\n"
    "ping | help | status | metrics [text|json|csv|prom] | audit\n"
    "dump [PATH] | serve USER FILE | gen N SEED\n"
    "reconfig policy NAME | reconfig capacity UNITS\n"
    "adduser [NAME] | dropuser ID | shutdown";

cache::ClusterConfig ForceTracingOff(cache::ClusterConfig config) {
  config.span_sample_every = 0;  // engine contract; see daemon.h
  return config;
}

// Events per background-job slice: long `gen` commands run one batch per
// poll-loop wake so control traffic interleaves at these boundaries. A
// `gen` at or under this size just runs synchronously.
constexpr std::size_t kGenBatch = 2048;

// Per-connection write-buffer bound: past this the loop stops reading the
// connection (backpressure) until the client drains replies.
constexpr std::size_t kMaxOutBuffered = 8u << 20;  // 8 MiB

// How long shutdown keeps flushing buffered replies before closing.
constexpr std::uint64_t kShutdownFlushNs = 2'000'000'000;  // 2 s

}  // namespace

Daemon::Daemon(DaemonConfig config, cache::Catalog catalog)
    : config_(std::move(config)),
      cluster_(ForceTracingOff(config_.cluster), std::move(catalog)),
      recorder_(obs::FlightRecorderConfig{config_.flight_capacity}) {
  allocators_.push_back(MakeAllocatorByName(config_.policy,
                                            config_.tax_threads,
                                            &config_.opus_tuning));
  OPUS_CHECK_MSG(allocators_.back() != nullptr,
                 "unknown policy in DaemonConfig");
  master_ = std::make_unique<sim::OpusMaster>(allocators_.back().get(),
                                              &cluster_, config_.master);
  const std::uint32_t users = cluster_.config().num_users;
  for (std::uint32_t u = 0; u < users; ++u) {
    master_->RegisterClient("user" + std::to_string(u));
  }
  user_active_.assign(users, true);
  config_.engine.telemetry = &telemetry_;
  config_.engine.recorder = &recorder_;
  engine_ = std::make_unique<ServingEngine>(&cluster_, master_.get(),
                                            config_.engine);
  daemon_request_ns_ = &telemetry_.histogram("daemon.request.ns");
  daemon_pipeline_depth_ = &telemetry_.histogram("daemon.pipeline.depth");
  start_ns_ = obs::MonotonicNanos();
  last_stats_ns_ = start_ns_;
  if (!config_.stats_path.empty()) {
    stats_out_.open(config_.stats_path, std::ios::trunc);
    stats_prev_ = cluster_.metrics().Snapshot(/*include_volatile=*/true);
  }
}

std::string Daemon::HandleRequest(const std::string& request) {
  const std::uint64_t begin = obs::MonotonicNanos();
  std::string reply = HandleRequestInner(request);
  const std::uint64_t end = obs::MonotonicNanos();
  daemon_request_ns_->Record(end - begin);
  std::istringstream head(request);
  std::string cmd;
  head >> cmd;
  recorder_.RecordSpan("daemon.request", begin, end,
                       {{"cmd", cmd},
                        {"ok", reply.rfind("err", 0) == 0 ? "0" : "1"}});
  CheckAnomalies();
  return reply;
}

std::string Daemon::HandleRequestInner(const std::string& request) {
  const std::vector<std::string> tokens = Tokenize(request);
  if (tokens.empty()) return Err("empty command");
  const std::string& cmd = tokens[0];
  const std::vector<std::string> args(tokens.begin() + 1, tokens.end());
  if (cmd == "ping") return "ok pong";
  if (cmd == "help") return kHelp;
  if (cmd == "status") return HandleStatus();
  if (cmd == "metrics") return HandleMetrics(args);
  if (cmd == "audit") return "ok\n" + master_->audit_report().ToJson();
  if (cmd == "dump") return HandleDump(args);
  if (cmd == "serve") return HandleServe(args);
  if (cmd == "gen") return HandleGen(args);
  if (cmd == "reconfig") return HandleReconfig(args);
  if (cmd == "adduser") return HandleAddUser(args);
  if (cmd == "dropuser") return HandleDropUser(args);
  if (cmd == "shutdown") {
    shutdown_ = true;
    return "ok bye";
  }
  return Err("unknown command '" + cmd + "' (try: help)");
}

std::string Daemon::HandleStatus() const {
  std::size_t active = 0;
  for (const bool a : user_active_) active += a ? 1 : 0;
  // The solver reuse counters live in the deterministic registry; status
  // surfaces them by scanning a snapshot (counter() would lazily create,
  // and this method is const).
  const obs::MetricsSnapshot snap = cluster_.metrics().Snapshot();
  const auto counter_of = [&snap](const std::string& name) -> std::uint64_t {
    for (const obs::CounterSample& c : snap.counters) {
      if (c.name == name) return c.value;
    }
    return 0;
  };
  const obs::AuditReport& audit = master_->audit_report();
  std::ostringstream out;
  out << "ok\n"
      << "policy=" << master_->policy_name() << '\n'
      << "managed=" << (cluster_.managed() ? 1 : 0) << '\n'
      << "users=" << active << '/' << user_active_.size() << '\n'
      << "workers=" << cluster_.num_alive_workers() << '/'
      << cluster_.num_workers() << '\n'
      << "threads=" << engine_->threads() << '\n'
      << "capacity_units=" << master_->capacity_units() << '\n'
      << "used_bytes=" << cluster_.UsedBytes() << '\n'
      << "events_served=" << events_served_ << '\n'
      << "reallocations=" << master_->reallocations() << '\n'
      << "solver_solves=" << counter_of("master.solver.solves") << '\n'
      << "solver_warm_starts=" << counter_of("master.solver.warm_starts")
      << '\n'
      << "solver_delta_windows=" << counter_of("master.solver.delta_windows")
      << '\n'
      << "solver_delta_resolved="
      << counter_of("master.solver.delta_resolved") << '\n'
      << "solver_delta_reused=" << counter_of("master.solver.delta_reused")
      << '\n'
      << "solver_delta_fallbacks="
      << counter_of("master.solver.delta_fallbacks") << '\n'
      << "audit_windows=" << audit.windows.size() << '\n'
      << "audit_violations=" << audit.total_violations << '\n'
      << "audit_clean=" << (audit.total_violations == 0 ? 1 : 0) << '\n'
      << "flight_trips=" << flight_trips_;
  return out.str();
}

std::string Daemon::HandleMetrics(
    const std::vector<std::string>& args) const {
  obs::ExportFormat format = obs::ExportFormat::kText;
  if (!args.empty()) {
    if (args[0] == "text") {
      format = obs::ExportFormat::kText;
    } else if (args[0] == "json") {
      format = obs::ExportFormat::kJson;
    } else if (args[0] == "csv") {
      format = obs::ExportFormat::kCsv;
    } else if (args[0] == "prom") {
      // The live-scrape format: full snapshot (volatile included — a scrape
      // wants wall times) plus the runtime latency summaries. Deterministic
      // exports keep using text/json/csv of the non-volatile snapshot.
      return "ok\n" + obs::MetricsToPrometheus(
                          cluster_.metrics().Snapshot(
                              /*include_volatile=*/true),
                          telemetry_.Snapshot());
    } else {
      return Err("unknown metrics format '" + args[0] +
                 "' (text|json|csv|prom)");
    }
  }
  return "ok\n" + cluster_.metrics().Snapshot().Export(format);
}

std::string Daemon::HandleDump(const std::vector<std::string>& args) {
  if (args.size() > 1) return Err("usage: dump [PATH]");
  const std::string& path = args.empty() ? config_.flight_path : args[0];
  std::size_t spans = 0;
  if (!WriteFlightDump(path, &spans)) {
    return Err("cannot write flight dump to '" + path + "'");
  }
  return "ok dumped=" + path + " spans=" + std::to_string(spans);
}

std::string Daemon::HandleServe(const std::vector<std::string>& args) {
  if (args.size() != 2) return Err("usage: serve USER FILE");
  std::uint64_t user = 0, file = 0;
  if (!ParseU64(args[0], &user)) return Err("bad user id '" + args[0] + "'");
  if (!ParseU64(args[1], &file)) return Err("bad file id '" + args[1] + "'");
  if (user >= user_active_.size()) return Err("user id out of range");
  if (!user_active_[user]) return Err("user " + args[0] + " is dropped");
  if (file >= cluster_.catalog().size()) return Err("file id out of range");
  workload::AccessEvent event;
  event.user = static_cast<cache::UserId>(user);
  event.file = static_cast<cache::FileId>(file);
  const ServeStats stats = engine_->Serve({event});
  events_served_ += stats.events;
  std::ostringstream out;
  out << "ok mem_bytes=" << stats.bytes_from_memory
      << " disk_bytes=" << stats.bytes_from_disk
      << " effective_hit=" << stats.effective_hit_sum
      << " reallocations=" << stats.reallocations;
  return out.str();
}

std::string Daemon::PrepareGen(const std::vector<std::string>& args,
                               std::vector<workload::AccessEvent>* events) {
  if (args.size() != 2) return Err("usage: gen N SEED");
  std::uint64_t n = 0, seed = 0;
  if (!ParseU64(args[0], &n) || n == 0) {
    return Err("bad event count '" + args[0] + "'");
  }
  if (!ParseU64(args[1], &seed)) return Err("bad seed '" + args[1] + "'");
  std::vector<cache::UserId> active;
  for (std::size_t u = 0; u < user_active_.size(); ++u) {
    if (user_active_[u]) active.push_back(static_cast<cache::UserId>(u));
  }
  if (active.empty()) return Err("no active users");
  // Synthetic per-user preferences: distinct skews keyed off the user id,
  // deterministic given (active set, seed).
  const std::size_t files = cluster_.catalog().size();
  Matrix prefs(active.size(), files, 0.0);
  for (std::size_t i = 0; i < active.size(); ++i) {
    for (std::size_t j = 0; j < files; ++j) {
      prefs(i, j) = 1.0 / (1.0 + ((j + 3 * active[i]) % files));
    }
  }
  Rng rng(seed);
  workload::Trace trace =
      workload::GenerateTrace(workload::TruthfulSpecs(prefs),
                              static_cast<std::size_t>(n), rng);
  // TruthfulSpecs users are dense 0..k-1; map back to the active UserIds.
  for (workload::AccessEvent& event : trace.events) {
    event.user = active[event.user];
  }
  *events = std::move(trace.events);
  return "";
}

std::string Daemon::FormatGenReply(const ServeStats& stats) {
  std::ostringstream out;
  out << "ok events=" << stats.events
      << " mem_bytes=" << stats.bytes_from_memory
      << " disk_bytes=" << stats.bytes_from_disk
      << " reallocations=" << stats.reallocations;
  return out.str();
}

std::string Daemon::HandleGen(const std::vector<std::string>& args) {
  std::vector<workload::AccessEvent> events;
  const std::string err = PrepareGen(args, &events);
  if (!err.empty()) return err;
  const ServeStats stats = engine_->Serve(events);
  events_served_ += stats.events;
  return FormatGenReply(stats);
}

std::string Daemon::HandleReconfig(const std::vector<std::string>& args) {
  if (args.size() != 2) {
    return Err("usage: reconfig policy NAME | reconfig capacity UNITS");
  }
  if (args[0] == "policy") {
    std::unique_ptr<CacheAllocator> next = MakeAllocatorByName(
        args[1], config_.tax_threads, &config_.opus_tuning);
    if (next == nullptr) {
      std::string known;
      for (const std::string& name : KnownPolicyNames()) {
        if (!known.empty()) known += '|';
        known += name;
      }
      return Err("unknown policy '" + args[1] + "' (" + known + ")");
    }
    // Span the swap itself so an anomaly dump shows "policy changed here"
    // right before any latency/fairness shift (drain/realloc spans come
    // from the engine; this is the control-plane cause).
    const std::string from = master_->policy_name();
    const std::uint64_t t0 = obs::MonotonicNanos();
    allocators_.push_back(std::move(next));
    master_->set_allocator(allocators_.back().get());
    recorder_.RecordSpan("reconfig.policy", t0, obs::MonotonicNanos(),
                         {{"from", from}, {"to", master_->policy_name()}});
    return "ok policy=" + master_->policy_name();
  }
  if (args[0] == "capacity") {
    double units = 0.0;
    if (!ParseFiniteDouble(args[1], &units) || units < 0.0) {
      return Err("bad capacity '" + args[1] + "'");
    }
    std::ostringstream from;
    from << master_->capacity_units();
    const std::uint64_t t0 = obs::MonotonicNanos();
    master_->set_capacity_units(units);
    std::ostringstream out;
    out << "ok capacity_units=" << master_->capacity_units();
    std::ostringstream to;
    to << master_->capacity_units();
    recorder_.RecordSpan("reconfig.capacity", t0, obs::MonotonicNanos(),
                         {{"from", from.str()}, {"to", to.str()}});
    return out.str();
  }
  return Err("unknown reconfig target '" + args[0] + "'");
}

std::string Daemon::HandleAddUser(const std::vector<std::string>& args) {
  if (args.size() > 1) return Err("usage: adduser [NAME]");
  for (std::size_t u = 0; u < user_active_.size(); ++u) {
    if (!user_active_[u]) {
      user_active_[u] = true;
      const auto id = static_cast<cache::UserId>(u);
      // A revived slot is a new tenant: take the requested name (the old
      // one is stale) and double-check no departed-tenant state leaks into
      // its first window (dropuser already purged; a slot inactive since
      // startup has nothing to purge, so this is idempotent).
      if (!args.empty()) master_->RenameClient(id, args[0]);
      master_->PurgeUser(id);
      recorder_.RecordEvent("user.add", {{"id", std::to_string(u)},
                                         {"name", master_->client_name(id)}});
      return "ok id=" + std::to_string(u) + " name=" +
             master_->client_name(id);
    }
  }
  return Err("no free user slots (cluster num_users=" +
             std::to_string(user_active_.size()) + ")");
}

std::string Daemon::HandleDropUser(const std::vector<std::string>& args) {
  if (args.size() != 1) return Err("usage: dropuser ID");
  std::uint64_t user = 0;
  if (!ParseU64(args[0], &user)) return Err("bad user id '" + args[0] + "'");
  if (user >= user_active_.size()) return Err("user id out of range");
  if (!user_active_[user]) return Err("user " + args[0] + " already dropped");
  user_active_[user] = false;
  // Forget the departed tenant's learned state: its window accesses,
  // explicit preference reports, and warm-state row. Without this the next
  // window keeps allocating (and taxing) on behalf of a user that no
  // longer exists — and a later adduser revival would inherit its history.
  master_->PurgeUser(static_cast<cache::UserId>(user));
  recorder_.RecordEvent("user.drop", {{"id", args[0]}});
  return "ok dropped=" + args[0];
}

bool Daemon::WriteFlightDump(const std::string& path,
                             std::size_t* spans) const {
  const std::vector<obs::LatencySample> latency = telemetry_.Snapshot();
  if (spans != nullptr) *spans = recorder_.size() + latency.size();
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << recorder_.DumpPerfettoJson(latency) << '\n';
  return out.good();
}

void Daemon::CheckAnomalies() {
  std::string reason;
  const obs::AuditReport& audit = master_->audit_report();
  if (audit.total_violations > last_audit_violations_) {
    reason = "audit_violation";
  }
  last_audit_violations_ = audit.total_violations;
  std::uint64_t pins = 0;
  const obs::MetricsSnapshot snap = cluster_.metrics().Snapshot();
  for (const obs::CounterSample& c : snap.counters) {
    if (c.name.size() > 13 &&
        c.name.compare(c.name.size() - 13, 13, ".pin_failures") == 0) {
      pins += c.value;
    }
  }
  if (reason.empty() && pins > last_pin_failures_) reason = "pin_failure";
  last_pin_failures_ = pins;
  if (reason.empty() && config_.p99_threshold_ms > 0.0 && !p99_tripped_) {
    const double limit_ns = config_.p99_threshold_ms * 1e6;
    for (const char* name :
         {"serve.read.managed_ns", "serve.read.unmanaged_ns"}) {
      const obs::LogLinearHistogram* h = telemetry_.Find(name);
      if (h != nullptr && h->count() > 0 &&
          static_cast<double>(h->ValueAtQuantile(0.99)) > limit_ns) {
        reason = "p99_threshold";
        p99_tripped_ = true;  // latency stays high; trip once, not per request
        break;
      }
    }
  }
  if (reason.empty()) return;
  ++flight_trips_;
  // Record the anomaly marker first so the dump itself contains it.
  recorder_.RecordEvent("daemon.anomaly",
                        {{"reason", reason},
                         {"trip", std::to_string(flight_trips_)}});
  WriteFlightDump(config_.flight_path, nullptr);
}

void Daemon::StatsTick() {
  if (!stats_out_.is_open()) return;
  const std::uint64_t now = obs::MonotonicNanos();
  if (now - last_stats_ns_ < config_.stats_interval_ms * 1000000ull) return;
  last_stats_ns_ = now;
  obs::MetricsSnapshot cur =
      cluster_.metrics().Snapshot(/*include_volatile=*/true);
  const obs::MetricsSnapshot delta = obs::DiffSnapshots(stats_prev_, cur);
  stats_prev_ = std::move(cur);
  stats_out_ << "{\"seq\":" << stats_seq_++
             << ",\"uptime_ms\":" << (now - start_ns_) / 1000000ull
             << ",\"events_served\":" << events_served_
             << ",\"reallocations\":" << master_->reallocations()
             << ",\"metrics\":" << CompactJson(delta.ToJson())
             << ",\"latency\":"
             << obs::RuntimeTelemetry::SamplesToJson(telemetry_.Snapshot())
             << "}\n";
  stats_out_.flush();
}

int Daemon::Run() {
  const int listen_fd = ListenUnix(config_.socket_path);
  if (listen_fd < 0) return 1;
  int tcp_fd = -1;
  if (config_.tcp_port >= 0) {
    std::uint16_t bound = 0;
    tcp_fd = ListenTcp(static_cast<std::uint16_t>(config_.tcp_port),
                       /*backlog=*/8, &bound);
    if (tcp_fd < 0) {
      ::close(listen_fd);
      ::unlink(config_.socket_path.c_str());
      return 1;
    }
    tcp_bound_port_.store(static_cast<int>(bound),
                          std::memory_order_release);
  }

  // Pipelined I/O state: every accepted fd is non-blocking, reads
  // accumulate in a FrameSplitter, replies accumulate in an out buffer
  // drained on POLLOUT — a half-sent frame or an undrained reply on one
  // connection never blocks the others.
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    FrameSplitter in;
    std::string out;          // encoded reply frames not yet written
    std::size_t out_off = 0;  // sent prefix of out
    bool has_job = false;     // a gen job owns this conn's reply slot
    bool closed = false;
  };
  // A long `gen` sliced into kGenBatch-event ServeRange calls, one per
  // loop wake; splitting is replay-identical to one Serve (boundaries
  // derive from master state that carries across calls).
  struct GenJob {
    std::uint64_t conn_id = 0;
    std::vector<workload::AccessEvent> events;
    std::size_t pos = 0;
    ServeStats stats;
    std::uint64_t begin_ns = 0;
  };
  std::deque<Conn> conns;
  std::deque<GenJob> jobs;
  std::uint64_t next_conn_id = 1;

  const auto find_conn = [&conns](std::uint64_t id) -> Conn* {
    for (Conn& c : conns) {
      if (c.id == id && !c.closed) return &c;
    }
    return nullptr;
  };
  const auto enqueue = [](Conn& c, std::string_view reply) {
    c.out += EncodeFrame(reply);
  };
  // Writes as much buffered output as the socket accepts right now.
  // False = dead peer. MSG_NOSIGNAL: a raced client close must surface as
  // EPIPE here, not kill the daemon with SIGPIPE.
  const auto flush_out = [](Conn& c) -> bool {
    while (c.out_off < c.out.size()) {
      const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                               c.out.size() - c.out_off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return errno == EAGAIN || errno == EWOULDBLOCK;
      }
      c.out_off += static_cast<std::size_t>(n);
    }
    c.out.clear();
    c.out_off = 0;
    return true;
  };
  const auto handle_frame = [&](Conn& c, const std::string& request) {
    const std::vector<std::string> tokens = Tokenize(request);
    if (!tokens.empty() && tokens[0] == "gen") {
      const std::vector<std::string> args(tokens.begin() + 1, tokens.end());
      const std::uint64_t begin = obs::MonotonicNanos();
      std::vector<workload::AccessEvent> events;
      if (PrepareGen(args, &events).empty() && events.size() > kGenBatch) {
        // Background job: the reply is queued when the last batch lands;
        // until then this conn's later frames stay unparsed (FIFO).
        c.has_job = true;
        jobs.push_back(
            GenJob{c.id, std::move(events), 0, ServeStats{}, begin});
        return;
      }
      // Small or malformed gen: synchronous path below (re-parses; cheap).
    }
    enqueue(c, HandleRequest(request));
  };
  // Parses every complete frame buffered on c — one recv can carry many
  // pipelined commands. Pauses while a job holds the reply slot.
  const auto parse_frames = [&](Conn& c) {
    std::uint64_t depth = 0;
    std::string request;
    while (!c.closed && !c.has_job && !shutdown_) {
      const FrameSplitter::Result r = c.in.Next(&request);
      if (r == FrameSplitter::Result::kNeedMore) break;
      if (r == FrameSplitter::Result::kOversize) {
        c.closed = true;  // corrupt or hostile length prefix
        break;
      }
      ++depth;
      handle_frame(c, request);
    }
    if (depth > 0) daemon_pipeline_depth_->Record(depth);
  };

  while (!shutdown_ && !stop_.load(std::memory_order_relaxed)) {
    std::vector<pollfd> fds;
    fds.push_back(pollfd{listen_fd, POLLIN, 0});
    if (tcp_fd >= 0) fds.push_back(pollfd{tcp_fd, POLLIN, 0});
    const std::size_t first_conn = fds.size();
    for (const Conn& c : conns) {
      short events = 0;
      // Backpressure: stop reading while a job is outstanding or the
      // client won't drain its replies (bounds both buffers; the kernel
      // socket buffer absorbs the rest via flow control).
      if (!c.has_job && c.out.size() - c.out_off < kMaxOutBuffered) {
        events |= POLLIN;
      }
      if (c.out_off < c.out.size()) events |= POLLOUT;
      fds.push_back(pollfd{c.fd, events, 0});
    }
    // Zero timeout while jobs are pending: batches run from this loop, so
    // it must not sleep on idle sockets mid-gen.
    const int ready =
        ::poll(fds.data(), fds.size(), jobs.empty() ? 100 : 0);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    StatsTick();  // interval resolution = this poll tick

    // I/O pass. conns must not grow/shrink here: fds[i] maps to
    // conns[i - first_conn]; closes are deferred to the sweep below.
    for (std::size_t i = first_conn; i < fds.size(); ++i) {
      Conn& c = conns[i - first_conn];
      const short re = fds[i].revents;
      if (re == 0) continue;
      if ((re & (POLLERR | POLLNVAL)) != 0) {
        c.closed = true;
        continue;
      }
      if ((re & POLLOUT) != 0 && !flush_out(c)) {
        c.closed = true;
        continue;
      }
      if ((re & (POLLIN | POLLHUP)) != 0) {
        bool eof = false;
        char buf[65536];
        while (true) {
          const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
          if (n > 0) {
            c.in.Append(buf, static_cast<std::size_t>(n));
            continue;
          }
          if (n == 0) {
            eof = true;
            break;
          }
          if (errno == EINTR) continue;
          if (errno != EAGAIN && errno != EWOULDBLOCK) c.closed = true;
          break;
        }
        if (!c.closed) parse_frames(c);
        if (eof && !c.closed) {
          // Serve what the client managed to send, give the replies one
          // non-blocking push, then drop the connection.
          flush_out(c);
          c.closed = true;
        }
      }
    }

    // Accept pass (both listeners): drain each queue to EAGAIN — poll()
    // reports readiness, not depth.
    if (!shutdown_) {
      for (std::size_t i = 0; i < first_conn; ++i) {
        if ((fds[i].revents & POLLIN) == 0) continue;
        while (true) {
          const int fd = ::accept(fds[i].fd, nullptr, nullptr);
          if (fd < 0) break;  // EAGAIN/EWOULDBLOCK (or transient error)
          if (!SetNonBlocking(fd)) {
            ::close(fd);
            continue;
          }
          Conn c;
          c.fd = fd;
          c.id = next_conn_id++;
          conns.push_back(std::move(c));
        }
      }
    }

    // Job pass: one batch per job per wake, so concurrent gens make even
    // progress and control commands interleave between batches.
    for (std::size_t j = 0; !shutdown_ && j < jobs.size();) {
      GenJob& job = jobs[j];
      const std::size_t end =
          std::min(job.pos + kGenBatch, job.events.size());
      const ServeStats s = engine_->ServeRange(job.events, job.pos, end);
      job.pos = end;
      events_served_ += s.events;
      job.stats.events += s.events;
      job.stats.bytes_from_memory += s.bytes_from_memory;
      job.stats.bytes_from_disk += s.bytes_from_disk;
      job.stats.effective_hit_sum += s.effective_hit_sum;
      job.stats.latency_sum_sec += s.latency_sum_sec;
      job.stats.reallocations += s.reallocations;
      if (job.pos < job.events.size()) {
        ++j;
        continue;
      }
      // Same accounting tail HandleRequest gives synchronous commands,
      // with the span covering the whole pipelined lifetime.
      const std::uint64_t end_ns = obs::MonotonicNanos();
      daemon_request_ns_->Record(end_ns - job.begin_ns);
      recorder_.RecordSpan(
          "daemon.request", job.begin_ns, end_ns,
          {{"cmd", "gen"}, {"ok", "1"}, {"pipelined", "1"}});
      CheckAnomalies();
      if (Conn* c = find_conn(job.conn_id)) {
        enqueue(*c, FormatGenReply(job.stats));
        c->has_job = false;
        parse_frames(*c);  // frames that queued up behind the job
        flush_out(*c);     // opportunistic; POLLOUT covers the rest
      }
      jobs.erase(jobs.begin() + static_cast<std::ptrdiff_t>(j));
    }

    // Sweep closed connections (any job they still own keeps running;
    // its reply is dropped at completion).
    for (std::size_t k = 0; k < conns.size();) {
      if (conns[k].closed) {
        ::close(conns[k].fd);
        conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(k));
      } else {
        ++k;
      }
    }
  }

  // Jobs cut short by shutdown still owe their connection a reply frame.
  for (const GenJob& job : jobs) {
    if (Conn* c = find_conn(job.conn_id)) {
      enqueue(*c, Err("daemon shutting down"));
      c->has_job = false;
    }
  }
  // Bounded drain of buffered replies (the `shutdown` "ok bye" included).
  // Stop() skips it: that path is for tests/operators tearing down fast.
  if (shutdown_) {
    const std::uint64_t deadline = obs::MonotonicNanos() + kShutdownFlushNs;
    while (obs::MonotonicNanos() < deadline) {
      std::vector<pollfd> fds;
      for (const Conn& c : conns) {
        if (!c.closed && c.out_off < c.out.size()) {
          fds.push_back(pollfd{c.fd, POLLOUT, 0});
        }
      }
      if (fds.empty()) break;
      if (::poll(fds.data(), fds.size(), 50) < 0 && errno != EINTR) break;
      for (Conn& c : conns) {
        if (!c.closed && c.out_off < c.out.size() && !flush_out(c)) {
          c.closed = true;
        }
      }
    }
  }
  for (const Conn& c : conns) ::close(c.fd);
  if (tcp_fd >= 0) ::close(tcp_fd);
  ::close(listen_fd);
  ::unlink(config_.socket_path.c_str());
  return 0;
}

}  // namespace opus::serve
