#include "serve/daemon.h"

#include <cerrno>
#include <sstream>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/policy_factory.h"
#include "serve/protocol.h"
#include "workload/trace.h"

namespace opus::serve {
namespace {

std::vector<std::string> Tokenize(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

std::string Err(const std::string& reason) { return "err " + reason; }

constexpr char kHelp[] =
    "ok\n"
    "ping | help | status | metrics [text|json|csv] | audit\n"
    "serve USER FILE | gen N SEED\n"
    "reconfig policy NAME | reconfig capacity UNITS\n"
    "adduser [NAME] | dropuser ID | shutdown";

cache::ClusterConfig ForceTracingOff(cache::ClusterConfig config) {
  config.span_sample_every = 0;  // engine contract; see daemon.h
  return config;
}

}  // namespace

Daemon::Daemon(DaemonConfig config, cache::Catalog catalog)
    : config_(std::move(config)),
      cluster_(ForceTracingOff(config_.cluster), std::move(catalog)) {
  allocators_.push_back(MakeAllocatorByName(config_.policy,
                                            config_.tax_threads,
                                            &config_.opus_tuning));
  OPUS_CHECK_MSG(allocators_.back() != nullptr,
                 "unknown policy in DaemonConfig");
  master_ = std::make_unique<sim::OpusMaster>(allocators_.back().get(),
                                              &cluster_, config_.master);
  const std::uint32_t users = cluster_.config().num_users;
  for (std::uint32_t u = 0; u < users; ++u) {
    master_->RegisterClient("user" + std::to_string(u));
  }
  user_active_.assign(users, true);
  engine_ = std::make_unique<ServingEngine>(&cluster_, master_.get(),
                                            config_.engine);
}

std::string Daemon::HandleRequest(const std::string& request) {
  const std::vector<std::string> tokens = Tokenize(request);
  if (tokens.empty()) return Err("empty command");
  const std::string& cmd = tokens[0];
  const std::vector<std::string> args(tokens.begin() + 1, tokens.end());
  if (cmd == "ping") return "ok pong";
  if (cmd == "help") return kHelp;
  if (cmd == "status") return HandleStatus();
  if (cmd == "metrics") return HandleMetrics(args);
  if (cmd == "audit") return "ok\n" + master_->audit_report().ToJson();
  if (cmd == "serve") return HandleServe(args);
  if (cmd == "gen") return HandleGen(args);
  if (cmd == "reconfig") return HandleReconfig(args);
  if (cmd == "adduser") return HandleAddUser(args);
  if (cmd == "dropuser") return HandleDropUser(args);
  if (cmd == "shutdown") {
    shutdown_ = true;
    return "ok bye";
  }
  return Err("unknown command '" + cmd + "' (try: help)");
}

std::string Daemon::HandleStatus() const {
  std::size_t active = 0;
  for (const bool a : user_active_) active += a ? 1 : 0;
  std::ostringstream out;
  out << "ok\n"
      << "policy=" << master_->policy_name() << '\n'
      << "managed=" << (cluster_.managed() ? 1 : 0) << '\n'
      << "users=" << active << '/' << user_active_.size() << '\n'
      << "workers=" << cluster_.num_alive_workers() << '/'
      << cluster_.num_workers() << '\n'
      << "threads=" << engine_->threads() << '\n'
      << "capacity_units=" << master_->capacity_units() << '\n'
      << "used_bytes=" << cluster_.UsedBytes() << '\n'
      << "events_served=" << events_served_ << '\n'
      << "reallocations=" << master_->reallocations();
  return out.str();
}

std::string Daemon::HandleMetrics(
    const std::vector<std::string>& args) const {
  obs::ExportFormat format = obs::ExportFormat::kText;
  if (!args.empty()) {
    if (args[0] == "text") {
      format = obs::ExportFormat::kText;
    } else if (args[0] == "json") {
      format = obs::ExportFormat::kJson;
    } else if (args[0] == "csv") {
      format = obs::ExportFormat::kCsv;
    } else {
      return Err("unknown metrics format '" + args[0] +
                 "' (text|json|csv)");
    }
  }
  return "ok\n" + cluster_.metrics().Snapshot().Export(format);
}

std::string Daemon::HandleServe(const std::vector<std::string>& args) {
  if (args.size() != 2) return Err("usage: serve USER FILE");
  std::uint64_t user = 0, file = 0;
  if (!ParseU64(args[0], &user)) return Err("bad user id '" + args[0] + "'");
  if (!ParseU64(args[1], &file)) return Err("bad file id '" + args[1] + "'");
  if (user >= user_active_.size()) return Err("user id out of range");
  if (!user_active_[user]) return Err("user " + args[0] + " is dropped");
  if (file >= cluster_.catalog().size()) return Err("file id out of range");
  workload::AccessEvent event;
  event.user = static_cast<cache::UserId>(user);
  event.file = static_cast<cache::FileId>(file);
  const ServeStats stats = engine_->Serve({event});
  events_served_ += stats.events;
  std::ostringstream out;
  out << "ok mem_bytes=" << stats.bytes_from_memory
      << " disk_bytes=" << stats.bytes_from_disk
      << " effective_hit=" << stats.effective_hit_sum
      << " reallocations=" << stats.reallocations;
  return out.str();
}

std::string Daemon::HandleGen(const std::vector<std::string>& args) {
  if (args.size() != 2) return Err("usage: gen N SEED");
  std::uint64_t n = 0, seed = 0;
  if (!ParseU64(args[0], &n) || n == 0) {
    return Err("bad event count '" + args[0] + "'");
  }
  if (!ParseU64(args[1], &seed)) return Err("bad seed '" + args[1] + "'");
  std::vector<cache::UserId> active;
  for (std::size_t u = 0; u < user_active_.size(); ++u) {
    if (user_active_[u]) active.push_back(static_cast<cache::UserId>(u));
  }
  if (active.empty()) return Err("no active users");
  // Synthetic per-user preferences: distinct skews keyed off the user id,
  // deterministic given (active set, seed).
  const std::size_t files = cluster_.catalog().size();
  Matrix prefs(active.size(), files, 0.0);
  for (std::size_t i = 0; i < active.size(); ++i) {
    for (std::size_t j = 0; j < files; ++j) {
      prefs(i, j) = 1.0 / (1.0 + ((j + 3 * active[i]) % files));
    }
  }
  Rng rng(seed);
  workload::Trace trace =
      workload::GenerateTrace(workload::TruthfulSpecs(prefs),
                              static_cast<std::size_t>(n), rng);
  // TruthfulSpecs users are dense 0..k-1; map back to the active UserIds.
  for (workload::AccessEvent& event : trace.events) {
    event.user = active[event.user];
  }
  const ServeStats stats = engine_->Serve(trace.events);
  events_served_ += stats.events;
  std::ostringstream out;
  out << "ok events=" << stats.events
      << " mem_bytes=" << stats.bytes_from_memory
      << " disk_bytes=" << stats.bytes_from_disk
      << " reallocations=" << stats.reallocations;
  return out.str();
}

std::string Daemon::HandleReconfig(const std::vector<std::string>& args) {
  if (args.size() != 2) {
    return Err("usage: reconfig policy NAME | reconfig capacity UNITS");
  }
  if (args[0] == "policy") {
    std::unique_ptr<CacheAllocator> next = MakeAllocatorByName(
        args[1], config_.tax_threads, &config_.opus_tuning);
    if (next == nullptr) {
      std::string known;
      for (const std::string& name : KnownPolicyNames()) {
        if (!known.empty()) known += '|';
        known += name;
      }
      return Err("unknown policy '" + args[1] + "' (" + known + ")");
    }
    allocators_.push_back(std::move(next));
    master_->set_allocator(allocators_.back().get());
    return "ok policy=" + master_->policy_name();
  }
  if (args[0] == "capacity") {
    double units = 0.0;
    if (!ParseFiniteDouble(args[1], &units) || units < 0.0) {
      return Err("bad capacity '" + args[1] + "'");
    }
    master_->set_capacity_units(units);
    std::ostringstream out;
    out << "ok capacity_units=" << master_->capacity_units();
    return out.str();
  }
  return Err("unknown reconfig target '" + args[0] + "'");
}

std::string Daemon::HandleAddUser(const std::vector<std::string>& args) {
  if (args.size() > 1) return Err("usage: adduser [NAME]");
  for (std::size_t u = 0; u < user_active_.size(); ++u) {
    if (!user_active_[u]) {
      user_active_[u] = true;
      const auto id = static_cast<cache::UserId>(u);
      // A revived slot is a new tenant: take the requested name (the old
      // one is stale) and double-check no departed-tenant state leaks into
      // its first window (dropuser already purged; a slot inactive since
      // startup has nothing to purge, so this is idempotent).
      if (!args.empty()) master_->RenameClient(id, args[0]);
      master_->PurgeUser(id);
      return "ok id=" + std::to_string(u) + " name=" +
             master_->client_name(id);
    }
  }
  return Err("no free user slots (cluster num_users=" +
             std::to_string(user_active_.size()) + ")");
}

std::string Daemon::HandleDropUser(const std::vector<std::string>& args) {
  if (args.size() != 1) return Err("usage: dropuser ID");
  std::uint64_t user = 0;
  if (!ParseU64(args[0], &user)) return Err("bad user id '" + args[0] + "'");
  if (user >= user_active_.size()) return Err("user id out of range");
  if (!user_active_[user]) return Err("user " + args[0] + " already dropped");
  user_active_[user] = false;
  // Forget the departed tenant's learned state: its window accesses,
  // explicit preference reports, and warm-state row. Without this the next
  // window keeps allocating (and taxing) on behalf of a user that no
  // longer exists — and a later adduser revival would inherit its history.
  master_->PurgeUser(static_cast<cache::UserId>(user));
  return "ok dropped=" + args[0];
}

int Daemon::Run() {
  const int listen_fd = ListenUnix(config_.socket_path);
  if (listen_fd < 0) return 1;
  std::vector<int> conns;
  while (!shutdown_ && !stop_.load(std::memory_order_relaxed)) {
    std::vector<pollfd> fds;
    fds.push_back(pollfd{listen_fd, POLLIN, 0});
    for (const int fd : conns) fds.push_back(pollfd{fd, POLLIN, 0});
    const int ready = ::poll(fds.data(), fds.size(), 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    std::vector<int> still;
    for (std::size_t i = 1; i < fds.size(); ++i) {
      const int fd = fds[i].fd;
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        still.push_back(fd);
        continue;
      }
      std::string request;
      if (!ReadFrame(fd, &request)) {  // client closed or bad frame
        ::close(fd);
        continue;
      }
      if (!WriteFrame(fd, HandleRequest(request))) {
        ::close(fd);
        continue;
      }
      still.push_back(fd);
    }
    if ((fds[0].revents & POLLIN) != 0) {
      // Drain the accept queue: several clients may have connected since
      // the last tick, and poll() only reports readiness, not depth. The
      // listen fd is non-blocking (ListenUnix), so the loop ends with
      // EAGAIN rather than blocking once the queue is empty.
      while (true) {
        const int conn = ::accept(listen_fd, nullptr, nullptr);
        if (conn < 0) break;  // EAGAIN/EWOULDBLOCK (or transient error)
        still.push_back(conn);
      }
    }
    conns = std::move(still);
  }
  for (const int fd : conns) ::close(fd);
  ::close(listen_fd);
  ::unlink(config_.socket_path.c_str());
  return 0;
}

}  // namespace opus::serve
