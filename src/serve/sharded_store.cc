#include "serve/sharded_store.h"

#include "common/check.h"

namespace opus::serve {

ShardedStore::ShardedStore(std::size_t num_shards) {
  OPUS_CHECK_GT(num_shards, 0u);
  shards_.assign(num_shards, nullptr);
  mutexes_.reserve(num_shards);
  seqs_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    mutexes_.push_back(std::make_unique<std::mutex>());
    seqs_.push_back(std::make_unique<SeqCounter>());
  }
}

void ShardedStore::Attach(std::size_t s, cache::BlockStore* store) {
  OPUS_CHECK_LT(s, shards_.size());
  OPUS_CHECK(store != nullptr);
  shards_[s] = store;
}

ShardedStore::ProbeResult ShardedStore::TryProbe(std::size_t s,
                                                 cache::BlockId block,
                                                 std::uint64_t* retries) const {
  const cache::BlockStore* store = shards_[s];
  if (!store->concurrent_probe_safe()) {
    return ProbeResult::kFallback;
  }
  const std::atomic<std::uint64_t>& seq = seqs_[s]->v;
  // A handful of attempts is enough: writer sections are short (one cache
  // op), so repeated failure means sustained writer pressure — let the
  // caller queue on the mutex instead of spinning.
  constexpr int kAttempts = 4;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    const std::uint64_t v1 = seq.load(std::memory_order_acquire);
    if ((v1 & 1u) != 0) {  // writer active right now
      if (retries != nullptr) ++*retries;
      continue;
    }
    const bool resident = store->Probe(block);
    // Order the probe's relaxed reads before the validation re-load; the
    // writer's acq_rel bump on exit pairs with this fence.
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t v2 = seq.load(std::memory_order_relaxed);
    if (v1 == v2) {
      return resident ? ProbeResult::kHit : ProbeResult::kMiss;
    }
    if (retries != nullptr) ++*retries;
  }
  return ProbeResult::kFallback;
}

bool ShardedStore::Access(std::size_t s, cache::BlockId block) {
  const WriteGuard guard = WriteLock(s);
  return shards_[s]->Access(block);
}

bool ShardedStore::Insert(std::size_t s, cache::BlockId block,
                          std::uint64_t bytes) {
  const WriteGuard guard = WriteLock(s);
  return shards_[s]->Insert(block, bytes);
}

void ShardedStore::Erase(std::size_t s, cache::BlockId block) {
  const WriteGuard guard = WriteLock(s);
  shards_[s]->Erase(block);
}

bool ShardedStore::Pin(std::size_t s, cache::BlockId block) {
  const WriteGuard guard = WriteLock(s);
  return shards_[s]->Pin(block);
}

void ShardedStore::Unpin(std::size_t s, cache::BlockId block) {
  const WriteGuard guard = WriteLock(s);
  shards_[s]->Unpin(block);
}

bool ShardedStore::Contains(std::size_t s, cache::BlockId block) const {
  const std::lock_guard<std::mutex> lock(*mutexes_[s]);
  return shards_[s]->Contains(block);
}

std::uint64_t ShardedStore::used_bytes() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::lock_guard<std::mutex> lock(*mutexes_[s]);
    total += shards_[s]->used_bytes();
  }
  return total;
}

std::uint64_t ShardedStore::num_blocks() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::lock_guard<std::mutex> lock(*mutexes_[s]);
    total += shards_[s]->num_blocks();
  }
  return total;
}

std::uint64_t ShardedStore::evictions() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::lock_guard<std::mutex> lock(*mutexes_[s]);
    total += shards_[s]->evictions();
  }
  return total;
}

}  // namespace opus::serve
