#include "serve/sharded_store.h"

#include "common/check.h"

namespace opus::serve {

ShardedStore::ShardedStore(std::size_t num_shards) {
  OPUS_CHECK_GT(num_shards, 0u);
  shards_.assign(num_shards, nullptr);
  mutexes_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    mutexes_.push_back(std::make_unique<std::mutex>());
  }
}

void ShardedStore::Attach(std::size_t s, cache::BlockStore* store) {
  OPUS_CHECK_LT(s, shards_.size());
  OPUS_CHECK(store != nullptr);
  shards_[s] = store;
}

bool ShardedStore::Access(std::size_t s, cache::BlockId block) {
  const std::lock_guard<std::mutex> lock(*mutexes_[s]);
  return shards_[s]->Access(block);
}

bool ShardedStore::Insert(std::size_t s, cache::BlockId block,
                          std::uint64_t bytes) {
  const std::lock_guard<std::mutex> lock(*mutexes_[s]);
  return shards_[s]->Insert(block, bytes);
}

void ShardedStore::Erase(std::size_t s, cache::BlockId block) {
  const std::lock_guard<std::mutex> lock(*mutexes_[s]);
  shards_[s]->Erase(block);
}

bool ShardedStore::Pin(std::size_t s, cache::BlockId block) {
  const std::lock_guard<std::mutex> lock(*mutexes_[s]);
  return shards_[s]->Pin(block);
}

void ShardedStore::Unpin(std::size_t s, cache::BlockId block) {
  const std::lock_guard<std::mutex> lock(*mutexes_[s]);
  shards_[s]->Unpin(block);
}

bool ShardedStore::Contains(std::size_t s, cache::BlockId block) const {
  const std::lock_guard<std::mutex> lock(*mutexes_[s]);
  return shards_[s]->Contains(block);
}

std::uint64_t ShardedStore::used_bytes() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::lock_guard<std::mutex> lock(*mutexes_[s]);
    total += shards_[s]->used_bytes();
  }
  return total;
}

std::uint64_t ShardedStore::num_blocks() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::lock_guard<std::mutex> lock(*mutexes_[s]);
    total += shards_[s]->num_blocks();
  }
  return total;
}

std::uint64_t ShardedStore::evictions() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::lock_guard<std::mutex> lock(*mutexes_[s]);
    total += shards_[s]->evictions();
  }
  return total;
}

}  // namespace opus::serve
