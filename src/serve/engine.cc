#include "serve/engine.h"

#include <algorithm>

#include "common/check.h"
#include "common/thread_pool.h"

namespace opus::serve {

namespace {
// Per-user latency histograms are ~9.5 KB each; beyond this many users the
// per-user breakdown is skipped and only the aggregate histograms record.
constexpr std::uint32_t kMaxPerUserHistograms = 256;
}  // namespace

ServingEngine::ServingEngine(cache::CacheCluster* cluster,
                             sim::OpusMaster* master, EngineConfig config)
    : cluster_(cluster), master_(master),
      threads_(std::max(1u, std::min(config.threads,
                                     static_cast<unsigned>(
                                         cluster->num_workers())))),
      telemetry_(config.telemetry), recorder_(config.recorder),
      sample_every_(std::max<std::uint64_t>(1, config.telemetry_sample_every)),
      sharded_(cluster->num_workers()),
      optimistic_(config.optimistic_unmanaged) {
  OPUS_CHECK(cluster_ != nullptr);
  // Span sampling keys off global emission order, which the concurrent
  // probe phase does not preserve — the replay-equivalence contract holds
  // only with tracing off (the serial oracle must run the same way).
  OPUS_CHECK_MSG(cluster_->config().span_sample_every == 0,
                 "ServingEngine requires span tracing disabled "
                 "(span_sample_every = 0)");

  const cache::Catalog& catalog = cluster_->catalog();
  const std::size_t workers = cluster_->num_workers();
  file_worker_blocks_.resize(catalog.size());
  for (cache::FileId f = 0; f < catalog.size(); ++f) {
    file_worker_blocks_[f].resize(workers);
    const cache::FileInfo& info = catalog.Get(f);
    for (std::uint32_t idx = 0; idx < info.num_blocks; ++idx) {
      const cache::WorkerId w =
          cluster_->PlacementFor(cache::MakeBlockId(f, idx));
      file_worker_blocks_[f][w].push_back(idx);
    }
  }
  worker_block_counts_.assign(workers, 0);
  for (const auto& by_worker : file_worker_blocks_) {
    for (std::size_t w = 0; w < workers; ++w) {
      worker_block_counts_[w] += by_worker[w].size();
    }
  }
  pending_touches_.resize(workers);
  partials_.resize(threads_);
  worker_deltas_.assign(workers, WorkerDelta{});

  if (telemetry_ != nullptr) {
    read_managed_ns_ = &telemetry_->histogram("serve.read.managed_ns");
    read_unmanaged_ns_ = &telemetry_->histogram("serve.read.unmanaged_ns");
    drain_wall_ns_ = &telemetry_->histogram("serve.drain.wall_ns");
    realloc_wall_ns_ = &telemetry_->histogram("serve.realloc.wall_ns");
    batch_events_ = &telemetry_->histogram("serve.batch.events");
    lock_wait_ns_ = &telemetry_->histogram("serve.shard.lock_wait_ns");
    lock_hold_ns_ = &telemetry_->histogram("serve.shard.lock_hold_ns");
    seq_retries_ = &telemetry_->histogram("serve.seqlock.retries");
    seq_fallbacks_ = &telemetry_->histogram("serve.seqlock.fallbacks");
    const std::uint32_t users = cluster_->config().num_users;
    if (users <= kMaxPerUserHistograms) {
      user_read_ns_.reserve(users);
      for (std::uint32_t u = 0; u < users; ++u) {
        user_read_ns_.push_back(&telemetry_->histogram(
            "serve.user." + std::to_string(u) + ".read_ns"));
      }
    }
    thread_recorders_.resize(threads_);
  }
}

std::vector<obs::LatencySample> ServingEngine::TelemetrySnapshot() const {
  if (telemetry_ == nullptr) return {};
  return telemetry_->Snapshot();
}

void ServingEngine::RecordReadLatency(cache::UserId user, bool managed,
                                      std::uint64_t nanos) {
  (managed ? read_managed_ns_ : read_unmanaged_ns_)->Record(nanos);
  if (user < user_read_ns_.size()) user_read_ns_[user]->Record(nanos);
}

void ServingEngine::ProbeChunk(
    const std::vector<workload::AccessEvent>& events, std::size_t begin,
    std::size_t end) {
  if (begin >= end) return;
  const std::size_t chunk = end - begin;
  const std::size_t workers = cluster_->num_workers();
  const bool optimistic = optimistic_ && !cluster_->managed();
  // Re-attach every phase: FailWorker replaces the store object. For the
  // optimistic path, arm each store for lock-free probes (idempotent once
  // sized; a restarted worker's fresh store gets re-armed here).
  for (std::size_t w = 0; w < workers; ++w) {
    cache::BlockStore* store =
        &cluster_->worker(static_cast<cache::WorkerId>(w)).store();
    sharded_.Attach(w, store);
    if (optimistic) store->ReserveForConcurrentProbes(worker_block_counts_[w]);
  }
  for (auto& slab : partials_) {
    slab.assign(chunk, EventPartial{});
  }
  const bool managed = cluster_->managed();
  const cache::Catalog& catalog = cluster_->catalog();

  // Thread t owns workers {w : w mod threads_ == t}; any pool thread may
  // claim any role index, but each role touches a disjoint shard set and
  // writes only its own slab, so scheduling cannot affect the result.
  const bool telemetry = telemetry_ != nullptr;
  const std::uint64_t sample_every = sample_every_;
  const auto body = [&](std::size_t t) {
    std::vector<EventPartial>& slab = partials_[t];
    ThreadRecorder* rec = telemetry ? &thread_recorders_[t] : nullptr;
    for (std::size_t k = begin; k < end; ++k) {
      const workload::AccessEvent& ev = events[k];
      const cache::FileInfo& info = catalog.Get(ev.file);
      EventPartial& partial = slab[k - begin];
      // Sampling keys off the event index, so every thread times the same
      // events and the drain can sum the per-thread partial durations into
      // one per-request figure.
      const bool sampled = telemetry && (k % sample_every) == 0;
      const std::uint64_t probe_start = sampled ? obs::MonotonicNanos() : 0;
      const auto& by_worker = file_worker_blocks_[ev.file];
      for (std::size_t w = t; w < workers; w += threads_) {
        const std::vector<std::uint32_t>& blocks = by_worker[w];
        if (blocks.empty()) continue;
        const bool alive =
            cluster_->IsWorkerAlive(static_cast<cache::WorkerId>(w));
        WorkerDelta& delta = worker_deltas_[w];
        if (!alive) {
          // Dead shard: every block is a miss; no store to touch.
          for (std::uint32_t idx : blocks) {
            const std::uint64_t bytes = info.BlockBytes(idx);
            partial.disk += bytes;
            ++delta.misses;
            delta.miss_bytes += bytes;
          }
          continue;
        }
        if (managed) {
          // Managed phases are read-mostly (policy-touch only; placement
          // is pinned) and shard-affine — lock-free by ownership.
          cache::BlockStore& store = sharded_.shard(w);
          for (std::uint32_t idx : blocks) {
            const std::uint64_t bytes = info.BlockBytes(idx);
            if (store.Access(cache::MakeBlockId(ev.file, idx))) {
              partial.mem += bytes;
              ++delta.hits;
              delta.hit_bytes += bytes;
            } else {
              partial.disk += bytes;
              ++delta.misses;
              delta.miss_bytes += bytes;
            }
          }
        } else if (optimistic) {
          // Optimistic cache-on-read: resident probes are lock-free
          // (seqlock snapshot/validate) with the LRU/LFU touch deferred
          // into the shard's pending list; only a miss (or a rare probe
          // fallback) takes the shard WriteLock. Deferred touches flush in
          // recorded order before the insert, so the store executes
          // exactly the serial op sequence (see the file comment in
          // engine.h for the replay-equivalence argument).
          std::vector<cache::BlockId>& pending = pending_touches_[w];
          std::uint64_t* retries = rec != nullptr ? &rec->seq_retries : nullptr;
          for (std::uint32_t idx : blocks) {
            const cache::BlockId block = cache::MakeBlockId(ev.file, idx);
            const std::uint64_t bytes = info.BlockBytes(idx);
            const ShardedStore::ProbeResult pr =
                sharded_.TryProbe(w, block, retries);
            if (pr == ShardedStore::ProbeResult::kHit) {
              pending.push_back(block);
              partial.mem += bytes;
              ++delta.hits;
              delta.hit_bytes += bytes;
              continue;
            }
            if (pr == ShardedStore::ProbeResult::kFallback &&
                rec != nullptr) {
              ++rec->seq_fallbacks;
            }
            // Miss (or unresolved probe): resolve under the write lock.
            // Sampled events still time the acquisition and held section,
            // so lock_wait/lock_hold keep describing the contended path.
            const std::uint64_t lock_start =
                sampled ? obs::MonotonicNanos() : 0;
            ShardedStore::WriteGuard guard = sharded_.WriteLock(w);
            const std::uint64_t lock_held =
                sampled ? obs::MonotonicNanos() : 0;
            cache::BlockStore& store = sharded_.shard(w);
            for (const cache::BlockId touched : pending) {
              store.Access(touched);
            }
            pending.clear();
            if (store.Access(block)) {
              // Only reachable via fallback: a validated kMiss cannot be
              // resident (this thread owns every mutation of this shard).
              partial.mem += bytes;
              ++delta.hits;
              delta.hit_bytes += bytes;
            } else {
              partial.disk += bytes;
              ++delta.misses;
              delta.miss_bytes += bytes;
              store.Insert(block, bytes);
            }
            if (sampled) {
              const std::uint64_t released = obs::MonotonicNanos();
              rec->lock_wait.Record(lock_held - lock_start);
              rec->lock_hold.Record(released - lock_held);
            }
          }
        } else {
          // Mutex cache-on-read (optimistic_unmanaged = false): batch the
          // event's ops for this shard under its write lock. Sampled
          // events also time the acquisition (contention) and the held
          // section.
          const std::uint64_t lock_start =
              sampled ? obs::MonotonicNanos() : 0;
          ShardedStore::WriteGuard guard = sharded_.WriteLock(w);
          const std::uint64_t lock_held =
              sampled ? obs::MonotonicNanos() : 0;
          cache::BlockStore& store = sharded_.shard(w);
          for (std::uint32_t idx : blocks) {
            const cache::BlockId block = cache::MakeBlockId(ev.file, idx);
            const std::uint64_t bytes = info.BlockBytes(idx);
            if (store.Access(block)) {
              partial.mem += bytes;
              ++delta.hits;
              delta.hit_bytes += bytes;
            } else {
              partial.disk += bytes;
              ++delta.misses;
              delta.miss_bytes += bytes;
              store.Insert(block, bytes);
            }
          }
          if (sampled) {
            const std::uint64_t released = obs::MonotonicNanos();
            rec->lock_wait.Record(lock_held - lock_start);
            rec->lock_hold.Record(released - lock_held);
          }
        }
      }
      if (sampled) partial.nanos = obs::MonotonicNanos() - probe_start;
    }
    if (optimistic) {
      // Phase-end flush: apply the tail of deferred touches so the next
      // phase (or the drain's audit) sees fully caught-up policy state.
      for (std::size_t w = t; w < workers; w += threads_) {
        std::vector<cache::BlockId>& pending = pending_touches_[w];
        if (pending.empty()) continue;
        ShardedStore::WriteGuard guard = sharded_.WriteLock(w);
        cache::BlockStore& store = sharded_.shard(w);
        for (const cache::BlockId touched : pending) {
          store.Access(touched);
        }
        pending.clear();
      }
    }
  };
  if (threads_ == 1) {
    body(0);
  } else {
    ThreadPool::Shared().ParallelFor(threads_, body, threads_);
  }
}

void ServingEngine::DrainChunk(
    const std::vector<workload::AccessEvent>& events, std::size_t begin,
    std::size_t end, ServeStats* stats) {
  const bool telemetry = telemetry_ != nullptr;
  const std::uint64_t drain_start = telemetry ? obs::MonotonicNanos() : 0;
  const bool managed = cluster_->managed();
  for (std::size_t k = begin; k < end; ++k) {
    const workload::AccessEvent& ev = events[k];
    // Mirrors the serial loop's order: learning update first, then the
    // read's accounting. These OnAccess calls cannot fire a reallocation —
    // the chunk ends before the boundary (see Serve).
    if (master_ != nullptr) master_->OnAccess(ev);
    std::uint64_t mem = 0, disk = 0;
    for (const auto& slab : partials_) {
      mem += slab[k - begin].mem;
      disk += slab[k - begin].disk;
    }
    const cache::ReadResult r =
        cluster_->FinishRead(ev.user, ev.file, mem, disk);
    ++stats->events;
    stats->bytes_from_memory += r.bytes_from_memory;
    stats->bytes_from_disk += r.bytes_from_disk;
    stats->effective_hit_sum += r.effective_hit;
    stats->latency_sum_sec += r.latency_sec;
    if (telemetry && (k % sample_every_) == 0) {
      // Per-request probe time: the event's shard visits ran on different
      // threads, so the honest per-request scalar is the summed work.
      std::uint64_t nanos = 0;
      for (const auto& slab : partials_) nanos += slab[k - begin].nanos;
      RecordReadLatency(ev.user, managed, nanos);
    }
  }
  for (std::size_t w = 0; w < worker_deltas_.size(); ++w) {
    WorkerDelta& d = worker_deltas_[w];
    if (d.hits | d.hit_bytes | d.misses | d.miss_bytes) {
      cluster_->AddWorkerReadDeltas(static_cast<cache::WorkerId>(w), d.hits,
                                    d.hit_bytes, d.misses, d.miss_bytes);
    }
    d = WorkerDelta{};
  }
  if (telemetry) {
    std::uint64_t seq_retries = 0;
    std::uint64_t seq_fallbacks = 0;
    for (ThreadRecorder& rec : thread_recorders_) {
      lock_wait_ns_->Merge(rec.lock_wait);
      lock_hold_ns_->Merge(rec.lock_hold);
      rec.lock_wait.Clear();
      rec.lock_hold.Clear();
      seq_retries += rec.seq_retries;
      seq_fallbacks += rec.seq_fallbacks;
      rec.seq_retries = 0;
      rec.seq_fallbacks = 0;
    }
    if (optimistic_ && !managed) {
      // Per-phase totals; an all-quiet phase records 0 on both, so the
      // histogram count doubles as an optimistic-phase counter.
      seq_retries_->Record(seq_retries);
      seq_fallbacks_->Record(seq_fallbacks);
    }
    batch_events_->Record(end - begin);
    const std::uint64_t drain_end = obs::MonotonicNanos();
    drain_wall_ns_->Record(drain_end - drain_start);
    if (recorder_ != nullptr) {
      recorder_->RecordSpan("serve.drain", drain_start, drain_end,
                            {{"events", std::to_string(end - begin)},
                             {"mode", managed ? "managed" : "unmanaged"}});
    }
  }
}

void ServingEngine::ServeSerial(const workload::AccessEvent& event,
                                ServeStats* stats) {
  const bool telemetry = telemetry_ != nullptr;
  const std::size_t before =
      master_ != nullptr ? master_->reallocations() : 0;
  if (master_ != nullptr) {
    const std::uint64_t t0 = telemetry ? obs::MonotonicNanos() : 0;
    master_->OnAccess(event);
    const std::size_t fired = master_->reallocations() - before;
    stats->reallocations += fired;
    if (telemetry && fired > 0) {
      // This OnAccess ran the whole control-plane update: the solve plus
      // the cluster ApplyAllocation / access-model push.
      const std::uint64_t t1 = obs::MonotonicNanos();
      realloc_wall_ns_->Record(t1 - t0);
      if (recorder_ != nullptr) {
        recorder_->RecordSpan("serve.realloc", t0, t1,
                              {{"reallocations", std::to_string(fired)}});
      }
    }
  }
  const bool sampled = telemetry && (serial_tick_++ % sample_every_) == 0;
  const std::uint64_t read_start = sampled ? obs::MonotonicNanos() : 0;
  const bool managed = cluster_->managed();
  const cache::ReadResult r = cluster_->Read(event.user, event.file);
  if (sampled) {
    RecordReadLatency(event.user, managed,
                      obs::MonotonicNanos() - read_start);
  }
  ++stats->events;
  stats->bytes_from_memory += r.bytes_from_memory;
  stats->bytes_from_disk += r.bytes_from_disk;
  stats->effective_hit_sum += r.effective_hit;
  stats->latency_sum_sec += r.latency_sec;
}

ServeStats ServingEngine::Serve(
    const std::vector<workload::AccessEvent>& events) {
  return ServeRange(events, 0, events.size());
}

ServeStats ServingEngine::ServeRange(
    const std::vector<workload::AccessEvent>& events, std::size_t begin,
    std::size_t end) {
  OPUS_CHECK_LE(begin, end);
  OPUS_CHECK_LE(end, events.size());
  ServeStats stats;
  std::size_t i = begin;
  const std::size_t n = end;
  while (i < n) {
    if (master_ == nullptr) {
      ProbeChunk(events, i, n);
      DrainChunk(events, i, n, &stats);
      break;
    }
    // The OnAccess of events[boundary - 1] fires the next reallocation; in
    // the serial loop that event's read already sees the new allocation,
    // so it must not join the parallel phase.
    const std::size_t boundary = i + master_->accesses_until_update();
    if (boundary <= n) {
      if (boundary - 1 > i) {
        ProbeChunk(events, i, boundary - 1);
        DrainChunk(events, i, boundary - 1, &stats);
      }
      ServeSerial(events[boundary - 1], &stats);
      i = boundary;
    } else {
      // Tail ends before the next boundary: no reallocation can fire.
      ProbeChunk(events, i, n);
      DrainChunk(events, i, n, &stats);
      i = n;
    }
  }
  return stats;
}

}  // namespace opus::serve
