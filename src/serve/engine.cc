#include "serve/engine.h"

#include <algorithm>

#include "common/check.h"
#include "common/thread_pool.h"

namespace opus::serve {

ServingEngine::ServingEngine(cache::CacheCluster* cluster,
                             sim::OpusMaster* master, EngineConfig config)
    : cluster_(cluster), master_(master),
      threads_(std::max(1u, std::min(config.threads,
                                     static_cast<unsigned>(
                                         cluster->num_workers())))),
      sharded_(cluster->num_workers()) {
  OPUS_CHECK(cluster_ != nullptr);
  // Span sampling keys off global emission order, which the concurrent
  // probe phase does not preserve — the replay-equivalence contract holds
  // only with tracing off (the serial oracle must run the same way).
  OPUS_CHECK_MSG(cluster_->config().span_sample_every == 0,
                 "ServingEngine requires span tracing disabled "
                 "(span_sample_every = 0)");

  const cache::Catalog& catalog = cluster_->catalog();
  const std::size_t workers = cluster_->num_workers();
  file_worker_blocks_.resize(catalog.size());
  for (cache::FileId f = 0; f < catalog.size(); ++f) {
    file_worker_blocks_[f].resize(workers);
    const cache::FileInfo& info = catalog.Get(f);
    for (std::uint32_t idx = 0; idx < info.num_blocks; ++idx) {
      const cache::WorkerId w =
          cluster_->PlacementFor(cache::MakeBlockId(f, idx));
      file_worker_blocks_[f][w].push_back(idx);
    }
  }
  partials_.resize(threads_);
  worker_deltas_.assign(workers, WorkerDelta{});
}

void ServingEngine::ProbeChunk(
    const std::vector<workload::AccessEvent>& events, std::size_t begin,
    std::size_t end) {
  if (begin >= end) return;
  const std::size_t chunk = end - begin;
  const std::size_t workers = cluster_->num_workers();
  // Re-attach every phase: FailWorker replaces the store object.
  for (std::size_t w = 0; w < workers; ++w) {
    sharded_.Attach(w, &cluster_->worker(static_cast<cache::WorkerId>(w))
                            .store());
  }
  for (auto& slab : partials_) {
    slab.assign(chunk, EventPartial{});
  }
  const bool managed = cluster_->managed();
  const cache::Catalog& catalog = cluster_->catalog();

  // Thread t owns workers {w : w mod threads_ == t}; any pool thread may
  // claim any role index, but each role touches a disjoint shard set and
  // writes only its own slab, so scheduling cannot affect the result.
  const auto body = [&](std::size_t t) {
    std::vector<EventPartial>& slab = partials_[t];
    for (std::size_t k = begin; k < end; ++k) {
      const workload::AccessEvent& ev = events[k];
      const cache::FileInfo& info = catalog.Get(ev.file);
      EventPartial& partial = slab[k - begin];
      const auto& by_worker = file_worker_blocks_[ev.file];
      for (std::size_t w = t; w < workers; w += threads_) {
        const std::vector<std::uint32_t>& blocks = by_worker[w];
        if (blocks.empty()) continue;
        const bool alive =
            cluster_->IsWorkerAlive(static_cast<cache::WorkerId>(w));
        WorkerDelta& delta = worker_deltas_[w];
        if (!alive) {
          // Dead shard: every block is a miss; no store to touch.
          for (std::uint32_t idx : blocks) {
            const std::uint64_t bytes = info.BlockBytes(idx);
            partial.disk += bytes;
            ++delta.misses;
            delta.miss_bytes += bytes;
          }
          continue;
        }
        if (managed) {
          // Managed phases are read-mostly (policy-touch only; placement
          // is pinned) and shard-affine — lock-free by ownership.
          cache::BlockStore& store = sharded_.shard(w);
          for (std::uint32_t idx : blocks) {
            const std::uint64_t bytes = info.BlockBytes(idx);
            if (store.Access(cache::MakeBlockId(ev.file, idx))) {
              partial.mem += bytes;
              ++delta.hits;
              delta.hit_bytes += bytes;
            } else {
              partial.disk += bytes;
              ++delta.misses;
              delta.miss_bytes += bytes;
            }
          }
        } else {
          // Cache-on-read mutates the shard (inserts + evictions): batch
          // the event's ops for this shard under its mutex.
          const auto lock = sharded_.Lock(w);
          cache::BlockStore& store = sharded_.shard(w);
          for (std::uint32_t idx : blocks) {
            const cache::BlockId block = cache::MakeBlockId(ev.file, idx);
            const std::uint64_t bytes = info.BlockBytes(idx);
            if (store.Access(block)) {
              partial.mem += bytes;
              ++delta.hits;
              delta.hit_bytes += bytes;
            } else {
              partial.disk += bytes;
              ++delta.misses;
              delta.miss_bytes += bytes;
              store.Insert(block, bytes);
            }
          }
        }
      }
    }
  };
  if (threads_ == 1) {
    body(0);
  } else {
    ThreadPool::Shared().ParallelFor(threads_, body, threads_);
  }
}

void ServingEngine::DrainChunk(
    const std::vector<workload::AccessEvent>& events, std::size_t begin,
    std::size_t end, ServeStats* stats) {
  for (std::size_t k = begin; k < end; ++k) {
    const workload::AccessEvent& ev = events[k];
    // Mirrors the serial loop's order: learning update first, then the
    // read's accounting. These OnAccess calls cannot fire a reallocation —
    // the chunk ends before the boundary (see Serve).
    if (master_ != nullptr) master_->OnAccess(ev);
    std::uint64_t mem = 0, disk = 0;
    for (const auto& slab : partials_) {
      mem += slab[k - begin].mem;
      disk += slab[k - begin].disk;
    }
    const cache::ReadResult r =
        cluster_->FinishRead(ev.user, ev.file, mem, disk);
    ++stats->events;
    stats->bytes_from_memory += r.bytes_from_memory;
    stats->bytes_from_disk += r.bytes_from_disk;
    stats->effective_hit_sum += r.effective_hit;
    stats->latency_sum_sec += r.latency_sec;
  }
  for (std::size_t w = 0; w < worker_deltas_.size(); ++w) {
    WorkerDelta& d = worker_deltas_[w];
    if (d.hits | d.hit_bytes | d.misses | d.miss_bytes) {
      cluster_->AddWorkerReadDeltas(static_cast<cache::WorkerId>(w), d.hits,
                                    d.hit_bytes, d.misses, d.miss_bytes);
    }
    d = WorkerDelta{};
  }
}

void ServingEngine::ServeSerial(const workload::AccessEvent& event,
                                ServeStats* stats) {
  const std::size_t before =
      master_ != nullptr ? master_->reallocations() : 0;
  if (master_ != nullptr) master_->OnAccess(event);
  if (master_ != nullptr) {
    stats->reallocations += master_->reallocations() - before;
  }
  const cache::ReadResult r = cluster_->Read(event.user, event.file);
  ++stats->events;
  stats->bytes_from_memory += r.bytes_from_memory;
  stats->bytes_from_disk += r.bytes_from_disk;
  stats->effective_hit_sum += r.effective_hit;
  stats->latency_sum_sec += r.latency_sec;
}

ServeStats ServingEngine::Serve(
    const std::vector<workload::AccessEvent>& events) {
  ServeStats stats;
  std::size_t i = 0;
  const std::size_t n = events.size();
  while (i < n) {
    if (master_ == nullptr) {
      ProbeChunk(events, i, n);
      DrainChunk(events, i, n, &stats);
      break;
    }
    // The OnAccess of events[boundary - 1] fires the next reallocation; in
    // the serial loop that event's read already sees the new allocation,
    // so it must not join the parallel phase.
    const std::size_t boundary = i + master_->accesses_until_update();
    if (boundary <= n) {
      if (boundary - 1 > i) {
        ProbeChunk(events, i, boundary - 1);
        DrainChunk(events, i, boundary - 1, &stats);
      }
      ServeSerial(events[boundary - 1], &stats);
      i = boundary;
    } else {
      // Tail ends before the next boundary: no reallocation can fire.
      ProbeChunk(events, i, n);
      DrainChunk(events, i, n, &stats);
      i = n;
    }
  }
  return stats;
}

}  // namespace opus::serve
