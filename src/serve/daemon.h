// Daemon — the long-running serving process: owns a CacheCluster, an
// OpusMaster control loop, and a ServingEngine, and exposes them over a
// Unix-socket (and optional loopback-TCP) text protocol (serve/protocol.h
// frames, one command per frame, one reply per frame).
//
// The serve loop is pipelined: every accepted fd is non-blocking with
// per-connection read/write buffers and incremental frame assembly
// (FrameSplitter), so a client that dribbles half a frame — or is slow to
// drain a large metrics reply — never head-of-line-blocks the others.
// Long `gen` commands run as background jobs sliced into fixed event
// batches (one batch per loop wake, via ServingEngine::ServeRange, which
// keeps the result replay-identical to one synchronous call); control
// commands from other connections interleave at batch boundaries. Replies
// on a single connection stay FIFO: while a connection has a job in
// flight its buffered frames are simply not parsed until the job's reply
// is queued.
//
// Command set (whitespace-separated tokens; numeric arguments are parsed
// strictly — trailing garbage or out-of-range values are command errors,
// never silent zeros):
//
//   ping                      -> "ok pong"
//   help                      -> "ok\n<command list>"
//   status                    -> "ok\n<key=value lines>" (incl. the
//                                master.solver.* reuse counters, the audit
//                                verdict, and flight-recorder trips)
//   metrics [text|json|csv|prom] -> "ok\n<metric snapshot>" (default text;
//                                prom = Prometheus exposition of the full
//                                snapshot incl. volatile metrics + runtime
//                                latency summaries)
//   audit                     -> "ok\n<fairness AuditReport JSON>"
//   dump [PATH]               -> write the flight recorder (+ latest
//                                latency snapshot) as Perfetto JSON
//   serve USER FILE           -> serve one read through the engine
//   gen N SEED                -> generate + serve N synthetic accesses
//                                across the active users
//   reconfig policy NAME      -> swap allocation policy (next realloc)
//   reconfig capacity UNITS   -> override allocator capacity (0 = derive
//                                from cluster capacity again)
//   adduser [NAME]            -> reactivate a dropped user slot
//   dropuser ID               -> deactivate a user (serve rejected)
//   shutdown                  -> reply "ok bye" and exit the serve loop
//
// Replies are "ok[ ...]" or "err <reason>"; multi-line payloads follow an
// "ok" first line. HandleRequest is public so tests can drive the full
// command surface in-process without a socket.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cache/cluster.h"
#include "core/allocator.h"
#include "core/policy_factory.h"
#include "obs/flight_recorder.h"
#include "obs/latency.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "sim/opus_master.h"

namespace opus::serve {

struct DaemonConfig {
  std::string socket_path = "/tmp/opus.sock";
  // Also listen on TCP 127.0.0.1:tcp_port (loopback only — the protocol
  // is unauthenticated). -1 = Unix socket only; 0 = kernel-assigned port,
  // readable via tcp_bound_port() once Run() is up.
  int tcp_port = -1;
  cache::ClusterConfig cluster;
  sim::OpusMasterConfig master;
  EngineConfig engine;
  std::string policy = "opus";   // initial allocator (core/policy_factory)
  unsigned tax_threads = 0;      // forwarded to the opus allocator
  // OpuS delta/aggregation tuning, applied to the initial allocator and to
  // every later `reconfig policy opus` swap.
  OpusPolicyTuning opus_tuning;

  // --- runtime telemetry (always on; see DESIGN.md "Runtime telemetry") --
  //
  // Periodic time-series appender: every stats_interval_ms (resolution =
  // the poll-loop tick, ~100ms) one JSON line with the windowed metric
  // delta since the previous line (DiffSnapshots, volatile included) plus
  // the latency quantile snapshot. Empty path = off.
  std::string stats_path;
  std::uint64_t stats_interval_ms = 1000;
  // Flight recorder: dump target for the `dump` command and for automatic
  // anomaly dumps, and the ring capacity.
  std::string flight_path = "opus_flight.json";
  std::size_t flight_capacity = 4096;
  // Anomaly trigger: a sampled read-latency p99 (managed or unmanaged)
  // above this many milliseconds trips an automatic flight dump (once).
  // 0 disarms the p99 trigger; audit-violation and pin-failure triggers
  // are always armed.
  double p99_threshold_ms = 0.0;
};

class Daemon {
 public:
  // Aborts on an unknown initial policy. Span tracing is forced off on the
  // cluster: the serving engine's replay-equivalence contract requires it
  // (see serve/engine.h), and a daemon must be restartable into the exact
  // state a serial replay of its journal would produce.
  Daemon(DaemonConfig config, cache::Catalog catalog);

  // Executes one command and returns the reply payload (never throws;
  // malformed input yields an "err ..." reply). Exposed for in-process
  // tests; Run() routes every socket frame through here.
  std::string HandleRequest(const std::string& request);

  // Serves the Unix socket (and the TCP listener when configured) until a
  // `shutdown` command or Stop(). Returns 0 on clean shutdown, 1 when a
  // listener could not be created.
  int Run();

  // Asynchronous stop for tests driving Run() from another thread (the
  // poll loop notices within its timeout).
  void Stop() { stop_.store(true, std::memory_order_relaxed); }

  // The TCP port Run() actually bound (meaningful once Run() is serving;
  // -1 while unbound or when TCP is off). With config tcp_port = 0 this is
  // how tests learn the kernel-assigned port.
  int tcp_bound_port() const {
    return tcp_bound_port_.load(std::memory_order_acquire);
  }

  bool shutdown_requested() const { return shutdown_; }
  cache::CacheCluster& cluster() { return cluster_; }
  sim::OpusMaster& master() { return *master_; }
  ServingEngine& engine() { return *engine_; }
  obs::RuntimeTelemetry& telemetry() { return telemetry_; }
  obs::FlightRecorder& flight_recorder() { return recorder_; }
  std::uint64_t flight_trips() const { return flight_trips_; }

  // Emits one --stats-out JSON line if the interval elapsed (Run calls it
  // every poll tick; exposed so tests can drive it without a socket).
  void StatsTick();

 private:
  std::string HandleRequestInner(const std::string& request);
  std::string HandleStatus() const;
  std::string HandleMetrics(const std::vector<std::string>& args) const;
  std::string HandleServe(const std::vector<std::string>& args);
  std::string HandleGen(const std::vector<std::string>& args);
  // Parses a `gen N SEED` argument list and generates the synthetic
  // schedule without serving it. Returns "" on success, an "err ..."
  // reply otherwise. Pure given (active users, seed): HandleGen and the
  // pipelined job path both build their events here.
  std::string PrepareGen(const std::vector<std::string>& args,
                         std::vector<workload::AccessEvent>* events);
  static std::string FormatGenReply(const ServeStats& stats);
  std::string HandleReconfig(const std::vector<std::string>& args);
  std::string HandleAddUser(const std::vector<std::string>& args);
  std::string HandleDropUser(const std::vector<std::string>& args);
  std::string HandleDump(const std::vector<std::string>& args);
  // Anomaly triggers (audit violation / pin failure / p99 threshold): trip
  // -> automatic flight dump to config_.flight_path + a flight event.
  void CheckAnomalies();
  bool WriteFlightDump(const std::string& path, std::size_t* spans) const;

  DaemonConfig config_;
  cache::CacheCluster cluster_;
  // Every allocator ever installed; the master holds a raw pointer to the
  // latest, and retired ones are retained so a policy swap can never leave
  // a dangling pointer mid-command.
  std::vector<std::unique_ptr<CacheAllocator>> allocators_;
  std::unique_ptr<sim::OpusMaster> master_;
  std::unique_ptr<ServingEngine> engine_;
  std::vector<bool> user_active_;  // [UserId]; dropped users are rejected
  std::uint64_t events_served_ = 0;
  bool shutdown_ = false;
  std::atomic<bool> stop_{false};
  std::atomic<int> tcp_bound_port_{-1};

  // --- runtime telemetry (never touches cluster_.metrics()) ---
  obs::RuntimeTelemetry telemetry_;
  obs::FlightRecorder recorder_;
  obs::LogLinearHistogram* daemon_request_ns_ = nullptr;
  // Frames completed per connection wake: >1 means the client actually
  // pipelined and the loop absorbed the burst in one pass.
  obs::LogLinearHistogram* daemon_pipeline_depth_ = nullptr;
  // Anomaly-trigger state: deltas trip on growth, the p99 gate trips once.
  std::uint64_t flight_trips_ = 0;
  std::uint64_t last_audit_violations_ = 0;
  std::uint64_t last_pin_failures_ = 0;
  bool p99_tripped_ = false;
  // --stats-out appender state (one window = one JSON line).
  std::ofstream stats_out_;
  obs::MetricsSnapshot stats_prev_;
  std::uint64_t stats_seq_ = 0;
  std::uint64_t start_ns_ = 0;
  std::uint64_t last_stats_ns_ = 0;
};

}  // namespace opus::serve
