#include "serve/protocol.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace opus::serve {
namespace {

bool WriteAll(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool ReadAll(int fd, char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::read(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF mid-frame
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

// A sockaddr_un path is a fixed small array; reject paths that don't fit
// instead of silently truncating to a different filesystem location.
bool FillAddr(const std::string& path, sockaddr_un* addr) {
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) {
    std::fprintf(stderr, "socket path too long: %s\n", path.c_str());
    return false;
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

std::uint32_t DecodeLen(const char* prefix) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[1]))
          << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[2]))
          << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[3]))
          << 24);
}

}  // namespace

bool WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) return false;
  const auto len = static_cast<std::uint32_t>(payload.size());
  char prefix[4] = {static_cast<char>(len & 0xff),
                    static_cast<char>((len >> 8) & 0xff),
                    static_cast<char>((len >> 16) & 0xff),
                    static_cast<char>((len >> 24) & 0xff)};
  return WriteAll(fd, prefix, sizeof(prefix)) &&
         WriteAll(fd, payload.data(), payload.size());
}

bool ReadFrame(int fd, std::string* payload, std::size_t max_payload) {
  char prefix[4];
  if (!ReadAll(fd, prefix, sizeof(prefix))) return false;
  const std::uint32_t len = DecodeLen(prefix);
  if (len > max_payload) return false;
  payload->resize(len);
  return len == 0 || ReadAll(fd, payload->data(), len);
}

int ListenUnix(const std::string& path, int backlog) {
  sockaddr_un addr;
  if (!FillAddr(path, &addr)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return -1;
  }
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::perror("bind");
    ::close(fd);
    return -1;
  }
  if (::listen(fd, backlog) < 0) {
    std::perror("listen");
    ::close(fd);
    return -1;
  }
  // Non-blocking listener: accept loops can drain every pending connection
  // until EAGAIN without risking a block between poll() and accept().
  // Accepted connections do NOT inherit the flag; the daemon's pipelined
  // loop makes each one non-blocking itself after accept.
  if (!SetNonBlocking(fd)) {
    std::perror("fcntl");
    ::close(fd);
    return -1;
  }
  return fd;
}

int DialUnix(const std::string& path) {
  sockaddr_un addr;
  if (!FillAddr(path, &addr)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int ListenTcp(std::uint16_t port, int backlog, std::uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return -1;
  }
  // Fast restarts: a daemon killed mid-connection leaves TIME_WAIT pairs
  // that would otherwise block rebinding the fixed port for minutes.
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::perror("bind");
    ::close(fd);
    return -1;
  }
  if (::listen(fd, backlog) < 0) {
    std::perror("listen");
    ::close(fd);
    return -1;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      std::perror("getsockname");
      ::close(fd);
      return -1;
    }
    *bound_port = ntohs(bound.sin_port);
  }
  if (!SetNonBlocking(fd)) {
    std::perror("fcntl");
    ::close(fd);
    return -1;
  }
  return fd;
}

int DialTcp(const std::string& host_port) {
  // Split at the LAST ':' so a future bracketed-IPv6 host form stays
  // parseable; today hosts are names or IPv4 literals.
  const std::size_t colon = host_port.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == host_port.size()) {
    std::fprintf(stderr, "expected HOST:PORT, got: %s\n", host_port.c_str());
    return -1;
  }
  const std::string host = host_port.substr(0, colon);
  const std::string port = host_port.substr(colon + 1);
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
  if (rc != 0) {
    std::fprintf(stderr, "resolve %s: %s\n", host_port.c_str(),
                 ::gai_strerror(rc));
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd >= 0) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

std::string EncodeFrame(std::string_view payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::string frame;
  frame.reserve(4 + payload.size());
  frame.push_back(static_cast<char>(len & 0xff));
  frame.push_back(static_cast<char>((len >> 8) & 0xff));
  frame.push_back(static_cast<char>((len >> 16) & 0xff));
  frame.push_back(static_cast<char>((len >> 24) & 0xff));
  frame.append(payload.data(), payload.size());
  return frame;
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) >= 0;
}

FrameSplitter::Result FrameSplitter::Next(std::string* payload,
                                          std::size_t max_payload) {
  if (buf_.size() - pos_ < 4) {
    // Drop the consumed prefix once nothing straddles it, so the buffer
    // never grows across a long pipelined session.
    if (pos_ > 0 && pos_ == buf_.size()) {
      buf_.clear();
      pos_ = 0;
    }
    return Result::kNeedMore;
  }
  const std::uint32_t len = DecodeLen(buf_.data() + pos_);
  if (len > max_payload) return Result::kOversize;
  if (buf_.size() - pos_ < 4 + static_cast<std::size_t>(len)) {
    return Result::kNeedMore;
  }
  payload->assign(buf_, pos_ + 4, len);
  pos_ += 4 + static_cast<std::size_t>(len);
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > (64u << 10) && pos_ * 2 > buf_.size()) {
    // Compact when the dead prefix dominates: keeps memory proportional to
    // unconsumed bytes without memmoving on every frame.
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return Result::kFrame;
}

}  // namespace opus::serve
