#include "serve/protocol.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace opus::serve {
namespace {

bool WriteAll(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool ReadAll(int fd, char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::read(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF mid-frame
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

// A sockaddr_un path is a fixed small array; reject paths that don't fit
// instead of silently truncating to a different filesystem location.
bool FillAddr(const std::string& path, sockaddr_un* addr) {
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) {
    std::fprintf(stderr, "socket path too long: %s\n", path.c_str());
    return false;
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

bool WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) return false;
  const auto len = static_cast<std::uint32_t>(payload.size());
  char prefix[4] = {static_cast<char>(len & 0xff),
                    static_cast<char>((len >> 8) & 0xff),
                    static_cast<char>((len >> 16) & 0xff),
                    static_cast<char>((len >> 24) & 0xff)};
  return WriteAll(fd, prefix, sizeof(prefix)) &&
         WriteAll(fd, payload.data(), payload.size());
}

bool ReadFrame(int fd, std::string* payload, std::size_t max_payload) {
  char prefix[4];
  if (!ReadAll(fd, prefix, sizeof(prefix))) return false;
  const std::uint32_t len =
      static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[0])) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[1]))
       << 8) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[2]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[3]))
       << 24);
  if (len > max_payload) return false;
  payload->resize(len);
  return len == 0 || ReadAll(fd, payload->data(), len);
}

int ListenUnix(const std::string& path, int backlog) {
  sockaddr_un addr;
  if (!FillAddr(path, &addr)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return -1;
  }
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::perror("bind");
    ::close(fd);
    return -1;
  }
  if (::listen(fd, backlog) < 0) {
    std::perror("listen");
    ::close(fd);
    return -1;
  }
  // Non-blocking listener: accept loops can drain every pending connection
  // until EAGAIN without risking a block between poll() and accept().
  // Accepted connections do NOT inherit the flag, so per-connection frame
  // I/O stays blocking.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    std::perror("fcntl");
    ::close(fd);
    return -1;
  }
  return fd;
}

int DialUnix(const std::string& path) {
  sockaddr_un addr;
  if (!FillAddr(path, &addr)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace opus::serve
