#include "serve/watch.h"

#include <sstream>

#include "common/strings.h"

namespace opus::serve {
namespace {

// One key=value or "name value" line -> (key, numeric value). False when
// the line has neither shape or the value is not a finite number.
bool ParseLine(std::string_view line, std::string* key, double* value) {
  // Trim a trailing '\r' so the parser is CRLF-tolerant.
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  if (line.empty() || line.front() == '#') return false;
  const std::size_t eq = line.find('=');
  if (eq != std::string_view::npos &&
      line.find(' ') == std::string_view::npos) {
    *key = std::string(line.substr(0, eq));
    return !key->empty() &&
           ParseFiniteDouble(std::string(line.substr(eq + 1)), value);
  }
  // Prometheus: "name{labels} value" or "name value" — split at the LAST
  // space so label values containing spaces stay inside the key.
  const std::size_t sp = line.rfind(' ');
  if (sp == std::string_view::npos || sp == 0) return false;
  *key = std::string(line.substr(0, sp));
  return ParseFiniteDouble(std::string(line.substr(sp + 1)), value);
}

}  // namespace

std::map<std::string, double> ParseNumericSamples(std::string_view text) {
  std::map<std::string, double> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    std::string key;
    double value = 0.0;
    if (ParseLine(text.substr(pos, nl - pos), &key, &value)) {
      out[key] = value;
    }
    pos = nl + 1;
  }
  return out;
}

std::string FormatRates(const std::map<std::string, double>& prev,
                        const std::map<std::string, double>& cur,
                        double interval_sec) {
  if (!(interval_sec > 0.0)) return "";
  std::ostringstream out;
  for (const auto& [key, value] : cur) {
    const auto it = prev.find(key);
    if (it == prev.end() || value == it->second) continue;
    const double rate = (value - it->second) / interval_sec;
    out << key << "=" << (rate >= 0.0 ? "+" : "") << rate << "/s\n";
  }
  std::string s = out.str();
  if (!s.empty()) s.pop_back();  // no trailing newline
  return s;
}

}  // namespace opus::serve
