// Helpers for `opus_client watch`: turn two successive daemon samples
// (status key=value lines or Prometheus exposition) into per-interval
// rates, so a poller sees requests/sec and evictions/sec next to the raw
// monotonically-growing counters without post-processing.
#pragma once

#include <map>
#include <string>
#include <string_view>

namespace opus::serve {

// Extracts every numeric sample from a reply payload. Two line shapes are
// recognized, covering both watchable commands:
//   key=value            (status)
//   name value           (Prometheus; an optional {labels} suffix on the
//                         name is kept as part of the key, '#' comment
//                         lines are skipped)
// Non-numeric values (policy names, paths) are ignored.
std::map<std::string, double> ParseNumericSamples(std::string_view text);

// Formats per-second rates between two samples taken `interval_sec` apart:
// one "key=+RATE/s" line per key present in both maps whose value changed.
// Monotonic decreases (daemon restart, histogram reset) are reported as
// negative rates rather than hidden — a poller should see the discontinuity.
// Returns "" when nothing changed or interval_sec <= 0.
std::string FormatRates(const std::map<std::string, double>& prev,
                        const std::map<std::string, double>& cur,
                        double interval_sec);

}  // namespace opus::serve
