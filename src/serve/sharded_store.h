// ShardedStore — a concurrency facade over the per-worker flat BlockStores.
//
// The data plane is already sharded: each worker owns one BlockStore and
// block→worker placement is a pure function, so a shard here IS a worker's
// store. This class adds the locking layer the serving engine and any
// non-affine caller need:
//
//  - One mutex per shard. Mutating ops (Access/Insert/Erase/Pin/Unpin)
//    lock only their shard; there is no global lock anywhere.
//  - One seqlock version per shard (even = stable, odd = writer active).
//    Every mutating path bumps it inside the shard lock — the locked
//    single-op wrappers below, and any caller batching mutations through
//    WriteLock(). Read-only probes can then run entirely lock-free via
//    TryProbe(): snapshot the version, run the store's side-effect-free
//    Probe(), validate the version, and retry/fall back on any overlap
//    with a writer. BlockStore::Probe reads only atomically-annotated
//    words and the store must be armed with ReserveForConcurrentProbes
//    (TryProbe falls back otherwise), so a racing probe is a discarded
//    value, never undefined behaviour — the protocol is TSan-clean.
//  - `shard()` / `Lock()` / `WriteLock()` expose the raw store and its
//    lock for callers that batch many ops under one acquisition (the
//    serving engine's per-event segments) or that run shard-affine phases
//    where a single thread owns a shard outright and can skip the lock
//    entirely (the managed-mode read path — see serve/engine.h). Lock()
//    is for read-only batches; anything that mutates the store MUST go
//    through WriteLock() so lock-free probers see the version change.
//
// Shards are attached by pointer and never owned: FailWorker replaces the
// worker's store object, so the engine re-attaches before every phase.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "cache/block_store.h"
#include "cache/types.h"

namespace opus::serve {

class ShardedStore {
 public:
  // Outcome of a lock-free probe attempt. kFallback means no consistent
  // snapshot was obtained (persistent writer activity, or the store is not
  // armed for concurrent probes) and the caller must use the locked path.
  enum class ProbeResult { kHit, kMiss, kFallback };

  // RAII writer section: takes the shard mutex and holds the seqlock
  // version odd for the guard's lifetime. All mutations of an attached
  // store must happen inside one of these (the locked wrappers below use
  // it internally).
  class WriteGuard {
   public:
    WriteGuard(std::mutex& mu, std::atomic<std::uint64_t>& seq)
        : lock_(mu), seq_(&seq) {
      seq_->fetch_add(1, std::memory_order_acq_rel);  // even -> odd
    }
    WriteGuard(WriteGuard&& other) noexcept
        : lock_(std::move(other.lock_)), seq_(other.seq_) {
      other.seq_ = nullptr;
    }
    WriteGuard& operator=(WriteGuard&&) = delete;
    ~WriteGuard() {
      if (seq_ != nullptr) {
        seq_->fetch_add(1, std::memory_order_acq_rel);  // odd -> even
      }
    }

   private:
    std::unique_lock<std::mutex> lock_;
    std::atomic<std::uint64_t>* seq_;
  };

  explicit ShardedStore(std::size_t num_shards);

  std::size_t num_shards() const { return shards_.size(); }

  // Rebinds shard `s` (e.g. after a worker restart). Not thread-safe:
  // callers attach between phases, never during one.
  void Attach(std::size_t s, cache::BlockStore* store);

  // Raw shard access for single-owner phases; unsynchronized.
  cache::BlockStore& shard(std::size_t s) { return *shards_[s]; }
  const cache::BlockStore& shard(std::size_t s) const { return *shards_[s]; }

  // The shard's lock for READ-ONLY batches (several consistent lookups per
  // acquisition). Mutating under this lock alone would let a concurrent
  // TryProbe validate against an unchanged version — use WriteLock().
  std::unique_lock<std::mutex> Lock(std::size_t s) {
    return std::unique_lock<std::mutex>(*mutexes_[s]);
  }

  // The shard's lock plus the seqlock writer bump, for callers batching
  // several MUTATIONS per acquisition.
  WriteGuard WriteLock(std::size_t s) {
    return WriteGuard(*mutexes_[s], seqs_[s]->v);
  }

  // Lock-free optimistic residency probe (the seqlock read protocol).
  // Never mutates policy state; the caller is responsible for deferring
  // the LRU/LFU touch (see serve/engine.h). `retries` (optional) is
  // incremented once per discarded attempt, so callers can feed seqlock
  // contention into telemetry.
  ProbeResult TryProbe(std::size_t s, cache::BlockId block,
                       std::uint64_t* retries = nullptr) const;

  // Current seqlock version of shard `s` (even = stable). Exposed for
  // tests asserting writer bumps.
  std::uint64_t version(std::size_t s) const {
    return seqs_[s]->v.load(std::memory_order_acquire);
  }

  // Locked single-op wrappers (mixed concurrent callers / stress tests).
  bool Access(std::size_t s, cache::BlockId block);
  bool Insert(std::size_t s, cache::BlockId block, std::uint64_t bytes);
  void Erase(std::size_t s, cache::BlockId block);
  bool Pin(std::size_t s, cache::BlockId block);
  void Unpin(std::size_t s, cache::BlockId block);
  bool Contains(std::size_t s, cache::BlockId block) const;

  // Aggregates over all shards, locking each in index order.
  std::uint64_t used_bytes() const;
  std::uint64_t num_blocks() const;
  std::uint64_t evictions() const;

 private:
  // One cache line per version counter so probe validation on one shard
  // never false-shares with writer bumps on a neighbour.
  struct alignas(64) SeqCounter {
    std::atomic<std::uint64_t> v{0};
  };

  std::vector<cache::BlockStore*> shards_;
  // unique_ptr: std::mutex is immovable and the vector is sized once.
  std::vector<std::unique_ptr<std::mutex>> mutexes_;
  std::vector<std::unique_ptr<SeqCounter>> seqs_;
};

}  // namespace opus::serve
