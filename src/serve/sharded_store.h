// ShardedStore — a concurrency facade over the per-worker flat BlockStores.
//
// The data plane is already sharded: each worker owns one BlockStore and
// block→worker placement is a pure function, so a shard here IS a worker's
// store. This class adds the locking layer the serving engine and any
// non-affine caller need:
//
//  - One mutex per shard. Mutating ops (Access/Insert/Erase/Pin/Unpin)
//    lock only their shard; there is no global lock anywhere.
//  - `shard()` / `Lock()` expose the raw store and its lock separately for
//    callers that batch many ops under one acquisition (the serving
//    engine's per-event segments) or that run shard-affine phases where a
//    single thread owns a shard outright and can skip the lock entirely
//    (the managed-mode read path — see serve/engine.h).
//
// Shards are attached by pointer and never owned: FailWorker replaces the
// worker's store object, so the engine re-attaches before every phase.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "cache/block_store.h"
#include "cache/types.h"

namespace opus::serve {

class ShardedStore {
 public:
  explicit ShardedStore(std::size_t num_shards);

  std::size_t num_shards() const { return shards_.size(); }

  // Rebinds shard `s` (e.g. after a worker restart). Not thread-safe:
  // callers attach between phases, never during one.
  void Attach(std::size_t s, cache::BlockStore* store);

  // Raw shard access for single-owner phases; unsynchronized.
  cache::BlockStore& shard(std::size_t s) { return *shards_[s]; }
  const cache::BlockStore& shard(std::size_t s) const { return *shards_[s]; }

  // The shard's lock, for callers batching several ops per acquisition.
  std::unique_lock<std::mutex> Lock(std::size_t s) {
    return std::unique_lock<std::mutex>(*mutexes_[s]);
  }

  // Locked single-op wrappers (mixed concurrent callers / stress tests).
  bool Access(std::size_t s, cache::BlockId block);
  bool Insert(std::size_t s, cache::BlockId block, std::uint64_t bytes);
  void Erase(std::size_t s, cache::BlockId block);
  bool Pin(std::size_t s, cache::BlockId block);
  void Unpin(std::size_t s, cache::BlockId block);
  bool Contains(std::size_t s, cache::BlockId block) const;

  // Aggregates over all shards, locking each in index order.
  std::uint64_t used_bytes() const;
  std::uint64_t num_blocks() const;
  std::uint64_t evictions() const;

 private:
  std::vector<cache::BlockStore*> shards_;
  // unique_ptr: std::mutex is immovable and the vector is sized once.
  std::vector<std::unique_ptr<std::mutex>> mutexes_;
};

}  // namespace opus::serve
