// Wire protocol for the serving daemon: length-prefixed frames over a
// Unix-domain stream socket.
//
// Frame = 4-byte little-endian payload length + payload bytes. Payloads
// are single-line text commands/replies (see serve/daemon.h for the
// command set); framing keeps message boundaries exact so replies can
// carry arbitrary text (metric snapshots, JSON audit reports) without
// in-band delimiters.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace opus::serve {

// Frames larger than this are rejected by ReadFrame (a corrupt or hostile
// length prefix must not trigger a giant allocation).
inline constexpr std::size_t kMaxFramePayload = 64u << 20;  // 64 MiB

// Writes one frame; retries on short writes/EINTR. False on any error.
bool WriteFrame(int fd, std::string_view payload);

// Reads one frame into *payload; retries on EINTR. False on EOF, error,
// or a length prefix exceeding max_payload.
bool ReadFrame(int fd, std::string* payload,
               std::size_t max_payload = kMaxFramePayload);

// Binds and listens on a Unix socket at `path` (unlinking any stale socket
// file first). The returned fd is non-blocking so accept loops can drain
// every pending connection (accepted fds themselves are blocking).
// Returns the listening fd, or -1 with a message on stderr.
int ListenUnix(const std::string& path, int backlog = 8);

// Connects to the daemon socket at `path`. Returns the fd, or -1.
int DialUnix(const std::string& path);

}  // namespace opus::serve
