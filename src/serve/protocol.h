// Wire protocol for the serving daemon: length-prefixed frames over a
// Unix-domain or TCP stream socket.
//
// Frame = 4-byte little-endian payload length + payload bytes. Payloads
// are single-line text commands/replies (see serve/daemon.h for the
// command set); framing keeps message boundaries exact so replies can
// carry arbitrary text (metric snapshots, JSON audit reports) without
// in-band delimiters. Both transports speak the identical frame format —
// the daemon's pipelined poll loop assembles frames incrementally via
// FrameSplitter, so a slow sender can never head-of-line-block other
// connections.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace opus::serve {

// Frames larger than this are rejected by ReadFrame (a corrupt or hostile
// length prefix must not trigger a giant allocation).
inline constexpr std::size_t kMaxFramePayload = 64u << 20;  // 64 MiB

// Writes one frame; retries on short writes/EINTR. False on any error.
bool WriteFrame(int fd, std::string_view payload);

// Reads one frame into *payload; retries on EINTR. False on EOF, error,
// or a length prefix exceeding max_payload.
bool ReadFrame(int fd, std::string* payload,
               std::size_t max_payload = kMaxFramePayload);

// Binds and listens on a Unix socket at `path` (unlinking any stale socket
// file first). The returned fd is non-blocking so accept loops can drain
// every pending connection (accepted fds themselves are blocking).
// Returns the listening fd, or -1 with a message on stderr.
int ListenUnix(const std::string& path, int backlog = 8);

// Connects to the daemon socket at `path`. Returns the fd, or -1.
int DialUnix(const std::string& path);

// Binds and listens on TCP 127.0.0.1:`port` (port 0 = kernel-assigned;
// the bound port is reported through *bound_port when non-null). Loopback
// only: the daemon speaks an unauthenticated control protocol, so it never
// listens on a routable interface. The returned fd is non-blocking, like
// ListenUnix. Returns -1 with a message on stderr on failure.
int ListenTcp(std::uint16_t port, int backlog = 8,
              std::uint16_t* bound_port = nullptr);

// Connects to `host_port` ("HOST:PORT", e.g. "127.0.0.1:7070"; the host
// may be a name). Sets TCP_NODELAY — frames are small command/reply pairs
// where Nagle coalescing only adds latency. Returns the fd, or -1.
int DialTcp(const std::string& host_port);

// Encodes `payload` as one wire frame (prefix + bytes), for callers that
// buffer writes instead of writing straight to a socket.
std::string EncodeFrame(std::string_view payload);

// Puts `fd` into non-blocking mode. False (with errno set) on failure.
bool SetNonBlocking(int fd);

// Incremental frame assembler for non-blocking reads: feed raw bytes in
// whatever chunks recv() produces, pull complete frames out. Detects an
// oversize length prefix as soon as the 4 prefix bytes arrive, without
// buffering the bogus payload.
class FrameSplitter {
 public:
  enum class Result {
    kFrame,     // *payload holds one complete frame
    kNeedMore,  // no complete frame buffered yet
    kOversize,  // length prefix exceeds max_payload: protocol error
  };

  void Append(const char* data, std::size_t len) {
    buf_.append(data, len);
  }

  // Extracts the next complete frame into *payload. Call repeatedly until
  // kNeedMore: one Append can complete several pipelined frames.
  Result Next(std::string* payload,
              std::size_t max_payload = kMaxFramePayload);

  // Bytes buffered but not yet returned as frames.
  std::size_t pending_bytes() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
};

}  // namespace opus::serve
