#include "analysis/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/mathutil.h"

namespace opus::analysis {
namespace {

double SortedPercentile(const std::vector<double>& sorted, double q) {
  OPUS_CHECK_GE(q, 0.0);
  OPUS_CHECK_LE(q, 100.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

}  // namespace

double Percentile(std::span<const double> xs, double q) {
  OPUS_CHECK(!xs.empty());
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return SortedPercentile(sorted, q);
}

std::vector<double> Percentiles(std::span<const double> xs,
                                std::span<const double> qs) {
  OPUS_CHECK(!xs.empty());
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) out.push_back(SortedPercentile(sorted, q));
  return out;
}

BoxStats ComputeBoxStats(std::span<const double> xs) {
  const double qs[] = {5.0, 25.0, 50.0, 75.0, 95.0};
  const auto p = Percentiles(xs, qs);
  BoxStats b;
  b.p5 = p[0];
  b.p25 = p[1];
  b.p50 = p[2];
  b.p75 = p[3];
  b.p95 = p[4];
  b.mean = Mean(xs);
  return b;
}

std::vector<std::pair<double, double>> EmpiricalCdf(
    std::span<const double> xs) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::pair<double, double>> cdf;
  cdf.reserve(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cdf.emplace_back(sorted[i], static_cast<double>(i + 1) /
                                    static_cast<double>(sorted.size()));
  }
  return cdf;
}

double CdfAt(std::span<const double> xs, double threshold) {
  if (xs.empty()) return 0.0;
  std::size_t count = 0;
  for (double x : xs) {
    if (x <= threshold) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(xs.size());
}

double StdDev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

}  // namespace opus::analysis
