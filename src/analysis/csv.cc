#include "analysis/csv.h"

#include <cstdlib>
#include <sstream>

#include "common/check.h"

namespace opus::analysis {
namespace {

std::string Trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, ',')) fields.push_back(Trim(field));
  if (!line.empty() && line.back() == ',') fields.push_back("");
  return fields;
}

}  // namespace

std::size_t CsvTable::num_columns() const {
  if (!header.empty()) return header.size();
  return rows.empty() ? 0 : rows[0].size();
}

std::optional<std::size_t> CsvTable::Find(const std::string& name) const {
  for (std::size_t c = 0; c < header.size(); ++c) {
    if (header[c] == name) return c;
  }
  return std::nullopt;
}

CsvTable ParseCsv(const std::string& text, bool has_header) {
  CsvTable table;
  std::istringstream ss(text);
  std::string line;
  bool saw_header = false;
  while (std::getline(ss, line)) {
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    auto fields = SplitLine(trimmed);
    if (has_header && !saw_header) {
      table.header = std::move(fields);
      saw_header = true;
    } else {
      table.rows.push_back(std::move(fields));
    }
  }
  return table;
}

std::string WriteCsv(const CsvTable& table) {
  std::ostringstream out;
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      OPUS_CHECK_MSG(row[c].find(',') == std::string::npos,
                     "CSV field contains a comma: " << row[c]);
      if (c != 0) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  if (!table.header.empty()) write_row(table.header);
  for (const auto& row : table.rows) write_row(row);
  return out.str();
}

std::vector<std::vector<double>> ToNumeric(const CsvTable& table) {
  std::vector<std::vector<double>> out;
  out.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    std::vector<double> values;
    values.reserve(row.size());
    for (const auto& cell : row) {
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      OPUS_CHECK_MSG(end != cell.c_str() && *end == '\0',
                     "non-numeric CSV cell: '" << cell << "'");
      values.push_back(v);
    }
    out.push_back(std::move(values));
  }
  return out;
}

}  // namespace opus::analysis
