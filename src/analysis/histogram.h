// Fixed-bucket histogram for latency/size distributions, with log-spaced
// bucket support (read latencies span five orders of magnitude between a
// memory hit and a cold disk read) and a compact ASCII rendering.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace opus::analysis {

class Histogram {
 public:
  // Linear buckets over [lo, hi) plus underflow/overflow buckets.
  static Histogram Linear(double lo, double hi, std::size_t buckets);

  // Log-spaced buckets over [lo, hi), lo > 0.
  static Histogram Logarithmic(double lo, double hi, std::size_t buckets);

  void Add(double value);
  void Add(double value, std::uint64_t count);

  std::uint64_t total() const { return total_; }
  std::size_t num_buckets() const { return counts_.size(); }
  std::uint64_t bucket_count(std::size_t b) const;
  // [lower, upper) bounds of bucket b.
  double bucket_lower(std::size_t b) const;
  double bucket_upper(std::size_t b) const;
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }

  // Approximate quantile by linear interpolation within the bucket.
  // q in [0, 100]; returns the lo/hi edge for under/overflowing mass.
  double ApproximateQuantile(double q) const;

  // Compact ASCII rendering: one row per non-empty bucket with a bar
  // proportional to its share.
  std::string Render(int width = 40) const;

 private:
  Histogram(double lo, double hi, std::size_t buckets, bool log_scale);
  std::size_t BucketFor(double value) const;

  double lo_, hi_;
  bool log_scale_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace opus::analysis
