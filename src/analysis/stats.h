// Descriptive statistics used by the benches: percentiles (Fig. 8/10 error
// bars and boxplots), empirical CDFs (Fig. 7), and summary records.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace opus::analysis {

// Linear-interpolated percentile, q in [0, 100]. Requires non-empty input.
double Percentile(std::span<const double> xs, double q);

// Percentiles at each q in `qs`, from a single sorted copy of the data.
// Use instead of repeated Percentile() calls on the same sample: one
// O(n log n) sort instead of one per quantile. Requires non-empty `xs`.
std::vector<double> Percentiles(std::span<const double> xs,
                                std::span<const double> qs);

// The five-number summary used by the paper's boxplots (Fig. 10: whiskers
// at p5/p95, box at p25/p50/p75).
struct BoxStats {
  double p5 = 0.0, p25 = 0.0, p50 = 0.0, p75 = 0.0, p95 = 0.0;
  double mean = 0.0;
};
BoxStats ComputeBoxStats(std::span<const double> xs);

// Empirical CDF sampled at the data points: returns sorted (value,
// cumulative_probability) pairs.
std::vector<std::pair<double, double>> EmpiricalCdf(
    std::span<const double> xs);

// Fraction of samples <= threshold.
double CdfAt(std::span<const double> xs, double threshold);

// Sample standard deviation (n-1 denominator); 0 for n < 2.
double StdDev(std::span<const double> xs);

}  // namespace opus::analysis
