// Minimal CSV reading/writing used by the CLI tool and bench artifact
// export. Handles the subset of CSV the tools emit: comma separation,
// optional header row, no quoting (fields must not contain commas).
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace opus::analysis {

struct CsvTable {
  std::vector<std::string> header;               // empty if none
  std::vector<std::vector<std::string>> rows;

  std::size_t num_columns() const;

  // Column index by header name; nullopt when absent or no header.
  std::optional<std::size_t> Find(const std::string& name) const;
};

// Parses CSV text. `has_header` promotes the first row. Trims surrounding
// whitespace of each field; skips blank lines and lines starting with '#'.
CsvTable ParseCsv(const std::string& text, bool has_header);

// Serializes a table (header first when present).
std::string WriteCsv(const CsvTable& table);

// Parses every data cell as double. Aborts (OPUS_CHECK) on non-numeric
// cells; use for trusted tool input after structural validation.
std::vector<std::vector<double>> ToNumeric(const CsvTable& table);

}  // namespace opus::analysis
