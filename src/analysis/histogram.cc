#include "analysis/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/strings.h"

namespace opus::analysis {

Histogram::Histogram(double lo, double hi, std::size_t buckets,
                     bool log_scale)
    : lo_(lo), hi_(hi), log_scale_(log_scale), counts_(buckets, 0) {
  OPUS_CHECK_GT(buckets, 0u);
  OPUS_CHECK_LT(lo, hi);
  if (log_scale) OPUS_CHECK_GT(lo, 0.0);
}

Histogram Histogram::Linear(double lo, double hi, std::size_t buckets) {
  return Histogram(lo, hi, buckets, /*log_scale=*/false);
}

Histogram Histogram::Logarithmic(double lo, double hi, std::size_t buckets) {
  return Histogram(lo, hi, buckets, /*log_scale=*/true);
}

std::size_t Histogram::BucketFor(double value) const {
  double t;
  if (log_scale_) {
    t = (std::log(value) - std::log(lo_)) /
        (std::log(hi_) - std::log(lo_));
  } else {
    t = (value - lo_) / (hi_ - lo_);
  }
  const auto b = static_cast<std::ptrdiff_t>(
      t * static_cast<double>(counts_.size()));
  return static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(b, 0,
                                 static_cast<std::ptrdiff_t>(counts_.size()) -
                                     1));
}

void Histogram::Add(double value) { Add(value, 1); }

void Histogram::Add(double value, std::uint64_t count) {
  total_ += count;
  if (value < lo_) {
    underflow_ += count;
  } else if (value >= hi_) {
    overflow_ += count;
  } else {
    counts_[BucketFor(value)] += count;
  }
}

std::uint64_t Histogram::bucket_count(std::size_t b) const {
  OPUS_CHECK_LT(b, counts_.size());
  return counts_[b];
}

double Histogram::bucket_lower(std::size_t b) const {
  OPUS_CHECK_LT(b, counts_.size());
  const double t = static_cast<double>(b) /
                   static_cast<double>(counts_.size());
  if (log_scale_) {
    return std::exp(std::log(lo_) + t * (std::log(hi_) - std::log(lo_)));
  }
  return lo_ + t * (hi_ - lo_);
}

double Histogram::bucket_upper(std::size_t b) const {
  return b + 1 == counts_.size() ? hi_ : bucket_lower(b + 1);
}

double Histogram::ApproximateQuantile(double q) const {
  OPUS_CHECK_GE(q, 0.0);
  OPUS_CHECK_LE(q, 100.0);
  if (total_ == 0) return lo_;
  const double target = q / 100.0 * static_cast<double>(total_);
  double seen = static_cast<double>(underflow_);
  if (target <= seen) return lo_;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double next = seen + static_cast<double>(counts_[b]);
    if (target <= next && counts_[b] > 0) {
      const double frac = (target - seen) / static_cast<double>(counts_[b]);
      return bucket_lower(b) + frac * (bucket_upper(b) - bucket_lower(b));
    }
    seen = next;
  }
  return hi_;
}

std::string Histogram::Render(int width) const {
  OPUS_CHECK_GT(width, 0);
  std::uint64_t max_count = std::max(underflow_, overflow_);
  for (std::uint64_t c : counts_) max_count = std::max(max_count, c);
  if (max_count == 0) return "(empty histogram)\n";

  std::string out;
  auto bar = [&](std::uint64_t count) {
    const int len = static_cast<int>(
        static_cast<double>(count) / static_cast<double>(max_count) * width);
    return std::string(static_cast<std::size_t>(len), '#');
  };
  if (underflow_ > 0) {
    out += StrFormat("%12s < %-9.3g %8llu %s\n", "", lo_,
                     static_cast<unsigned long long>(underflow_),
                     bar(underflow_).c_str());
  }
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    out += StrFormat("[%9.3g, %9.3g) %8llu %s\n", bucket_lower(b),
                     bucket_upper(b),
                     static_cast<unsigned long long>(counts_[b]),
                     bar(counts_[b]).c_str());
  }
  if (overflow_ > 0) {
    out += StrFormat("%11s >= %-9.3g %8llu %s\n", "", hi_,
                     static_cast<unsigned long long>(overflow_),
                     bar(overflow_).c_str());
  }
  return out;
}

}  // namespace opus::analysis
