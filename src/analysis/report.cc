#include "analysis/report.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"
#include "common/mathutil.h"

namespace opus::analysis {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::AddHeader(std::vector<std::string> cells) {
  OPUS_CHECK(!has_header_);
  has_header_ = true;
  rows_.insert(rows_.begin(), std::move(cells));
}

void Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::Render() const {
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  if (!title_.empty()) {
    out += "== " + title_ + " ==\n";
  }
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    std::string line;
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      std::string cell = rows_[r][c];
      cell.resize(widths[c], ' ');
      line += cell;
      if (c + 1 < rows_[r].size()) line += "  ";
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    out += line + "\n";
    if (r == 0 && has_header_) {
      std::size_t total = 0;
      for (std::size_t c = 0; c < widths.size(); ++c) {
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
      }
      out += std::string(total, '-') + "\n";
    }
  }
  return out;
}

void Table::Print() const { std::fputs((Render() + "\n").c_str(), stdout); }

AsciiChart::AsciiChart(double lo, double hi, int height, int width)
    : lo_(lo), hi_(hi), height_(height), width_(width) {
  OPUS_CHECK_LT(lo, hi);
  OPUS_CHECK_GE(height, 2);
  OPUS_CHECK_GE(width, 8);
}

void AsciiChart::AddSeries(std::string label, std::vector<double> values) {
  series_.emplace_back(std::move(label), std::move(values));
}

std::string AsciiChart::Render() const {
  std::vector<std::string> grid(
      static_cast<std::size_t>(height_),
      std::string(static_cast<std::size_t>(width_), ' '));
  const char marks[] = {'*', 'o', '+', 'x', '#', '@'};

  for (std::size_t s = 0; s < series_.size(); ++s) {
    const auto& values = series_[s].second;
    if (values.empty()) continue;
    for (int col = 0; col < width_; ++col) {
      // Nearest sample for this column.
      const std::size_t idx = static_cast<std::size_t>(
          static_cast<double>(col) / std::max(1, width_ - 1) *
          static_cast<double>(values.size() - 1));
      const double v = Clamp(values[idx], lo_, hi_);
      const int row = static_cast<int>(
          (hi_ - v) / (hi_ - lo_) * static_cast<double>(height_ - 1));
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
          marks[s % sizeof(marks)];
    }
  }

  std::string out;
  char buf[32];
  for (int r = 0; r < height_; ++r) {
    const double v = hi_ - (hi_ - lo_) * static_cast<double>(r) /
                               static_cast<double>(height_ - 1);
    std::snprintf(buf, sizeof(buf), "%6.2f |", v);
    out += buf;
    out += grid[static_cast<std::size_t>(r)];
    out += "\n";
  }
  out += "       +" + std::string(static_cast<std::size_t>(width_), '-') +
         "\n";
  out += "        legend:";
  for (std::size_t s = 0; s < series_.size(); ++s) {
    out += " ";
    out += marks[s % sizeof(marks)];
    out += "=" + series_[s].first;
  }
  out += "\n";
  return out;
}

void AsciiChart::Print() const {
  std::fputs((Render() + "\n").c_str(), stdout);
}

}  // namespace opus::analysis
