// Plain-text report rendering for the bench binaries: aligned tables and
// simple ASCII line charts so every figure/table of the paper prints as a
// readable terminal artifact (and greps cleanly into EXPERIMENTS.md).
#pragma once

#include <string>
#include <vector>

namespace opus::analysis {

// Column-aligned table. Cells are preformatted strings; the first row added
// with AddHeader is underlined.
class Table {
 public:
  explicit Table(std::string title = "");

  void AddHeader(std::vector<std::string> cells);
  void AddRow(std::vector<std::string> cells);

  // Renders with two-space column gaps.
  std::string Render() const;

  // Renders and writes to stdout.
  void Print() const;

 private:
  std::string title_;
  bool has_header_ = false;
  std::vector<std::vector<std::string>> rows_;
};

// Multi-series ASCII line chart (one sample per column), used for the
// hit-ratio time series of Figs. 5-6. Values must lie in [lo, hi].
class AsciiChart {
 public:
  AsciiChart(double lo, double hi, int height = 12, int width = 72);

  void AddSeries(std::string label, std::vector<double> values);

  std::string Render() const;
  void Print() const;

 private:
  double lo_, hi_;
  int height_, width_;
  std::vector<std::pair<std::string, std::vector<double>>> series_;
};

}  // namespace opus::analysis
