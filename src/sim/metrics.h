// Per-user effective-hit-ratio accounting for trace simulations.
//
// Implements the paper's metric (Sec. VI): every genuine access contributes
// an effective hit in [0,1] — the in-memory fraction served, discounted by
// the blocking probability (a delayed access counts as a fractional miss).
// Spurious accesses are tracked separately: they drive frequency learning
// and cache churn but do not score the cheater's workload.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "cache/types.h"

namespace opus::sim {

struct MetricsConfig {
  // Rolling-window length (in genuine accesses per user) for time series.
  std::size_t window = 100;
  // Emit a series sample every this many genuine accesses per user.
  std::size_t sample_every = 20;
};

class HitRatioTracker {
 public:
  HitRatioTracker(std::size_t num_users, MetricsConfig config = {});

  // Records one access outcome.
  void Record(cache::UserId user, double effective_hit, bool genuine);

  // Cumulative effective hit ratio over the user's genuine accesses
  // (0 when the user has none).
  double CumulativeRatio(cache::UserId user) const;

  // All users' cumulative ratios.
  std::vector<double> CumulativeRatios() const;

  // Rolling-window hit-ratio series for a user (one point per
  // `sample_every` genuine accesses).
  const std::vector<double>& Series(cache::UserId user) const;

  std::size_t GenuineCount(cache::UserId user) const;
  std::size_t SpuriousCount(cache::UserId user) const;

 private:
  struct UserState {
    double hit_sum = 0.0;
    std::size_t genuine = 0;
    std::size_t spurious = 0;
    std::deque<double> window;
    double window_sum = 0.0;
    std::vector<double> series;
  };

  MetricsConfig config_;
  std::vector<UserState> users_;
};

}  // namespace opus::sim
