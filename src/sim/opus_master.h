// OpusMaster — the allocation control loop of the paper's Fig. 4/Sec. V:
// tallies per-(user,file) access frequencies over a sliding learning window,
// periodically turns them into a CachingProblem (frequencies -> normalized
// preferences), runs a pluggable CacheAllocator (OpuS, FairRide, ...), and
// pushes the outcome to the cluster (block pins via CacheUpdate + the
// per-user blocking/access model for delay emulation).
//
// The paper fixes the learning window at 20 minutes with updates three times
// an hour; the trace-driven analogue here counts accesses. The adaptive
// window flag implements the paper's future-work extension: the window
// shrinks when the observed distribution drifts quickly and grows when it is
// stable (ablated in bench_ablation_window).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "cache/cluster.h"
#include "cache/journal.h"
#include "core/allocator.h"
#include "core/opus.h"
#include "obs/fairness_audit.h"
#include "obs/metrics.h"
#include "workload/trace.h"

namespace opus::sim {

struct OpusMasterConfig {
  // Re-run the allocator every this many observed accesses ("20 minutes").
  std::size_t update_interval = 1000;
  // Sliding learning-window length, in accesses.
  std::size_t learning_window = 4000;
  // Capacity handed to the allocator, in file units. <= 0 derives it from
  // cluster capacity / mean file size.
  double capacity_units = 0.0;
  // Adaptive learning window (extension; see file comment).
  bool adaptive_window = false;
  std::size_t min_window = 500;
  std::size_t max_window = 16000;
  // Journal every applied allocation (cache/journal.h) so a restarted
  // master can replay the latest decision onto a fresh cluster.
  bool enable_journal = false;
  // Lazy reallocation (extension): skip the (N+1)-solve Algorithm 1 run
  // when the inferred preferences moved less than this L1 distance per
  // user since the last applied allocation. 0 = always reallocate.
  double lazy_threshold = 0.0;
  // Online fairness audit: after each applied allocation, recompute the
  // isolation / break-even / normalized-envy guarantees and record
  // violations ("audit.violation" events + the AuditReport).
  bool audit = true;
  obs::FairnessAuditConfig audit_config;
  // Per-allocation-window metric deltas retained (oldest dropped beyond
  // this).
  std::size_t max_metric_windows = 512;
  // Incremental allocation windows: when the active allocator is OpuS, keep
  // an OpusWarmState across reallocations so every window's PF solves
  // warm-start from the previous applied allocation (and, when the
  // allocator's OpusDeltaOptions enable it, only drifted users are
  // re-solved). Live reconfiguration — policy swap, capacity override,
  // user drop — invalidates the state, so the next window runs cold.
  bool incremental = true;
};

class OpusMaster {
 public:
  // `allocator` and `cluster` must outlive the master.
  OpusMaster(const CacheAllocator* allocator, cache::CacheCluster* cluster,
             OpusMasterConfig config);

  // --- client workflow (paper Sec. V-A) ----------------------------------

  // Registers an application and returns its OpuS client id (a dense
  // UserId). Aborts when more clients register than the cluster was
  // configured for. Names are informational and need not be unique.
  cache::UserId RegisterClient(std::string name);

  std::size_t num_registered_clients() const { return client_names_.size(); }
  const std::string& client_name(cache::UserId id) const;

  // Explicitly reported caching preferences for one client (the paper's
  // report-through-an-API alternative to frequency inference). Overrides
  // the inferred row for this client until cleared. `prefs` are raw
  // non-negative scores, normalized internally.
  void ReportPreferences(cache::UserId client, std::vector<double> prefs);

  // Reverts `client` to frequency-inferred preferences.
  void ClearReportedPreferences(cache::UserId client);

  bool HasReportedPreferences(cache::UserId client) const;

  // Renames a registered client (e.g. a revived slot reused for a new
  // tenant under a different name).
  void RenameClient(cache::UserId client, std::string name);

  // Forgets everything the master has learned about `client`: its window
  // accesses and inferred counts, any explicitly reported preferences, and
  // its row of the incremental warm state. The next window treats the slot
  // as a fresh zero-preference tenant (zero share until it reports or
  // accesses again). Used by the serving daemon on dropuser.
  void PurgeUser(cache::UserId client);

  // Primes the allocation from an externally known preference matrix (e.g.
  // a previous window's model) so simulations start at steady state.
  void Prime(const Matrix& preferences);

  // Observes one access (genuine or spurious — the master cannot tell; that
  // is exactly the manipulation surface) and reallocates on schedule.
  void OnAccess(const workload::AccessEvent& event);

  // Rebuilds preferences from the current window and reallocates now.
  void Reallocate();

  const AllocationResult& current_allocation() const { return current_; }
  std::size_t reallocations() const { return reallocations_; }

  // Accesses remaining until OnAccess fires the next scheduled
  // reallocation (>= 1). The serving engine uses this to chunk parallel
  // read phases so every reallocation happens between phases, exactly
  // where the serial oracle fires it.
  std::size_t accesses_until_update() const {
    return config_.update_interval > since_update_
               ? config_.update_interval - since_update_
               : 1;
  }

  // --- live reconfiguration (serving daemon) ------------------------------

  // Swaps the allocation policy; takes effect at the next reallocation.
  // `allocator` must outlive the master.
  void set_allocator(const CacheAllocator* allocator);

  // Overrides the capacity (file units) handed to the allocator from the
  // next reallocation on. <= 0 reverts to deriving it from cluster
  // capacity / mean file size.
  void set_capacity_units(double units);
  double capacity_units() const { return config_.capacity_units; }

  std::string policy_name() const { return allocator_->name(); }
  // Scheduled updates skipped because preferences were stable
  // (lazy_threshold).
  std::size_t skipped_reallocations() const { return skipped_; }
  std::size_t window_size() const { return config_.learning_window; }

  // The control-plane journal (empty unless enable_journal).
  const cache::Journal& journal() const { return journal_; }

  // Per-window fairness audit (empty when config.audit is false).
  const obs::AuditReport& audit_report() const { return auditor_.report(); }

  // Per-allocation-window metric deltas (window k = what happened between
  // applied allocations k-1 and k).
  const std::vector<obs::MetricWindow>& window_metrics() const {
    return window_metrics_.windows();
  }

  // Preference matrix inferred from the current window (normalized).
  Matrix InferredPreferences() const;

 private:
  void Apply(const AllocationResult& result);
  void AdaptWindow();
  void InitObservability();
  // Runs one allocator solve with wall-time accounting (the only volatile
  // metric the master records) and applies the result.
  void SolveAndApply(const CachingProblem& problem);

  const CacheAllocator* allocator_;
  cache::CacheCluster* cluster_;
  OpusMasterConfig config_;
  std::vector<double> file_sizes_;  // per-file sizes in mean-file units
  std::vector<std::string> client_names_;
  // Explicit per-client preference rows (normalized); empty row = inferred.
  std::vector<std::vector<double>> explicit_prefs_;
  std::deque<workload::AccessEvent> window_;
  Matrix counts_;  // num_users x num_files, counts within window_
  Matrix previous_prefs_;
  // Cross-window solver state for incremental OpuS windows (see
  // OpusMasterConfig::incremental). Owned here because its lifetime is the
  // master's, not the (swappable, shared, const) allocator's.
  OpusWarmState warm_;
  AllocationResult current_;
  cache::Journal journal_;
  obs::FairnessAuditor auditor_;
  obs::WindowedSnapshots window_metrics_;
  std::size_t since_update_ = 0;
  std::size_t reallocations_ = 0;
  std::size_t skipped_ = 0;

  // Pre-resolved handles into the cluster's metrics registry ("master.*").
  obs::Counter* realloc_counter_ = nullptr;
  obs::Counter* lazy_skip_counter_ = nullptr;
  obs::Counter* ig_fallback_counter_ = nullptr;
  obs::Gauge* window_gauge_ = nullptr;
  obs::Gauge* drift_gauge_ = nullptr;
  obs::Gauge* residual_gauge_ = nullptr;
  obs::Counter* solver_solves_counter_ = nullptr;
  obs::Counter* solver_projections_counter_ = nullptr;
  obs::Counter* solver_restricted_counter_ = nullptr;
  obs::Counter* solver_fallback_counter_ = nullptr;
  obs::Gauge* solver_nnz_gauge_ = nullptr;
  obs::Counter* solver_warm_counter_ = nullptr;
  obs::Counter* delta_window_counter_ = nullptr;
  obs::Counter* delta_resolved_counter_ = nullptr;
  obs::Counter* delta_reused_counter_ = nullptr;
  obs::Counter* delta_fallback_counter_ = nullptr;
  obs::Gauge* agg_clusters_gauge_ = nullptr;
  obs::Histogram* solve_iterations_hist_ = nullptr;
  obs::Histogram* solve_wall_hist_ = nullptr;  // volatile (wall time)
};

}  // namespace opus::sim
