// Experiment sweep runner: evaluates a set of policies over a grid of
// randomized problem instances and collects per-(policy, instance, user)
// records — the machinery behind parameter-sweep figures (Fig. 8/9 style),
// exposed as a library so downstream studies don't rewrite the loop.
// Records export to CSV for external plotting.
//
// Threading model: Run() dispatches one task per (point, replication) onto
// the shared ThreadPool. Each task seeds its own Rng from (point, rep)
// alone and writes into a pre-sized slab slot, so the record stream — and
// therefore ToCsv() and Summaries() — is byte-identical to the serial run
// regardless of the thread count or scheduling order.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/allocator.h"

namespace opus::sim {

struct SweepRecord {
  std::string policy;
  std::string point;       // sweep-point label (e.g. "users=50")
  int replication = 0;
  std::size_t user = 0;
  double utility = 0.0;    // true-preference effective hit ratio
  bool shared = false;     // the policy settled on sharing
};

struct SweepPointSummary {
  std::string policy;
  std::string point;
  double mean = 0.0, p5 = 0.0, p95 = 0.0;
  double sharing_rate = 0.0;  // fraction of replications that shared
};

class SweepRunner {
 public:
  // Generator builds the problem for (point_index, replication); the rng is
  // seeded deterministically per (point, replication) so adding policies
  // never perturbs instances. Must be safe to call concurrently for
  // distinct (point, replication) pairs.
  using ProblemFn =
      std::function<CachingProblem(std::size_t point, int replication, Rng&)>;

  SweepRunner(std::vector<std::string> point_labels, ProblemFn problem_fn,
              int replications, std::uint64_t seed = 0xBEEF);

  // Registers a policy (borrowed; must outlive Run()). Allocate() must be
  // const-thread-safe (all shipped allocators are).
  void AddPolicy(const CacheAllocator* policy);

  // Worker parallelism for Run(): 0 = all hardware threads (default),
  // 1 = serial, N = at most N concurrent tasks.
  void set_threads(unsigned threads) { threads_ = threads; }
  unsigned threads() const { return threads_; }

  // Runs the full grid; records accumulate across calls.
  void Run();

  const std::vector<SweepRecord>& records() const { return records_; }

  // Per-(policy, point) aggregate across users x replications. A single
  // grouped pass over the records; insensitive to record order.
  std::vector<SweepPointSummary> Summaries() const;

  // Records as CSV (policy,point,replication,user,utility,shared).
  std::string ToCsv() const;

 private:
  std::vector<std::string> point_labels_;
  ProblemFn problem_fn_;
  int replications_;
  std::uint64_t seed_;
  unsigned threads_ = 0;
  std::vector<const CacheAllocator*> policies_;
  std::vector<SweepRecord> records_;
};

}  // namespace opus::sim
