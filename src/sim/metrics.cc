#include "sim/metrics.h"

#include "common/check.h"

namespace opus::sim {

HitRatioTracker::HitRatioTracker(std::size_t num_users, MetricsConfig config)
    : config_(config), users_(num_users) {
  OPUS_CHECK_GT(config_.window, 0u);
  OPUS_CHECK_GT(config_.sample_every, 0u);
}

void HitRatioTracker::Record(cache::UserId user, double effective_hit,
                             bool genuine) {
  OPUS_CHECK_LT(user, users_.size());
  OPUS_CHECK_GE(effective_hit, -1e-9);
  OPUS_CHECK_LE(effective_hit, 1.0 + 1e-9);
  UserState& u = users_[user];
  if (!genuine) {
    ++u.spurious;
    return;
  }
  ++u.genuine;
  u.hit_sum += effective_hit;
  u.window.push_back(effective_hit);
  u.window_sum += effective_hit;
  if (u.window.size() > config_.window) {
    u.window_sum -= u.window.front();
    u.window.pop_front();
  }
  if (u.genuine % config_.sample_every == 0) {
    u.series.push_back(u.window_sum / static_cast<double>(u.window.size()));
  }
}

double HitRatioTracker::CumulativeRatio(cache::UserId user) const {
  OPUS_CHECK_LT(user, users_.size());
  const UserState& u = users_[user];
  return u.genuine == 0 ? 0.0 : u.hit_sum / static_cast<double>(u.genuine);
}

std::vector<double> HitRatioTracker::CumulativeRatios() const {
  std::vector<double> out(users_.size());
  for (std::size_t i = 0; i < users_.size(); ++i) {
    out[i] = CumulativeRatio(static_cast<cache::UserId>(i));
  }
  return out;
}

const std::vector<double>& HitRatioTracker::Series(cache::UserId user) const {
  OPUS_CHECK_LT(user, users_.size());
  return users_[user].series;
}

std::size_t HitRatioTracker::GenuineCount(cache::UserId user) const {
  OPUS_CHECK_LT(user, users_.size());
  return users_[user].genuine;
}

std::size_t HitRatioTracker::SpuriousCount(cache::UserId user) const {
  OPUS_CHECK_LT(user, users_.size());
  return users_[user].spurious;
}

}  // namespace opus::sim
