// Trace-driven simulation engine: replays an access trace against either a
// managed cluster (allocator + OpusMaster control loop) or an unmanaged
// cluster (online LRU/LFU eviction), producing the paper's effective
// hit-ratio metrics.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cache/cluster.h"
#include "core/allocator.h"
#include "obs/event_trace.h"
#include "obs/fairness_audit.h"
#include "obs/metrics.h"
#include "obs/span_trace.h"
#include "sim/metrics.h"
#include "sim/opus_master.h"
#include "workload/trace.h"

namespace opus::sim {

struct SimulationResult {
  std::string policy;
  std::vector<double> per_user_hit_ratio;        // cumulative, genuine only
  std::vector<std::vector<double>> series;       // rolling window, per user
  double average_hit_ratio = 0.0;
  std::size_t reallocations = 0;                 // managed mode only
  std::uint64_t evictions = 0;                   // unmanaged mode only
  std::uint64_t disk_bytes_read = 0;
  double total_latency_sec = 0.0;
  // Per-access latency percentiles across the whole trace (seconds).
  double latency_p50_sec = 0.0;
  double latency_p95_sec = 0.0;
  double latency_p99_sec = 0.0;
  // End-of-run snapshot of the cluster's metrics registry (volatile metrics
  // excluded, so exports are byte-identical across reruns and thread
  // counts) and the structured event trace accumulated during the run.
  obs::MetricsSnapshot metrics;
  std::vector<obs::TraceEvent> trace_events;
  // Causal span trace of the run (sampled per ClusterConfig); same
  // determinism bar as `metrics`.
  std::vector<obs::SpanRecord> spans;
  // Managed mode only: per-window fairness audit and per-window metric
  // deltas from the master.
  obs::AuditReport audit;
  std::vector<obs::MetricWindow> window_metrics;
};

struct ManagedSimConfig {
  cache::ClusterConfig cluster;
  OpusMasterConfig master;
  MetricsConfig metrics;
  // Steady-state priming: allocate once from these preferences before the
  // trace starts (empty = start cold and learn from scratch).
  Matrix prime_preferences;
};

// Replays `trace` under `allocator` with the OpusMaster control loop.
SimulationResult RunManagedSimulation(const ManagedSimConfig& config,
                                      const CacheAllocator& allocator,
                                      const cache::Catalog& catalog,
                                      const workload::Trace& trace);

struct UnmanagedSimConfig {
  cache::ClusterConfig cluster;  // eviction_policy selects lru/lfu
  MetricsConfig metrics;
};

// Replays `trace` against stock cache-on-read eviction (the Fig. 5 LRU
// baseline and the online-LFU reference).
SimulationResult RunUnmanagedSimulation(const UnmanagedSimConfig& config,
                                        const cache::Catalog& catalog,
                                        const workload::Trace& trace);

}  // namespace opus::sim
