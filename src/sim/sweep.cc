#include "sim/sweep.h"

#include "analysis/csv.h"
#include "analysis/stats.h"
#include "common/check.h"
#include "common/strings.h"
#include "core/utility.h"

namespace opus::sim {

SweepRunner::SweepRunner(std::vector<std::string> point_labels,
                         ProblemFn problem_fn, int replications,
                         std::uint64_t seed)
    : point_labels_(std::move(point_labels)),
      problem_fn_(std::move(problem_fn)),
      replications_(replications),
      seed_(seed) {
  OPUS_CHECK(!point_labels_.empty());
  OPUS_CHECK_GT(replications_, 0);
  OPUS_CHECK(problem_fn_ != nullptr);
}

void SweepRunner::AddPolicy(const CacheAllocator* policy) {
  OPUS_CHECK(policy != nullptr);
  policies_.push_back(policy);
}

void SweepRunner::Run() {
  OPUS_CHECK(!policies_.empty());
  for (std::size_t point = 0; point < point_labels_.size(); ++point) {
    for (int rep = 0; rep < replications_; ++rep) {
      // Instance seed depends only on (point, rep): adding/removing
      // policies cannot perturb the generated problems.
      Rng rng(seed_ ^ (static_cast<std::uint64_t>(point) << 32) ^
              static_cast<std::uint64_t>(rep));
      const CachingProblem problem = problem_fn_(point, rep, rng);
      for (const CacheAllocator* policy : policies_) {
        const AllocationResult result = policy->Allocate(problem);
        const auto utils = EvaluateUtilities(result, problem.preferences);
        for (std::size_t u = 0; u < utils.size(); ++u) {
          records_.push_back({policy->name(), point_labels_[point], rep, u,
                              utils[u], result.shared});
        }
      }
    }
  }
}

std::vector<SweepPointSummary> SweepRunner::Summaries() const {
  std::vector<SweepPointSummary> out;
  for (const CacheAllocator* policy : policies_) {
    for (const auto& label : point_labels_) {
      std::vector<double> utils;
      int shared = 0, reps_seen = 0, last_rep = -1;
      for (const auto& r : records_) {
        if (r.policy != policy->name() || r.point != label) continue;
        utils.push_back(r.utility);
        if (r.replication != last_rep) {
          last_rep = r.replication;
          ++reps_seen;
          if (r.shared) ++shared;
        }
      }
      if (utils.empty()) continue;
      SweepPointSummary s;
      s.policy = policy->name();
      s.point = label;
      s.mean = analysis::ComputeBoxStats(utils).mean;
      s.p5 = analysis::Percentile(utils, 5);
      s.p95 = analysis::Percentile(utils, 95);
      s.sharing_rate =
          reps_seen > 0 ? static_cast<double>(shared) / reps_seen : 0.0;
      out.push_back(std::move(s));
    }
  }
  return out;
}

std::string SweepRunner::ToCsv() const {
  analysis::CsvTable table;
  table.header = {"policy", "point", "replication", "user", "utility",
                  "shared"};
  for (const auto& r : records_) {
    table.rows.push_back({r.policy, r.point, std::to_string(r.replication),
                          std::to_string(r.user),
                          StrFormat("%.6f", r.utility),
                          r.shared ? "1" : "0"});
  }
  return analysis::WriteCsv(table);
}

}  // namespace opus::sim
