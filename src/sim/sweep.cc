#include "sim/sweep.h"

#include <iterator>
#include <set>
#include <unordered_map>
#include <utility>

#include "analysis/csv.h"
#include "analysis/stats.h"
#include "common/check.h"
#include "common/mathutil.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/utility.h"

namespace opus::sim {

SweepRunner::SweepRunner(std::vector<std::string> point_labels,
                         ProblemFn problem_fn, int replications,
                         std::uint64_t seed)
    : point_labels_(std::move(point_labels)),
      problem_fn_(std::move(problem_fn)),
      replications_(replications),
      seed_(seed) {
  OPUS_CHECK(!point_labels_.empty());
  OPUS_CHECK_GT(replications_, 0);
  OPUS_CHECK(problem_fn_ != nullptr);
}

void SweepRunner::AddPolicy(const CacheAllocator* policy) {
  OPUS_CHECK(policy != nullptr);
  policies_.push_back(policy);
}

void SweepRunner::Run() {
  OPUS_CHECK(!policies_.empty());
  const std::size_t reps = static_cast<std::size_t>(replications_);
  const std::size_t tasks = point_labels_.size() * reps;
  // One slab slot per (point, rep); concatenating the slots in task order
  // reproduces the serial record stream exactly.
  std::vector<std::vector<SweepRecord>> slabs(tasks);
  const auto run_task = [&](std::size_t task) {
    const std::size_t point = task / reps;
    const int rep = static_cast<int>(task % reps);
    // Instance seed depends only on (point, rep): adding/removing policies
    // or changing the thread count cannot perturb the generated problems.
    Rng rng(seed_ ^ (static_cast<std::uint64_t>(point) << 32) ^
            static_cast<std::uint64_t>(rep));
    const CachingProblem problem = problem_fn_(point, rep, rng);
    std::vector<SweepRecord>& out = slabs[task];
    for (const CacheAllocator* policy : policies_) {
      const AllocationResult result = policy->Allocate(problem);
      const auto utils = EvaluateUtilities(result, problem.preferences);
      for (std::size_t u = 0; u < utils.size(); ++u) {
        out.push_back({policy->name(), point_labels_[point], rep, u,
                       utils[u], result.shared});
      }
    }
  };
  const unsigned threads = threads_ == 0 ? HardwareThreads() : threads_;
  if (threads <= 1) {
    for (std::size_t task = 0; task < tasks; ++task) run_task(task);
  } else {
    ThreadPool::Shared().ParallelFor(tasks, run_task, threads);
  }
  for (auto& slab : slabs) {
    records_.insert(records_.end(), std::make_move_iterator(slab.begin()),
                    std::make_move_iterator(slab.end()));
  }
}

std::vector<SweepPointSummary> SweepRunner::Summaries() const {
  // Group keys are positions in the registered policy/point lists so the
  // output order matches the historical (policy, point) nesting.
  std::unordered_map<std::string, std::size_t> policy_index;
  std::vector<std::string> policy_names;
  for (const CacheAllocator* policy : policies_) {
    if (policy_index.emplace(policy->name(), policy_names.size()).second) {
      policy_names.push_back(policy->name());
    }
  }
  std::unordered_map<std::string, std::size_t> point_index;
  for (std::size_t j = 0; j < point_labels_.size(); ++j) {
    point_index.emplace(point_labels_[j], j);
  }

  struct Group {
    std::vector<double> utils;
    std::set<int> reps;         // distinct replications seen
    std::set<int> shared_reps;  // distinct replications that shared
  };
  std::vector<Group> groups(policy_names.size() * point_labels_.size());
  for (const auto& r : records_) {
    const auto pi = policy_index.find(r.policy);
    const auto qi = point_index.find(r.point);
    if (pi == policy_index.end() || qi == point_index.end()) continue;
    Group& g = groups[pi->second * point_labels_.size() + qi->second];
    g.utils.push_back(r.utility);
    g.reps.insert(r.replication);
    if (r.shared) g.shared_reps.insert(r.replication);
  }

  std::vector<SweepPointSummary> out;
  for (std::size_t p = 0; p < policy_names.size(); ++p) {
    for (std::size_t j = 0; j < point_labels_.size(); ++j) {
      Group& g = groups[p * point_labels_.size() + j];
      if (g.utils.empty()) continue;
      const double qs[] = {5.0, 95.0};
      const auto pct = analysis::Percentiles(g.utils, qs);
      SweepPointSummary s;
      s.policy = policy_names[p];
      s.point = point_labels_[j];
      s.mean = Mean(g.utils);
      s.p5 = pct[0];
      s.p95 = pct[1];
      s.sharing_rate = static_cast<double>(g.shared_reps.size()) /
                       static_cast<double>(g.reps.size());
      out.push_back(std::move(s));
    }
  }
  return out;
}

std::string SweepRunner::ToCsv() const {
  analysis::CsvTable table;
  table.header = {"policy", "point", "replication", "user", "utility",
                  "shared"};
  for (const auto& r : records_) {
    table.rows.push_back({r.policy, r.point, std::to_string(r.replication),
                          std::to_string(r.user),
                          StrFormat("%.6f", r.utility),
                          r.shared ? "1" : "0"});
  }
  return analysis::WriteCsv(table);
}

}  // namespace opus::sim
