#include "sim/simulator.h"

#include "analysis/stats.h"
#include "common/check.h"
#include "common/mathutil.h"

namespace opus::sim {
namespace {

SimulationResult Summarize(const std::string& policy,
                           const HitRatioTracker& tracker,
                           cache::CacheCluster& cluster,
                           std::size_t num_users) {
  SimulationResult r;
  r.policy = policy;
  r.per_user_hit_ratio = tracker.CumulativeRatios();
  r.series.reserve(num_users);
  for (std::size_t i = 0; i < num_users; ++i) {
    r.series.push_back(tracker.Series(static_cast<cache::UserId>(i)));
  }
  r.average_hit_ratio = r.per_user_hit_ratio.empty()
                            ? 0.0
                            : Mean(r.per_user_hit_ratio);
  r.evictions = cluster.total_evictions();
  // Final per-user hit ratios land in the registry as gauges so metric
  // exports are self-contained, then the registry and the event trace are
  // snapshotted into the result.
  for (std::size_t i = 0; i < num_users; ++i) {
    cluster.metrics()
        .gauge("sim.user." + std::to_string(i) + ".hit_ratio")
        .Set(r.per_user_hit_ratio[i]);
  }
  cluster.metrics().gauge("sim.average_hit_ratio").Set(r.average_hit_ratio);
  r.metrics = cluster.metrics().Snapshot();
  r.trace_events = cluster.trace().Snapshot();
  r.spans = cluster.spans().Snapshot();
  return r;
}

}  // namespace

SimulationResult RunManagedSimulation(const ManagedSimConfig& config,
                                      const CacheAllocator& allocator,
                                      const cache::Catalog& catalog,
                                      const workload::Trace& trace) {
  cache::CacheCluster cluster(config.cluster, catalog);
  OpusMaster master(&allocator, &cluster, config.master);
  if (!config.prime_preferences.empty()) {
    master.Prime(config.prime_preferences);
  }
  HitRatioTracker tracker(config.cluster.num_users, config.metrics);

  double total_latency = 0.0;
  std::vector<double> latencies;
  latencies.reserve(trace.events.size());
  for (const auto& event : trace.events) {
    // The master observes every access (spurious included — that is the
    // attack surface); scoring happens on genuine accesses only.
    master.OnAccess(event);
    const cache::ReadResult read = cluster.Read(event.user, event.file);
    total_latency += read.latency_sec;
    latencies.push_back(read.latency_sec);
    tracker.Record(event.user, read.effective_hit, !event.spurious);
  }

  SimulationResult r = Summarize(allocator.name(), tracker, cluster,
                                 config.cluster.num_users);
  r.reallocations = master.reallocations();
  r.audit = master.audit_report();
  r.window_metrics = master.window_metrics();
  r.disk_bytes_read = cluster.under_store().bytes_read();
  r.total_latency_sec = total_latency;
  if (!latencies.empty()) {
    // One sorted pass for all three tail quantiles (the latency vector has
    // one entry per trace event; sorting it three times dominated at scale).
    const double qs[] = {50.0, 95.0, 99.0};
    const auto p = analysis::Percentiles(latencies, qs);
    r.latency_p50_sec = p[0];
    r.latency_p95_sec = p[1];
    r.latency_p99_sec = p[2];
  }
  return r;
}

SimulationResult RunUnmanagedSimulation(const UnmanagedSimConfig& config,
                                        const cache::Catalog& catalog,
                                        const workload::Trace& trace) {
  cache::CacheCluster cluster(config.cluster, catalog);
  HitRatioTracker tracker(config.cluster.num_users, config.metrics);

  double total_latency = 0.0;
  std::vector<double> latencies;
  latencies.reserve(trace.events.size());
  for (const auto& event : trace.events) {
    const cache::ReadResult read = cluster.Read(event.user, event.file);
    total_latency += read.latency_sec;
    latencies.push_back(read.latency_sec);
    tracker.Record(event.user, read.effective_hit, !event.spurious);
  }

  SimulationResult r = Summarize(config.cluster.eviction_policy, tracker,
                                 cluster, config.cluster.num_users);
  r.disk_bytes_read = cluster.under_store().bytes_read();
  r.total_latency_sec = total_latency;
  if (!latencies.empty()) {
    // One sorted pass for all three tail quantiles (the latency vector has
    // one entry per trace event; sorting it three times dominated at scale).
    const double qs[] = {50.0, 95.0, 99.0};
    const auto p = analysis::Percentiles(latencies, qs);
    r.latency_p50_sec = p[0];
    r.latency_p95_sec = p[1];
    r.latency_p99_sec = p[2];
  }
  return r;
}

}  // namespace opus::sim
