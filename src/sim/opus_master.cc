#include "sim/opus_master.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/check.h"
#include "common/mathutil.h"
#include "core/opus.h"
#include "workload/preference_gen.h"

namespace opus::sim {
namespace {

// Average absolute preference drift between two normalized matrices; the
// adaptive-window signal.
double Drift(const Matrix& a, const Matrix& b) {
  if (a.empty() || b.empty() || a.rows() != b.rows() ||
      a.cols() != b.cols()) {
    return 0.0;
  }
  double total = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      total += std::fabs(a(i, j) - b(i, j));
    }
  }
  return total / static_cast<double>(a.rows());
}

}  // namespace

void OpusMaster::set_allocator(const CacheAllocator* allocator) {
  OPUS_CHECK(allocator != nullptr);
  allocator_ = allocator;
  // A warm state describes the previous allocator's solve; a swapped-in
  // policy (even OpuS with different options) must not inherit it.
  warm_.Invalidate();
}

void OpusMaster::set_capacity_units(double units) {
  if (units <= 0.0) {
    const double mean_file_bytes =
        static_cast<double>(cluster_->catalog().TotalBytes()) /
        static_cast<double>(cluster_->catalog().size());
    units = static_cast<double>(cluster_->config().cache_capacity_bytes) /
            mean_file_bytes;
  }
  config_.capacity_units = units;
  // The capacity-mismatch check inside AllocateIncremental would catch this
  // too; invalidating here keeps the intent explicit for live reconfig.
  warm_.Invalidate();
}

OpusMaster::OpusMaster(const CacheAllocator* allocator,
                       cache::CacheCluster* cluster, OpusMasterConfig config)
    : allocator_(allocator), cluster_(cluster), config_(config),
      auditor_(config.audit_config),
      window_metrics_(config.max_metric_windows) {
  OPUS_CHECK(allocator_ != nullptr);
  OPUS_CHECK(cluster_ != nullptr);
  OPUS_CHECK_GT(config_.update_interval, 0u);
  OPUS_CHECK_GT(config_.learning_window, 0u);
  const std::size_t n = cluster_->config().num_users;
  const std::size_t m = cluster_->catalog().size();
  // An empty catalog (or zero total bytes) would make mean_file_bytes 0/0
  // and silently propagate NaN capacity_units into every PF solve.
  OPUS_CHECK_MSG(m > 0, "OpusMaster requires a non-empty catalog");
  OPUS_CHECK_MSG(cluster_->catalog().TotalBytes() > 0,
                 "OpusMaster requires a catalog with positive total bytes");
  counts_ = Matrix(n, m, 0.0);
  // Allocation is posed in "units" of one mean file; heterogeneous
  // catalogs carry per-file sizes in the same unit so the capacity
  // constraint stays in bytes (paper Sec. V-B).
  const double mean_file_bytes =
      static_cast<double>(cluster_->catalog().TotalBytes()) /
      static_cast<double>(m);
  if (config_.capacity_units <= 0.0) {
    config_.capacity_units =
        static_cast<double>(cluster_->config().cache_capacity_bytes) /
        mean_file_bytes;
  }
  file_sizes_.resize(m);
  bool heterogeneous = false;
  for (std::size_t j = 0; j < m; ++j) {
    file_sizes_[j] =
        static_cast<double>(cluster_->catalog().Get(static_cast<cache::FileId>(j)).size_bytes) /
        mean_file_bytes;
    if (std::fabs(file_sizes_[j] - 1.0) > 1e-6) heterogeneous = true;
  }
  if (!heterogeneous) file_sizes_.clear();  // unit-size fast path
  InitObservability();
}

void OpusMaster::InitObservability() {
  obs::MetricsRegistry& m = cluster_->metrics();
  realloc_counter_ = &m.counter("master.reallocations");
  lazy_skip_counter_ = &m.counter("master.lazy_skips");
  ig_fallback_counter_ = &m.counter("master.ig_fallbacks");
  window_gauge_ = &m.gauge("master.window_size");
  window_gauge_->Set(static_cast<double>(config_.learning_window));
  drift_gauge_ = &m.gauge("master.drift");
  residual_gauge_ = &m.gauge("master.solver.residual");
  // Sparse-solver cost accounting (per AllocationResult, summed across
  // reallocations): PF solves, capped-simplex projections, restricted
  // leave-one-out tax solves and their full-solve fallbacks, plus the
  // preference density the last solve saw. All deterministic at any
  // thread count (the allocator folds per-solve stats in index order).
  solver_solves_counter_ = &m.counter("master.solver.solves");
  solver_projections_counter_ = &m.counter("master.solver.projections");
  solver_restricted_counter_ = &m.counter("master.solver.restricted_taxes");
  solver_fallback_counter_ = &m.counter("master.solver.restricted_fallbacks");
  solver_nnz_gauge_ = &m.gauge("master.solver.nnz_ratio");
  // Incremental-window accounting: windows whose star solve warm-started,
  // windows served by the delta composition path, tax solves run vs reused
  // across delta windows, delta compositions that missed the KKT gate and
  // fell back to a warm full solve, and the cluster count of the last
  // aggregated window (0 = unaggregated).
  solver_warm_counter_ = &m.counter("master.solver.warm_starts");
  delta_window_counter_ = &m.counter("master.solver.delta_windows");
  delta_resolved_counter_ = &m.counter("master.solver.delta_resolved");
  delta_reused_counter_ = &m.counter("master.solver.delta_reused");
  delta_fallback_counter_ = &m.counter("master.solver.delta_fallbacks");
  agg_clusters_gauge_ = &m.gauge("master.solver.agg_clusters");
  solve_iterations_hist_ = &m.histogram(
      "master.solve.iterations", {100.0, 1000.0, 10000.0, 100000.0});
  // Wall time is the one genuinely nondeterministic signal the master
  // records; flagged volatile so default snapshots stay byte-identical
  // across reruns and thread counts.
  solve_wall_hist_ = &m.histogram("master.solve.wall_sec",
                                  {1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0});
  m.MarkVolatile("master.solve.wall_sec");
  if (config_.audit) {
    auditor_.Attach(&m, &cluster_->trace());
  }
}

void OpusMaster::Prime(const Matrix& preferences) {
  OPUS_CHECK_EQ(preferences.rows(), counts_.rows());
  OPUS_CHECK_EQ(preferences.cols(), counts_.cols());
  CachingProblem problem =
      CachingProblem::FromRaw(preferences, config_.capacity_units);
  problem.file_sizes = file_sizes_;
  previous_prefs_ = problem.preferences;
  SolveAndApply(problem);
}

void OpusMaster::OnAccess(const workload::AccessEvent& event) {
  OPUS_CHECK_LT(event.user, counts_.rows());
  OPUS_CHECK_LT(event.file, counts_.cols());
  window_.push_back(event);
  counts_(event.user, event.file) += 1.0;
  while (window_.size() > config_.learning_window) {
    const auto& old = window_.front();
    counts_(old.user, old.file) -= 1.0;
    window_.pop_front();
  }
  if (++since_update_ >= config_.update_interval) {
    Reallocate();
  }
}

cache::UserId OpusMaster::RegisterClient(std::string name) {
  OPUS_CHECK_MSG(client_names_.size() < counts_.rows(),
                 "more clients than the cluster's num_users="
                     << counts_.rows());
  client_names_.push_back(std::move(name));
  return static_cast<cache::UserId>(client_names_.size() - 1);
}

const std::string& OpusMaster::client_name(cache::UserId id) const {
  OPUS_CHECK_LT(id, client_names_.size());
  return client_names_[id];
}

void OpusMaster::ReportPreferences(cache::UserId client,
                                   std::vector<double> prefs) {
  OPUS_CHECK_LT(client, counts_.rows());
  OPUS_CHECK_EQ(prefs.size(), counts_.cols());
  OPUS_CHECK_MSG(NormalizeToOne(prefs),
                 "explicitly reported preferences must have positive mass");
  if (explicit_prefs_.empty()) explicit_prefs_.resize(counts_.rows());
  explicit_prefs_[client] = std::move(prefs);
}

void OpusMaster::ClearReportedPreferences(cache::UserId client) {
  OPUS_CHECK_LT(client, counts_.rows());
  if (client < explicit_prefs_.size()) explicit_prefs_[client].clear();
}

bool OpusMaster::HasReportedPreferences(cache::UserId client) const {
  OPUS_CHECK_LT(client, counts_.rows());
  return client < explicit_prefs_.size() &&
         !explicit_prefs_[client].empty();
}

void OpusMaster::RenameClient(cache::UserId client, std::string name) {
  OPUS_CHECK_LT(client, client_names_.size());
  client_names_[client] = std::move(name);
}

void OpusMaster::PurgeUser(cache::UserId client) {
  OPUS_CHECK_LT(client, counts_.rows());
  // Drop the user's accesses from the sliding window (and its counts row
  // wholesale — the row is exactly the sum of its window entries).
  window_.erase(std::remove_if(window_.begin(), window_.end(),
                               [client](const workload::AccessEvent& e) {
                                 return e.user == client;
                               }),
                window_.end());
  auto row = counts_.row(client);
  std::fill(row.begin(), row.end(), 0.0);
  if (client < explicit_prefs_.size()) explicit_prefs_[client].clear();
  warm_.ForgetUser(client);
}

Matrix OpusMaster::InferredPreferences() const {
  Matrix prefs = workload::PreferencesFromCounts(counts_);
  // Explicit reports override inference per client (Sec. V-A: preferences
  // are either reported through an API or inferred from access history).
  for (std::size_t i = 0; i < explicit_prefs_.size(); ++i) {
    if (explicit_prefs_[i].empty()) continue;
    auto row = prefs.row(i);
    for (std::size_t j = 0; j < row.size(); ++j) {
      row[j] = explicit_prefs_[i][j];
    }
  }
  return prefs;
}

void OpusMaster::Reallocate() {
  since_update_ = 0;
  Matrix prefs = InferredPreferences();
  const double drift = Drift(prefs, previous_prefs_);
  drift_gauge_->Set(drift);
  // Lazy mode: a stable preference estimate means the current allocation
  // is still (near-)optimal — skip the N+1 solves entirely.
  if (config_.lazy_threshold > 0.0 && reallocations_ > 0 &&
      drift < config_.lazy_threshold) {
    ++skipped_;
    lazy_skip_counter_->Increment();
    cluster_->trace().Emit("master.realloc_lazy_skip",
                           {{"drift", obs::FormatDouble(drift)}});
    return;
  }
  if (config_.adaptive_window) AdaptWindow();
  CachingProblem problem;
  problem.preferences = prefs;
  problem.capacity = config_.capacity_units;
  problem.file_sizes = file_sizes_;
  SolveAndApply(problem);
  previous_prefs_ = std::move(prefs);
}

void OpusMaster::SolveAndApply(const CachingProblem& problem) {
  obs::ScopedSpan realloc_span(&cluster_->spans(), "master.realloc");
  realloc_span.AddAttr("epoch", std::to_string(reallocations_ + 1));

  AllocationResult result;
  // When the allocator is OpuS, run the diagnostics variant (same solves,
  // same result) so the auditor sees the stage-1 arithmetic — without it,
  // Stage-2 fallback windows cannot be checked for justification.
  OpusDiagnostics diag;
  const auto* opus_allocator = dynamic_cast<const OpusAllocator*>(allocator_);
  const auto t0 = std::chrono::steady_clock::now();
  {
    obs::ScopedSpan solve_span(&cluster_->spans(), "master.solve");
    if (opus_allocator != nullptr) {
      // Incremental mode threads the cross-window warm state through the
      // solve; a null state degrades to the cold path byte-for-byte.
      result = opus_allocator->AllocateIncremental(
          problem, config_.incremental ? &warm_ : nullptr, &diag);
    } else {
      result = allocator_->Allocate(problem);
    }
    solve_span.AddAttr("policy", result.policy);
    solve_span.AddAttr("iterations",
                       std::to_string(result.solver_iterations));
    solve_span.AddAttr("residual",
                       obs::FormatDouble(result.solver_residual));
    solve_span.AddAttr("shared", result.shared ? "1" : "0");
  }
  const double wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  solve_wall_hist_->Observe(wall_sec);
  solve_iterations_hist_->Observe(
      static_cast<double>(result.solver_iterations));
  residual_gauge_->Set(result.solver_residual);
  solver_solves_counter_->Increment(result.solver_solves);
  solver_projections_counter_->Increment(result.solver_projections);
  solver_restricted_counter_->Increment(result.solver_restricted_taxes);
  solver_fallback_counter_->Increment(result.solver_restricted_fallbacks);
  solver_nnz_gauge_->Set(result.solver_nnz_ratio);
  if (result.solver_warm_started) solver_warm_counter_->Increment();
  if (result.solver_delta_window) delta_window_counter_->Increment();
  delta_resolved_counter_->Increment(result.solver_delta_resolved);
  delta_reused_counter_->Increment(result.solver_delta_reused);
  delta_fallback_counter_->Increment(result.solver_delta_fallbacks);
  agg_clusters_gauge_->Set(static_cast<double>(result.solver_agg_clusters));
  if (!result.shared) {
    ig_fallback_counter_->Increment();
    cluster_->trace().Emit("master.ig_fallback",
                           {{"epoch", std::to_string(reallocations_ + 1)},
                            {"policy", result.policy}});
  }
  Apply(result);
  if (config_.audit) {
    obs::ScopedSpan audit_span(&cluster_->spans(), "master.audit");
    const obs::WindowAudit& audit = auditor_.AuditWindow(
        reallocations_, problem, result,
        opus_allocator != nullptr ? &diag : nullptr);
    audit_span.AddAttr("violations",
                       std::to_string(audit.violations.size()));
  }
  // Close the window: record what happened in the metrics since the last
  // applied allocation (the auditor's and opus_inspect's per-window input).
  window_metrics_.Capture(cluster_->metrics(), reallocations_);
}

void OpusMaster::AdaptWindow() {
  const Matrix now = InferredPreferences();
  // Consecutive windows share all but `update_interval` of their samples,
  // so the largest possible L1 distance between them is about
  // 2 * interval / window; normalize the observed drift by that ceiling to
  // get a window-size-independent signal in [0, ~1].
  const double overlap_ceiling =
      2.0 * static_cast<double>(config_.update_interval) /
      static_cast<double>(std::max<std::size_t>(config_.learning_window,
                                                config_.update_interval));
  const double drift = Drift(now, previous_prefs_) / overlap_ceiling;
  // Fast drift -> shrink the window to forget stale popularity sooner;
  // stability -> grow it for lower-variance estimates.
  const std::size_t before = config_.learning_window;
  if (drift > 0.2) {
    config_.learning_window =
        std::max(config_.min_window, config_.learning_window / 2);
  } else if (drift < 0.05) {
    config_.learning_window =
        std::min(config_.max_window, config_.learning_window * 2);
  }
  if (config_.learning_window != before) {
    window_gauge_->Set(static_cast<double>(config_.learning_window));
    cluster_->trace().Emit(
        "master.window_resized",
        {{"from", std::to_string(before)},
         {"to", std::to_string(config_.learning_window)},
         {"drift", obs::FormatDouble(drift)}});
  }
  while (window_.size() > config_.learning_window) {
    const auto& old = window_.front();
    counts_(old.user, old.file) -= 1.0;
    window_.pop_front();
  }
}

void OpusMaster::Apply(const AllocationResult& result) {
  current_ = result;
  ++reallocations_;
  realloc_counter_->Increment();
  cluster_->trace().Emit(
      "master.realloc_applied",
      {{"epoch", std::to_string(reallocations_)},
       {"policy", result.policy},
       {"shared", result.shared ? "1" : "0"},
       {"solver_iterations", std::to_string(result.solver_iterations)}});
  cluster_->ApplyAllocation(result.file_alloc);
  // Per-(user,file) unblocked share e_ij / a_j for the delay model.
  const std::size_t n = counts_.rows();
  const std::size_t m = counts_.cols();
  Matrix unblocked(n, m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      unblocked(i, j) = result.file_alloc[j] > 1e-12
                            ? result.access(i, j) / result.file_alloc[j]
                            : 0.0;
    }
  }
  if (config_.enable_journal) {
    cache::JournalEntry entry;
    entry.epoch = reallocations_;
    entry.file_fractions = result.file_alloc;
    entry.unblocked_share = unblocked;
    journal_.Append(std::move(entry));
  }
  cluster_->SetAccessModel(std::move(unblocked));
}

}  // namespace opus::sim
