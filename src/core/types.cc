#include "core/types.h"

#include <cmath>

#include "common/check.h"
#include "common/mathutil.h"

namespace opus {

double CachingProblem::FileSize(std::size_t j) const {
  OPUS_CHECK_LT(j, num_files());
  if (file_sizes.empty()) return 1.0;
  return file_sizes[j];
}

double CachingProblem::TotalSize() const {
  if (file_sizes.empty()) return static_cast<double>(num_files());
  double total = 0.0;
  for (double s : file_sizes) total += s;
  return total;
}

CachingProblem CachingProblem::FromRaw(Matrix raw_scores, double capacity) {
  OPUS_CHECK_GE(capacity, 0.0);
  CachingProblem p;
  p.capacity = capacity;
  for (std::size_t i = 0; i < raw_scores.rows(); ++i) {
    auto row = raw_scores.row(i);
    double total = 0.0;
    for (double v : row) {
      OPUS_CHECK_GE(v, 0.0);
      total += v;
    }
    if (total > 0.0) {
      for (double& v : row) v /= total;
    }
  }
  p.preferences = std::move(raw_scores);
  return p;
}

const CsrMatrix& CachingProblem::PreferencesCsr() const {
  if (csr_cache_ == nullptr) {
    csr_cache_ =
        std::make_shared<const CsrMatrix>(CsrMatrix::FromDense(preferences));
  }
  return *csr_cache_;
}

CachingProblem CachingProblem::FromCsr(CsrMatrix raw_scores, double capacity) {
  OPUS_CHECK_GE(capacity, 0.0);
  raw_scores.NormalizeRowsInPlace();
  CachingProblem p;
  p.capacity = capacity;
  p.csr_cache_ = std::make_shared<const CsrMatrix>(std::move(raw_scores));
  return p;
}

CachingProblem CachingProblem::WithMisreport(
    std::size_t i, std::vector<double> misreport) const {
  OPUS_CHECK_LT(i, num_users());
  OPUS_CHECK_EQ(misreport.size(), num_files());
  CachingProblem p = *this;
  p.InvalidatePreferencesCsr();
  double total = 0.0;
  for (double v : misreport) {
    OPUS_CHECK_GE(v, 0.0);
    total += v;
  }
  auto row = p.preferences.row(i);
  for (std::size_t j = 0; j < misreport.size(); ++j) {
    row[j] = total > 0.0 ? misreport[j] / total : 0.0;
  }
  return p;
}

void ValidateResult(const CachingProblem& problem,
                    const AllocationResult& result, double tol) {
  const std::size_t n = problem.num_users();
  const std::size_t m = problem.num_files();
  OPUS_CHECK_EQ(result.file_alloc.size(), m);
  // Lean results (sparse-backed problems) carry no dense access matrix:
  // access(i, j) is always (1 - blocking_i) * file_alloc_j there, so the
  // matrix checks below have nothing extra to verify.
  const bool has_access = !result.access.empty() || n == 0 || m == 0;
  if (has_access) {
    OPUS_CHECK_EQ(result.access.rows(), n);
    OPUS_CHECK_EQ(result.access.cols(), m);
  }
  OPUS_CHECK_EQ(result.taxes.size(), n);
  OPUS_CHECK_EQ(result.blocking.size(), n);
  OPUS_CHECK_EQ(result.reported_utilities.size(), n);

  if (!problem.file_sizes.empty()) {
    OPUS_CHECK_EQ(problem.file_sizes.size(), m);
    for (double s : problem.file_sizes) OPUS_CHECK_GT(s, 0.0);
  }
  double total = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    const double a = result.file_alloc[j];
    OPUS_CHECK_GE(a, -tol);
    OPUS_CHECK_LE(a, 1.0 + tol);
    total += a * problem.FileSize(j);
  }
  OPUS_CHECK_LE(total, problem.capacity + tol * problem.TotalSize());

  for (std::size_t i = 0; i < n; ++i) {
    OPUS_CHECK_GE(result.blocking[i], -tol);
    OPUS_CHECK_LE(result.blocking[i], 1.0 + tol);
    if (!has_access) continue;
    for (std::size_t j = 0; j < m; ++j) {
      const double e = result.access(i, j);
      OPUS_CHECK_GE(e, -tol);
      // A user can never read more of a file than is cached.
      OPUS_CHECK_LE(e, result.file_alloc[j] + tol);
    }
  }

  if (!result.per_user_copies.empty()) {
    OPUS_CHECK_EQ(result.per_user_copies.rows(), n);
    OPUS_CHECK_EQ(result.per_user_copies.cols(), m);
  }
}

}  // namespace opus
