// Continuous-time budget market implementing the paper's max-min fair cache
// allocation (Sec. III-C), with optional FairRide "joining".
//
// Every user receives an equal budget C/N and spends it at unit rate on its
// most-preferred file it has not yet secured. Users funding the same file at
// the same time split its caching cost evenly, so a file funded by n users
// fills at rate n while each payer is drained at rate 1.
//
// With `enable_joining` (the rational-truthful-user behaviour under
// FairRide's blocking), a user whose preferred file is already fully cached
// may buy into segments it did not fund: converting length dl of a k-payer
// segment costs the joiner dl/(k+1) and refunds each incumbent payer
// dl/(k(k+1)), leaving all k+1 payers with equal shares. Refunded budget is
// re-spendable. Joining is what restores FairRide's isolation guarantee — a
// user can always secure its isolation bundle at per-unit cost <= 1. Plain
// max-min omits joining because without blocking a cached byte is free to
// read and no rational user pays for it.
//
// The process advances between discrete events (file completion, segment
// conversion, budget exhaustion) and terminates when no user can spend. The
// worked examples of Figs. 1-3 are reproduced to the digit (see
// tests/core/market_test.cc).
#pragma once

#include <vector>

#include "core/segments.h"
#include "core/types.h"

namespace opus {

struct MarketOptions {
  // Allow buying into already-cached segments (FairRide behaviour).
  bool enable_joining = false;
  // Water-filling refinement (extension): budget left idle by sated users
  // (everything they want is cached/secured) is redistributed equally to
  // users who ran dry with desires outstanding, and the market resumes.
  // This is the progressive-filling reading of "maximize the minimum
  // allocation"; the paper's worked examples have no idle budget, so they
  // are unaffected either way.
  bool redistribute_idle_budget = false;
};

struct MarketOutcome {
  // One per file; segment lengths are cached *fractions* of that file,
  // payments scale with the file's size (CachingProblem::file_sizes).
  std::vector<FileSegments> files;
  std::vector<double> spent;  // per-user budget spent, net of refunds
  Matrix contributions;       // c_ij: user i's net payment toward file j

  // Total cached amount of file j.
  std::vector<double> CachedAmounts() const;
};

// Runs the market on `problem` with equal budgets C/N.
MarketOutcome RunBudgetMarket(const CachingProblem& problem,
                              const MarketOptions& options = {});

// Runs the market with explicit per-user budgets (size N, non-negative).
// Exposed for tests and what-if analyses.
MarketOutcome RunBudgetMarket(const CachingProblem& problem,
                              std::vector<double> budgets,
                              const MarketOptions& options = {});

}  // namespace opus
