#include "core/utility.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/mathutil.h"

namespace opus {

double EvaluateUtility(const AllocationResult& result,
                       const Matrix& true_prefs, std::size_t i) {
  OPUS_CHECK_LT(i, true_prefs.rows());
  OPUS_CHECK_EQ(true_prefs.cols(), result.access.cols());
  return Dot(result.access.row(i), true_prefs.row(i));
}

std::vector<double> EvaluateUtilities(const AllocationResult& result,
                                      const Matrix& true_prefs) {
  std::vector<double> out(true_prefs.rows());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = EvaluateUtility(result, true_prefs, i);
  }
  return out;
}

double IsolatedUtility(std::span<const double> prefs, double budget,
                       std::span<const double> sizes) {
  OPUS_CHECK_GE(budget, 0.0);
  if (!sizes.empty()) {
    OPUS_CHECK_EQ(sizes.size(), prefs.size());
    for (double s : sizes) OPUS_CHECK_GT(s, 0.0);
  }
  auto size_of = [&](std::size_t j) {
    return sizes.empty() ? 1.0 : sizes[j];
  };
  std::vector<std::size_t> order(prefs.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return prefs[a] / size_of(a) > prefs[b] / size_of(b);
                   });
  double remaining = budget;
  double utility = 0.0;
  for (std::size_t j : order) {
    if (remaining <= 0.0 || prefs[j] <= 0.0) break;
    const double take = std::min(1.0, remaining / size_of(j));
    utility += take * prefs[j];
    remaining -= take * size_of(j);
  }
  return utility;
}

double IsolatedUtilitySparse(std::span<const std::uint32_t> cols,
                             std::span<const double> vals, double budget,
                             std::span<const double> sizes) {
  OPUS_CHECK_GE(budget, 0.0);
  auto size_of = [&](std::uint32_t j) {
    return sizes.empty() ? 1.0 : sizes[j];
  };
  std::vector<std::size_t> order;
  order.reserve(cols.size());
  for (std::size_t k = 0; k < cols.size(); ++k) {
    if (vals[k] > 0.0) order.push_back(k);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return vals[a] / size_of(cols[a]) >
                            vals[b] / size_of(cols[b]);
                   });
  double remaining = budget;
  double utility = 0.0;
  for (std::size_t k : order) {
    if (remaining <= 0.0) break;
    const double s = size_of(cols[k]);
    const double take = std::min(1.0, remaining / s);
    utility += take * vals[k];
    remaining -= take * s;
  }
  return utility;
}

std::vector<double> IsolatedUtilities(const CachingProblem& problem) {
  return IsolatedUtilities(problem, {});
}

std::vector<double> IsolatedUtilities(const CachingProblem& problem,
                                      std::span<const double> user_weights) {
  const std::size_t n = problem.num_users();
  std::vector<double> out(n, 0.0);
  if (n == 0) return out;
  double weight_total = 0.0;
  if (!user_weights.empty()) {
    OPUS_CHECK_EQ(user_weights.size(), n);
    for (double w : user_weights) {
      OPUS_CHECK_GT(w, 0.0);
      weight_total += w;
    }
  }
  const bool dense = problem.dense_backed();
  const CsrMatrix* csr = dense ? nullptr : &problem.PreferencesCsr();
  for (std::size_t i = 0; i < n; ++i) {
    const double share = user_weights.empty()
                             ? 1.0 / static_cast<double>(n)
                             : user_weights[i] / weight_total;
    out[i] = dense ? IsolatedUtility(problem.preferences.row(i),
                                     problem.capacity * share,
                                     problem.file_sizes)
                   : IsolatedUtilitySparse(csr->row_cols(i), csr->row_vals(i),
                                           problem.capacity * share,
                                           problem.file_sizes);
  }
  return out;
}

double FullAccessUtility(std::span<const double> prefs,
                         std::span<const double> allocation) {
  return Dot(prefs, allocation);
}

}  // namespace opus
