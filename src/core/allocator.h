// Allocation-policy interface.
//
// An allocator maps a CachingProblem (reported preferences + capacity) to an
// AllocationResult. Allocators are deterministic and stateless: randomized
// effects (probabilistic blocking) are expressed as expectations in the
// access matrix and realized stochastically only by the trace simulators.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/types.h"

namespace opus {

class CacheAllocator {
 public:
  virtual ~CacheAllocator() = default;

  // Human-readable policy name (used in reports and result tagging).
  virtual std::string name() const = 0;

  // Computes the allocation for `problem`. The returned result satisfies
  // ValidateResult().
  virtual AllocationResult Allocate(const CachingProblem& problem) const = 0;
};

}  // namespace opus
