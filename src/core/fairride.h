// FairRide (Pu et al., NSDI'16; paper Sec. III-D): the max-min budget-market
// allocation plus probabilistic blocking of free riders. A user reading a
// cached portion it did not help pay for, funded by n payers, is blocked
// with probability 1/(n+1) (served from disk as if a miss). The paper's
// Fig. 3 counterexample — reproduced in tests — shows this is still not
// strategy-proof.
#pragma once

#include "core/allocator.h"

namespace opus {

class FairRideAllocator final : public CacheAllocator {
 public:
  std::string name() const override { return "fairride"; }
  AllocationResult Allocate(const CachingProblem& problem) const override;
};

}  // namespace opus
