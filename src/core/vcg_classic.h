// Classic-VCG opportunistic sharing (Sec. IV-B): the first-attempt design
// that OpuS improves on, evaluated in Fig. 9.
//
// Stage 1 computes the utilitarian allocation (maximize sum_i U_i) and
// charges each user the Clarke pivot tax in *utility* units:
//   T_i = [others' best welfare without i] - [others' welfare at a*],
// enforced as blocking probability f_i = T_i / U_i(a*). Stage 2 falls back
// to isolated caches whenever some user's net utility U_i(a*) - T_i drops
// below its isolated utility U-bar_i. Because the utilitarian objective
// sacrifices small contributors, the fallback fires often — the effect
// Fig. 9 quantifies.
#pragma once

#include "core/allocator.h"

namespace opus {

class VcgClassicAllocator final : public CacheAllocator {
 public:
  std::string name() const override { return "vcg-classic"; }
  AllocationResult Allocate(const CachingProblem& problem) const override;
};

}  // namespace opus
