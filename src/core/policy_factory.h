// Name → allocation-policy factory shared by the CLI tools, the serving
// daemon, and the benches, so every surface accepts the same policy names.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/allocator.h"
#include "core/opus.h"

namespace opus {

// Optional OpuS-specific tuning forwarded by surfaces that expose it (the
// serving daemon's flags); other policies ignore it.
struct OpusPolicyTuning {
  OpusDeltaOptions delta;
  AggregationOptions aggregation;
};

// Builds the allocator registered under `name`, or nullptr for an unknown
// name. `tax_threads` is forwarded to policies with parallelizable solves
// (currently OpuS's leave-one-out tax stage); results are thread-count
// invariant. `tuning` (optional) carries OpuS delta/aggregation options.
std::unique_ptr<CacheAllocator> MakeAllocatorByName(
    const std::string& name, unsigned tax_threads = 0,
    const OpusPolicyTuning* tuning = nullptr);

// The accepted policy names, for usage and diagnostic messages.
const std::vector<std::string>& KnownPolicyNames();

}  // namespace opus
