// Core value types of the cache allocation model (paper Sec. II).
//
// N users share M unit-size files under total cache capacity C. User i's
// caching preference for file j is p_ij, normalized so each non-empty row
// sums to 1. An allocation caches a_j in [0,1] of file j with sum_j a_j <= C.
// Because policies differ in *who may read* a cached byte (isolation blocks
// non-owners; FairRide and OpuS block probabilistically), an allocation
// outcome carries a per-(user,file) effective access matrix e_ij: the
// expected in-memory-readable fraction of file j for user i. A user's
// (net) utility against preference row q is sum_j e_ij * q_j, which equals
// its expected effective cache hit ratio when q is its true access
// distribution (Sec. VI, "Metric").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/matrix.h"

namespace opus {

// A cache allocation instance: reported preferences + capacity.
//
// Two storage modes:
//  - dense-backed (the default): `preferences` holds the N x M matrix and
//    PreferencesCsr() derives the sparse view on demand;
//  - sparse-backed (FromCsr): only the CSR rows exist — `preferences`
//    stays empty — so million-user instances at 0.1% density never
//    materialize the N x M dense form. Sparse-backed problems are served
//    by the CSR-native allocators (OpuS, isolated); dense-only policies
//    must not receive them.
struct CachingProblem {
  Matrix preferences;  // N x M, rows normalized (or identically zero)
  double capacity = 0.0;

  // Optional per-file sizes (positive; empty = unit-size files). a_j stays
  // the cached *fraction* of file j; the capacity constraint becomes
  // sum_j s_j a_j <= C and all budgets/taxes are in size units (paper
  // Sec. V-B, varying file sizes).
  std::vector<double> file_sizes;

  std::size_t num_users() const {
    return dense_backed() ? preferences.rows() : csr_cache_->rows();
  }
  std::size_t num_files() const {
    return dense_backed() ? preferences.cols() : csr_cache_->cols();
  }

  // True when the dense matrix is the source of truth (sparse-backed
  // problems keep it empty and carry only the CSR view).
  bool dense_backed() const {
    return csr_cache_ == nullptr || !preferences.empty() ||
           csr_cache_->rows() == 0;
  }

  // Size of file j (1 when file_sizes is empty).
  double FileSize(std::size_t j) const;

  // Sum of all file sizes.
  double TotalSize() const;

  // Builds a problem from raw non-negative scores (e.g. access frequencies),
  // normalizing each row to sum to 1. Rows that sum to zero stay zero.
  // Requires capacity >= 0.
  static CachingProblem FromRaw(Matrix raw_scores, double capacity);

  // Sparse-backed construction: normalizes each CSR row to sum to 1 and
  // stores only the sparse view (the dense matrix is never built). The
  // row-wise arithmetic matches FromRaw exactly, so a sparse-backed problem
  // and the FromRaw problem of the same scores produce identical solver
  // inputs. Requires capacity >= 0.
  static CachingProblem FromCsr(CsrMatrix raw_scores, double capacity);

  // Copy of this problem with user `i`'s preference row replaced by the
  // (normalized) `misreport`. Used by strategy-proofness analyses.
  CachingProblem WithMisreport(std::size_t i,
                               std::vector<double> misreport) const;

  // CSR view of `preferences`, built (and validated) once on first call and
  // cached; OpuS's N+1 leave-one-out solves all share it. Not thread-safe
  // on the first call. Callers that mutate `preferences` directly after
  // calling this must InvalidatePreferencesCsr() (WithMisreport does).
  const CsrMatrix& PreferencesCsr() const;
  void InvalidatePreferencesCsr() {
    // Sparse-backed problems own no dense source to rebuild from; their
    // CSR is the data, never a cache to drop.
    if (dense_backed()) csr_cache_.reset();
  }

 private:
  mutable std::shared_ptr<const CsrMatrix> csr_cache_;
};

// Outcome of running an allocation policy.
struct AllocationResult {
  std::string policy;

  // Deduplicated in-memory fraction of each file (a_j). For isolated
  // allocations this is the union view (a single physical copy is kept, per
  // the paper's Sec. V implementation note).
  std::vector<double> file_alloc;

  // Effective access matrix e_ij in [0,1] (see file comment).
  Matrix access;

  // Per-user tax charged by the mechanism. Log-utility units for OpuS,
  // utility units for classic VCG, zero for tax-free policies.
  std::vector<double> taxes;

  // Per-user blocking probability f_i enforced to collect the tax.
  std::vector<double> blocking;

  // Utilities w.r.t. the *reported* preferences the allocator saw.
  std::vector<double> reported_utilities;

  // True when the policy settled on cache sharing; false when it reduced to
  // isolated caches (OpuS/VCG stage 2, or the isolation policy itself).
  bool shared = true;

  // For isolated allocations: own_ij = fraction of file j held in user i's
  // private partition (copies). Empty for sharing policies.
  Matrix per_user_copies;

  // Total physical memory consumed, counting duplicate copies (equals
  // sum_j a_j for sharing policies; may exceed it under isolation when the
  // system does not deduplicate). Our isolation dedupes, so this reports
  // the hypothetical copy footprint used for the waste metric.
  double copy_footprint = 0.0;

  // Solver accounting (observability): total iterations across every
  // underlying solve (for OpuS: the PF solve plus N leave-one-out tax
  // solves) and the worst optimality residual among them. Zero for
  // closed-form policies. Deterministic at any thread count.
  std::uint64_t solver_iterations = 0;
  double solver_residual = 0.0;

  // Sparse-solver cost accounting (zero for closed-form policies and for
  // the dense reference engine where not applicable): number of PF solves,
  // capped-simplex projections performed across them, leave-one-out tax
  // solves served by the active-set-restricted fast path, restricted
  // solves whose residual missed tolerance and fell back to a full solve,
  // and the preference-matrix density the solver saw (1 = fully dense).
  std::uint64_t solver_solves = 0;
  std::uint64_t solver_projections = 0;
  std::uint64_t solver_restricted_taxes = 0;
  std::uint64_t solver_restricted_fallbacks = 0;
  double solver_nnz_ratio = 0.0;

  // Incremental-window accounting (zero for cold solves): whether the star
  // solve was warm-started from a previous window, whether the delta path
  // (drift bookkeeping + tax-reuse gate) was active this window, whether
  // the restricted star composition actually served the star solve, how
  // many per-user (or per-cluster) tax solves ran vs. were reused from the
  // warm state, how many delta compositions missed the full-problem KKT
  // gate and fell back to a warm full solve, and the cluster count when
  // user aggregation was in effect (0 = unaggregated).
  bool solver_warm_started = false;
  bool solver_delta_window = false;
  bool solver_delta_star_composed = false;
  // True when the delta path was configured but skipped for this window
  // because the observed drifted-user fraction crossed
  // OpusDeltaOptions::auto_off_drift_fraction (bookkeeping would cost more
  // than reuse saves).
  bool solver_delta_auto_off = false;
  // Fraction of mechanism-active users whose preference row drifted beyond
  // the drift threshold vs. the warm state (0 for cold windows).
  double solver_drift_fraction = 0.0;
  std::uint64_t solver_delta_resolved = 0;
  std::uint64_t solver_delta_reused = 0;
  std::uint64_t solver_delta_fallbacks = 0;
  std::uint64_t solver_agg_clusters = 0;
};

// Sanity-checks structural invariants of `result` against `problem`
// (dimensions, ranges, capacity). Aborts on violation; used in tests and
// debug paths.
void ValidateResult(const CachingProblem& problem,
                    const AllocationResult& result, double tol = 1e-6);

}  // namespace opus
