#include "core/explain.h"

#include <cmath>

#include "analysis/report.h"
#include "common/strings.h"

namespace opus {

std::string ExplainOpusDecision(const CachingProblem& problem,
                                const OpusOptions& options) {
  OpusDiagnostics diag;
  const OpusAllocator allocator(options);
  const AllocationResult result =
      allocator.AllocateWithDiagnostics(problem, &diag);

  std::string out;
  out += StrFormat(
      "OpuS decision: %s\n",
      diag.settled_on_sharing
          ? "SHARE — the taxed PF allocation beats isolation for everyone"
          : "ISOLATE — some user was taxed past its break-even (Theorem 3)");

  analysis::Table alloc("stage-1 PF allocation a*");
  alloc.AddHeader({"file", "size", "a*_j"});
  for (std::size_t j = 0; j < problem.num_files(); ++j) {
    alloc.AddRow({std::to_string(j), FormatDouble(problem.FileSize(j), 2),
                  FormatDouble(diag.pf_allocation[j], 4)});
  }
  out += alloc.Render();

  analysis::Table users("per-user mechanics");
  users.AddHeader({"user", "U(a*)", "U-bar", "tax T", "break-even",
                   "blocking", "net", "verdict"});
  for (std::size_t i = 0; i < problem.num_users(); ++i) {
    const bool over = diag.taxes[i] > diag.break_even_taxes[i] + 1e-9;
    users.AddRow(
        {std::to_string(i), FormatDouble(diag.pf_utilities[i], 4),
         FormatDouble(diag.isolated_utilities[i], 4),
         FormatDouble(diag.taxes[i], 4),
         std::isinf(diag.break_even_taxes[i])
             ? "inf"
             : FormatDouble(diag.break_even_taxes[i], 4),
         StrFormat("%.1f%%", 100.0 * (1.0 - std::exp(-diag.taxes[i]))),
         FormatDouble(diag.net_utilities[i], 4),
         over ? "prefers isolation" : "prefers sharing"});
  }
  out += users.Render();

  if (!diag.settled_on_sharing) {
    out += "Fallback applied: evenly partitioned isolated caches (stage "
           "2).\n";
  } else {
    double spent = 0.0;
    for (std::size_t j = 0; j < problem.num_files(); ++j) {
      spent += result.file_alloc[j] * problem.FileSize(j);
    }
    out += StrFormat("Capacity used: %.3f of %.3f units.\n", spent,
                     problem.capacity);
  }
  return out;
}

}  // namespace opus
