// Best-response dynamics: what happens when every user is strategic.
//
// The paper's strategy-proofness analysis considers a single manipulator
// (Definition 2). This module plays the full game: users take turns
// adopting whichever misreport (found by randomized search) raises their
// own TRUE utility given everyone else's current report, until a round
// passes with no profitable deviation. For a strategy-proof mechanism the
// truthful profile should be (near-)stable and honest users unharmed; for
// max-min/FairRide the dynamics walk away from truth and the honest lose —
// quantified in bench_dynamics_equilibrium.
#pragma once

#include <vector>

#include "common/rng.h"
#include "core/allocator.h"

namespace opus {

struct BestResponseConfig {
  int max_rounds = 12;           // full passes over all users
  int search_trials = 48;        // random misreports evaluated per turn
  double improvement_tol = 1e-5; // minimum utility gain to adopt a lie
};

struct BestResponseResult {
  Matrix reported;          // final reported preference matrix
  int rounds = 0;           // full passes executed
  bool converged = false;   // last pass found no profitable deviation
  std::vector<double> truthful_utilities;  // true utilities, all-truthful
  std::vector<double> final_utilities;     // true utilities at the end
  std::size_t manipulators = 0;  // users whose final report deviates

  double TotalTruthful() const;
  double TotalFinal() const;
  // Largest utility loss suffered by any user relative to all-truthful.
  double MaxVictimLoss() const;
};

// Runs the dynamics starting from truthful reports. Deterministic given
// `rng`. The allocator sees reported preferences; utilities are always
// evaluated against `truthful.preferences`.
BestResponseResult RunBestResponseDynamics(const CacheAllocator& allocator,
                                           const CachingProblem& truthful,
                                           Rng& rng,
                                           const BestResponseConfig& config = {});

}  // namespace opus
