// Per-file cached segments with payer sets.
//
// The max-min budget market (Sec. III-C) caches a file in portions, each
// portion funded by the set of users who were co-paying while it was being
// cached. FairRide's per-portion blocking rule (Sec. III-D) needs exactly
// this structure: a non-payer of a portion funded by n users is blocked with
// probability 1/(n+1).
#pragma once

#include <cstddef>
#include <vector>

namespace opus {

struct Segment {
  double length = 0.0;               // cached amount, in file units
  std::vector<std::size_t> payers;   // sorted user ids who co-funded it

  bool HasPayer(std::size_t user) const;
};

// All cached segments of one file. Segment order is immaterial (only lengths
// and payer sets affect utilities).
class FileSegments {
 public:
  // Appends `length` units funded by `payers` (must be sorted, non-empty for
  // positive length). Adjacent-equal payer sets are merged.
  void Add(double length, std::vector<std::size_t> payers);

  // Total cached amount of the file.
  double TotalLength() const;

  // Amount of the file user `user` co-funded.
  double PaidLength(std::size_t user) const;

  // Expected in-memory-readable fraction of this file for `user` when
  // free-riders are blocked per portion with probability 1/(n+1):
  //   payer portions count fully; non-payer portions count n/(n+1).
  double FairRideAccess(std::size_t user) const;

  const std::vector<Segment>& segments() const { return segments_; }

 private:
  std::vector<Segment> segments_;
};

}  // namespace opus
