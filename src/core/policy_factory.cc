#include "core/policy_factory.h"

#include "core/fairride.h"
#include "core/global_opt.h"
#include "core/isolated.h"
#include "core/maxmin.h"
#include "core/opus.h"
#include "core/vcg_classic.h"

namespace opus {

std::unique_ptr<CacheAllocator> MakeAllocatorByName(
    const std::string& name, unsigned tax_threads,
    const OpusPolicyTuning* tuning) {
  if (name == "opus") {
    OpusOptions options;
    options.tax_threads = tax_threads;
    if (tuning != nullptr) {
      options.delta = tuning->delta;
      options.aggregation = tuning->aggregation;
    }
    return std::make_unique<OpusAllocator>(options);
  }
  if (name == "fairride") return std::make_unique<FairRideAllocator>();
  if (name == "maxmin") return std::make_unique<MaxMinAllocator>();
  if (name == "isolated") return std::make_unique<IsolatedAllocator>();
  if (name == "vcg-classic") return std::make_unique<VcgClassicAllocator>();
  if (name == "optimal") return std::make_unique<GlobalOptimalAllocator>();
  return nullptr;
}

const std::vector<std::string>& KnownPolicyNames() {
  static const std::vector<std::string> names = {
      "opus", "fairride", "maxmin", "isolated", "vcg-classic", "optimal"};
  return names;
}

}  // namespace opus
