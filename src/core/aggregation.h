// ROBUS-style user aggregation for million-tenant allocation windows.
//
// Algorithm 1 costs N+1 PF solves per window; at N = 10^5..10^6 even the
// restricted leave-one-out fast path is too slow for interactive windows.
// Aggregation collapses users into K << N clusters of similar normalized
// preference rows, solves the K-cluster problem (each cluster weighted by
// its member count / total priority so the PF objective approximates the
// user-level one), and disaggregates the outcome back to users:
//
//  - the file allocation a* is shared verbatim (it is per-file, not
//    per-user);
//  - each cluster's Clarke tax is split across members proportionally to
//    their priority weight, which makes every member's blocking
//    probability exactly the cluster's (T_i / w_i = T_c / W_c);
//  - isolation is then re-checked per *user* (net_i >= U-bar_i), because
//    cluster-level stage 2 only guarantees it for cluster aggregates —
//    callers fall back to isolated caches when any member would be hurt.
//
// Clustering is deterministic and cheap: users are bucketed by their
// top-preference file ("signature"), and inside a bucket a bounded greedy
// leader pass splits users whose rows are farther than an L1 threshold
// from every existing leader. Zero-preference rows stay unclustered (they
// are outside the mechanism, exactly as in the user-level solve).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.h"

namespace opus {

struct AggregationOptions {
  // Maximum clusters; 0 disables aggregation (unless auto_tune is set, in
  // which case the budget is unbounded above and the tuner picks it).
  std::size_t max_clusters = 0;
  // L1 distance (rows are normalized, so in [0, 2]) to the nearest leader
  // beyond which a user founds a new cluster (budget permitting).
  double similarity_threshold = 0.5;
  // Skip aggregation below this many users (the direct solve is cheap).
  std::size_t min_users = 0;
  // At most this many leaders per signature bucket; beyond it, users join
  // the nearest existing leader. Bounds the clustering pass to
  // O(N * leaders_per_signature * nnz_row).
  std::size_t leaders_per_signature = 4;

  // Drift-adaptive cluster auto-tuning. When set, the per-window cluster
  // budget is chosen from the drift statistics the warm state observed
  // instead of being pinned at max_clusters:
  //   - cold window (no drift signal): the full budget (max_clusters, or
  //     min(4 * min_clusters, N) when max_clusters = 0);
  //   - drift fraction d < degrade_drift_fraction: budget =
  //     min_clusters * (1 + growth_gain * d), clamped to
  //     [min_clusters, max budget] — coarse clusters while the workload is
  //     stable, growing toward fine granularity as drift rises;
  //   - d >= degrade_drift_fraction: aggregation is skipped for the window
  //     (per-user solves — the reuse gates have closed and cluster
  //     approximations stop paying for themselves).
  // The tuner also keeps the previous clustering sticky: non-drifted users
  // keep their cluster, only drifted/new users are re-assigned, and
  // clusters untouched by drift or membership changes can reuse their
  // leave-one-member-out tax from the warm state (subject to the delta
  // allocation-move gate).
  bool auto_tune = false;
  std::size_t min_clusters = 64;
  double degrade_drift_fraction = 0.5;
  double growth_gain = 8.0;
};

// Drift-adaptive cluster budget for one window (see AggregationOptions).
// `drift_fraction` < 0 means "no signal" (cold window). Returns 0 when the
// window should degrade to per-user solves. Without auto_tune this is just
// max_clusters.
std::size_t ChooseClusterBudget(const AggregationOptions& options,
                                std::size_t num_users, double drift_fraction);

// Invalid cluster id: the user has an all-zero preference row and is
// outside the mechanism (tax 0, no objective term).
inline constexpr std::uint32_t kUnclustered = 0xffffffffu;

struct UserClustering {
  std::size_t num_clusters = 0;
  std::vector<std::uint32_t> cluster_of;  // [user] -> cluster id (or kUnclustered)
  std::vector<double> cluster_weight;     // [cluster] summed member weights
  std::vector<std::uint32_t> leader_of;   // [cluster] founding user id
};

// Deterministic clustering of `problem.preferences` rows (normalized).
// `user_weights` (optional, positive) are the per-user priorities; empty =
// all ones. Requires options.max_clusters > 0.
UserClustering ClusterUsersByPreference(const CachingProblem& problem,
                                        const AggregationOptions& options,
                                        std::span<const double> user_weights = {});

// Sticky re-clustering for drift-adaptive windows: users whose row did not
// drift keep their previous cluster (ids are stable, so cluster-level warm
// artifacts stay addressable); drifted users and users without a valid
// previous assignment are re-assigned against the surviving leaders'
// CURRENT rows, founding new clusters while num_clusters < budget.
// `dirty` (resized to the resulting cluster count) marks clusters whose
// member set or any member row changed — only those need their
// leave-one-member-out tax re-solved. Requires prev_cluster_of.size() ==
// num_users and every leader id < num_users.
UserClustering StickyReclusterByPreference(
    const CachingProblem& problem, const AggregationOptions& options,
    std::span<const double> user_weights,
    std::span<const std::uint32_t> prev_cluster_of,
    std::span<const std::uint32_t> prev_leader_of,
    std::span<const double> drift, double drift_threshold, std::size_t budget,
    std::vector<char>* dirty);

// K x M aggregate problem: cluster c's row is the weight-averaged member
// rows, re-normalized; capacity and file sizes carry over unchanged. The
// result is sparse-backed (CSR only): at-scale aggregates never build the
// K x M dense matrix.
CachingProblem BuildAggregateProblem(const CachingProblem& problem,
                                     const UserClustering& clustering);

// Splits per-cluster taxes across members proportionally to weight:
// T_i = T_c * w_i / W_c (0 for unclustered users). `user_weights` empty =
// all ones. Output is resized to clustering.cluster_of.size().
void DisaggregateTaxes(const UserClustering& clustering,
                       std::span<const double> cluster_taxes,
                       std::span<const double> user_weights,
                       std::vector<double>* user_taxes);

// Exact L1 distance between two users' normalized preference rows, walking
// only CSR nonzeros. Exposed for tests.
double RowL1DistanceCsr(const CsrMatrix& csr, std::size_t a, std::size_t b);

}  // namespace opus
