#include "core/global_opt.h"

#include "core/utility.h"
#include "solver/knapsack.h"

namespace opus {

AllocationResult GlobalOptimalAllocator::Allocate(
    const CachingProblem& problem) const {
  const std::size_t n = problem.num_users();
  const std::size_t m = problem.num_files();

  std::vector<double> total_weight(m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = problem.preferences.row(i);
    for (std::size_t j = 0; j < m; ++j) total_weight[j] += row[j];
  }
  const KnapsackSolution k = SolveFractionalKnapsack(
      total_weight, problem.capacity, problem.file_sizes);

  AllocationResult r;
  r.policy = name();
  r.file_alloc = k.allocation;
  r.access = Matrix(n, m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) r.access(i, j) = r.file_alloc[j];
  }
  r.taxes.assign(n, 0.0);
  r.blocking.assign(n, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    r.copy_footprint += r.file_alloc[j] * problem.FileSize(j);
  }
  r.reported_utilities = EvaluateUtilities(r, problem.preferences);
  return r;
}

}  // namespace opus
