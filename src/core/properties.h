// Empirical checkers for the three desirable properties of Sec. II-B:
// isolation guarantee (IG), strategy-proofness (SP), Pareto efficiency (PE).
// Used by property tests and by bench_table1_properties to regenerate
// Table I.
#pragma once

#include <optional>
#include <vector>

#include "common/rng.h"
#include "core/allocator.h"

namespace opus {

// True iff every user's utility under `result` (evaluated against the
// problem's preferences) is at least its isolated utility U-bar_i - tol.
bool SatisfiesIsolationGuarantee(const CachingProblem& problem,
                                 const AllocationResult& result,
                                 double tol = 1e-7);

// Aggregate efficiency of `result` relative to the utilitarian optimum:
//   sum_i U_i(result) / max_a sum_i U_i(a)   in [0, 1].
// A Pareto-efficient sharing allocation that saturates capacity scores close
// to 1 on well-mixed workloads; isolation scores much lower.
double EfficiencyRatio(const CachingProblem& problem,
                       const AllocationResult& result);

// A profitable-and-harmful deviation found for `cheater`, if any: the
// misreport raised the cheater's true-preference utility by more than
// `min_gain` while lowering some other user's utility by more than
// `min_harm`. This is exactly the behaviour Definition 2 forbids.
struct Deviation {
  std::vector<double> misreport;   // the lie (normalized)
  double cheater_gain = 0.0;       // utility delta for the cheater
  double max_victim_loss = 0.0;    // largest utility drop among others
};

// Randomized search for a harmful profitable deviation by `cheater` under
// `allocator`. Tries `trials` random misreports (permuted/perturbed/sparse
// variants of the truthful row plus fully random rows). Returns the best
// found deviation or nullopt. Deterministic given `rng`.
std::optional<Deviation> FindHarmfulDeviation(
    const CacheAllocator& allocator, const CachingProblem& truthful,
    std::size_t cheater, Rng& rng, int trials = 200,
    double min_gain = 1e-6, double min_harm = 1e-6);

// Convenience: evaluates a specific misreport. Returns the deviation record
// regardless of profitability (gain/loss may be negative/zero).
Deviation EvaluateDeviation(const CacheAllocator& allocator,
                            const CachingProblem& truthful,
                            std::size_t cheater,
                            std::vector<double> misreport);

// --- coalition manipulation (extension) ----------------------------------
//
// VCG-style mechanisms are individually strategy-proof but not, in general,
// coalition-proof: two users misreporting together (and splitting the
// spoils with side payments) can sometimes profit where neither could
// alone. FindCollusiveDeviation searches random joint misreports for a
// pair; a coalition "succeeds" when its members' total true utility rises
// by more than `min_gain` while some outsider loses more than `min_harm`.

struct CollusiveDeviation {
  std::vector<double> misreport_a;  // normalized lie of the first colluder
  std::vector<double> misreport_b;  // normalized lie of the second
  double joint_gain = 0.0;          // sum of colluders' utility deltas
  double min_member_gain = 0.0;     // the worse-off colluder's delta
  double max_victim_loss = 0.0;     // largest drop among outsiders
};

std::optional<CollusiveDeviation> FindCollusiveDeviation(
    const CacheAllocator& allocator, const CachingProblem& truthful,
    std::size_t colluder_a, std::size_t colluder_b, Rng& rng,
    int trials = 200, double min_gain = 1e-6, double min_harm = 1e-6);

}  // namespace opus
