#include "core/sensitivity.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/utility.h"

namespace opus {

SensitivityResult MeasureNoiseSensitivity(const CacheAllocator& allocator,
                                          const CachingProblem& exact,
                                          double sigma, Rng& rng,
                                          int trials) {
  OPUS_CHECK_GE(sigma, 0.0);
  OPUS_CHECK_GT(trials, 0);

  const AllocationResult base = allocator.Allocate(exact);
  const std::vector<double> base_utils =
      EvaluateUtilities(base, exact.preferences);

  SensitivityResult out;
  out.trials = trials;
  for (int t = 0; t < trials; ++t) {
    CachingProblem noisy = exact;
    for (std::size_t i = 0; i < noisy.num_users(); ++i) {
      auto row = noisy.preferences.row(i);
      double total = 0.0;
      for (double& v : row) {
        if (v > 0.0) v *= std::exp(sigma * rng.NextGaussian());
        total += v;
      }
      if (total > 0.0) {
        for (double& v : row) v /= total;
      }
    }
    const AllocationResult perturbed = allocator.Allocate(noisy);
    // Utilities always against the TRUE preferences: the noise is the
    // system's estimation error, not a change in what users want.
    const std::vector<double> utils =
        EvaluateUtilities(perturbed, exact.preferences);

    double max_delta = 0.0;
    for (std::size_t i = 0; i < utils.size(); ++i) {
      max_delta = std::max(max_delta, std::fabs(utils[i] - base_utils[i]));
      out.worst_user_regression = std::min(
          out.worst_user_regression, utils[i] - base_utils[i]);
    }
    out.mean_max_utility_delta += max_delta;

    double drift = 0.0;
    for (std::size_t j = 0; j < exact.num_files(); ++j) {
      drift += std::fabs(perturbed.file_alloc[j] - base.file_alloc[j]);
    }
    out.mean_allocation_drift += drift;

    if (perturbed.shared != base.shared) out.verdict_flip_rate += 1.0;
  }
  out.mean_max_utility_delta /= trials;
  out.mean_allocation_drift /= trials;
  out.verdict_flip_rate /= trials;
  return out;
}

double SigmaForWindow(double preference_mass, std::size_t window_accesses) {
  OPUS_CHECK_GT(preference_mass, 0.0);
  OPUS_CHECK_GT(window_accesses, 0u);
  return 1.0 /
         std::sqrt(preference_mass * static_cast<double>(window_accesses));
}

}  // namespace opus
