// Max-min fair cache allocation (Sec. III-C): the budget-market allocation
// with unrestricted access to every cached file. Provides isolation
// guarantee and Pareto efficiency but is NOT strategy-proof — free riders
// can misreport to have others pay for files they want (Fig. 2), which
// tests/core/properties_test.cc demonstrates.
#pragma once

#include "core/allocator.h"

namespace opus {

class MaxMinAllocator final : public CacheAllocator {
 public:
  std::string name() const override { return "maxmin"; }
  AllocationResult Allocate(const CachingProblem& problem) const override;
};

}  // namespace opus
