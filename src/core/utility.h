// Utility computations shared across allocators and analyses.
#pragma once

#include <span>
#include <vector>

#include "core/types.h"

namespace opus {

// Utility of user `i` under `result` evaluated against `true_prefs` row i:
//   sum_j e_ij * p_ij.
// Pass the allocator's input preferences to get reported utilities, or the
// user's genuine preferences to evaluate cheating outcomes.
double EvaluateUtility(const AllocationResult& result, const Matrix& true_prefs,
                       std::size_t i);

// All users' utilities against `true_prefs`.
std::vector<double> EvaluateUtilities(const AllocationResult& result,
                                      const Matrix& true_prefs);

// Utility a user with preference row `prefs` gains from a private isolated
// cache of size `budget` (files cached greedily in descending preference
// density p_j / s_j, last file possibly fractional). This is the paper's
// U-bar (Definition 1). Empty `sizes` means unit-size files.
double IsolatedUtility(std::span<const double> prefs, double budget,
                       std::span<const double> sizes = {});

// Sparse variant over a CSR row's nonzeros: `cols`/`vals` are the row's
// column indices and values; `sizes` (empty = unit) is indexed by the
// ORIGINAL column ids. Identical arithmetic to the dense version — the
// dense greedy pass stops at the first non-positive preference, so zero
// entries never contribute — at O(nnz_row log nnz_row) instead of
// O(M log M).
double IsolatedUtilitySparse(std::span<const std::uint32_t> cols,
                             std::span<const double> vals, double budget,
                             std::span<const double> sizes = {});

// U-bar for every user with even split C/N.
std::vector<double> IsolatedUtilities(const CachingProblem& problem);

// Weighted variant: user i's private partition is C * w_i / sum(w) (the
// priority-tenant extension). Empty `user_weights` = even split.
std::vector<double> IsolatedUtilities(const CachingProblem& problem,
                                      std::span<const double> user_weights);

// Full-access utility sum_j a_j p_ij (no blocking), the U_i(a) of Eq. (1).
double FullAccessUtility(std::span<const double> prefs,
                         std::span<const double> allocation);

}  // namespace opus
