#include "core/maxmin.h"

#include "core/market.h"
#include "core/utility.h"

namespace opus {

AllocationResult MaxMinAllocator::Allocate(
    const CachingProblem& problem) const {
  const std::size_t n = problem.num_users();
  const std::size_t m = problem.num_files();

  const MarketOutcome market = RunBudgetMarket(problem);

  AllocationResult r;
  r.policy = name();
  r.file_alloc = market.CachedAmounts();
  r.access = Matrix(n, m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      r.access(i, j) = r.file_alloc[j];  // cached bytes are readable by all
    }
  }
  r.taxes.assign(n, 0.0);
  r.blocking.assign(n, 0.0);
  r.copy_footprint = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    r.copy_footprint += r.file_alloc[j] * problem.FileSize(j);
  }
  r.reported_utilities = EvaluateUtilities(r, problem.preferences);
  return r;
}

}  // namespace opus
