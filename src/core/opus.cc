#include "core/opus.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>

#include "common/check.h"
#include "common/mathutil.h"
#include "common/thread_pool.h"
#include "core/isolated.h"
#include "core/utility.h"
#include "solver/pf_solver.h"

namespace opus {
namespace {

// Sum of log-utilities of users other than `excluded` with positive utility
// and a non-empty preference row. Zero-preference users never enter the
// virtual social welfare (their log term is undefined and they are outside
// the mechanism). `row_active` is precomputed once per Allocate — the old
// implementation re-summed every preference row on every call, which made
// the N-tax loop O(N^2 * M) in row scans alone.
double OthersVirtualWelfare(const std::vector<char>& row_active,
                            const std::vector<double>& utilities,
                            std::size_t excluded,
                            const std::vector<double>& user_weights) {
  std::vector<double> logs;
  logs.reserve(utilities.size());
  for (std::size_t k = 0; k < utilities.size(); ++k) {
    if (k == excluded) continue;
    if (!row_active[k]) continue;
    // At a PF optimum with positive capacity every user with a non-zero
    // preference row has strictly positive utility; utility can be zero only
    // in the degenerate capacity-0 / no-files instances, where it is zero in
    // both the full and the leave-one-out solution and cancels out of the
    // tax — skip symmetrically.
    if (utilities[k] <= 0.0) continue;
    const double w = user_weights.empty() ? 1.0 : user_weights[k];
    logs.push_back(w * std::log(utilities[k]));
  }
  return KahanSum(logs);
}

// Shared inputs of the N leave-one-out tax solves (all read-only once the
// parallel loop starts, so the solves stay bit-identical at any thread
// count).
struct TaxContext {
  const CachingProblem* problem = nullptr;
  const CsrMatrix* csr = nullptr;  // null when the dense engine is in use
  const PfSolution* star = nullptr;
  PfOptions pf_options;
  bool restricted = false;

  // Star-allocation structure for the restricted fast path: files strictly
  // inside (0,1), and zero files ordered by the full-problem gradient at a*
  // (descending) — the order in which freed capacity would recruit them.
  std::vector<std::size_t> interior_files;
  std::vector<std::size_t> zero_order;
};

// Leave-one-out solve restricted to columns R = support(i) ∪ interior(a*)
// ∪ (leading zero files by gradient order, enough to absorb ~2x the
// capacity user i's support releases). Every other column is frozen at its
// star value: its utility contribution enters through per-user offsets and
// its mass is subtracted from the capacity. Returns the composed
// full-length solution when the full-problem KKT residual confirms it;
// nullopt when the restriction was skipped (R too large) or missed
// tolerance (`attempt_cost` then carries the wasted work for accounting).
std::optional<PfSolution> RestrictedLeaveOneOut(
    const TaxContext& ctx, std::size_t i, std::span<const double> loo_weights,
    bool* attempted, PfSolution* attempt_cost) {
  *attempted = false;
  const CsrMatrix& csr = *ctx.csr;
  const std::size_t m = csr.cols();
  const std::vector<double>& a_star = ctx.star->allocation;
  const std::vector<double>& sizes = ctx.problem->file_sizes;
  auto size_of = [&](std::size_t j) {
    return sizes.empty() ? 1.0 : sizes[j];
  };

  std::vector<char> in_r(m, 0);
  std::size_t count = 0;
  double freed = 0.0;  // capacity user i's support holds at a*
  {
    const auto cols = csr.row_cols(i);
    for (std::uint32_t c : cols) {
      if (!in_r[c]) {
        in_r[c] = 1;
        ++count;
      }
      freed += size_of(c) * a_star[c];
    }
  }
  for (std::size_t j : ctx.interior_files) {
    if (!in_r[j]) {
      in_r[j] = 1;
      ++count;
    }
  }
  double budget = 2.0 * freed;  // slack so recruits are not capacity-starved
  for (std::size_t j : ctx.zero_order) {
    if (budget <= 0.0) break;
    if (in_r[j]) continue;
    in_r[j] = 1;
    ++count;
    budget -= size_of(j);
  }
  // A restriction covering most columns saves nothing over the full solve.
  if (count * 4 >= m * 3) return std::nullopt;

  *attempted = true;
  std::vector<std::size_t> restricted;
  restricted.reserve(count);
  for (std::size_t j = 0; j < m; ++j) {
    if (in_r[j]) restricted.push_back(j);
  }
  const CsrMatrix sub = csr.ColumnSubset(restricted);

  // Frozen columns: capacity they pin and utility they contribute.
  double frozen_mass = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    if (!in_r[j]) frozen_mass += size_of(j) * a_star[j];
  }
  const double sub_capacity =
      std::max(0.0, ctx.problem->capacity - frozen_mass);
  std::vector<double> offsets(csr.rows(), 0.0);
  for (std::size_t k = 0; k < csr.rows(); ++k) {
    const auto cols = csr.row_cols(k);
    const auto vals = csr.row_vals(k);
    double off = 0.0;
    for (std::size_t t = 0; t < cols.size(); ++t) {
      if (!in_r[cols[t]]) off += vals[t] * a_star[cols[t]];
    }
    offsets[k] = off;
  }

  std::vector<double> warm(restricted.size());
  std::vector<double> sub_sizes;
  if (!sizes.empty()) sub_sizes.resize(restricted.size());
  for (std::size_t r = 0; r < restricted.size(); ++r) {
    warm[r] = a_star[restricted[r]];
    if (!sizes.empty()) sub_sizes[r] = sizes[restricted[r]];
  }

  PfSolution sol = SolveProportionalFairnessCsr(
      sub, sub_capacity, ctx.pf_options, loo_weights, warm, sub_sizes,
      offsets);

  // Compose back to full length; restricted utilities already include the
  // frozen columns through the offsets, so they are the full utilities.
  std::vector<double> full_alloc = a_star;
  for (std::size_t r = 0; r < restricted.size(); ++r) {
    full_alloc[restricted[r]] = sol.allocation[r];
  }
  sol.allocation = std::move(full_alloc);

  const double residual = PfOptimalityResidualCsr(
      csr, ctx.problem->capacity, sol.allocation, loo_weights, sizes);
  sol.residual = residual;
  if (!(residual < ctx.pf_options.tolerance * 10.0)) {
    *attempt_cost = std::move(sol);
    return std::nullopt;
  }
  sol.converged = true;
  return sol;
}

}  // namespace

AllocationResult OpusAllocator::Allocate(const CachingProblem& problem) const {
  return AllocateWithDiagnostics(problem, nullptr);
}

AllocationResult OpusAllocator::AllocateWithDiagnostics(
    const CachingProblem& problem, OpusDiagnostics* diag) const {
  const std::size_t n = problem.num_users();
  const std::size_t m = problem.num_files();
  const std::vector<double>& priorities = options_.user_weights;
  if (!priorities.empty()) {
    OPUS_CHECK_EQ(priorities.size(), n);
    for (double w : priorities) OPUS_CHECK_GT(w, 0.0);
  }
  auto priority_of = [&](std::size_t i) {
    return priorities.empty() ? 1.0 : priorities[i];
  };

  PfOptions pf_options;
  pf_options.tolerance = options_.solver_tolerance;
  pf_options.max_iterations = options_.solver_max_iterations;
  pf_options.use_dense_reference = options_.use_dense_solver;

  // The production engine works off the problem's cached CSR view: the
  // matrix is validated and row sums are taken exactly once, shared by the
  // star solve and all N leave-one-out solves.
  const CsrMatrix* csr =
      options_.use_dense_solver ? nullptr : &problem.PreferencesCsr();

  // Which users participate in the mechanism (non-empty preference row) —
  // computed once, consumed by every OthersVirtualWelfare call.
  std::vector<char> row_active(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    if (csr != nullptr) {
      row_sum = csr->row_sum(i);
    } else {
      for (double p : problem.preferences.row(i)) row_sum += p;
    }
    row_active[i] = row_sum > 0.0 ? 1 : 0;
  }

  // --- Stage 1: VCG_PF --------------------------------------------------
  const PfSolution star =
      csr != nullptr
          ? SolveProportionalFairnessCsr(*csr, problem.capacity, pf_options,
                                         priorities, {}, problem.file_sizes)
          : SolveProportionalFairness(problem.preferences, problem.capacity,
                                      pf_options, priorities, {},
                                      problem.file_sizes);

  // Shared read-only context for the leave-one-out solves, including the
  // star-allocation structure the restricted fast path partitions on.
  TaxContext ctx;
  ctx.problem = &problem;
  ctx.csr = csr;
  ctx.star = &star;
  ctx.pf_options = pf_options;
  ctx.restricted = csr != nullptr && options_.restricted_tax_solves;
  if (ctx.restricted) {
    for (std::size_t j = 0; j < m; ++j) {
      if (star.allocation[j] > 0.0 && star.allocation[j] < 1.0) {
        ctx.interior_files.push_back(j);
      }
    }
    // Gradient of the full objective at a*: zero files with the steepest
    // gradient are the ones freed capacity recruits first. For files
    // outside user i's support this full gradient equals the others'
    // gradient exactly (user i contributes nothing there), and support
    // files are always in R, so one global descending order serves all N
    // solves.
    std::vector<double> g_full(m, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (!row_active[i]) continue;
      const double u = star.utilities[i];
      if (u <= 0.0) continue;
      const double scale = priority_of(i) / u;
      const auto cols = csr->row_cols(i);
      const auto vals = csr->row_vals(i);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        g_full[cols[k]] += scale * vals[k];
      }
    }
    for (std::size_t j = 0; j < m; ++j) {
      if (star.allocation[j] <= 0.0) ctx.zero_order.push_back(j);
    }
    std::sort(ctx.zero_order.begin(), ctx.zero_order.end(),
              [&](std::size_t a, std::size_t b) {
                if (g_full[a] != g_full[b]) return g_full[a] > g_full[b];
                return a < b;  // deterministic tie-break
              });
  }

  // Clarke pivot taxes via leave-one-out PF solves, warm-started from a*.
  // The solves are independent; with tax_threads > 1 they run in parallel
  // (each worker carries its own weight vector), which changes nothing but
  // wall time. Per-solve stats land in index-addressed slots and are folded
  // in order below, so the totals match the serial run bit for bit.
  std::vector<double> taxes(n, 0.0);
  std::vector<PfSolution> loo_solutions(n);
  std::vector<char> restricted_hit(n, 0);
  std::vector<char> restricted_fb(n, 0);
  auto tax_for = [&](std::size_t i, std::vector<double>& weights) {
    const double saved = weights[i];
    weights[i] = 0.0;
    PfSolution without_i;
    if (csr != nullptr && !row_active[i]) {
      // User i never entered the objective, so the leave-one-out problem
      // *is* the star problem: reuse its solution at zero marginal cost.
      without_i.allocation = star.allocation;
      without_i.utilities = star.utilities;
      without_i.objective = star.objective;
      without_i.residual = star.residual;
      without_i.converged = star.converged;
    } else {
      bool attempted = false;
      std::optional<PfSolution> fast;
      PfSolution attempt_cost;
      if (ctx.restricted) {
        fast = RestrictedLeaveOneOut(ctx, i, weights, &attempted,
                                     &attempt_cost);
      }
      if (fast.has_value()) {
        without_i = std::move(*fast);
        restricted_hit[i] = 1;
      } else {
        if (attempted) restricted_fb[i] = 1;
        // Full solve, warm-started from the best available point: the
        // failed restricted composition when there is one, else a*.
        std::span<const double> warm =
            attempted ? std::span<const double>(attempt_cost.allocation)
                      : std::span<const double>(star.allocation);
        without_i =
            csr != nullptr
                ? SolveProportionalFairnessCsr(*csr, problem.capacity,
                                               pf_options, weights, warm,
                                               problem.file_sizes)
                : SolveProportionalFairness(problem.preferences,
                                            problem.capacity, pf_options,
                                            weights, warm,
                                            problem.file_sizes);
        if (attempted) {
          // Fold the wasted restricted attempt into this tax's accounting.
          without_i.iterations += attempt_cost.iterations;
          without_i.projection_calls += attempt_cost.projection_calls;
          without_i.projection_warm_hits += attempt_cost.projection_warm_hits;
          without_i.projection_exact += attempt_cost.projection_exact;
        }
      }
    }
    weights[i] = saved;

    const double welfare_without = OthersVirtualWelfare(
        row_active, without_i.utilities, i, priorities);
    const double welfare_at_star = OthersVirtualWelfare(
        row_active, star.utilities, i, priorities);
    // The pivot tax is non-negative by optimality of the leave-one-out
    // solution; clamp away solver residual noise.
    taxes[i] = std::max(0.0, welfare_without - welfare_at_star);
    loo_solutions[i] = std::move(without_i);
  };
  const unsigned threads =
      options_.tax_threads > 1
          ? std::min<unsigned>(options_.tax_threads,
                               static_cast<unsigned>(n))
          : 1;
  if (threads <= 1) {
    std::vector<double> weights(n, 1.0);
    for (std::size_t i = 0; i < n; ++i) weights[i] = priority_of(i);
    for (std::size_t i = 0; i < n; ++i) tax_for(i, weights);
  } else {
    // Shared fixed pool rather than per-call thread spawns; each task
    // carries its own weight vector (O(n) setup, dwarfed by the PF solve).
    // Inside a pool task (e.g. a SweepRunner worker) this runs inline.
    ThreadPool::Shared().ParallelFor(
        n,
        [&](std::size_t i) {
          std::vector<double> weights(n, 1.0);
          for (std::size_t k = 0; k < n; ++k) weights[k] = priority_of(k);
          tax_for(i, weights);
        },
        threads);
  }
  PfStats solve_stats;
  solve_stats.Observe(star);
  for (const PfSolution& s : loo_solutions) solve_stats.Observe(s);
  for (std::size_t i = 0; i < n; ++i) {
    solve_stats.restricted_solves += restricted_hit[i];
    solve_stats.restricted_fallbacks += restricted_fb[i];
  }
  auto fill_solver_fields = [&](AllocationResult& r) {
    r.solver_iterations = solve_stats.iterations;
    r.solver_residual = solve_stats.max_residual;
    r.solver_solves = solve_stats.solves;
    r.solver_projections = solve_stats.projection_calls;
    r.solver_restricted_taxes = solve_stats.restricted_solves;
    r.solver_restricted_fallbacks = solve_stats.restricted_fallbacks;
    r.solver_nnz_ratio = csr != nullptr ? csr->NnzRatio() : 1.0;
  };

  std::vector<double> blocking(n, 0.0);
  std::vector<double> net(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    // The tax lives in virtual-welfare units; user i's virtual utility is
    // w_i log U_i, so the utility share it keeps is exp(-T_i / w_i).
    blocking[i] = 1.0 - std::exp(-taxes[i] / priority_of(i));
    net[i] = std::exp(-taxes[i] / priority_of(i)) * star.utilities[i];
  }

  // --- Stage 2: PROVIDES_IG ----------------------------------------------
  const std::vector<double> isolated = IsolatedUtilities(problem, priorities);
  bool ig_holds = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (net[i] < isolated[i] - options_.ig_tolerance) {
      ig_holds = false;
      break;
    }
  }

  if (diag != nullptr) {
    diag->pf_allocation = star.allocation;
    diag->pf_utilities = star.utilities;
    diag->taxes = taxes;
    diag->break_even_taxes.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (isolated[i] <= 0.0) {
        diag->break_even_taxes[i] = std::numeric_limits<double>::infinity();
      } else if (star.utilities[i] <= 0.0) {
        diag->break_even_taxes[i] = 0.0;
      } else {
        diag->break_even_taxes[i] =
            priority_of(i) * std::log(star.utilities[i] / isolated[i]);
      }
    }
    diag->net_utilities = net;
    diag->isolated_utilities = isolated;
    diag->settled_on_sharing = ig_holds;
    diag->solver_iterations = static_cast<int>(solve_stats.iterations);
  }

  if (!ig_holds) {
    AllocationResult r = IsolatedAllocator(priorities).Allocate(problem);
    r.policy = name();
    fill_solver_fields(r);
    return r;
  }

  AllocationResult r;
  r.policy = name();
  r.file_alloc = star.allocation;
  r.access = Matrix(n, m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double keep = 1.0 - blocking[i];
    for (std::size_t j = 0; j < m; ++j) {
      r.access(i, j) = keep * r.file_alloc[j];
    }
  }
  r.taxes = std::move(taxes);
  r.blocking = std::move(blocking);
  fill_solver_fields(r);
  for (std::size_t j = 0; j < m; ++j) {
    r.copy_footprint += r.file_alloc[j] * problem.FileSize(j);
  }
  r.reported_utilities = EvaluateUtilities(r, problem.preferences);
  return r;
}

}  // namespace opus
