#include "core/opus.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>

#include "common/check.h"
#include "common/mathutil.h"
#include "common/thread_pool.h"
#include "core/isolated.h"
#include "core/utility.h"
#include "solver/pf_solver.h"

namespace opus {
namespace {

using SteadyClock = std::chrono::steady_clock;

double WallMs(SteadyClock::time_point begin, SteadyClock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - begin).count();
}

// Compact per-solve record for the leave-one-out loop: everything
// PfStats::Observe reads, nothing else. The old loop retained every
// leave-one-out PfSolution (allocation + utilities) until after the
// parallel region — O(N * (N + M)) doubles, which alone is terabytes at
// N = 10^6 — solely to fold the stats in index order. This keeps the
// deterministic in-order fold at O(1) memory per solve.
struct LooStats {
  int iterations = 0;
  std::uint64_t projection_calls = 0;
  std::uint64_t projection_warm_hits = 0;
  std::uint64_t projection_exact = 0;
  double residual = 0.0;
  bool solved = false;  // false = no solve ran (reused tax / empty cluster)
  bool warm_used = false;

  static LooStats From(const PfSolution& s) {
    LooStats out;
    out.iterations = s.iterations;
    out.projection_calls = s.projection_calls;
    out.projection_warm_hits = s.projection_warm_hits;
    out.projection_exact = s.projection_exact;
    out.residual = s.residual;
    out.solved = true;
    out.warm_used = s.warm_start_used;
    return out;
  }

  // Mirrors PfStats::Observe field for field.
  void FoldInto(PfStats* stats) const {
    if (!solved) return;
    ++stats->solves;
    stats->iterations += static_cast<std::uint64_t>(iterations);
    stats->projection_calls += projection_calls;
    stats->projection_warm_hits += projection_warm_hits;
    stats->projection_exact += projection_exact;
    stats->warm_started_solves += warm_used ? 1 : 0;
    stats->max_residual = std::max(stats->max_residual, residual);
  }
};

// Per-user L1 drift between the problem's rows and the warm state's,
// walking CSR nonzeros only. Each index writes its own slot, so the
// parallel run is byte-identical to the serial one.
std::vector<double> RowDriftsCsr(const CsrMatrix& now, const CsrMatrix& then,
                                 unsigned threads) {
  std::vector<double> drift(now.rows(), 0.0);
  ThreadPool::Shared().ParallelFor(
      now.rows(),
      [&](std::size_t i) { drift[i] = RowL1DistanceBetween(now, i, then, i); },
      threads == 0 ? 1 : threads);
  return drift;
}

// Warm-state problem key over the non-matrix inputs: O(N + M) hashing
// instead of retaining and comparing full copies of file sizes and weights.
std::uint64_t ProblemShapeKey(const CachingProblem& problem,
                              const std::vector<double>& priorities) {
  return HashDoubles(priorities, HashDoubles(problem.file_sizes));
}

// Solves the PF problem restricted to the columns marked in `in_r`
// (`count` of them), freezing every other column at `base`: frozen columns
// pin their capacity share and contribute to every user's utility through
// per-user offsets, so the restricted optimum composes with `base` into a
// candidate for the full problem. The returned solution is full-length and
// carries the FULL problem's KKT residual in `residual`; the caller
// applies its own acceptance gate. Shared by the restricted leave-one-out
// tax fast path and the delta-window star solve.
PfSolution SolveComposedRestricted(const CsrMatrix& csr,
                                   const CachingProblem& problem,
                                   const PfOptions& pf_options,
                                   std::span<const double> weights,
                                   const std::vector<double>& base,
                                   const std::vector<char>& in_r,
                                   std::size_t count) {
  const std::size_t m = csr.cols();
  const std::vector<double>& sizes = problem.file_sizes;
  auto size_of = [&](std::size_t j) {
    return sizes.empty() ? 1.0 : sizes[j];
  };

  PfSolution sol;
  if (count == 0) {
    // Nothing to re-optimize: the candidate is `base` itself.
    sol.allocation = base;
    CsrUtilities(csr, sol.allocation, sol.utilities);
    sol.warm_start_used = true;
  } else {
    std::vector<std::size_t> restricted;
    restricted.reserve(count);
    for (std::size_t j = 0; j < m; ++j) {
      if (in_r[j]) restricted.push_back(j);
    }
    const CsrMatrix sub = csr.ColumnSubset(restricted);

    // Frozen columns: capacity they pin and utility they contribute.
    double frozen_mass = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      if (!in_r[j]) frozen_mass += size_of(j) * base[j];
    }
    const double sub_capacity = std::max(0.0, problem.capacity - frozen_mass);
    std::vector<double> offsets(csr.rows(), 0.0);
    for (std::size_t k = 0; k < csr.rows(); ++k) {
      const auto cols = csr.row_cols(k);
      const auto vals = csr.row_vals(k);
      double off = 0.0;
      for (std::size_t t = 0; t < cols.size(); ++t) {
        if (!in_r[cols[t]]) off += vals[t] * base[cols[t]];
      }
      offsets[k] = off;
    }

    std::vector<double> warm(restricted.size());
    std::vector<double> sub_sizes;
    if (!sizes.empty()) sub_sizes.resize(restricted.size());
    for (std::size_t r = 0; r < restricted.size(); ++r) {
      warm[r] = base[restricted[r]];
      if (!sizes.empty()) sub_sizes[r] = sizes[restricted[r]];
    }

    sol = SolveProportionalFairnessCsr(sub, sub_capacity, pf_options, weights,
                                       warm, sub_sizes, offsets);

    // Compose back to full length; restricted utilities already include the
    // frozen columns through the offsets, so they are the full utilities.
    std::vector<double> full_alloc = base;
    for (std::size_t r = 0; r < restricted.size(); ++r) {
      full_alloc[restricted[r]] = sol.allocation[r];
    }
    sol.allocation = std::move(full_alloc);
  }

  sol.residual = PfOptimalityResidualCsr(csr, problem.capacity,
                                         sol.allocation, weights, sizes);
  return sol;
}

// Shared inputs of the N leave-one-out tax solves (all read-only once the
// parallel loop starts, so the solves stay bit-identical at any thread
// count).
struct TaxContext {
  const CachingProblem* problem = nullptr;
  const CsrMatrix* csr = nullptr;  // null when the dense engine is in use
  const PfSolution* star = nullptr;
  PfOptions pf_options;
  bool restricted = false;

  // Star-allocation structure for the restricted fast path: files strictly
  // inside (0,1), and zero files ordered by the full-problem gradient at a*
  // (descending) — the order in which freed capacity would recruit them.
  std::vector<std::size_t> interior_files;
  std::vector<std::size_t> zero_order;
};

// Leave-one-out solve restricted to columns R = support(i) ∪ interior(a*)
// ∪ (leading zero files by gradient order, enough to absorb ~2x the
// capacity user i's support releases). Every other column is frozen at its
// star value via SolveComposedRestricted. Returns the composed full-length
// solution when the full-problem KKT residual confirms it; nullopt when
// the restriction was skipped (R too large) or missed tolerance
// (`attempt_cost` then carries the wasted work for accounting).
std::optional<PfSolution> RestrictedLeaveOneOut(
    const TaxContext& ctx, std::size_t i, std::span<const double> loo_weights,
    bool* attempted, PfSolution* attempt_cost) {
  *attempted = false;
  const CsrMatrix& csr = *ctx.csr;
  const std::size_t m = csr.cols();
  const std::vector<double>& a_star = ctx.star->allocation;
  const std::vector<double>& sizes = ctx.problem->file_sizes;
  auto size_of = [&](std::size_t j) {
    return sizes.empty() ? 1.0 : sizes[j];
  };

  std::vector<char> in_r(m, 0);
  std::size_t count = 0;
  double freed = 0.0;  // capacity user i's support holds at a*
  {
    const auto cols = csr.row_cols(i);
    for (std::uint32_t c : cols) {
      if (!in_r[c]) {
        in_r[c] = 1;
        ++count;
      }
      freed += size_of(c) * a_star[c];
    }
  }
  for (std::size_t j : ctx.interior_files) {
    if (!in_r[j]) {
      in_r[j] = 1;
      ++count;
    }
  }
  double budget = 2.0 * freed;  // slack so recruits are not capacity-starved
  for (std::size_t j : ctx.zero_order) {
    if (budget <= 0.0) break;
    if (in_r[j]) continue;
    in_r[j] = 1;
    ++count;
    budget -= size_of(j);
  }
  // A restriction covering most columns saves nothing over the full solve.
  if (count * 4 >= m * 3) return std::nullopt;

  *attempted = true;
  PfSolution sol = SolveComposedRestricted(csr, *ctx.problem, ctx.pf_options,
                                           loo_weights, a_star, in_r, count);
  if (!(sol.residual < ctx.pf_options.tolerance * 10.0)) {
    *attempt_cost = std::move(sol);
    return std::nullopt;
  }
  sol.converged = true;
  return sol;
}

}  // namespace

void OpusWarmState::Invalidate() {
  valid = false;
  preferences = CsrMatrix();
  capacity = 0.0;
  shape_key = 0;
  // swap-with-empty releases capacity immediately: the purge path must not
  // keep a dead million-user state's buffers resident.
  std::vector<double>().swap(star_allocation);
  std::vector<double>().swap(star_utilities);
  std::vector<double>().swap(taxes);
  std::vector<std::uint32_t>().swap(cluster_of);
  std::vector<std::uint32_t>().swap(leader_of);
  std::vector<double>().swap(cluster_weight);
  std::vector<double>().swap(cluster_taxes);
  std::vector<double>().swap(cluster_utilities);
  drift_fraction = 0.0;
  windows = 0;
  tombstoned_nnz_ = 0;
}

void OpusWarmState::ForgetUser(std::size_t user) {
  if (!valid || user >= preferences.rows()) return;
  tombstoned_nnz_ += preferences.ZeroRow(user);
  if (user < taxes.size()) taxes[user] = 0.0;
  if (user < star_utilities.size()) star_utilities[user] = 0.0;
  // Compact once tombstones hold a quarter of the stored entries (and are
  // worth the pass at all): mass dropuser churn returns the state to O(live
  // nnz) instead of leaving dead rows resident until the next full refresh.
  if (tombstoned_nnz_ >= 64 && tombstoned_nnz_ * 4 >= preferences.nnz()) {
    preferences.Compact();
    tombstoned_nnz_ = 0;
  }
}

std::size_t OpusWarmState::MemoryBytes() const {
  auto bytes = [](const auto& v) { return v.capacity() * sizeof(v[0]); };
  return preferences.MemoryBytes() + bytes(star_allocation) +
         bytes(star_utilities) + bytes(taxes) + bytes(cluster_of) +
         bytes(leader_of) + bytes(cluster_weight) + bytes(cluster_taxes) +
         bytes(cluster_utilities);
}

AllocationResult OpusAllocator::Allocate(const CachingProblem& problem) const {
  return AllocateWithDiagnostics(problem, nullptr);
}

AllocationResult OpusAllocator::AllocateWithDiagnostics(
    const CachingProblem& problem, OpusDiagnostics* diag) const {
  return AllocateIncremental(problem, nullptr, diag);
}

AllocationResult OpusAllocator::AllocateIncremental(
    const CachingProblem& problem, OpusWarmState* state,
    OpusDiagnostics* diag) const {
  const bool aggregated =
      (options_.aggregation.max_clusters > 0 ||
       options_.aggregation.auto_tune) &&
      !options_.use_dense_solver &&
      problem.num_users() >= options_.aggregation.min_users &&
      problem.num_users() > 0 && problem.num_files() > 0;
  if (aggregated) {
    return AllocateAggregated(problem, state, diag);
  }
  // A state left over from an aggregated window reaches this branch only on
  // a policy/config change (aggregation switched off); start it cold rather
  // than seed a differently-configured mechanism. The auto-tuner's degrade
  // path does NOT come through here — AllocateAggregated calls
  // AllocateDirect itself so the user-granularity state is reused.
  if (state != nullptr && !state->cluster_of.empty()) state->Invalidate();
  return AllocateDirect(problem, state, diag);
}

AllocationResult OpusAllocator::AllocateDirect(const CachingProblem& problem,
                                               OpusWarmState* state,
                                               OpusDiagnostics* diag) const {
  const auto t_begin = SteadyClock::now();
  const std::size_t n = problem.num_users();
  const std::size_t m = problem.num_files();
  const std::vector<double>& priorities = options_.user_weights;
  if (!priorities.empty()) {
    OPUS_CHECK_EQ(priorities.size(), n);
    for (double w : priorities) OPUS_CHECK_GT(w, 0.0);
  }
  auto priority_of = [&](std::size_t i) {
    return priorities.empty() ? 1.0 : priorities[i];
  };

  PfOptions pf_options;
  pf_options.tolerance = options_.solver_tolerance;
  pf_options.max_iterations = options_.solver_max_iterations;
  pf_options.use_dense_reference = options_.use_dense_solver;

  // The production engine works off the problem's cached CSR view: the
  // matrix is validated and row sums are taken exactly once, shared by the
  // star solve and all N leave-one-out solves.
  const CsrMatrix* csr =
      options_.use_dense_solver ? nullptr : &problem.PreferencesCsr();

  // Which users participate in the mechanism (non-empty preference row).
  std::vector<char> row_active(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    if (csr != nullptr) {
      row_sum = csr->row_sum(i);
    } else {
      for (double p : problem.preferences.row(i)) row_sum += p;
    }
    row_active[i] = row_sum > 0.0 ? 1 : 0;
  }

  const unsigned tax_threads =
      options_.tax_threads > 1
          ? std::min<unsigned>(options_.tax_threads, static_cast<unsigned>(n))
          : 1;

  // Warm state compatibility: the previous window's solve must describe the
  // same problem shape — dimensions, capacity, and the content hash of file
  // sizes and priority weights (O(N + M) to key instead of retaining and
  // comparing full copies). Anything else degrades to cold.
  const std::uint64_t shape_key = ProblemShapeKey(problem, priorities);
  const bool warm_ok =
      state != nullptr && state->valid && state->preferences.rows() == n &&
      state->preferences.cols() == m && state->capacity == problem.capacity &&
      state->shape_key == shape_key && state->star_allocation.size() == m &&
      state->star_utilities.size() == n && state->taxes.size() == n;

  // Delta machinery: configured by options + a compatible warm state;
  // auto-off then disables it for this window when the observed drift
  // fraction says the bookkeeping (restricted composition, per-user reuse
  // gates) would cost more than the few reusable taxes save.
  const bool delta_configured =
      warm_ok && csr != nullptr && options_.delta.drift_threshold > 0.0;
  std::vector<double> drift;
  double drift_fraction = 0.0;
  if (delta_configured) {
    drift = RowDriftsCsr(*csr, state->preferences, tax_threads);
    std::size_t mechanism = 0;
    std::size_t drifted = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (row_active[i] || state->preferences.row_sum(i) > 0.0) ++mechanism;
      if (drift[i] > options_.delta.drift_threshold) ++drifted;
    }
    drift_fraction = mechanism == 0 ? 0.0
                                    : static_cast<double>(drifted) /
                                          static_cast<double>(mechanism);
  }
  const bool delta_auto_off =
      delta_configured && options_.delta.auto_off_drift_fraction < 1.0 &&
      drift_fraction >= options_.delta.auto_off_drift_fraction;
  const bool delta_active = delta_configured && !delta_auto_off;
  const auto t_drift = SteadyClock::now();

  // --- Stage 1: VCG_PF --------------------------------------------------
  const double residual_gate =
      options_.delta.gate_slack * options_.solver_tolerance;
  PfSolution star;
  bool star_composed = false;
  std::uint64_t delta_fallbacks = 0;
  if (delta_active) {
    // Delta star solve: re-optimize only the columns drifted users touch
    // (their old and new supports), the previous optimum's interior files
    // (the water level moves there first), and a gradient-ordered recruit
    // budget of zero files; everything else is frozen at the previous
    // allocation. The composed point must pass the FULL problem's KKT
    // residual gate; otherwise fall back to a warm full solve.
    const std::vector<double>& a_prev = state->star_allocation;
    std::vector<char> in_r(m, 0);
    std::size_t count = 0;
    double freed = 0.0;
    auto size_of = [&](std::size_t j) {
      return problem.file_sizes.empty() ? 1.0 : problem.file_sizes[j];
    };
    auto add_col = [&](std::size_t j) {
      if (!in_r[j]) {
        in_r[j] = 1;
        ++count;
      }
    };
    for (std::size_t i = 0; i < n; ++i) {
      if (drift[i] <= options_.delta.drift_threshold) continue;
      for (std::uint32_t c : csr->row_cols(i)) {
        if (!in_r[c]) freed += size_of(c) * a_prev[c];
        add_col(c);
      }
      // Old support from the warm state's CSR row (tombstoned entries are
      // explicit zeros and held nothing).
      const auto ocols = state->preferences.row_cols(i);
      const auto ovals = state->preferences.row_vals(i);
      for (std::size_t k = 0; k < ocols.size(); ++k) {
        if (ovals[k] <= 0.0) continue;
        if (!in_r[ocols[k]]) freed += size_of(ocols[k]) * a_prev[ocols[k]];
        add_col(ocols[k]);
      }
    }
    for (std::size_t j = 0; j < m; ++j) {
      if (a_prev[j] > 0.0 && a_prev[j] < 1.0) add_col(j);
    }
    // Recruit zero files by the new problem's gradient at the previous
    // allocation, enough to absorb ~2x the capacity drifted users' files
    // hold — freed capacity must have somewhere to flow.
    if (freed > 0.0) {
      std::vector<double> u_prev(n, 0.0);
      CsrUtilities(*csr, a_prev, u_prev);
      std::vector<double> g(m, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        if (!row_active[i] || u_prev[i] <= 0.0) continue;
        const double scale = priority_of(i) / u_prev[i];
        const auto cols = csr->row_cols(i);
        const auto vals = csr->row_vals(i);
        for (std::size_t k = 0; k < cols.size(); ++k) {
          g[cols[k]] += scale * vals[k];
        }
      }
      std::vector<std::size_t> zeros;
      for (std::size_t j = 0; j < m; ++j) {
        if (a_prev[j] <= 0.0 && !in_r[j]) zeros.push_back(j);
      }
      std::sort(zeros.begin(), zeros.end(),
                [&](std::size_t a, std::size_t b) {
                  if (g[a] != g[b]) return g[a] > g[b];
                  return a < b;
                });
      double budget = 2.0 * freed;
      for (std::size_t j : zeros) {
        if (budget <= 0.0) break;
        add_col(j);
        budget -= size_of(j);
      }
    }
    if (count * 4 < m * 3) {
      PfSolution composed = SolveComposedRestricted(
          *csr, problem, pf_options, priorities, a_prev, in_r, count);
      if (composed.residual < residual_gate) {
        composed.converged = true;
        star = std::move(composed);
        star_composed = true;
      } else {
        ++delta_fallbacks;
        PfSolution full = SolveProportionalFairnessCsr(
            *csr, problem.capacity, pf_options, priorities,
            composed.allocation, problem.file_sizes);
        // Fold the wasted composition into this window's accounting.
        full.iterations += composed.iterations;
        full.projection_calls += composed.projection_calls;
        full.projection_warm_hits += composed.projection_warm_hits;
        full.projection_exact += composed.projection_exact;
        star = std::move(full);
      }
    }
  }
  if (star.allocation.empty()) {
    const std::span<const double> star_warm =
        warm_ok ? std::span<const double>(state->star_allocation)
                : std::span<const double>();
    star = csr != nullptr
               ? SolveProportionalFairnessCsr(*csr, problem.capacity,
                                              pf_options, priorities,
                                              star_warm, problem.file_sizes)
               : SolveProportionalFairness(problem.preferences,
                                           problem.capacity, pf_options,
                                           priorities, star_warm,
                                           problem.file_sizes);
  }
  const auto t_star = SteadyClock::now();

  // Shared read-only context for the leave-one-out solves, including the
  // star-allocation structure the restricted fast path partitions on.
  TaxContext ctx;
  ctx.problem = &problem;
  ctx.csr = csr;
  ctx.star = &star;
  ctx.pf_options = pf_options;
  ctx.restricted = csr != nullptr && options_.restricted_tax_solves;
  if (ctx.restricted) {
    for (std::size_t j = 0; j < m; ++j) {
      if (star.allocation[j] > 0.0 && star.allocation[j] < 1.0) {
        ctx.interior_files.push_back(j);
      }
    }
    // Gradient of the full objective at a*: zero files with the steepest
    // gradient are the ones freed capacity recruits first. For files
    // outside user i's support this full gradient equals the others'
    // gradient exactly (user i contributes nothing there), and support
    // files are always in R, so one global descending order serves all N
    // solves.
    std::vector<double> g_full(m, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (!row_active[i]) continue;
      const double u = star.utilities[i];
      if (u <= 0.0) continue;
      const double scale = priority_of(i) / u;
      const auto cols = csr->row_cols(i);
      const auto vals = csr->row_vals(i);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        g_full[cols[k]] += scale * vals[k];
      }
    }
    for (std::size_t j = 0; j < m; ++j) {
      if (star.allocation[j] <= 0.0) ctx.zero_order.push_back(j);
    }
    std::sort(ctx.zero_order.begin(), ctx.zero_order.end(),
              [&](std::size_t a, std::size_t b) {
                if (g_full[a] != g_full[b]) return g_full[a] > g_full[b];
                return a < b;  // deterministic tie-break
              });
  }

  // Tax reuse (delta windows): a user whose preference row did not drift
  // and whose support neighborhood of the allocation barely moved has a
  // leave-one-out problem unchanged up to the drift tolerance — its
  // previous Clarke tax is reused instead of re-solved. The neighborhood
  // signal is the UNSIGNED preference-weighted allocation move
  //   sum_j p_ij |a*new_j - a*old_j|,
  // not the net utility move: opposite-sign moves across a user's support
  // cancel in the utility while still reshaping its leave-one-out
  // landscape (and hence its tax). Approximate by design; the per-window
  // FairnessAuditor re-checks the guarantees on the applied allocation.
  std::vector<char> reuse(n, 0);
  std::uint64_t reused_taxes = 0;
  if (delta_active) {
    const std::vector<double>& a_prev = state->star_allocation;
    for (std::size_t i = 0; i < n; ++i) {
      if (drift[i] > options_.delta.drift_threshold) continue;
      const auto cols = csr->row_cols(i);
      const auto vals = csr->row_vals(i);
      double moved = 0.0;
      for (std::size_t k = 0; k < cols.size(); ++k) {
        moved += vals[k] * std::fabs(star.allocation[cols[k]] -
                                     a_prev[cols[k]]);
      }
      if (moved > options_.delta.utility_rel_tolerance *
                      std::max(star.utilities[i], 1e-12)) {
        continue;
      }
      reuse[i] = 1;
      ++reused_taxes;
    }
  }

  // Virtual welfare at the star point, precomputed once: each active
  // user's log term and their Kahan total, so welfare-at-star excluding i
  // is an O(1) subtraction instead of the old O(N) re-sum per tax solve
  // (an O(N^2) term all by itself at million-user scale).
  std::vector<double> star_logs(n, 0.0);
  double star_log_total = 0.0;
  {
    std::vector<double> terms;
    terms.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
      if (!row_active[k] || star.utilities[k] <= 0.0) continue;
      star_logs[k] = priority_of(k) * std::log(star.utilities[k]);
      terms.push_back(star_logs[k]);
    }
    star_log_total = KahanSum(terms);
  }

  // Clarke pivot taxes via leave-one-out PF solves, warm-started from a*.
  // The solves are independent; with tax_threads > 1 they run through the
  // shared pool, each participating thread owning one pre-sized scratch
  // slab (weights + log buffer) via its ParallelForSlot slot id — no
  // per-index allocation. Results and per-solve stats land in
  // index-addressed slots and are folded in order below, so the outcome is
  // bit-identical to the serial run at any thread count.
  std::vector<double> taxes(n, 0.0);
  std::vector<LooStats> loo_stats(n);
  std::vector<char> restricted_hit(n, 0);
  std::vector<char> restricted_fb(n, 0);
  struct TaxScratch {
    std::vector<double> weights;  // priorities copy; [i] saved/restored
    std::vector<double> logs;     // welfare accumulation buffer
  };
  std::vector<TaxScratch> scratch(
      ThreadPool::Shared().SlotBound(n, tax_threads));
  auto tax_for = [&](std::size_t i, std::size_t slot) {
    if (reuse[i]) {
      taxes[i] = std::max(0.0, state->taxes[i]);
      return;
    }
    TaxScratch& s = scratch[slot];
    if (s.weights.size() != n) {
      s.weights.assign(n, 1.0);
      if (!priorities.empty()) {
        std::copy(priorities.begin(), priorities.end(), s.weights.begin());
      }
      s.logs.reserve(n);
    }
    std::vector<double>& weights = s.weights;
    const double saved = weights[i];
    weights[i] = 0.0;
    PfSolution without_i;
    if (csr != nullptr && !row_active[i]) {
      // User i never entered the objective, so the leave-one-out problem
      // *is* the star problem: reuse its solution at zero marginal cost.
      without_i.allocation = star.allocation;
      without_i.utilities = star.utilities;
      without_i.objective = star.objective;
      without_i.residual = star.residual;
      without_i.converged = star.converged;
    } else {
      bool attempted = false;
      std::optional<PfSolution> fast;
      PfSolution attempt_cost;
      if (ctx.restricted) {
        fast = RestrictedLeaveOneOut(ctx, i, weights, &attempted,
                                     &attempt_cost);
      }
      if (fast.has_value()) {
        without_i = std::move(*fast);
        restricted_hit[i] = 1;
      } else {
        if (attempted) restricted_fb[i] = 1;
        // Full solve, warm-started from the best available point: the
        // failed restricted composition when there is one, else a*.
        std::span<const double> warm =
            attempted ? std::span<const double>(attempt_cost.allocation)
                      : std::span<const double>(star.allocation);
        without_i =
            csr != nullptr
                ? SolveProportionalFairnessCsr(*csr, problem.capacity,
                                               pf_options, weights, warm,
                                               problem.file_sizes)
                : SolveProportionalFairness(problem.preferences,
                                            problem.capacity, pf_options,
                                            weights, warm,
                                            problem.file_sizes);
        if (attempted) {
          // Fold the wasted restricted attempt into this tax's accounting.
          without_i.iterations += attempt_cost.iterations;
          without_i.projection_calls += attempt_cost.projection_calls;
          without_i.projection_warm_hits += attempt_cost.projection_warm_hits;
          without_i.projection_exact += attempt_cost.projection_exact;
        }
      }
    }
    weights[i] = saved;

    s.logs.clear();
    for (std::size_t k = 0; k < n; ++k) {
      if (k == i || !row_active[k]) continue;
      // At a PF optimum with positive capacity every user with a non-zero
      // preference row has strictly positive utility; utility can be zero
      // only in the degenerate capacity-0 / no-files instances, where it is
      // zero in both the full and the leave-one-out solution and cancels
      // out of the tax — skip symmetrically with the star-side terms.
      if (without_i.utilities[k] <= 0.0) continue;
      s.logs.push_back(priority_of(k) * std::log(without_i.utilities[k]));
    }
    const double welfare_without = KahanSum(s.logs);
    const double welfare_at_star = star_log_total - star_logs[i];
    // The pivot tax is non-negative by optimality of the leave-one-out
    // solution; clamp away solver residual noise.
    taxes[i] = std::max(0.0, welfare_without - welfare_at_star);
    loo_stats[i] = LooStats::From(without_i);
  };
  if (tax_threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) tax_for(i, 0);
  } else {
    ThreadPool::Shared().ParallelForSlot(n, tax_for, tax_threads);
  }
  const auto t_tax = SteadyClock::now();
  PfStats solve_stats;
  solve_stats.Observe(star);
  for (std::size_t i = 0; i < n; ++i) loo_stats[i].FoldInto(&solve_stats);
  for (std::size_t i = 0; i < n; ++i) {
    solve_stats.restricted_solves += restricted_hit[i];
    solve_stats.restricted_fallbacks += restricted_fb[i];
  }
  auto fill_solver_fields = [&](AllocationResult& r) {
    r.solver_iterations = solve_stats.iterations;
    r.solver_residual = solve_stats.max_residual;
    r.solver_solves = solve_stats.solves;
    r.solver_projections = solve_stats.projection_calls;
    r.solver_restricted_taxes = solve_stats.restricted_solves;
    r.solver_restricted_fallbacks = solve_stats.restricted_fallbacks;
    r.solver_nnz_ratio = csr != nullptr ? csr->NnzRatio() : 1.0;
    r.solver_warm_started = warm_ok;
    r.solver_delta_window = delta_active;
    r.solver_delta_star_composed = star_composed;
    r.solver_delta_auto_off = delta_auto_off;
    r.solver_drift_fraction = drift_fraction;
    if (delta_active) {
      r.solver_delta_resolved = static_cast<std::uint64_t>(n) - reused_taxes;
      r.solver_delta_reused = reused_taxes;
    }
    r.solver_delta_fallbacks = delta_fallbacks;
  };

  std::vector<double> blocking(n, 0.0);
  std::vector<double> net(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    // The tax lives in virtual-welfare units; user i's virtual utility is
    // w_i log U_i, so the utility share it keeps is exp(-T_i / w_i).
    blocking[i] = 1.0 - std::exp(-taxes[i] / priority_of(i));
    net[i] = std::exp(-taxes[i] / priority_of(i)) * star.utilities[i];
  }

  // --- Stage 2: PROVIDES_IG ----------------------------------------------
  const std::vector<double> isolated = IsolatedUtilities(problem, priorities);
  bool ig_holds = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (net[i] < isolated[i] - options_.ig_tolerance) {
      ig_holds = false;
      break;
    }
  }

  // Refresh the warm state with this window's outcome (even on an
  // isolation fallback: the PF solve and taxes are still the right seed
  // for the next window's sharing attempt). Rows are stored as one CSR —
  // never a dense N x M copy.
  if (state != nullptr) {
    state->preferences = csr != nullptr ? *csr : problem.PreferencesCsr();
    state->capacity = problem.capacity;
    state->shape_key = shape_key;
    state->star_allocation = star.allocation;
    state->star_utilities = star.utilities;
    state->taxes = taxes;
    state->cluster_of.clear();
    state->leader_of.clear();
    state->cluster_weight.clear();
    state->cluster_taxes.clear();
    state->cluster_utilities.clear();
    state->drift_fraction = drift_fraction;
    state->windows = warm_ok ? state->windows + 1 : 1;
    state->valid = true;
    state->tombstoned_nnz_ = 0;
  }
  const auto t_fin = SteadyClock::now();

  if (diag != nullptr) {
    diag->pf_allocation = star.allocation;
    diag->pf_utilities = star.utilities;
    diag->taxes = taxes;
    diag->break_even_taxes.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (isolated[i] <= 0.0) {
        diag->break_even_taxes[i] = std::numeric_limits<double>::infinity();
      } else if (star.utilities[i] <= 0.0) {
        diag->break_even_taxes[i] = 0.0;
      } else {
        diag->break_even_taxes[i] =
            priority_of(i) * std::log(star.utilities[i] / isolated[i]);
      }
    }
    diag->net_utilities = net;
    diag->isolated_utilities = isolated;
    diag->settled_on_sharing = ig_holds;
    diag->solver_iterations = static_cast<int>(solve_stats.iterations);
    diag->drift_wall_ms = WallMs(t_begin, t_drift);
    diag->cluster_wall_ms = 0.0;
    diag->star_wall_ms = WallMs(t_drift, t_star);
    diag->tax_wall_ms = WallMs(t_star, t_tax);
    diag->finalize_wall_ms = WallMs(t_tax, t_fin);
  }

  if (!ig_holds) {
    AllocationResult r = IsolatedAllocator(priorities).Allocate(problem);
    r.policy = name();
    fill_solver_fields(r);
    return r;
  }

  AllocationResult r;
  r.policy = name();
  r.file_alloc = star.allocation;
  r.taxes = std::move(taxes);
  r.blocking = std::move(blocking);
  fill_solver_fields(r);
  for (std::size_t j = 0; j < m; ++j) {
    r.copy_footprint += r.file_alloc[j] * problem.FileSize(j);
  }
  if (problem.dense_backed()) {
    r.access = Matrix(n, m, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double keep = 1.0 - r.blocking[i];
      for (std::size_t j = 0; j < m; ++j) {
        r.access(i, j) = keep * r.file_alloc[j];
      }
    }
    r.reported_utilities = EvaluateUtilities(r, problem.preferences);
  } else {
    // Lean sparse output: the access matrix e_ij = (1 - f_i) a_j is rank-1
    // and recoverable from blocking + file_alloc; materializing it at
    // N = 10^6 would dwarf every other allocation in the window. Reported
    // utilities are the nets (identical arithmetic to the dense
    // EvaluateUtilities contraction up to fp association).
    r.reported_utilities = std::move(net);
  }
  return r;
}

AllocationResult OpusAllocator::AllocateAggregated(
    const CachingProblem& problem, OpusWarmState* state,
    OpusDiagnostics* diag) const {
  const auto t_begin = SteadyClock::now();
  const std::size_t n = problem.num_users();
  const std::size_t m = problem.num_files();
  const std::vector<double>& priorities = options_.user_weights;
  if (!priorities.empty()) {
    OPUS_CHECK_EQ(priorities.size(), n);
    for (double w : priorities) OPUS_CHECK_GT(w, 0.0);
  }
  auto priority_of = [&](std::size_t i) {
    return priorities.empty() ? 1.0 : priorities[i];
  };

  PfOptions pf_options;
  pf_options.tolerance = options_.solver_tolerance;
  pf_options.max_iterations = options_.solver_max_iterations;
  const CsrMatrix& ucsr = problem.PreferencesCsr();
  const unsigned threads_hint =
      options_.tax_threads > 1 ? options_.tax_threads : 1;

  // Aggregated windows keep the warm state at USER granularity (rows,
  // taxes, star utilities) plus the clustering artifacts, so the same
  // shape key serves both paths and the auto-tuner's degrade path can hand
  // the state straight to AllocateDirect.
  const std::uint64_t shape_key = ProblemShapeKey(problem, priorities);
  const bool warm_ok =
      state != nullptr && state->valid && state->preferences.rows() == n &&
      state->preferences.cols() == m && state->capacity == problem.capacity &&
      state->shape_key == shape_key && state->star_allocation.size() == m &&
      state->star_utilities.size() == n && state->taxes.size() == n;

  // Drift statistics vs. the stored user rows — the auto-tuner's input and
  // the sticky re-clustering signal. The aggregated path needs a threshold
  // even when delta composition is not configured; 0.05 on normalized rows
  // is well under the clustering similarity threshold.
  const double drift_threshold = options_.delta.drift_threshold > 0.0
                                     ? options_.delta.drift_threshold
                                     : 0.05;
  std::vector<double> drift;
  double drift_fraction = 0.0;
  if (warm_ok) {
    drift = RowDriftsCsr(ucsr, state->preferences, threads_hint);
    std::size_t mechanism = 0;
    std::size_t drifted = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (ucsr.row_sum(i) > 0.0 || state->preferences.row_sum(i) > 0.0) {
        ++mechanism;
      }
      if (drift[i] > drift_threshold) ++drifted;
    }
    drift_fraction = mechanism == 0 ? 0.0
                                    : static_cast<double>(drifted) /
                                          static_cast<double>(mechanism);
  }
  const auto t_drift = SteadyClock::now();

  const std::size_t budget = ChooseClusterBudget(options_.aggregation, n,
                                                 warm_ok ? drift_fraction
                                                         : -1.0);
  if (budget == 0) {
    // Auto-tuner degrade: drift crossed degrade_drift_fraction, so cluster
    // approximations stop paying for themselves — run the window at user
    // granularity. The state is user-granularity by construction and is
    // handed over intact (NOT invalidated): the direct path warm-starts
    // from it and clears the cluster artifacts on refresh.
    return AllocateDirect(problem, state, diag);
  }

  // Clustering: sticky against the previous window when auto-tuning and the
  // warm clustering is compatible (and the tuner did not shrink the budget
  // to under half the surviving cluster count — then a fresh coarse
  // clustering beats dragging a fine one along); fresh greedy pass
  // otherwise.
  const std::size_t prev_k = warm_ok ? state->leader_of.size() : 0;
  bool leaders_valid = prev_k > 0 && state->cluster_of.size() == n &&
                       state->cluster_weight.size() == prev_k &&
                       state->cluster_taxes.size() == prev_k;
  if (leaders_valid) {
    for (const std::uint32_t leader : state->leader_of) {
      if (leader >= n) {
        leaders_valid = false;
        break;
      }
    }
  }
  const bool sticky = options_.aggregation.auto_tune && warm_ok &&
                      leaders_valid && budget * 2 >= prev_k;
  std::vector<char> dirty;
  UserClustering clustering;
  if (sticky) {
    clustering = StickyReclusterByPreference(
        problem, options_.aggregation, priorities, state->cluster_of,
        state->leader_of, drift, drift_threshold, budget, &dirty);
  } else {
    AggregationOptions fresh = options_.aggregation;
    fresh.max_clusters = budget;
    clustering = ClusterUsersByPreference(problem, fresh, priorities);
    dirty.assign(clustering.num_clusters, 1);
  }
  if (clustering.num_clusters == 0) {
    // No user has a non-empty row; the direct path handles the degenerate
    // window.
    return AllocateDirect(problem, state, diag);
  }
  const CachingProblem aggregate = BuildAggregateProblem(problem, clustering);
  const std::size_t num_clusters = clustering.num_clusters;
  const std::vector<double>& cluster_weights = clustering.cluster_weight;
  std::vector<double> member_count(num_clusters, 0.0);
  for (const std::uint32_t c : clustering.cluster_of) {
    if (c != kUnclustered) member_count[c] += 1.0;
  }
  const CsrMatrix& acsr = aggregate.PreferencesCsr();
  const auto t_cluster = SteadyClock::now();

  // Star solve at cluster granularity, warm-started from the previous
  // window's applied per-file allocation (valid regardless of how the
  // clustering changed: a* is per-file, not per-cluster).
  const std::span<const double> star_warm =
      warm_ok ? std::span<const double>(state->star_allocation)
              : std::span<const double>();
  const PfSolution star = SolveProportionalFairnessCsr(
      acsr, aggregate.capacity, pf_options, cluster_weights, star_warm,
      aggregate.file_sizes);
  const auto t_star = SteadyClock::now();

  // Cluster-tax reuse (sticky windows): a cluster untouched by drift or
  // membership changes whose aggregate row saw only a tiny unsigned
  // allocation move keeps its previous leave-one-member-out tax — the same
  // gate the direct path applies per user, at cluster-row granularity.
  // Auto-off (shared with the delta options) disables reuse when the window
  // drifted too much for the bookkeeping to pay.
  const bool delta_auto_off =
      warm_ok && options_.delta.auto_off_drift_fraction < 1.0 &&
      drift_fraction >= options_.delta.auto_off_drift_fraction;
  const bool reuse_active = sticky && !delta_auto_off;
  std::vector<char> creuse(num_clusters, 0);
  std::uint64_t reused_taxes = 0;
  if (reuse_active) {
    for (std::size_t c = 0; c < num_clusters && c < prev_k; ++c) {
      if (dirty[c]) continue;
      const auto cols = acsr.row_cols(c);
      const auto vals = acsr.row_vals(c);
      double moved = 0.0;
      for (std::size_t k = 0; k < cols.size(); ++k) {
        moved += vals[k] * std::fabs(star.allocation[cols[k]] -
                                     state->star_allocation[cols[k]]);
      }
      if (moved > options_.delta.utility_rel_tolerance *
                      std::max(star.utilities[c], 1e-12)) {
        continue;
      }
      creuse[c] = 1;
      ++reused_taxes;
    }
  }

  // Per-cluster leave-one-MEMBER-out solves. Removing the whole cluster
  // would price the coalition's externality (which grows with cluster size
  // and over-taxes every member ~member_count-fold); instead reduce cluster
  // c's weight by one mean member weight and charge the departing member
  // the others' welfare gain — the individual Clarke pivot under the
  // approximation that the member's preferences equal its cluster's.
  // "Others" includes the member's own cluster at its remaining weight.
  // Parallel via slot-indexed scratch, folded in order — bit-identical at
  // any thread count.
  std::vector<double> member_tax(num_clusters, 0.0);
  std::vector<LooStats> loo_stats(num_clusters);
  struct AggScratch {
    std::vector<double> weights;  // cluster_weights copy; [c] saved/restored
    std::vector<double> logs;
  };
  const unsigned tax_threads =
      options_.tax_threads > 1
          ? std::min<unsigned>(options_.tax_threads,
                               static_cast<unsigned>(num_clusters))
          : 1;
  std::vector<AggScratch> scratch(
      ThreadPool::Shared().SlotBound(num_clusters, tax_threads));
  auto tax_for = [&](std::size_t c, std::size_t slot) {
    if (member_count[c] <= 0.0) return;  // emptied-out sticky cluster
    if (creuse[c]) {
      member_tax[c] = std::max(0.0, state->cluster_taxes[c]);
      return;
    }
    AggScratch& s = scratch[slot];
    if (s.weights.size() != num_clusters) {
      s.weights = cluster_weights;
      s.logs.reserve(num_clusters);
    }
    std::vector<double>& weights = s.weights;
    const double mean_weight = cluster_weights[c] / member_count[c];
    const double saved = weights[c];
    weights[c] = std::max(0.0, cluster_weights[c] - mean_weight);
    PfSolution without = SolveProportionalFairnessCsr(
        acsr, aggregate.capacity, pf_options, weights,
        std::span<const double>(star.allocation), aggregate.file_sizes);
    s.logs.clear();
    for (std::size_t k = 0; k < num_clusters; ++k) {
      if (weights[k] <= 0.0 || without.utilities[k] <= 0.0) continue;
      s.logs.push_back(weights[k] * std::log(without.utilities[k]));
    }
    const double welfare_without = KahanSum(s.logs);
    s.logs.clear();
    for (std::size_t k = 0; k < num_clusters; ++k) {
      if (weights[k] <= 0.0 || star.utilities[k] <= 0.0) continue;
      s.logs.push_back(weights[k] * std::log(star.utilities[k]));
    }
    const double welfare_at_star = KahanSum(s.logs);
    weights[c] = saved;
    member_tax[c] = std::max(0.0, welfare_without - welfare_at_star);
    loo_stats[c] = LooStats::From(without);
  };
  if (tax_threads <= 1) {
    for (std::size_t c = 0; c < num_clusters; ++c) tax_for(c, 0);
  } else {
    ThreadPool::Shared().ParallelForSlot(num_clusters, tax_for, tax_threads);
  }
  const auto t_tax = SteadyClock::now();
  PfStats solve_stats;
  solve_stats.Observe(star);
  for (std::size_t c = 0; c < num_clusters; ++c) {
    loo_stats[c].FoldInto(&solve_stats);
  }

  // Disaggregate: the file allocation is shared verbatim; per-member taxes
  // scale with priority (T_i = member_tax_c * w_i / mean_w_c, which
  // DisaggregateTaxes produces from member_tax_c * member_count_c), so
  // every member of a cluster gets the same blocking probability.
  std::vector<double> scaled_cluster_taxes(num_clusters, 0.0);
  for (std::size_t c = 0; c < num_clusters; ++c) {
    scaled_cluster_taxes[c] = member_tax[c] * member_count[c];
  }
  std::vector<double> taxes;
  DisaggregateTaxes(clustering, scaled_cluster_taxes, priorities, &taxes);
  std::vector<double> utilities(n, 0.0);
  CsrUtilities(ucsr, star.allocation, utilities);
  std::vector<double> blocking(n, 0.0);
  std::vector<double> net(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    blocking[i] = 1.0 - std::exp(-taxes[i] / priority_of(i));
    net[i] = std::exp(-taxes[i] / priority_of(i)) * utilities[i];
  }

  // Stage 2 at user granularity: sharing is kept only when every member's
  // net utility covers its own isolated baseline.
  const std::vector<double> isolated = IsolatedUtilities(problem, priorities);
  bool ig_holds = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (net[i] < isolated[i] - options_.ig_tolerance) {
      ig_holds = false;
      break;
    }
  }

  // Refresh the warm state: user rows + disaggregated per-user artifacts
  // (so the degrade path and drift stats work), plus the clustering and
  // cluster-level artifacts (so sticky re-clustering and tax reuse work).
  if (state != nullptr) {
    state->preferences = ucsr;
    state->capacity = problem.capacity;
    state->shape_key = shape_key;
    state->star_allocation = star.allocation;
    state->star_utilities = utilities;
    state->taxes = taxes;
    state->cluster_of = clustering.cluster_of;
    state->leader_of = clustering.leader_of;
    state->cluster_weight = clustering.cluster_weight;
    state->cluster_taxes = member_tax;
    state->cluster_utilities = star.utilities;
    state->drift_fraction = drift_fraction;
    state->windows = warm_ok ? state->windows + 1 : 1;
    state->valid = true;
    state->tombstoned_nnz_ = 0;
  }
  const auto t_fin = SteadyClock::now();

  auto fill_solver_fields = [&](AllocationResult& r) {
    r.solver_iterations = solve_stats.iterations;
    r.solver_residual = solve_stats.max_residual;
    r.solver_solves = solve_stats.solves;
    r.solver_projections = solve_stats.projection_calls;
    r.solver_nnz_ratio = acsr.NnzRatio();
    r.solver_warm_started = warm_ok;
    r.solver_agg_clusters = num_clusters;
    r.solver_delta_window = reuse_active;
    r.solver_delta_auto_off = delta_auto_off;
    r.solver_drift_fraction = drift_fraction;
    if (reuse_active) {
      r.solver_delta_resolved =
          static_cast<std::uint64_t>(num_clusters) - reused_taxes;
      r.solver_delta_reused = reused_taxes;
    }
  };

  if (diag != nullptr) {
    diag->pf_allocation = star.allocation;
    diag->pf_utilities = utilities;
    diag->taxes = taxes;
    diag->break_even_taxes.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (isolated[i] <= 0.0) {
        diag->break_even_taxes[i] = std::numeric_limits<double>::infinity();
      } else if (utilities[i] <= 0.0) {
        diag->break_even_taxes[i] = 0.0;
      } else {
        diag->break_even_taxes[i] =
            priority_of(i) * std::log(utilities[i] / isolated[i]);
      }
    }
    diag->net_utilities = net;
    diag->isolated_utilities = isolated;
    diag->settled_on_sharing = ig_holds;
    diag->solver_iterations = static_cast<int>(solve_stats.iterations);
    diag->drift_wall_ms = WallMs(t_begin, t_drift);
    diag->cluster_wall_ms = WallMs(t_drift, t_cluster);
    diag->star_wall_ms = WallMs(t_cluster, t_star);
    diag->tax_wall_ms = WallMs(t_star, t_tax);
    diag->finalize_wall_ms = WallMs(t_tax, t_fin);
  }

  if (!ig_holds) {
    AllocationResult r = IsolatedAllocator(priorities).Allocate(problem);
    r.policy = name();
    fill_solver_fields(r);
    return r;
  }

  AllocationResult r;
  r.policy = name();
  r.file_alloc = star.allocation;
  r.taxes = std::move(taxes);
  r.blocking = std::move(blocking);
  fill_solver_fields(r);
  for (std::size_t j = 0; j < m; ++j) {
    r.copy_footprint += r.file_alloc[j] * problem.FileSize(j);
  }
  if (problem.dense_backed()) {
    r.access = Matrix(n, m, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double keep = 1.0 - r.blocking[i];
      for (std::size_t j = 0; j < m; ++j) {
        r.access(i, j) = keep * r.file_alloc[j];
      }
    }
    r.reported_utilities = EvaluateUtilities(r, problem.preferences);
  } else {
    // Lean sparse output (see AllocateDirect): access is rank-1 implicit.
    r.reported_utilities = std::move(net);
  }
  return r;
}

}  // namespace opus
