#include "core/opus.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/mathutil.h"
#include "common/thread_pool.h"
#include "core/isolated.h"
#include "core/utility.h"
#include "solver/pf_solver.h"

namespace opus {
namespace {

// Sum of log-utilities of users other than `excluded` with positive utility
// and a non-empty preference row. Zero-preference users never enter the
// virtual social welfare (their log term is undefined and they are outside
// the mechanism).
double OthersVirtualWelfare(const Matrix& prefs,
                            const std::vector<double>& utilities,
                            std::size_t excluded,
                            const std::vector<double>& user_weights) {
  std::vector<double> logs;
  logs.reserve(utilities.size());
  for (std::size_t k = 0; k < utilities.size(); ++k) {
    if (k == excluded) continue;
    double row_sum = 0.0;
    for (double p : prefs.row(k)) row_sum += p;
    if (row_sum <= 0.0) continue;
    // At a PF optimum with positive capacity every user with a non-zero
    // preference row has strictly positive utility; utility can be zero only
    // in the degenerate capacity-0 / no-files instances, where it is zero in
    // both the full and the leave-one-out solution and cancels out of the
    // tax — skip symmetrically.
    if (utilities[k] <= 0.0) continue;
    const double w = user_weights.empty() ? 1.0 : user_weights[k];
    logs.push_back(w * std::log(utilities[k]));
  }
  return KahanSum(logs);
}

}  // namespace

AllocationResult OpusAllocator::Allocate(const CachingProblem& problem) const {
  return AllocateWithDiagnostics(problem, nullptr);
}

AllocationResult OpusAllocator::AllocateWithDiagnostics(
    const CachingProblem& problem, OpusDiagnostics* diag) const {
  const std::size_t n = problem.num_users();
  const std::size_t m = problem.num_files();
  const std::vector<double>& priorities = options_.user_weights;
  if (!priorities.empty()) {
    OPUS_CHECK_EQ(priorities.size(), n);
    for (double w : priorities) OPUS_CHECK_GT(w, 0.0);
  }
  auto priority_of = [&](std::size_t i) {
    return priorities.empty() ? 1.0 : priorities[i];
  };

  PfOptions pf_options;
  pf_options.tolerance = options_.solver_tolerance;
  pf_options.max_iterations = options_.solver_max_iterations;

  // --- Stage 1: VCG_PF --------------------------------------------------
  const PfSolution star =
      SolveProportionalFairness(problem.preferences, problem.capacity,
                                pf_options, priorities, {},
                                problem.file_sizes);

  // Clarke pivot taxes via leave-one-out PF solves, warm-started from a*.
  // The solves are independent; with tax_threads > 1 they run in parallel
  // (each worker carries its own weight vector), which changes nothing but
  // wall time. Per-solve stats land in index-addressed slots and are folded
  // in order below, so the totals match the serial run bit for bit.
  std::vector<double> taxes(n, 0.0);
  std::vector<PfSolution> loo_solutions(n);
  auto tax_for = [&](std::size_t i, std::vector<double>& weights) {
    const double saved = weights[i];
    weights[i] = 0.0;
    const PfSolution without_i = SolveProportionalFairness(
        problem.preferences, problem.capacity, pf_options, weights,
        star.allocation, problem.file_sizes);
    weights[i] = saved;

    const double welfare_without = OthersVirtualWelfare(
        problem.preferences, without_i.utilities, i, priorities);
    const double welfare_at_star = OthersVirtualWelfare(
        problem.preferences, star.utilities, i, priorities);
    // The pivot tax is non-negative by optimality of the leave-one-out
    // solution; clamp away solver residual noise.
    taxes[i] = std::max(0.0, welfare_without - welfare_at_star);
    loo_solutions[i] = without_i;
  };
  const unsigned threads =
      options_.tax_threads > 1
          ? std::min<unsigned>(options_.tax_threads,
                               static_cast<unsigned>(n))
          : 1;
  if (threads <= 1) {
    std::vector<double> weights(n, 1.0);
    for (std::size_t i = 0; i < n; ++i) weights[i] = priority_of(i);
    for (std::size_t i = 0; i < n; ++i) tax_for(i, weights);
  } else {
    // Shared fixed pool rather than per-call thread spawns; each task
    // carries its own weight vector (O(n) setup, dwarfed by the PF solve).
    // Inside a pool task (e.g. a SweepRunner worker) this runs inline.
    ThreadPool::Shared().ParallelFor(
        n,
        [&](std::size_t i) {
          std::vector<double> weights(n, 1.0);
          for (std::size_t k = 0; k < n; ++k) weights[k] = priority_of(k);
          tax_for(i, weights);
        },
        threads);
  }
  PfStats solve_stats;
  solve_stats.Observe(star);
  for (const PfSolution& s : loo_solutions) solve_stats.Observe(s);

  std::vector<double> blocking(n, 0.0);
  std::vector<double> net(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    // The tax lives in virtual-welfare units; user i's virtual utility is
    // w_i log U_i, so the utility share it keeps is exp(-T_i / w_i).
    blocking[i] = 1.0 - std::exp(-taxes[i] / priority_of(i));
    net[i] = std::exp(-taxes[i] / priority_of(i)) * star.utilities[i];
  }

  // --- Stage 2: PROVIDES_IG ----------------------------------------------
  const std::vector<double> isolated = IsolatedUtilities(problem, priorities);
  bool ig_holds = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (net[i] < isolated[i] - options_.ig_tolerance) {
      ig_holds = false;
      break;
    }
  }

  if (diag != nullptr) {
    diag->pf_allocation = star.allocation;
    diag->pf_utilities = star.utilities;
    diag->taxes = taxes;
    diag->break_even_taxes.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (isolated[i] <= 0.0) {
        diag->break_even_taxes[i] = std::numeric_limits<double>::infinity();
      } else if (star.utilities[i] <= 0.0) {
        diag->break_even_taxes[i] = 0.0;
      } else {
        diag->break_even_taxes[i] =
            priority_of(i) * std::log(star.utilities[i] / isolated[i]);
      }
    }
    diag->net_utilities = net;
    diag->isolated_utilities = isolated;
    diag->settled_on_sharing = ig_holds;
    diag->solver_iterations = static_cast<int>(solve_stats.iterations);
  }

  if (!ig_holds) {
    AllocationResult r = IsolatedAllocator(priorities).Allocate(problem);
    r.policy = name();
    r.solver_iterations = solve_stats.iterations;
    r.solver_residual = solve_stats.max_residual;
    return r;
  }

  AllocationResult r;
  r.policy = name();
  r.file_alloc = star.allocation;
  r.access = Matrix(n, m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double keep = 1.0 - blocking[i];
    for (std::size_t j = 0; j < m; ++j) {
      r.access(i, j) = keep * r.file_alloc[j];
    }
  }
  r.taxes = std::move(taxes);
  r.blocking = std::move(blocking);
  r.solver_iterations = solve_stats.iterations;
  r.solver_residual = solve_stats.max_residual;
  for (std::size_t j = 0; j < m; ++j) {
    r.copy_footprint += r.file_alloc[j] * problem.FileSize(j);
  }
  r.reported_utilities = EvaluateUtilities(r, problem.preferences);
  return r;
}

}  // namespace opus
