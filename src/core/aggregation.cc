#include "core/aggregation.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace opus {
namespace {

double WeightOf(std::span<const double> weights, std::size_t i) {
  return weights.empty() ? 1.0 : weights[i];
}

// Top-preference file of row i (lowest index wins ties); kUnclustered for
// an all-zero row. CSR rows are in ascending column order, so the first
// maximal value is the lowest-index one.
std::uint32_t Signature(const CsrMatrix& csr, std::size_t i) {
  const auto cols = csr.row_cols(i);
  const auto vals = csr.row_vals(i);
  if (cols.empty()) return kUnclustered;
  std::size_t best = 0;
  bool any = false;
  for (std::size_t k = 0; k < vals.size(); ++k) {
    if (vals[k] <= 0.0) continue;  // tombstoned entries behave as absent
    if (!any || vals[k] > vals[best]) {
      best = k;
      any = true;
    }
  }
  return any ? cols[best] : kUnclustered;
}

// Value of row i at column j (0 when absent) — binary search over the
// row's nonzeros, so sparse-backed problems never need the dense matrix.
double RowValueAt(const CsrMatrix& csr, std::size_t i, std::uint32_t j) {
  const auto cols = csr.row_cols(i);
  const auto it = std::lower_bound(cols.begin(), cols.end(), j);
  if (it == cols.end() || *it != j) return 0.0;
  return csr.row_vals(i)[static_cast<std::size_t>(it - cols.begin())];
}

// Joins user i to the best cluster when its signature bucket is empty and
// the budget is exhausted: the cluster whose leader's signature file the
// user values most (lowest id on ties; cluster 0 when indifferent).
std::uint32_t JoinBestLeader(const CsrMatrix& csr, std::size_t i,
                             const UserClustering& out) {
  OPUS_CHECK_GT(out.num_clusters, 0u);
  std::uint32_t nearest = kUnclustered;
  double best_pref = -1.0;
  for (std::size_t c = 0; c < out.num_clusters; ++c) {
    const std::uint32_t sig = Signature(csr, out.leader_of[c]);
    const double p = sig == kUnclustered ? 0.0 : RowValueAt(csr, i, sig);
    if (p > best_pref) {
      best_pref = p;
      nearest = static_cast<std::uint32_t>(c);
    }
  }
  return nearest;
}

}  // namespace

double RowL1DistanceCsr(const CsrMatrix& csr, std::size_t a, std::size_t b) {
  return RowL1DistanceBetween(csr, a, csr, b);
}

std::size_t ChooseClusterBudget(const AggregationOptions& options,
                                std::size_t num_users, double drift_fraction) {
  const std::size_t hard_max =
      options.max_clusters > 0
          ? options.max_clusters
          : std::min(num_users, 4 * std::max<std::size_t>(1,
                                                          options.min_clusters));
  if (!options.auto_tune) return options.max_clusters;
  if (drift_fraction < 0.0) return hard_max;  // cold: no drift signal yet
  if (drift_fraction >= options.degrade_drift_fraction) return 0;
  const double lo = static_cast<double>(
      std::max<std::size_t>(1, options.min_clusters));
  double k = lo * (1.0 + options.growth_gain * drift_fraction);
  k = std::min(k, static_cast<double>(hard_max));
  std::size_t budget = static_cast<std::size_t>(k);
  budget = std::max<std::size_t>(budget,
                                 std::min<std::size_t>(hard_max,
                                                       options.min_clusters));
  return std::min(budget, num_users == 0 ? budget : num_users);
}

UserClustering ClusterUsersByPreference(const CachingProblem& problem,
                                        const AggregationOptions& options,
                                        std::span<const double> user_weights) {
  const std::size_t budget = options.max_clusters > 0
                                 ? options.max_clusters
                                 : ChooseClusterBudget(options,
                                                       problem.num_users(),
                                                       -1.0);
  OPUS_CHECK_GT(budget, 0u);
  const std::size_t n = problem.num_users();
  if (!user_weights.empty()) OPUS_CHECK_EQ(user_weights.size(), n);
  const CsrMatrix& csr = problem.PreferencesCsr();

  UserClustering out;
  out.cluster_of.assign(n, kUnclustered);

  // Leaders indexed per signature bucket. Bucket lookup is a flat array
  // over files (signatures are file ids), so the whole pass is allocation-
  // light and deterministic in user order.
  const std::size_t m = problem.num_files();
  std::vector<std::vector<std::uint32_t>> bucket_clusters(m);

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t sig = Signature(csr, i);
    if (sig == kUnclustered) continue;  // outside the mechanism
    std::vector<std::uint32_t>& candidates = bucket_clusters[sig];

    // Nearest leader in this signature bucket (first wins ties).
    std::uint32_t nearest = kUnclustered;
    double nearest_dist = 0.0;
    for (const std::uint32_t c : candidates) {
      const double d = RowL1DistanceCsr(csr, i, out.leader_of[c]);
      if (nearest == kUnclustered || d < nearest_dist) {
        nearest = c;
        nearest_dist = d;
      }
    }
    const bool close_enough =
        nearest != kUnclustered && nearest_dist <= options.similarity_threshold;
    const bool may_found = out.num_clusters < budget &&
                           candidates.size() < options.leaders_per_signature;
    if (!close_enough && may_found) {
      const std::uint32_t c = static_cast<std::uint32_t>(out.num_clusters++);
      out.leader_of.push_back(static_cast<std::uint32_t>(i));
      out.cluster_weight.push_back(0.0);
      candidates.push_back(c);
      nearest = c;
    } else if (nearest == kUnclustered) {
      nearest = JoinBestLeader(csr, i, out);
    }
    out.cluster_of[i] = nearest;
    out.cluster_weight[nearest] += WeightOf(user_weights, i);
  }
  return out;
}

UserClustering StickyReclusterByPreference(
    const CachingProblem& problem, const AggregationOptions& options,
    std::span<const double> user_weights,
    std::span<const std::uint32_t> prev_cluster_of,
    std::span<const std::uint32_t> prev_leader_of,
    std::span<const double> drift, double drift_threshold, std::size_t budget,
    std::vector<char>* dirty) {
  const std::size_t n = problem.num_users();
  OPUS_CHECK_EQ(prev_cluster_of.size(), n);
  OPUS_CHECK_EQ(drift.size(), n);
  if (!user_weights.empty()) OPUS_CHECK_EQ(user_weights.size(), n);
  const CsrMatrix& csr = problem.PreferencesCsr();
  const std::size_t m = problem.num_files();
  const std::size_t prev_k = prev_leader_of.size();

  UserClustering out;
  out.cluster_of.assign(n, kUnclustered);
  out.num_clusters = prev_k;
  out.leader_of.assign(prev_leader_of.begin(), prev_leader_of.end());
  out.cluster_weight.assign(prev_k, 0.0);
  dirty->assign(prev_k, 0);
  for (const std::uint32_t leader : prev_leader_of) {
    OPUS_CHECK_LT(leader, n);
  }

  // Buckets over the surviving leaders' CURRENT signatures, so drifted
  // users are assigned against where the leaders are now, not where they
  // were when the clustering was built.
  std::vector<std::vector<std::uint32_t>> bucket_clusters(m);
  for (std::size_t c = 0; c < prev_k; ++c) {
    const std::uint32_t sig = Signature(csr, prev_leader_of[c]);
    if (sig != kUnclustered) {
      bucket_clusters[sig].push_back(static_cast<std::uint32_t>(c));
    }
  }

  auto mark_dirty = [&](std::uint32_t c) {
    if (c != kUnclustered && c < dirty->size()) (*dirty)[c] = 1;
  };

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t sig = Signature(csr, i);
    const std::uint32_t prev = prev_cluster_of[i];
    if (sig == kUnclustered) {
      // Row went empty (churned user): its old cluster lost a member.
      mark_dirty(prev);
      continue;
    }
    const bool drifted = drift[i] > drift_threshold;
    if (!drifted && prev != kUnclustered && prev < prev_k) {
      // Sticky: unchanged row, unchanged assignment — O(1), no distances.
      out.cluster_of[i] = prev;
      out.cluster_weight[prev] += WeightOf(user_weights, i);
      continue;
    }
    // Drifted (or previously unassigned): re-assign like the fresh pass.
    std::vector<std::uint32_t>& candidates = bucket_clusters[sig];
    std::uint32_t nearest = kUnclustered;
    double nearest_dist = 0.0;
    for (const std::uint32_t c : candidates) {
      const double d = RowL1DistanceCsr(csr, i, out.leader_of[c]);
      if (nearest == kUnclustered || d < nearest_dist) {
        nearest = c;
        nearest_dist = d;
      }
    }
    const bool close_enough =
        nearest != kUnclustered && nearest_dist <= options.similarity_threshold;
    const bool may_found = out.num_clusters < budget &&
                           candidates.size() < options.leaders_per_signature;
    if (!close_enough && may_found) {
      const std::uint32_t c = static_cast<std::uint32_t>(out.num_clusters++);
      out.leader_of.push_back(static_cast<std::uint32_t>(i));
      out.cluster_weight.push_back(0.0);
      dirty->push_back(1);
      candidates.push_back(c);
      nearest = c;
    } else if (nearest == kUnclustered) {
      nearest = JoinBestLeader(csr, i, out);
    }
    out.cluster_of[i] = nearest;
    out.cluster_weight[nearest] += WeightOf(user_weights, i);
    // The user's row changed or its membership may have: both the old and
    // the new cluster must re-solve.
    mark_dirty(prev);
    mark_dirty(nearest);
  }
  return out;
}

CachingProblem BuildAggregateProblem(const CachingProblem& problem,
                                     const UserClustering& clustering) {
  const std::size_t n = problem.num_users();
  const std::size_t m = problem.num_files();
  const std::size_t k = clustering.num_clusters;
  OPUS_CHECK_EQ(clustering.cluster_of.size(), n);
  const CsrMatrix& csr = problem.PreferencesCsr();

  // Group members by cluster (counting sort, stable in user order) so each
  // cluster row is accumulated once into an M-length scratch and emitted as
  // CSR — O(nnz + K + M) time, O(M) scratch, never a K x M dense matrix.
  std::vector<std::size_t> members_begin(k + 1, 0);
  for (const std::uint32_t c : clustering.cluster_of) {
    if (c != kUnclustered) ++members_begin[c + 1];
  }
  for (std::size_t c = 0; c < k; ++c) members_begin[c + 1] += members_begin[c];
  std::vector<std::uint32_t> members(members_begin[k]);
  {
    std::vector<std::size_t> cursor(members_begin.begin(),
                                    members_begin.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t c = clustering.cluster_of[i];
      if (c == kUnclustered) continue;
      members[cursor[c]++] = static_cast<std::uint32_t>(i);
    }
  }

  std::vector<std::size_t> row_ptr(k + 1, 0);
  std::vector<std::uint32_t> col_idx;
  std::vector<double> values;
  std::vector<double> scratch(m, 0.0);
  std::vector<std::uint32_t> touched;
  for (std::size_t c = 0; c < k; ++c) {
    touched.clear();
    // Member rows are normalized, so summing them weights each member
    // equally within the cluster; FromCsr re-normalizes the sum. (Priority
    // weights enter the aggregate solve through cluster_weight, not here:
    // the cluster row is the demand *shape*, the weight its size.)
    for (std::size_t t = members_begin[c]; t < members_begin[c + 1]; ++t) {
      const std::size_t i = members[t];
      const auto cols = csr.row_cols(i);
      const auto vals = csr.row_vals(i);
      for (std::size_t s = 0; s < cols.size(); ++s) {
        if (scratch[cols[s]] == 0.0 && vals[s] != 0.0) {
          touched.push_back(cols[s]);
        }
        scratch[cols[s]] += vals[s];
      }
    }
    std::sort(touched.begin(), touched.end());
    for (const std::uint32_t j : touched) {
      if (scratch[j] != 0.0) {
        col_idx.push_back(j);
        values.push_back(scratch[j]);
      }
      scratch[j] = 0.0;
    }
    row_ptr[c + 1] = col_idx.size();
  }

  CachingProblem agg = CachingProblem::FromCsr(
      CsrMatrix::FromParts(k, m, std::move(row_ptr), std::move(col_idx),
                           std::move(values)),
      problem.capacity);
  agg.file_sizes = problem.file_sizes;
  return agg;
}

void DisaggregateTaxes(const UserClustering& clustering,
                       std::span<const double> cluster_taxes,
                       std::span<const double> user_weights,
                       std::vector<double>* user_taxes) {
  OPUS_CHECK_EQ(cluster_taxes.size(), clustering.num_clusters);
  const std::size_t n = clustering.cluster_of.size();
  user_taxes->assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t c = clustering.cluster_of[i];
    if (c == kUnclustered) continue;
    const double wc = clustering.cluster_weight[c];
    if (wc <= 0.0) continue;
    (*user_taxes)[i] = cluster_taxes[c] * WeightOf(user_weights, i) / wc;
  }
}

}  // namespace opus
