#include "core/aggregation.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace opus {
namespace {

double WeightOf(std::span<const double> weights, std::size_t i) {
  return weights.empty() ? 1.0 : weights[i];
}

// Top-preference file of row i (lowest index wins ties); kUnclustered for
// an all-zero row. CSR rows are in ascending column order, so the first
// maximal value is the lowest-index one.
std::uint32_t Signature(const CsrMatrix& csr, std::size_t i) {
  const auto cols = csr.row_cols(i);
  const auto vals = csr.row_vals(i);
  if (cols.empty()) return kUnclustered;
  std::size_t best = 0;
  for (std::size_t k = 1; k < vals.size(); ++k) {
    if (vals[k] > vals[best]) best = k;
  }
  return cols[best];
}

}  // namespace

double RowL1DistanceCsr(const CsrMatrix& csr, std::size_t a, std::size_t b) {
  const auto ac = csr.row_cols(a);
  const auto av = csr.row_vals(a);
  const auto bc = csr.row_cols(b);
  const auto bv = csr.row_vals(b);
  double dist = 0.0;
  std::size_t i = 0, j = 0;
  while (i < ac.size() && j < bc.size()) {
    if (ac[i] == bc[j]) {
      dist += std::fabs(av[i] - bv[j]);
      ++i;
      ++j;
    } else if (ac[i] < bc[j]) {
      dist += av[i++];
    } else {
      dist += bv[j++];
    }
  }
  for (; i < ac.size(); ++i) dist += av[i];
  for (; j < bc.size(); ++j) dist += bv[j];
  return dist;
}

UserClustering ClusterUsersByPreference(const CachingProblem& problem,
                                        const AggregationOptions& options,
                                        std::span<const double> user_weights) {
  OPUS_CHECK_GT(options.max_clusters, 0u);
  const std::size_t n = problem.num_users();
  if (!user_weights.empty()) OPUS_CHECK_EQ(user_weights.size(), n);
  const CsrMatrix& csr = problem.PreferencesCsr();

  UserClustering out;
  out.cluster_of.assign(n, kUnclustered);

  // Leaders indexed per signature bucket. Bucket lookup is a flat array
  // over files (signatures are file ids), so the whole pass is allocation-
  // light and deterministic in user order.
  const std::size_t m = problem.num_files();
  std::vector<std::vector<std::uint32_t>> bucket_clusters(m);

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t sig = Signature(csr, i);
    if (sig == kUnclustered) continue;  // outside the mechanism
    std::vector<std::uint32_t>& candidates = bucket_clusters[sig];

    // Nearest leader in this signature bucket (first wins ties).
    std::uint32_t nearest = kUnclustered;
    double nearest_dist = 0.0;
    for (const std::uint32_t c : candidates) {
      const double d = RowL1DistanceCsr(csr, i, out.leader_of[c]);
      if (nearest == kUnclustered || d < nearest_dist) {
        nearest = c;
        nearest_dist = d;
      }
    }
    const bool close_enough =
        nearest != kUnclustered && nearest_dist <= options.similarity_threshold;
    const bool may_found = out.num_clusters < options.max_clusters &&
                           candidates.size() < options.leaders_per_signature;
    if (!close_enough && may_found) {
      const std::uint32_t c = static_cast<std::uint32_t>(out.num_clusters++);
      out.leader_of.push_back(static_cast<std::uint32_t>(i));
      out.cluster_weight.push_back(0.0);
      candidates.push_back(c);
      nearest = c;
    } else if (nearest == kUnclustered) {
      // Bucket empty and the cluster budget is exhausted: join the cluster
      // whose leader this user values most (lowest id on ties); with no
      // preference on any leader's signature, fall back to cluster 0.
      OPUS_CHECK_GT(out.num_clusters, 0u);
      double best_pref = -1.0;
      for (std::size_t c = 0; c < out.num_clusters; ++c) {
        const double p = problem.preferences(
            i, Signature(csr, out.leader_of[c]));
        if (p > best_pref) {
          best_pref = p;
          nearest = static_cast<std::uint32_t>(c);
        }
      }
    }
    out.cluster_of[i] = nearest;
    out.cluster_weight[nearest] += WeightOf(user_weights, i);
  }
  return out;
}

CachingProblem BuildAggregateProblem(const CachingProblem& problem,
                                     const UserClustering& clustering) {
  const std::size_t n = problem.num_users();
  const std::size_t m = problem.num_files();
  OPUS_CHECK_EQ(clustering.cluster_of.size(), n);
  Matrix rows(clustering.num_clusters, m, 0.0);
  const CsrMatrix& csr = problem.PreferencesCsr();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t c = clustering.cluster_of[i];
    if (c == kUnclustered) continue;
    auto out = rows.row(c);
    const auto cols = csr.row_cols(i);
    const auto vals = csr.row_vals(i);
    // Member rows are normalized, so summing them weights each member
    // equally within the cluster; FromRaw re-normalizes the sum. (Priority
    // weights enter the aggregate solve through cluster_weight, not here:
    // the cluster row is the demand *shape*, the weight its size.)
    for (std::size_t k = 0; k < cols.size(); ++k) out[cols[k]] += vals[k];
  }
  CachingProblem agg = CachingProblem::FromRaw(std::move(rows),
                                               problem.capacity);
  agg.file_sizes = problem.file_sizes;
  return agg;
}

void DisaggregateTaxes(const UserClustering& clustering,
                       std::span<const double> cluster_taxes,
                       std::span<const double> user_weights,
                       std::vector<double>* user_taxes) {
  OPUS_CHECK_EQ(cluster_taxes.size(), clustering.num_clusters);
  const std::size_t n = clustering.cluster_of.size();
  user_taxes->assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t c = clustering.cluster_of[i];
    if (c == kUnclustered) continue;
    const double wc = clustering.cluster_weight[c];
    if (wc <= 0.0) continue;
    (*user_taxes)[i] = cluster_taxes[c] * WeightOf(user_weights, i) / wc;
  }
}

}  // namespace opus
