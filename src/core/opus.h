// OpuS — Opportunistic Sharing for high efficiency (paper Sec. IV,
// Algorithm 1).
//
// Stage 1 (VCG_PF): compute the proportional-fair allocation
//   a* = argmax sum_i log U_i(a)   s.t. 0 <= a_j <= 1, sum_j a_j <= C,
// then charge each user the Clarke pivot tax in virtual (log) utility:
//   T_i = sum_{k!=i} V_k(a*_{-i}) - sum_{k!=i} V_k(a*),
// where a*_{-i} is the PF allocation with user i removed. The tax is
// realized by blocking user i's in-memory accesses with probability
//   f_i = 1 - exp(-T_i),
// so the net utility is exp(-T_i) * U_i(a*).
//
// Stage 2 (PROVIDES_IG): if any user is charged beyond its break-even tax
//   T-bar_i = log(U_i(a*) / U-bar_i)
// (equivalently, its net utility falls below its isolated utility), the
// sharing attempt fails and the allocation reduces to isolated caches.
#pragma once

#include "core/allocator.h"

namespace opus {

struct OpusOptions {
  // Numerical slack for the isolation-guarantee gate: sharing is kept when
  // net_i >= U-bar_i - ig_tolerance for all i. Covers solver residual noise.
  double ig_tolerance = 1e-7;
  // PF solver optimality tolerance.
  double solver_tolerance = 1e-10;
  // PF solver iteration cap.
  int solver_max_iterations = 200000;
  // Threads for the N leave-one-out tax solves (0/1 = sequential). The
  // solves are independent, so results are bit-identical regardless of the
  // thread count; this only shrinks Algorithm 1's wall time at large N.
  unsigned tax_threads = 0;
  // Use the dense reference PF engine (pre-sparse-rewrite behaviour) for
  // every solve. Benchmarks and cross-check tests only; the production
  // sparse engine produces the same allocations to solver tolerance.
  bool use_dense_solver = false;
  // Serve leave-one-out tax solves with the active-set-restricted fast
  // path (sparse engine only): re-optimize just the columns near the
  // departing user's support plus the interior files, validate the composed
  // solution against the full problem's KKT residual, and fall back to a
  // full solve when the residual misses tolerance.
  bool restricted_tax_solves = true;
  // Priority weights (extension beyond the paper): user i's virtual
  // utility becomes w_i log U_i, its isolation baseline a C * w_i / sum(w)
  // partition, and its blocking probability 1 - exp(-T_i / w_i). Empty =
  // equal weights (the paper's mechanism). All weights must be positive.
  std::vector<double> user_weights;
};

// Detailed stage-1 artifacts, exposed for tests, benches, and the bench for
// Fig. 9 (chance of settling on sharing).
struct OpusDiagnostics {
  std::vector<double> pf_allocation;     // a*
  std::vector<double> pf_utilities;      // U_i(a*)
  std::vector<double> taxes;             // T_i (log-utility units, >= 0)
  std::vector<double> break_even_taxes;  // T-bar_i (+inf when U-bar_i = 0)
  std::vector<double> net_utilities;     // exp(-T_i) U_i(a*)
  std::vector<double> isolated_utilities;  // U-bar_i
  bool settled_on_sharing = false;
  int solver_iterations = 0;  // across all N+1 PF solves
};

class OpusAllocator final : public CacheAllocator {
 public:
  explicit OpusAllocator(OpusOptions options = {}) : options_(options) {}

  std::string name() const override { return "opus"; }
  AllocationResult Allocate(const CachingProblem& problem) const override;

  // Allocate() plus the stage-1 diagnostics.
  AllocationResult AllocateWithDiagnostics(const CachingProblem& problem,
                                           OpusDiagnostics* diag) const;

 private:
  OpusOptions options_;
};

}  // namespace opus
