// OpuS — Opportunistic Sharing for high efficiency (paper Sec. IV,
// Algorithm 1).
//
// Stage 1 (VCG_PF): compute the proportional-fair allocation
//   a* = argmax sum_i log U_i(a)   s.t. 0 <= a_j <= 1, sum_j a_j <= C,
// then charge each user the Clarke pivot tax in virtual (log) utility:
//   T_i = sum_{k!=i} V_k(a*_{-i}) - sum_{k!=i} V_k(a*),
// where a*_{-i} is the PF allocation with user i removed. The tax is
// realized by blocking user i's in-memory accesses with probability
//   f_i = 1 - exp(-T_i),
// so the net utility is exp(-T_i) * U_i(a*).
//
// Stage 2 (PROVIDES_IG): if any user is charged beyond its break-even tax
//   T-bar_i = log(U_i(a*) / U-bar_i)
// (equivalently, its net utility falls below its isolated utility), the
// sharing attempt fails and the allocation reduces to isolated caches.
#pragma once

#include <cstdint>

#include "core/aggregation.h"
#include "core/allocator.h"

namespace opus {

// Incremental allocation windows (delta solves). When an OpusWarmState is
// supplied, every window's PF solves warm-start from the previous window's
// applied allocation; with drift_threshold > 0 the allocator additionally
// re-solves *only* users whose preference rows moved, composing everything
// else from the warm state:
//  - the star solve restricts to the columns drifted users touch (plus the
//    previous optimum's interior files and a gradient-ordered recruit
//    budget), freezes the rest at the previous allocation via
//    utility_offsets, and validates the composed point against the FULL
//    problem's KKT residual — automatic warm full-solve fallback when the
//    gate misses (the exact pattern of the restricted leave-one-out tax
//    fast path);
//  - leave-one-out taxes of users whose row did not drift and whose star
//    utility barely moved are reused from the previous window (their
//    leave-one-out problem is unchanged up to the drift tolerance).
// The reused taxes are approximate by design; the per-window
// FairnessAuditor re-verifies isolation/break-even/envy on the applied
// allocation, and the residual gate keeps the allocation itself exact.
struct OpusDeltaOptions {
  // Per-user L1 preference drift (normalized rows, so in [0, 2]) beyond
  // which the user counts as drifted. 0 disables delta composition: every
  // window re-solves all users (still warm-started when a state exists).
  double drift_threshold = 0.0;
  // A stale user's tax is reused only if the allocation moved — summed
  // UNSIGNED over its preference row, sum_j p_ij |da_j| — by less than
  // this fraction of its star utility; larger neighborhood moves mean the
  // optimum shifted under the user and its leave-one-out solve is re-run.
  // (The unsigned move dominates the net utility move, so a reused user's
  // utility is stable too.)
  double utility_rel_tolerance = 0.01;
  // Residual gate: a composed delta allocation is accepted when the full
  // problem's KKT residual is below gate_slack * solver_tolerance.
  double gate_slack = 10.0;
  // Auto-off: when the drifted-user fraction of a window reaches this, the
  // delta machinery (restricted star composition, per-user reuse gates) is
  // skipped for the window — the bookkeeping costs more than the few
  // reusable taxes save, and the window runs as a plain warm solve. 1.0
  // (the default) never auto-disables; the daemon flag --delta-auto-off
  // sets it.
  double auto_off_drift_fraction = 1.0;
};

// Cross-window solver state owned by the control loop (OpusMaster). The
// allocator both consumes and refreshes it on every AllocateIncremental
// call; Invalidate() forces the next window cold (policy swap, capacity
// reconfig) and releases the stored rows.
//
// Storage is memory-lean by construction: preference rows live as one CSR
// (never a dense N x M copy — warm state for 10^6 users at 0.1% density is
// hundreds of MB, not TB), per-user artifacts are flat N-vectors, and the
// problem key is dimensions + capacity + an O(M + N) content hash of file
// sizes and priority weights instead of retained full copies. Aggregated
// windows ALSO store user-granularity rows/taxes (the disaggregated ones),
// plus the clustering and cluster-level artifacts, so drift statistics,
// sticky re-clustering, and cluster-tax reuse all work across windows.
struct OpusWarmState {
  bool valid = false;
  CsrMatrix preferences;  // normalized USER rows of the problem last solved
  double capacity = 0.0;
  std::uint64_t shape_key = 0;  // HashDoubles(file_sizes) ^mixed weights
  std::vector<double> star_allocation;   // previous applied a* (length M)
  std::vector<double> star_utilities;    // per-user U_i(a*)
  std::vector<double> taxes;             // per-user Clarke taxes
  // Aggregated-window artifacts (empty after a direct window):
  std::vector<std::uint32_t> cluster_of;   // [user] -> cluster (or kUnclustered)
  std::vector<std::uint32_t> leader_of;    // [cluster] founding user id
  std::vector<double> cluster_weight;      // [cluster] summed member weights
  std::vector<double> cluster_taxes;       // [cluster] leave-one-member-out tax
  std::vector<double> cluster_utilities;   // [cluster] aggregate-row U_c(a*)
  // Drift statistics observed entering the last window (auto-tuner input).
  double drift_fraction = 0.0;
  std::uint64_t windows = 0;  // consecutive windows served warm

  // Invalidates AND releases storage (the purge path: policy swap or
  // capacity reconfig must not keep a dead million-user CSR resident).
  void Invalidate();

  // Forgets one user's row (user churn): the stored row is tombstoned and
  // its tax/utility zeroed, so a revived user's first non-empty window
  // registers as drift and is re-solved instead of reusing departed-tenant
  // state. Accumulated tombstones are compacted once they reach a quarter
  // of the stored entries, so mass dropuser churn returns the state's
  // memory to baseline instead of leaving dead rows resident.
  void ForgetUser(std::size_t user);

  // Heap bytes held by the state (tests and bench memory accounting).
  std::size_t MemoryBytes() const;

 private:
  friend class OpusAllocator;  // resets churn accounting on state refresh
  std::size_t tombstoned_nnz_ = 0;
};

struct OpusOptions {
  // Numerical slack for the isolation-guarantee gate: sharing is kept when
  // net_i >= U-bar_i - ig_tolerance for all i. Covers solver residual noise.
  double ig_tolerance = 1e-7;
  // PF solver optimality tolerance.
  double solver_tolerance = 1e-10;
  // PF solver iteration cap.
  int solver_max_iterations = 200000;
  // Threads for the N leave-one-out tax solves (0/1 = sequential). The
  // solves are independent, so results are bit-identical regardless of the
  // thread count; this only shrinks Algorithm 1's wall time at large N.
  unsigned tax_threads = 0;
  // Use the dense reference PF engine (pre-sparse-rewrite behaviour) for
  // every solve. Benchmarks and cross-check tests only; the production
  // sparse engine produces the same allocations to solver tolerance.
  bool use_dense_solver = false;
  // Serve leave-one-out tax solves with the active-set-restricted fast
  // path (sparse engine only): re-optimize just the columns near the
  // departing user's support plus the interior files, validate the composed
  // solution against the full problem's KKT residual, and fall back to a
  // full solve when the residual misses tolerance.
  bool restricted_tax_solves = true;
  // Incremental-window behaviour (only consulted when AllocateIncremental
  // is called with a state; plain Allocate is always cold).
  OpusDeltaOptions delta;
  // ROBUS-style user aggregation: cluster users by normalized-preference
  // similarity, solve the K-cluster problem, split each cluster's tax
  // across members by priority weight, and re-check isolation per user
  // (falling back to isolated caches when any member would be hurt).
  // max_clusters = 0 disables. Sparse engine only.
  AggregationOptions aggregation;
  // Priority weights (extension beyond the paper): user i's virtual
  // utility becomes w_i log U_i, its isolation baseline a C * w_i / sum(w)
  // partition, and its blocking probability 1 - exp(-T_i / w_i). Empty =
  // equal weights (the paper's mechanism). All weights must be positive.
  std::vector<double> user_weights;
};

// Detailed stage-1 artifacts, exposed for tests, benches, and the bench for
// Fig. 9 (chance of settling on sharing).
struct OpusDiagnostics {
  std::vector<double> pf_allocation;     // a*
  std::vector<double> pf_utilities;      // U_i(a*)
  std::vector<double> taxes;             // T_i (log-utility units, >= 0)
  std::vector<double> break_even_taxes;  // T-bar_i (+inf when U-bar_i = 0)
  std::vector<double> net_utilities;     // exp(-T_i) U_i(a*)
  std::vector<double> isolated_utilities;  // U-bar_i
  bool settled_on_sharing = false;
  int solver_iterations = 0;  // across all N+1 PF solves

  // Per-phase wall-clock breakdown of the window (ms). Timing only — never
  // feeds back into the allocation, so results stay deterministic.
  double drift_wall_ms = 0.0;     // drift stats vs. the warm state
  double cluster_wall_ms = 0.0;   // (re-)clustering + aggregate build
  double star_wall_ms = 0.0;      // star PF solve (incl. delta composition)
  double tax_wall_ms = 0.0;       // leave-one-out / leave-one-member-out solves
  double finalize_wall_ms = 0.0;  // disaggregation, stage 2, state refresh
};

class OpusAllocator final : public CacheAllocator {
 public:
  explicit OpusAllocator(OpusOptions options = {}) : options_(options) {}

  std::string name() const override { return "opus"; }
  AllocationResult Allocate(const CachingProblem& problem) const override;

  // Allocate() plus the stage-1 diagnostics.
  AllocationResult AllocateWithDiagnostics(const CachingProblem& problem,
                                           OpusDiagnostics* diag) const;

  // Incremental window: warm-starts every PF solve from `state` (and, in
  // delta mode, composes unchanged users from it — see OpusDeltaOptions),
  // then refreshes `state` with this window's outcome. A null, invalid, or
  // structurally incompatible state (dimension/capacity/file-size/weight
  // mismatch) degrades to the cold solve, byte-identical to Allocate().
  // With options.aggregation.max_clusters > 0 the window is solved at
  // cluster granularity and disaggregated (state then holds cluster rows).
  AllocationResult AllocateIncremental(const CachingProblem& problem,
                                       OpusWarmState* state,
                                       OpusDiagnostics* diag = nullptr) const;

 private:
  AllocationResult AllocateDirect(const CachingProblem& problem,
                                  OpusWarmState* state,
                                  OpusDiagnostics* diag) const;
  AllocationResult AllocateAggregated(const CachingProblem& problem,
                                      OpusWarmState* state,
                                      OpusDiagnostics* diag) const;

  OpusOptions options_;
};

}  // namespace opus
