#include "core/properties.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/mathutil.h"
#include "core/utility.h"
#include "solver/knapsack.h"

namespace opus {

bool SatisfiesIsolationGuarantee(const CachingProblem& problem,
                                 const AllocationResult& result,
                                 double tol) {
  const std::vector<double> isolated = IsolatedUtilities(problem);
  const std::vector<double> utilities =
      EvaluateUtilities(result, problem.preferences);
  for (std::size_t i = 0; i < utilities.size(); ++i) {
    if (utilities[i] < isolated[i] - tol) return false;
  }
  return true;
}

double EfficiencyRatio(const CachingProblem& problem,
                       const AllocationResult& result) {
  const std::size_t m = problem.num_files();
  std::vector<double> total_weight(m, 0.0);
  for (std::size_t i = 0; i < problem.num_users(); ++i) {
    const auto row = problem.preferences.row(i);
    for (std::size_t j = 0; j < m; ++j) total_weight[j] += row[j];
  }
  const KnapsackSolution opt = SolveFractionalKnapsack(
      total_weight, problem.capacity, problem.file_sizes);
  if (opt.value <= 0.0) return 1.0;
  const std::vector<double> utilities =
      EvaluateUtilities(result, problem.preferences);
  return KahanSum(utilities) / opt.value;
}

namespace {

Deviation EvaluateDeviationAgainst(const CacheAllocator& allocator,
                                   const CachingProblem& truthful,
                                   const std::vector<double>& honest_utils,
                                   std::size_t cheater,
                                   const std::vector<double>& misreport) {
  const CachingProblem lied = truthful.WithMisreport(cheater, misreport);
  const AllocationResult dishonest = allocator.Allocate(lied);
  // All utilities are evaluated against the TRUE preferences: the lie only
  // changes what the allocator believes.
  const std::vector<double> dishonest_utils =
      EvaluateUtilities(dishonest, truthful.preferences);

  Deviation d;
  d.misreport = std::vector<double>(lied.preferences.row(cheater).begin(),
                                    lied.preferences.row(cheater).end());
  d.cheater_gain = dishonest_utils[cheater] - honest_utils[cheater];
  d.max_victim_loss = 0.0;
  for (std::size_t k = 0; k < honest_utils.size(); ++k) {
    if (k == cheater) continue;
    d.max_victim_loss =
        std::max(d.max_victim_loss, honest_utils[k] - dishonest_utils[k]);
  }
  return d;
}

}  // namespace

Deviation EvaluateDeviation(const CacheAllocator& allocator,
                            const CachingProblem& truthful,
                            std::size_t cheater,
                            std::vector<double> misreport) {
  OPUS_CHECK_LT(cheater, truthful.num_users());
  const AllocationResult honest = allocator.Allocate(truthful);
  const std::vector<double> honest_utils =
      EvaluateUtilities(honest, truthful.preferences);
  return EvaluateDeviationAgainst(allocator, truthful, honest_utils, cheater,
                                  misreport);
}

namespace {

// Shared misreport generator for the single- and two-party searches.
std::vector<double> GenerateLie(std::span<const double> truth_row,
                                std::size_t m, int variant, Rng& rng) {
  std::vector<double> lie(truth_row.begin(), truth_row.end());
  switch (variant % 4) {
    case 0: {
      std::vector<std::size_t> support;
      for (std::size_t j = 0; j < m; ++j) {
        if (lie[j] > 0.0) support.push_back(j);
      }
      if (support.size() >= 2) {
        std::vector<double> vals;
        for (std::size_t j : support) vals.push_back(lie[j]);
        rng.Shuffle(vals);
        for (std::size_t k = 0; k < support.size(); ++k) {
          lie[support[k]] = vals[k];
        }
      }
      break;
    }
    case 1: {
      for (double& v : lie) {
        if (v > 0.0) v *= std::exp(rng.NextUniform(-1.5, 1.5));
      }
      break;
    }
    case 2: {
      std::vector<std::size_t> support;
      for (std::size_t j = 0; j < m; ++j) {
        if (lie[j] > 0.0) support.push_back(j);
      }
      std::fill(lie.begin(), lie.end(), 0.0);
      if (!support.empty()) {
        lie[support[rng.NextBounded(support.size())]] = 1.0;
      } else {
        lie[rng.NextBounded(m)] = 1.0;
      }
      break;
    }
    default: {
      for (double& v : lie) v = rng.NextDouble();
      break;
    }
  }
  return lie;
}

}  // namespace

std::optional<CollusiveDeviation> FindCollusiveDeviation(
    const CacheAllocator& allocator, const CachingProblem& truthful,
    std::size_t colluder_a, std::size_t colluder_b, Rng& rng, int trials,
    double min_gain, double min_harm) {
  OPUS_CHECK_LT(colluder_a, truthful.num_users());
  OPUS_CHECK_LT(colluder_b, truthful.num_users());
  OPUS_CHECK_NE(colluder_a, colluder_b);
  const std::size_t m = truthful.num_files();

  const AllocationResult honest = allocator.Allocate(truthful);
  const std::vector<double> honest_utils =
      EvaluateUtilities(honest, truthful.preferences);

  std::optional<CollusiveDeviation> best;
  for (int t = 0; t < trials; ++t) {
    const auto lie_a = GenerateLie(truthful.preferences.row(colluder_a), m,
                                   t, rng);
    const auto lie_b = GenerateLie(truthful.preferences.row(colluder_b), m,
                                   t / 2, rng);
    double total_a = 0.0, total_b = 0.0;
    for (double v : lie_a) total_a += v;
    for (double v : lie_b) total_b += v;
    if (total_a <= 0.0 || total_b <= 0.0) continue;

    const CachingProblem lied =
        truthful.WithMisreport(colluder_a, lie_a)
            .WithMisreport(colluder_b, lie_b);
    const AllocationResult dishonest = allocator.Allocate(lied);
    const std::vector<double> utils =
        EvaluateUtilities(dishonest, truthful.preferences);

    const double gain_a = utils[colluder_a] - honest_utils[colluder_a];
    const double gain_b = utils[colluder_b] - honest_utils[colluder_b];
    double victim_loss = 0.0;
    for (std::size_t k = 0; k < utils.size(); ++k) {
      if (k == colluder_a || k == colluder_b) continue;
      victim_loss = std::max(victim_loss, honest_utils[k] - utils[k]);
    }
    if (gain_a + gain_b > min_gain && victim_loss > min_harm) {
      CollusiveDeviation d;
      d.misreport_a =
          std::vector<double>(lied.preferences.row(colluder_a).begin(),
                              lied.preferences.row(colluder_a).end());
      d.misreport_b =
          std::vector<double>(lied.preferences.row(colluder_b).begin(),
                              lied.preferences.row(colluder_b).end());
      d.joint_gain = gain_a + gain_b;
      d.min_member_gain = std::min(gain_a, gain_b);
      d.max_victim_loss = victim_loss;
      if (!best || d.joint_gain > best->joint_gain) best = d;
    }
  }
  return best;
}

std::optional<Deviation> FindHarmfulDeviation(
    const CacheAllocator& allocator, const CachingProblem& truthful,
    std::size_t cheater, Rng& rng, int trials, double min_gain,
    double min_harm) {
  OPUS_CHECK_LT(cheater, truthful.num_users());
  const std::size_t m = truthful.num_files();
  const auto truth_row = truthful.preferences.row(cheater);

  const AllocationResult honest = allocator.Allocate(truthful);
  const std::vector<double> honest_utils =
      EvaluateUtilities(honest, truthful.preferences);

  std::optional<Deviation> best;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> lie(truth_row.begin(), truth_row.end());
    switch (t % 4) {
      case 0: {  // permute the truthful weights across the supported files
        std::vector<std::size_t> support;
        for (std::size_t j = 0; j < m; ++j) {
          if (lie[j] > 0.0) support.push_back(j);
        }
        if (support.size() >= 2) {
          std::vector<double> vals;
          for (std::size_t j : support) vals.push_back(lie[j]);
          rng.Shuffle(vals);
          for (std::size_t k = 0; k < support.size(); ++k) {
            lie[support[k]] = vals[k];
          }
        }
        break;
      }
      case 1: {  // multiplicative noise on the truthful row
        for (double& v : lie) {
          if (v > 0.0) v *= std::exp(rng.NextUniform(-1.5, 1.5));
        }
        break;
      }
      case 2: {  // concentrate all claimed demand on one supported file
        std::vector<std::size_t> support;
        for (std::size_t j = 0; j < m; ++j) {
          if (lie[j] > 0.0) support.push_back(j);
        }
        std::fill(lie.begin(), lie.end(), 0.0);
        if (!support.empty()) {
          lie[support[rng.NextBounded(support.size())]] = 1.0;
        } else {
          lie[rng.NextBounded(m)] = 1.0;
        }
        break;
      }
      default: {  // fully random claimed preferences
        for (double& v : lie) v = rng.NextDouble();
        break;
      }
    }
    double total = 0.0;
    for (double v : lie) total += v;
    if (total <= 0.0) continue;

    Deviation d = EvaluateDeviationAgainst(allocator, truthful, honest_utils,
                                           cheater, lie);
    if (d.cheater_gain > min_gain && d.max_victim_loss > min_harm) {
      if (!best || d.cheater_gain > best->cheater_gain) best = d;
    }
  }
  return best;
}

}  // namespace opus
