// Additional fairness axioms beyond the paper's three properties: envy
// measurement. User i envies user k when it would rather have k's
// effective access than its own:
//   envy(i, k) = max(0, sum_j e_kj p_ij - sum_j e_ij p_ij).
// Policies with uniform access (max-min, global optimal) are trivially
// envy-free; blocking- and isolation-based policies can create envy, which
// bench_table1_properties reports as a supplementary fairness column.
#pragma once

#include "core/types.h"

namespace opus {

// N x N matrix of pairwise envy (diagonal zero). Entry (i, k) is how much
// user i's utility would rise under user k's access row, clamped at 0.
Matrix EnvyMatrix(const CachingProblem& problem,
                  const AllocationResult& result);

// Largest pairwise envy (0 for an envy-free allocation).
double MaxEnvy(const CachingProblem& problem, const AllocationResult& result);

// Average pairwise envy across all ordered pairs (0 when N < 2).
double MeanEnvy(const CachingProblem& problem,
                const AllocationResult& result);

}  // namespace opus
