// Human-readable explanation of an OpuS allocation decision: per-user
// utility, tax, break-even, blocking and the sharing verdict — the view an
// operator (or a suspicious tenant) needs to audit why the mechanism chose
// what it chose. Used by `opus_cli --explain`.
#pragma once

#include <string>

#include "core/opus.h"

namespace opus {

// Runs OpuS on `problem` and renders a full decision report: the sharing
// verdict, the allocation vector, and a per-user table with pre-tax
// utility, isolated baseline, tax vs break-even, blocking probability and
// net utility.
std::string ExplainOpusDecision(const CachingProblem& problem,
                                const OpusOptions& options = {});

}  // namespace opus
