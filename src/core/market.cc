#include "core/market.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace opus {
namespace {

constexpr double kEps = 1e-12;

enum class ActionKind { kNone, kFund, kJoin };

struct Action {
  ActionKind kind = ActionKind::kNone;
  std::size_t file = 0;
  std::size_t segment = 0;  // kJoin only
};

// Mutable per-file segment state. Unlike FileSegments, segments here may
// shrink while a joiner converts them, so we keep a plain vector and export
// to FileSegments at the end.
struct SegState {
  double length = 0.0;
  std::vector<std::size_t> payers;
};

bool HasPayer(const SegState& s, std::size_t user) {
  return std::binary_search(s.payers.begin(), s.payers.end(), user);
}

// Appends `length` units, merging into an existing equal-payer segment.
void Append(std::vector<SegState>& segs, double length,
            std::vector<std::size_t> payers) {
  if (length <= 0.0) return;
  for (auto& s : segs) {
    if (s.payers == payers) {
      s.length += length;
      return;
    }
  }
  segs.push_back(SegState{length, std::move(payers)});
}

// The full market state shared by the funding rounds and the join cascade.
struct MarketState {
  const CachingProblem& problem;
  const MarketOptions& options;
  std::vector<double> budgets;
  std::vector<std::vector<SegState>> segs;
  std::vector<double> cached;
  MarketOutcome* out;

  // Money (budget units) needed to cache one *fraction unit* of file j.
  double Cost(std::size_t j) const { return problem.FileSize(j); }

  // User i's next action: the actionable file with the best benefit-cost
  // ratio p_ij / s_j (for unit sizes this is simply the preference, the
  // paper's descending-preference rule). Both funding and joining have this
  // same ratio per unit of money, so one ordering covers both. Actionable =
  // not fully cached (fund), or — with joining enabled — complete but
  // containing segments the user did not pay for (join). Ties break to the
  // lower file index.
  Action PickAction(std::size_t i) const {
    const auto prefs = problem.preferences.row(i);
    int best = -1;
    double best_p = 0.0;
    for (std::size_t j = 0; j < prefs.size(); ++j) {
      if (prefs[j] <= 0.0) continue;
      bool actionable = cached[j] < 1.0 - kEps;
      if (!actionable && options.enable_joining) {
        for (const auto& s : segs[j]) {
          if (s.length > kEps && !HasPayer(s, i)) {
            actionable = true;
            break;
          }
        }
      }
      if (!actionable) continue;
      const double density = prefs[j] / Cost(j);
      if (density > best_p + kEps) {
        best = static_cast<int>(j);
        best_p = density;
      }
    }
    if (best < 0) return {};
    const auto j = static_cast<std::size_t>(best);
    if (cached[j] < 1.0 - kEps) return {ActionKind::kFund, j, 0};
    for (std::size_t s = 0; s < segs[j].size(); ++s) {
      if (segs[j][s].length > kEps && !HasPayer(segs[j][s], i)) {
        return {ActionKind::kJoin, j, s};
      }
    }
    return {};
  }

  // Executes user u's join of segment (file, seg) as a discrete step:
  // converting length L of a k-payer segment costs the joiner L/(k+1) and
  // refunds each incumbent L/(k(k+1)), leaving k+1 equal shares. The step
  // converts as much as the joiner's budget allows in one shot (joins need
  // no temporal interleaving — only funding shares costs by simultaneity).
  void ExecuteJoin(std::size_t u, std::size_t file, std::size_t seg_idx) {
    auto& seg = segs[file][seg_idx];
    const double k = static_cast<double>(seg.payers.size());
    const double s = Cost(file);
    const double conv =
        std::min(seg.length, budgets[u] * (k + 1.0) / s);
    if (conv <= 0.0) return;
    const double pay = conv * s / (k + 1.0);
    out->contributions(u, file) += pay;
    budgets[u] -= pay;
    out->spent[u] += pay;
    const double refund_each = conv * s / (k * (k + 1.0));
    std::vector<std::size_t> new_payers = seg.payers;
    for (std::size_t payer : new_payers) {
      out->contributions(payer, file) -= refund_each;
      budgets[payer] += refund_each;
      out->spent[payer] -= refund_each;
    }
    seg.length -= conv;
    new_payers.insert(
        std::lower_bound(new_payers.begin(), new_payers.end(), u), u);
    // Invalidates `seg`; do not touch it afterwards.
    Append(segs[file], conv, std::move(new_payers));
  }

  // Runs joins to a fixpoint: every user whose top actionable item is a
  // join executes it immediately (user-id order for determinism); refunds
  // may re-activate earlier users, hence the outer loop. Bounded because
  // each full conversion permanently grows a segment's payer set and a
  // partial conversion exhausts a budget.
  void JoinCascade() {
    if (!options.enable_joining) return;
    const std::size_t cap =
        16 * (problem.num_users() + 1) * (problem.num_files() + 1) *
            (problem.num_users() + 1) +
        64;
    std::size_t steps = 0;
    bool changed = true;
    while (changed && steps < cap) {
      changed = false;
      for (std::size_t i = 0; i < problem.num_users(); ++i) {
        while (budgets[i] > kEps && steps < cap) {
          const Action a = PickAction(i);
          if (a.kind != ActionKind::kJoin) break;
          ExecuteJoin(i, a.file, a.segment);
          changed = true;
          ++steps;
        }
      }
    }
  }
};

}  // namespace

std::vector<double> MarketOutcome::CachedAmounts() const {
  std::vector<double> out(files.size());
  for (std::size_t j = 0; j < files.size(); ++j) {
    out[j] = files[j].TotalLength();
  }
  return out;
}

MarketOutcome RunBudgetMarket(const CachingProblem& problem,
                              const MarketOptions& options) {
  const std::size_t n = problem.num_users();
  const double each =
      n == 0 ? 0.0 : problem.capacity / static_cast<double>(n);
  return RunBudgetMarket(problem, std::vector<double>(n, each), options);
}

MarketOutcome RunBudgetMarket(const CachingProblem& problem,
                              std::vector<double> budgets,
                              const MarketOptions& options) {
  const std::size_t n = problem.num_users();
  const std::size_t m = problem.num_files();
  OPUS_CHECK_EQ(budgets.size(), n);
  for (double b : budgets) OPUS_CHECK_GE(b, 0.0);

  MarketOutcome out;
  out.files.resize(m);
  out.spent.assign(n, 0.0);
  out.contributions = Matrix(n, m, 0.0);

  MarketState state{problem, options, std::move(budgets),
                    std::vector<std::vector<SegState>>(m),
                    std::vector<double>(m, 0.0), &out};

  // Funding event loop: between events, every active user funds its top
  // not-yet-full desired file at unit rate; co-funders split the cost
  // evenly (a file funded by k users grows at rate k). Events are file
  // completions and budget exhaustions. Joins (FairRide) execute as
  // discrete steps between funding rounds. With idle-budget redistribution
  // the loop resumes after sated users donate their leftovers.
  std::size_t redistribution_rounds = 0;
  const std::size_t max_events = 8 * (n + m + 2) * (m + 1) + 16;
  for (std::size_t event = 0; event < max_events; ++event) {
    state.JoinCascade();

    std::vector<std::vector<std::size_t>> funders(m);
    bool any_active = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (state.budgets[i] <= kEps) continue;
      const Action a = state.PickAction(i);
      if (a.kind == ActionKind::kFund) {
        funders[a.file].push_back(i);
        any_active = true;
      }
      // A join target here is impossible: JoinCascade ran to fixpoint and
      // funding has not progressed since.
    }
    if (!any_active) {
      if (!options.redistribute_idle_budget ||
          redistribution_rounds > n + 1) {
        break;
      }
      ++redistribution_rounds;
      // Sated users (nothing actionable) donate; drained users with
      // outstanding desires receive equal shares.
      double pool = 0.0;
      std::vector<std::size_t> recipients;
      for (std::size_t i = 0; i < n; ++i) {
        const bool actionable =
            state.PickAction(i).kind != ActionKind::kNone;
        if (!actionable && state.budgets[i] > kEps) {
          pool += state.budgets[i];
          state.budgets[i] = 0.0;
        } else if (actionable && state.budgets[i] <= kEps) {
          recipients.push_back(i);
        }
      }
      if (pool <= kEps || recipients.empty()) break;
      const double share = pool / static_cast<double>(recipients.size());
      for (std::size_t i : recipients) state.budgets[i] += share;
      continue;
    }

    // A funder pays money at rate 1; k funders grow file j (fraction units)
    // at rate k / s_j.
    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < m; ++j) {
      if (funders[j].empty()) continue;
      dt = std::min(dt, (1.0 - state.cached[j]) * state.Cost(j) /
                            static_cast<double>(funders[j].size()));
    }
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t i : funders[j]) {
        dt = std::min(dt, state.budgets[i]);
      }
    }
    OPUS_CHECK(dt >= 0.0 && std::isfinite(dt));

    for (std::size_t j = 0; j < m; ++j) {
      if (funders[j].empty()) continue;
      const double grown = std::min(
          dt * static_cast<double>(funders[j].size()) / state.Cost(j),
          1.0 - state.cached[j]);
      if (grown <= 0.0) continue;
      state.cached[j] += grown;
      Append(state.segs[j], grown, funders[j]);
      const double share = grown * state.Cost(j) /
                           static_cast<double>(funders[j].size());
      for (std::size_t i : funders[j]) out.contributions(i, j) += share;
    }
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t i : funders[j]) {
        const double pay = std::min(dt, state.budgets[i]);
        state.budgets[i] -= pay;
        out.spent[i] += pay;
      }
    }
  }
  // Final cascade: the last funding event may have completed files whose
  // segments budget-holders still want to buy into.
  state.JoinCascade();

  // Export segments (dropping empties) in deterministic order.
  for (std::size_t j = 0; j < m; ++j) {
    for (const auto& s : state.segs[j]) {
      if (s.length > kEps) out.files[j].Add(s.length, s.payers);
    }
  }
  return out;
}

}  // namespace opus
