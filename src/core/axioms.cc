#include "core/axioms.h"

#include <algorithm>

#include "common/check.h"
#include "common/mathutil.h"

namespace opus {

Matrix EnvyMatrix(const CachingProblem& problem,
                  const AllocationResult& result) {
  const std::size_t n = problem.num_users();
  OPUS_CHECK_EQ(result.access.rows(), n);
  Matrix envy(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double own = Dot(problem.preferences.row(i), result.access.row(i));
    for (std::size_t k = 0; k < n; ++k) {
      if (k == i) continue;
      const double theirs =
          Dot(problem.preferences.row(i), result.access.row(k));
      envy(i, k) = std::max(0.0, theirs - own);
    }
  }
  return envy;
}

double MaxEnvy(const CachingProblem& problem,
               const AllocationResult& result) {
  const Matrix envy = EnvyMatrix(problem, result);
  double worst = 0.0;
  for (std::size_t i = 0; i < envy.rows(); ++i) {
    for (std::size_t k = 0; k < envy.cols(); ++k) {
      worst = std::max(worst, envy(i, k));
    }
  }
  return worst;
}

double MeanEnvy(const CachingProblem& problem,
                const AllocationResult& result) {
  const std::size_t n = problem.num_users();
  if (n < 2) return 0.0;
  const Matrix envy = EnvyMatrix(problem, result);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) total += envy(i, k);
  }
  return total / static_cast<double>(n * (n - 1));
}

}  // namespace opus
