#include "core/dynamics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/mathutil.h"
#include "core/utility.h"

namespace opus {
namespace {

// Candidate misreports around `truth_row` (same generator family as
// properties.cc's FindHarmfulDeviation, minus the harm requirement).
std::vector<double> CandidateLie(std::span<const double> truth_row,
                                 std::size_t m, int variant, Rng& rng) {
  std::vector<double> lie(truth_row.begin(), truth_row.end());
  switch (variant % 4) {
    case 0: {  // permute weights across the supported files
      std::vector<std::size_t> support;
      for (std::size_t j = 0; j < m; ++j) {
        if (lie[j] > 0.0) support.push_back(j);
      }
      if (support.size() >= 2) {
        std::vector<double> vals;
        for (std::size_t j : support) vals.push_back(lie[j]);
        rng.Shuffle(vals);
        for (std::size_t k = 0; k < support.size(); ++k) {
          lie[support[k]] = vals[k];
        }
      }
      break;
    }
    case 1: {  // multiplicative noise
      for (double& v : lie) {
        if (v > 0.0) v *= std::exp(rng.NextUniform(-1.5, 1.5));
      }
      break;
    }
    case 2: {  // all-in on one supported file
      std::vector<std::size_t> support;
      for (std::size_t j = 0; j < m; ++j) {
        if (lie[j] > 0.0) support.push_back(j);
      }
      std::fill(lie.begin(), lie.end(), 0.0);
      if (!support.empty()) {
        lie[support[rng.NextBounded(support.size())]] = 1.0;
      } else {
        lie[rng.NextBounded(m)] = 1.0;
      }
      break;
    }
    default: {  // fully random
      for (double& v : lie) v = rng.NextDouble();
      break;
    }
  }
  return lie;
}

}  // namespace

double BestResponseResult::TotalTruthful() const {
  return KahanSum(truthful_utilities);
}

double BestResponseResult::TotalFinal() const {
  return KahanSum(final_utilities);
}

double BestResponseResult::MaxVictimLoss() const {
  double loss = 0.0;
  for (std::size_t i = 0; i < truthful_utilities.size(); ++i) {
    loss = std::max(loss, truthful_utilities[i] - final_utilities[i]);
  }
  return loss;
}

BestResponseResult RunBestResponseDynamics(const CacheAllocator& allocator,
                                           const CachingProblem& truthful,
                                           Rng& rng,
                                           const BestResponseConfig& config) {
  OPUS_CHECK_GT(config.max_rounds, 0);
  const std::size_t n = truthful.num_users();
  const std::size_t m = truthful.num_files();

  BestResponseResult result;
  {
    const auto honest = allocator.Allocate(truthful);
    result.truthful_utilities = EvaluateUtilities(honest, truthful.preferences);
  }

  // `state` holds the current reported profile; it starts truthful.
  CachingProblem state = truthful;
  std::vector<double> current_utils = result.truthful_utilities;

  for (int round = 0; round < config.max_rounds; ++round) {
    result.rounds = round + 1;
    bool any_change = false;
    for (std::size_t i = 0; i < n; ++i) {
      const double baseline = current_utils[i];
      double best_gain = config.improvement_tol;
      std::vector<double> best_lie;
      std::vector<double> best_utils;
      for (int t = 0; t < config.search_trials; ++t) {
        const auto lie =
            CandidateLie(truthful.preferences.row(i), m, t, rng);
        double total = 0.0;
        for (double v : lie) total += v;
        if (total <= 0.0) continue;
        const CachingProblem trial = state.WithMisreport(i, lie);
        const auto r = allocator.Allocate(trial);
        const auto utils = EvaluateUtilities(r, truthful.preferences);
        if (utils[i] - baseline > best_gain) {
          best_gain = utils[i] - baseline;
          best_lie = lie;
          best_utils = utils;
        }
      }
      if (!best_lie.empty()) {
        state = state.WithMisreport(i, best_lie);
        current_utils = best_utils;
        any_change = true;
      }
    }
    if (!any_change) {
      result.converged = true;
      break;
    }
  }

  result.reported = state.preferences;
  result.final_utilities = current_utils;
  for (std::size_t i = 0; i < n; ++i) {
    double diff = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      diff += std::fabs(state.preferences(i, j) -
                        truthful.preferences(i, j));
    }
    if (diff > 1e-6) ++result.manipulators;
  }
  return result;
}

}  // namespace opus
