#include "core/fairride.h"

#include "common/mathutil.h"
#include "core/market.h"
#include "core/utility.h"

namespace opus {

AllocationResult FairRideAllocator::Allocate(
    const CachingProblem& problem) const {
  const std::size_t n = problem.num_users();
  const std::size_t m = problem.num_files();

  // Joining enabled: rational truthful users buy into already-cached
  // segments to escape blocking, which is what preserves FairRide's
  // isolation guarantee (see market.h).
  MarketOptions options;
  options.enable_joining = true;
  const MarketOutcome market = RunBudgetMarket(problem, options);

  AllocationResult r;
  r.policy = name();
  r.file_alloc = market.CachedAmounts();
  r.access = Matrix(n, m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      r.access(i, j) = market.files[j].FairRideAccess(i);
    }
  }
  r.taxes.assign(n, 0.0);
  // FairRide has no uniform per-user blocking probability (blocking is
  // per-portion); report the utility-weighted expected blocking against the
  // reported preferences for observability.
  r.blocking.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double full = FullAccessUtility(problem.preferences.row(i),
                                          r.file_alloc);
    const double effective = Dot(problem.preferences.row(i), r.access.row(i));
    r.blocking[i] = full > 0.0 ? 1.0 - effective / full : 0.0;
  }
  r.copy_footprint = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    r.copy_footprint += r.file_alloc[j] * problem.FileSize(j);
  }
  r.reported_utilities = EvaluateUtilities(r, problem.preferences);
  return r;
}

}  // namespace opus
