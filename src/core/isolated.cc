#include "core/isolated.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "core/utility.h"

namespace opus {

AllocationResult IsolatedAllocator::Allocate(
    const CachingProblem& problem) const {
  const std::size_t n = problem.num_users();
  const std::size_t m = problem.num_files();
  double weight_total = 0.0;
  if (!user_weights_.empty()) {
    OPUS_CHECK_EQ(user_weights_.size(), n);
    for (double w : user_weights_) {
      OPUS_CHECK_GT(w, 0.0);
      weight_total += w;
    }
  }
  auto budget_for = [&](std::size_t i) {
    if (n == 0) return 0.0;
    const double share = user_weights_.empty()
                             ? 1.0 / static_cast<double>(n)
                             : user_weights_[i] / weight_total;
    return problem.capacity * share;
  };

  AllocationResult r;
  r.policy = name();
  r.shared = false;
  r.file_alloc.assign(m, 0.0);
  r.taxes.assign(n, 0.0);
  r.blocking.assign(n, 0.0);

  if (!problem.dense_backed()) {
    // Lean sparse path: the greedy per-user fill runs on CSR rows only and
    // no N x M matrices are built. access(i, j) would equal
    // per_user_copies(i, j); both stay empty, and reported utilities are
    // the users' own-partition utilities.
    const CsrMatrix& csr = problem.PreferencesCsr();
    r.reported_utilities.assign(n, 0.0);
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < n; ++i) {
      const auto cols = csr.row_cols(i);
      const auto vals = csr.row_vals(i);
      order.clear();
      for (std::size_t k = 0; k < cols.size(); ++k) {
        if (vals[k] > 0.0) order.push_back(k);
      }
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return vals[a] / problem.FileSize(cols[a]) >
                                vals[b] / problem.FileSize(cols[b]);
                       });
      double remaining = budget_for(i);
      for (std::size_t k : order) {
        if (remaining <= 0.0) break;
        const std::size_t j = cols[k];
        const double take = std::min(1.0, remaining / problem.FileSize(j));
        r.reported_utilities[i] += take * vals[k];
        r.file_alloc[j] = std::max(r.file_alloc[j], take);
        r.copy_footprint += take * problem.FileSize(j);
        remaining -= take * problem.FileSize(j);
      }
    }
    return r;
  }

  r.access = Matrix(n, m, 0.0);
  r.per_user_copies = Matrix(n, m, 0.0);

  for (std::size_t i = 0; i < n; ++i) {
    const auto prefs = problem.preferences.row(i);
    std::vector<std::size_t> order(m);
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return prefs[a] / problem.FileSize(a) >
                              prefs[b] / problem.FileSize(b);
                     });
    double remaining = budget_for(i);
    for (std::size_t j : order) {
      if (remaining <= 0.0 || prefs[j] <= 0.0) break;
      const double take = std::min(1.0, remaining / problem.FileSize(j));
      r.per_user_copies(i, j) = take;
      r.access(i, j) = take;  // only the own copy is readable
      remaining -= take * problem.FileSize(j);
    }
  }

  // Deduplicated cluster view: one physical copy holds the largest cached
  // fraction of the file across users; the copy footprint tracks what the
  // naive copy-per-user layout would have used.
  for (std::size_t j = 0; j < m; ++j) {
    double max_frac = 0.0;
    double copies = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      max_frac = std::max(max_frac, r.per_user_copies(i, j));
      copies += r.per_user_copies(i, j);
    }
    r.file_alloc[j] = max_frac;
    r.copy_footprint += copies * problem.FileSize(j);
  }

  r.reported_utilities = EvaluateUtilities(r, problem.preferences);
  return r;
}

}  // namespace opus
