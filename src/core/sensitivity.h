// Sensitivity of an allocation policy to preference estimation error.
//
// The deployed system never sees true preferences — it sees windowed access
// frequencies (Sec. V-A), which are noisy estimates. This module perturbs a
// problem's preferences with multiplicative noise (the natural error model
// for count-based estimation), re-runs the policy, and reports how much the
// outcome moved: utility deltas against TRUE preferences, allocation drift,
// and how often OpuS's sharing verdict flips. bench_ablation_noise uses it
// to answer "how long must the learning window be before the mechanism's
// behaviour stabilizes".
#pragma once

#include <vector>

#include "common/rng.h"
#include "core/allocator.h"

namespace opus {

struct SensitivityResult {
  // Mean over trials of max_i |U_i(noisy) - U_i(exact)| (true preferences).
  double mean_max_utility_delta = 0.0;
  // Mean over trials of the L1 allocation drift sum_j |a_j' - a_j|.
  double mean_allocation_drift = 0.0;
  // Fraction of trials where the sharing verdict differed from exact.
  double verdict_flip_rate = 0.0;
  // Worst utility seen for any user across trials, relative to its exact
  // utility (most-negative delta; 0 if nobody ever lost).
  double worst_user_regression = 0.0;
  int trials = 0;
};

// Runs `trials` perturbations: each preference entry is scaled by
// exp(sigma * N(0,1)) and rows renormalized — the log-normal error of
// estimating frequencies from finite samples. Deterministic given `rng`.
SensitivityResult MeasureNoiseSensitivity(const CacheAllocator& allocator,
                                          const CachingProblem& exact,
                                          double sigma, Rng& rng,
                                          int trials = 20);

// Relates a sampling-window length to the equivalent noise sigma: a
// preference estimated from k observations has a relative standard error of
// ~1/sqrt(k) (Poisson counts), so sigma ~ 1/sqrt(p_ij * window) for the
// files that matter. Helper for interpreting the ablation's x-axis.
double SigmaForWindow(double preference_mass, std::size_t window_accesses);

}  // namespace opus
