#include "core/vcg_classic.h"

#include <algorithm>

#include "common/check.h"
#include "common/mathutil.h"
#include "core/isolated.h"
#include "core/utility.h"
#include "solver/knapsack.h"

namespace opus {
namespace {

constexpr double kIgTolerance = 1e-9;

}  // namespace

AllocationResult VcgClassicAllocator::Allocate(
    const CachingProblem& problem) const {
  const std::size_t n = problem.num_users();
  const std::size_t m = problem.num_files();

  // Stage 1: utilitarian welfare maximization.
  std::vector<double> total_weight(m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = problem.preferences.row(i);
    for (std::size_t j = 0; j < m; ++j) total_weight[j] += row[j];
  }
  const KnapsackSolution star = SolveFractionalKnapsack(
      total_weight, problem.capacity, problem.file_sizes);

  std::vector<double> utilities(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    utilities[i] =
        FullAccessUtility(problem.preferences.row(i), star.allocation);
  }

  // Clarke pivot taxes: solve each leave-one-out welfare problem.
  std::vector<double> taxes(n, 0.0);
  std::vector<double> blocking(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> weight_wo(m, 0.0);
    const auto row = problem.preferences.row(i);
    for (std::size_t j = 0; j < m; ++j) weight_wo[j] = total_weight[j] - row[j];
    const KnapsackSolution wo = SolveFractionalKnapsack(
        weight_wo, problem.capacity, problem.file_sizes);
    // Others' welfare at a* equals total welfare minus user i's utility.
    const double others_at_star = star.value - utilities[i];
    taxes[i] = std::max(0.0, wo.value - others_at_star);
    blocking[i] =
        utilities[i] > 0.0 ? Clamp(taxes[i] / utilities[i], 0.0, 1.0) : 0.0;
  }

  // Stage 2: isolation-guarantee gate.
  const std::vector<double> isolated = IsolatedUtilities(problem);
  bool ig_holds = true;
  for (std::size_t i = 0; i < n; ++i) {
    const double net = utilities[i] * (1.0 - blocking[i]);
    if (net < isolated[i] - kIgTolerance) {
      ig_holds = false;
      break;
    }
  }
  if (!ig_holds) {
    AllocationResult r = IsolatedAllocator().Allocate(problem);
    r.policy = name();
    r.taxes = std::move(taxes);  // keep the stage-1 taxes for observability
    return r;
  }

  AllocationResult r;
  r.policy = name();
  r.file_alloc = star.allocation;
  r.access = Matrix(n, m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      r.access(i, j) = (1.0 - blocking[i]) * r.file_alloc[j];
    }
  }
  r.taxes = std::move(taxes);
  r.blocking = std::move(blocking);
  for (std::size_t j = 0; j < m; ++j) {
    r.copy_footprint += r.file_alloc[j] * problem.FileSize(j);
  }
  r.reported_utilities = EvaluateUtilities(r, problem.preferences);
  return r;
}

}  // namespace opus
