#include "core/segments.h"

#include <algorithm>

#include "common/check.h"

namespace opus {

bool Segment::HasPayer(std::size_t user) const {
  return std::binary_search(payers.begin(), payers.end(), user);
}

void FileSegments::Add(double length, std::vector<std::size_t> payers) {
  OPUS_CHECK_GE(length, 0.0);
  if (length <= 0.0) return;
  OPUS_CHECK(!payers.empty());
  OPUS_CHECK(std::is_sorted(payers.begin(), payers.end()));
  if (!segments_.empty() && segments_.back().payers == payers) {
    segments_.back().length += length;
    return;
  }
  segments_.push_back(Segment{length, std::move(payers)});
}

double FileSegments::TotalLength() const {
  double total = 0.0;
  for (const auto& s : segments_) total += s.length;
  return total;
}

double FileSegments::PaidLength(std::size_t user) const {
  double total = 0.0;
  for (const auto& s : segments_) {
    if (s.HasPayer(user)) total += s.length;
  }
  return total;
}

double FileSegments::FairRideAccess(std::size_t user) const {
  double access = 0.0;
  for (const auto& s : segments_) {
    if (s.HasPayer(user)) {
      access += s.length;
    } else {
      const auto n = static_cast<double>(s.payers.size());
      access += s.length * n / (n + 1.0);
    }
  }
  return access;
}

}  // namespace opus
