// Globally optimal (utilitarian) allocation — the "optimal LFU" reference of
// Fig. 8: cache the files with the largest aggregate preference mass,
// maximizing the cluster-wide expected hit ratio with full shared access and
// no blocking. Pareto-efficient but provides neither isolation guarantee nor
// strategy-proofness.
#pragma once

#include "core/allocator.h"

namespace opus {

class GlobalOptimalAllocator final : public CacheAllocator {
 public:
  std::string name() const override { return "optimal"; }
  AllocationResult Allocate(const CachingProblem& problem) const override;
};

}  // namespace opus
