// Isolated caches (Sec. III-B): the cache is split into N private partitions
// of size C/N; each user greedily caches its most-preferred files in its own
// partition. Trivially isolation-guaranteeing and strategy-proof, but
// inefficient: shared files are duplicated and access to files outside the
// own partition is fully blocked (the implementation keeps one physical copy
// and blocks non-owners, per the paper's Sec. V implementation note).
#pragma once

#include "core/allocator.h"

namespace opus {

class IsolatedAllocator final : public CacheAllocator {
 public:
  // `user_weights` (optional; all positive) sizes partitions proportionally
  // — C * w_i / sum(w) instead of C / N (the priority-tenant extension).
  explicit IsolatedAllocator(std::vector<double> user_weights = {})
      : user_weights_(std::move(user_weights)) {}

  std::string name() const override { return "isolated"; }
  AllocationResult Allocate(const CachingProblem& problem) const override;

 private:
  std::vector<double> user_weights_;
};

}  // namespace opus
