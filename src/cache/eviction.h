// Block eviction policies for the online (unmanaged) cache mode.
//
// Alluxio's default eviction is LRU (Sec. VI-A, "LRU: By default, Alluxio
// uses the LRU policy to evict cached files"); LFU is the frequency-based
// counterpart. Both optimize global hit ratio and provide no isolation —
// the failure mode Fig. 5 demonstrates and OpuS fixes.
//
// Two tiers of implementation live in the tree:
//  - EvictionKind selects the intrusive O(1) policies built into the flat
//    BlockStore (the production data plane — no per-touch allocation).
//  - The virtual EvictionPolicy classes below are the std-container
//    reference implementations: TieredStore still uses them (its tiers are
//    not on the per-event hot path), and the property tests / data-plane
//    bench pit the flat store against them op-for-op.
#pragma once

#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "cache/types.h"

namespace opus::cache {

// Which eviction order a store maintains. The flat BlockStore implements
// both with intrusive links; MakeEvictionPolicy builds the matching
// reference implementation.
enum class EvictionKind { kLru, kLfu };

// Parses "lru" | "lfu" (checks on anything else).
EvictionKind ParseEvictionKind(const std::string& name);

// Canonical name of a kind ("lru" | "lfu").
const char* EvictionKindName(EvictionKind kind);

// Tracks block temperature and nominates eviction victims. The policy only
// orders blocks; the BlockStore decides when to evict and skips pinned
// blocks by removing them from the policy.
class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  virtual std::string name() const = 0;

  // Block entered the cache.
  virtual void OnInsert(BlockId block) = 0;

  // Block was read.
  virtual void OnAccess(BlockId block) = 0;

  // Block left the cache (evicted or explicitly erased).
  virtual void OnRemove(BlockId block) = 0;

  // The current victim candidate, or nullopt when the policy tracks no
  // blocks. Does not remove the block.
  virtual std::optional<BlockId> Victim() const = 0;

  // Number of tracked blocks.
  virtual std::size_t size() const = 0;
};

// Least-recently-used: victims are the blocks idle the longest.
class LruPolicy final : public EvictionPolicy {
 public:
  std::string name() const override { return "lru"; }
  void OnInsert(BlockId block) override;
  void OnAccess(BlockId block) override;
  void OnRemove(BlockId block) override;
  std::optional<BlockId> Victim() const override;
  std::size_t size() const override { return index_.size(); }

 private:
  void Touch(BlockId block);

  std::list<BlockId> order_;  // front = least recent
  std::unordered_map<BlockId, std::list<BlockId>::iterator> index_;
};

// Least-frequently-used with FIFO tie-breaking among equal frequencies.
class LfuPolicy final : public EvictionPolicy {
 public:
  std::string name() const override { return "lfu"; }
  void OnInsert(BlockId block) override;
  void OnAccess(BlockId block) override;
  void OnRemove(BlockId block) override;
  std::optional<BlockId> Victim() const override;
  std::size_t size() const override { return entries_.size(); }

 private:
  struct Key {
    std::uint64_t freq;
    std::uint64_t seq;  // insertion order among equal frequencies
    bool operator<(const Key& o) const {
      return freq != o.freq ? freq < o.freq : seq < o.seq;
    }
  };
  void Bump(BlockId block);

  std::map<Key, BlockId> by_key_;  // ordered: begin() = victim
  std::unordered_map<BlockId, Key> entries_;
  std::uint64_t next_seq_ = 0;
};

// Factory by name ("lru" | "lfu").
std::unique_ptr<EvictionPolicy> MakeEvictionPolicy(const std::string& name);

}  // namespace opus::cache
