// ReferenceBlockStore — the pre-optimization block store kept verbatim as
// an executable specification: an unordered_map for bytes, an
// unordered_set for pins, and a virtual EvictionPolicy (std::list LRU /
// std::map LFU) for ordering.
//
// The flat BlockStore must stay bit-identical to this class in every
// observable: residency, victim sequence, byte accounting, return values.
// The property tests drive both through randomized op sequences, and
// bench_dataplane_throughput uses it as the timing baseline for the
// pre-change data plane. It implements the same re-insert-refreshes-recency
// contract as BlockStore (the one semantic fix this PR made to both).
//
// Do not use on the hot path — every touch allocates (list splice / map
// rebalance) and every lookup is 2-4 hash probes.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/eviction.h"
#include "cache/types.h"
#include "obs/metrics.h"

namespace opus::cache {

class ReferenceBlockStore {
 public:
  ReferenceBlockStore(std::uint64_t capacity_bytes,
                      std::unique_ptr<EvictionPolicy> policy);

  bool Insert(BlockId block, std::uint64_t bytes);
  bool Access(BlockId block);
  bool Contains(BlockId block) const;
  void Erase(BlockId block);
  bool Pin(BlockId block);
  void Unpin(BlockId block);
  bool IsPinned(BlockId block) const;

  std::uint64_t capacity_bytes() const { return capacity_; }
  std::uint64_t used_bytes() const { return used_; }
  std::uint64_t pinned_bytes() const { return pinned_bytes_; }
  std::size_t num_blocks() const { return blocks_.size(); }
  std::uint64_t evictions() const { return evictions_; }

  std::vector<BlockId> ResidentBlocks() const;

  void set_eviction_counter(obs::Counter* counter) {
    eviction_counter_ = counter;
  }

 private:
  bool EvictOne();

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::uint64_t pinned_bytes_ = 0;
  std::uint64_t evictions_ = 0;
  std::unique_ptr<EvictionPolicy> policy_;
  obs::Counter* eviction_counter_ = nullptr;  // borrowed, optional
  std::unordered_map<BlockId, std::uint64_t> blocks_;  // block -> bytes
  std::unordered_set<BlockId> pinned_;
};

}  // namespace opus::cache
