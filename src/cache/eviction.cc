#include "cache/eviction.h"

#include "common/check.h"

namespace opus::cache {

// ----------------------------------------------------------------- LRU

void LruPolicy::OnInsert(BlockId block) {
  OPUS_CHECK(index_.find(block) == index_.end());
  order_.push_back(block);
  index_[block] = std::prev(order_.end());
}

void LruPolicy::OnAccess(BlockId block) { Touch(block); }

void LruPolicy::Touch(BlockId block) {
  const auto it = index_.find(block);
  if (it == index_.end()) return;  // untracked (e.g. pinned) blocks are fine
  order_.erase(it->second);
  order_.push_back(block);
  it->second = std::prev(order_.end());
}

void LruPolicy::OnRemove(BlockId block) {
  const auto it = index_.find(block);
  if (it == index_.end()) return;
  order_.erase(it->second);
  index_.erase(it);
}

std::optional<BlockId> LruPolicy::Victim() const {
  if (order_.empty()) return std::nullopt;
  return order_.front();
}

// ----------------------------------------------------------------- LFU

void LfuPolicy::OnInsert(BlockId block) {
  OPUS_CHECK(entries_.find(block) == entries_.end());
  const Key key{1, next_seq_++};
  entries_[block] = key;
  by_key_[key] = block;
}

void LfuPolicy::OnAccess(BlockId block) { Bump(block); }

void LfuPolicy::Bump(BlockId block) {
  const auto it = entries_.find(block);
  if (it == entries_.end()) return;
  by_key_.erase(it->second);
  it->second.freq += 1;
  it->second.seq = next_seq_++;
  by_key_[it->second] = block;
}

void LfuPolicy::OnRemove(BlockId block) {
  const auto it = entries_.find(block);
  if (it == entries_.end()) return;
  by_key_.erase(it->second);
  entries_.erase(it);
}

std::optional<BlockId> LfuPolicy::Victim() const {
  if (by_key_.empty()) return std::nullopt;
  return by_key_.begin()->second;
}

std::unique_ptr<EvictionPolicy> MakeEvictionPolicy(const std::string& name) {
  if (name == "lru") return std::make_unique<LruPolicy>();
  if (name == "lfu") return std::make_unique<LfuPolicy>();
  OPUS_CHECK_MSG(false, "unknown eviction policy: " << name);
  return nullptr;
}

EvictionKind ParseEvictionKind(const std::string& name) {
  if (name == "lru") return EvictionKind::kLru;
  if (name == "lfu") return EvictionKind::kLfu;
  OPUS_CHECK_MSG(false, "unknown eviction policy: " << name);
  return EvictionKind::kLru;
}

const char* EvictionKindName(EvictionKind kind) {
  return kind == EvictionKind::kLru ? "lru" : "lfu";
}

}  // namespace opus::cache
