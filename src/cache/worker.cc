#include "cache/worker.h"

namespace opus::cache {

Worker::Worker(WorkerId id, std::uint64_t capacity_bytes,
               std::unique_ptr<EvictionPolicy> policy)
    : id_(id), store_(capacity_bytes, std::move(policy)) {}

}  // namespace opus::cache
