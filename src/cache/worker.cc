#include "cache/worker.h"

namespace opus::cache {

Worker::Worker(WorkerId id, std::uint64_t capacity_bytes,
               EvictionKind eviction)
    : id_(id), store_(capacity_bytes, eviction) {}

}  // namespace opus::cache
