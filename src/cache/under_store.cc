#include "cache/under_store.h"

#include "common/check.h"
#include "common/mathutil.h"

namespace opus::cache {

double UnderStore::ReadLatency(std::uint64_t bytes) const {
  return config_.seek_latency_sec +
         static_cast<double>(bytes) / config_.bandwidth_bytes_per_sec;
}

double UnderStore::Read(std::uint64_t bytes) {
  obs::ScopedSpan span(spans_, "under.read");
  bytes_read_ += bytes;
  ++reads_;
  if (reads_counter_ != nullptr) {
    reads_counter_->Increment();
    read_bytes_counter_->Increment(bytes);
  }
  const double latency = ReadLatency(bytes);
  // Formatting allocates; skip it entirely when the span is muted.
  if (span.active()) {
    span.AddAttr("bytes", std::to_string(bytes));
    span.AddAttr("latency_sec", obs::FormatDouble(latency));
  }
  return latency;
}

void UnderStore::AttachMetrics(obs::MetricsRegistry* registry) {
  reads_counter_ = &registry->counter("under.reads");
  read_bytes_counter_ = &registry->counter("under.bytes_read");
}

void UnderStore::AttachSpans(obs::SpanTrace* spans) { spans_ = spans; }

double UnderStore::BlockingDelay(std::uint64_t bytes,
                                 double block_probability) const {
  return Clamp(block_probability, 0.0, 1.0) * ReadLatency(bytes);
}

}  // namespace opus::cache
