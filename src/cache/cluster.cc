#include "cache/cluster.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/mathutil.h"

namespace opus::cache {

CacheCluster::CacheCluster(ClusterConfig config, Catalog catalog)
    : config_(config), catalog_(std::move(catalog)),
      under_store_(config.under_store) {
  OPUS_CHECK_GT(config_.num_workers, 0u);
  OPUS_CHECK_GT(config_.num_users, 0u);
  const std::uint64_t per_worker =
      config_.cache_capacity_bytes / config_.num_workers;
  for (WorkerId w = 0; w < config_.num_workers; ++w) {
    workers_.push_back(std::make_unique<Worker>(
        w, per_worker, MakeEvictionPolicy(config_.eviction_policy)));
  }
  worker_alive_.assign(config_.num_workers, true);
  if (config_.placement == "consistent") {
    ring_.emplace(config_.num_workers);
  } else {
    OPUS_CHECK_MSG(config_.placement == "modulo",
                   "unknown placement policy: " << config_.placement);
  }
}

void CacheCluster::FailWorker(WorkerId worker) {
  OPUS_CHECK_LT(worker, workers_.size());
  if (!worker_alive_[worker]) return;
  worker_alive_[worker] = false;
  // The crash loses all cached state: restart the worker process empty so
  // recovery begins from a clean store.
  const std::uint64_t capacity = workers_[worker]->store().capacity_bytes();
  workers_[worker] = std::make_unique<Worker>(
      worker, capacity, MakeEvictionPolicy(config_.eviction_policy));
}

void CacheCluster::RecoverWorker(WorkerId worker) {
  OPUS_CHECK_LT(worker, workers_.size());
  worker_alive_[worker] = true;
}

bool CacheCluster::IsWorkerAlive(WorkerId worker) const {
  OPUS_CHECK_LT(worker, workers_.size());
  return worker_alive_[worker];
}

std::size_t CacheCluster::num_alive_workers() const {
  std::size_t alive = 0;
  for (bool a : worker_alive_) alive += a ? 1 : 0;
  return alive;
}

Worker& CacheCluster::WorkerFor(BlockId block) {
  // Placement spreads every file across workers, which is what makes
  // per-worker capacities behave like one cluster-wide pool.
  const WorkerId w =
      ring_ ? ring_->Place(block)
            : ModuloPlace(block, static_cast<std::uint32_t>(workers_.size()));
  return *workers_[w];
}

const Worker& CacheCluster::WorkerFor(BlockId block) const {
  const WorkerId w =
      ring_ ? ring_->Place(block)
            : ModuloPlace(block, static_cast<std::uint32_t>(workers_.size()));
  return *workers_[w];
}

double CacheCluster::MemoryLatency(std::uint64_t bytes) const {
  return static_cast<double>(bytes) / config_.memory_bandwidth_bytes_per_sec;
}

ReadResult CacheCluster::Read(UserId user, FileId file) {
  OPUS_CHECK_LT(user, config_.num_users);
  const FileInfo& info = catalog_.Get(file);

  ReadResult r;
  r.bytes_total = info.size_bytes;

  for (std::uint32_t idx = 0; idx < info.num_blocks; ++idx) {
    const BlockId block = MakeBlockId(file, idx);
    const std::uint64_t bytes = info.BlockBytes(idx);
    Worker& worker = WorkerFor(block);
    if (worker_alive_[worker.id()] && worker.store().Access(block)) {
      r.bytes_from_memory += bytes;
    } else {
      r.bytes_from_disk += bytes;
      if (!managed_ && worker_alive_[worker.id()]) {
        // Cache-on-read: pull the block in, evicting per policy.
        worker.store().Insert(block, bytes);
      }
    }
  }
  r.latency_sec = MemoryLatency(r.bytes_from_memory);
  if (r.bytes_from_disk > 0) {
    r.latency_sec += under_store_.Read(r.bytes_from_disk);
  }
  r.memory_fraction = info.size_bytes == 0
                          ? 0.0
                          : static_cast<double>(r.bytes_from_memory) /
                                static_cast<double>(info.size_bytes);

  // Managed-mode blocking: the master injects the expected delay
  // f * T_d(bytes served from memory) and the metric charges a fractional
  // miss of the same probability (Sec. VI "Metric").
  double unblocked = 1.0;
  if (!unblocked_share_.empty()) {
    unblocked = Clamp(unblocked_share_(user, file), 0.0, 1.0);
  }
  r.blocking_probability = 1.0 - unblocked;
  if (r.blocking_probability > 0.0 && r.bytes_from_memory > 0) {
    r.latency_sec += under_store_.BlockingDelay(r.bytes_from_memory,
                                                r.blocking_probability);
  }
  r.effective_hit = r.memory_fraction * unblocked;
  return r;
}

void CacheCluster::ApplyAllocation(const std::vector<double>& file_fractions) {
  OPUS_CHECK_EQ(file_fractions.size(), catalog_.size());
  managed_ = true;
  ++epoch_;

  // Desired block set: the prefix of each file covering the allocated
  // fraction (rounded to nearest block).
  std::vector<CacheUpdate> updates(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    updates[w].worker = static_cast<WorkerId>(w);
    updates[w].epoch = epoch_;
  }

  for (FileId f = 0; f < catalog_.size(); ++f) {
    const FileInfo& info = catalog_.Get(f);
    const double frac = Clamp(file_fractions[f], 0.0, 1.0);
    // Floor-round with a 1e-6 epsilon: absorbs solver residue on an
    // intended-integral block count while still flooring true fractions,
    // so pinned bytes never exceed what the allocator budgeted.
    const auto want = static_cast<std::uint32_t>(
        std::floor(frac * static_cast<double>(info.num_blocks) + 1e-6));
    for (std::uint32_t idx = 0; idx < info.num_blocks; ++idx) {
      const BlockId block = MakeBlockId(f, idx);
      Worker& worker = WorkerFor(block);
      auto& up = updates[worker.id()];
      if (idx < want) {
        if (!worker.store().Contains(block)) up.load.push_back(block);
        up.pin.push_back(block);
      } else {
        up.unpin.push_back(block);
        // Desired set is exact in managed mode: drop surplus blocks.
        if (worker.store().Contains(block)) worker.store().Erase(block);
      }
    }
  }

  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (!worker_alive_[w]) continue;  // retried on the next reallocation
    auto& up = updates[w];
    workers_[w]->Apply(up, [&](BlockId b) {
      return catalog_.Get(BlockFile(b)).BlockBytes(BlockIndex(b));
    });
    ++cp_stats_.cache_updates;
    cp_stats_.blocks_pinned += up.pin.size();
    cp_stats_.blocks_unpinned += up.unpin.size();
    cp_stats_.blocks_loaded += up.load.size();
    // Loading from the under store costs disk reads (accounted centrally).
    for (BlockId b : up.load) {
      under_store_.Read(catalog_.Get(BlockFile(b)).BlockBytes(BlockIndex(b)));
    }
  }
}

void CacheCluster::SetAccessModel(Matrix unblocked_share) {
  if (!unblocked_share.empty()) {
    OPUS_CHECK_EQ(unblocked_share.rows(), config_.num_users);
    OPUS_CHECK_EQ(unblocked_share.cols(), catalog_.size());
  }
  unblocked_share_ = std::move(unblocked_share);
  ++cp_stats_.blocking_updates;
}

void CacheCluster::SetUnmanaged() {
  managed_ = false;
  unblocked_share_ = Matrix();
  for (auto& worker : workers_) {
    for (BlockId b : worker->store().ResidentBlocks()) {
      worker->store().Unpin(b);
    }
  }
}

double CacheCluster::ResidentFraction(FileId file) const {
  const FileInfo& info = catalog_.Get(file);
  std::uint64_t resident = 0;
  for (std::uint32_t idx = 0; idx < info.num_blocks; ++idx) {
    const BlockId block = MakeBlockId(file, idx);
    const Worker& worker = WorkerFor(block);
    if (worker_alive_[worker.id()] && worker.store().Contains(block)) {
      resident += info.BlockBytes(idx);
    }
  }
  return info.size_bytes == 0
             ? 0.0
             : static_cast<double>(resident) /
                   static_cast<double>(info.size_bytes);
}

std::uint64_t CacheCluster::UsedBytes() const {
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w->store().used_bytes();
  return total;
}

std::uint64_t CacheCluster::total_evictions() const {
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w->store().evictions();
  return total;
}

}  // namespace opus::cache
