#include "cache/cluster.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/mathutil.h"

namespace opus::cache {
namespace {

// Fixed log-spaced latency buckets (seconds): deterministic exports require
// bucket bounds chosen once, not derived from observed data.
std::vector<double> LatencyBounds() {
  return {1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
}

}  // namespace

CacheCluster::CacheCluster(ClusterConfig config, Catalog catalog)
    : config_(config), catalog_(std::move(catalog)),
      under_store_(config.under_store),
      spans_(obs::SpanTraceConfig{config.span_sample_every,
                                  config.span_capacity}),
      eviction_kind_(ParseEvictionKind(config.eviction_policy)) {
  OPUS_CHECK_GT(config_.num_workers, 0u);
  OPUS_CHECK_GT(config_.num_users, 0u);
  const std::uint64_t per_worker =
      config_.cache_capacity_bytes / config_.num_workers;
  for (WorkerId w = 0; w < config_.num_workers; ++w) {
    workers_.push_back(
        std::make_unique<Worker>(w, per_worker, eviction_kind_));
  }
  worker_alive_.assign(config_.num_workers, true);
  pinned_prefix_.assign(catalog_.size(), 0);
  if (config_.placement == "consistent") {
    ring_.emplace(config_.num_workers);
  } else {
    OPUS_CHECK_MSG(config_.placement == "modulo",
                   "unknown placement policy: " << config_.placement);
  }
  BuildPlacementCache();
  InitObservability();
}

void CacheCluster::BuildPlacementCache() {
  file_offset_.assign(catalog_.size() + 1, 0);
  for (FileId f = 0; f < catalog_.size(); ++f) {
    file_offset_[f + 1] = file_offset_[f] + catalog_.Get(f).num_blocks;
  }
  block_worker_.resize(file_offset_.back());
  for (FileId f = 0; f < catalog_.size(); ++f) {
    const FileInfo& info = catalog_.Get(f);
    for (std::uint32_t idx = 0; idx < info.num_blocks; ++idx) {
      const BlockId block = MakeBlockId(f, idx);
      block_worker_[file_offset_[f] + idx] =
          ring_ ? ring_->Place(block)
                : ModuloPlace(block,
                              static_cast<std::uint32_t>(workers_.size()));
    }
  }
}

void CacheCluster::InitObservability() {
  under_store_.AttachMetrics(&metrics_);
  under_store_.AttachSpans(&spans_);
  // Bounded-buffer data loss must be visible in the metric export, not
  // only on the trace objects.
  trace_.AttachDropCounter(&metrics_.counter("obs.trace.dropped"));
  spans_.AttachDropCounter(&metrics_.counter("obs.spans.dropped"));
  read_latency_hist_ =
      &metrics_.histogram("cluster.read.latency_sec", LatencyBounds());
  worker_counters_.resize(workers_.size());
  for (WorkerId w = 0; w < workers_.size(); ++w) {
    const std::string p = "cluster.worker." + std::to_string(w) + ".";
    WorkerCounters& c = worker_counters_[w];
    c.mem_hits = &metrics_.counter(p + "mem_hits");
    c.mem_hit_bytes = &metrics_.counter(p + "mem_hit_bytes");
    c.misses = &metrics_.counter(p + "misses");
    c.miss_bytes = &metrics_.counter(p + "miss_bytes");
    c.pins = &metrics_.counter(p + "pins");
    c.unpins = &metrics_.counter(p + "unpins");
    c.loads = &metrics_.counter(p + "loads");
    c.pin_failures = &metrics_.counter(p + "pin_failures");
    c.failures = &metrics_.counter(p + "failures");
    workers_[w]->store().set_eviction_counter(
        &metrics_.counter(p + "evictions"));
  }
  user_counters_.resize(config_.num_users);
  for (UserId u = 0; u < config_.num_users; ++u) {
    const std::string p = "cluster.user." + std::to_string(u) + ".";
    UserCounters& c = user_counters_[u];
    c.reads = &metrics_.counter(p + "reads");
    c.mem_bytes = &metrics_.counter(p + "mem_bytes");
    c.disk_bytes = &metrics_.counter(p + "disk_bytes");
    c.blocking_delay_sec =
        &metrics_.histogram(p + "blocking_delay_sec", LatencyBounds());
  }
}

void CacheCluster::FailWorker(WorkerId worker) {
  OPUS_CHECK_LT(worker, workers_.size());
  if (!worker_alive_[worker]) return;
  worker_alive_[worker] = false;
  const std::uint64_t lost_blocks = workers_[worker]->store().num_blocks();
  const std::uint64_t lost_bytes = workers_[worker]->store().used_bytes();
  // The crash loses all cached state: restart the worker process empty so
  // recovery begins from a clean store.
  const std::uint64_t capacity = workers_[worker]->store().capacity_bytes();
  workers_[worker] =
      std::make_unique<Worker>(worker, capacity, eviction_kind_);
  workers_[worker]->store().set_eviction_counter(&metrics_.counter(
      "cluster.worker." + std::to_string(worker) + ".evictions"));
  worker_counters_[worker].failures->Increment();
  trace_.Emit("cluster.worker.failed",
              {{"worker", std::to_string(worker)},
               {"lost_blocks", std::to_string(lost_blocks)},
               {"lost_bytes", std::to_string(lost_bytes)}});
}

void CacheCluster::RecoverWorker(WorkerId worker) {
  OPUS_CHECK_LT(worker, workers_.size());
  if (worker_alive_[worker]) return;
  worker_alive_[worker] = true;
  std::uint64_t reloaded = 0;
  if (managed_) {
    // Re-apply this worker's share of the current allocation (rebuilt from
    // the per-file pinned prefixes) to the rebooted (empty) worker rather
    // than serving its whole partition from disk until the next round.
    CacheUpdate update;
    update.worker = worker;
    update.epoch = epoch_;
    const BlockStore& store = workers_[worker]->store();
    for (FileId f = 0; f < catalog_.size(); ++f) {
      const std::uint32_t want = pinned_prefix_[f];
      for (std::uint32_t idx = 0; idx < want; ++idx) {
        const BlockId block = MakeBlockId(f, idx);
        if (WorkerIndexFor(block) != worker) continue;
        if (!store.Contains(block)) update.load.push_back(block);
        update.pin.push_back(block);
      }
    }
    reloaded = update.load.size();
    const std::uint64_t failed = ApplyUpdateToWorker(worker, update);
    // A failed recovery pin/load leaves this worker's share of [0, want)
    // only partially resident while pinned_prefix_ still claims the full
    // prefix — the same broken-delta-invariant case as a failed
    // ApplyAllocation, so the next epoch must reconcile with a full pass.
    if (failed > 0) needs_full_pass_ = true;
  }
  trace_.Emit("cluster.worker.recovered",
              {{"worker", std::to_string(worker)},
               {"reloaded_blocks", std::to_string(reloaded)}});
}

bool CacheCluster::IsWorkerAlive(WorkerId worker) const {
  OPUS_CHECK_LT(worker, workers_.size());
  return worker_alive_[worker];
}

std::size_t CacheCluster::num_alive_workers() const {
  std::size_t alive = 0;
  for (bool a : worker_alive_) alive += a ? 1 : 0;
  return alive;
}

double CacheCluster::MemoryLatency(std::uint64_t bytes) const {
  return static_cast<double>(bytes) / config_.memory_bandwidth_bytes_per_sec;
}

ReadResult CacheCluster::Read(UserId user, FileId file) {
  OPUS_CHECK_LT(user, config_.num_users);
  const FileInfo& info = catalog_.Get(file);
  obs::ScopedSpan span(&spans_, "cluster.read");
  // Attribute *formatting* allocates (std::to_string), so every AddAttr on
  // this path is gated on active(): a sampled-out read costs zero
  // allocations while recorded reads keep byte-identical attributes.
  if (span.active()) {
    span.AddAttr("user", std::to_string(user));
    span.AddAttr("file", std::to_string(file));
  }

  ReadResult r;
  r.bytes_total = info.size_bytes;

  {
    obs::ScopedSpan probe(&spans_, "cluster.probe");
    for (std::uint32_t idx = 0; idx < info.num_blocks; ++idx) {
      const BlockId block = MakeBlockId(file, idx);
      const std::uint64_t bytes = info.BlockBytes(idx);
      const WorkerId w = WorkerIndexFor(block);
      Worker& worker = *workers_[w];
      WorkerCounters& wc = worker_counters_[w];
      if (worker_alive_[w] && worker.store().Access(block)) {
        r.bytes_from_memory += bytes;
        wc.mem_hits->Increment();
        wc.mem_hit_bytes->Increment(bytes);
      } else {
        r.bytes_from_disk += bytes;
        wc.misses->Increment();
        wc.miss_bytes->Increment(bytes);
        if (!managed_ && worker_alive_[w]) {
          // Cache-on-read: pull the block in, evicting per policy.
          worker.store().Insert(block, bytes);
        }
      }
    }
    if (probe.active()) {
      probe.AddAttr("blocks", std::to_string(info.num_blocks));
      probe.AddAttr("mem_bytes", std::to_string(r.bytes_from_memory));
      probe.AddAttr("disk_bytes", std::to_string(r.bytes_from_disk));
    }
  }
  r = FinishRead(user, file, r.bytes_from_memory, r.bytes_from_disk);
  if (span.active()) {
    span.AddAttr("bytes", std::to_string(r.bytes_total));
    span.AddAttr("latency_sec", obs::FormatDouble(r.latency_sec));
  }
  return r;
}

ReadResult CacheCluster::FinishRead(UserId user, FileId file,
                                    std::uint64_t bytes_from_memory,
                                    std::uint64_t bytes_from_disk) {
  OPUS_CHECK_LT(user, config_.num_users);
  const FileInfo& info = catalog_.Get(file);
  ReadResult r;
  r.bytes_total = info.size_bytes;
  r.bytes_from_memory = bytes_from_memory;
  r.bytes_from_disk = bytes_from_disk;
  r.latency_sec = MemoryLatency(r.bytes_from_memory);
  if (r.bytes_from_disk > 0) {
    // UnderStore::Read opens its own "under.read" child span.
    r.latency_sec += under_store_.Read(r.bytes_from_disk);
  }
  r.memory_fraction = info.size_bytes == 0
                          ? 0.0
                          : static_cast<double>(r.bytes_from_memory) /
                                static_cast<double>(info.size_bytes);

  // Managed-mode blocking: the master injects the expected delay
  // f * T_d(bytes served from memory) and the metric charges a fractional
  // miss of the same probability (Sec. VI "Metric").
  double unblocked = 1.0;
  if (!unblocked_share_.empty()) {
    unblocked = Clamp(unblocked_share_(user, file), 0.0, 1.0);
  }
  r.blocking_probability = 1.0 - unblocked;
  UserCounters& uc = user_counters_[user];
  if (r.blocking_probability > 0.0 && r.bytes_from_memory > 0) {
    obs::ScopedSpan blocking(&spans_, "cluster.blocking_delay");
    const double delay = under_store_.BlockingDelay(r.bytes_from_memory,
                                                    r.blocking_probability);
    r.latency_sec += delay;
    uc.blocking_delay_sec->Observe(delay);
    if (blocking.active()) {
      blocking.AddAttr("probability",
                       obs::FormatDouble(r.blocking_probability));
      blocking.AddAttr("delay_sec", obs::FormatDouble(delay));
    }
  }
  r.effective_hit = r.memory_fraction * unblocked;
  uc.reads->Increment();
  uc.mem_bytes->Increment(r.bytes_from_memory);
  uc.disk_bytes->Increment(r.bytes_from_disk);
  read_latency_hist_->Observe(r.latency_sec);
  return r;
}

void CacheCluster::AddWorkerReadDeltas(WorkerId worker, std::uint64_t mem_hits,
                                       std::uint64_t mem_hit_bytes,
                                       std::uint64_t misses,
                                       std::uint64_t miss_bytes) {
  OPUS_CHECK_LT(worker, worker_counters_.size());
  WorkerCounters& wc = worker_counters_[worker];
  wc.mem_hits->Increment(mem_hits);
  wc.mem_hit_bytes->Increment(mem_hit_bytes);
  wc.misses->Increment(misses);
  wc.miss_bytes->Increment(miss_bytes);
}

std::uint64_t CacheCluster::ApplyUpdateToWorker(WorkerId worker,
                                                const CacheUpdate& update) {
  OPUS_CHECK(worker_alive_[worker]);
  const std::uint64_t failed = workers_[worker]->Apply(update, [&](BlockId b) {
    return catalog_.Get(BlockFile(b)).BlockBytes(BlockIndex(b));
  });
  ++cp_stats_.cache_updates;
  cp_stats_.blocks_pinned += update.pin.size();
  cp_stats_.blocks_unpinned += update.unpin.size();
  cp_stats_.blocks_loaded += update.load.size();
  WorkerCounters& wc = worker_counters_[worker];
  wc.pins->Increment(update.pin.size());
  wc.unpins->Increment(update.unpin.size());
  wc.loads->Increment(update.load.size());
  wc.pin_failures->Increment(failed);
  // Loading from the under store costs disk reads (accounted centrally).
  for (BlockId b : update.load) {
    under_store_.Read(catalog_.Get(BlockFile(b)).BlockBytes(BlockIndex(b)));
  }
  return failed;
}

void CacheCluster::ApplyAllocation(const std::vector<double>& file_fractions) {
  OPUS_CHECK_EQ(file_fractions.size(), catalog_.size());
  obs::ScopedSpan span(&spans_, "cluster.apply_allocation");
  const bool full_pass = needs_full_pass_ || !managed_;
  managed_ = true;
  ++epoch_;
  if (span.active()) span.AddAttr("epoch", std::to_string(epoch_));

  // Desired block set: the prefix of each file covering the allocated
  // fraction (rounded to nearest block).
  std::vector<CacheUpdate> updates(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    updates[w].worker = static_cast<WorkerId>(w);
    updates[w].epoch = epoch_;
  }

  for (FileId f = 0; f < catalog_.size(); ++f) {
    const FileInfo& info = catalog_.Get(f);
    const double frac = Clamp(file_fractions[f], 0.0, 1.0);
    // Floor-round with a 1e-6 epsilon: absorbs solver residue on an
    // intended-integral block count while still flooring true fractions,
    // so pinned bytes never exceed what the allocator budgeted.
    const auto want = static_cast<std::uint32_t>(
        std::floor(frac * static_cast<double>(info.num_blocks) + 1e-6));
    if (full_pass) {
      // Reconcile against actual store state: probe every block. Needed
      // when the prefix bookkeeping can't be trusted (first managed epoch
      // over cache-on-read leftovers, or after pin failures).
      for (std::uint32_t idx = 0; idx < info.num_blocks; ++idx) {
        const BlockId block = MakeBlockId(f, idx);
        Worker& worker = WorkerFor(block);
        auto& up = updates[worker.id()];
        if (idx < want) {
          if (!worker.store().Contains(block)) up.load.push_back(block);
          up.pin.push_back(block);
        } else {
          up.unpin.push_back(block);
          // Desired set is exact in managed mode: drop surplus blocks.
          if (worker.store().Contains(block)) worker.store().Erase(block);
        }
      }
    } else {
      // Delta pass: the previous epoch left exactly [0, prev) pinned, so
      // only the changed range needs work — blocks the cluster never held
      // are never probed.
      const std::uint32_t prev = pinned_prefix_[f];
      for (std::uint32_t idx = prev; idx < want; ++idx) {  // grow
        const BlockId block = MakeBlockId(f, idx);
        Worker& worker = WorkerFor(block);
        auto& up = updates[worker.id()];
        if (!worker.store().Contains(block)) up.load.push_back(block);
        up.pin.push_back(block);
      }
      for (std::uint32_t idx = want; idx < prev; ++idx) {  // shrink
        const BlockId block = MakeBlockId(f, idx);
        Worker& worker = WorkerFor(block);
        updates[worker.id()].unpin.push_back(block);
        if (worker.store().Contains(block)) worker.store().Erase(block);
      }
    }
    pinned_prefix_[f] = want;
  }

  std::uint64_t failed = 0;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    // Dead workers are skipped; RecoverWorker rebuilds their share of the
    // allocation from pinned_prefix_ when they come back.
    if (!worker_alive_[w]) continue;
    failed += ApplyUpdateToWorker(static_cast<WorkerId>(w), updates[w]);
  }
  // Any pin/load failure leaves [0, want) only partially resident, so the
  // delta invariant is broken until a reconciliation pass runs.
  needs_full_pass_ = failed > 0;
  trace_.Emit("cluster.realloc_applied",
              {{"epoch", std::to_string(epoch_)}});
}

void CacheCluster::SetAccessModel(Matrix unblocked_share) {
  if (!unblocked_share.empty()) {
    OPUS_CHECK_EQ(unblocked_share.rows(), config_.num_users);
    OPUS_CHECK_EQ(unblocked_share.cols(), catalog_.size());
  }
  unblocked_share_ = std::move(unblocked_share);
  ++cp_stats_.blocking_updates;
}

void CacheCluster::SetUnmanaged() {
  managed_ = false;
  unblocked_share_ = Matrix();
  for (auto& worker : workers_) {
    for (BlockId b : worker->store().ResidentBlocks()) {
      worker->store().Unpin(b);
    }
  }
  // Cache-on-read will mutate residency arbitrarily from here, so the
  // prefix bookkeeping is void until the next full reconciliation.
  std::fill(pinned_prefix_.begin(), pinned_prefix_.end(), 0u);
  needs_full_pass_ = true;
}

double CacheCluster::ResidentFraction(FileId file) const {
  const FileInfo& info = catalog_.Get(file);
  std::uint64_t resident = 0;
  for (std::uint32_t idx = 0; idx < info.num_blocks; ++idx) {
    const BlockId block = MakeBlockId(file, idx);
    const Worker& worker = WorkerFor(block);
    if (worker_alive_[worker.id()] && worker.store().Contains(block)) {
      resident += info.BlockBytes(idx);
    }
  }
  return info.size_bytes == 0
             ? 0.0
             : static_cast<double>(resident) /
                   static_cast<double>(info.size_bytes);
}

std::uint64_t CacheCluster::UsedBytes() const {
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w->store().used_bytes();
  return total;
}

std::uint64_t CacheCluster::total_evictions() const {
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w->store().evictions();
  return total;
}

}  // namespace opus::cache
