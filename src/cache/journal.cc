#include "cache/journal.h"

#include "analysis/csv.h"
#include "common/check.h"
#include "common/strings.h"

// Deserialize parses numeric fields with the strict common/strings parsers:
// the strtoull/strtod family accepts garbage prefixes ("epoch,garbage,3,2"
// parsed as epoch 0) and negative or overflowing values; a journal row must
// be rejected instead.

namespace opus::cache {

void Journal::Append(JournalEntry entry) {
  if (!entries_.empty()) {
    OPUS_CHECK_GT(entry.epoch, entries_.back().epoch);
  }
  entries_.push_back(std::move(entry));
}

const JournalEntry& Journal::entry(std::size_t idx) const {
  OPUS_CHECK_LT(idx, entries_.size());
  return entries_[idx];
}

const JournalEntry& Journal::latest() const {
  OPUS_CHECK(!entries_.empty());
  return entries_.back();
}

void Journal::ReplayLatest(CacheCluster* cluster) const {
  OPUS_CHECK(cluster != nullptr);
  if (entries_.empty()) return;
  const JournalEntry& e = entries_.back();
  cluster->ApplyAllocation(e.file_fractions);
  cluster->SetAccessModel(e.unblocked_share);
}

std::string Journal::Serialize() const {
  // Row formats:
  //   epoch,<epoch>,<num_files>,<num_users>
  //   alloc,<f0>,<f1>,...
  //   access,<row0cell0>,...           (one row per user; omitted if empty)
  analysis::CsvTable table;
  for (const auto& e : entries_) {
    const std::size_t users = e.unblocked_share.rows();
    table.rows.push_back({"epoch", std::to_string(e.epoch),
                          std::to_string(e.file_fractions.size()),
                          std::to_string(users)});
    std::vector<std::string> alloc = {"alloc"};
    for (double f : e.file_fractions) alloc.push_back(StrFormat("%.17g", f));
    table.rows.push_back(std::move(alloc));
    for (std::size_t i = 0; i < users; ++i) {
      std::vector<std::string> row = {"access"};
      for (std::size_t j = 0; j < e.unblocked_share.cols(); ++j) {
        row.push_back(StrFormat("%.17g", e.unblocked_share(i, j)));
      }
      table.rows.push_back(std::move(row));
    }
  }
  return analysis::WriteCsv(table);
}

std::optional<Journal> Journal::Deserialize(const std::string& text) {
  const auto table = analysis::ParseCsv(text, /*has_header=*/false);
  Journal journal;
  std::size_t r = 0;
  while (r < table.rows.size()) {
    const auto& head = table.rows[r];
    if (head.size() != 4 || head[0] != "epoch") return std::nullopt;
    JournalEntry entry;
    std::uint64_t files_u64 = 0, users_u64 = 0;
    if (!ParseU64(head[1], &entry.epoch) || !ParseU64(head[2], &files_u64) ||
        !ParseU64(head[3], &users_u64)) {
      return std::nullopt;
    }
    const auto files = static_cast<std::size_t>(files_u64);
    const auto users = static_cast<std::size_t>(users_u64);
    ++r;
    if (r >= table.rows.size()) return std::nullopt;
    const auto& alloc = table.rows[r];
    if (alloc.size() != files + 1 || alloc[0] != "alloc") return std::nullopt;
    for (std::size_t j = 0; j < files; ++j) {
      double fraction = 0.0;
      if (!ParseFiniteDouble(alloc[j + 1], &fraction)) return std::nullopt;
      entry.file_fractions.push_back(fraction);
    }
    ++r;
    if (users > 0) {
      // A corrupted user count must not trigger a giant Matrix allocation:
      // the remaining rows bound any well-formed access block.
      if (users > table.rows.size() - r) return std::nullopt;
      entry.unblocked_share = Matrix(users, files, 0.0);
      for (std::size_t i = 0; i < users; ++i, ++r) {
        if (r >= table.rows.size()) return std::nullopt;
        const auto& row = table.rows[r];
        if (row.size() != files + 1 || row[0] != "access") {
          return std::nullopt;
        }
        for (std::size_t j = 0; j < files; ++j) {
          double share = 0.0;
          if (!ParseFiniteDouble(row[j + 1], &share)) return std::nullopt;
          entry.unblocked_share(i, j) = share;
        }
      }
    }
    if (!journal.entries_.empty() &&
        entry.epoch <= journal.entries_.back().epoch) {
      return std::nullopt;
    }
    journal.entries_.push_back(std::move(entry));
  }
  return journal;
}

void Journal::Compact(std::size_t keep) {
  if (entries_.size() <= keep) return;
  entries_.erase(entries_.begin(),
                 entries_.end() - static_cast<std::ptrdiff_t>(keep));
}

}  // namespace opus::cache
