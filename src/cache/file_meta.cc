#include "cache/file_meta.h"

#include "common/check.h"

namespace opus::cache {

std::uint64_t FileInfo::BlockBytes(std::uint32_t index) const {
  OPUS_CHECK_LT(index, num_blocks);
  if (index + 1 == num_blocks) {
    const std::uint64_t rem = size_bytes - static_cast<std::uint64_t>(index) * block_size;
    return rem;
  }
  return block_size;
}

Catalog::Catalog(std::uint64_t block_size) : block_size_(block_size) {
  OPUS_CHECK_GT(block_size, 0u);
}

FileId Catalog::Register(std::string name, std::uint64_t size_bytes) {
  OPUS_CHECK_GT(size_bytes, 0u);
  OPUS_CHECK_MSG(Find(name) == kInvalidFile, "duplicate file name: " << name);
  FileInfo info;
  info.id = static_cast<FileId>(files_.size());
  info.name = std::move(name);
  info.size_bytes = size_bytes;
  info.block_size = block_size_;
  info.num_blocks =
      static_cast<std::uint32_t>((size_bytes + block_size_ - 1) / block_size_);
  files_.push_back(std::move(info));
  return files_.back().id;
}

const FileInfo& Catalog::Get(FileId id) const {
  OPUS_CHECK_LT(id, files_.size());
  return files_[id];
}

FileId Catalog::Find(const std::string& name) const {
  for (const auto& f : files_) {
    if (f.name == name) return f.id;
  }
  return kInvalidFile;
}

std::uint64_t Catalog::TotalBytes() const {
  std::uint64_t total = 0;
  for (const auto& f : files_) total += f.size_bytes;
  return total;
}

}  // namespace opus::cache
