// Control-plane message types exchanged between the OpuSMaster and Workers
// (paper Fig. 4). The simulator delivers them in-process, but keeping them
// as explicit value types preserves the deployment structure: everything the
// master tells a worker is serializable state, not shared pointers.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/types.h"

namespace opus::cache {

// Master -> Worker: pin exactly these blocks (replacing the previous pin
// set); anything else is eviction fodder.
struct CacheUpdate {
  WorkerId worker = 0;
  std::uint64_t epoch = 0;  // allocation round that produced this update
  std::vector<BlockId> pin;
  std::vector<BlockId> unpin;
  std::vector<BlockId> load;  // blocks to fetch from the under store
};

// Master -> Worker: per-user blocking probabilities for delay emulation.
struct BlockingUpdate {
  std::uint64_t epoch = 0;
  std::vector<double> blocking;  // indexed by UserId
};

// Aggregate counters for control-plane traffic (observability/tests).
struct ControlPlaneStats {
  std::uint64_t cache_updates = 0;
  std::uint64_t blocking_updates = 0;
  std::uint64_t blocks_pinned = 0;
  std::uint64_t blocks_unpinned = 0;
  std::uint64_t blocks_loaded = 0;
};

}  // namespace opus::cache
