// Simulated under store (the stable storage beneath the cache, e.g. local
// disks or S3 in an Alluxio deployment).
//
// The paper's blocking emulation needs a disk-latency model: a blocked or
// missed read costs T_d = f_size / BW (Sec. V-B, "Expected delay with
// varying file size") plus a fixed per-request overhead. The under store
// also tracks read counters so benches can report disk pressure.
#pragma once

#include <cstdint>

#include "cache/types.h"
#include "obs/metrics.h"
#include "obs/span_trace.h"

namespace opus::cache {

struct UnderStoreConfig {
  double bandwidth_bytes_per_sec = 100.0 * 1e6;  // ~100 MB/s spinning disk
  double seek_latency_sec = 5e-3;                // per-request overhead
};

class UnderStore {
 public:
  explicit UnderStore(UnderStoreConfig config = {}) : config_(config) {}

  // Latency to read `bytes` from stable storage.
  double ReadLatency(std::uint64_t bytes) const;

  // Performs a read (accounting only) and returns its latency.
  double Read(std::uint64_t bytes);

  // Expected blocking delay for a read of `bytes` blocked with probability
  // `block_probability` (the paper's f_i * T_d rule). Pure accounting — no
  // counter updates.
  double BlockingDelay(std::uint64_t bytes, double block_probability) const;

  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t reads() const { return reads_; }
  const UnderStoreConfig& config() const { return config_; }

  // Mirrors read accounting into `registry` ("under.reads",
  // "under.bytes_read"). The registry must outlive the store.
  void AttachMetrics(obs::MetricsRegistry* registry);

  // Opens an "under.read" span (bytes + latency attrs) around every Read(),
  // parented under whatever span the caller has open. The trace must
  // outlive the store; nullptr detaches.
  void AttachSpans(obs::SpanTrace* spans);

 private:
  UnderStoreConfig config_;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t reads_ = 0;
  obs::Counter* reads_counter_ = nullptr;       // borrowed, optional
  obs::Counter* read_bytes_counter_ = nullptr;  // borrowed, optional
  obs::SpanTrace* spans_ = nullptr;             // borrowed, optional
};

}  // namespace opus::cache
