// CacheCluster — the mini-Alluxio deployment: a master's metadata + block
// placement view over a set of workers, an under store, and client read
// paths (paper Fig. 4).
//
// Two operating modes:
//
//  - Unmanaged (default): reads are cache-on-read; misses pull blocks into
//    the assigned worker, evicting per the worker's policy (LRU/LFU). This
//    is stock Alluxio, the Fig. 5 baseline.
//  - Managed: an allocation policy (via sim::OpusMaster) pins exactly the
//    allocated block set and installs a per-(user,file) access model; reads
//    never mutate placement, and blocked accesses are charged the expected
//    disk delay f * T_d (Sec. V-A "Workflow").
//
// Reads account the paper's metric: a delayed access counts as a fractional
// miss equal to the blocking probability (Sec. VI "Metric").
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/file_meta.h"
#include "cache/messages.h"
#include "cache/placement.h"
#include "cache/under_store.h"
#include "cache/worker.h"
#include "common/check.h"
#include "common/matrix.h"
#include "obs/event_trace.h"
#include "obs/metrics.h"
#include "obs/span_trace.h"

namespace opus::cache {

struct ClusterConfig {
  std::uint32_t num_workers = 5;
  std::uint64_t cache_capacity_bytes = 1 * kGiB;
  std::string eviction_policy = "lru";
  // Block-to-worker placement: "modulo" (balanced, churn-hostile) or
  // "consistent" (consistent-hash ring, minimal remap on churn).
  std::string placement = "modulo";
  UnderStoreConfig under_store;
  double memory_bandwidth_bytes_per_sec = 5e9;  // in-memory read throughput
  std::uint32_t num_users = 1;
  // Span tracer: keep every span_sample_every-th root span per root name
  // (0 disables tracing entirely) up to span_capacity retained spans.
  std::uint64_t span_sample_every = 1;
  std::size_t span_capacity = 1 << 16;
};

struct ReadResult {
  std::uint64_t bytes_total = 0;
  std::uint64_t bytes_from_memory = 0;
  std::uint64_t bytes_from_disk = 0;
  double latency_sec = 0.0;
  // Fraction of bytes served from memory before blocking.
  double memory_fraction = 0.0;
  // Probability this user's in-memory access is blocked (managed mode).
  double blocking_probability = 0.0;
  // The paper's effective hit: memory_fraction * (1 - blocking).
  double effective_hit = 0.0;
};

class CacheCluster {
 public:
  CacheCluster(ClusterConfig config, Catalog catalog);

  const Catalog& catalog() const { return catalog_; }
  const ClusterConfig& config() const { return config_; }
  UnderStore& under_store() { return under_store_; }

  // Client read path: user `user` reads file `file` in full.
  ReadResult Read(UserId user, FileId file);

  // --- serving support ----------------------------------------------------
  //
  // The concurrent serving engine (src/serve) splits Read into a store
  // probe phase it runs itself (shard-affine, one thread per disjoint set
  // of workers) and this accounting tail, called at window-drain time in
  // the pinned global event order. FinishRead performs every metric,
  // under-store, and blocking side effect of Read after the probe — the
  // serial path calls the same function, so the two planes cannot drift.
  ReadResult FinishRead(UserId user, FileId file,
                        std::uint64_t bytes_from_memory,
                        std::uint64_t bytes_from_disk);

  // Batched per-worker read-counter deltas accumulated by the serving
  // engine's per-thread queues (u64 sums — order-free, so batch totals
  // equal the serial per-access increments).
  void AddWorkerReadDeltas(WorkerId worker, std::uint64_t mem_hits,
                           std::uint64_t mem_hit_bytes, std::uint64_t misses,
                           std::uint64_t miss_bytes);

  // O(1) precomputed block→worker placement (stable after construction).
  WorkerId PlacementFor(BlockId block) const { return WorkerIndexFor(block); }

  std::size_t num_workers() const { return workers_.size(); }

  // Direct worker access for the serving engine's shard-affine probe
  // phase. Contract: during a parallel phase each worker is touched by
  // exactly one thread, and control-plane mutations (ApplyAllocation,
  // FailWorker, ...) only run between phases.
  Worker& worker(WorkerId w) {
    OPUS_CHECK_LT(w, workers_.size());
    return *workers_[w];
  }

  // --- managed-mode control plane ---------------------------------------

  // Switches to managed mode: pins the block prefix of each file per
  // `file_fractions` (length = catalog size, values in [0,1]) and evicts
  // everything else. Subsequent reads never mutate placement.
  //
  // Reallocation is incremental: after the first managed epoch (a full
  // reconciliation pass over the catalog), later epochs touch only the
  // per-file delta between the previous and new pinned prefixes — blocks
  // the cluster never held are never probed. Pin/load failures or a trip
  // through SetUnmanaged force the next epoch back to a full pass.
  void ApplyAllocation(const std::vector<double>& file_fractions);

  // Installs the per-(user,file) effective-access model from an
  // AllocationResult: entry (i, j) is e_ij / a_j — the probability user i's
  // access to a cached byte of file j is NOT blocked. Pass an empty matrix
  // to clear (full access for everyone).
  void SetAccessModel(Matrix unblocked_share);

  // Leaves managed mode and clears pins (reverts to cache-on-read).
  void SetUnmanaged();

  bool managed() const { return managed_; }

  // --- worker failures ----------------------------------------------------

  // Simulates a worker crash: its cached blocks (pins included) are lost.
  // Reads that map to a failed worker fall through to the under store; in
  // unmanaged mode they re-populate surviving workers' partitions only when
  // the block maps there.
  void FailWorker(WorkerId worker);

  // Brings a failed worker back. In managed mode the worker's share of the
  // current allocation (rebuilt from the per-file pinned prefixes) is
  // re-applied immediately — its pinned block set is reloaded from the
  // under store (with disk-read accounting) — so the recovered partition
  // serves from memory right away instead of from disk until the next
  // reallocation round.
  void RecoverWorker(WorkerId worker);

  bool IsWorkerAlive(WorkerId worker) const;
  std::size_t num_alive_workers() const;

  // Fraction of file `file` currently resident in cluster memory.
  double ResidentFraction(FileId file) const;

  // Total resident bytes across workers.
  std::uint64_t UsedBytes() const;

  const ControlPlaneStats& control_plane_stats() const { return cp_stats_; }
  std::uint64_t total_evictions() const;

  // --- observability ------------------------------------------------------
  //
  // Every cluster owns a deterministic metrics registry and a bounded event
  // trace; workers, the under store and the control plane record into them
  // (names like "cluster.worker.3.mem_hits", "cluster.user.0.disk_bytes").
  // All values are logical-clock based, so snapshots are byte-identical
  // across reruns and thread counts.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  obs::EventTrace& trace() { return trace_; }
  const obs::EventTrace& trace() const { return trace_; }
  // Causal span trace: one root span per Read/ApplyAllocation with child
  // spans for tier probes, under-store reads, and blocking-delay injection.
  // Control-plane callers (sim::OpusMaster) open their own spans on the
  // same trace so reallocation work parents the cluster's spans.
  obs::SpanTrace& spans() { return spans_; }
  const obs::SpanTrace& spans() const { return spans_; }

 private:
  // Pre-resolved metric handles (hot-path instrumentation must not pay a
  // map lookup per block access) and a precomputed block→worker placement
  // cache (the hot path must not pay a ring binary-search per block).
  struct WorkerCounters {
    obs::Counter* mem_hits = nullptr;
    obs::Counter* mem_hit_bytes = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* miss_bytes = nullptr;
    obs::Counter* pins = nullptr;
    obs::Counter* unpins = nullptr;
    obs::Counter* loads = nullptr;
    obs::Counter* pin_failures = nullptr;
    obs::Counter* failures = nullptr;
  };
  struct UserCounters {
    obs::Counter* reads = nullptr;
    obs::Counter* mem_bytes = nullptr;
    obs::Counter* disk_bytes = nullptr;
    obs::Histogram* blocking_delay_sec = nullptr;
  };

  // O(1) placement: two array indexes into the precomputed cache.
  WorkerId WorkerIndexFor(BlockId block) const {
    return block_worker_[file_offset_[BlockFile(block)] + BlockIndex(block)];
  }
  Worker& WorkerFor(BlockId block) {
    return *workers_[WorkerIndexFor(block)];
  }
  const Worker& WorkerFor(BlockId block) const {
    return *workers_[WorkerIndexFor(block)];
  }
  double MemoryLatency(std::uint64_t bytes) const;
  void InitObservability();
  // Fills file_offset_/block_worker_ from the configured placement policy.
  // Placement is a pure function of (block, membership); membership never
  // changes after construction (failed workers keep their partition and
  // reads fall through), so this runs once. If membership-changing
  // placement lands later, rebuild here from the retained ring_.
  void BuildPlacementCache();
  // Delivers one CacheUpdate to an alive worker: applies it, accounts
  // control-plane stats/metrics, and charges under-store reads for loads.
  // Returns the number of load/pin requests that failed.
  std::uint64_t ApplyUpdateToWorker(WorkerId worker,
                                    const CacheUpdate& update);

  ClusterConfig config_;
  Catalog catalog_;
  UnderStore under_store_;
  obs::MetricsRegistry metrics_;
  obs::EventTrace trace_;
  obs::SpanTrace spans_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<bool> worker_alive_;
  std::vector<WorkerCounters> worker_counters_;
  std::vector<UserCounters> user_counters_;
  obs::Histogram* read_latency_hist_ = nullptr;
  std::optional<ConsistentHashRing> ring_;  // set when placement=consistent
  EvictionKind eviction_kind_ = EvictionKind::kLru;
  // Placement cache: block b of file f lives on
  // block_worker_[file_offset_[f] + BlockIndex(b)].
  std::vector<std::uint64_t> file_offset_;  // per-file prefix sums, size+1
  std::vector<WorkerId> block_worker_;
  bool managed_ = false;
  Matrix unblocked_share_;  // num_users x num_files; empty = no blocking
  ControlPlaneStats cp_stats_;
  std::uint64_t epoch_ = 0;
  // Per-file pinned block prefix from the last ApplyAllocation, the basis
  // for delta reallocation (only changed [prev, want) ranges are touched)
  // and for RecoverWorker's pin-set rebuild.
  std::vector<std::uint32_t> pinned_prefix_;
  // Set when the prefix bookkeeping may not match store state (initial
  // epoch, pin/load failures, SetUnmanaged): the next ApplyAllocation does
  // a full reconciliation pass over the catalog instead of a delta.
  bool needs_full_pass_ = true;
};

}  // namespace opus::cache
