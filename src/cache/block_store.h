// Per-worker in-memory block store with capacity enforcement, pinning, and
// built-in O(1) eviction — the data-plane hot path.
//
// Two usage modes mirror the two OpuS deployment modes:
//  - unmanaged (eviction-driven): Insert() evicts per policy when full —
//    the Alluxio-default LRU behaviour of Sec. VI-A.
//  - managed (allocation-driven): the master pins exactly the blocks the
//    allocation algorithm selected; pinned blocks are never eviction
//    victims, and the master repins on every reallocation.
//
// Layout: one open-addressing flat hash table maps BlockId to a slot index;
// the slot co-locates bytes, the pinned flag, and the intrusive
// eviction-policy links, so a Read probe is a single lookup instead of the
// former blocks_/pinned_/policy triple probe. Eviction order is maintained
// with index links inside the slots — an O(1) LRU list and an O(1)
// frequency-bucket LFU whose victim order is exactly the (freq, seq)
// ordering of the std::map reference (see eviction.h) — so a touch never
// allocates. Victim sequences and resident sets are bit-identical to
// ReferenceBlockStore under any op sequence (property-tested).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "cache/eviction.h"
#include "cache/types.h"
#include "obs/metrics.h"

namespace opus::cache {

class BlockStore {
 public:
  BlockStore(std::uint64_t capacity_bytes, EvictionKind kind);
  // Convenience: parses "lru" | "lfu".
  BlockStore(std::uint64_t capacity_bytes, const std::string& policy_name);

  // Inserts a block, evicting unpinned victims as needed. Returns false
  // (without inserting) when the block cannot fit even after evicting every
  // unpinned block. Inserting an already-resident block refreshes its
  // recency/frequency exactly like Access() and returns true, so a
  // cache-on-read path that re-inserts a resident block keeps the policy
  // state honest.
  bool Insert(BlockId block, std::uint64_t bytes);

  // Marks an access for the eviction policy. Returns true iff cached.
  bool Access(BlockId block);

  bool Contains(BlockId block) const;

  // Side-effect-free residency probe: no policy touch, no mutation, and the
  // table walk is bounded, so a torn view under a concurrent writer cannot
  // loop. Unlike Contains, Probe is written to be called WITHOUT the owning
  // shard lock, inside a ShardedStore seqlock snapshot/validate pair (see
  // serve/sharded_store.h): every word it reads (table entries, slot block
  // ids) is accessed through relaxed atomics, matching the writers below,
  // so a racing read is a discarded value, never UB. Two preconditions:
  //   1. ReserveForConcurrentProbes was called with a true bound, so the
  //      table and slot arrays can never reallocate under a reader;
  //   2. the caller validates the shard version afterwards and discards
  //      the result on any writer overlap.
  // Without a seqlock (single-threaded or under the shard lock) Probe is an
  // ordinary cheap residency test.
  bool Probe(BlockId block) const;

  // Pre-sizes the hash table and slot array for at most `max_blocks`
  // distinct resident blocks so neither ever reallocates again, then marks
  // the store safe for lock-free Probe calls. Must be called from a single
  // thread with no concurrent readers (e.g. between serving phases). The
  // bound is a hard contract: exceeding it aborts (OPUS_CHECK) rather than
  // silently racing a lock-free reader against a reallocation.
  void ReserveForConcurrentProbes(std::size_t max_blocks);

  // True once ReserveForConcurrentProbes has armed the store; optimistic
  // callers must fall back to the locked path when false.
  bool concurrent_probe_safe() const {
    return probe_safe_.load(std::memory_order_relaxed);
  }

  // Removes a block if present (also unpins it).
  void Erase(BlockId block);

  // Pins / unpins. Pinned blocks are ignored by eviction. Pinning a block
  // not in the store is a no-op returning false. Unpinning re-enters the
  // block into the eviction order as a fresh insert (most recent, freq 1).
  bool Pin(BlockId block);
  void Unpin(BlockId block);
  bool IsPinned(BlockId block) const;

  std::uint64_t capacity_bytes() const { return capacity_; }
  std::uint64_t used_bytes() const { return used_; }
  std::uint64_t pinned_bytes() const { return pinned_bytes_; }
  std::size_t num_blocks() const { return num_blocks_; }
  std::uint64_t evictions() const { return evictions_; }
  EvictionKind eviction_kind() const { return kind_; }

  // Snapshot of resident blocks (unordered).
  std::vector<BlockId> ResidentBlocks() const;

  // Mirrors future evictions into `counter` (e.g. "cluster.worker.W
  // .evictions" in the owning cluster's registry). Pass nullptr to detach.
  void set_eviction_counter(obs::Counter* counter) {
    eviction_counter_ = counter;
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  // One resident block. `bytes == 0` marks a slot on the free list (Insert
  // rejects zero-byte blocks, so it cannot collide with live state).
  struct Slot {
    BlockId block = 0;
    std::uint64_t bytes = 0;
    // Policy list links: neighbours in the LRU order (LRU) or within the
    // owning frequency bucket (LFU). `next` doubles as the free-list link.
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    std::uint32_t bucket = kNil;  // LFU: owning FreqBucket index
    bool pinned = false;
  };

  // LFU frequency bucket: blocks with the same access count, linked in
  // arrival order (arrival seq is globally monotonic, so head = oldest seq
  // = the std::map (freq, seq) victim within the bucket). Buckets link to
  // their frequency neighbours; head bucket = lowest frequency.
  struct FreqBucket {
    std::uint64_t freq = 0;
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;  // also the bucket free-list link
  };

  // --- hash table -------------------------------------------------------
  std::uint32_t FindSlot(BlockId block) const;
  void TableInsert(std::uint32_t slot);
  void TableErase(BlockId block);
  void GrowTableIfNeeded();

  // --- slot storage -----------------------------------------------------
  std::uint32_t AllocSlot();
  void FreeSlot(std::uint32_t slot);

  // --- eviction order (dispatches on kind_) -----------------------------
  void PolicyInsert(std::uint32_t slot);
  void PolicyAccess(std::uint32_t slot);
  void PolicyRemove(std::uint32_t slot);
  std::uint32_t PolicyVictim() const;

  void LruUnlink(std::uint32_t slot);
  void LruPushBack(std::uint32_t slot);

  std::uint32_t AllocBucket();
  void FreeBucket(std::uint32_t bucket);
  void BucketAppend(std::uint32_t bucket, std::uint32_t slot);
  void BucketUnlink(std::uint32_t slot);

  bool EvictOne();

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::uint64_t pinned_bytes_ = 0;
  std::uint64_t evictions_ = 0;
  std::size_t num_blocks_ = 0;
  EvictionKind kind_;
  obs::Counter* eviction_counter_ = nullptr;  // borrowed, optional
  // Armed by ReserveForConcurrentProbes; read by lock-free probers, so it
  // must be atomic even though it only ever transitions false -> true.
  std::atomic<bool> probe_safe_{false};

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNil;
  std::vector<std::uint32_t> table_;  // power-of-two, kNil = empty

  // LRU list (head = least recent).
  std::uint32_t lru_head_ = kNil;
  std::uint32_t lru_tail_ = kNil;

  // LFU buckets (bucket_head_ = lowest frequency).
  std::vector<FreqBucket> buckets_;
  std::uint32_t bucket_head_ = kNil;
  std::uint32_t bucket_free_ = kNil;
};

}  // namespace opus::cache
