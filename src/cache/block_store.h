// Per-worker in-memory block store with capacity enforcement, pinning, and
// pluggable eviction.
//
// Two usage modes mirror the two OpuS deployment modes:
//  - unmanaged (eviction-driven): Insert() evicts per policy when full —
//    the Alluxio-default LRU behaviour of Sec. VI-A.
//  - managed (allocation-driven): the master pins exactly the blocks the
//    allocation algorithm selected; pinned blocks are never eviction
//    victims, and the master repins on every reallocation.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/eviction.h"
#include "cache/types.h"
#include "obs/metrics.h"

namespace opus::cache {

class BlockStore {
 public:
  BlockStore(std::uint64_t capacity_bytes,
             std::unique_ptr<EvictionPolicy> policy);

  // Inserts a block, evicting unpinned victims as needed. Returns false
  // (without inserting) when the block cannot fit even after evicting every
  // unpinned block. Inserting an existing block is a no-op returning true.
  bool Insert(BlockId block, std::uint64_t bytes);

  // Marks an access for the eviction policy. Returns true iff cached.
  bool Access(BlockId block);

  bool Contains(BlockId block) const;

  // Removes a block if present (also unpins it).
  void Erase(BlockId block);

  // Pins / unpins. Pinned blocks are ignored by eviction. Pinning a block
  // not in the store is a no-op returning false.
  bool Pin(BlockId block);
  void Unpin(BlockId block);
  bool IsPinned(BlockId block) const;

  std::uint64_t capacity_bytes() const { return capacity_; }
  std::uint64_t used_bytes() const { return used_; }
  std::uint64_t pinned_bytes() const { return pinned_bytes_; }
  std::size_t num_blocks() const { return blocks_.size(); }
  std::uint64_t evictions() const { return evictions_; }

  // Snapshot of resident blocks (unordered).
  std::vector<BlockId> ResidentBlocks() const;

  // Mirrors future evictions into `counter` (e.g. "cluster.worker.W
  // .evictions" in the owning cluster's registry). Pass nullptr to detach.
  void set_eviction_counter(obs::Counter* counter) {
    eviction_counter_ = counter;
  }

 private:
  bool EvictOne();

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::uint64_t pinned_bytes_ = 0;
  std::uint64_t evictions_ = 0;
  std::unique_ptr<EvictionPolicy> policy_;
  obs::Counter* eviction_counter_ = nullptr;  // borrowed, optional
  std::unordered_map<BlockId, std::uint64_t> blocks_;  // block -> bytes
  std::unordered_set<BlockId> pinned_;
};

}  // namespace opus::cache
