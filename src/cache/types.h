// Identifier and unit types for the cache cluster substrate.
#pragma once

#include <cstdint>
#include <string>

namespace opus::cache {

using FileId = std::uint32_t;
using BlockId = std::uint64_t;
using WorkerId = std::uint32_t;
using UserId = std::uint32_t;

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

inline constexpr FileId kInvalidFile = static_cast<FileId>(-1);

// Global block ids pack (file, index) so any component can recover the
// owning file without a lookup.
constexpr BlockId MakeBlockId(FileId file, std::uint32_t index) {
  return (static_cast<BlockId>(file) << 32) | index;
}
constexpr FileId BlockFile(BlockId b) {
  return static_cast<FileId>(b >> 32);
}
constexpr std::uint32_t BlockIndex(BlockId b) {
  return static_cast<std::uint32_t>(b & 0xffffffffu);
}

}  // namespace opus::cache
