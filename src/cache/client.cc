#include "cache/client.h"

#include <algorithm>

#include "common/check.h"

namespace opus::cache {

double SessionStats::EffectiveHitRatio() const {
  return reads == 0 ? 0.0 : effective_hit_sum / static_cast<double>(reads);
}

double SessionStats::MeanLatencySec() const {
  return reads == 0 ? 0.0 : total_latency_sec / static_cast<double>(reads);
}

ClientSession::ClientSession(CacheCluster* cluster, UserId user,
                             std::string name)
    : cluster_(cluster), user_(user), name_(std::move(name)) {
  OPUS_CHECK(cluster_ != nullptr);
  OPUS_CHECK_LT(user, cluster_->config().num_users);
}

ReadResult ClientSession::Read(FileId file) {
  const ReadResult r = cluster_->Read(user_, file);
  ++stats_.reads;
  stats_.bytes_from_memory += r.bytes_from_memory;
  stats_.bytes_from_disk += r.bytes_from_disk;
  stats_.effective_hit_sum += r.effective_hit;
  stats_.total_latency_sec += r.latency_sec;
  stats_.max_latency_sec = std::max(stats_.max_latency_sec, r.latency_sec);
  return r;
}

ReadResult ClientSession::Read(const std::string& file_name) {
  const FileId id = cluster_->catalog().Find(file_name);
  OPUS_CHECK_MSG(id != kInvalidFile, "unknown file: " << file_name);
  return Read(id);
}

}  // namespace opus::cache
