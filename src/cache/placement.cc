#include "cache/placement.h"

#include <algorithm>

#include "common/check.h"

namespace opus::cache {

// splitmix64 — the same mixer the Rng seeds with; good avalanche for ring
// points and block keys.
std::uint64_t PlacementHash(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

WorkerId ModuloPlace(BlockId block, std::uint32_t num_workers) {
  OPUS_CHECK_GT(num_workers, 0u);
  return static_cast<WorkerId>(
      (static_cast<std::uint64_t>(BlockFile(block)) + BlockIndex(block)) %
      num_workers);
}

ConsistentHashRing::ConsistentHashRing(std::uint32_t num_workers,
                                       std::uint32_t virtual_nodes)
    : num_workers_(num_workers) {
  OPUS_CHECK_GT(num_workers, 0u);
  OPUS_CHECK_GT(virtual_nodes, 0u);
  ring_.reserve(static_cast<std::size_t>(num_workers) * virtual_nodes);
  for (WorkerId w = 0; w < num_workers; ++w) {
    for (std::uint32_t v = 0; v < virtual_nodes; ++v) {
      const std::uint64_t point =
          PlacementHash((static_cast<std::uint64_t>(w) << 32) | v);
      ring_.emplace_back(point, w);
    }
  }
  // Colliding points resolve to the last-inserted worker (map-overwrite
  // semantics); stable_sort keeps insertion order within a point so the
  // dedupe below can pick it.
  std::stable_sort(ring_.begin(), ring_.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  auto out = ring_.begin();
  for (auto it = ring_.begin(); it != ring_.end(); ++it) {
    if (out != ring_.begin() && std::prev(out)->first == it->first) {
      *std::prev(out) = *it;
    } else {
      *out++ = *it;
    }
  }
  ring_.erase(out, ring_.end());
}

WorkerId ConsistentHashRing::Place(BlockId block) const {
  OPUS_CHECK(!ring_.empty());
  const std::uint64_t h = PlacementHash(block);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const auto& entry, std::uint64_t key) { return entry.first < key; });
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

ConsistentHashRing ConsistentHashRing::Without(WorkerId worker) const {
  OPUS_CHECK_GT(num_workers_, 1u);
  ConsistentHashRing out;
  out.num_workers_ = num_workers_;  // ids keep their meaning
  out.ring_.reserve(ring_.size());
  for (const auto& [point, w] : ring_) {
    if (w != worker) out.ring_.emplace_back(point, w);
  }
  return out;
}

}  // namespace opus::cache
