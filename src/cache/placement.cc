#include "cache/placement.h"

#include "common/check.h"

namespace opus::cache {
namespace {

// splitmix64 — the same mixer the Rng seeds with; good avalanche for ring
// points and block keys.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

WorkerId ModuloPlace(BlockId block, std::uint32_t num_workers) {
  OPUS_CHECK_GT(num_workers, 0u);
  return static_cast<WorkerId>(
      (static_cast<std::uint64_t>(BlockFile(block)) + BlockIndex(block)) %
      num_workers);
}

ConsistentHashRing::ConsistentHashRing(std::uint32_t num_workers,
                                       std::uint32_t virtual_nodes)
    : num_workers_(num_workers) {
  OPUS_CHECK_GT(num_workers, 0u);
  OPUS_CHECK_GT(virtual_nodes, 0u);
  for (WorkerId w = 0; w < num_workers; ++w) {
    for (std::uint32_t v = 0; v < virtual_nodes; ++v) {
      const std::uint64_t point =
          Mix64((static_cast<std::uint64_t>(w) << 32) | v);
      ring_[point] = w;
    }
  }
}

WorkerId ConsistentHashRing::Place(BlockId block) const {
  OPUS_CHECK(!ring_.empty());
  const std::uint64_t h = Mix64(block);
  auto it = ring_.lower_bound(h);
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

ConsistentHashRing ConsistentHashRing::Without(WorkerId worker) const {
  OPUS_CHECK_GT(num_workers_, 1u);
  ConsistentHashRing out;
  out.num_workers_ = num_workers_;  // ids keep their meaning
  for (const auto& [point, w] : ring_) {
    if (w != worker) out.ring_[point] = w;
  }
  return out;
}

}  // namespace opus::cache
