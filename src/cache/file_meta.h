// File metadata catalog — the master's namespace (paper Fig. 4: the Alluxio
// Master manages metadata; OpuSMeta hangs per-application access state off
// it). Files are registered once and assigned dense FileIds; each file is
// split into fixed-size blocks (the unit of caching and eviction).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/types.h"

namespace opus::cache {

struct FileInfo {
  FileId id = kInvalidFile;
  std::string name;
  std::uint64_t size_bytes = 0;
  std::uint32_t num_blocks = 0;
  std::uint64_t block_size = 0;

  // Size of block `index` (the last block may be short).
  std::uint64_t BlockBytes(std::uint32_t index) const;
};

class Catalog {
 public:
  // Blocks default to 1 MiB: small enough that fractional allocations round
  // accurately, large enough to keep block maps compact.
  explicit Catalog(std::uint64_t block_size = 1 * kMiB);

  // Registers a file and returns its id. Name must be unique; size > 0.
  FileId Register(std::string name, std::uint64_t size_bytes);

  const FileInfo& Get(FileId id) const;
  std::size_t size() const { return files_.size(); }
  std::uint64_t block_size() const { return block_size_; }

  // Id lookup by name; kInvalidFile if absent.
  FileId Find(const std::string& name) const;

  // Total bytes across all registered files.
  std::uint64_t TotalBytes() const;

  const std::vector<FileInfo>& files() const { return files_; }

 private:
  std::uint64_t block_size_;
  std::vector<FileInfo> files_;
};

}  // namespace opus::cache
