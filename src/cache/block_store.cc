#include "cache/block_store.h"

#include <atomic>

#include "common/check.h"

namespace opus::cache {
namespace {

// splitmix64 mixer (same family as placement hashing): block ids are
// (file << 32 | index) with tiny entropy in the low bits, so table probing
// needs real avalanche.
inline std::uint64_t HashBlock(BlockId x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::size_t kInitialTableSize = 16;  // power of two

// The fields a lock-free Probe reads (table entries, slot block ids) are
// accessed through relaxed std::atomic_ref on BOTH sides, so a racing
// probe reads a stale-or-new value instead of tearing (and stays clean
// under TSan). Relaxed atomics compile to plain loads/stores on x86-64 and
// AArch64, so the single-threaded hot path is unchanged; the ShardedStore
// seqlock supplies all required ordering.
template <typename T>
inline T RelaxedLoad(const T& field) {
  return std::atomic_ref<T>(const_cast<T&>(field))
      .load(std::memory_order_relaxed);
}

template <typename T>
inline void RelaxedStore(T& field, T value) {
  std::atomic_ref<T>(field).store(value, std::memory_order_relaxed);
}

}  // namespace

BlockStore::BlockStore(std::uint64_t capacity_bytes, EvictionKind kind)
    : capacity_(capacity_bytes), kind_(kind) {
  table_.assign(kInitialTableSize, kNil);
}

BlockStore::BlockStore(std::uint64_t capacity_bytes,
                       const std::string& policy_name)
    : BlockStore(capacity_bytes, ParseEvictionKind(policy_name)) {}

// ----------------------------------------------------------- hash table

std::uint32_t BlockStore::FindSlot(BlockId block) const {
  const std::size_t mask = table_.size() - 1;
  std::size_t i = HashBlock(block) & mask;
  while (true) {
    const std::uint32_t s = RelaxedLoad(table_[i]);
    if (s == kNil) return kNil;
    if (RelaxedLoad(slots_[s].block) == block) return s;
    i = (i + 1) & mask;
  }
}

bool BlockStore::Probe(BlockId block) const {
  const std::size_t mask = table_.size() - 1;
  std::size_t i = HashBlock(block) & mask;
  // Bounded walk: with occupancy kept under 3/4 a quiescent table always
  // terminates on a kNil, but a reader racing a backward-shift deletion can
  // transiently see a longer (even cyclic) run. The bound makes that a
  // wrong answer — which the caller's seqlock validation discards — rather
  // than a hang.
  for (std::size_t step = 0; step <= mask; ++step) {
    const std::uint32_t s = RelaxedLoad(table_[i]);
    if (s == kNil) return false;
    if (RelaxedLoad(slots_[s].block) == block) return true;
    i = (i + 1) & mask;
  }
  return false;  // torn view under a concurrent writer; validation rejects
}

void BlockStore::TableInsert(std::uint32_t slot) {
  const std::size_t mask = table_.size() - 1;
  std::size_t i = HashBlock(slots_[slot].block) & mask;
  while (RelaxedLoad(table_[i]) != kNil) i = (i + 1) & mask;
  RelaxedStore(table_[i], slot);
}

void BlockStore::GrowTableIfNeeded() {
  // Keep occupancy under 3/4 so linear probes stay short.
  if ((num_blocks_ + 1) * 4 <= table_.size() * 3) return;
  // A probe-safe store can never grow: ReserveForConcurrentProbes sized the
  // table for the promised block bound, and reallocating here would free
  // memory a lock-free prober may still be reading.
  OPUS_CHECK_MSG(!probe_safe_.load(std::memory_order_relaxed),
                 "BlockStore grew past its ReserveForConcurrentProbes bound");
  std::vector<std::uint32_t> old = std::move(table_);
  table_.assign(old.size() * 2, kNil);
  for (std::uint32_t s : old) {
    if (s != kNil) TableInsert(s);
  }
}

void BlockStore::TableErase(BlockId block) {
  const std::size_t mask = table_.size() - 1;
  std::size_t i = HashBlock(block) & mask;
  while (table_[i] == kNil || slots_[table_[i]].block != block) {
    OPUS_CHECK(table_[i] != kNil);  // caller guarantees presence
    i = (i + 1) & mask;
  }
  // Backward-shift deletion (no tombstones): walk the probe chain after the
  // hole and pull back any entry whose ideal position does not lie in the
  // cyclic interval (hole, current].
  std::size_t j = i;
  while (true) {
    j = (j + 1) & mask;
    if (table_[j] == kNil) break;
    const std::size_t k = HashBlock(slots_[table_[j]].block) & mask;
    const bool reachable_from_own_run =
        (i <= j) ? (i < k && k <= j) : (i < k || k <= j);
    if (reachable_from_own_run) continue;
    RelaxedStore(table_[i], table_[j]);
    i = j;
  }
  RelaxedStore(table_[i], kNil);
}

void BlockStore::ReserveForConcurrentProbes(std::size_t max_blocks) {
  // Single-threaded by contract (no concurrent readers yet / quiescent
  // point), so plain rehashing and vector growth are fine here.
  while ((max_blocks + 1) * 4 > table_.size() * 3) {
    std::vector<std::uint32_t> old = std::move(table_);
    table_.assign(old.size() * 2, kNil);
    for (std::uint32_t s : old) {
      if (s != kNil) TableInsert(s);
    }
  }
  if (slots_.size() < max_blocks) {
    const std::size_t old_size = slots_.size();
    slots_.resize(max_blocks);
    // Push the new slots in descending index order so AllocSlot pops them
    // ascending — the same id order emplace_back would have produced.
    for (std::size_t s = max_blocks; s-- > old_size;) {
      slots_[s].next = free_head_;
      free_head_ = static_cast<std::uint32_t>(s);
    }
  }
  probe_safe_.store(true, std::memory_order_relaxed);
}

// ---------------------------------------------------------- slot storage

std::uint32_t BlockStore::AllocSlot() {
  if (free_head_ != kNil) {
    const std::uint32_t s = free_head_;
    free_head_ = slots_[s].next;
    return s;
  }
  // Same reasoning as GrowTableIfNeeded: growing the slot array would
  // reallocate under any lock-free prober, so a probe-safe store must
  // never exhaust its reserved free list.
  OPUS_CHECK_MSG(!probe_safe_.load(std::memory_order_relaxed),
                 "BlockStore outgrew its ReserveForConcurrentProbes bound");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void BlockStore::FreeSlot(std::uint32_t slot) {
  slots_[slot].bytes = 0;
  slots_[slot].pinned = false;
  slots_[slot].bucket = kNil;
  slots_[slot].next = free_head_;
  free_head_ = slot;
}

// ------------------------------------------------------------------ LRU

void BlockStore::LruPushBack(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.prev = lru_tail_;
  s.next = kNil;
  if (lru_tail_ != kNil) {
    slots_[lru_tail_].next = slot;
  } else {
    lru_head_ = slot;
  }
  lru_tail_ = slot;
}

void BlockStore::LruUnlink(std::uint32_t slot) {
  Slot& s = slots_[slot];
  if (s.prev != kNil) {
    slots_[s.prev].next = s.next;
  } else {
    lru_head_ = s.next;
  }
  if (s.next != kNil) {
    slots_[s.next].prev = s.prev;
  } else {
    lru_tail_ = s.prev;
  }
}

// ------------------------------------------------------------------ LFU

std::uint32_t BlockStore::AllocBucket() {
  if (bucket_free_ != kNil) {
    const std::uint32_t b = bucket_free_;
    bucket_free_ = buckets_[b].next;
    return b;
  }
  buckets_.emplace_back();
  return static_cast<std::uint32_t>(buckets_.size() - 1);
}

void BlockStore::FreeBucket(std::uint32_t bucket) {
  FreqBucket& b = buckets_[bucket];
  if (b.prev != kNil) {
    buckets_[b.prev].next = b.next;
  } else {
    bucket_head_ = b.next;
  }
  if (b.next != kNil) buckets_[b.next].prev = b.prev;
  b.next = bucket_free_;
  bucket_free_ = bucket;
}

void BlockStore::BucketAppend(std::uint32_t bucket, std::uint32_t slot) {
  FreqBucket& b = buckets_[bucket];
  Slot& s = slots_[slot];
  s.bucket = bucket;
  s.prev = b.tail;
  s.next = kNil;
  if (b.tail != kNil) {
    slots_[b.tail].next = slot;
  } else {
    b.head = slot;
  }
  b.tail = slot;
}

void BlockStore::BucketUnlink(std::uint32_t slot) {
  Slot& s = slots_[slot];
  FreqBucket& b = buckets_[s.bucket];
  if (s.prev != kNil) {
    slots_[s.prev].next = s.next;
  } else {
    b.head = s.next;
  }
  if (s.next != kNil) {
    slots_[s.next].prev = s.prev;
  } else {
    b.tail = s.prev;
  }
  const std::uint32_t owner = s.bucket;
  s.bucket = kNil;
  if (buckets_[owner].head == kNil) FreeBucket(owner);
}

// --------------------------------------------------------------- policy

void BlockStore::PolicyInsert(std::uint32_t slot) {
  if (kind_ == EvictionKind::kLru) {
    LruPushBack(slot);
    return;
  }
  // Fresh blocks enter at frequency 1. Arrival order within the bucket is
  // global insertion order, matching the reference's (freq=1, seq) keys.
  if (bucket_head_ == kNil || buckets_[bucket_head_].freq != 1) {
    const std::uint32_t b = AllocBucket();
    buckets_[b] = FreqBucket{};
    buckets_[b].freq = 1;
    buckets_[b].next = bucket_head_;
    buckets_[b].prev = kNil;
    if (bucket_head_ != kNil) buckets_[bucket_head_].prev = b;
    bucket_head_ = b;
  }
  BucketAppend(bucket_head_, slot);
}

void BlockStore::PolicyAccess(std::uint32_t slot) {
  if (kind_ == EvictionKind::kLru) {
    LruUnlink(slot);
    LruPushBack(slot);
    return;
  }
  // Move to the freq+1 bucket. Appending keeps the bucket ordered by bump
  // sequence — the reference reassigns seq on every bump, so arrival order
  // in the target bucket is exactly (freq+1, new seq) order.
  const std::uint32_t from = slots_[slot].bucket;
  const std::uint64_t freq = buckets_[from].freq;
  std::uint32_t target = buckets_[from].next;
  if (target == kNil || buckets_[target].freq != freq + 1) {
    target = AllocBucket();
    // AllocBucket may recycle; re-read `from` links after it.
    buckets_[target] = FreqBucket{};
    buckets_[target].freq = freq + 1;
    buckets_[target].prev = from;
    buckets_[target].next = buckets_[from].next;
    if (buckets_[from].next != kNil) buckets_[buckets_[from].next].prev = target;
    buckets_[from].next = target;
  }
  BucketUnlink(slot);  // may free `from` (relinks neighbours around it)
  BucketAppend(target, slot);
}

void BlockStore::PolicyRemove(std::uint32_t slot) {
  if (kind_ == EvictionKind::kLru) {
    LruUnlink(slot);
    return;
  }
  BucketUnlink(slot);
}

std::uint32_t BlockStore::PolicyVictim() const {
  if (kind_ == EvictionKind::kLru) return lru_head_;
  if (bucket_head_ == kNil) return kNil;
  return buckets_[bucket_head_].head;
}

// ------------------------------------------------------------------ API

bool BlockStore::Insert(BlockId block, std::uint64_t bytes) {
  OPUS_CHECK_GT(bytes, 0u);
  const std::uint32_t existing = FindSlot(block);
  if (existing != kNil) {
    // Re-insert of a resident block counts as an access: refresh recency /
    // frequency so cache-on-read paths that Insert on hit stay honest.
    if (!slots_[existing].pinned) PolicyAccess(existing);
    return true;
  }
  if (bytes > capacity_) return false;
  while (used_ + bytes > capacity_) {
    if (!EvictOne()) return false;
  }
  const std::uint32_t slot = AllocSlot();
  RelaxedStore(slots_[slot].block, block);
  slots_[slot].bytes = bytes;
  slots_[slot].pinned = false;
  GrowTableIfNeeded();
  TableInsert(slot);
  ++num_blocks_;
  used_ += bytes;
  PolicyInsert(slot);
  return true;
}

bool BlockStore::EvictOne() {
  const std::uint32_t victim = PolicyVictim();
  if (victim == kNil) return false;  // everything remaining is pinned
  used_ -= slots_[victim].bytes;
  PolicyRemove(victim);
  TableErase(slots_[victim].block);
  FreeSlot(victim);
  --num_blocks_;
  ++evictions_;
  if (eviction_counter_ != nullptr) eviction_counter_->Increment();
  return true;
}

bool BlockStore::Access(BlockId block) {
  const std::uint32_t slot = FindSlot(block);
  if (slot == kNil) return false;
  if (!slots_[slot].pinned) PolicyAccess(slot);
  return true;
}

bool BlockStore::Contains(BlockId block) const {
  return FindSlot(block) != kNil;
}

void BlockStore::Erase(BlockId block) {
  const std::uint32_t slot = FindSlot(block);
  if (slot == kNil) return;
  used_ -= slots_[slot].bytes;
  if (slots_[slot].pinned) {
    pinned_bytes_ -= slots_[slot].bytes;
  } else {
    PolicyRemove(slot);
  }
  TableErase(block);
  FreeSlot(slot);
  --num_blocks_;
}

bool BlockStore::Pin(BlockId block) {
  const std::uint32_t slot = FindSlot(block);
  if (slot == kNil) return false;
  if (!slots_[slot].pinned) {
    slots_[slot].pinned = true;
    pinned_bytes_ += slots_[slot].bytes;
    // Pinned blocks leave the eviction order so they can never be victims.
    PolicyRemove(slot);
  }
  return true;
}

void BlockStore::Unpin(BlockId block) {
  const std::uint32_t slot = FindSlot(block);
  if (slot == kNil) return;
  if (slots_[slot].pinned) {
    slots_[slot].pinned = false;
    pinned_bytes_ -= slots_[slot].bytes;
    PolicyInsert(slot);
  }
}

bool BlockStore::IsPinned(BlockId block) const {
  const std::uint32_t slot = FindSlot(block);
  return slot != kNil && slots_[slot].pinned;
}

std::vector<BlockId> BlockStore::ResidentBlocks() const {
  std::vector<BlockId> out;
  out.reserve(num_blocks_);
  for (const Slot& s : slots_) {
    if (s.bytes > 0) out.push_back(s.block);
  }
  return out;
}

}  // namespace opus::cache
