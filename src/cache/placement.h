// Block-to-worker placement policies.
//
// The default placement hashes blocks round-robin-style modulo the worker
// count — perfectly balanced but maximally disruptive under membership
// change (resizing from W to W-1 remaps ~(W-1)/W of all blocks). The
// consistent-hash ring (with virtual nodes) trades a little balance for
// minimal remapping: removing one of W workers moves only ~1/W of blocks,
// which matters when worker churn forces cache re-population from the
// under store.
//
// The ring is stored as a sorted flat vector of (point, worker) pairs —
// Place is a branch-free binary search over contiguous memory instead of a
// pointer-chasing std::map walk. Membership is fixed after construction
// (Without builds a new ring), so the vector never mutates on the read
// path.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cache/types.h"

namespace opus::cache {

// Stateless modulo placement (the cluster default).
WorkerId ModuloPlace(BlockId block, std::uint32_t num_workers);

// The splitmix64 mixer the ring hashes blocks and virtual nodes with.
// Exposed so reference implementations (benchmarks, tests) can replicate
// ring placement exactly.
std::uint64_t PlacementHash(std::uint64_t x);

// Consistent-hash ring over worker ids with virtual nodes.
class ConsistentHashRing {
 public:
  // Builds a ring for workers 0..num_workers-1. More virtual nodes =
  // better balance at higher memory cost.
  explicit ConsistentHashRing(std::uint32_t num_workers,
                              std::uint32_t virtual_nodes = 64);

  // Worker owning `block` (the first ring point clockwise of its hash).
  WorkerId Place(BlockId block) const;

  // A new ring with `worker` removed (its ranges fall to ring successors).
  ConsistentHashRing Without(WorkerId worker) const;

  std::uint32_t num_workers() const { return num_workers_; }
  std::size_t ring_size() const { return ring_.size(); }

 private:
  ConsistentHashRing() = default;

  std::uint32_t num_workers_ = 0;
  // (hash point, worker), sorted by point, points unique.
  std::vector<std::pair<std::uint64_t, WorkerId>> ring_;
};

}  // namespace opus::cache
