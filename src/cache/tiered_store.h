// Two-tier block store (MEM over SSD), modeled on Alluxio's tiered storage.
//
// Inserts land in the memory tier; when memory is full, eviction victims
// are *demoted* to the SSD tier instead of discarded; the SSD tier evicts
// to the under store (discard) under its own policy. Accessing a block on
// SSD optionally promotes it back to memory (Alluxio's default), demoting
// memory victims to make room. Pinned blocks live in memory and are never
// demoted.
//
// The cluster substrate uses the flat BlockStore (the paper's deployment is
// memory-only); TieredStore backs the tiered-cache ablation bench and is a
// drop-in for single-node experiments.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "cache/eviction.h"
#include "cache/types.h"
#include "obs/event_trace.h"
#include "obs/metrics.h"
#include "obs/span_trace.h"

namespace opus::cache {

enum class Tier { kNone, kMemory, kSsd };

struct TieredStoreConfig {
  std::uint64_t memory_capacity_bytes = 0;
  std::uint64_t ssd_capacity_bytes = 0;
  // Promote SSD hits back to memory (demoting memory victims).
  bool promote_on_access = true;
  std::string eviction_policy = "lru";  // used by both tiers
};

struct TieredStats {
  std::uint64_t demotions = 0;    // MEM -> SSD
  std::uint64_t promotions = 0;   // SSD -> MEM
  std::uint64_t ssd_evictions = 0;  // SSD -> gone
};

class TieredStore {
 public:
  explicit TieredStore(TieredStoreConfig config);

  // Inserts into the memory tier (demoting victims as needed). Returns
  // false when the block cannot land in memory even after
  // demotions/evictions (e.g. larger than the memory tier, or everything
  // resident is pinned). Inserting a memory-resident block is a no-op
  // returning true; inserting an SSD-resident block attempts promotion —
  // an insert "succeeds" only when the block ends up on the fast tier.
  bool Insert(BlockId block, std::uint64_t bytes);

  // Records an access; returns where the block was found (before any
  // promotion). Promotes on SSD hits when configured.
  Tier Access(BlockId block);

  // Where the block currently lives (no side effects).
  Tier Locate(BlockId block) const;

  // Removes a block from whichever tier holds it.
  void Erase(BlockId block);

  // Pins a block; if it is on SSD it is promoted first. Returns false when
  // absent or when promotion cannot fit.
  bool Pin(BlockId block);
  void Unpin(BlockId block);

  std::uint64_t memory_used() const { return mem_used_; }
  std::uint64_t ssd_used() const { return ssd_used_; }
  const TieredStats& stats() const { return stats_; }
  const TieredStoreConfig& config() const { return config_; }

  // Mirrors tier movements into a registry ("tier.demotions",
  // "tier.promotions", "tier.ssd_evictions") and emits per-block
  // demote/promote/evict events. With `spans`, every Access/Insert opens a
  // "tier.access"/"tier.insert" span whose children ("tier.promote",
  // "tier.demote") expose promotion attempts and the demotion cascades
  // they trigger. Any pointer may be null; all must outlive the store.
  void AttachObservability(obs::MetricsRegistry* registry,
                           obs::EventTrace* trace,
                           obs::SpanTrace* spans = nullptr);

 private:
  // Makes room for `bytes` in memory by demoting unpinned victims; false
  // if impossible.
  bool MakeMemoryRoom(std::uint64_t bytes);
  // Makes room in SSD by evicting; false if impossible.
  bool MakeSsdRoom(std::uint64_t bytes);
  void DemoteOne();
  bool PromoteToMemory(BlockId block);
  // Capacity accounting invariant, checked after every mutating operation:
  // neither tier's used bytes may exceed its configured capacity.
  void CheckCapacityInvariant() const;
  void EmitEvent(const char* kind, BlockId block, std::uint64_t bytes);

  TieredStoreConfig config_;
  std::unique_ptr<EvictionPolicy> mem_policy_;
  std::unique_ptr<EvictionPolicy> ssd_policy_;
  std::unordered_map<BlockId, std::uint64_t> mem_blocks_;
  std::unordered_map<BlockId, std::uint64_t> ssd_blocks_;
  std::unordered_set<BlockId> pinned_;
  std::uint64_t mem_used_ = 0;
  std::uint64_t ssd_used_ = 0;
  TieredStats stats_;
  obs::EventTrace* trace_ = nullptr;             // borrowed, optional
  obs::SpanTrace* spans_ = nullptr;              // borrowed, optional
  obs::Counter* demotions_counter_ = nullptr;    // borrowed, optional
  obs::Counter* promotions_counter_ = nullptr;   // borrowed, optional
  obs::Counter* ssd_evictions_counter_ = nullptr;  // borrowed, optional
};

}  // namespace opus::cache
