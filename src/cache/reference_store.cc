#include "cache/reference_store.h"

#include "common/check.h"

namespace opus::cache {

ReferenceBlockStore::ReferenceBlockStore(std::uint64_t capacity_bytes,
                                         std::unique_ptr<EvictionPolicy> policy)
    : capacity_(capacity_bytes), policy_(std::move(policy)) {
  OPUS_CHECK(policy_ != nullptr);
}

bool ReferenceBlockStore::Insert(BlockId block, std::uint64_t bytes) {
  OPUS_CHECK_GT(bytes, 0u);
  if (blocks_.count(block) != 0) {
    // Same contract as BlockStore: re-insert refreshes recency/frequency
    // (pinned blocks are untracked by the policy, so OnAccess is a no-op).
    policy_->OnAccess(block);
    return true;
  }
  if (bytes > capacity_) return false;
  while (used_ + bytes > capacity_) {
    if (!EvictOne()) return false;
  }
  blocks_[block] = bytes;
  used_ += bytes;
  policy_->OnInsert(block);
  return true;
}

bool ReferenceBlockStore::EvictOne() {
  const auto victim = policy_->Victim();
  if (!victim.has_value()) return false;  // everything remaining is pinned
  const auto it = blocks_.find(*victim);
  OPUS_CHECK(it != blocks_.end());
  used_ -= it->second;
  blocks_.erase(it);
  policy_->OnRemove(*victim);
  ++evictions_;
  if (eviction_counter_ != nullptr) eviction_counter_->Increment();
  return true;
}

bool ReferenceBlockStore::Access(BlockId block) {
  if (blocks_.count(block) == 0) return false;
  policy_->OnAccess(block);
  return true;
}

bool ReferenceBlockStore::Contains(BlockId block) const {
  return blocks_.count(block) != 0;
}

void ReferenceBlockStore::Erase(BlockId block) {
  const auto it = blocks_.find(block);
  if (it == blocks_.end()) return;
  used_ -= it->second;
  if (pinned_.erase(block) != 0) pinned_bytes_ -= it->second;
  blocks_.erase(it);
  policy_->OnRemove(block);
}

bool ReferenceBlockStore::Pin(BlockId block) {
  const auto it = blocks_.find(block);
  if (it == blocks_.end()) return false;
  if (pinned_.insert(block).second) {
    pinned_bytes_ += it->second;
    // Pinned blocks leave the eviction policy so they can never be victims.
    policy_->OnRemove(block);
  }
  return true;
}

void ReferenceBlockStore::Unpin(BlockId block) {
  const auto it = blocks_.find(block);
  if (it == blocks_.end()) return;
  if (pinned_.erase(block) != 0) {
    pinned_bytes_ -= it->second;
    policy_->OnInsert(block);
  }
}

bool ReferenceBlockStore::IsPinned(BlockId block) const {
  return pinned_.count(block) != 0;
}

std::vector<BlockId> ReferenceBlockStore::ResidentBlocks() const {
  std::vector<BlockId> out;
  out.reserve(blocks_.size());
  for (const auto& [block, bytes] : blocks_) out.push_back(block);
  return out;
}

}  // namespace opus::cache
