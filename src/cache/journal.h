// Master journal — durable record of control-plane decisions, in the
// spirit of the Alluxio master journal: every allocation the master applies
// (file fractions + per-user access model) is appended as an entry, and a
// fresh cluster can be brought to the same logical cache state by
// replaying the journal tail (the latest allocation epoch).
//
// Serialization is line-oriented CSV so journals are greppable and
// diffable; Save/Load round-trip through analysis::CsvTable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cache/cluster.h"
#include "common/matrix.h"

namespace opus::cache {

struct JournalEntry {
  std::uint64_t epoch = 0;
  std::vector<double> file_fractions;
  Matrix unblocked_share;  // may be empty (no blocking model)
};

class Journal {
 public:
  // Appends a control-plane decision. Epochs must be strictly increasing.
  void Append(JournalEntry entry);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const JournalEntry& entry(std::size_t idx) const;
  const JournalEntry& latest() const;

  // Replays the latest entry onto `cluster` (ApplyAllocation +
  // SetAccessModel), restoring the logical cache state after e.g. a master
  // restart. No-op on an empty journal.
  void ReplayLatest(CacheCluster* cluster) const;

  // Text round-trip.
  std::string Serialize() const;
  static std::optional<Journal> Deserialize(const std::string& text);

  // Drops all entries older than the latest `keep` (compaction).
  void Compact(std::size_t keep = 1);

 private:
  std::vector<JournalEntry> entries_;
};

}  // namespace opus::cache
