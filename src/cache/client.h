// ClientSession — the application-facing handle of the mini-Alluxio stack
// (paper Fig. 4: applications talk to the master through per-client
// sessions identified by their OpuS client id).
//
// A session binds a UserId to a cluster and tracks per-session metrics:
// reads, bytes by source, effective hits, and latency aggregates. Sessions
// are cheap value-ish objects; many sessions may share one cluster.
#pragma once

#include <cstdint>
#include <string>

#include "cache/cluster.h"

namespace opus::cache {

struct SessionStats {
  std::uint64_t reads = 0;
  std::uint64_t bytes_from_memory = 0;
  std::uint64_t bytes_from_disk = 0;
  double effective_hit_sum = 0.0;  // sum of per-read effective hits
  double total_latency_sec = 0.0;
  double max_latency_sec = 0.0;

  // Mean effective hit ratio over this session's reads (0 when idle).
  double EffectiveHitRatio() const;

  // Mean read latency (0 when idle).
  double MeanLatencySec() const;
};

class ClientSession {
 public:
  // `cluster` must outlive the session. `user` must be a valid UserId for
  // the cluster's configuration.
  ClientSession(CacheCluster* cluster, UserId user, std::string name = "");

  UserId user() const { return user_; }
  const std::string& name() const { return name_; }

  // Reads a file by id, updating session metrics.
  ReadResult Read(FileId file);

  // Reads a file by catalog name. Aborts if the name is unknown.
  ReadResult Read(const std::string& file_name);

  const SessionStats& stats() const { return stats_; }
  void ResetStats() { stats_ = SessionStats{}; }

 private:
  CacheCluster* cluster_;
  UserId user_;
  std::string name_;
  SessionStats stats_;
};

}  // namespace opus::cache
