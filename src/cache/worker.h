// A cache worker: one node's share of cluster memory plus its block store.
// Workers execute CacheUpdate messages from the master and serve block
// reads; they know nothing about users, preferences, or allocation policy.
#pragma once

#include <cstdint>

#include "cache/block_store.h"
#include "cache/messages.h"
#include "cache/types.h"

namespace opus::cache {

class Worker {
 public:
  Worker(WorkerId id, std::uint64_t capacity_bytes, EvictionKind eviction);

  WorkerId id() const { return id_; }
  BlockStore& store() { return store_; }
  const BlockStore& store() const { return store_; }

  // Applies a CacheUpdate: unpins, loads (inserting if absent), then pins.
  // `block_bytes(block)` supplies sizes for loads. Returns the number of
  // load requests that could not fit.
  template <typename BlockBytesFn>
  std::uint64_t Apply(const CacheUpdate& update, BlockBytesFn block_bytes) {
    std::uint64_t failed = 0;
    for (BlockId b : update.unpin) store_.Unpin(b);
    for (BlockId b : update.load) {
      if (!store_.Insert(b, block_bytes(b))) ++failed;
    }
    for (BlockId b : update.pin) {
      if (!store_.Pin(b)) ++failed;
    }
    return failed;
  }

 private:
  WorkerId id_;
  BlockStore store_;
};

}  // namespace opus::cache
