#include "cache/tiered_store.h"

#include "common/check.h"

namespace opus::cache {

TieredStore::TieredStore(TieredStoreConfig config)
    : config_(config),
      mem_policy_(MakeEvictionPolicy(config.eviction_policy)),
      ssd_policy_(MakeEvictionPolicy(config.eviction_policy)) {}

bool TieredStore::Insert(BlockId block, std::uint64_t bytes) {
  OPUS_CHECK_GT(bytes, 0u);
  if (mem_blocks_.count(block) != 0 || ssd_blocks_.count(block) != 0) {
    return true;
  }
  if (bytes > config_.memory_capacity_bytes) return false;
  if (!MakeMemoryRoom(bytes)) return false;
  mem_blocks_[block] = bytes;
  mem_used_ += bytes;
  mem_policy_->OnInsert(block);
  return true;
}

bool TieredStore::MakeMemoryRoom(std::uint64_t bytes) {
  while (mem_used_ + bytes > config_.memory_capacity_bytes) {
    if (!mem_policy_->Victim().has_value()) return false;  // all pinned
    DemoteOne();
  }
  return true;
}

void TieredStore::DemoteOne() {
  const auto victim = mem_policy_->Victim();
  OPUS_CHECK(victim.has_value());
  const auto it = mem_blocks_.find(*victim);
  OPUS_CHECK(it != mem_blocks_.end());
  const std::uint64_t bytes = it->second;
  mem_used_ -= bytes;
  mem_blocks_.erase(it);
  mem_policy_->OnRemove(*victim);
  ++stats_.demotions;

  // Demote to SSD when it fits; otherwise the block is simply dropped (an
  // SSD eviction in spirit: the data survives in the under store).
  if (bytes <= config_.ssd_capacity_bytes && MakeSsdRoom(bytes)) {
    ssd_blocks_[*victim] = bytes;
    ssd_used_ += bytes;
    ssd_policy_->OnInsert(*victim);
  } else {
    ++stats_.ssd_evictions;
  }
}

bool TieredStore::MakeSsdRoom(std::uint64_t bytes) {
  while (ssd_used_ + bytes > config_.ssd_capacity_bytes) {
    const auto victim = ssd_policy_->Victim();
    if (!victim.has_value()) return false;
    const auto it = ssd_blocks_.find(*victim);
    OPUS_CHECK(it != ssd_blocks_.end());
    ssd_used_ -= it->second;
    ssd_blocks_.erase(it);
    ssd_policy_->OnRemove(*victim);
    ++stats_.ssd_evictions;
  }
  return true;
}

Tier TieredStore::Access(BlockId block) {
  if (mem_blocks_.count(block) != 0) {
    mem_policy_->OnAccess(block);
    return Tier::kMemory;
  }
  if (ssd_blocks_.count(block) != 0) {
    ssd_policy_->OnAccess(block);
    if (config_.promote_on_access) PromoteToMemory(block);
    return Tier::kSsd;
  }
  return Tier::kNone;
}

bool TieredStore::PromoteToMemory(BlockId block) {
  const auto it = ssd_blocks_.find(block);
  if (it == ssd_blocks_.end()) return false;
  const std::uint64_t bytes = it->second;
  if (bytes > config_.memory_capacity_bytes) return false;
  // Remove from SSD first so a demotion cascade cannot collide with it.
  ssd_used_ -= bytes;
  ssd_blocks_.erase(it);
  ssd_policy_->OnRemove(block);
  if (!MakeMemoryRoom(bytes)) {
    // Memory fully pinned: put it back on SSD (room still reserved).
    ssd_blocks_[block] = bytes;
    ssd_used_ += bytes;
    ssd_policy_->OnInsert(block);
    return false;
  }
  mem_blocks_[block] = bytes;
  mem_used_ += bytes;
  mem_policy_->OnInsert(block);
  ++stats_.promotions;
  return true;
}

Tier TieredStore::Locate(BlockId block) const {
  if (mem_blocks_.count(block) != 0) return Tier::kMemory;
  if (ssd_blocks_.count(block) != 0) return Tier::kSsd;
  return Tier::kNone;
}

void TieredStore::Erase(BlockId block) {
  auto mem = mem_blocks_.find(block);
  if (mem != mem_blocks_.end()) {
    mem_used_ -= mem->second;
    mem_blocks_.erase(mem);
    mem_policy_->OnRemove(block);
    pinned_.erase(block);
    return;
  }
  auto ssd = ssd_blocks_.find(block);
  if (ssd != ssd_blocks_.end()) {
    ssd_used_ -= ssd->second;
    ssd_blocks_.erase(ssd);
    ssd_policy_->OnRemove(block);
  }
}

bool TieredStore::Pin(BlockId block) {
  if (mem_blocks_.count(block) == 0) {
    if (ssd_blocks_.count(block) == 0) return false;
    if (!PromoteToMemory(block)) return false;
  }
  if (pinned_.insert(block).second) {
    mem_policy_->OnRemove(block);  // never a demotion victim
  }
  return true;
}

void TieredStore::Unpin(BlockId block) {
  if (pinned_.erase(block) != 0 && mem_blocks_.count(block) != 0) {
    mem_policy_->OnInsert(block);
  }
}

}  // namespace opus::cache
