#include "cache/tiered_store.h"

#include "common/check.h"

namespace opus::cache {

TieredStore::TieredStore(TieredStoreConfig config)
    : config_(config),
      mem_policy_(MakeEvictionPolicy(config.eviction_policy)),
      ssd_policy_(MakeEvictionPolicy(config.eviction_policy)) {}

namespace {

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kMemory:
      return "memory";
    case Tier::kSsd:
      return "ssd";
    case Tier::kNone:
      return "none";
  }
  return "none";
}

}  // namespace

void TieredStore::AttachObservability(obs::MetricsRegistry* registry,
                                      obs::EventTrace* trace,
                                      obs::SpanTrace* spans) {
  trace_ = trace;
  spans_ = spans;
  if (registry != nullptr) {
    demotions_counter_ = &registry->counter("tier.demotions");
    promotions_counter_ = &registry->counter("tier.promotions");
    ssd_evictions_counter_ = &registry->counter("tier.ssd_evictions");
  } else {
    demotions_counter_ = nullptr;
    promotions_counter_ = nullptr;
    ssd_evictions_counter_ = nullptr;
  }
}

void TieredStore::EmitEvent(const char* kind, BlockId block,
                            std::uint64_t bytes) {
  if (trace_ == nullptr) return;
  trace_->Emit(kind, {{"block", std::to_string(block)},
                      {"bytes", std::to_string(bytes)}});
}

void TieredStore::CheckCapacityInvariant() const {
  OPUS_CHECK_LE(mem_used_, config_.memory_capacity_bytes);
  OPUS_CHECK_LE(ssd_used_, config_.ssd_capacity_bytes);
}

bool TieredStore::Insert(BlockId block, std::uint64_t bytes) {
  OPUS_CHECK_GT(bytes, 0u);
  obs::ScopedSpan span(spans_, "tier.insert");
  if (span.active()) {
    span.AddAttr("block", std::to_string(block));
    span.AddAttr("bytes", std::to_string(bytes));
  }
  if (mem_blocks_.count(block) != 0) {
    span.AddAttr("outcome", "already_in_memory");
    return true;
  }
  if (ssd_blocks_.count(block) != 0) {
    // A load wants the block on the fast tier; SSD residency is not
    // success. Try promoting (the managed pin path relies on this — a
    // "successful" insert that leaves the block on SSD would silently serve
    // it at SSD speed forever).
    const bool promoted = PromoteToMemory(block);
    CheckCapacityInvariant();
    span.AddAttr("outcome", promoted ? "promoted" : "promotion_failed");
    return promoted;
  }
  if (bytes > config_.memory_capacity_bytes) {
    span.AddAttr("outcome", "too_large");
    return false;
  }
  if (!MakeMemoryRoom(bytes)) {
    span.AddAttr("outcome", "no_room");
    return false;
  }
  mem_blocks_[block] = bytes;
  mem_used_ += bytes;
  mem_policy_->OnInsert(block);
  CheckCapacityInvariant();
  span.AddAttr("outcome", "inserted");
  return true;
}

bool TieredStore::MakeMemoryRoom(std::uint64_t bytes) {
  while (mem_used_ + bytes > config_.memory_capacity_bytes) {
    if (!mem_policy_->Victim().has_value()) return false;  // all pinned
    DemoteOne();
  }
  return true;
}

void TieredStore::DemoteOne() {
  const auto victim = mem_policy_->Victim();
  OPUS_CHECK(victim.has_value());
  const auto it = mem_blocks_.find(*victim);
  OPUS_CHECK(it != mem_blocks_.end());
  const std::uint64_t bytes = it->second;
  obs::ScopedSpan span(spans_, "tier.demote");
  if (span.active()) {
    span.AddAttr("block", std::to_string(*victim));
    span.AddAttr("bytes", std::to_string(bytes));
  }
  mem_used_ -= bytes;
  mem_blocks_.erase(it);
  mem_policy_->OnRemove(*victim);
  ++stats_.demotions;
  if (demotions_counter_ != nullptr) demotions_counter_->Increment();

  // Demote to SSD when it fits; otherwise the block is simply dropped (an
  // SSD eviction in spirit: the data survives in the under store).
  if (bytes <= config_.ssd_capacity_bytes && MakeSsdRoom(bytes)) {
    ssd_blocks_[*victim] = bytes;
    ssd_used_ += bytes;
    ssd_policy_->OnInsert(*victim);
    EmitEvent("tier.block_demoted", *victim, bytes);
    span.AddAttr("outcome", "demoted_to_ssd");
  } else {
    ++stats_.ssd_evictions;
    if (ssd_evictions_counter_ != nullptr) ssd_evictions_counter_->Increment();
    EmitEvent("tier.block_evicted", *victim, bytes);
    span.AddAttr("outcome", "evicted");
  }
}

bool TieredStore::MakeSsdRoom(std::uint64_t bytes) {
  while (ssd_used_ + bytes > config_.ssd_capacity_bytes) {
    const auto victim = ssd_policy_->Victim();
    if (!victim.has_value()) return false;
    const auto it = ssd_blocks_.find(*victim);
    OPUS_CHECK(it != ssd_blocks_.end());
    const std::uint64_t victim_bytes = it->second;
    ssd_used_ -= victim_bytes;
    ssd_blocks_.erase(it);
    ssd_policy_->OnRemove(*victim);
    ++stats_.ssd_evictions;
    if (ssd_evictions_counter_ != nullptr) ssd_evictions_counter_->Increment();
    EmitEvent("tier.block_evicted", *victim, victim_bytes);
  }
  return true;
}

Tier TieredStore::Access(BlockId block) {
  obs::ScopedSpan span(spans_, "tier.access");
  if (span.active()) span.AddAttr("block", std::to_string(block));
  if (mem_blocks_.count(block) != 0) {
    mem_policy_->OnAccess(block);
    span.AddAttr("tier", TierName(Tier::kMemory));
    return Tier::kMemory;
  }
  if (ssd_blocks_.count(block) != 0) {
    ssd_policy_->OnAccess(block);
    span.AddAttr("tier", TierName(Tier::kSsd));
    if (config_.promote_on_access) {
      PromoteToMemory(block);
      CheckCapacityInvariant();
    }
    return Tier::kSsd;
  }
  span.AddAttr("tier", TierName(Tier::kNone));
  return Tier::kNone;
}

bool TieredStore::PromoteToMemory(BlockId block) {
  const auto it = ssd_blocks_.find(block);
  if (it == ssd_blocks_.end()) return false;
  const std::uint64_t bytes = it->second;
  obs::ScopedSpan span(spans_, "tier.promote");
  if (span.active()) {
    span.AddAttr("block", std::to_string(block));
    span.AddAttr("bytes", std::to_string(bytes));
  }
  if (bytes > config_.memory_capacity_bytes) {
    span.AddAttr("outcome", "too_large");
    return false;
  }
  // Remove from SSD first so a demotion cascade cannot collide with it.
  ssd_used_ -= bytes;
  ssd_blocks_.erase(it);
  ssd_policy_->OnRemove(block);
  if (!MakeMemoryRoom(bytes)) {
    // Memory fully pinned: return the block to SSD. The demotion cascade
    // above may have consumed the room this block freed, so the room must
    // be re-reserved; when the SSD can no longer hold the block it is
    // dropped (the data survives in the under store).
    if (MakeSsdRoom(bytes)) {
      ssd_blocks_[block] = bytes;
      ssd_used_ += bytes;
      ssd_policy_->OnInsert(block);
    } else {
      ++stats_.ssd_evictions;
      if (ssd_evictions_counter_ != nullptr) {
        ssd_evictions_counter_->Increment();
      }
      EmitEvent("tier.block_evicted", block, bytes);
    }
    CheckCapacityInvariant();
    span.AddAttr("outcome", "no_room");
    return false;
  }
  mem_blocks_[block] = bytes;
  mem_used_ += bytes;
  mem_policy_->OnInsert(block);
  ++stats_.promotions;
  if (promotions_counter_ != nullptr) promotions_counter_->Increment();
  EmitEvent("tier.block_promoted", block, bytes);
  CheckCapacityInvariant();
  span.AddAttr("outcome", "promoted");
  return true;
}

Tier TieredStore::Locate(BlockId block) const {
  if (mem_blocks_.count(block) != 0) return Tier::kMemory;
  if (ssd_blocks_.count(block) != 0) return Tier::kSsd;
  return Tier::kNone;
}

void TieredStore::Erase(BlockId block) {
  auto mem = mem_blocks_.find(block);
  if (mem != mem_blocks_.end()) {
    mem_used_ -= mem->second;
    mem_blocks_.erase(mem);
    mem_policy_->OnRemove(block);
    pinned_.erase(block);
    return;
  }
  auto ssd = ssd_blocks_.find(block);
  if (ssd != ssd_blocks_.end()) {
    ssd_used_ -= ssd->second;
    ssd_blocks_.erase(ssd);
    ssd_policy_->OnRemove(block);
  }
}

bool TieredStore::Pin(BlockId block) {
  if (mem_blocks_.count(block) == 0) {
    if (ssd_blocks_.count(block) == 0) return false;
    if (!PromoteToMemory(block)) return false;
  }
  if (pinned_.insert(block).second) {
    mem_policy_->OnRemove(block);  // never a demotion victim
  }
  return true;
}

void TieredStore::Unpin(BlockId block) {
  if (pinned_.erase(block) != 0 && mem_blocks_.count(block) != 0) {
    mem_policy_->OnInsert(block);
  }
}

}  // namespace opus::cache
