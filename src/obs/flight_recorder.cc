#include "obs/flight_recorder.h"

#include <algorithm>

namespace opus::obs {

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(config), epoch_ns_(MonotonicNanos()) {
  if (config_.capacity == 0) config_.capacity = 1;
}

void FlightRecorder::RecordSpan(
    std::string name, std::uint64_t begin_ns, std::uint64_t end_ns,
    std::vector<std::pair<std::string, std::string>> attrs) {
  SpanRecord s;
  s.id = next_id_++;
  s.parent = 0;
  s.name = std::move(name);
  s.begin_tick = begin_ns > epoch_ns_ ? begin_ns - epoch_ns_ : 0;
  const std::uint64_t end = end_ns > epoch_ns_ ? end_ns - epoch_ns_ : 0;
  s.end_tick = std::max(end, s.begin_tick);
  s.attrs = std::move(attrs);
  if (ring_.size() == config_.capacity) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(s));
}

void FlightRecorder::RecordEvent(
    std::string name, std::vector<std::pair<std::string, std::string>> attrs,
    std::uint64_t at_ns) {
  if (at_ns == 0) at_ns = MonotonicNanos();
  RecordSpan(std::move(name), at_ns, at_ns, std::move(attrs));
}

std::vector<SpanRecord> FlightRecorder::Snapshot() const {
  return std::vector<SpanRecord>(ring_.begin(), ring_.end());
}

std::string FlightRecorder::DumpPerfettoJson(
    const std::vector<LatencySample>& latency) const {
  std::vector<SpanRecord> spans = Snapshot();
  // The latency snapshot rides along as instant spans at the dump moment,
  // so a Perfetto view shows the quantile state next to the span timeline.
  const std::uint64_t now = MonotonicNanos();
  const std::uint64_t tick = now > epoch_ns_ ? now - epoch_ns_ : 0;
  std::uint64_t id = next_id_;
  for (const LatencySample& s : latency) {
    SpanRecord r;
    r.id = id++;
    r.name = "flight.latency." + s.name;
    r.begin_tick = tick;
    r.end_tick = tick;
    r.attrs = {{"count", std::to_string(s.count)},
               {"sum", std::to_string(s.sum)},
               {"min", std::to_string(s.min)},
               {"max", std::to_string(s.max)},
               {"p50", std::to_string(s.p50)},
               {"p90", std::to_string(s.p90)},
               {"p99", std::to_string(s.p99)},
               {"p999", std::to_string(s.p999)}};
    spans.push_back(std::move(r));
  }
  return SpansToPerfettoJson(spans);
}

}  // namespace opus::obs
