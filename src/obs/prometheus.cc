#include "obs/prometheus.h"

#include <cmath>
#include <cstdint>
#include <sstream>

namespace opus::obs {
namespace {

// Prometheus renders non-finite values as +Inf/-Inf/NaN (FormatDouble's
// "inf"/"nan" spellings are not valid exposition-format floats).
std::string PromDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return FormatDouble(v);
}

void EmitHeader(std::ostringstream& out, const std::string& family,
                const char* kind, const std::string& source) {
  out << "# HELP " << family << " OpuS " << kind << ' ' << source << '\n';
  out << "# TYPE " << family << ' ' << kind << '\n';
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out = "opus_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string MetricsToPrometheus(const MetricsSnapshot& snapshot,
                                const std::vector<LatencySample>& latency) {
  std::ostringstream out;
  for (const CounterSample& c : snapshot.counters) {
    const std::string family = PrometheusName(c.name);
    EmitHeader(out, family, "counter", c.name);
    out << family << ' ' << c.value << '\n';
  }
  for (const GaugeSample& g : snapshot.gauges) {
    const std::string family = PrometheusName(g.name);
    EmitHeader(out, family, "gauge", g.name);
    out << family << ' ' << PromDouble(g.value) << '\n';
  }
  for (const HistogramSample& h : snapshot.histograms) {
    const std::string family = PrometheusName(h.name);
    EmitHeader(out, family, "histogram", h.name);
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      cumulative += b < h.counts.size() ? h.counts[b] : 0;
      out << family << "_bucket{le=\"" << PromDouble(h.bounds[b]) << "\"} "
          << cumulative << '\n';
    }
    out << family << "_bucket{le=\"+Inf\"} " << h.count << '\n';
    out << family << "_sum " << PromDouble(h.sum) << '\n';
    out << family << "_count " << h.count << '\n';
  }
  for (const LatencySample& s : latency) {
    const std::string family = PrometheusName(s.name);
    EmitHeader(out, family, "summary", s.name);
    out << family << "{quantile=\"0.5\"} " << s.p50 << '\n';
    out << family << "{quantile=\"0.9\"} " << s.p90 << '\n';
    out << family << "{quantile=\"0.99\"} " << s.p99 << '\n';
    out << family << "{quantile=\"0.999\"} " << s.p999 << '\n';
    out << family << "_sum " << s.sum << '\n';
    out << family << "_count " << s.count << '\n';
  }
  return out.str();
}

}  // namespace opus::obs
