#include "obs/span_trace.h"

#include <sstream>

#include "common/check.h"
#include "obs/json.h"

namespace opus::obs {

SpanTrace::SpanTrace(SpanTraceConfig config) : config_(config) {
  if (config_.sample_every > 0) {
    OPUS_CHECK_GT(config_.max_spans, 0u);
  }
}

std::uint64_t SpanTrace::Begin(std::string_view name) {
  if (config_.sample_every == 0) return 0;
  ++started_;
  ++tick_;

  bool record = false;
  if (stack_.empty()) {
    // Root: counting-based sampling, per root name so rare control-plane
    // roots are not starved by frequent data-plane ones. Heterogeneous
    // find first so the steady state allocates nothing.
    auto it = root_seen_.find(name);
    if (it == root_seen_.end()) {
      it = root_seen_.emplace(std::string(name), 0).first;
    }
    const std::uint64_t ordinal = it->second++;
    record = (ordinal % config_.sample_every) == 0;
    if (!record) ++sampled_out_;
  } else {
    // Child: causal muting — only record inside a recorded parent.
    record = stack_.back().record != static_cast<std::size_t>(-1);
    if (!record) ++sampled_out_;
  }
  if (record && records_.size() >= config_.max_spans) {
    record = false;
    ++dropped_;
    if (drop_counter_ != nullptr) drop_counter_->Increment();
  }

  OpenSpan open;
  open.token = next_token_++;
  if (record) {
    SpanRecord r;
    r.id = records_.size() + 1;
    r.parent = stack_.empty() || stack_.back().record == static_cast<std::size_t>(-1)
                   ? 0
                   : records_[stack_.back().record].id;
    r.name = name;
    r.begin_tick = tick_;
    r.end_tick = tick_;
    open.record = records_.size();
    records_.push_back(std::move(r));
  }
  stack_.push_back(open);
  return open.token;
}

void SpanTrace::AddAttr(std::uint64_t token, std::string_view key,
                        std::string_view value) {
  if (token == 0) return;
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    if (it->token != token) continue;
    if (it->record != static_cast<std::size_t>(-1)) {
      records_[it->record].attrs.emplace_back(std::string(key),
                                              std::string(value));
    }
    return;
  }
  OPUS_CHECK_MSG(false, "AddAttr on a span that is not open");
}

void SpanTrace::End(std::uint64_t token) {
  if (token == 0) return;
  OPUS_CHECK_MSG(!stack_.empty(), "End with no open span");
  OPUS_CHECK_MSG(stack_.back().token == token,
                 "spans must strictly nest: End must close the innermost "
                 "open span");
  ++tick_;
  if (stack_.back().record != static_cast<std::size_t>(-1)) {
    records_[stack_.back().record].end_tick = tick_;
  }
  stack_.pop_back();
}

bool SpanTrace::IsRecorded(std::uint64_t token) const {
  if (token == 0) return false;
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    if (it->token == token) {
      return it->record != static_cast<std::size_t>(-1);
    }
  }
  return false;
}

std::vector<SpanRecord> SpanTrace::Snapshot() const { return records_; }

void SpanTrace::AttachDropCounter(Counter* counter) {
  drop_counter_ = counter;
  if (drop_counter_ != nullptr && dropped_ > drop_counter_->value()) {
    drop_counter_->Increment(dropped_ - drop_counter_->value());
  }
}

std::string SpansToPerfettoJson(const std::vector<SpanRecord>& spans) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    out << "{\"name\": \"" << JsonEscape(s.name)
        << "\", \"cat\": \"opus\", \"ph\": \"X\", \"ts\": " << s.begin_tick
        << ", \"dur\": " << (s.end_tick - s.begin_tick)
        << ", \"pid\": 1, \"tid\": 1, \"id\": " << s.id
        << ", \"parent\": " << s.parent << ", \"args\": {";
    for (std::size_t k = 0; k < s.attrs.size(); ++k) {
      out << (k ? ", " : "") << '"' << JsonEscape(s.attrs[k].first)
          << "\": \"" << JsonEscape(s.attrs[k].second) << '"';
    }
    out << "}}" << (i + 1 < spans.size() ? "," : "") << '\n';
  }
  out << "]}\n";
  return out.str();
}

std::optional<std::vector<SpanRecord>> ParseSpansPerfettoJson(
    const std::string& text) {
  const auto doc = ParseJson(text);
  if (!doc || !doc->is_object()) return std::nullopt;
  const JsonValue* events = doc->Find("traceEvents");
  if (!events || !events->is_array()) return std::nullopt;

  std::vector<SpanRecord> spans;
  spans.reserve(events->items.size());
  for (const JsonValue& e : events->items) {
    if (!e.is_object()) return std::nullopt;
    const JsonValue* name = e.Find("name");
    const JsonValue* ts = e.Find("ts");
    const JsonValue* dur = e.Find("dur");
    if (!name || !name->is_string() || !ts || !ts->is_number() || !dur ||
        !dur->is_number()) {
      return std::nullopt;
    }
    SpanRecord s;
    s.name = name->text;
    s.begin_tick = ts->UintOr(0);
    s.end_tick = s.begin_tick + dur->UintOr(0);
    if (const JsonValue* id = e.Find("id")) s.id = id->UintOr(0);
    if (s.id == 0) s.id = spans.size() + 1;
    if (const JsonValue* parent = e.Find("parent")) {
      s.parent = parent->UintOr(0);
    }
    if (const JsonValue* args = e.Find("args")) {
      if (!args->is_object()) return std::nullopt;
      for (const auto& [k, v] : args->members) {
        s.attrs.emplace_back(
            k, v.is_string() ? v.text : v.StringOr(v.text));
      }
    }
    spans.push_back(std::move(s));
  }
  return spans;
}

std::string SpansToText(const std::vector<SpanRecord>& spans) {
  std::ostringstream out;
  for (const SpanRecord& s : spans) {
    out << s.id << ' ' << s.parent << ' ' << s.name << " [" << s.begin_tick
        << ',' << s.end_tick << ')';
    for (const auto& [k, v] : s.attrs) out << ' ' << k << '=' << v;
    out << '\n';
  }
  return out.str();
}

std::string SpansToCsv(const std::vector<SpanRecord>& spans) {
  std::ostringstream out;
  out << "id,parent,name,begin,end,attrs\n";
  for (const SpanRecord& s : spans) {
    out << s.id << ',' << s.parent << ',' << CsvEscape(s.name) << ','
        << s.begin_tick << ',' << s.end_tick << ',';
    std::string attrs;
    for (std::size_t k = 0; k < s.attrs.size(); ++k) {
      if (k > 0) attrs += ' ';
      attrs += s.attrs[k].first;
      attrs += '=';
      attrs += s.attrs[k].second;
    }
    out << CsvEscape(attrs) << '\n';
  }
  return out.str();
}

std::string ExportSpans(const std::vector<SpanRecord>& spans,
                        ExportFormat format) {
  switch (format) {
    case ExportFormat::kText:
      return SpansToText(spans);
    case ExportFormat::kCsv:
      return SpansToCsv(spans);
    case ExportFormat::kJson:
      return SpansToPerfettoJson(spans);
  }
  return SpansToText(spans);
}

}  // namespace opus::obs
