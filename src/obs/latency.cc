#include "obs/latency.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "obs/json.h"

namespace opus::obs {

namespace {
constexpr std::uint64_t kMaxValue =
    (1ull << LogLinearHistogram::kMaxExp) - 1;
}  // namespace

std::size_t LogLinearHistogram::BucketIndex(std::uint64_t value) {
  if (value < kSubCount) return static_cast<std::size_t>(value);
  value = std::min(value, kMaxValue);
  // 2^m <= value < 2^(m+1); each octave m >= kSubBits gets kSubCount
  // buckets addressed by the kSubBits bits below the leading one.
  const unsigned m = std::bit_width(value) - 1;
  const unsigned shift = m - kSubBits;
  return ((static_cast<std::size_t>(m) - kSubBits + 1) << kSubBits) +
         static_cast<std::size_t>((value >> shift) - kSubCount);
}

std::uint64_t LogLinearHistogram::BucketLowerBound(std::size_t index) {
  if (index < kSubCount) return index;
  const std::size_t octave = index >> kSubBits;  // >= 1
  const unsigned m = kSubBits + static_cast<unsigned>(octave) - 1;
  const unsigned shift = m - kSubBits;
  const std::uint64_t sub = index & (kSubCount - 1);
  return (kSubCount + sub) << shift;
}

std::uint64_t LogLinearHistogram::BucketUpperBound(std::size_t index) {
  if (index < kSubCount) return index;
  const std::size_t octave = index >> kSubBits;
  const unsigned m = kSubBits + static_cast<unsigned>(octave) - 1;
  const unsigned shift = m - kSubBits;
  return BucketLowerBound(index) + ((1ull << shift) - 1);
}

void LogLinearHistogram::Record(std::uint64_t value) {
  value = std::min(value, kMaxValue);
  ++counts_[BucketIndex(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void LogLinearHistogram::Merge(const LogLinearHistogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kNumBuckets; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void LogLinearHistogram::Clear() {
  counts_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ull;
  max_ = 0;
}

std::uint64_t LogLinearHistogram::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0.0) return min();
  if (q >= 1.0) return max();
  // Nearest-rank: the smallest bucket whose cumulative count reaches rank.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    seen += counts_[i];
    if (seen >= rank) return std::min(BucketUpperBound(i), max());
  }
  return max();
}

LogLinearHistogram& RuntimeTelemetry::histogram(const std::string& name) {
  return histograms_[name];
}

const LogLinearHistogram* RuntimeTelemetry::Find(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::vector<LatencySample> RuntimeTelemetry::Snapshot() const {
  std::vector<LatencySample> out;
  out.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    LatencySample s;
    s.name = name;
    s.count = hist.count();
    s.sum = hist.sum();
    s.min = hist.min();
    s.max = hist.max();
    s.p50 = hist.ValueAtQuantile(0.50);
    s.p90 = hist.ValueAtQuantile(0.90);
    s.p99 = hist.ValueAtQuantile(0.99);
    s.p999 = hist.ValueAtQuantile(0.999);
    out.push_back(std::move(s));
  }
  return out;
}

std::string RuntimeTelemetry::SamplesToJson(
    const std::vector<LatencySample>& samples) {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const LatencySample& s = samples[i];
    if (i != 0) out << ',';
    out << "{\"name\":\"" << JsonEscape(s.name) << "\",\"count\":" << s.count
        << ",\"sum\":" << s.sum << ",\"min\":" << s.min
        << ",\"max\":" << s.max << ",\"p50\":" << s.p50
        << ",\"p90\":" << s.p90 << ",\"p99\":" << s.p99
        << ",\"p999\":" << s.p999 << '}';
  }
  out << ']';
  return out.str();
}

}  // namespace opus::obs
