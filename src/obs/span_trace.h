// Deterministic causal span tracer — the "why was this access slow" layer
// on top of the flat metrics registry and event ring. A span is a named
// interval on the logical clock with a parent link and ordered string
// attributes: one root span per simulated access (or per control-plane
// action like a PF solve), child spans for each stage it passes through
// (tier probe, promotion, demotion cascade, under-store read, blocking
// delay). The resulting tree answers causal questions the counters cannot:
// which tier served block b, whether a demotion cascade ran inside this
// read, how much blocking delay the mechanism injected on this access.
//
// Determinism contract (same bar as obs::MetricsRegistry): timestamps are
// logical ticks — every Begin and every End advances the clock by one —
// never wall time, so span exports are byte-identical across reruns and
// thread counts. A trace is single-writer: one simulation loop owns it.
//
// Sampling and bounds: full-fleet benches emit millions of accesses, so
// the tracer keeps every root whose per-name ordinal k satisfies
// k % sample_every == 0 (counting-based, hence deterministic — never
// random) and mutes the rest. Muting is causal: children of a muted span
// are muted too, so sampled output contains only complete trees. Per-name
// counting keeps rare roots (master.realloc) from being starved by
// frequent ones (cluster.read). Independently, a hard `max_spans` cap
// drops spans once the buffer is full (counted, and mirrored into a
// registry counter via AttachDropCounter).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"  // Counter, ExportFormat

namespace opus::obs {

struct SpanRecord {
  std::uint64_t id = 0;      // 1-based, in recording order
  std::uint64_t parent = 0;  // parent span id, 0 for roots
  std::string name;          // dot-separated, e.g. "tier.promote"
  std::uint64_t begin_tick = 0;
  std::uint64_t end_tick = 0;  // == begin_tick while still open
  // Ordered key=value pairs; keys follow the metric-name convention,
  // values are free-form (the exporters escape them).
  std::vector<std::pair<std::string, std::string>> attrs;
};

struct SpanTraceConfig {
  // Keep every sample_every-th root span per root name (1 = keep all,
  // 0 = tracing disabled entirely).
  std::uint64_t sample_every = 1;
  // Hard cap on retained spans; once full, further spans are dropped and
  // counted.
  std::size_t max_spans = 1 << 16;
};

class SpanTrace {
 public:
  explicit SpanTrace(SpanTraceConfig config = {});

  // Opens a span; the innermost currently-open span becomes its parent.
  // Returns an opaque token for AddAttr/End, or 0 when tracing is
  // disabled (sample_every == 0) — token 0 is accepted and ignored by
  // AddAttr/End so callers never branch. Takes a string_view so muted and
  // sampled-out spans cost zero allocations (the name is only copied into
  // a record when the span is actually retained).
  std::uint64_t Begin(std::string_view name);

  // Appends an attribute to the span's record (no-op if the span was
  // muted by sampling or the capacity cap).
  void AddAttr(std::uint64_t token, std::string_view key,
               std::string_view value);

  // Closes the span. Spans must strictly nest: `token` must be the
  // innermost open span.
  void End(std::uint64_t token);

  // True if the span is being recorded (not muted/dropped/disabled).
  bool IsRecorded(std::uint64_t token) const;

  // Recorded spans in id order (open spans appear with end == begin).
  std::vector<SpanRecord> Snapshot() const;

  // Mirrors capacity drops into a registry counter (e.g.
  // "obs.trace.dropped"); catches up on prior drops. The counter must
  // outlive this trace.
  void AttachDropCounter(Counter* counter);

  const SpanTraceConfig& config() const { return config_; }
  std::uint64_t tick() const { return tick_; }
  std::uint64_t started() const { return started_; }
  std::uint64_t recorded() const { return records_.size(); }
  std::uint64_t sampled_out() const { return sampled_out_; }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t open_depth() const { return stack_.size(); }

 private:
  struct OpenSpan {
    std::uint64_t token = 0;
    // Index into records_, or npos when muted.
    std::size_t record = static_cast<std::size_t>(-1);
  };

  SpanTraceConfig config_;
  std::vector<SpanRecord> records_;
  std::vector<OpenSpan> stack_;
  // Per-root-name ordinals; std::less<> enables string_view lookups, so a
  // root Begin only allocates the first time a name is seen.
  std::map<std::string, std::uint64_t, std::less<>> root_seen_;
  std::uint64_t tick_ = 0;
  std::uint64_t next_token_ = 1;
  std::uint64_t started_ = 0;
  std::uint64_t sampled_out_ = 0;
  std::uint64_t dropped_ = 0;
  Counter* drop_counter_ = nullptr;
};

// RAII wrapper: opens on construction, closes on destruction. A default
// constructed (or nullptr-trace) ScopedSpan is inert.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(SpanTrace* trace, std::string_view name)
      : trace_(trace), token_(trace ? trace->Begin(name) : 0) {}
  ~ScopedSpan() {
    if (trace_ != nullptr && token_ != 0) trace_->End(token_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void AddAttr(std::string_view key, std::string_view value) {
    if (trace_ != nullptr && token_ != 0) trace_->AddAttr(token_, key, value);
  }

  // True iff attributes added to this span will actually be retained. Hot
  // paths gate attribute *formatting* on this (std::to_string and
  // FormatDouble allocate), so a muted/sampled-out/dropped span costs zero
  // allocations end to end.
  bool active() const {
    return trace_ != nullptr && token_ != 0 && trace_->IsRecorded(token_);
  }
  // Back-compat alias for active().
  bool recorded() const { return active(); }

 private:
  SpanTrace* trace_ = nullptr;
  std::uint64_t token_ = 0;
};

// Chrome/Perfetto trace_event JSON: one complete ("ph":"X") event per
// span, ts/dur in logical ticks, span id and parent link carried in
// top-level "id"/"parent" fields (Perfetto ignores unknown fields),
// attributes under "args". Loads directly in ui.perfetto.dev and
// chrome://tracing.
std::string SpansToPerfettoJson(const std::vector<SpanRecord>& spans);

// Round-trip loader for SpansToPerfettoJson output (also accepts any
// trace_event JSON whose events carry ts/dur). Returns nullopt on
// malformed input.
std::optional<std::vector<SpanRecord>> ParseSpansPerfettoJson(
    const std::string& text);

// One "id parent name [begin,end) k=v ..." line per span.
std::string SpansToText(const std::vector<SpanRecord>& spans);
// id,parent,name,begin,end,attrs rows.
std::string SpansToCsv(const std::vector<SpanRecord>& spans);
// kJson selects the Perfetto serialization.
std::string ExportSpans(const std::vector<SpanRecord>& spans,
                        ExportFormat format);

}  // namespace opus::obs
