// Bounded structured event trace — the narrative companion to the metrics
// registry: "reallocation applied", "worker failed/recovered", "block
// demoted/promoted", "IG fallback triggered" and similar control-plane
// moments, in order.
//
// Events carry a logical-clock sequence number (the emission index — never
// wall time) plus ordered key=value string fields, so exports are
// byte-identical across reruns and thread counts under the same
// determinism contract as obs::MetricsRegistry. The buffer is a ring:
// when more than `capacity` events are emitted the oldest are dropped and
// counted, bounding memory on arbitrarily long simulations.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"  // ExportFormat

namespace opus::obs {

struct TraceEvent {
  std::uint64_t seq = 0;  // logical clock: 0-based emission index
  std::string kind;       // dot-separated, e.g. "cluster.worker.failed"
  // Ordered key=value pairs; keys follow the metric-name convention,
  // values are free-form (the CSV/JSON exporters escape them).
  std::vector<std::pair<std::string, std::string>> fields;
};

// Deterministic serializations of a span of events.
std::string EventsToText(const std::vector<TraceEvent>& events);
std::string EventsToCsv(const std::vector<TraceEvent>& events);
std::string EventsToJson(const std::vector<TraceEvent>& events);
std::string ExportEvents(const std::vector<TraceEvent>& events,
                         ExportFormat format);

class EventTrace {
 public:
  explicit EventTrace(std::size_t capacity = 4096);

  // Emits one event; assigns the next logical-clock sequence number.
  void Emit(std::string kind,
            std::vector<std::pair<std::string, std::string>> fields = {});

  // Mirrors ring drops into a registry counter (e.g. "obs.trace.dropped")
  // so bounded-buffer data loss is visible in the metric export, not only
  // on the trace object itself. Catches up on drops that happened before
  // attachment; the counter must outlive this trace.
  void AttachDropCounter(Counter* counter);

  // Retained events, oldest first.
  const std::deque<TraceEvent>& events() const { return events_; }
  // Copy of the retained events (the exportable snapshot).
  std::vector<TraceEvent> Snapshot() const;

  std::size_t capacity() const { return capacity_; }
  std::uint64_t total_emitted() const { return next_seq_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  std::size_t capacity_;
  std::deque<TraceEvent> events_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
  Counter* drop_counter_ = nullptr;
};

}  // namespace opus::obs
