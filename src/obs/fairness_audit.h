// Online fairness auditor — checks, every allocation window, that the
// paper's headline guarantees actually held at runtime instead of only in
// offline benches (paper Sec. IV, Algorithm 1):
//
//  - Isolation (Definition 1 / Theorem 2): each user's realized net
//    utility exp(-T_i) * U_i(a*) — measured from the *applied* access
//    matrix, so a bug that over-blocks a user is caught even when the
//    mechanism's own arithmetic was right — must be at least its isolated
//    baseline U-bar_i (minus a numerical tolerance).
//  - Break-even coherence (Stage 2, PROVIDES_IG): sharing must be kept iff
//    no user is taxed past its break-even tax
//    T-bar_i = log(U_i(a*) / U-bar_i); a window that kept sharing with a
//    user beyond break-even, or fell back to isolation when nobody was,
//    is flagged.
//  - Envy-freeness up to normalization: OpuS's asymmetric blocking makes
//    raw access rows incomparable (a heavily-taxed user "envies" everyone
//    by construction), so each user's access row is first rescaled by
//    1/(1 - f_i) and pairwise envy is computed on the normalized matrix
//    (core/axioms.h). Isolated windows have zero blocking, so this reduces
//    to plain envy there.
//
// Only policies that claim the isolation guarantee ("opus", "isolated")
// are audited; other policies (fairride, max-min, ...) pass through as
// unaudited windows rather than producing vacuous violations.
//
// Violations are emitted as structured "audit.violation" trace events and
// counted in the registry ("audit.windows", "audit.violations"); the full
// per-window, per-user arithmetic is kept in a machine-readable AuditReport
// (JSON round-trip) that opus_inspect pretty-prints and CI gates on.
//
// Determinism: everything is recomputed from the window's CachingProblem
// and AllocationResult — no wall time — so reports are byte-identical
// across reruns and thread counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/opus.h"
#include "core/types.h"
#include "obs/event_trace.h"
#include "obs/metrics.h"

namespace opus::obs {

struct FairnessAuditConfig {
  // Slack (in utility units) on the isolation and break-even checks;
  // mirrors OpusOptions::ig_tolerance but defaults looser to absorb the
  // solver residual of the leave-one-out tax solves.
  double utility_tolerance = 1e-6;
  // Slack on normalized pairwise envy.
  double envy_tolerance = 1e-6;
  bool check_envy = true;
};

// Per-user arithmetic of one audited window.
struct UserWindowAudit {
  std::size_t user = 0;
  double pf_utility = 0.0;        // U_i(a*)
  double isolated_utility = 0.0;  // U-bar_i
  double tax = 0.0;               // applied T_i
  double break_even_tax = 0.0;    // T-bar_i (+inf when U-bar_i = 0)
  double net_utility = 0.0;       // realized utility under applied access
  double blocking = 0.0;          // applied f_i
};

struct AuditViolation {
  std::uint64_t window = 0;
  std::string check;  // "isolation" | "break_even" | "envy"
  std::size_t user = 0;
  double magnitude = 0.0;  // how far past the bound, in the check's units
  std::string detail;
};

struct WindowAudit {
  std::uint64_t window = 0;
  std::string policy;
  bool shared = true;
  bool audited = false;  // false for policies without an isolation claim
  double max_normalized_envy = 0.0;
  std::vector<UserWindowAudit> users;
  std::vector<AuditViolation> violations;
};

struct AuditReport {
  std::vector<WindowAudit> windows;
  std::uint64_t total_violations = 0;

  std::string ToJson() const;
  std::string ToText() const;
};

// Round-trip loader for AuditReport::ToJson (used by opus_inspect and the
// CI gate). Returns false on malformed input.
bool ParseAuditJson(const std::string& text, AuditReport* out);

class FairnessAuditor {
 public:
  explicit FairnessAuditor(FairnessAuditConfig config = {});

  // Optional: mirror audit activity into a registry ("audit.windows",
  // "audit.violations" counters) and emit one "audit.violation" event per
  // violation. Both may be nullptr; they must outlive the auditor.
  void Attach(MetricsRegistry* registry, EventTrace* trace);

  // Audits one allocation window. `diag` carries the mechanism's stage-1
  // arithmetic when available (OpusAllocator::AllocateWithDiagnostics);
  // without it, shared windows are reconstructed from the result (the PF
  // utilities are recomputable from file_alloc) and the
  // fallback-justification half of the break-even check is skipped.
  const WindowAudit& AuditWindow(std::uint64_t window,
                                 const CachingProblem& problem,
                                 const AllocationResult& result,
                                 const OpusDiagnostics* diag = nullptr);

  const AuditReport& report() const { return report_; }
  const FairnessAuditConfig& config() const { return config_; }

 private:
  FairnessAuditConfig config_;
  AuditReport report_;
  MetricsRegistry* registry_ = nullptr;
  EventTrace* trace_ = nullptr;
};

}  // namespace opus::obs
