// Prometheus text exposition (format 0.0.4) for live scraping of a serving
// daemon: renders a deterministic MetricsSnapshot (counters/gauges/
// histograms, volatile metrics included by the caller's choice of
// snapshot) plus the RuntimeTelemetry latency samples as summaries with
// precomputed quantiles.
//
// Every exported family gets exactly one # HELP and one # TYPE line, in
// sorted-name order, and series names are sanitized to the Prometheus
// charset ([a-zA-Z0-9_]) under an "opus_" prefix — the CI smoke lints the
// scraped output against exactly these rules.
#pragma once

#include <string>
#include <vector>

#include "obs/latency.h"
#include "obs/metrics.h"

namespace opus::obs {

// "cluster.worker.3.mem_hits" -> "opus_cluster_worker_3_mem_hits".
// Dots and dashes (the only non-Prometheus characters the metric-name
// validator admits) map to underscores.
std::string PrometheusName(const std::string& name);

// Renders the snapshot and, when non-empty, the latency samples (as
// summary families: {quantile="0.5"|"0.9"|"0.99"|"0.999"}, _sum, _count).
// Fixed-bucket histograms become classic histogram families with
// cumulative le buckets and a trailing le="+Inf".
std::string MetricsToPrometheus(
    const MetricsSnapshot& snapshot,
    const std::vector<LatencySample>& latency = {});

}  // namespace opus::obs
