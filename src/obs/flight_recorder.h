// Always-on flight recorder for the serving plane: a bounded ring of the
// most recent runtime spans (requests, probe/drain phases, reallocations,
// anomalies), timestamped on the monotonic clock and dumpable at any
// moment as a Perfetto-loadable trace_event file — the runtime sibling of
// the deterministic SpanTrace, for the daemon where span tracing is off by
// contract (serve/engine.h).
//
// The dump reuses SpanRecord + SpansToPerfettoJson, so it round-trips
// through the existing ParseSpansPerfettoJson loader and opus_inspect
// spans. ts/dur are nanoseconds rebased to the recorder's construction
// time (Perfetto interprets ts as microseconds; the relative timeline is
// what matters). The latest latency snapshot rides along as zero-duration
// "flight.latency.<name>" spans carrying the quantiles as args.
//
// Threading: single-writer, same as RuntimeTelemetry — the daemon command
// loop records requests, and the engine records phase spans from that same
// thread (between parallel phases).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "obs/latency.h"
#include "obs/span_trace.h"

namespace opus::obs {

struct FlightRecorderConfig {
  // Retained spans; beyond this the oldest are dropped (and counted).
  std::size_t capacity = 4096;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config = {});

  // Records a completed interval. begin/end are MonotonicNanos() readings;
  // they are rebased to the recorder's epoch (readings before it clamp to
  // 0, and end < begin records as zero duration).
  void RecordSpan(std::string name, std::uint64_t begin_ns,
                  std::uint64_t end_ns,
                  std::vector<std::pair<std::string, std::string>> attrs = {});

  // Zero-duration marker at `at_ns` (defaults to now).
  void RecordEvent(std::string name,
                   std::vector<std::pair<std::string, std::string>> attrs = {},
                   std::uint64_t at_ns = 0);

  std::uint64_t epoch_ns() const { return epoch_ns_; }
  std::uint64_t recorded() const { return next_id_ - 1; }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t size() const { return ring_.size(); }

  // Retained spans, oldest first (ids are emission-ordered and stable
  // across drops).
  std::vector<SpanRecord> Snapshot() const;

  // Perfetto trace_event JSON of the ring plus, when non-empty, one
  // instant span per latency sample (see file comment).
  std::string DumpPerfettoJson(
      const std::vector<LatencySample>& latency = {}) const;

 private:
  FlightRecorderConfig config_;
  std::uint64_t epoch_ns_;
  std::deque<SpanRecord> ring_;
  std::uint64_t next_id_ = 1;
  std::uint64_t dropped_ = 0;
};

}  // namespace opus::obs
