// Minimal JSON value tree + recursive-descent parser for the observability
// exports (metric snapshots, event traces, Perfetto span files, audit
// reports). This is a loader for files *we* wrote — it accepts standard
// JSON, keeps object members in document order (our exporters are ordered,
// and round-trip tests demand byte-identical re-serialization), and stores
// numbers as both the parsed double and the raw source text so integer
// values above 2^53 survive a round trip.
//
// Also home to the string-escaping helpers shared by every exporter
// (JsonEscape for JSON string literals, CsvEscape for RFC-4180 CSV cells):
// metric names are validated to [a-z0-9_.-], but event/span attribute
// *values* are free-form and must not be able to corrupt an export.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace opus::obs {

// Escapes `s` for inclusion inside a JSON string literal (quotes,
// backslashes, and control characters; non-ASCII bytes pass through).
std::string JsonEscape(const std::string& s);

// Escapes `s` as one CSV cell: returned verbatim unless it contains a
// comma, double quote, CR or LF, in which case it is quoted with internal
// quotes doubled (RFC 4180).
std::string CsvEscape(const std::string& s);

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string text;  // string value, or the raw source text of a number
  std::vector<JsonValue> items;                            // array
  std::vector<std::pair<std::string, JsonValue>> members;  // object, ordered

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  // First member with `key`, or nullptr (objects only).
  const JsonValue* Find(const std::string& key) const;

  // Convenience accessors with fallbacks for absent/mistyped values.
  std::string StringOr(const std::string& fallback) const;
  double NumberOr(double fallback) const;
  std::uint64_t UintOr(std::uint64_t fallback) const;
};

// Parses one JSON document (trailing whitespace allowed, trailing garbage
// rejected). Returns nullopt on malformed input — never aborts, so loaders
// can surface clean errors for hand-edited files.
std::optional<JsonValue> ParseJson(const std::string& text);

}  // namespace opus::obs
