// Runtime latency telemetry — the *wall-clock* counterpart of the
// deterministic metrics registry. Everything in this header measures real
// time on a live serving plane (request latencies, lock waits, drain
// durations) and is therefore nondeterministic by definition; it lives in
// its own registry (RuntimeTelemetry) and never touches MetricsRegistry
// snapshots, so every byte-identity replay gate in the repo is unaffected.
//
// LogLinearHistogram is a mergeable HDR-style histogram: values are
// bucketed log-linearly (kSubCount linear sub-buckets per power of two),
// giving a fixed ~3% relative quantile error over the whole 0..2^kMaxExp
// range with a flat 9.5 KB count array — no allocation on Record, O(1)
// bucket math (one bit-scan), and Merge is element-wise addition, so
// per-thread recorders can be drained into a central histogram at batch
// boundaries exactly the way the serving engine already drains access
// stats (serve/engine.h).
//
// Threading contract (same shape as MetricsRegistry): a histogram is
// single-writer. Concurrent recorders each own a private histogram and a
// single thread merges them at a quiescent point (the engine's drain step,
// which runs after the probe-phase join). RuntimeTelemetry itself is
// single-writer/single-reader: the daemon's command loop owns it.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace opus::obs {

// Nanoseconds on the process-wide monotonic clock. The only clock runtime
// telemetry uses; deterministic exports must never read it.
inline std::uint64_t MonotonicNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class LogLinearHistogram {
 public:
  // 2^kSubBits linear sub-buckets per power of two => relative bucket
  // width <= 1/kSubCount (~3.1%).
  static constexpr unsigned kSubBits = 5;
  static constexpr std::uint64_t kSubCount = 1ull << kSubBits;
  // Values clamp at 2^kMaxExp - 1 (~18 minutes when recording nanoseconds).
  static constexpr unsigned kMaxExp = 40;
  static constexpr std::size_t kNumBuckets =
      static_cast<std::size_t>(kMaxExp - kSubBits + 1) * kSubCount;

  // Records one value (clamped into the representable range). The sum
  // accumulates the clamped value so count/sum/quantiles stay mutually
  // consistent.
  void Record(std::uint64_t value);

  // Element-wise addition of counts; min/max/sum fold in. The other
  // histogram is unchanged.
  void Merge(const LogLinearHistogram& other);

  void Clear();

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  // Exact extrema of the recorded (clamped) values; 0 when empty.
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return count_ == 0 ? 0 : max_; }

  // Upper bound of the bucket holding the nearest-rank q-quantile, i.e. an
  // estimate within one bucket width (<= 1/kSubCount relative) above the
  // true value. q <= 0 returns min(), q >= 1 returns max(); 0 when empty.
  std::uint64_t ValueAtQuantile(double q) const;

  // Bucket mapping, exposed for the property tests: every value lands in
  // the bucket whose [BucketLowerBound, BucketUpperBound] range contains
  // it, and indices are monotone in the value.
  static std::size_t BucketIndex(std::uint64_t value);
  static std::uint64_t BucketLowerBound(std::size_t index);
  static std::uint64_t BucketUpperBound(std::size_t index);

 private:
  std::array<std::uint64_t, kNumBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

// Value-type snapshot of one named histogram: count/sum/extrema plus the
// standard quantile ladder, precomputed so exporters and JSON lines never
// touch the live histogram.
struct LatencySample {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;
};

// Named-histogram registry for runtime telemetry, deliberately separate
// from MetricsRegistry: nothing recorded here can leak into deterministic
// snapshots. Names follow the metric convention (dot-separated tokens,
// unit suffix in the name: "serve.drain.ns", "serve.batch.events").
class RuntimeTelemetry {
 public:
  // Idempotent: re-requesting a name returns the same histogram.
  LogLinearHistogram& histogram(const std::string& name);

  // nullptr when the name was never created.
  const LogLinearHistogram* Find(const std::string& name) const;

  // One sample per histogram, sorted by name. Empty histograms are
  // included (count 0) so a scrape always shows the full instrument set.
  std::vector<LatencySample> Snapshot() const;

  // JSON array [{"name":...,"count":...,"p50":...},...] — the "latency"
  // field of the daemon's --stats-out JSON lines.
  static std::string SamplesToJson(const std::vector<LatencySample>& samples);

 private:
  std::map<std::string, LogLinearHistogram> histograms_;
};

}  // namespace opus::obs
