#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace opus::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string CsvEscape(const std::string& s) {
  bool needs_quoting = false;
  for (char c : s) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quoting = true;
      break;
    }
  }
  if (!needs_quoting) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::StringOr(const std::string& fallback) const {
  return kind == Kind::kString ? text : fallback;
}

double JsonValue::NumberOr(double fallback) const {
  return kind == Kind::kNumber ? number : fallback;
}

std::uint64_t JsonValue::UintOr(std::uint64_t fallback) const {
  if (kind != Kind::kNumber) return fallback;
  // Re-parse the raw text so 64-bit integers beyond double precision
  // survive; fall back to the double for scientific-notation values.
  if (!text.empty() && text.find_first_of(".eE") == std::string::npos) {
    return std::strtoull(text.c_str(), nullptr, 10);
  }
  return number < 0.0 ? fallback : static_cast<std::uint64_t>(number);
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  std::optional<JsonValue> Parse() {
    JsonValue v;
    if (!ParseValue(&v)) return std::nullopt;
    SkipWs();
    if (pos_ != s_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* lit) {
    std::size_t k = 0;
    while (lit[k] != '\0') {
      if (pos_ + k >= s_.size() || s_[pos_ + k] != lit[k]) return false;
      ++k;
    }
    pos_ += k;
    return true;
  }

  bool ParseString(std::string* out) {
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char e = s_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // Our exporters only emit \u00xx for control bytes; decode the
          // BMP code point as UTF-8 for generality.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool any = false;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      any = true;
      ++pos_;
    }
    if (!any) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->text = s_.substr(start, pos_ - start);
    char* end = nullptr;
    out->number = std::strtod(out->text.c_str(), &end);
    return end == out->text.c_str() + out->text.size();
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      SkipWs();
      if (Consume('}')) return true;
      while (true) {
        std::string key;
        if (!ParseString(&key)) return false;
        if (!Consume(':')) return false;
        JsonValue v;
        if (!ParseValue(&v)) return false;
        out->members.emplace_back(std::move(key), std::move(v));
        if (Consume(',')) continue;
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      SkipWs();
      if (Consume(']')) return true;
      while (true) {
        JsonValue v;
        if (!ParseValue(&v)) return false;
        out->items.push_back(std::move(v));
        if (Consume(',')) continue;
        return Consume(']');
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->text);
    }
    if (c == 't') {
      if (!ConsumeLiteral("true")) return false;
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return true;
    }
    if (c == 'f') {
      if (!ConsumeLiteral("false")) return false;
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return true;
    }
    if (c == 'n') {
      if (!ConsumeLiteral("null")) return false;
      out->kind = JsonValue::Kind::kNull;
      return true;
    }
    return ParseNumber(out);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace opus::obs
