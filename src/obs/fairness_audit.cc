#include "obs/fairness_audit.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "core/axioms.h"
#include "core/utility.h"
#include "obs/json.h"

namespace opus::obs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Break-even tax T-bar_i = log(U_i(a*) / U-bar_i); +inf when the isolated
// baseline is zero (such a user can never be taxed past break-even).
double BreakEvenTax(double pf_utility, double isolated_utility) {
  if (isolated_utility <= 0.0) return kInf;
  if (pf_utility <= 0.0) return 0.0;
  return std::log(pf_utility / isolated_utility);
}

}  // namespace

FairnessAuditor::FairnessAuditor(FairnessAuditConfig config)
    : config_(config) {}

void FairnessAuditor::Attach(MetricsRegistry* registry, EventTrace* trace) {
  registry_ = registry;
  trace_ = trace;
  if (registry_ != nullptr) {
    // Pre-register so the counters appear (as zero) in every export even
    // when no window was ever audited.
    registry_->counter("audit.windows");
    registry_->counter("audit.violations");
  }
}

const WindowAudit& FairnessAuditor::AuditWindow(std::uint64_t window,
                                                const CachingProblem& problem,
                                                const AllocationResult& result,
                                                const OpusDiagnostics* diag) {
  WindowAudit audit;
  audit.window = window;
  audit.policy = result.policy;
  audit.shared = result.shared;
  // Only policies that claim the isolation guarantee are checked; anything
  // else (fairride, max-min, global, ...) records an unaudited window.
  audit.audited = result.policy == "opus" || result.policy == "isolated";

  const std::size_t n = problem.num_users();
  if (audit.audited && n > 0) {
    const double utol = config_.utility_tolerance;
    const std::vector<double> isolated = IsolatedUtilities(problem);
    // Realized utilities under the *applied* access matrix — this is what
    // users actually experienced, taxes and blocking included.
    const std::vector<double> realized =
        EvaluateUtilities(result, problem.preferences);

    audit.users.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      UserWindowAudit& u = audit.users[i];
      u.user = i;
      u.isolated_utility = isolated[i];
      u.net_utility = realized[i];
      u.tax = i < result.taxes.size() ? result.taxes[i] : 0.0;
      u.blocking = i < result.blocking.size() ? result.blocking[i] : 0.0;
      if (result.shared) {
        // U_i(a*) is recomputable from the shared allocation vector.
        u.pf_utility =
            FullAccessUtility(problem.preferences.row(i), result.file_alloc);
      } else if (diag != nullptr && i < diag->pf_utilities.size()) {
        // Fallback window: the PF attempt lives only in the diagnostics.
        u.pf_utility = diag->pf_utilities[i];
      } else {
        u.pf_utility = 0.0;
      }
      u.break_even_tax = BreakEvenTax(u.pf_utility, u.isolated_utility);

      // Isolation: realized utility must cover the isolated baseline.
      if (u.net_utility < u.isolated_utility - utol) {
        AuditViolation v;
        v.window = window;
        v.check = "isolation";
        v.user = i;
        v.magnitude = u.isolated_utility - u.net_utility;
        std::ostringstream detail;
        detail << "net utility " << FormatDouble(u.net_utility)
               << " below isolated baseline "
               << FormatDouble(u.isolated_utility);
        v.detail = detail.str();
        audit.violations.push_back(std::move(v));
      }

      // Break-even (kept-sharing half): sharing retained while user i's
      // mechanism-level net exp(-T_i) U_i(a*) is below its baseline means
      // the Stage-2 gate failed to fire.
      if (result.shared) {
        const double mechanism_net = std::exp(-u.tax) * u.pf_utility;
        if (mechanism_net < u.isolated_utility - utol) {
          AuditViolation v;
          v.window = window;
          v.check = "break_even";
          v.user = i;
          v.magnitude = u.isolated_utility - mechanism_net;
          std::ostringstream detail;
          detail << "sharing kept with tax " << FormatDouble(u.tax)
                 << " past break-even " << FormatDouble(u.break_even_tax);
          v.detail = detail.str();
          audit.violations.push_back(std::move(v));
        }
      }
    }

    // Break-even (fallback half): a window that reduced to isolation must
    // have had at least one user past break-even in the sharing attempt.
    // Needs the stage-1 diagnostics; without them this half is skipped.
    if (!result.shared && result.policy == "opus" && diag != nullptr &&
        diag->net_utilities.size() == n) {
      bool justified = false;
      std::size_t closest = 0;
      double worst_margin = kInf;
      for (std::size_t i = 0; i < n; ++i) {
        const double margin = diag->net_utilities[i] - isolated[i];
        if (margin < -utol) justified = true;
        if (margin < worst_margin) {
          worst_margin = margin;
          closest = i;
        }
      }
      if (!justified) {
        AuditViolation v;
        v.window = window;
        v.check = "break_even";
        v.user = closest;
        v.magnitude = worst_margin;
        std::ostringstream detail;
        detail << "fell back to isolation but no user was past break-even "
                  "(tightest margin "
               << FormatDouble(worst_margin) << ")";
        v.detail = detail.str();
        audit.violations.push_back(std::move(v));
      }
    }

    // Envy-freeness up to normalization: undo each user's blocking factor
    // so rows are comparable, then measure pairwise envy.
    if (config_.check_envy && n > 1) {
      AllocationResult normalized = result;
      for (std::size_t i = 0; i < normalized.access.rows(); ++i) {
        const double f = i < result.blocking.size() ? result.blocking[i] : 0.0;
        if (f > 0.0 && f < 1.0) {
          for (std::size_t j = 0; j < normalized.access.cols(); ++j) {
            normalized.access(i, j) /= 1.0 - f;
          }
        }
      }
      const Matrix envy = EnvyMatrix(problem, normalized);
      for (std::size_t i = 0; i < envy.rows(); ++i) {
        double worst = 0.0;
        for (std::size_t k = 0; k < envy.cols(); ++k) {
          worst = std::max(worst, envy(i, k));
        }
        audit.max_normalized_envy =
            std::max(audit.max_normalized_envy, worst);
        if (worst > config_.envy_tolerance) {
          AuditViolation v;
          v.window = window;
          v.check = "envy";
          v.user = i;
          v.magnitude = worst;
          std::ostringstream detail;
          detail << "normalized envy " << FormatDouble(worst)
                 << " exceeds tolerance";
          v.detail = detail.str();
          audit.violations.push_back(std::move(v));
        }
      }
    }
  }

  if (registry_ != nullptr) {
    registry_->counter("audit.windows").Increment();
    registry_->counter("audit.violations")
        .Increment(audit.violations.size());
  }
  if (trace_ != nullptr) {
    for (const AuditViolation& v : audit.violations) {
      trace_->Emit("audit.violation",
                   {{"window", std::to_string(v.window)},
                    {"check", v.check},
                    {"user", std::to_string(v.user)},
                    {"magnitude", FormatDouble(v.magnitude)},
                    {"detail", v.detail}});
    }
  }

  report_.total_violations += audit.violations.size();
  report_.windows.push_back(std::move(audit));
  return report_.windows.back();
}

std::string AuditReport::ToJson() const {
  std::ostringstream out;
  out << "{\"total_violations\": " << total_violations << ",\n\"windows\": [\n";
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const WindowAudit& a = windows[w];
    out << "{\"window\": " << a.window << ", \"policy\": \""
        << JsonEscape(a.policy) << "\", \"shared\": "
        << (a.shared ? "true" : "false")
        << ", \"audited\": " << (a.audited ? "true" : "false")
        << ", \"max_normalized_envy\": " << JsonNumber(a.max_normalized_envy)
        << ",\n \"users\": [";
    for (std::size_t i = 0; i < a.users.size(); ++i) {
      const UserWindowAudit& u = a.users[i];
      out << (i ? ",\n  " : "\n  ") << "{\"user\": " << u.user
          << ", \"pf_utility\": " << JsonNumber(u.pf_utility)
          << ", \"isolated_utility\": " << JsonNumber(u.isolated_utility)
          << ", \"tax\": " << JsonNumber(u.tax)
          << ", \"break_even_tax\": " << JsonNumber(u.break_even_tax)
          << ", \"net_utility\": " << JsonNumber(u.net_utility)
          << ", \"blocking\": " << JsonNumber(u.blocking) << "}";
    }
    out << (a.users.empty() ? "]" : "\n ]") << ",\n \"violations\": [";
    for (std::size_t i = 0; i < a.violations.size(); ++i) {
      const AuditViolation& v = a.violations[i];
      out << (i ? ",\n  " : "\n  ") << "{\"window\": " << v.window
          << ", \"check\": \"" << JsonEscape(v.check)
          << "\", \"user\": " << v.user
          << ", \"magnitude\": " << JsonNumber(v.magnitude)
          << ", \"detail\": \"" << JsonEscape(v.detail) << "\"}";
    }
    out << (a.violations.empty() ? "]}" : "\n ]}")
        << (w + 1 < windows.size() ? "," : "") << '\n';
  }
  out << "]}\n";
  return out.str();
}

std::string AuditReport::ToText() const {
  std::ostringstream out;
  std::uint64_t audited = 0;
  for (const WindowAudit& a : windows) {
    if (a.audited) ++audited;
  }
  out << "audit: " << windows.size() << " windows (" << audited
      << " audited), " << total_violations << " violation"
      << (total_violations == 1 ? "" : "s") << '\n';
  for (const WindowAudit& a : windows) {
    out << "window " << a.window << " policy=" << a.policy
        << " shared=" << (a.shared ? "yes" : "no");
    if (!a.audited) {
      out << " (not audited)\n";
      continue;
    }
    out << " max_norm_envy=" << FormatDouble(a.max_normalized_envy) << '\n';
    for (const UserWindowAudit& u : a.users) {
      out << "  user " << u.user << ": U*=" << FormatDouble(u.pf_utility)
          << " Ubar=" << FormatDouble(u.isolated_utility)
          << " T=" << FormatDouble(u.tax)
          << " Tbar=" << FormatDouble(u.break_even_tax)
          << " net=" << FormatDouble(u.net_utility)
          << " f=" << FormatDouble(u.blocking) << '\n';
    }
    for (const AuditViolation& v : a.violations) {
      out << "  VIOLATION [" << v.check << "] user " << v.user
          << " magnitude=" << FormatDouble(v.magnitude) << ": " << v.detail
          << '\n';
    }
  }
  return out.str();
}

namespace {

// Numeric fields written through JsonNumber: plain number or quoted
// "inf"/"-inf"/"nan".
double AuditNumber(const JsonValue* v, double fallback) {
  if (v == nullptr) return fallback;
  if (v->is_number()) return v->number;
  if (v->is_string()) {
    if (v->text == "inf") return kInf;
    if (v->text == "-inf") return -kInf;
    if (v->text == "nan") return std::numeric_limits<double>::quiet_NaN();
  }
  return fallback;
}

}  // namespace

bool ParseAuditJson(const std::string& text, AuditReport* out) {
  *out = AuditReport();
  const auto doc = ParseJson(text);
  if (!doc || !doc->is_object()) return false;
  const JsonValue* total = doc->Find("total_violations");
  const JsonValue* windows = doc->Find("windows");
  if (!total || !total->is_number() || !windows || !windows->is_array()) {
    return false;
  }
  out->total_violations = total->UintOr(0);
  for (const JsonValue& w : windows->items) {
    if (!w.is_object()) return false;
    WindowAudit a;
    const JsonValue* window = w.Find("window");
    if (!window || !window->is_number()) return false;
    a.window = window->UintOr(0);
    a.policy = w.Find("policy") ? w.Find("policy")->StringOr("") : "";
    if (const JsonValue* shared = w.Find("shared")) {
      a.shared = shared->bool_value;
    }
    if (const JsonValue* audited = w.Find("audited")) {
      a.audited = audited->bool_value;
    }
    a.max_normalized_envy = AuditNumber(w.Find("max_normalized_envy"), 0.0);
    if (const JsonValue* users = w.Find("users")) {
      if (!users->is_array()) return false;
      for (const JsonValue& uj : users->items) {
        if (!uj.is_object()) return false;
        UserWindowAudit u;
        u.user = static_cast<std::size_t>(
            uj.Find("user") ? uj.Find("user")->UintOr(0) : 0);
        u.pf_utility = AuditNumber(uj.Find("pf_utility"), 0.0);
        u.isolated_utility = AuditNumber(uj.Find("isolated_utility"), 0.0);
        u.tax = AuditNumber(uj.Find("tax"), 0.0);
        u.break_even_tax = AuditNumber(uj.Find("break_even_tax"), 0.0);
        u.net_utility = AuditNumber(uj.Find("net_utility"), 0.0);
        u.blocking = AuditNumber(uj.Find("blocking"), 0.0);
        a.users.push_back(std::move(u));
      }
    }
    if (const JsonValue* violations = w.Find("violations")) {
      if (!violations->is_array()) return false;
      for (const JsonValue& vj : violations->items) {
        if (!vj.is_object()) return false;
        AuditViolation v;
        v.window = vj.Find("window") ? vj.Find("window")->UintOr(0) : 0;
        v.check = vj.Find("check") ? vj.Find("check")->StringOr("") : "";
        v.user = static_cast<std::size_t>(
            vj.Find("user") ? vj.Find("user")->UintOr(0) : 0);
        v.magnitude = AuditNumber(vj.Find("magnitude"), 0.0);
        v.detail = vj.Find("detail") ? vj.Find("detail")->StringOr("") : "";
        a.violations.push_back(std::move(v));
      }
    }
    out->windows.push_back(std::move(a));
  }
  return true;
}

}  // namespace opus::obs
