#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace opus::obs {

// Deterministic double rendering: the same bit pattern always yields the
// same string ("%.12g" round-trips every value the instrumentation emits).
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

namespace {

bool ValidNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
         c == '.' || c == '-';
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t k = 1; k < bounds_.size(); ++k) {
    OPUS_CHECK_MSG(bounds_[k - 1] < bounds_[k],
                   "histogram bounds must be strictly increasing");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += value;
}

ExportFormat FormatForPath(const std::string& path) {
  auto ends_with = [&](const char* suffix) {
    const std::string s(suffix);
    return path.size() >= s.size() &&
           path.compare(path.size() - s.size(), s.size(), s) == 0;
  };
  if (ends_with(".json")) return ExportFormat::kJson;
  if (ends_with(".csv")) return ExportFormat::kCsv;
  return ExportFormat::kText;
}

void MetricsRegistry::CheckName(const std::string& name) const {
  OPUS_CHECK_MSG(!name.empty(), "metric names must be non-empty");
  for (char c : name) {
    OPUS_CHECK_MSG(ValidNameChar(c),
                   "invalid character '" << c << "' in metric name \"" << name
                                         << "\"");
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  CheckName(name);
  OPUS_CHECK_MSG(gauges_.count(name) == 0 && histograms_.count(name) == 0,
                 "metric \"" << name << "\" already registered as another kind");
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  CheckName(name);
  OPUS_CHECK_MSG(counters_.count(name) == 0 && histograms_.count(name) == 0,
                 "metric \"" << name << "\" already registered as another kind");
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    OPUS_CHECK_MSG(it->second.bounds() == bounds,
                   "histogram \"" << name << "\" re-registered with different bounds");
    return it->second;
  }
  CheckName(name);
  OPUS_CHECK_MSG(counters_.count(name) == 0 && gauges_.count(name) == 0,
                 "metric \"" << name << "\" already registered as another kind");
  return histograms_.emplace(name, Histogram(std::move(bounds))).first->second;
}

void MetricsRegistry::MarkVolatile(const std::string& name) {
  CheckName(name);
  volatile_.insert(name);
}

MetricsSnapshot MetricsRegistry::Snapshot(bool include_volatile) const {
  MetricsSnapshot snap;
  const auto keep = [&](const std::string& name) {
    return include_volatile || volatile_.count(name) == 0;
  };
  for (const auto& [name, c] : counters_) {
    if (keep(name)) snap.counters.push_back({name, c.value()});
  }
  for (const auto& [name, g] : gauges_) {
    if (keep(name)) snap.gauges.push_back({name, g.value()});
  }
  for (const auto& [name, h] : histograms_) {
    if (keep(name)) {
      snap.histograms.push_back(
          {name, h.bounds(), h.bucket_counts(), h.count(), h.sum()});
    }
  }
  return snap;
}

std::string MetricsSnapshot::ToText() const {
  std::ostringstream out;
  for (const auto& c : counters) {
    out << "counter " << c.name << ' ' << c.value << '\n';
  }
  for (const auto& g : gauges) {
    out << "gauge " << g.name << ' ' << FormatDouble(g.value) << '\n';
  }
  for (const auto& h : histograms) {
    out << "histogram " << h.name << " count=" << h.count
        << " sum=" << FormatDouble(h.sum) << " buckets=";
    for (std::size_t k = 0; k < h.counts.size(); ++k) {
      if (k > 0) out << ',';
      if (k < h.bounds.size()) {
        out << "le" << FormatDouble(h.bounds[k]);
      } else {
        out << "inf";
      }
      out << ':' << h.counts[k];
    }
    out << '\n';
  }
  return out.str();
}

std::string MetricsSnapshot::ToCsv() const {
  std::ostringstream out;
  out << "kind,name,field,value\n";
  for (const auto& c : counters) {
    out << "counter," << c.name << ",value," << c.value << '\n';
  }
  for (const auto& g : gauges) {
    out << "gauge," << g.name << ",value," << FormatDouble(g.value) << '\n';
  }
  for (const auto& h : histograms) {
    out << "histogram," << h.name << ",count," << h.count << '\n';
    out << "histogram," << h.name << ",sum," << FormatDouble(h.sum) << '\n';
    for (std::size_t k = 0; k < h.counts.size(); ++k) {
      out << "histogram," << h.name << ",bucket_";
      if (k < h.bounds.size()) {
        out << "le" << FormatDouble(h.bounds[k]);
      } else {
        out << "inf";
      }
      out << ',' << h.counts[k] << '\n';
    }
  }
  return out.str();
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out << (i ? ",\n    " : "\n    ") << '"' << counters[i].name
        << "\": " << counters[i].value;
  }
  out << (counters.empty() ? "},\n" : "\n  },\n");
  out << "  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out << (i ? ",\n    " : "\n    ") << '"' << gauges[i].name
        << "\": " << FormatDouble(gauges[i].value);
  }
  out << (gauges.empty() ? "},\n" : "\n  },\n");
  out << "  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    out << (i ? ",\n    " : "\n    ") << '"' << h.name << "\": {\"count\": "
        << h.count << ", \"sum\": " << FormatDouble(h.sum) << ", \"bounds\": [";
    for (std::size_t k = 0; k < h.bounds.size(); ++k) {
      out << (k ? ", " : "") << FormatDouble(h.bounds[k]);
    }
    out << "], \"counts\": [";
    for (std::size_t k = 0; k < h.counts.size(); ++k) {
      out << (k ? ", " : "") << h.counts[k];
    }
    out << "]}";
  }
  out << (histograms.empty() ? "}\n" : "\n  }\n");
  out << "}\n";
  return out.str();
}

std::string MetricsSnapshot::Export(ExportFormat format) const {
  switch (format) {
    case ExportFormat::kText:
      return ToText();
    case ExportFormat::kCsv:
      return ToCsv();
    case ExportFormat::kJson:
      return ToJson();
  }
  return ToText();
}

}  // namespace opus::obs
