#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "obs/json.h"

namespace opus::obs {

// Deterministic double rendering: the same bit pattern always yields the
// same string ("%.12g" round-trips every value the instrumentation emits).
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string JsonNumber(double v) {
  if (std::isfinite(v)) return FormatDouble(v);
  if (std::isnan(v)) return "\"nan\"";
  return v > 0 ? "\"inf\"" : "\"-inf\"";
}

namespace {

bool ValidNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
         c == '.' || c == '-';
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t k = 1; k < bounds_.size(); ++k) {
    OPUS_CHECK_MSG(bounds_[k - 1] < bounds_[k],
                   "histogram bounds must be strictly increasing");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += value;
}

ExportFormat FormatForPath(const std::string& path) {
  auto ends_with = [&](const char* suffix) {
    const std::string s(suffix);
    return path.size() >= s.size() &&
           path.compare(path.size() - s.size(), s.size(), s) == 0;
  };
  if (ends_with(".json")) return ExportFormat::kJson;
  if (ends_with(".csv")) return ExportFormat::kCsv;
  return ExportFormat::kText;
}

void MetricsRegistry::CheckName(const std::string& name) const {
  OPUS_CHECK_MSG(!name.empty(), "metric names must be non-empty");
  for (char c : name) {
    OPUS_CHECK_MSG(ValidNameChar(c),
                   "invalid character '" << c << "' in metric name \"" << name
                                         << "\"");
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  CheckName(name);
  OPUS_CHECK_MSG(gauges_.count(name) == 0 && histograms_.count(name) == 0,
                 "metric \"" << name << "\" already registered as another kind");
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  CheckName(name);
  OPUS_CHECK_MSG(counters_.count(name) == 0 && histograms_.count(name) == 0,
                 "metric \"" << name << "\" already registered as another kind");
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    OPUS_CHECK_MSG(it->second.bounds() == bounds,
                   "histogram \"" << name << "\" re-registered with different bounds");
    return it->second;
  }
  CheckName(name);
  OPUS_CHECK_MSG(counters_.count(name) == 0 && gauges_.count(name) == 0,
                 "metric \"" << name << "\" already registered as another kind");
  return histograms_.emplace(name, Histogram(std::move(bounds))).first->second;
}

void MetricsRegistry::MarkVolatile(const std::string& name) {
  CheckName(name);
  volatile_.insert(name);
}

MetricsSnapshot MetricsRegistry::Snapshot(bool include_volatile) const {
  MetricsSnapshot snap;
  const auto keep = [&](const std::string& name) {
    return include_volatile || volatile_.count(name) == 0;
  };
  for (const auto& [name, c] : counters_) {
    if (keep(name)) snap.counters.push_back({name, c.value()});
  }
  for (const auto& [name, g] : gauges_) {
    if (keep(name)) snap.gauges.push_back({name, g.value()});
  }
  for (const auto& [name, h] : histograms_) {
    if (keep(name)) {
      snap.histograms.push_back(
          {name, h.bounds(), h.bucket_counts(), h.count(), h.sum()});
    }
  }
  return snap;
}

std::string MetricsSnapshot::ToText() const {
  std::ostringstream out;
  for (const auto& c : counters) {
    out << "counter " << c.name << ' ' << c.value << '\n';
  }
  for (const auto& g : gauges) {
    out << "gauge " << g.name << ' ' << FormatDouble(g.value) << '\n';
  }
  for (const auto& h : histograms) {
    out << "histogram " << h.name << " count=" << h.count
        << " sum=" << FormatDouble(h.sum) << " buckets=";
    for (std::size_t k = 0; k < h.counts.size(); ++k) {
      if (k > 0) out << ',';
      if (k < h.bounds.size()) {
        out << "le" << FormatDouble(h.bounds[k]);
      } else {
        out << "inf";
      }
      out << ':' << h.counts[k];
    }
    out << '\n';
  }
  return out.str();
}

std::string MetricsSnapshot::ToCsv() const {
  std::ostringstream out;
  out << "kind,name,field,value\n";
  for (const auto& c : counters) {
    out << "counter," << CsvEscape(c.name) << ",value," << c.value << '\n';
  }
  for (const auto& g : gauges) {
    out << "gauge," << CsvEscape(g.name) << ",value," << FormatDouble(g.value)
        << '\n';
  }
  for (const auto& h : histograms) {
    const std::string name = CsvEscape(h.name);
    out << "histogram," << name << ",count," << h.count << '\n';
    out << "histogram," << name << ",sum," << FormatDouble(h.sum) << '\n';
    for (std::size_t k = 0; k < h.counts.size(); ++k) {
      out << "histogram," << name << ",bucket_";
      if (k < h.bounds.size()) {
        out << "le" << FormatDouble(h.bounds[k]);
      } else {
        out << "inf";
      }
      out << ',' << h.counts[k] << '\n';
    }
  }
  return out.str();
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out << (i ? ",\n    " : "\n    ") << '"' << JsonEscape(counters[i].name)
        << "\": " << counters[i].value;
  }
  out << (counters.empty() ? "},\n" : "\n  },\n");
  out << "  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out << (i ? ",\n    " : "\n    ") << '"' << JsonEscape(gauges[i].name)
        << "\": " << JsonNumber(gauges[i].value);
  }
  out << (gauges.empty() ? "},\n" : "\n  },\n");
  out << "  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    out << (i ? ",\n    " : "\n    ") << '"' << JsonEscape(h.name)
        << "\": {\"count\": " << h.count
        << ", \"sum\": " << JsonNumber(h.sum) << ", \"bounds\": [";
    for (std::size_t k = 0; k < h.bounds.size(); ++k) {
      out << (k ? ", " : "") << JsonNumber(h.bounds[k]);
    }
    out << "], \"counts\": [";
    for (std::size_t k = 0; k < h.counts.size(); ++k) {
      out << (k ? ", " : "") << h.counts[k];
    }
    out << "]}";
  }
  out << (histograms.empty() ? "}\n" : "\n  }\n");
  out << "}\n";
  return out.str();
}

std::string MetricsSnapshot::Export(ExportFormat format) const {
  switch (format) {
    case ExportFormat::kText:
      return ToText();
    case ExportFormat::kCsv:
      return ToCsv();
    case ExportFormat::kJson:
      return ToJson();
  }
  return ToText();
}

namespace {

std::uint64_t ClampedSub(std::uint64_t after, std::uint64_t before) {
  return after > before ? after - before : 0;
}

}  // namespace

MetricsSnapshot DiffSnapshots(const MetricsSnapshot& before,
                              const MetricsSnapshot& after) {
  MetricsSnapshot delta;

  std::map<std::string, std::uint64_t> prev_counters;
  for (const auto& c : before.counters) prev_counters[c.name] = c.value;
  delta.counters.reserve(after.counters.size());
  for (const auto& c : after.counters) {
    const auto it = prev_counters.find(c.name);
    const std::uint64_t prev = it == prev_counters.end() ? 0 : it->second;
    delta.counters.push_back({c.name, ClampedSub(c.value, prev)});
  }

  // Gauges are levels, not flows: the window's value is the value at its
  // end, not a difference.
  delta.gauges = after.gauges;

  std::map<std::string, const HistogramSample*> prev_hists;
  for (const auto& h : before.histograms) prev_hists[h.name] = &h;
  delta.histograms.reserve(after.histograms.size());
  for (const auto& h : after.histograms) {
    HistogramSample d;
    d.name = h.name;
    d.bounds = h.bounds;
    d.counts = h.counts;
    d.count = h.count;
    d.sum = h.sum;
    const auto it = prev_hists.find(h.name);
    if (it != prev_hists.end() && it->second->bounds == h.bounds) {
      const HistogramSample& p = *it->second;
      for (std::size_t k = 0; k < d.counts.size() && k < p.counts.size(); ++k) {
        d.counts[k] = ClampedSub(d.counts[k], p.counts[k]);
      }
      d.count = ClampedSub(d.count, p.count);
      d.sum -= p.sum;
    }
    delta.histograms.push_back(std::move(d));
  }
  return delta;
}

namespace {

// Splits `s` on `sep`, keeping empty tokens.
std::vector<std::string> SplitString(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

bool ParseUint(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 10);
  return end == s.c_str() + s.size();
}

bool ParseDoubleText(const std::string& s, double* out) {
  if (s.empty()) return false;
  if (s == "inf") {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (s == "-inf") {
    *out = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (s == "nan") {
    *out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

// Numeric JSON values that may have been rendered by JsonNumber(): either a
// plain number or a quoted "inf"/"-inf"/"nan".
bool NumberFromJson(const JsonValue& v, double* out) {
  if (v.is_number()) {
    *out = v.number;
    return true;
  }
  if (v.is_string()) return ParseDoubleText(v.text, out);
  return false;
}

}  // namespace

bool ParseMetricsText(const std::string& text, MetricsSnapshot* out) {
  *out = MetricsSnapshot();
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind, name;
    if (!(ls >> kind >> name)) return false;
    if (kind == "counter") {
      std::string value;
      if (!(ls >> value)) return false;
      CounterSample c;
      c.name = name;
      if (!ParseUint(value, &c.value)) return false;
      out->counters.push_back(std::move(c));
    } else if (kind == "gauge") {
      std::string value;
      if (!(ls >> value)) return false;
      GaugeSample g;
      g.name = name;
      if (!ParseDoubleText(value, &g.value)) return false;
      out->gauges.push_back(std::move(g));
    } else if (kind == "histogram") {
      HistogramSample h;
      h.name = name;
      std::string token;
      bool saw_buckets = false;
      while (ls >> token) {
        if (token.rfind("count=", 0) == 0) {
          if (!ParseUint(token.substr(6), &h.count)) return false;
        } else if (token.rfind("sum=", 0) == 0) {
          if (!ParseDoubleText(token.substr(4), &h.sum)) return false;
        } else if (token.rfind("buckets=", 0) == 0) {
          saw_buckets = true;
          for (const std::string& bucket :
               SplitString(token.substr(8), ',')) {
            const std::size_t colon = bucket.rfind(':');
            if (colon == std::string::npos) return false;
            const std::string bound = bucket.substr(0, colon);
            std::uint64_t count = 0;
            if (!ParseUint(bucket.substr(colon + 1), &count)) return false;
            if (bound == "inf") {
              // Implicit +inf bucket: counted but not a stored bound.
            } else if (bound.rfind("le", 0) == 0) {
              double b = 0.0;
              if (!ParseDoubleText(bound.substr(2), &b)) return false;
              h.bounds.push_back(b);
            } else {
              return false;
            }
            h.counts.push_back(count);
          }
        } else {
          return false;
        }
      }
      if (!saw_buckets || h.counts.size() != h.bounds.size() + 1) return false;
      out->histograms.push_back(std::move(h));
    } else {
      return false;
    }
  }
  return true;
}

bool ParseMetricsJson(const std::string& text, MetricsSnapshot* out) {
  *out = MetricsSnapshot();
  const auto doc = ParseJson(text);
  if (!doc || !doc->is_object()) return false;

  const JsonValue* counters = doc->Find("counters");
  const JsonValue* gauges = doc->Find("gauges");
  const JsonValue* histograms = doc->Find("histograms");
  if (!counters || !counters->is_object() || !gauges || !gauges->is_object() ||
      !histograms || !histograms->is_object()) {
    return false;
  }

  for (const auto& [name, v] : counters->members) {
    if (!v.is_number()) return false;
    out->counters.push_back({name, v.UintOr(0)});
  }
  for (const auto& [name, v] : gauges->members) {
    GaugeSample g;
    g.name = name;
    if (!NumberFromJson(v, &g.value)) return false;
    out->gauges.push_back(std::move(g));
  }
  for (const auto& [name, v] : histograms->members) {
    if (!v.is_object()) return false;
    HistogramSample h;
    h.name = name;
    const JsonValue* count = v.Find("count");
    const JsonValue* sum = v.Find("sum");
    const JsonValue* bounds = v.Find("bounds");
    const JsonValue* counts = v.Find("counts");
    if (!count || !count->is_number() || !sum || !bounds ||
        !bounds->is_array() || !counts || !counts->is_array()) {
      return false;
    }
    h.count = count->UintOr(0);
    if (!NumberFromJson(*sum, &h.sum)) return false;
    for (const auto& b : bounds->items) {
      double value = 0.0;
      if (!NumberFromJson(b, &value)) return false;
      h.bounds.push_back(value);
    }
    for (const auto& c : counts->items) {
      if (!c.is_number()) return false;
      h.counts.push_back(c.UintOr(0));
    }
    if (h.counts.size() != h.bounds.size() + 1) return false;
    out->histograms.push_back(std::move(h));
  }
  return true;
}

std::string MetricWindowsToJson(const std::vector<MetricWindow>& windows) {
  std::ostringstream out;
  out << "[\n";
  for (std::size_t i = 0; i < windows.size(); ++i) {
    std::string metrics = windows[i].delta.ToJson();
    // ToJson ends with a newline; trim it so the window wrapper stays tidy.
    while (!metrics.empty() && metrics.back() == '\n') metrics.pop_back();
    out << "{\"window\": " << windows[i].window << ", \"metrics\": " << metrics
        << "}" << (i + 1 < windows.size() ? "," : "") << '\n';
  }
  out << "]\n";
  return out.str();
}

WindowedSnapshots::WindowedSnapshots(std::size_t max_windows)
    : max_windows_(max_windows) {
  OPUS_CHECK_GT(max_windows_, 0u);
}

void WindowedSnapshots::Capture(const MetricsRegistry& registry,
                                std::uint64_t window_id) {
  MetricsSnapshot now = registry.Snapshot();
  MetricWindow w;
  w.window = window_id;
  w.delta = DiffSnapshots(last_, now);
  windows_.push_back(std::move(w));
  last_ = std::move(now);
  ++captured_;
  if (windows_.size() > max_windows_) {
    windows_.erase(windows_.begin());
    ++dropped_;
  }
}

}  // namespace opus::obs
