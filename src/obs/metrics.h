// Deterministic metrics registry — the observability substrate behind the
// paper's per-user hit-ratio / blocking-delay / reallocation figures
// (Figs. 5-10), generalized into a uniform, assertable export.
//
// Three metric kinds, all keyed by structured dot-separated names
// ("cluster.worker.3.mem_hits", "master.solve.iterations"):
//
//  - Counter:   monotonically increasing uint64.
//  - Gauge:     last-written double (window size, residual, hit ratio).
//  - Histogram: fixed upper-bound buckets chosen at creation plus an
//               implicit +inf bucket; tracks per-bucket counts, total count
//               and sum. Buckets are fixed so two runs that observe the
//               same values export byte-identical bucket vectors.
//
// Determinism contract: everything is logical-clock based (event indices,
// iteration counts, byte totals) — never wall time — so a Snapshot() export
// is byte-identical across reruns and thread counts as long as the recorded
// computation itself is deterministic (which the PR-1 threading contract
// guarantees for all shipped components). Metrics that are inherently
// nondeterministic (e.g. solve wall time) must be registered volatile via
// MarkVolatile(); Snapshot() excludes them unless explicitly asked.
//
// Threading: a registry is single-writer (one simulation/control loop owns
// it). Parallel phases must aggregate into deterministic per-task slots
// first (the way OpusAllocator totals its leave-one-out solves) and record
// the merged result from the owning thread.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace opus::obs {

class Counter {
 public:
  void Increment(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double value) { value_ = value; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class Histogram {
 public:
  // `bounds` are strictly increasing upper bucket bounds; a value v lands
  // in the first bucket with v <= bound, else in the +inf bucket.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  // Per-bucket counts; size = bounds().size() + 1 (last = +inf bucket).
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

// Value-type snapshot of a registry, sorted by name within each kind, with
// deterministic text/CSV/JSON serializations.
struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;
};

// Deterministic double rendering used by every exporter ("%.12g"); also the
// right helper for stringifying numeric fields of trace events.
std::string FormatDouble(double v);

// FormatDouble for finite values; non-finite values become quoted strings
// ("inf", "-inf", "nan") so JSON documents stay parseable. Every JSON
// exporter in obs renders doubles through this.
std::string JsonNumber(double v);

enum class ExportFormat { kText, kCsv, kJson };

// Picks a format from a file path: ".json" -> kJson, ".csv" -> kCsv,
// anything else -> kText.
ExportFormat FormatForPath(const std::string& path);

struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  // One "kind name ..." line per metric.
  std::string ToText() const;
  // kind,name,field,value rows (histograms expand to one row per bucket).
  std::string ToCsv() const;
  // {"counters":{...},"gauges":{...},"histograms":{...}}
  std::string ToJson() const;

  std::string Export(ExportFormat format) const;
};

// Per-metric delta `after - before`, the unit of per-allocation-window
// accounting: counters and histogram bucket counts subtract (clamped at
// zero — they are monotonic, so a negative delta means mismatched
// snapshots), histogram sums subtract exactly, and gauges keep the `after`
// value (a gauge is a level, not a flow). Metrics absent from `before`
// diff against zero; metrics absent from `after` are dropped.
MetricsSnapshot DiffSnapshots(const MetricsSnapshot& before,
                              const MetricsSnapshot& after);

// Loaders for the snapshot exports (round-trip of ToText / ToJson). Return
// false on malformed input. Used by opus_inspect and the exporter
// regression tests.
bool ParseMetricsText(const std::string& text, MetricsSnapshot* out);
bool ParseMetricsJson(const std::string& text, MetricsSnapshot* out);

// One allocation window's metric delta, tagged with the window id (the
// master's reallocation epoch).
struct MetricWindow {
  std::uint64_t window = 0;
  MetricsSnapshot delta;
};

// JSON array of {"window": k, "metrics": {...}} objects.
std::string MetricWindowsToJson(const std::vector<MetricWindow>& windows);

class MetricsRegistry;

// Captures per-allocation-window metric deltas from a registry: Capture()
// snapshots the registry and records the delta against the previous
// capture, so each window shows what happened *during* it instead of
// cumulative end-of-run totals. Bounded: beyond `max_windows` the oldest
// window is dropped (and counted), so long simulations stay bounded the
// same way EventTrace does.
class WindowedSnapshots {
 public:
  explicit WindowedSnapshots(std::size_t max_windows = 512);

  void Capture(const MetricsRegistry& registry, std::uint64_t window_id);

  const std::vector<MetricWindow>& windows() const { return windows_; }
  std::uint64_t captured() const { return captured_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  std::size_t max_windows_;
  std::vector<MetricWindow> windows_;
  MetricsSnapshot last_;
  std::uint64_t captured_ = 0;
  std::uint64_t dropped_ = 0;
};

class MetricsRegistry {
 public:
  // Creation is idempotent: re-requesting a name returns the same object.
  // A name identifies exactly one kind; reusing it across kinds aborts.
  // Names must be non-empty dot-separated [a-z0-9_.-] tokens.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  // `bounds` must be strictly increasing; re-requesting an existing
  // histogram requires identical bounds.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  // Flags `name` as volatile (nondeterministic across runs — wall times and
  // the like). Volatile metrics are skipped by Snapshot() by default.
  void MarkVolatile(const std::string& name);

  MetricsSnapshot Snapshot(bool include_volatile = false) const;

 private:
  void CheckName(const std::string& name) const;

  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::set<std::string> volatile_;
};

}  // namespace opus::obs
