#include "obs/event_trace.h"

#include <sstream>

#include "common/check.h"
#include "obs/json.h"

namespace opus::obs {

EventTrace::EventTrace(std::size_t capacity) : capacity_(capacity) {
  OPUS_CHECK_GT(capacity_, 0u);
}

void EventTrace::Emit(
    std::string kind,
    std::vector<std::pair<std::string, std::string>> fields) {
  TraceEvent e;
  e.seq = next_seq_++;
  e.kind = std::move(kind);
  e.fields = std::move(fields);
  events_.push_back(std::move(e));
  if (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
    if (drop_counter_ != nullptr) drop_counter_->Increment();
  }
}

void EventTrace::AttachDropCounter(Counter* counter) {
  drop_counter_ = counter;
  if (drop_counter_ != nullptr && dropped_ > drop_counter_->value()) {
    drop_counter_->Increment(dropped_ - drop_counter_->value());
  }
}

std::vector<TraceEvent> EventTrace::Snapshot() const {
  return {events_.begin(), events_.end()};
}

std::string EventsToText(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  for (const auto& e : events) {
    out << e.seq << ' ' << e.kind;
    for (const auto& [k, v] : e.fields) out << ' ' << k << '=' << v;
    out << '\n';
  }
  return out.str();
}

std::string EventsToCsv(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  out << "seq,kind,fields\n";
  for (const auto& e : events) {
    out << e.seq << ',' << CsvEscape(e.kind) << ',';
    std::string fields;
    for (std::size_t k = 0; k < e.fields.size(); ++k) {
      if (k > 0) fields += ' ';
      fields += e.fields[k].first;
      fields += '=';
      fields += e.fields[k].second;
    }
    out << CsvEscape(fields) << '\n';
  }
  return out.str();
}

std::string EventsToJson(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  out << "[\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    out << "  {\"seq\": " << e.seq << ", \"kind\": \"" << JsonEscape(e.kind)
        << "\"";
    for (const auto& [k, v] : e.fields) {
      out << ", \"" << JsonEscape(k) << "\": \"" << JsonEscape(v) << "\"";
    }
    out << "}" << (i + 1 < events.size() ? "," : "") << '\n';
  }
  out << "]\n";
  return out.str();
}

std::string ExportEvents(const std::vector<TraceEvent>& events,
                         ExportFormat format) {
  switch (format) {
    case ExportFormat::kText:
      return EventsToText(events);
    case ExportFormat::kCsv:
      return EventsToCsv(events);
    case ExportFormat::kJson:
      return EventsToJson(events);
  }
  return EventsToText(events);
}

}  // namespace opus::obs
