// Worker failure and recovery: crashed workers lose their blocks, reads
// fall through to the under store, and the next allocation round restores
// pins — the availability story behind the paper's "OpuSMaster ... runs
// Algorithm 1 periodically".
#include <gtest/gtest.h>

#include "cache/cluster.h"
#include "core/opus.h"
#include "sim/opus_master.h"

namespace opus::cache {
namespace {

Catalog ThreeFileCatalog() {
  Catalog c(1 * kMiB);
  for (int f = 0; f < 3; ++f) {
    c.Register("f" + std::to_string(f), 6 * kMiB);
  }
  return c;
}

ClusterConfig ThreeWorkerConfig() {
  ClusterConfig cfg;
  cfg.num_workers = 3;
  cfg.num_users = 1;
  cfg.cache_capacity_bytes = 18 * kMiB;
  return cfg;
}

TEST(FailureTest, FailedWorkerLosesItsBlocks) {
  CacheCluster cluster(ThreeWorkerConfig(), ThreeFileCatalog());
  cluster.ApplyAllocation({1.0, 1.0, 1.0});
  EXPECT_NEAR(cluster.ResidentFraction(0), 1.0, 1e-12);
  cluster.FailWorker(0);
  EXPECT_EQ(cluster.num_alive_workers(), 2u);
  // f0's blocks 0..5 map to workers (0+idx)%3 — a third lives on worker 0.
  EXPECT_NEAR(cluster.ResidentFraction(0), 2.0 / 3.0, 1e-12);
}

TEST(FailureTest, ReadsOnFailedWorkerGoToDisk) {
  CacheCluster cluster(ThreeWorkerConfig(), ThreeFileCatalog());
  cluster.ApplyAllocation({1.0, 1.0, 1.0});
  cluster.FailWorker(1);
  const auto r = cluster.Read(0, 0);
  EXPECT_EQ(r.bytes_from_disk, 2 * kMiB);  // the 2 blocks on worker 1
  EXPECT_EQ(r.bytes_from_memory, 4 * kMiB);
}

TEST(FailureTest, RecoveredWorkerRepinsFromLastUpdate) {
  CacheCluster cluster(ThreeWorkerConfig(), ThreeFileCatalog());
  cluster.ApplyAllocation({1.0, 1.0, 1.0});
  const std::uint64_t disk_before = cluster.under_store().bytes_read();
  cluster.FailWorker(2);
  cluster.RecoverWorker(2);
  EXPECT_TRUE(cluster.IsWorkerAlive(2));
  // The latest CacheUpdate is replayed on recovery: the worker is warm
  // again immediately, and the reload was charged as under-store reads
  // (regression: recovered workers used to sit empty and unpinned until
  // the next reallocation round).
  EXPECT_NEAR(cluster.ResidentFraction(0), 1.0, 1e-12);
  EXPECT_GT(cluster.under_store().bytes_read(), disk_before);
}

TEST(FailureTest, RecoveryInUnmanagedModeStaysCold) {
  // Without a control plane there is no stored CacheUpdate to replay; the
  // worker refills organically via cache-on-read.
  CacheCluster cluster(ThreeWorkerConfig(), ThreeFileCatalog());
  cluster.Read(0, 0);  // warms the unmanaged cache
  cluster.FailWorker(2);
  cluster.RecoverWorker(2);
  EXPECT_TRUE(cluster.IsWorkerAlive(2));
  EXPECT_LT(cluster.ResidentFraction(0), 1.0);
}

TEST(FailureTest, UnmanagedModeDoesNotCacheOnDeadWorker) {
  CacheCluster cluster(ThreeWorkerConfig(), ThreeFileCatalog());
  cluster.FailWorker(0);
  cluster.Read(0, 0);
  cluster.Read(0, 0);
  const auto r = cluster.Read(0, 0);
  // Blocks mapping to the dead worker keep missing; the rest are cached.
  EXPECT_EQ(r.bytes_from_disk, 2 * kMiB);
  EXPECT_EQ(r.bytes_from_memory, 4 * kMiB);
}

TEST(FailureTest, DoubleFailIsIdempotent) {
  CacheCluster cluster(ThreeWorkerConfig(), ThreeFileCatalog());
  cluster.FailWorker(0);
  cluster.FailWorker(0);
  EXPECT_EQ(cluster.num_alive_workers(), 2u);
}

TEST(FailureTest, ReallocWhileDeadThenRecoverShrinksCleanly) {
  // fail -> realloc (shrink) -> recover: the allocation shrank while the
  // worker was down, so recovery reloads only the new, smaller prefix and
  // the next epoch's delta bookkeeping stays exact.
  CacheCluster cluster(ThreeWorkerConfig(), ThreeFileCatalog());
  cluster.ApplyAllocation({1.0, 1.0, 1.0});
  cluster.FailWorker(1);
  cluster.ApplyAllocation({0.5, 0.5, 0.5});  // 3 of 6 blocks per file
  cluster.RecoverWorker(1);
  for (FileId f = 0; f < 3; ++f) {
    EXPECT_NEAR(cluster.ResidentFraction(f), 0.5, 1e-12) << "file " << f;
  }
  // The rebuilt prefix is trusted: a follow-up delta epoch must land on
  // exactly the new fractions with no stale survivors.
  cluster.ApplyAllocation({1.0, 0.0, 0.5});
  EXPECT_NEAR(cluster.ResidentFraction(0), 1.0, 1e-12);
  EXPECT_NEAR(cluster.ResidentFraction(1), 0.0, 1e-12);
  EXPECT_NEAR(cluster.ResidentFraction(2), 0.5, 1e-12);
}

TEST(FailureTest, OverloadedRecoveryForcesReconciliationPass) {
  // Regression: fail -> realloc (grow) -> recover -> realloc (shrink).
  //
  // While the worker is down the allocation grows past what its memory can
  // hold; ApplyAllocation records no failure (dead workers are skipped),
  // so the delta invariant looks intact. Recovery then overflows the
  // worker — low-index pins fail — and used to DROP that failure count,
  // leaving needs_full_pass_ false. The next (shrinking) epoch would run a
  // delta pass that only erases the tail, permanently missing the
  // low-index blocks its prefix bookkeeping claims are resident.
  ClusterConfig cfg;
  cfg.num_workers = 1;
  cfg.num_users = 1;
  cfg.cache_capacity_bytes = 6 * kMiB;  // 6 of the file's 8 blocks fit
  Catalog catalog(1 * kMiB);
  catalog.Register("f0", 8 * kMiB);
  CacheCluster cluster(cfg, std::move(catalog));

  cluster.ApplyAllocation({0.25});  // epoch A: blocks 0..1 pinned
  cluster.FailWorker(0);
  cluster.ApplyAllocation({1.0});  // epoch B: prefix=8, worker dead, no
                                   // failures recorded
  cluster.RecoverWorker(0);  // reloads 8 blocks into 6 MiB: LRU evicts
                             // blocks 0..1 during load, their pins fail
  EXPECT_NEAR(cluster.ResidentFraction(0), 6.0 / 8.0, 1e-12);

  cluster.ApplyAllocation({0.5});  // epoch C: must reconcile, not delta
  // With the failure count dropped this was 0.25 (blocks 2..3): the delta
  // pass erased the tail and never reloaded the missing 0..1.
  EXPECT_NEAR(cluster.ResidentFraction(0), 0.5, 1e-12);
  const auto r = cluster.Read(0, 0);
  EXPECT_EQ(r.bytes_from_memory, 4 * kMiB);
  EXPECT_EQ(r.bytes_from_disk, 4 * kMiB);
}

TEST(FailureTest, MasterReallocationHealsTheCache) {
  // End-to-end: fail a worker mid-flight and leave it down across a
  // reallocation round — the master cannot push pins to a dead worker, so
  // the cache stays degraded until the worker returns, at which point the
  // stored update (refreshed by the round that ran while it was down)
  // restores full residency without waiting for the next round.
  CacheCluster cluster(ThreeWorkerConfig(), ThreeFileCatalog());
  const OpusAllocator alloc;
  sim::OpusMasterConfig cfg;
  cfg.update_interval = 10;
  sim::OpusMaster master(&alloc, &cluster, cfg);

  workload::AccessEvent e;
  e.user = 0;
  e.file = 0;
  for (int k = 0; k < 10; ++k) master.OnAccess(e);  // triggers allocation
  EXPECT_NEAR(cluster.ResidentFraction(0), 1.0, 1e-12);

  cluster.FailWorker(1);
  EXPECT_LT(cluster.ResidentFraction(0), 1.0);
  for (int k = 0; k < 10; ++k) master.OnAccess(e);  // realloc, worker 1 down
  EXPECT_LT(cluster.ResidentFraction(0), 1.0);
  cluster.RecoverWorker(1);
  EXPECT_NEAR(cluster.ResidentFraction(0), 1.0, 1e-12);
}

}  // namespace
}  // namespace opus::cache
