// Worker failure and recovery: crashed workers lose their blocks, reads
// fall through to the under store, and the next allocation round restores
// pins — the availability story behind the paper's "OpuSMaster ... runs
// Algorithm 1 periodically".
#include <gtest/gtest.h>

#include "cache/cluster.h"
#include "core/opus.h"
#include "sim/opus_master.h"

namespace opus::cache {
namespace {

Catalog ThreeFileCatalog() {
  Catalog c(1 * kMiB);
  for (int f = 0; f < 3; ++f) {
    c.Register("f" + std::to_string(f), 6 * kMiB);
  }
  return c;
}

ClusterConfig ThreeWorkerConfig() {
  ClusterConfig cfg;
  cfg.num_workers = 3;
  cfg.num_users = 1;
  cfg.cache_capacity_bytes = 18 * kMiB;
  return cfg;
}

TEST(FailureTest, FailedWorkerLosesItsBlocks) {
  CacheCluster cluster(ThreeWorkerConfig(), ThreeFileCatalog());
  cluster.ApplyAllocation({1.0, 1.0, 1.0});
  EXPECT_NEAR(cluster.ResidentFraction(0), 1.0, 1e-12);
  cluster.FailWorker(0);
  EXPECT_EQ(cluster.num_alive_workers(), 2u);
  // f0's blocks 0..5 map to workers (0+idx)%3 — a third lives on worker 0.
  EXPECT_NEAR(cluster.ResidentFraction(0), 2.0 / 3.0, 1e-12);
}

TEST(FailureTest, ReadsOnFailedWorkerGoToDisk) {
  CacheCluster cluster(ThreeWorkerConfig(), ThreeFileCatalog());
  cluster.ApplyAllocation({1.0, 1.0, 1.0});
  cluster.FailWorker(1);
  const auto r = cluster.Read(0, 0);
  EXPECT_EQ(r.bytes_from_disk, 2 * kMiB);  // the 2 blocks on worker 1
  EXPECT_EQ(r.bytes_from_memory, 4 * kMiB);
}

TEST(FailureTest, RecoveredWorkerRepinsFromLastUpdate) {
  CacheCluster cluster(ThreeWorkerConfig(), ThreeFileCatalog());
  cluster.ApplyAllocation({1.0, 1.0, 1.0});
  const std::uint64_t disk_before = cluster.under_store().bytes_read();
  cluster.FailWorker(2);
  cluster.RecoverWorker(2);
  EXPECT_TRUE(cluster.IsWorkerAlive(2));
  // The latest CacheUpdate is replayed on recovery: the worker is warm
  // again immediately, and the reload was charged as under-store reads
  // (regression: recovered workers used to sit empty and unpinned until
  // the next reallocation round).
  EXPECT_NEAR(cluster.ResidentFraction(0), 1.0, 1e-12);
  EXPECT_GT(cluster.under_store().bytes_read(), disk_before);
}

TEST(FailureTest, RecoveryInUnmanagedModeStaysCold) {
  // Without a control plane there is no stored CacheUpdate to replay; the
  // worker refills organically via cache-on-read.
  CacheCluster cluster(ThreeWorkerConfig(), ThreeFileCatalog());
  cluster.Read(0, 0);  // warms the unmanaged cache
  cluster.FailWorker(2);
  cluster.RecoverWorker(2);
  EXPECT_TRUE(cluster.IsWorkerAlive(2));
  EXPECT_LT(cluster.ResidentFraction(0), 1.0);
}

TEST(FailureTest, UnmanagedModeDoesNotCacheOnDeadWorker) {
  CacheCluster cluster(ThreeWorkerConfig(), ThreeFileCatalog());
  cluster.FailWorker(0);
  cluster.Read(0, 0);
  cluster.Read(0, 0);
  const auto r = cluster.Read(0, 0);
  // Blocks mapping to the dead worker keep missing; the rest are cached.
  EXPECT_EQ(r.bytes_from_disk, 2 * kMiB);
  EXPECT_EQ(r.bytes_from_memory, 4 * kMiB);
}

TEST(FailureTest, DoubleFailIsIdempotent) {
  CacheCluster cluster(ThreeWorkerConfig(), ThreeFileCatalog());
  cluster.FailWorker(0);
  cluster.FailWorker(0);
  EXPECT_EQ(cluster.num_alive_workers(), 2u);
}

TEST(FailureTest, MasterReallocationHealsTheCache) {
  // End-to-end: fail a worker mid-flight and leave it down across a
  // reallocation round — the master cannot push pins to a dead worker, so
  // the cache stays degraded until the worker returns, at which point the
  // stored update (refreshed by the round that ran while it was down)
  // restores full residency without waiting for the next round.
  CacheCluster cluster(ThreeWorkerConfig(), ThreeFileCatalog());
  const OpusAllocator alloc;
  sim::OpusMasterConfig cfg;
  cfg.update_interval = 10;
  sim::OpusMaster master(&alloc, &cluster, cfg);

  workload::AccessEvent e;
  e.user = 0;
  e.file = 0;
  for (int k = 0; k < 10; ++k) master.OnAccess(e);  // triggers allocation
  EXPECT_NEAR(cluster.ResidentFraction(0), 1.0, 1e-12);

  cluster.FailWorker(1);
  EXPECT_LT(cluster.ResidentFraction(0), 1.0);
  for (int k = 0; k < 10; ++k) master.OnAccess(e);  // realloc, worker 1 down
  EXPECT_LT(cluster.ResidentFraction(0), 1.0);
  cluster.RecoverWorker(1);
  EXPECT_NEAR(cluster.ResidentFraction(0), 1.0, 1e-12);
}

}  // namespace
}  // namespace opus::cache
