// Worker failure and recovery: crashed workers lose their blocks, reads
// fall through to the under store, and the next allocation round restores
// pins — the availability story behind the paper's "OpuSMaster ... runs
// Algorithm 1 periodically".
#include <gtest/gtest.h>

#include "cache/cluster.h"
#include "core/opus.h"
#include "sim/opus_master.h"

namespace opus::cache {
namespace {

Catalog ThreeFileCatalog() {
  Catalog c(1 * kMiB);
  for (int f = 0; f < 3; ++f) {
    c.Register("f" + std::to_string(f), 6 * kMiB);
  }
  return c;
}

ClusterConfig ThreeWorkerConfig() {
  ClusterConfig cfg;
  cfg.num_workers = 3;
  cfg.num_users = 1;
  cfg.cache_capacity_bytes = 18 * kMiB;
  return cfg;
}

TEST(FailureTest, FailedWorkerLosesItsBlocks) {
  CacheCluster cluster(ThreeWorkerConfig(), ThreeFileCatalog());
  cluster.ApplyAllocation({1.0, 1.0, 1.0});
  EXPECT_NEAR(cluster.ResidentFraction(0), 1.0, 1e-12);
  cluster.FailWorker(0);
  EXPECT_EQ(cluster.num_alive_workers(), 2u);
  // f0's blocks 0..5 map to workers (0+idx)%3 — a third lives on worker 0.
  EXPECT_NEAR(cluster.ResidentFraction(0), 2.0 / 3.0, 1e-12);
}

TEST(FailureTest, ReadsOnFailedWorkerGoToDisk) {
  CacheCluster cluster(ThreeWorkerConfig(), ThreeFileCatalog());
  cluster.ApplyAllocation({1.0, 1.0, 1.0});
  cluster.FailWorker(1);
  const auto r = cluster.Read(0, 0);
  EXPECT_EQ(r.bytes_from_disk, 2 * kMiB);  // the 2 blocks on worker 1
  EXPECT_EQ(r.bytes_from_memory, 4 * kMiB);
}

TEST(FailureTest, RecoveredWorkerStartsEmptyThenRepins) {
  CacheCluster cluster(ThreeWorkerConfig(), ThreeFileCatalog());
  cluster.ApplyAllocation({1.0, 1.0, 1.0});
  cluster.FailWorker(2);
  cluster.RecoverWorker(2);
  EXPECT_TRUE(cluster.IsWorkerAlive(2));
  // Still cold until the next allocation round.
  EXPECT_LT(cluster.ResidentFraction(0), 1.0);
  cluster.ApplyAllocation({1.0, 1.0, 1.0});
  EXPECT_NEAR(cluster.ResidentFraction(0), 1.0, 1e-12);
}

TEST(FailureTest, UnmanagedModeDoesNotCacheOnDeadWorker) {
  CacheCluster cluster(ThreeWorkerConfig(), ThreeFileCatalog());
  cluster.FailWorker(0);
  cluster.Read(0, 0);
  cluster.Read(0, 0);
  const auto r = cluster.Read(0, 0);
  // Blocks mapping to the dead worker keep missing; the rest are cached.
  EXPECT_EQ(r.bytes_from_disk, 2 * kMiB);
  EXPECT_EQ(r.bytes_from_memory, 4 * kMiB);
}

TEST(FailureTest, DoubleFailIsIdempotent) {
  CacheCluster cluster(ThreeWorkerConfig(), ThreeFileCatalog());
  cluster.FailWorker(0);
  cluster.FailWorker(0);
  EXPECT_EQ(cluster.num_alive_workers(), 2u);
}

TEST(FailureTest, MasterReallocationHealsTheCache) {
  // End-to-end: fail a worker mid-flight; the OpusMaster's next periodic
  // reallocation reloads the lost pins on the recovered worker.
  CacheCluster cluster(ThreeWorkerConfig(), ThreeFileCatalog());
  const OpusAllocator alloc;
  sim::OpusMasterConfig cfg;
  cfg.update_interval = 10;
  sim::OpusMaster master(&alloc, &cluster, cfg);

  workload::AccessEvent e;
  e.user = 0;
  e.file = 0;
  for (int k = 0; k < 10; ++k) master.OnAccess(e);  // triggers allocation
  EXPECT_NEAR(cluster.ResidentFraction(0), 1.0, 1e-12);

  cluster.FailWorker(1);
  cluster.RecoverWorker(1);
  EXPECT_LT(cluster.ResidentFraction(0), 1.0);
  for (int k = 0; k < 10; ++k) master.OnAccess(e);  // next round heals
  EXPECT_NEAR(cluster.ResidentFraction(0), 1.0, 1e-12);
}

}  // namespace
}  // namespace opus::cache
