#include "cache/block_store.h"

#include <gtest/gtest.h>

namespace opus::cache {
namespace {

BlockStore MakeLru(std::uint64_t capacity) {
  return BlockStore(capacity, EvictionKind::kLru);
}

TEST(BlockStoreTest, InsertAndContains) {
  auto s = MakeLru(100);
  EXPECT_TRUE(s.Insert(1, 40));
  EXPECT_TRUE(s.Contains(1));
  EXPECT_FALSE(s.Contains(2));
  EXPECT_EQ(s.used_bytes(), 40u);
}

TEST(BlockStoreTest, DuplicateInsertIsNoop) {
  auto s = MakeLru(100);
  EXPECT_TRUE(s.Insert(1, 40));
  EXPECT_TRUE(s.Insert(1, 40));
  EXPECT_EQ(s.used_bytes(), 40u);
  EXPECT_EQ(s.num_blocks(), 1u);
}

// Regression: re-inserting a resident block must refresh its position in
// the eviction order, exactly like an Access. The old implementation
// returned early without touching the policy, so a re-inserted block kept
// its stale recency and could be evicted as if never touched.
TEST(BlockStoreTest, ReinsertRefreshesEvictionOrder) {
  auto s = MakeLru(100);
  EXPECT_TRUE(s.Insert(1, 50));
  EXPECT_TRUE(s.Insert(2, 50));
  EXPECT_TRUE(s.Insert(1, 50));  // re-insert: 2 is now least recent
  EXPECT_TRUE(s.Insert(3, 50));
  EXPECT_TRUE(s.Contains(1));
  EXPECT_FALSE(s.Contains(2));
  EXPECT_TRUE(s.Contains(3));
}

// The same contract for LFU: a re-insert counts as a use.
TEST(BlockStoreTest, ReinsertBumpsLfuFrequency) {
  BlockStore s(100, EvictionKind::kLfu);
  EXPECT_TRUE(s.Insert(1, 50));   // freq(1) = 1
  EXPECT_TRUE(s.Insert(2, 50));   // freq(2) = 1
  EXPECT_TRUE(s.Insert(1, 50));   // freq(1) = 2
  EXPECT_TRUE(s.Insert(3, 50));   // must evict 2 (lowest freq)
  EXPECT_TRUE(s.Contains(1));
  EXPECT_FALSE(s.Contains(2));
  EXPECT_TRUE(s.Contains(3));
}

// Pinned blocks are untracked by the policy; a re-insert must not
// resurrect them into the eviction order.
TEST(BlockStoreTest, ReinsertOfPinnedBlockStaysPinned) {
  auto s = MakeLru(100);
  EXPECT_TRUE(s.Insert(1, 60));
  EXPECT_TRUE(s.Pin(1));
  EXPECT_TRUE(s.Insert(1, 60));
  EXPECT_FALSE(s.Insert(2, 60));  // 1 is still unevictable
  EXPECT_TRUE(s.Contains(1));
  EXPECT_TRUE(s.IsPinned(1));
}

TEST(BlockStoreTest, EvictsLruWhenFull) {
  auto s = MakeLru(100);
  s.Insert(1, 50);
  s.Insert(2, 50);
  s.Access(1);  // 2 becomes LRU
  EXPECT_TRUE(s.Insert(3, 50));
  EXPECT_TRUE(s.Contains(1));
  EXPECT_FALSE(s.Contains(2));
  EXPECT_TRUE(s.Contains(3));
  EXPECT_EQ(s.evictions(), 1u);
}

TEST(BlockStoreTest, OversizedBlockRejected) {
  auto s = MakeLru(100);
  EXPECT_FALSE(s.Insert(1, 101));
  EXPECT_EQ(s.used_bytes(), 0u);
}

TEST(BlockStoreTest, PinnedBlocksSurviveEviction) {
  auto s = MakeLru(100);
  s.Insert(1, 50);
  s.Insert(2, 50);
  EXPECT_TRUE(s.Pin(1));
  EXPECT_TRUE(s.Insert(3, 50));  // must evict 2, not pinned 1
  EXPECT_TRUE(s.Contains(1));
  EXPECT_FALSE(s.Contains(2));
}

TEST(BlockStoreTest, InsertFailsWhenEverythingPinned) {
  auto s = MakeLru(100);
  s.Insert(1, 60);
  s.Pin(1);
  EXPECT_FALSE(s.Insert(2, 60));
  EXPECT_TRUE(s.Contains(1));
}

TEST(BlockStoreTest, PinAbsentBlockFails) {
  auto s = MakeLru(100);
  EXPECT_FALSE(s.Pin(42));
}

TEST(BlockStoreTest, UnpinMakesEvictableAgain) {
  auto s = MakeLru(100);
  s.Insert(1, 60);
  s.Pin(1);
  s.Unpin(1);
  EXPECT_TRUE(s.Insert(2, 60));
  EXPECT_FALSE(s.Contains(1));
  EXPECT_TRUE(s.Contains(2));
}

TEST(BlockStoreTest, EraseReleasesBytesAndPin) {
  auto s = MakeLru(100);
  s.Insert(1, 60);
  s.Pin(1);
  EXPECT_EQ(s.pinned_bytes(), 60u);
  s.Erase(1);
  EXPECT_EQ(s.used_bytes(), 0u);
  EXPECT_EQ(s.pinned_bytes(), 0u);
  EXPECT_FALSE(s.Contains(1));
}

TEST(BlockStoreTest, AccessReturnsResidency) {
  auto s = MakeLru(100);
  s.Insert(1, 10);
  EXPECT_TRUE(s.Access(1));
  EXPECT_FALSE(s.Access(2));
}

TEST(BlockStoreTest, PinnedBytesTracked) {
  auto s = MakeLru(100);
  s.Insert(1, 30);
  s.Insert(2, 20);
  s.Pin(1);
  s.Pin(2);
  EXPECT_EQ(s.pinned_bytes(), 50u);
  s.Unpin(1);
  EXPECT_EQ(s.pinned_bytes(), 20u);
}

TEST(BlockStoreTest, ResidentBlocksSnapshot) {
  auto s = MakeLru(100);
  s.Insert(7, 10);
  s.Insert(9, 10);
  auto blocks = s.ResidentBlocks();
  EXPECT_EQ(blocks.size(), 2u);
}

}  // namespace
}  // namespace opus::cache
