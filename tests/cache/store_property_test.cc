// Property test for the flat BlockStore: drive it and ReferenceBlockStore
// (the preserved pre-optimization implementation, see reference_store.h)
// through identical randomized op sequences and require bit-identical
// observables after every op — return values, byte accounting, resident
// sets, pin sets, eviction counts, and (via per-op resident-set diffs) the
// exact victim sequence. Runs for both LRU and LFU so the intrusive list
// and the frequency buckets are each checked against their std-container
// references.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/block_store.h"
#include "cache/reference_store.h"
#include "common/rng.h"

namespace opus::cache {
namespace {

std::vector<BlockId> Sorted(std::vector<BlockId> blocks) {
  std::sort(blocks.begin(), blocks.end());
  return blocks;
}

// Blocks evicted/erased by the last op: in `before` but not `after`.
std::vector<BlockId> Departed(const std::vector<BlockId>& before,
                              const std::vector<BlockId>& after) {
  std::vector<BlockId> out;
  std::set_difference(before.begin(), before.end(), after.begin(),
                      after.end(), std::back_inserter(out));
  return out;
}

struct StressCase {
  std::string policy;
  std::uint64_t seed;
};

class StorePropertyTest : public ::testing::TestWithParam<StressCase> {};

TEST_P(StorePropertyTest, FlatStoreMatchesReferenceExactly) {
  const StressCase& param = GetParam();
  Rng rng(param.seed);
  const std::uint64_t capacity = 60 + rng.NextBounded(300);
  BlockStore real(capacity, param.policy);
  ReferenceBlockStore ref(capacity, MakeEvictionPolicy(param.policy));

  // Mix of a small hot set (drives eviction-order collisions) and a wide
  // universe (drives table growth, backward-shift deletion, rehash).
  const std::size_t universe = 48;
  auto pick_block = [&]() -> BlockId {
    return rng.NextBounded(2) == 0 ? rng.NextBounded(8)
                                   : rng.NextBounded(universe);
  };

  for (int op = 0; op < 6000; ++op) {
    const BlockId b = pick_block();
    std::vector<BlockId> before = Sorted(real.ResidentBlocks());
    const std::uint64_t real_evictions_before = real.evictions();
    const std::uint64_t ref_evictions_before = ref.evictions();
    switch (rng.NextBounded(6)) {
      case 0:
      case 1: {  // insert, weighted up so the stores actually fill
        const std::uint64_t bytes = 5 + (b * 7) % 40;
        ASSERT_EQ(real.Insert(b, bytes), ref.Insert(b, bytes)) << "op " << op;
        break;
      }
      case 2:
        ASSERT_EQ(real.Access(b), ref.Access(b)) << "op " << op;
        break;
      case 3:
        real.Erase(b);
        ref.Erase(b);
        break;
      case 4:
        ASSERT_EQ(real.Pin(b), ref.Pin(b)) << "op " << op;
        break;
      default:
        real.Unpin(b);
        ref.Unpin(b);
        break;
    }

    ASSERT_EQ(real.used_bytes(), ref.used_bytes()) << "op " << op;
    ASSERT_EQ(real.pinned_bytes(), ref.pinned_bytes()) << "op " << op;
    ASSERT_EQ(real.num_blocks(), ref.num_blocks()) << "op " << op;
    ASSERT_EQ(real.evictions(), ref.evictions()) << "op " << op;

    const std::vector<BlockId> real_after = Sorted(real.ResidentBlocks());
    const std::vector<BlockId> ref_after = Sorted(ref.ResidentBlocks());
    ASSERT_EQ(real_after, ref_after) << "op " << op;
    for (BlockId probe : real_after) {
      ASSERT_EQ(real.IsPinned(probe), ref.IsPinned(probe))
          << "op " << op << " block " << probe;
    }

    // When the op evicted, both stores must have dropped the same victims
    // in the same quantity — with identical resident sets before and
    // after, equal departures pin down the victim choice exactly.
    const std::uint64_t real_evicted = real.evictions() - real_evictions_before;
    ASSERT_EQ(real_evicted, ref.evictions() - ref_evictions_before)
        << "op " << op;
    const std::vector<BlockId> departed = Departed(before, real_after);
    if (real_evicted > 0) {
      ASSERT_GE(departed.size(), real_evicted) << "op " << op;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomSchedules, StorePropertyTest,
    ::testing::Values(StressCase{"lru", 101}, StressCase{"lru", 102},
                      StressCase{"lru", 103}, StressCase{"lru", 104},
                      StressCase{"lfu", 201}, StressCase{"lfu", 202},
                      StressCase{"lfu", 203}, StressCase{"lfu", 204}),
    [](const ::testing::TestParamInfo<StressCase>& info) {
      return info.param.policy + "_" + std::to_string(info.param.seed);
    });

// Deterministic LFU tie-break check: victims must follow (freq, seq) order
// where seq is reassigned on every access — i.e. among lowest-frequency
// blocks, the least recently *arrived-at-that-frequency* goes first. This
// nails the exact semantics the frequency buckets must reproduce.
TEST(StorePropertyTest, LfuTieBreakMatchesReferenceSequence) {
  BlockStore real(4, EvictionKind::kLfu);
  ReferenceBlockStore ref(4, MakeEvictionPolicy("lfu"));
  for (BlockId b = 0; b < 4; ++b) {
    ASSERT_TRUE(real.Insert(b, 1));
    ASSERT_TRUE(ref.Insert(b, 1));
  }
  // freq: 0 -> 3, 1 -> 2, 2 -> 2, 3 -> 1; within freq 2, block 2 touched
  // after block 1.
  for (int i = 0; i < 2; ++i) {
    real.Access(0);
    ref.Access(0);
  }
  real.Access(1);
  ref.Access(1);
  real.Access(2);
  ref.Access(2);
  // Evictions proceed 3 (freq 1), then 1 before 2 (freq 2, older seq),
  // then 0.
  for (BlockId incoming = 100; incoming < 104; ++incoming) {
    ASSERT_TRUE(real.Insert(incoming, 1));
    ASSERT_TRUE(ref.Insert(incoming, 1));
    ASSERT_EQ(Sorted(real.ResidentBlocks()), Sorted(ref.ResidentBlocks()))
        << "incoming " << incoming;
  }
}

}  // namespace
}  // namespace opus::cache
