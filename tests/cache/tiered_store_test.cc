#include "cache/tiered_store.h"

#include <gtest/gtest.h>

namespace opus::cache {
namespace {

TieredStore Make(std::uint64_t mem, std::uint64_t ssd,
                 bool promote = true) {
  TieredStoreConfig cfg;
  cfg.memory_capacity_bytes = mem;
  cfg.ssd_capacity_bytes = ssd;
  cfg.promote_on_access = promote;
  return TieredStore(cfg);
}

TEST(TieredStoreTest, InsertLandsInMemory) {
  auto s = Make(100, 100);
  EXPECT_TRUE(s.Insert(1, 40));
  EXPECT_EQ(s.Locate(1), Tier::kMemory);
  EXPECT_EQ(s.memory_used(), 40u);
  EXPECT_EQ(s.ssd_used(), 0u);
}

TEST(TieredStoreTest, EvictionDemotesToSsd) {
  auto s = Make(100, 100);
  s.Insert(1, 60);
  s.Insert(2, 60);  // 1 demoted
  EXPECT_EQ(s.Locate(1), Tier::kSsd);
  EXPECT_EQ(s.Locate(2), Tier::kMemory);
  EXPECT_EQ(s.stats().demotions, 1u);
}

TEST(TieredStoreTest, SsdOverflowEvictsForGood) {
  auto s = Make(100, 60);
  s.Insert(1, 60);
  s.Insert(2, 60);  // 1 -> SSD (fits exactly)
  s.Insert(3, 60);  // 2 -> SSD, 1 evicted from SSD
  EXPECT_EQ(s.Locate(1), Tier::kNone);
  EXPECT_EQ(s.Locate(2), Tier::kSsd);
  EXPECT_EQ(s.Locate(3), Tier::kMemory);
  EXPECT_GE(s.stats().ssd_evictions, 1u);
}

TEST(TieredStoreTest, AccessPromotesFromSsd) {
  auto s = Make(100, 100);
  s.Insert(1, 60);
  s.Insert(2, 60);  // 1 on SSD
  EXPECT_EQ(s.Access(1), Tier::kSsd);  // reports where it was found
  EXPECT_EQ(s.Locate(1), Tier::kMemory);  // promoted
  EXPECT_EQ(s.Locate(2), Tier::kSsd);     // demoted to make room
  EXPECT_EQ(s.stats().promotions, 1u);
}

TEST(TieredStoreTest, NoPromotionWhenDisabled) {
  auto s = Make(100, 100, /*promote=*/false);
  s.Insert(1, 60);
  s.Insert(2, 60);
  EXPECT_EQ(s.Access(1), Tier::kSsd);
  EXPECT_EQ(s.Locate(1), Tier::kSsd);
  EXPECT_EQ(s.stats().promotions, 0u);
}

TEST(TieredStoreTest, MissReturnsNone) {
  auto s = Make(100, 100);
  EXPECT_EQ(s.Access(42), Tier::kNone);
}

TEST(TieredStoreTest, PinnedBlocksNeverDemoted) {
  auto s = Make(100, 100);
  s.Insert(1, 60);
  EXPECT_TRUE(s.Pin(1));
  s.Insert(2, 40);
  // Inserting 3 would need to demote; only 2 is a candidate.
  EXPECT_TRUE(s.Insert(3, 40));
  EXPECT_EQ(s.Locate(1), Tier::kMemory);
  EXPECT_EQ(s.Locate(2), Tier::kSsd);
}

TEST(TieredStoreTest, InsertFailsWhenAllPinned) {
  auto s = Make(100, 100);
  s.Insert(1, 100);
  s.Pin(1);
  EXPECT_FALSE(s.Insert(2, 50));
}

TEST(TieredStoreTest, PinPromotesFromSsd) {
  auto s = Make(100, 100);
  s.Insert(1, 60);
  s.Insert(2, 60);  // 1 -> SSD
  EXPECT_TRUE(s.Pin(1));
  EXPECT_EQ(s.Locate(1), Tier::kMemory);
}

TEST(TieredStoreTest, UnpinAllowsDemotionAgain) {
  auto s = Make(100, 100);
  s.Insert(1, 60);
  s.Pin(1);
  s.Unpin(1);
  s.Insert(2, 60);
  EXPECT_EQ(s.Locate(1), Tier::kSsd);
}

TEST(TieredStoreTest, EraseFromEitherTier) {
  auto s = Make(100, 100);
  s.Insert(1, 60);
  s.Insert(2, 60);  // 1 -> SSD
  s.Erase(1);
  s.Erase(2);
  EXPECT_EQ(s.Locate(1), Tier::kNone);
  EXPECT_EQ(s.Locate(2), Tier::kNone);
  EXPECT_EQ(s.memory_used(), 0u);
  EXPECT_EQ(s.ssd_used(), 0u);
}

TEST(TieredStoreTest, OversizedBlockRejected) {
  auto s = Make(100, 1000);
  EXPECT_FALSE(s.Insert(1, 101));
}

TEST(TieredStoreTest, DuplicateInsertNoop) {
  auto s = Make(100, 100);
  s.Insert(1, 60);
  EXPECT_TRUE(s.Insert(1, 60));  // memory-resident: true, nothing moves
  EXPECT_EQ(s.memory_used(), 60u);
  EXPECT_EQ(s.ssd_used(), 0u);
}

TEST(TieredStoreTest, InsertPromotesSsdResident) {
  // Regression: Insert used to report success for a block that was only on
  // SSD, leaving it on the slow tier. It must land on (or be promoted to)
  // memory for the insert to succeed.
  auto s = Make(100, 100);
  s.Insert(1, 60);
  s.Insert(2, 60);  // 1 -> SSD
  ASSERT_EQ(s.Locate(1), Tier::kSsd);
  EXPECT_TRUE(s.Insert(1, 60));  // re-insert promotes (2 is demotable)
  EXPECT_EQ(s.Locate(1), Tier::kMemory);
  EXPECT_EQ(s.Locate(2), Tier::kSsd);
  EXPECT_EQ(s.memory_used(), 60u);
  EXPECT_EQ(s.ssd_used(), 60u);
}

TEST(TieredStoreTest, InsertOfSsdResidentFailsWhenMemoryIsPinned) {
  auto s = Make(100, 100);
  s.Insert(1, 60);
  s.Insert(2, 60);  // 1 -> SSD
  s.Pin(2);
  // Memory is held by a pinned block, so promotion cannot make room; the
  // insert must report failure rather than claim a fast-tier hit.
  EXPECT_FALSE(s.Insert(1, 60));
  EXPECT_NE(s.Locate(1), Tier::kMemory);
}

TEST(TieredStoreTest, PromoteFailureCannotOverflowSsd) {
  auto s = Make(100, 100);
  s.Insert(1, 60);
  s.Insert(2, 40);
  s.Insert(3, 80);  // demotes 1 and 2 -> SSD is exactly full (100)
  ASSERT_TRUE(s.Pin(3));
  s.Insert(4, 20);  // memory: 3 (80, pinned) + 4 (20)
  ASSERT_EQ(s.Locate(2), Tier::kSsd);
  // Promoting 2 frees its SSD room, but the demotion cascade (4 -> SSD)
  // consumes part of it before the promotion fails on the pinned 3. The
  // failed promote must re-reserve SSD room before re-inserting 2;
  // pre-fix this pushed ssd_used past capacity (80 + 40 = 120 > 100).
  EXPECT_EQ(s.Access(2), Tier::kSsd);
  EXPECT_LE(s.ssd_used(), 100u);
  EXPECT_EQ(s.Locate(2), Tier::kSsd);  // re-inserted after making room
  EXPECT_EQ(s.Locate(1), Tier::kNone);  // evicted to make that room
  EXPECT_GE(s.stats().ssd_evictions, 1u);
  EXPECT_EQ(s.Locate(3), Tier::kMemory);
}

TEST(TieredStoreTest, PromoteFailureReturnsBlockToSsdIntact) {
  // When no demotion cascade ran (memory held only pinned blocks), the
  // freed SSD room is still available and the block goes back unchanged.
  auto s = Make(100, 100);
  s.Insert(1, 60);
  s.Insert(2, 60);  // 1 -> SSD
  ASSERT_TRUE(s.Pin(2));
  EXPECT_EQ(s.Access(1), Tier::kSsd);  // promotion fails: 2 is pinned
  EXPECT_EQ(s.Locate(1), Tier::kSsd);
  EXPECT_EQ(s.ssd_used(), 60u);
}

TEST(TieredStoreTest, ZeroSsdActsLikeFlatStore) {
  auto s = Make(100, 0);
  s.Insert(1, 60);
  s.Insert(2, 60);
  EXPECT_EQ(s.Locate(1), Tier::kNone);  // demotion had nowhere to go
  EXPECT_EQ(s.Locate(2), Tier::kMemory);
}

}  // namespace
}  // namespace opus::cache
