#include "cache/journal.h"

#include <gtest/gtest.h>

namespace opus::cache {
namespace {

Catalog SmallCatalog() {
  Catalog c(1 * kMiB);
  c.Register("a", 4 * kMiB);
  c.Register("b", 4 * kMiB);
  return c;
}

ClusterConfig SmallConfig() {
  ClusterConfig cfg;
  cfg.num_workers = 2;
  cfg.num_users = 2;
  cfg.cache_capacity_bytes = 8 * kMiB;
  return cfg;
}

JournalEntry MakeEntry(std::uint64_t epoch) {
  JournalEntry e;
  e.epoch = epoch;
  e.file_fractions = {1.0, 0.5};
  e.unblocked_share = Matrix(2, 2, 1.0);
  e.unblocked_share(1, 0) = 0.25;
  return e;
}

TEST(JournalTest, AppendAndLatest) {
  Journal j;
  EXPECT_TRUE(j.empty());
  j.Append(MakeEntry(1));
  j.Append(MakeEntry(2));
  EXPECT_EQ(j.size(), 2u);
  EXPECT_EQ(j.latest().epoch, 2u);
  EXPECT_EQ(j.entry(0).epoch, 1u);
}

TEST(JournalTest, SerializeRoundTrip) {
  Journal j;
  j.Append(MakeEntry(1));
  j.Append(MakeEntry(7));
  const auto restored = Journal::Deserialize(j.Serialize());
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->size(), 2u);
  EXPECT_EQ(restored->latest().epoch, 7u);
  EXPECT_EQ(restored->latest().file_fractions,
            (std::vector<double>{1.0, 0.5}));
  EXPECT_EQ(restored->latest().unblocked_share(1, 0), 0.25);
  EXPECT_EQ(restored->latest().unblocked_share(0, 1), 1.0);
}

TEST(JournalTest, RoundTripWithoutAccessModel) {
  Journal j;
  JournalEntry e;
  e.epoch = 3;
  e.file_fractions = {0.25, 0.75};
  j.Append(std::move(e));
  const auto restored = Journal::Deserialize(j.Serialize());
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(restored->latest().unblocked_share.empty());
}

TEST(JournalTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Journal::Deserialize("not,a,journal").has_value());
  EXPECT_FALSE(Journal::Deserialize("epoch,1,2,0\nalloc,0.5").has_value());
  // Non-increasing epochs.
  Journal j;
  j.Append(MakeEntry(5));
  std::string text = j.Serialize() + j.Serialize();
  EXPECT_FALSE(Journal::Deserialize(text).has_value());
}

TEST(JournalTest, DeserializeRejectsCorruptedNumericFields) {
  // Baseline: a well-formed journal round-trips.
  Journal j;
  j.Append(MakeEntry(3));
  const std::string good = j.Serialize();
  ASSERT_TRUE(Journal::Deserialize(good).has_value());

  // A non-numeric epoch must be rejected, not parsed as 0.
  EXPECT_FALSE(
      Journal::Deserialize("epoch,garbage,1,0\nalloc,0.5").has_value());
  // Trailing junk after the number.
  EXPECT_FALSE(Journal::Deserialize("epoch,3x,1,0\nalloc,0.5").has_value());
  // Negative counts are not valid unsigned fields.
  EXPECT_FALSE(Journal::Deserialize("epoch,-1,1,0\nalloc,0.5").has_value());
  // Overflowing epoch.
  EXPECT_FALSE(
      Journal::Deserialize("epoch,99999999999999999999999999,1,0\nalloc,0.5")
          .has_value());
  // Corrupted file count.
  EXPECT_FALSE(
      Journal::Deserialize("epoch,1,one,0\nalloc,0.5").has_value());
  // Non-numeric allocation fraction.
  EXPECT_FALSE(
      Journal::Deserialize("epoch,1,2,0\nalloc,0.5,abc").has_value());
  // Non-finite allocation fraction.
  EXPECT_FALSE(
      Journal::Deserialize("epoch,1,2,0\nalloc,0.5,inf").has_value());
  EXPECT_FALSE(
      Journal::Deserialize("epoch,1,2,0\nalloc,0.5,nan").has_value());
  // Corrupted access-matrix cell.
  EXPECT_FALSE(
      Journal::Deserialize("epoch,1,1,1\nalloc,0.5\naccess,0.2.3")
          .has_value());
  // A user count far beyond the remaining rows must be rejected without
  // attempting the matrix allocation.
  EXPECT_FALSE(
      Journal::Deserialize("epoch,1,1,18446744073709551615\nalloc,0.5")
          .has_value());

  // The same journal text with one digit corrupted into a letter.
  std::string corrupted = good;
  const auto pos = corrupted.find("epoch,3");
  ASSERT_NE(pos, std::string::npos);
  corrupted[pos + 6] = 'q';
  EXPECT_FALSE(Journal::Deserialize(corrupted).has_value());
}

TEST(JournalTest, EmptyTextIsEmptyJournal) {
  const auto restored = Journal::Deserialize("");
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(restored->empty());
}

TEST(JournalTest, ReplayRestoresClusterState) {
  CacheCluster original(SmallConfig(), SmallCatalog());
  original.ApplyAllocation({1.0, 0.5});
  Matrix unblocked(2, 2, 1.0);
  unblocked(1, 0) = 0.25;
  original.SetAccessModel(unblocked);

  Journal j;
  JournalEntry e;
  e.epoch = 1;
  e.file_fractions = {1.0, 0.5};
  e.unblocked_share = unblocked;
  j.Append(std::move(e));

  // A master restart: a brand-new cluster object, replayed from the log.
  CacheCluster restored(SmallConfig(), SmallCatalog());
  j.ReplayLatest(&restored);
  for (FileId f = 0; f < 2; ++f) {
    EXPECT_EQ(restored.ResidentFraction(f), original.ResidentFraction(f));
  }
  const auto a = original.Read(1, 0);
  const auto b = restored.Read(1, 0);
  EXPECT_EQ(a.effective_hit, b.effective_hit);
  EXPECT_EQ(a.blocking_probability, b.blocking_probability);
}

TEST(JournalTest, ReplayEmptyIsNoop) {
  CacheCluster cluster(SmallConfig(), SmallCatalog());
  Journal j;
  j.ReplayLatest(&cluster);
  EXPECT_FALSE(cluster.managed());
}

TEST(JournalTest, CompactKeepsTail) {
  Journal j;
  for (std::uint64_t e = 1; e <= 5; ++e) j.Append(MakeEntry(e));
  j.Compact(2);
  EXPECT_EQ(j.size(), 2u);
  EXPECT_EQ(j.entry(0).epoch, 4u);
  EXPECT_EQ(j.latest().epoch, 5u);
}

}  // namespace
}  // namespace opus::cache
