#include "cache/eviction.h"

#include <gtest/gtest.h>

namespace opus::cache {
namespace {

TEST(LruPolicyTest, VictimIsLeastRecent) {
  LruPolicy p;
  p.OnInsert(1);
  p.OnInsert(2);
  p.OnInsert(3);
  EXPECT_EQ(p.Victim().value(), 1u);
  p.OnAccess(1);  // 1 becomes most recent
  EXPECT_EQ(p.Victim().value(), 2u);
}

TEST(LruPolicyTest, RemoveUpdatesVictim) {
  LruPolicy p;
  p.OnInsert(1);
  p.OnInsert(2);
  p.OnRemove(1);
  EXPECT_EQ(p.Victim().value(), 2u);
  p.OnRemove(2);
  EXPECT_FALSE(p.Victim().has_value());
}

TEST(LruPolicyTest, AccessUntrackedIsNoop) {
  LruPolicy p;
  p.OnInsert(1);
  p.OnAccess(99);
  p.OnRemove(99);
  EXPECT_EQ(p.Victim().value(), 1u);
  EXPECT_EQ(p.size(), 1u);
}

TEST(LfuPolicyTest, VictimIsLeastFrequent) {
  LfuPolicy p;
  p.OnInsert(1);
  p.OnInsert(2);
  p.OnAccess(1);
  p.OnAccess(1);
  p.OnAccess(2);
  // 1 has freq 3, 2 has freq 2.
  EXPECT_EQ(p.Victim().value(), 2u);
}

TEST(LfuPolicyTest, TieBreaksFifoAmongEqualFrequencies) {
  LfuPolicy p;
  p.OnInsert(10);
  p.OnInsert(20);
  EXPECT_EQ(p.Victim().value(), 10u);  // inserted first, same freq
}

TEST(LfuPolicyTest, RemoveForgetsFrequency) {
  LfuPolicy p;
  p.OnInsert(1);
  p.OnAccess(1);
  p.OnAccess(1);
  p.OnRemove(1);
  p.OnInsert(1);  // fresh insert starts at freq 1 again
  p.OnInsert(2);
  p.OnAccess(2);
  EXPECT_EQ(p.Victim().value(), 1u);
}

TEST(EvictionFactoryTest, MakesBothPolicies) {
  EXPECT_EQ(MakeEvictionPolicy("lru")->name(), "lru");
  EXPECT_EQ(MakeEvictionPolicy("lfu")->name(), "lfu");
}

}  // namespace
}  // namespace opus::cache
