#include "cache/client.h"

#include <gtest/gtest.h>

namespace opus::cache {
namespace {

Catalog TwoFileCatalog() {
  Catalog c(1 * kMiB);
  c.Register("warm", 4 * kMiB);
  c.Register("cold", 4 * kMiB);
  return c;
}

ClusterConfig Config() {
  ClusterConfig cfg;
  cfg.num_workers = 2;
  cfg.num_users = 2;
  cfg.cache_capacity_bytes = 8 * kMiB;
  return cfg;
}

TEST(ClientSessionTest, TracksReadsAndBytes) {
  CacheCluster cluster(Config(), TwoFileCatalog());
  ClientSession session(&cluster, 0, "etl-job");
  session.Read(FileId{0});  // cold miss
  session.Read(FileId{0});  // hit
  EXPECT_EQ(session.stats().reads, 2u);
  EXPECT_EQ(session.stats().bytes_from_disk, 4 * kMiB);
  EXPECT_EQ(session.stats().bytes_from_memory, 4 * kMiB);
  EXPECT_NEAR(session.stats().EffectiveHitRatio(), 0.5, 1e-12);
  EXPECT_EQ(session.name(), "etl-job");
}

TEST(ClientSessionTest, ReadByName) {
  CacheCluster cluster(Config(), TwoFileCatalog());
  ClientSession session(&cluster, 1);
  const auto r = session.Read("warm");
  EXPECT_EQ(r.bytes_total, 4 * kMiB);
}

TEST(ClientSessionTest, LatencyAggregates) {
  CacheCluster cluster(Config(), TwoFileCatalog());
  ClientSession session(&cluster, 0);
  const auto miss = session.Read(FileId{1});
  const auto hit = session.Read(FileId{1});
  EXPECT_GT(miss.latency_sec, hit.latency_sec);
  EXPECT_NEAR(session.stats().max_latency_sec, miss.latency_sec, 1e-12);
  EXPECT_NEAR(session.stats().total_latency_sec,
              miss.latency_sec + hit.latency_sec, 1e-12);
  EXPECT_GT(session.stats().MeanLatencySec(), 0.0);
}

TEST(ClientSessionTest, SessionsShareTheCluster) {
  CacheCluster cluster(Config(), TwoFileCatalog());
  ClientSession a(&cluster, 0), b(&cluster, 1);
  a.Read(FileId{0});            // a pays the cold miss
  const auto r = b.Read(FileId{0});  // b hits the shared copy
  EXPECT_EQ(r.bytes_from_disk, 0u);
  EXPECT_EQ(b.stats().bytes_from_memory, 4 * kMiB);
}

TEST(ClientSessionTest, ResetStats) {
  CacheCluster cluster(Config(), TwoFileCatalog());
  ClientSession session(&cluster, 0);
  session.Read(FileId{0});
  session.ResetStats();
  EXPECT_EQ(session.stats().reads, 0u);
  EXPECT_EQ(session.stats().EffectiveHitRatio(), 0.0);
}

}  // namespace
}  // namespace opus::cache
