// Model-based stress test: the BlockStore + LRU policy against a simple
// reference model under thousands of randomized operations. Any divergence
// in residency, byte accounting, or eviction order is a bug in the real
// implementation (the reference is deliberately naive).
#include <algorithm>
#include <list>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "cache/block_store.h"
#include "common/rng.h"

namespace opus::cache {
namespace {

// Naive reference LRU cache with pinning.
class ReferenceLru {
 public:
  explicit ReferenceLru(std::uint64_t capacity) : capacity_(capacity) {}

  bool Insert(BlockId b, std::uint64_t bytes) {
    if (blocks_.count(b)) {
      // Re-insert refreshes recency (same contract as BlockStore::Insert;
      // pinned blocks sit outside the order).
      if (!pinned_.count(b)) {
        order_.remove(b);
        order_.push_back(b);
      }
      return true;
    }
    if (bytes > capacity_) return false;
    while (used_ + bytes > capacity_) {
      // Evict the least-recent unpinned block.
      auto victim = order_.end();
      for (auto it = order_.begin(); it != order_.end(); ++it) {
        if (!pinned_.count(*it)) {
          victim = it;
          break;
        }
      }
      if (victim == order_.end()) return false;
      used_ -= blocks_[*victim];
      blocks_.erase(*victim);
      order_.erase(victim);
    }
    blocks_[b] = bytes;
    order_.push_back(b);
    used_ += bytes;
    return true;
  }

  bool Access(BlockId b) {
    if (!blocks_.count(b)) return false;
    if (!pinned_.count(b)) {
      order_.remove(b);
      order_.push_back(b);
    }
    return true;
  }

  void Erase(BlockId b) {
    if (!blocks_.count(b)) return;
    used_ -= blocks_[b];
    blocks_.erase(b);
    order_.remove(b);
    pinned_.erase(b);
  }

  bool Pin(BlockId b) {
    if (!blocks_.count(b)) return false;
    if (pinned_.insert(b).second) order_.remove(b);
    return true;
  }

  void Unpin(BlockId b) {
    if (pinned_.erase(b) && blocks_.count(b)) order_.push_back(b);
  }

  bool Contains(BlockId b) const { return blocks_.count(b) != 0; }
  std::uint64_t used() const { return used_; }

 private:
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::unordered_map<BlockId, std::uint64_t> blocks_;
  std::list<BlockId> order_;  // front = least recent among unpinned
  std::unordered_set<BlockId> pinned_;
};

class EvictionStress : public ::testing::TestWithParam<int> {};

TEST_P(EvictionStress, MatchesReferenceModel) {
  Rng rng(9900 + static_cast<std::uint64_t>(GetParam()));
  const std::uint64_t capacity = 50 + rng.NextBounded(200);
  BlockStore real(capacity, EvictionKind::kLru);
  ReferenceLru ref(capacity);

  const std::size_t universe = 24;  // block ids 0..23
  for (int op = 0; op < 3000; ++op) {
    const BlockId b = rng.NextBounded(universe);
    switch (rng.NextBounded(5)) {
      case 0: {  // insert (sizes deterministic per id so they always agree)
        const std::uint64_t bytes = 5 + (b * 7) % 40;
        EXPECT_EQ(real.Insert(b, bytes), ref.Insert(b, bytes)) << "op " << op;
        break;
      }
      case 1:
        EXPECT_EQ(real.Access(b), ref.Access(b)) << "op " << op;
        break;
      case 2:
        real.Erase(b);
        ref.Erase(b);
        break;
      case 3:
        EXPECT_EQ(real.Pin(b), ref.Pin(b)) << "op " << op;
        break;
      default:
        real.Unpin(b);
        ref.Unpin(b);
        break;
    }
    EXPECT_EQ(real.used_bytes(), ref.used()) << "op " << op;
    // Residency agrees across the whole universe.
    for (BlockId probe = 0; probe < universe; ++probe) {
      ASSERT_EQ(real.Contains(probe), ref.Contains(probe))
          << "op " << op << " block " << probe;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSchedules, EvictionStress,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace opus::cache
