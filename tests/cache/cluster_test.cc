#include "cache/cluster.h"

#include <gtest/gtest.h>

#include "cache/file_meta.h"

namespace opus::cache {
namespace {

Catalog SmallCatalog() {
  Catalog c(/*block_size=*/1 * kMiB);
  c.Register("a", 4 * kMiB);
  c.Register("b", 4 * kMiB);
  c.Register("c", 3 * kMiB + 512 * kKiB);  // short last block
  return c;
}

ClusterConfig SmallConfig() {
  ClusterConfig cfg;
  cfg.num_workers = 3;
  cfg.cache_capacity_bytes = 9 * kMiB;
  cfg.num_users = 2;
  return cfg;
}

TEST(CatalogTest, BlockMath) {
  const auto c = SmallCatalog();
  const auto& f = c.Get(2);
  EXPECT_EQ(f.num_blocks, 4u);
  EXPECT_EQ(f.BlockBytes(0), 1 * kMiB);
  EXPECT_EQ(f.BlockBytes(3), 512 * kKiB);
  EXPECT_EQ(c.TotalBytes(), 11 * kMiB + 512 * kKiB);
  EXPECT_EQ(c.Find("b"), 1u);
  EXPECT_EQ(c.Find("zzz"), kInvalidFile);
}

TEST(ClusterTest, ColdReadMissesThenHits) {
  CacheCluster cluster(SmallConfig(), SmallCatalog());
  const auto miss = cluster.Read(0, 0);
  EXPECT_EQ(miss.bytes_from_memory, 0u);
  EXPECT_EQ(miss.bytes_from_disk, 4 * kMiB);
  EXPECT_EQ(miss.effective_hit, 0.0);
  // Cache-on-read: second access hits fully.
  const auto hit = cluster.Read(0, 0);
  EXPECT_EQ(hit.bytes_from_disk, 0u);
  EXPECT_NEAR(hit.effective_hit, 1.0, 1e-12);
  EXPECT_LT(hit.latency_sec, miss.latency_sec);
}

TEST(ClusterTest, EvictionUnderPressure) {
  CacheCluster cluster(SmallConfig(), SmallCatalog());
  cluster.Read(0, 0);
  cluster.Read(0, 1);
  cluster.Read(0, 2);  // total demand 11.5 MiB > 9 MiB capacity
  EXPECT_GT(cluster.total_evictions(), 0u);
  EXPECT_LE(cluster.UsedBytes(), 9 * kMiB);
}

TEST(ClusterTest, ManagedAllocationPinsPrefix) {
  CacheCluster cluster(SmallConfig(), SmallCatalog());
  cluster.ApplyAllocation({1.0, 0.5, 0.0});
  EXPECT_TRUE(cluster.managed());
  EXPECT_NEAR(cluster.ResidentFraction(0), 1.0, 1e-12);
  EXPECT_NEAR(cluster.ResidentFraction(1), 0.5, 1e-12);
  EXPECT_NEAR(cluster.ResidentFraction(2), 0.0, 1e-12);
}

TEST(ClusterTest, ManagedReadsDoNotMutatePlacement) {
  CacheCluster cluster(SmallConfig(), SmallCatalog());
  cluster.ApplyAllocation({1.0, 0.0, 0.0});
  cluster.Read(0, 2);  // miss entirely
  EXPECT_NEAR(cluster.ResidentFraction(2), 0.0, 1e-12);
  const auto r = cluster.Read(0, 2);
  EXPECT_EQ(r.bytes_from_memory, 0u);
}

TEST(ClusterTest, ManagedPartialFileRead) {
  CacheCluster cluster(SmallConfig(), SmallCatalog());
  cluster.ApplyAllocation({0.5, 0.0, 0.0});
  const auto r = cluster.Read(0, 0);
  EXPECT_EQ(r.bytes_from_memory, 2 * kMiB);
  EXPECT_EQ(r.bytes_from_disk, 2 * kMiB);
  EXPECT_NEAR(r.memory_fraction, 0.5, 1e-12);
  EXPECT_NEAR(r.effective_hit, 0.5, 1e-12);
}

TEST(ClusterTest, AccessModelBlocksUsers) {
  CacheCluster cluster(SmallConfig(), SmallCatalog());
  cluster.ApplyAllocation({1.0, 0.0, 0.0});
  Matrix unblocked(2, 3, 1.0);
  unblocked(1, 0) = 0.25;  // user 1 is blocked 75% on file 0
  cluster.SetAccessModel(unblocked);

  const auto r0 = cluster.Read(0, 0);
  EXPECT_NEAR(r0.effective_hit, 1.0, 1e-12);
  EXPECT_NEAR(r0.blocking_probability, 0.0, 1e-12);

  const auto r1 = cluster.Read(1, 0);
  EXPECT_NEAR(r1.effective_hit, 0.25, 1e-12);
  EXPECT_NEAR(r1.blocking_probability, 0.75, 1e-12);
  // Blocking injects the expected disk delay on top of the memory read.
  EXPECT_GT(r1.latency_sec, r0.latency_sec);
}

TEST(ClusterTest, BlockingDelayMatchesExpectedFormula) {
  auto config = SmallConfig();
  CacheCluster cluster(config, SmallCatalog());
  cluster.ApplyAllocation({1.0, 0.0, 0.0});
  Matrix unblocked(2, 3, 1.0);
  unblocked(0, 0) = 0.5;
  cluster.SetAccessModel(unblocked);
  const auto r = cluster.Read(0, 0);
  const double t_mem = static_cast<double>(4 * kMiB) /
                       config.memory_bandwidth_bytes_per_sec;
  const double t_disk = cluster.under_store().ReadLatency(4 * kMiB);
  EXPECT_NEAR(r.latency_sec, t_mem + 0.5 * t_disk, 1e-12);
}

TEST(ClusterTest, ReallocationMovesPins) {
  CacheCluster cluster(SmallConfig(), SmallCatalog());
  cluster.ApplyAllocation({1.0, 0.5, 0.0});
  cluster.ApplyAllocation({0.0, 0.5, 1.0});
  EXPECT_NEAR(cluster.ResidentFraction(0), 0.0, 1e-12);
  EXPECT_NEAR(cluster.ResidentFraction(1), 0.5, 1e-12);
  EXPECT_NEAR(cluster.ResidentFraction(2), 1.0, 1e-12);
}

TEST(ClusterTest, ControlPlaneStatsAccumulate) {
  CacheCluster cluster(SmallConfig(), SmallCatalog());
  cluster.ApplyAllocation({1.0, 0.0, 0.0});
  const auto& stats = cluster.control_plane_stats();
  EXPECT_EQ(stats.cache_updates, 3u);  // one per worker
  EXPECT_EQ(stats.blocks_pinned, 4u);
  EXPECT_EQ(stats.blocks_loaded, 4u);
}

TEST(ClusterTest, DeltaReallocationGrowsAndShrinksExactly) {
  CacheCluster cluster(SmallConfig(), SmallCatalog());
  // Epoch 1 is a full reconciliation pass; epochs 2+ are deltas over the
  // per-file pinned prefixes. Walk the allocation up and down and require
  // the resident state to track it exactly at every step.
  cluster.ApplyAllocation({0.5, 0.25, 0.0});
  EXPECT_NEAR(cluster.ResidentFraction(0), 0.5, 1e-12);
  EXPECT_NEAR(cluster.ResidentFraction(1), 0.25, 1e-12);
  cluster.ApplyAllocation({1.0, 0.5, 0.0});  // delta: grow both
  EXPECT_NEAR(cluster.ResidentFraction(0), 1.0, 1e-12);
  EXPECT_NEAR(cluster.ResidentFraction(1), 0.5, 1e-12);
  cluster.ApplyAllocation({0.25, 0.0, 0.5});  // delta: shrink + new file
  EXPECT_NEAR(cluster.ResidentFraction(0), 0.25, 1e-12);
  EXPECT_NEAR(cluster.ResidentFraction(1), 0.0, 1e-12);
  // File 2 is 3.5 MiB in 4 blocks; a 0.5 allocation pins 2 whole blocks,
  // and ResidentFraction weighs by bytes: 2 MiB / 3.5 MiB.
  EXPECT_NEAR(cluster.ResidentFraction(2), 2.0 / 3.5, 1e-12);
  // Reads see exactly the pinned prefix, so the delta bookkeeping and the
  // store state agree.
  const auto r = cluster.Read(0, 0);
  EXPECT_EQ(r.bytes_from_memory, 1 * kMiB);
  EXPECT_EQ(cluster.UsedBytes(), 3 * kMiB);
}

TEST(ClusterTest, DeltaReallocationSkipsUntouchedFiles) {
  CacheCluster cluster(SmallConfig(), SmallCatalog());
  cluster.ApplyAllocation({1.0, 0.0, 0.0});
  const auto& stats = cluster.control_plane_stats();
  const std::uint64_t pinned_after_full = stats.blocks_pinned;
  const std::uint64_t unpinned_after_full = stats.blocks_unpinned;
  EXPECT_EQ(pinned_after_full, 4u);
  // An identical allocation is a pure no-op delta: no new pins, no loads,
  // no unpins — only the per-worker update messages themselves.
  cluster.ApplyAllocation({1.0, 0.0, 0.0});
  EXPECT_EQ(stats.blocks_pinned, pinned_after_full);
  EXPECT_EQ(stats.blocks_loaded, 4u);
  EXPECT_EQ(stats.blocks_unpinned, unpinned_after_full);
  EXPECT_EQ(stats.cache_updates, 6u);  // still one message per worker
  EXPECT_NEAR(cluster.ResidentFraction(0), 1.0, 1e-12);
}

TEST(ClusterTest, UnmanagedTripForcesFullReconciliation) {
  CacheCluster cluster(SmallConfig(), SmallCatalog());
  cluster.ApplyAllocation({1.0, 0.0, 0.0});
  cluster.SetUnmanaged();
  // Cache-on-read scatters arbitrary blocks into the stores...
  cluster.Read(0, 2);
  cluster.Read(0, 1);
  EXPECT_GT(cluster.ResidentFraction(2), 0.0);
  // ...so the next allocation must reconcile against actual state, not
  // the stale prefix bookkeeping: file 2 leftovers are evicted, file 0 is
  // reloaded even though its old prefix claimed full residency.
  cluster.ApplyAllocation({1.0, 0.0, 0.0});
  EXPECT_NEAR(cluster.ResidentFraction(0), 1.0, 1e-12);
  EXPECT_NEAR(cluster.ResidentFraction(1), 0.0, 1e-12);
  EXPECT_NEAR(cluster.ResidentFraction(2), 0.0, 1e-12);
}

TEST(ClusterTest, OverCommitFailureFallsBackToFullPass) {
  // 3 workers x 3 MiB: a 4 MiB file cannot fully pin if placement lands
  // more than 3 blocks on one worker — and over-committed allocations
  // (sum > capacity) must fail pins, then recover once feasible again.
  auto config = SmallConfig();
  CacheCluster cluster(config, SmallCatalog());
  // Demand 11.5 MiB of pins against 9 MiB of cache: some loads/pins fail.
  cluster.ApplyAllocation({1.0, 1.0, 1.0});
  const double f0 = cluster.ResidentFraction(0);
  const double f1 = cluster.ResidentFraction(1);
  const double f2 = cluster.ResidentFraction(2);
  EXPECT_LT(f0 + f1 + f2, 3.0);
  // The failure marks the prefix bookkeeping dirty, so this feasible
  // allocation runs as a full pass and lands exactly.
  cluster.ApplyAllocation({1.0, 0.5, 0.0});
  EXPECT_NEAR(cluster.ResidentFraction(0), 1.0, 1e-12);
  EXPECT_NEAR(cluster.ResidentFraction(1), 0.5, 1e-12);
  EXPECT_NEAR(cluster.ResidentFraction(2), 0.0, 1e-12);
}

TEST(ClusterTest, SetUnmanagedRevertsToCacheOnRead) {
  CacheCluster cluster(SmallConfig(), SmallCatalog());
  cluster.ApplyAllocation({1.0, 0.0, 0.0});
  cluster.SetUnmanaged();
  EXPECT_FALSE(cluster.managed());
  cluster.Read(0, 2);
  EXPECT_GT(cluster.ResidentFraction(2), 0.0);
}

TEST(UnderStoreTest, LatencyModel) {
  UnderStoreConfig cfg;
  cfg.bandwidth_bytes_per_sec = 100e6;
  cfg.seek_latency_sec = 5e-3;
  UnderStore store(cfg);
  EXPECT_NEAR(store.ReadLatency(100'000'000), 1.005, 1e-9);
  EXPECT_NEAR(store.BlockingDelay(100'000'000, 0.5), 0.5025, 1e-9);
  EXPECT_NEAR(store.BlockingDelay(100'000'000, 2.0), 1.005, 1e-9);  // clamped
  store.Read(1000);
  EXPECT_EQ(store.bytes_read(), 1000u);
  EXPECT_EQ(store.reads(), 1u);
}

}  // namespace
}  // namespace opus::cache
