#include "cache/placement.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "cache/cluster.h"

namespace opus::cache {
namespace {

std::vector<BlockId> SampleBlocks(std::size_t n) {
  std::vector<BlockId> blocks;
  blocks.reserve(n);
  for (std::size_t f = 0; f < n / 16 + 1; ++f) {
    for (std::uint32_t idx = 0; idx < 16 && blocks.size() < n; ++idx) {
      blocks.push_back(MakeBlockId(static_cast<FileId>(f), idx));
    }
  }
  return blocks;
}

TEST(PlacementTest, ModuloIsDeterministicAndInRange) {
  for (BlockId b : SampleBlocks(200)) {
    const WorkerId w = ModuloPlace(b, 7);
    EXPECT_LT(w, 7u);
    EXPECT_EQ(w, ModuloPlace(b, 7));
  }
}

TEST(PlacementTest, RingIsDeterministicAndInRange) {
  const ConsistentHashRing ring(5);
  for (BlockId b : SampleBlocks(200)) {
    const WorkerId w = ring.Place(b);
    EXPECT_LT(w, 5u);
    EXPECT_EQ(w, ring.Place(b));
  }
}

TEST(PlacementTest, RingBalancesReasonably) {
  const ConsistentHashRing ring(5, /*virtual_nodes=*/128);
  const auto blocks = SampleBlocks(20000);
  std::vector<int> counts(5, 0);
  for (BlockId b : blocks) ++counts[ring.Place(b)];
  for (int c : counts) {
    // Each worker within 2x of fair share with 128 vnodes.
    EXPECT_GT(c, 2000);
    EXPECT_LT(c, 8000);
  }
}

TEST(PlacementTest, RingRemapIsMinimalOnRemoval) {
  const ConsistentHashRing ring(8, 128);
  const ConsistentHashRing smaller = ring.Without(3);
  const auto blocks = SampleBlocks(20000);
  std::size_t moved = 0;
  for (BlockId b : blocks) {
    const WorkerId before = ring.Place(b);
    const WorkerId after = smaller.Place(b);
    EXPECT_NE(after, 3u);  // removed worker owns nothing
    if (before != after) {
      ++moved;
      // Only blocks of the removed worker may move.
      EXPECT_EQ(before, 3u);
    }
  }
  // ~1/8 of blocks move (the removed worker's share), vs ~7/8 for modulo.
  EXPECT_LT(static_cast<double>(moved) / blocks.size(), 0.25);
  EXPECT_GT(moved, 0u);
}

TEST(PlacementTest, ModuloRemapIsNearTotalOnResize) {
  const auto blocks = SampleBlocks(20000);
  std::size_t moved = 0;
  for (BlockId b : blocks) {
    if (ModuloPlace(b, 8) != ModuloPlace(b, 7)) ++moved;
  }
  EXPECT_GT(static_cast<double>(moved) / blocks.size(), 0.7);
}

TEST(PlacementTest, ClusterAcceptsConsistentPlacement) {
  Catalog c(1 * kMiB);
  c.Register("a", 8 * kMiB);
  ClusterConfig cfg;
  cfg.num_workers = 4;
  cfg.num_users = 1;
  // Generous per-worker capacity: with only 8 blocks, ring skew can land
  // most of them on one worker.
  cfg.cache_capacity_bytes = 32 * kMiB;
  cfg.placement = "consistent";
  CacheCluster cluster(cfg, c);
  cluster.Read(0, 0);
  const auto r = cluster.Read(0, 0);
  EXPECT_NEAR(r.effective_hit, 1.0, 1e-12);
}

TEST(PlacementTest, ManagedModeWorksWithRing) {
  Catalog c(1 * kMiB);
  c.Register("a", 8 * kMiB);
  c.Register("b", 8 * kMiB);
  ClusterConfig cfg;
  cfg.num_workers = 4;
  cfg.num_users = 1;
  cfg.cache_capacity_bytes = 64 * kMiB;  // headroom for ring skew
  cfg.placement = "consistent";
  CacheCluster cluster(cfg, c);
  cluster.ApplyAllocation({1.0, 0.5});
  EXPECT_NEAR(cluster.ResidentFraction(0), 1.0, 1e-12);
  EXPECT_NEAR(cluster.ResidentFraction(1), 0.5, 1e-12);
}

}  // namespace
}  // namespace opus::cache
