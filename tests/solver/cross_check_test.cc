// Cross-validation of the two independent PF solvers: projected gradient
// (the production path) vs Frank-Wolfe. Agreement of two algorithmically
// unrelated methods on random instances is strong evidence both are
// solving Eq. (2) correctly.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "solver/frank_wolfe.h"
#include "solver/pf_solver.h"

namespace opus {
namespace {

Matrix RandomPrefs(Rng& rng, std::size_t n, std::size_t m) {
  Matrix prefs(n, m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double total = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      prefs(i, j) = rng.NextBernoulli(0.7) ? rng.NextDouble() : 0.0;
      total += prefs(i, j);
    }
    if (total <= 0.0) {
      prefs(i, rng.NextBounded(m)) = 1.0;
      total = 1.0;
    }
    for (std::size_t j = 0; j < m; ++j) prefs(i, j) /= total;
  }
  return prefs;
}

class CrossCheckSweep : public ::testing::TestWithParam<int> {};

TEST_P(CrossCheckSweep, SolversAgreeOnObjectiveAndUtilities) {
  Rng rng(8800 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 2 + rng.NextBounded(6);
  const std::size_t m = 3 + rng.NextBounded(10);
  const Matrix prefs = RandomPrefs(rng, n, m);
  const double capacity = rng.NextUniform(0.5, static_cast<double>(m) * 0.8);

  const auto pg = SolveProportionalFairness(prefs, capacity);
  const auto fw = SolveProportionalFairnessFw(prefs, capacity);

  ASSERT_TRUE(pg.converged);
  ASSERT_TRUE(fw.converged);
  // The FW gap bounds objective suboptimality by 2e-5; allocations may
  // differ on degenerate faces, but the (strictly concave in U) per-user
  // utilities must agree to ~sqrt(2 * gap) ~ 1%.
  EXPECT_NEAR(pg.objective, fw.objective, 3e-5);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(pg.utilities[i], fw.utilities[i], 1e-2)
        << "user " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, CrossCheckSweep,
                         ::testing::Range(0, 25));

TEST(CrossCheckTest, SizedInstancesAgree) {
  Rng rng(99);
  for (int t = 0; t < 10; ++t) {
    const std::size_t n = 2 + rng.NextBounded(4);
    const std::size_t m = 3 + rng.NextBounded(6);
    const Matrix prefs = RandomPrefs(rng, n, m);
    std::vector<double> sizes(m);
    double total_size = 0.0;
    for (double& s : sizes) {
      s = rng.NextUniform(0.3, 2.5);
      total_size += s;
    }
    const double capacity = rng.NextUniform(0.3, 0.8) * total_size;

    const auto pg =
        SolveProportionalFairness(prefs, capacity, {}, {}, {}, sizes);
    const auto fw = SolveProportionalFairnessFw(prefs, capacity, {}, sizes);
    ASSERT_TRUE(pg.converged);
    ASSERT_TRUE(fw.converged);
    EXPECT_NEAR(pg.objective, fw.objective, 3e-5);
  }
}

TEST(CrossCheckTest, Fig1Exact) {
  const Matrix prefs = Matrix::FromRows({{0.4, 0.6, 0.0}, {0.0, 0.6, 0.4}});
  const auto fw = SolveProportionalFairnessFw(prefs, 2.0);
  ASSERT_TRUE(fw.converged);
  EXPECT_NEAR(fw.utilities[0], 0.8, 1e-2);
  EXPECT_NEAR(fw.utilities[1], 0.8, 1e-2);
}

}  // namespace
}  // namespace opus
