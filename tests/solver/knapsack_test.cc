#include "solver/knapsack.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace opus {
namespace {

TEST(KnapsackTest, FillsInValueOrder) {
  const std::vector<double> values = {0.1, 0.9, 0.5};
  const auto sol = SolveFractionalKnapsack(values, 2.0);
  EXPECT_NEAR(sol.allocation[1], 1.0, 1e-12);
  EXPECT_NEAR(sol.allocation[2], 1.0, 1e-12);
  EXPECT_NEAR(sol.allocation[0], 0.0, 1e-12);
  EXPECT_NEAR(sol.value, 1.4, 1e-12);
}

TEST(KnapsackTest, FractionalBoundary) {
  const std::vector<double> values = {0.9, 0.5};
  const auto sol = SolveFractionalKnapsack(values, 1.5);
  EXPECT_NEAR(sol.allocation[0], 1.0, 1e-12);
  EXPECT_NEAR(sol.allocation[1], 0.5, 1e-12);
  EXPECT_NEAR(sol.value, 0.9 + 0.25, 1e-12);
}

TEST(KnapsackTest, ZeroCapacity) {
  const auto sol = SolveFractionalKnapsack(std::vector<double>{1.0}, 0.0);
  EXPECT_NEAR(sol.allocation[0], 0.0, 1e-12);
  EXPECT_EQ(sol.value, 0.0);
}

TEST(KnapsackTest, ZeroValuesNeverCached) {
  const std::vector<double> values = {0.0, 0.4, 0.0};
  const auto sol = SolveFractionalKnapsack(values, 3.0);
  EXPECT_NEAR(sol.allocation[0], 0.0, 1e-12);
  EXPECT_NEAR(sol.allocation[1], 1.0, 1e-12);
  EXPECT_NEAR(sol.allocation[2], 0.0, 1e-12);
}

TEST(KnapsackTest, TieBreaksByIndex) {
  const std::vector<double> values = {0.5, 0.5, 0.5};
  const auto sol = SolveFractionalKnapsack(values, 1.0);
  EXPECT_NEAR(sol.allocation[0], 1.0, 1e-12);
  EXPECT_NEAR(sol.allocation[1], 0.0, 1e-12);
}

TEST(KnapsackTest, EmptyInput) {
  const auto sol = SolveFractionalKnapsack(std::vector<double>{}, 1.0);
  EXPECT_TRUE(sol.allocation.empty());
  EXPECT_EQ(sol.value, 0.0);
}

// Property: greedy value dominates random feasible allocations.
class KnapsackPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(KnapsackPropertyTest, GreedyIsOptimal) {
  Rng rng(300 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t m = 1 + rng.NextBounded(10);
  const double capacity = rng.NextUniform(0.0, static_cast<double>(m));
  std::vector<double> values(m);
  for (double& v : values) v = rng.NextDouble();

  const auto sol = SolveFractionalKnapsack(values, capacity);

  double total = 0.0;
  for (double a : sol.allocation) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
    total += a;
  }
  EXPECT_LE(total, capacity + 1e-9);

  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> cand(m);
    double cand_total = 0.0;
    for (double& v : cand) {
      v = rng.NextDouble();
      cand_total += v;
    }
    if (cand_total > capacity && cand_total > 0.0) {
      for (double& v : cand) v *= capacity / cand_total;
    }
    double cand_value = 0.0;
    for (std::size_t j = 0; j < m; ++j) cand_value += cand[j] * values[j];
    EXPECT_LE(cand_value, sol.value + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, KnapsackPropertyTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace opus
