#include "solver/pf_solver.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "solver/projection.h"

namespace opus {
namespace {

TEST(PfSolverTest, SingleUserCachesTopFiles) {
  // One user, capacity 2: any allocation with a . p maximal; the optimum
  // puts all capacity on the highest-preference files.
  const Matrix prefs = Matrix::FromRows({{0.5, 0.3, 0.2}});
  const auto sol = SolveProportionalFairness(prefs, 2.0);
  ASSERT_TRUE(sol.converged);
  EXPECT_NEAR(sol.allocation[0], 1.0, 1e-6);
  EXPECT_NEAR(sol.allocation[1], 1.0, 1e-6);
  EXPECT_NEAR(sol.allocation[2], 0.0, 1e-6);
  EXPECT_NEAR(sol.utilities[0], 0.8, 1e-6);
}

TEST(PfSolverTest, PaperFig1Allocation) {
  // Fig. 1: A = (0.4, 0.6, 0), B = (0, 0.6, 0.4), C = 2 -> a* = (1/2, 1, 1/2),
  // U_A = U_B = 0.8.
  const Matrix prefs = Matrix::FromRows({{0.4, 0.6, 0.0}, {0.0, 0.6, 0.4}});
  const auto sol = SolveProportionalFairness(prefs, 2.0);
  ASSERT_TRUE(sol.converged);
  EXPECT_NEAR(sol.allocation[0], 0.5, 1e-6);
  EXPECT_NEAR(sol.allocation[1], 1.0, 1e-6);
  EXPECT_NEAR(sol.allocation[2], 0.5, 1e-6);
  EXPECT_NEAR(sol.utilities[0], 0.8, 1e-6);
  EXPECT_NEAR(sol.utilities[1], 0.8, 1e-6);
}

TEST(PfSolverTest, PaperFig2MisreportAllocation) {
  // Fig. 2 scenario with user B misreporting (F3 over F2): the exact PF
  // optimum is a = (1/12, 1, 11/12) (DESIGN.md notes the paper rounds this
  // to (0, 1, 1)).
  const Matrix prefs = Matrix::FromRows({{0.4, 0.6, 0.0}, {0.0, 0.4, 0.6}});
  const auto sol = SolveProportionalFairness(prefs, 2.0);
  ASSERT_TRUE(sol.converged);
  EXPECT_NEAR(sol.allocation[0], 1.0 / 12.0, 1e-5);
  EXPECT_NEAR(sol.allocation[1], 1.0, 1e-5);
  EXPECT_NEAR(sol.allocation[2], 11.0 / 12.0, 1e-5);
}

TEST(PfSolverTest, CapacityCoversEverything) {
  const Matrix prefs = Matrix::FromRows({{0.7, 0.3}, {0.2, 0.8}});
  const auto sol = SolveProportionalFairness(prefs, 5.0);
  ASSERT_TRUE(sol.converged);
  EXPECT_NEAR(sol.allocation[0], 1.0, 1e-12);
  EXPECT_NEAR(sol.allocation[1], 1.0, 1e-12);
  EXPECT_NEAR(sol.utilities[0], 1.0, 1e-12);
}

TEST(PfSolverTest, ZeroCapacity) {
  const Matrix prefs = Matrix::FromRows({{1.0}});
  const auto sol = SolveProportionalFairness(prefs, 0.0);
  EXPECT_TRUE(sol.converged);
  EXPECT_NEAR(sol.allocation[0], 0.0, 1e-12);
}

TEST(PfSolverTest, ZeroWeightUserIgnored) {
  // With user 0's weight zeroed, the solution should serve only user 1.
  const Matrix prefs = Matrix::FromRows({{1.0, 0.0}, {0.0, 1.0}});
  const std::vector<double> weights = {0.0, 1.0};
  const auto sol = SolveProportionalFairness(prefs, 1.0, {}, weights);
  ASSERT_TRUE(sol.converged);
  EXPECT_NEAR(sol.allocation[0], 0.0, 1e-6);
  EXPECT_NEAR(sol.allocation[1], 1.0, 1e-6);
}

TEST(PfSolverTest, ZeroPreferenceRowIgnored) {
  const Matrix prefs = Matrix::FromRows({{0.0, 0.0}, {0.3, 0.7}});
  const auto sol = SolveProportionalFairness(prefs, 1.0);
  ASSERT_TRUE(sol.converged);
  // All capacity goes to user 1's top file.
  EXPECT_NEAR(sol.allocation[1], 1.0, 1e-6);
  EXPECT_NEAR(sol.utilities[0], 0.0, 1e-12);
}

TEST(PfSolverTest, SymmetricUsersSplitEvenly) {
  // Two users with disjoint single-file demands and capacity 1: PF gives
  // each half (equal log gains).
  const Matrix prefs = Matrix::FromRows({{1.0, 0.0}, {0.0, 1.0}});
  const auto sol = SolveProportionalFairness(prefs, 1.0);
  ASSERT_TRUE(sol.converged);
  EXPECT_NEAR(sol.allocation[0], 0.5, 1e-6);
  EXPECT_NEAR(sol.allocation[1], 0.5, 1e-6);
}

TEST(PfSolverTest, WeightsTiltTheSplit) {
  // Weighted PF with weights (2, 1) on disjoint demands splits 2:1.
  const Matrix prefs = Matrix::FromRows({{1.0, 0.0}, {0.0, 1.0}});
  const std::vector<double> weights = {2.0, 1.0};
  const auto sol = SolveProportionalFairness(prefs, 1.0, {}, weights);
  ASSERT_TRUE(sol.converged);
  EXPECT_NEAR(sol.allocation[0], 2.0 / 3.0, 1e-6);
  EXPECT_NEAR(sol.allocation[1], 1.0 / 3.0, 1e-6);
}

TEST(PfSolverTest, WarmStartConvergesToSameSolution) {
  const Matrix prefs =
      Matrix::FromRows({{0.5, 0.2, 0.3}, {0.1, 0.6, 0.3}, {0.3, 0.3, 0.4}});
  const auto cold = SolveProportionalFairness(prefs, 1.5);
  // Perverse warm start far from the optimum.
  const std::vector<double> warm = {1.0, 0.0, 0.0};
  const auto warm_sol = SolveProportionalFairness(prefs, 1.5, {}, {}, warm);
  ASSERT_TRUE(cold.converged);
  ASSERT_TRUE(warm_sol.converged);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(cold.allocation[j], warm_sol.allocation[j], 1e-5);
  }
}

TEST(PfSolverTest, ObjectiveMatchesUtilities) {
  const Matrix prefs = Matrix::FromRows({{0.4, 0.6, 0.0}, {0.0, 0.6, 0.4}});
  const auto sol = SolveProportionalFairness(prefs, 2.0);
  EXPECT_NEAR(sol.objective,
              std::log(sol.utilities[0]) + std::log(sol.utilities[1]), 1e-9);
}

// Property sweep: random instances must converge with a tiny KKT residual,
// a feasible allocation, and positive utility for every active user.
class PfSolverPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PfSolverPropertyTest, KktOptimalAndFeasible) {
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 1 + rng.NextBounded(8);
  const std::size_t m = 1 + rng.NextBounded(15);
  const double capacity = rng.NextUniform(0.1, static_cast<double>(m));

  Matrix prefs(n, m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double total = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      const double v = rng.NextBernoulli(0.7) ? rng.NextDouble() : 0.0;
      prefs(i, j) = v;
      total += v;
    }
    if (total > 0.0) {
      for (std::size_t j = 0; j < m; ++j) prefs(i, j) /= total;
    }
  }

  const auto sol = SolveProportionalFairness(prefs, capacity);
  ASSERT_TRUE(sol.converged) << "residual=" << sol.residual;
  EXPECT_TRUE(IsFeasibleCappedSimplex(sol.allocation, capacity, 1e-7));
  EXPECT_LT(PfOptimalityResidual(prefs, capacity, sol.allocation), 1e-6);
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < m; ++j) row_sum += prefs(i, j);
    if (row_sum > 0.0) EXPECT_GT(sol.utilities[i], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, PfSolverPropertyTest,
                         ::testing::Range(0, 30));

// Property: the PF objective at the solver's solution beats (or ties) the
// objective at random feasible points — a direct optimality spot-check.
class PfDominanceTest : public ::testing::TestWithParam<int> {};

TEST_P(PfDominanceTest, BeatsRandomFeasiblePoints) {
  Rng rng(2000 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 2 + rng.NextBounded(4);
  const std::size_t m = 2 + rng.NextBounded(8);
  const double capacity = rng.NextUniform(0.5, static_cast<double>(m) * 0.8);

  Matrix prefs(n, m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double total = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      prefs(i, j) = rng.NextDouble();
      total += prefs(i, j);
    }
    for (std::size_t j = 0; j < m; ++j) prefs(i, j) /= total;
  }
  const auto sol = SolveProportionalFairness(prefs, capacity);
  ASSERT_TRUE(sol.converged);

  auto objective = [&](const std::vector<double>& a) {
    double obj = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double u = 0.0;
      for (std::size_t j = 0; j < m; ++j) u += prefs(i, j) * a[j];
      if (u <= 0.0) return -1e300;
      obj += std::log(u);
    }
    return obj;
  };

  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> cand(m);
    for (double& v : cand) v = rng.NextDouble();
    const auto feasible = ProjectCappedSimplex(cand, capacity);
    EXPECT_LE(objective(feasible), sol.objective + 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, PfDominanceTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace opus
