#include "solver/projection.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/mathutil.h"
#include "common/rng.h"

namespace opus {
namespace {

TEST(ProjectionTest, InteriorPointUnchanged) {
  const std::vector<double> y = {0.2, 0.3, 0.1};
  const auto x = ProjectCappedSimplex(y, 2.0);
  EXPECT_NEAR(MaxAbsDiff(x, y), 0.0, 1e-12);
}

TEST(ProjectionTest, BoxClampOnly) {
  const std::vector<double> y = {-0.5, 1.5, 0.3};
  const auto x = ProjectCappedSimplex(y, 10.0);
  EXPECT_NEAR(x[0], 0.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
  EXPECT_NEAR(x[2], 0.3, 1e-12);
}

TEST(ProjectionTest, CapacityBindsUniform) {
  const std::vector<double> y = {1.0, 1.0, 1.0, 1.0};
  const auto x = ProjectCappedSimplex(y, 2.0);
  for (double v : x) EXPECT_NEAR(v, 0.5, 1e-9);
}

TEST(ProjectionTest, CapacityBindsAsymmetric) {
  // Projecting (0.9, 0.1) onto sum <= 0.6: tau = 0.2, x = (0.7, 0) is wrong
  // because 0.1 - 0.2 < 0 clamps; solve: x = (0.9-t, 0.1-t)+ with sum 0.6
  // -> t = 0.2, x = (0.7, 0) sums to 0.7 > 0.6; so second coord clamps to 0
  // and 0.9 - t = 0.6 -> t = 0.3 gives x = (0.6, 0). Check against KKT.
  const std::vector<double> y = {0.9, 0.1};
  const auto x = ProjectCappedSimplex(y, 0.6);
  EXPECT_NEAR(x[0] + x[1], 0.6, 1e-9);
  // Optimality: moving mass from x0 to x1 must not reduce distance.
  const double d_opt = (x[0] - 0.9) * (x[0] - 0.9) + (x[1] - 0.1) * (x[1] - 0.1);
  const double d_alt = (0.5 - 0.9) * (0.5 - 0.9) + (0.1 - 0.1) * (0.1 - 0.1);
  EXPECT_LE(d_opt, d_alt + 1e-9);
}

TEST(ProjectionTest, ZeroCapacity) {
  const std::vector<double> y = {0.5, 0.7};
  const auto x = ProjectCappedSimplex(y, 0.0);
  EXPECT_NEAR(x[0], 0.0, 1e-9);
  EXPECT_NEAR(x[1], 0.0, 1e-9);
}

TEST(ProjectionTest, EmptyInput) {
  const auto x = ProjectCappedSimplex(std::vector<double>{}, 1.0);
  EXPECT_TRUE(x.empty());
}

TEST(ProjectionTest, FeasibilityChecker) {
  EXPECT_TRUE(IsFeasibleCappedSimplex(std::vector<double>{0.5, 0.5}, 1.0));
  EXPECT_FALSE(IsFeasibleCappedSimplex(std::vector<double>{0.8, 0.5}, 1.0));
  EXPECT_FALSE(IsFeasibleCappedSimplex(std::vector<double>{1.2}, 2.0));
  EXPECT_FALSE(IsFeasibleCappedSimplex(std::vector<double>{-0.1}, 2.0));
}

// Property: the projection is feasible and no feasible point is closer.
// Verified against random candidate points.
class ProjectionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ProjectionPropertyTest, ProjectionIsNearestFeasiblePoint) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t m = 1 + rng.NextBounded(12);
  const double capacity = rng.NextUniform(0.0, static_cast<double>(m));
  std::vector<double> y(m);
  for (double& v : y) v = rng.NextUniform(-2.0, 3.0);

  const auto x = ProjectCappedSimplex(y, capacity);
  ASSERT_TRUE(IsFeasibleCappedSimplex(x, capacity, 1e-7));

  auto dist2 = [&](const std::vector<double>& p) {
    double d = 0.0;
    for (std::size_t j = 0; j < m; ++j) d += (p[j] - y[j]) * (p[j] - y[j]);
    return d;
  };
  const double dx = dist2(x);

  // Random feasible candidates must not beat the projection.
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> cand(m);
    for (double& v : cand) v = rng.NextUniform(0.0, 1.0);
    double total = 0.0;
    for (double v : cand) total += v;
    if (total > capacity && total > 0.0) {
      for (double& v : cand) v *= capacity / total;
    }
    EXPECT_GE(dist2(cand), dx - 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ProjectionPropertyTest,
                         ::testing::Range(0, 25));

// Property: the exact breakpoint algorithm and the bisection reference
// locate the same projection — unweighted and with random positive weights
// (file sizes), including degenerate capacities (0, boundary, >= total).
class BreakpointVsBisectTest : public ::testing::TestWithParam<int> {};

TEST_P(BreakpointVsBisectTest, ExactMatchesBisection) {
  Rng rng(7100 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t m = 1 + rng.NextBounded(40);
  std::vector<double> y(m);
  for (double& v : y) v = rng.NextUniform(-2.0, 3.0);
  std::vector<double> weights;
  if (GetParam() % 2 == 1) {
    weights.resize(m);
    for (double& w : weights) w = rng.NextUniform(0.1, 4.0);
  }
  double total = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    total += weights.empty() ? 1.0 : weights[j];
  }
  // Degenerate and generic capacities: empty, boundary-tight, interior,
  // and slack (capacity >= total size never binds).
  const double caps[] = {0.0, 1e-12, rng.NextUniform(0.0, total), 0.5 * total,
                         total, total + 1.0};
  for (const double capacity : caps) {
    const auto exact = ProjectCappedSimplex(y, capacity, weights);
    const auto bisect = ProjectCappedSimplexBisect(y, capacity, weights);
    ASSERT_TRUE(IsFeasibleCappedSimplex(exact, capacity, 1e-9, weights));
    EXPECT_NEAR(MaxAbsDiff(exact, bisect), 0.0, 1e-9)
        << "capacity=" << capacity << " m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, BreakpointVsBisectTest,
                         ::testing::Range(0, 40));

// The warm-started projector must match the stateless exact projection on
// every call of a correlated sequence (the solver's Armijo pattern:
// repeated projections of slowly-moving points).
TEST(CappedSimplexProjectorTest, WarmSequenceMatchesExact) {
  Rng rng(4242);
  const std::size_t m = 64;
  std::vector<double> y(m);
  for (double& v : y) v = rng.NextUniform(0.0, 2.0);
  const double capacity = 8.0;

  CappedSimplexProjector projector;
  std::vector<double> out;
  for (int step = 0; step < 50; ++step) {
    for (double& v : y) v += rng.NextUniform(-0.05, 0.05);
    projector.Project(y, capacity, {}, out);
    const auto reference = ProjectCappedSimplex(y, capacity);
    ASSERT_NEAR(MaxAbsDiff(out, reference), 0.0, 1e-9) << "step " << step;
    ASSERT_TRUE(IsFeasibleCappedSimplex(out, capacity, 1e-9));
  }
  const auto& stats = projector.stats();
  EXPECT_EQ(stats.calls, 50u);
  EXPECT_EQ(stats.clamp_fast + stats.warm_hits + stats.exact_solves, 50u);
  // The whole point of the warm path: after the first exact solve, nearby
  // projections resolve via the warm-started Newton iteration.
  EXPECT_GT(stats.warm_hits, 40u);
}

TEST(CappedSimplexProjectorTest, WeightedWarmSequenceMatchesExact) {
  Rng rng(777);
  const std::size_t m = 48;
  std::vector<double> y(m), weights(m);
  for (double& v : y) v = rng.NextUniform(0.0, 2.0);
  for (double& w : weights) w = rng.NextUniform(0.2, 3.0);
  const double capacity = 10.0;

  CappedSimplexProjector projector;
  std::vector<double> out;
  for (int step = 0; step < 30; ++step) {
    for (double& v : y) v += rng.NextUniform(-0.02, 0.02);
    projector.Project(y, capacity, weights, out);
    const auto reference = ProjectCappedSimplex(y, capacity, weights);
    ASSERT_NEAR(MaxAbsDiff(out, reference), 0.0, 1e-9) << "step " << step;
  }
}

// A projector whose state comes from an unrelated problem must still be
// correct on the next call (warm failure falls back to the exact sort).
TEST(CappedSimplexProjectorTest, StaleTauStillCorrect) {
  CappedSimplexProjector projector;
  std::vector<double> out;
  const std::vector<double> big(32, 100.0);
  projector.Project(big, 1.0, {}, out);  // tau lands near 100
  const std::vector<double> small = {0.6, 0.5, 0.4, 0.3};
  projector.Project(small, 1.0, {}, out);
  const auto reference = ProjectCappedSimplex(small, 1.0);
  EXPECT_NEAR(MaxAbsDiff(out, reference), 0.0, 1e-9);
}

}  // namespace
}  // namespace opus
