// Scale and stress tests for the PF solver: the sizes the Fig. 8/10
// benches actually run (up to 150 users x 100 files), plus adversarial
// shapes (near-degenerate preferences, extreme skew, tiny capacities).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "solver/pf_solver.h"
#include "solver/projection.h"
#include "workload/preference_gen.h"

namespace opus {
namespace {

Matrix ZipfPrefs(std::size_t users, std::size_t files, double alpha,
                 std::uint64_t seed) {
  workload::ZipfPreferenceConfig cfg;
  cfg.num_users = users;
  cfg.num_files = files;
  cfg.alpha = alpha;
  Rng rng(seed);
  return workload::GenerateZipfPreferences(cfg, rng);
}

TEST(PfScaleTest, BenchScaleConverges) {
  const auto prefs = ZipfPrefs(150, 100, 1.1, 1);
  const auto sol = SolveProportionalFairness(prefs, 60.0);
  ASSERT_TRUE(sol.converged);
  EXPECT_LT(sol.iterations, 20000);
  EXPECT_LT(PfOptimalityResidual(prefs, 60.0, sol.allocation), 1e-6);
}

TEST(PfScaleTest, WarmStartedLeaveOneOutsAreCheap) {
  const auto prefs = ZipfPrefs(60, 80, 1.1, 2);
  const auto star = SolveProportionalFairness(prefs, 40.0);
  ASSERT_TRUE(star.converged);
  std::vector<double> weights(60, 1.0);
  int total_iterations = 0;
  for (std::size_t i = 0; i < 60; ++i) {
    weights[i] = 0.0;
    const auto sol = SolveProportionalFairness(prefs, 40.0, {}, weights,
                                               star.allocation);
    weights[i] = 1.0;
    ASSERT_TRUE(sol.converged);
    total_iterations += sol.iterations;
  }
  // Warm starts keep the marginal solves on par with (or below) the
  // cold-start cost even though each drops a user from the objective.
  EXPECT_LT(total_iterations / 60, 2 * star.iterations);
}

TEST(PfScaleTest, ExtremeSkewConverges) {
  // One file carries nearly all preference mass for everyone.
  const auto prefs = ZipfPrefs(30, 50, 3.0, 3);
  const auto sol = SolveProportionalFairness(prefs, 10.0);
  ASSERT_TRUE(sol.converged);
  EXPECT_LT(PfOptimalityResidual(prefs, 10.0, sol.allocation), 1e-6);
}

TEST(PfScaleTest, TinyCapacity) {
  const auto prefs = ZipfPrefs(20, 40, 1.1, 4);
  const auto sol = SolveProportionalFairness(prefs, 0.01);
  ASSERT_TRUE(sol.converged);
  double total = 0.0;
  for (double a : sol.allocation) total += a;
  EXPECT_LE(total, 0.01 + 1e-7);
  // Everyone still gets a sliver (log utility forbids zeros).
  for (double u : sol.utilities) EXPECT_GT(u, 0.0);
}

TEST(PfScaleTest, NearDuplicateUsers) {
  // 40 users with nearly identical rows make the Hessian nearly singular
  // along many directions; the solver must still converge.
  Matrix prefs(40, 10, 0.0);
  Rng rng(5);
  for (std::size_t i = 0; i < 40; ++i) {
    double total = 0.0;
    for (std::size_t j = 0; j < 10; ++j) {
      prefs(i, j) = 1.0 + 1e-6 * rng.NextDouble();
      total += prefs(i, j);
    }
    for (std::size_t j = 0; j < 10; ++j) prefs(i, j) /= total;
  }
  const auto sol = SolveProportionalFairness(prefs, 5.0);
  ASSERT_TRUE(sol.converged);
  // With (near-)uniform rows the objective depends only on sum_j a_j, so
  // the optimum is degenerate: any capacity-saturating allocation is
  // optimal. Assert the invariant quantities instead of a specific vertex.
  double total = 0.0;
  for (double a : sol.allocation) total += a;
  EXPECT_NEAR(total, 5.0, 1e-6);
  for (double u : sol.utilities) EXPECT_NEAR(u, 0.5, 1e-4);
}

TEST(PfScaleTest, SingleFileManyUsers) {
  Matrix prefs(100, 1, 1.0);
  const auto sol = SolveProportionalFairness(prefs, 0.5);
  ASSERT_TRUE(sol.converged);
  EXPECT_NEAR(sol.allocation[0], 0.5, 1e-9);
}

}  // namespace
}  // namespace opus
