// CSR structure tests plus the sparse/dense PF engine agreement property:
// the production CSR engine and the dense reference engine must produce the
// same allocations (to solver tolerance) on random sparse instances and on
// the paper's worked examples.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/mathutil.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "solver/pf_solver.h"
#include "workload/paper_examples.h"

namespace opus {
namespace {

TEST(CsrMatrixTest, FromDenseKeepsStructure) {
  const Matrix dense = Matrix::FromRows({{0.0, 2.0, 0.0, 1.0},
                                         {0.0, 0.0, 0.0, 0.0},
                                         {3.0, 0.0, 0.5, 0.0}});
  const CsrMatrix csr = CsrMatrix::FromDense(dense);
  EXPECT_EQ(csr.rows(), 3u);
  EXPECT_EQ(csr.cols(), 4u);
  EXPECT_EQ(csr.nnz(), 4u);
  ASSERT_EQ(csr.row_cols(0).size(), 2u);
  EXPECT_EQ(csr.row_cols(0)[0], 1u);
  EXPECT_EQ(csr.row_cols(0)[1], 3u);
  EXPECT_DOUBLE_EQ(csr.row_vals(0)[0], 2.0);
  EXPECT_DOUBLE_EQ(csr.row_vals(0)[1], 1.0);
  EXPECT_EQ(csr.row_cols(1).size(), 0u);
  EXPECT_DOUBLE_EQ(csr.row_sum(0), 3.0);
  EXPECT_DOUBLE_EQ(csr.row_sum(1), 0.0);
  EXPECT_DOUBLE_EQ(csr.row_sum(2), 3.5);
  EXPECT_DOUBLE_EQ(csr.NnzRatio(), 4.0 / 12.0);
}

TEST(CsrMatrixTest, NegativeEntryAborts) {
  const Matrix dense = Matrix::FromRows({{0.5, -0.1}});
  EXPECT_DEATH((void)CsrMatrix::FromDense(dense), "OPUS_CHECK");
}

TEST(CsrMatrixTest, ColumnSubsetRenumbers) {
  const Matrix dense = Matrix::FromRows({{1.0, 2.0, 3.0, 4.0},
                                         {0.0, 5.0, 0.0, 6.0}});
  const CsrMatrix csr = CsrMatrix::FromDense(dense);
  const std::vector<std::size_t> keep = {1, 3};
  const CsrMatrix sub = csr.ColumnSubset(keep);
  EXPECT_EQ(sub.rows(), 2u);
  EXPECT_EQ(sub.cols(), 2u);
  ASSERT_EQ(sub.row_cols(0).size(), 2u);
  EXPECT_EQ(sub.row_cols(0)[0], 0u);  // old column 1
  EXPECT_EQ(sub.row_cols(0)[1], 1u);  // old column 3
  EXPECT_DOUBLE_EQ(sub.row_vals(0)[0], 2.0);
  EXPECT_DOUBLE_EQ(sub.row_vals(0)[1], 4.0);
  EXPECT_DOUBLE_EQ(sub.row_sum(0), 6.0);
  EXPECT_DOUBLE_EQ(sub.row_sum(1), 11.0);
}

TEST(CsrUtilitiesTest, MatchesDenseDotProducts) {
  Rng rng(11);
  const std::size_t n = 7, m = 23;
  Matrix dense(n, m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (rng.NextDouble() < 0.3) dense(i, j) = rng.NextUniform(0.0, 1.0);
    }
  }
  std::vector<double> a(m);
  for (double& v : a) v = rng.NextUniform(0.0, 1.0);
  const CsrMatrix csr = CsrMatrix::FromDense(dense);
  std::vector<double> utilities;
  CsrUtilities(csr, a, utilities);
  ASSERT_EQ(utilities.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(utilities[i], Dot(dense.row(i), a)) << "user " << i;
  }
}

// Solves one instance through both engines and asserts agreement.
void ExpectEnginesAgree(const Matrix& prefs, double capacity,
                        std::span<const double> weights = {},
                        std::span<const double> file_sizes = {}) {
  PfOptions sparse_opts;
  PfOptions dense_opts;
  dense_opts.use_dense_reference = true;
  const PfSolution sparse = SolveProportionalFairness(
      prefs, capacity, sparse_opts, weights, {}, file_sizes);
  const PfSolution dense = SolveProportionalFairness(
      prefs, capacity, dense_opts, weights, {}, file_sizes);
  ASSERT_TRUE(sparse.converged);
  ASSERT_TRUE(dense.converged);
  // Both engines satisfy the same KKT residual bound; utilities at a PF
  // optimum are unique, allocations match up to solver tolerance.
  EXPECT_NEAR(MaxAbsDiff(sparse.utilities, dense.utilities), 0.0, 1e-6);
  EXPECT_NEAR(MaxAbsDiff(sparse.allocation, dense.allocation), 0.0, 1e-5);
  EXPECT_LT(PfOptimalityResidual(prefs, capacity, sparse.allocation, weights,
                                 file_sizes),
            1e-7);
}

TEST(SparseDenseAgreementTest, PaperExamples) {
  {
    const auto p = workload::Fig1Example();
    ExpectEnginesAgree(p.preferences, p.capacity);
  }
  {
    const auto p = workload::Fig3Example();
    ExpectEnginesAgree(p.preferences, p.capacity);
  }
}

class SparseDenseAgreementProperty : public ::testing::TestWithParam<int> {};

TEST_P(SparseDenseAgreementProperty, RandomInstancesAgree) {
  Rng rng(3300 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 2 + rng.NextBounded(8);
  const std::size_t m = 4 + rng.NextBounded(40);
  const double density = rng.NextUniform(0.05, 0.6);
  Matrix prefs(n, m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    // Leave some rows identically zero: such users are outside the
    // mechanism and both engines must ignore them identically.
    if (i == 0 && GetParam() % 3 == 0) continue;
    for (std::size_t j = 0; j < m; ++j) {
      if (rng.NextDouble() < density) prefs(i, j) = rng.NextUniform(0.1, 1.0);
    }
  }
  const double capacity = rng.NextUniform(0.5, static_cast<double>(m) * 0.8);

  std::vector<double> weights;
  if (GetParam() % 2 == 1) {
    weights.resize(n);
    for (double& w : weights) w = rng.NextUniform(0.2, 3.0);
  }
  std::vector<double> sizes;
  if (GetParam() % 4 >= 2) {
    sizes.resize(m);
    for (double& s : sizes) s = rng.NextUniform(0.2, 2.5);
  }
  ExpectEnginesAgree(prefs, capacity, weights, sizes);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SparseDenseAgreementProperty,
                         ::testing::Range(0, 24));

// A warm start plus utility offsets poses a column-restricted subproblem;
// the sparse engine must honor both (exercised heavily by the restricted
// leave-one-out tax path).
TEST(SparseEngineTest, UtilityOffsetsShiftUtilities) {
  const Matrix prefs = Matrix::FromRows({{0.7, 0.3}, {0.2, 0.8}});
  const CsrMatrix csr = CsrMatrix::FromDense(prefs);
  const std::vector<double> offsets = {0.25, 0.5};
  const PfSolution sol =
      SolveProportionalFairnessCsr(csr, 1.0, {}, {}, {}, {}, offsets);
  ASSERT_TRUE(sol.converged);
  // Reported utilities include the fixed offsets on top of p_i . a.
  std::vector<double> base;
  CsrUtilities(csr, sol.allocation, base);
  EXPECT_NEAR(sol.utilities[0], base[0] + 0.25, 1e-12);
  EXPECT_NEAR(sol.utilities[1], base[1] + 0.5, 1e-12);
}

TEST(SparseEngineTest, ReportsProjectionStats) {
  Rng rng(5);
  const std::size_t n = 6, m = 40;
  Matrix prefs(n, m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (rng.NextDouble() < 0.2) prefs(i, j) = rng.NextUniform(0.1, 1.0);
    }
  }
  const PfSolution sol = SolveProportionalFairness(prefs, 8.0);
  ASSERT_TRUE(sol.converged);
  EXPECT_GT(sol.projection_calls, 0u);
  EXPECT_GE(sol.projection_calls,
            sol.projection_warm_hits + sol.projection_exact);
}

}  // namespace
}  // namespace opus
