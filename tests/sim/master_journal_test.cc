// Master restart with journal replay: the journaled latest allocation
// restores the logical cache state on a fresh cluster.
#include <gtest/gtest.h>

#include "core/opus.h"
#include "sim/opus_master.h"

namespace opus::sim {
namespace {

cache::Catalog Catalog4() {
  cache::Catalog c(1 * cache::kMiB);
  for (int f = 0; f < 4; ++f) {
    c.Register("file-" + std::to_string(f), 10 * cache::kMiB);
  }
  return c;
}

cache::ClusterConfig Cluster2() {
  cache::ClusterConfig cfg;
  cfg.num_workers = 2;
  cfg.num_users = 2;
  cfg.cache_capacity_bytes = 20 * cache::kMiB;
  return cfg;
}

TEST(MasterJournalTest, DisabledByDefault) {
  cache::CacheCluster cluster(Cluster2(), Catalog4());
  OpusAllocator alloc;
  OpusMaster master(&alloc, &cluster, {});
  master.Prime(Matrix::FromRows({{1, 0, 0, 0}, {0, 1, 0, 0}}));
  EXPECT_TRUE(master.journal().empty());
}

TEST(MasterJournalTest, JournalsEveryReallocation) {
  cache::CacheCluster cluster(Cluster2(), Catalog4());
  OpusAllocator alloc;
  OpusMasterConfig cfg;
  cfg.enable_journal = true;
  cfg.update_interval = 5;
  OpusMaster master(&alloc, &cluster, cfg);
  workload::AccessEvent e;
  e.user = 0;
  e.file = 0;
  for (int k = 0; k < 15; ++k) master.OnAccess(e);
  EXPECT_EQ(master.journal().size(), 3u);
  EXPECT_EQ(master.journal().latest().epoch, 3u);
}

TEST(MasterJournalTest, RestartReplaysLatestState) {
  cache::CacheCluster cluster(Cluster2(), Catalog4());
  OpusAllocator alloc;
  OpusMasterConfig cfg;
  cfg.enable_journal = true;
  OpusMaster master(&alloc, &cluster, cfg);
  master.ReportPreferences(0, {0.0, 0.0, 1.0, 0.0});
  master.ReportPreferences(1, {0.0, 0.0, 0.0, 1.0});
  master.Reallocate();

  // Serialize across the "restart", then replay onto a new cluster.
  const std::string log = master.journal().Serialize();
  const auto restored_journal = cache::Journal::Deserialize(log);
  ASSERT_TRUE(restored_journal.has_value());

  cache::CacheCluster fresh(Cluster2(), Catalog4());
  restored_journal->ReplayLatest(&fresh);
  for (cache::FileId f = 0; f < 4; ++f) {
    EXPECT_EQ(fresh.ResidentFraction(f), cluster.ResidentFraction(f));
  }
  const auto a = cluster.Read(0, 2);
  const auto b = fresh.Read(0, 2);
  EXPECT_EQ(a.effective_hit, b.effective_hit);
}

}  // namespace
}  // namespace opus::sim
