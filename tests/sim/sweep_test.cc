#include "sim/sweep.h"

#include <set>

#include <gtest/gtest.h>

#include "analysis/csv.h"
#include "core/isolated.h"
#include "core/opus.h"
#include "workload/preference_gen.h"

namespace opus::sim {
namespace {

SweepRunner::ProblemFn ZipfGrid() {
  return [](std::size_t point, int /*rep*/, Rng& rng) {
    workload::ZipfPreferenceConfig cfg;
    cfg.num_users = 3 + point;  // points sweep the user count
    cfg.num_files = 8;
    cfg.alpha = 1.1;
    CachingProblem p;
    p.preferences = workload::GenerateZipfPreferences(cfg, rng);
    p.capacity = 4.0;
    return p;
  };
}

TEST(SweepTest, ProducesRecordsForEveryCell) {
  SweepRunner runner({"n=3", "n=4"}, ZipfGrid(), /*replications=*/2);
  const OpusAllocator opus;
  const IsolatedAllocator isolated;
  runner.AddPolicy(&opus);
  runner.AddPolicy(&isolated);
  runner.Run();
  // Users per point: 3 and 4; 2 reps; 2 policies.
  EXPECT_EQ(runner.records().size(), (3u + 4u) * 2u * 2u);
}

TEST(SweepTest, InstancesIndependentOfPolicySet) {
  // The same (point, rep) must yield identical utilities for a policy no
  // matter what other policies run alongside.
  const OpusAllocator opus;
  const IsolatedAllocator isolated;

  SweepRunner solo({"n=3"}, ZipfGrid(), 2);
  solo.AddPolicy(&opus);
  solo.Run();

  SweepRunner both({"n=3"}, ZipfGrid(), 2);
  both.AddPolicy(&isolated);
  both.AddPolicy(&opus);
  both.Run();

  auto opus_utils = [](const SweepRunner& r) {
    std::vector<double> out;
    for (const auto& rec : r.records()) {
      if (rec.policy == "opus") out.push_back(rec.utility);
    }
    return out;
  };
  EXPECT_EQ(opus_utils(solo), opus_utils(both));
}

TEST(SweepTest, SummariesAggregate) {
  SweepRunner runner({"n=3", "n=4"}, ZipfGrid(), 3);
  const OpusAllocator opus;
  runner.AddPolicy(&opus);
  runner.Run();
  const auto summaries = runner.Summaries();
  ASSERT_EQ(summaries.size(), 2u);
  for (const auto& s : summaries) {
    EXPECT_EQ(s.policy, "opus");
    EXPECT_GE(s.mean, s.p5);
    EXPECT_LE(s.mean, s.p95 + 1e-12);
    EXPECT_GE(s.sharing_rate, 0.0);
    EXPECT_LE(s.sharing_rate, 1.0);
  }
}

TEST(SweepTest, ParallelRunIsByteIdenticalToSerial) {
  const OpusAllocator opus;
  const IsolatedAllocator isolated;

  SweepRunner serial({"n=3", "n=4", "n=5"}, ZipfGrid(), /*replications=*/3);
  serial.set_threads(1);
  serial.AddPolicy(&opus);
  serial.AddPolicy(&isolated);
  serial.Run();

  SweepRunner parallel({"n=3", "n=4", "n=5"}, ZipfGrid(), /*replications=*/3);
  parallel.set_threads(4);
  parallel.AddPolicy(&opus);
  parallel.AddPolicy(&isolated);
  parallel.Run();

  // Byte-identical CSV: same records in the same order, same formatting.
  EXPECT_EQ(serial.ToCsv(), parallel.ToCsv());

  // Identical summaries, field by field.
  const auto s = serial.Summaries();
  const auto p = parallel.Summaries();
  ASSERT_EQ(s.size(), p.size());
  for (std::size_t k = 0; k < s.size(); ++k) {
    EXPECT_EQ(s[k].policy, p[k].policy);
    EXPECT_EQ(s[k].point, p[k].point);
    EXPECT_EQ(s[k].mean, p[k].mean);
    EXPECT_EQ(s[k].p5, p[k].p5);
    EXPECT_EQ(s[k].p95, p[k].p95);
    EXPECT_EQ(s[k].sharing_rate, p[k].sharing_rate);
  }
}

TEST(SweepTest, SharingRateCountsDistinctReplications) {
  // Regression for the order-dependent `last_rep` counting: the sharing
  // rate must equal (#replications that shared) / (#replications), however
  // the records are ordered.
  SweepRunner runner({"n=3"}, ZipfGrid(), /*replications=*/4);
  const IsolatedAllocator isolated;  // never shares
  runner.AddPolicy(&isolated);
  runner.Run();
  const auto summaries = runner.Summaries();
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].sharing_rate, 0.0);

  // All records for a replication carry the same shared flag, so the rate
  // is a replication count, not a record count: recompute it directly.
  std::set<int> reps, shared_reps;
  for (const auto& r : runner.records()) {
    reps.insert(r.replication);
    if (r.shared) shared_reps.insert(r.replication);
  }
  EXPECT_EQ(summaries[0].sharing_rate,
            static_cast<double>(shared_reps.size()) /
                static_cast<double>(reps.size()));
}

TEST(SweepTest, CsvExportParses) {
  SweepRunner runner({"n=3"}, ZipfGrid(), 1);
  const IsolatedAllocator isolated;
  runner.AddPolicy(&isolated);
  runner.Run();
  const auto table = analysis::ParseCsv(runner.ToCsv(), /*has_header=*/true);
  EXPECT_EQ(table.header.size(), 6u);
  EXPECT_EQ(table.rows.size(), runner.records().size());
  EXPECT_EQ(table.rows[0][0], "isolated");
  // Isolated never shares.
  for (const auto& row : table.rows) EXPECT_EQ(row[5], "0");
}

}  // namespace
}  // namespace opus::sim
