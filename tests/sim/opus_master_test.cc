#include "sim/opus_master.h"

#include <gtest/gtest.h>

#include "core/opus.h"
#include "workload/tpch.h"

namespace opus::sim {
namespace {

cache::Catalog FourFileCatalog() {
  cache::Catalog c(1 * cache::kMiB);
  for (int f = 0; f < 4; ++f) {
    c.Register("file-" + std::to_string(f), 10 * cache::kMiB);
  }
  return c;
}

cache::ClusterConfig TwoUserCluster() {
  cache::ClusterConfig cfg;
  cfg.num_workers = 2;
  cfg.num_users = 2;
  cfg.cache_capacity_bytes = 20 * cache::kMiB;  // 2 of 4 files
  return cfg;
}

TEST(OpusMasterTest, DerivesCapacityUnitsFromCluster) {
  cache::CacheCluster cluster(TwoUserCluster(), FourFileCatalog());
  OpusAllocator alloc;
  OpusMasterConfig cfg;
  OpusMaster master(&alloc, &cluster, cfg);
  // 20 MiB cache / 10 MiB mean file = 2 units; priming allocates 2 files.
  Matrix prefs = Matrix::FromRows(
      {{0.6, 0.4, 0.0, 0.0}, {0.6, 0.0, 0.4, 0.0}});
  master.Prime(prefs);
  EXPECT_EQ(master.reallocations(), 1u);
  double total = 0.0;
  for (cache::FileId f = 0; f < 4; ++f) total += cluster.ResidentFraction(f);
  EXPECT_NEAR(total, 2.0, 0.2);
}

TEST(OpusMasterDeathTest, RejectsEmptyCatalog) {
  // An empty catalog used to produce NaN capacity_units (0 bytes / 0 files)
  // that silently propagated into the PF solver; it must fail fast instead.
  cache::Catalog empty(1 * cache::kMiB);
  cache::CacheCluster cluster(TwoUserCluster(), empty);
  OpusAllocator alloc;
  EXPECT_DEATH(OpusMaster(&alloc, &cluster, OpusMasterConfig{}),
               "non-empty catalog");
}

TEST(OpusMasterTest, LearnsPreferencesFromWindow) {
  cache::CacheCluster cluster(TwoUserCluster(), FourFileCatalog());
  OpusAllocator alloc;
  OpusMasterConfig cfg;
  cfg.update_interval = 1000000;  // no auto-update during the test
  OpusMaster master(&alloc, &cluster, cfg);

  workload::AccessEvent e;
  e.user = 0;
  e.file = 1;
  for (int k = 0; k < 3; ++k) master.OnAccess(e);
  e.file = 2;
  master.OnAccess(e);

  const Matrix prefs = master.InferredPreferences();
  EXPECT_NEAR(prefs(0, 1), 0.75, 1e-12);
  EXPECT_NEAR(prefs(0, 2), 0.25, 1e-12);
  EXPECT_EQ(prefs(1, 0), 0.0);
}

TEST(OpusMasterTest, SlidingWindowForgets) {
  cache::CacheCluster cluster(TwoUserCluster(), FourFileCatalog());
  OpusAllocator alloc;
  OpusMasterConfig cfg;
  cfg.update_interval = 1000000;
  cfg.learning_window = 4;
  OpusMaster master(&alloc, &cluster, cfg);

  workload::AccessEvent e;
  e.user = 0;
  e.file = 0;
  for (int k = 0; k < 4; ++k) master.OnAccess(e);
  e.file = 3;
  for (int k = 0; k < 4; ++k) master.OnAccess(e);  // pushes file-0 out

  const Matrix prefs = master.InferredPreferences();
  EXPECT_EQ(prefs(0, 0), 0.0);
  EXPECT_NEAR(prefs(0, 3), 1.0, 1e-12);
}

TEST(OpusMasterTest, ReallocatesOnSchedule) {
  cache::CacheCluster cluster(TwoUserCluster(), FourFileCatalog());
  OpusAllocator alloc;
  OpusMasterConfig cfg;
  cfg.update_interval = 10;
  OpusMaster master(&alloc, &cluster, cfg);

  workload::AccessEvent e;
  e.user = 0;
  e.file = 0;
  for (int k = 0; k < 35; ++k) master.OnAccess(e);
  EXPECT_EQ(master.reallocations(), 3u);
}

TEST(OpusMasterTest, AllocationFollowsDemandShift) {
  cache::CacheCluster cluster(TwoUserCluster(), FourFileCatalog());
  OpusAllocator alloc;
  OpusMasterConfig cfg;
  cfg.update_interval = 1000000;
  cfg.learning_window = 50;
  OpusMaster master(&alloc, &cluster, cfg);

  workload::AccessEvent e;
  e.user = 0;
  e.file = 0;
  for (int k = 0; k < 50; ++k) master.OnAccess(e);
  e.user = 1;
  for (int k = 0; k < 40; ++k) master.OnAccess(e);
  master.Reallocate();
  EXPECT_NEAR(cluster.ResidentFraction(0), 1.0, 1e-9);

  // Demand moves to file 3; after the window slides, so does the cache.
  e.file = 3;
  e.user = 0;
  for (int k = 0; k < 50; ++k) master.OnAccess(e);
  master.Reallocate();
  EXPECT_NEAR(cluster.ResidentFraction(3), 1.0, 1e-9);
}

TEST(OpusMasterTest, AdaptiveWindowShrinksOnDrift) {
  cache::CacheCluster cluster(TwoUserCluster(), FourFileCatalog());
  OpusAllocator alloc;
  OpusMasterConfig cfg;
  cfg.update_interval = 1000000;
  cfg.learning_window = 64;
  cfg.adaptive_window = true;
  cfg.min_window = 8;
  OpusMaster master(&alloc, &cluster, cfg);

  workload::AccessEvent e;
  e.user = 0;
  e.file = 0;
  for (int k = 0; k < 64; ++k) master.OnAccess(e);
  master.Reallocate();
  const std::size_t before = master.window_size();

  e.file = 3;  // abrupt popularity shift
  for (int k = 0; k < 64; ++k) master.OnAccess(e);
  master.Reallocate();
  EXPECT_LT(master.window_size(), before);
}

TEST(OpusMasterTest, AdaptiveWindowGrowsWhenStable) {
  cache::CacheCluster cluster(TwoUserCluster(), FourFileCatalog());
  OpusAllocator alloc;
  OpusMasterConfig cfg;
  cfg.update_interval = 1000000;
  cfg.learning_window = 16;
  cfg.adaptive_window = true;
  cfg.max_window = 256;
  OpusMaster master(&alloc, &cluster, cfg);

  workload::AccessEvent e;
  e.user = 0;
  e.file = 2;
  for (int k = 0; k < 16; ++k) master.OnAccess(e);
  master.Reallocate();
  for (int k = 0; k < 16; ++k) master.OnAccess(e);
  master.Reallocate();  // identical distribution -> grow
  EXPECT_GT(master.window_size(), 16u);
}

}  // namespace
}  // namespace opus::sim
