#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace opus::sim {
namespace {

TEST(MetricsTest, CumulativeRatio) {
  HitRatioTracker t(2);
  t.Record(0, 1.0, true);
  t.Record(0, 0.0, true);
  t.Record(0, 0.5, true);
  EXPECT_NEAR(t.CumulativeRatio(0), 0.5, 1e-12);
  EXPECT_EQ(t.CumulativeRatio(1), 0.0);
}

TEST(MetricsTest, SpuriousExcludedFromRatio) {
  HitRatioTracker t(1);
  t.Record(0, 1.0, true);
  t.Record(0, 0.0, false);
  t.Record(0, 0.0, false);
  EXPECT_NEAR(t.CumulativeRatio(0), 1.0, 1e-12);
  EXPECT_EQ(t.GenuineCount(0), 1u);
  EXPECT_EQ(t.SpuriousCount(0), 2u);
}

TEST(MetricsTest, SeriesSampledEveryK) {
  MetricsConfig cfg;
  cfg.window = 4;
  cfg.sample_every = 2;
  HitRatioTracker t(1, cfg);
  for (int i = 0; i < 10; ++i) t.Record(0, 1.0, true);
  EXPECT_EQ(t.Series(0).size(), 5u);
  for (double v : t.Series(0)) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(MetricsTest, WindowForgetsOldSamples) {
  MetricsConfig cfg;
  cfg.window = 2;
  cfg.sample_every = 1;
  HitRatioTracker t(1, cfg);
  t.Record(0, 0.0, true);
  t.Record(0, 0.0, true);
  t.Record(0, 1.0, true);
  t.Record(0, 1.0, true);
  // Last sample: window holds {1.0, 1.0}.
  EXPECT_NEAR(t.Series(0).back(), 1.0, 1e-12);
  // Cumulative still remembers everything.
  EXPECT_NEAR(t.CumulativeRatio(0), 0.5, 1e-12);
}

TEST(MetricsTest, CumulativeRatiosVector) {
  HitRatioTracker t(3);
  t.Record(2, 0.8, true);
  const auto all = t.CumulativeRatios();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], 0.0);
  EXPECT_NEAR(all[2], 0.8, 1e-12);
}

}  // namespace
}  // namespace opus::sim
