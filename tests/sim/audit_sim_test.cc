// Fairness auditor end-to-end: managed OpuS simulations — including
// Stage-2 fallback scenarios — audit clean at any tax-solver thread count,
// the audit surfaces in the result's metrics/events, and non-guarantee
// policies pass through unaudited.
#include <gtest/gtest.h>

#include "core/fairride.h"
#include "core/opus.h"
#include "sim/simulator.h"
#include "workload/trace.h"

namespace opus::sim {
namespace {

cache::Catalog MakeCatalog(std::size_t files) {
  cache::Catalog c(1 * cache::kMiB);
  for (std::size_t f = 0; f < files; ++f) {
    c.Register("file-" + std::to_string(f), 8 * cache::kMiB);
  }
  return c;
}

ManagedSimConfig MakeConfig(std::uint32_t users, std::uint64_t cache_bytes) {
  ManagedSimConfig cfg;
  cfg.cluster.num_workers = 3;
  cfg.cluster.num_users = users;
  cfg.cluster.cache_capacity_bytes = cache_bytes;
  cfg.master.update_interval = 200;
  cfg.master.learning_window = 400;
  return cfg;
}

workload::Trace MakeTrace(const Matrix& prefs, std::size_t events,
                          std::uint64_t seed) {
  Rng rng(seed);
  return workload::GenerateTrace(workload::TruthfulSpecs(prefs), events, rng);
}

std::uint64_t CounterValue(const obs::MetricsSnapshot& snap,
                           const std::string& name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  ADD_FAILURE() << "counter not found: " << name;
  return 0;
}

TEST(AuditSimTest, SharingRunAuditsCleanAcrossThreadCounts) {
  Matrix prefs(2, 6, 0.0);
  prefs(0, 0) = 0.5;
  prefs(0, 1) = 0.3;
  prefs(0, 2) = 0.2;
  prefs(1, 3) = 0.6;
  prefs(1, 4) = 0.3;
  prefs(1, 5) = 0.1;
  const cache::Catalog catalog = MakeCatalog(6);
  const workload::Trace trace = MakeTrace(prefs, 1000, /*seed=*/7);

  for (unsigned threads : {1u, 8u}) {
    OpusOptions options;
    options.tax_threads = threads;
    const OpusAllocator alloc(options);
    const SimulationResult r = RunManagedSimulation(
        MakeConfig(2, 24 * cache::kMiB), alloc, catalog, trace);

    ASSERT_GT(r.reallocations, 0u);
    EXPECT_EQ(r.audit.total_violations, 0u);
    EXPECT_EQ(r.audit.windows.size(), r.reallocations);
    for (const obs::WindowAudit& w : r.audit.windows) {
      EXPECT_TRUE(w.audited);
    }
    EXPECT_EQ(CounterValue(r.metrics, "audit.windows"), r.reallocations);
    EXPECT_EQ(CounterValue(r.metrics, "audit.violations"), 0u);
    // One metric window per applied allocation.
    EXPECT_EQ(r.window_metrics.size(), r.reallocations);
  }
}

TEST(AuditSimTest, StageTwoFallbackAuditsClean) {
  // Disjoint single-file demands with capacity for one file: every window
  // taxes both users past break-even and OpuS falls back to isolation.
  // The fallback windows must audit clean (the fallback is justified and
  // the isolation guarantee holds under the applied access matrix).
  Matrix prefs(2, 2, 0.0);
  prefs(0, 0) = 1.0;
  prefs(1, 1) = 1.0;
  const cache::Catalog catalog = MakeCatalog(2);
  const workload::Trace trace = MakeTrace(prefs, 800, /*seed=*/5);

  for (unsigned threads : {1u, 8u}) {
    OpusOptions options;
    options.tax_threads = threads;
    const OpusAllocator alloc(options);
    const SimulationResult r = RunManagedSimulation(
        MakeConfig(2, 8 * cache::kMiB), alloc, catalog, trace);

    ASSERT_GT(r.reallocations, 0u);
    EXPECT_EQ(r.audit.total_violations, 0u) << r.audit.ToText();
    bool saw_fallback = false;
    for (const obs::WindowAudit& w : r.audit.windows) {
      if (!w.shared) saw_fallback = true;
    }
    EXPECT_TRUE(saw_fallback);
    // No audit.violation events leaked into the trace.
    for (const auto& e : r.trace_events) {
      EXPECT_NE(e.kind, "audit.violation");
    }
  }
}

TEST(AuditSimTest, AuditReportByteIdenticalAcrossThreadCounts) {
  Matrix prefs(2, 2, 0.0);
  prefs(0, 0) = 1.0;
  prefs(1, 1) = 1.0;
  const cache::Catalog catalog = MakeCatalog(2);
  const workload::Trace trace = MakeTrace(prefs, 800, /*seed=*/5);

  std::string first_json;
  for (unsigned threads : {1u, 8u}) {
    OpusOptions options;
    options.tax_threads = threads;
    const OpusAllocator alloc(options);
    const SimulationResult r = RunManagedSimulation(
        MakeConfig(2, 8 * cache::kMiB), alloc, catalog, trace);
    if (first_json.empty()) {
      first_json = r.audit.ToJson();
    } else {
      EXPECT_EQ(r.audit.ToJson(), first_json);
    }
  }
}

TEST(AuditSimTest, NonGuaranteePolicyRunsUnaudited) {
  Matrix prefs(2, 6, 0.0);
  prefs(0, 0) = 0.6;
  prefs(0, 1) = 0.4;
  prefs(1, 4) = 0.5;
  prefs(1, 5) = 0.5;
  const cache::Catalog catalog = MakeCatalog(6);
  const workload::Trace trace = MakeTrace(prefs, 600, /*seed=*/9);

  const FairRideAllocator alloc;
  const SimulationResult r = RunManagedSimulation(
      MakeConfig(2, 24 * cache::kMiB), alloc, catalog, trace);
  ASSERT_GT(r.reallocations, 0u);
  EXPECT_EQ(r.audit.total_violations, 0u);
  for (const obs::WindowAudit& w : r.audit.windows) {
    EXPECT_FALSE(w.audited);
  }
}

TEST(AuditSimTest, AuditCanBeDisabled) {
  Matrix prefs(2, 2, 0.0);
  prefs(0, 0) = 1.0;
  prefs(1, 1) = 1.0;
  const cache::Catalog catalog = MakeCatalog(2);
  const workload::Trace trace = MakeTrace(prefs, 400, /*seed=*/3);

  ManagedSimConfig cfg = MakeConfig(2, 8 * cache::kMiB);
  cfg.master.audit = false;
  const OpusAllocator alloc;
  const SimulationResult r =
      RunManagedSimulation(cfg, alloc, catalog, trace);
  ASSERT_GT(r.reallocations, 0u);
  EXPECT_TRUE(r.audit.windows.empty());
}

}  // namespace
}  // namespace opus::sim
