// Observability end-to-end: the registry snapshot and event trace carried
// by SimulationResult are byte-identical across thread counts and reruns
// (the determinism contract), and the mid-simulation fail/recover path is
// visible through — and verified with — the exported metrics and events.
#include <gtest/gtest.h>

#include "core/opus.h"
#include "sim/simulator.h"
#include "workload/trace.h"

namespace opus::sim {
namespace {

cache::Catalog SixFileCatalog() {
  cache::Catalog c(1 * cache::kMiB);
  for (int f = 0; f < 6; ++f) {
    c.Register("file-" + std::to_string(f), 8 * cache::kMiB);
  }
  return c;
}

Matrix TwoUserPrefs() {
  Matrix prefs(2, 6, 0.0);
  prefs(0, 0) = 0.5;
  prefs(0, 1) = 0.3;
  prefs(0, 2) = 0.2;
  prefs(1, 3) = 0.6;
  prefs(1, 4) = 0.3;
  prefs(1, 5) = 0.1;
  return prefs;
}

workload::Trace MakeTrace(std::size_t events, std::uint64_t seed) {
  Rng rng(seed);
  return workload::GenerateTrace(workload::TruthfulSpecs(TwoUserPrefs()),
                                 events, rng);
}

ManagedSimConfig MakeConfig() {
  ManagedSimConfig cfg;
  cfg.cluster.num_workers = 3;
  cfg.cluster.num_users = 2;
  cfg.cluster.cache_capacity_bytes = 24 * cache::kMiB;
  cfg.master.update_interval = 200;
  cfg.master.learning_window = 400;
  return cfg;
}

SimulationResult RunWithThreads(unsigned tax_threads,
                                const cache::Catalog& catalog,
                                const workload::Trace& trace) {
  OpusOptions options;
  options.tax_threads = tax_threads;
  const OpusAllocator alloc(options);
  return RunManagedSimulation(MakeConfig(), alloc, catalog, trace);
}

std::uint64_t CounterValue(const obs::MetricsSnapshot& snap,
                           const std::string& name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  ADD_FAILURE() << "counter not found: " << name;
  return 0;
}

bool HasEvent(const std::vector<obs::TraceEvent>& events,
              const std::string& kind) {
  for (const auto& e : events) {
    if (e.kind == kind) return true;
  }
  return false;
}

TEST(ObservabilityTest, ExportsByteIdenticalAcrossThreadCountsAndReruns) {
  const cache::Catalog catalog = SixFileCatalog();
  const workload::Trace trace = MakeTrace(1000, /*seed=*/7);

  const SimulationResult serial = RunWithThreads(1, catalog, trace);
  const SimulationResult parallel = RunWithThreads(8, catalog, trace);
  const SimulationResult rerun = RunWithThreads(8, catalog, trace);

  // Volatile metrics (solve wall time) are excluded from the snapshot, so
  // every exporter must agree byte for byte at any thread count.
  EXPECT_EQ(serial.metrics.ToText(), parallel.metrics.ToText());
  EXPECT_EQ(serial.metrics.ToCsv(), parallel.metrics.ToCsv());
  EXPECT_EQ(serial.metrics.ToJson(), parallel.metrics.ToJson());
  EXPECT_EQ(parallel.metrics.ToText(), rerun.metrics.ToText());

  EXPECT_EQ(obs::EventsToText(serial.trace_events),
            obs::EventsToText(parallel.trace_events));
  EXPECT_EQ(obs::EventsToText(parallel.trace_events),
            obs::EventsToText(rerun.trace_events));
  EXPECT_FALSE(serial.trace_events.empty());
}

TEST(ObservabilityTest, ResultCarriesRegistrySnapshot) {
  const cache::Catalog catalog = SixFileCatalog();
  const workload::Trace trace = MakeTrace(600, /*seed=*/11);
  const SimulationResult r = RunWithThreads(1, catalog, trace);

  bool found_avg = false;
  for (const auto& g : r.metrics.gauges) {
    if (g.name == "sim.average_hit_ratio") {
      found_avg = true;
      EXPECT_DOUBLE_EQ(g.value, r.average_hit_ratio);
    }
  }
  EXPECT_TRUE(found_avg);

  // Per-worker and per-user instrumentation is present and consistent with
  // the result's aggregate accounting.
  std::uint64_t reads = 0;
  for (std::size_t u = 0; u < 2; ++u) {
    reads += CounterValue(r.metrics,
                          "cluster.user." + std::to_string(u) + ".reads");
  }
  EXPECT_EQ(reads, trace.events.size());
  EXPECT_EQ(CounterValue(r.metrics, "master.reallocations"),
            static_cast<std::uint64_t>(r.reallocations));
  EXPECT_TRUE(HasEvent(r.trace_events, "master.realloc_applied"));

  // Volatile wall-time metrics must not leak into the default snapshot.
  for (const auto& h : r.metrics.histograms) {
    EXPECT_NE(h.name, "master.solve.wall_sec");
  }
}

TEST(ObservabilityTest, RecoveryHealsHitRatioBeforeNextReallocation) {
  // Fail a worker mid-simulation and recover it a few accesses later:
  // the stored CacheUpdate replay must restore full residency immediately
  // — strictly between scheduled reallocations — and the whole episode
  // must be legible from the event trace and the per-user disk counters.
  cache::CacheCluster cluster(MakeConfig().cluster, SixFileCatalog());
  const OpusAllocator alloc;
  OpusMasterConfig mcfg = MakeConfig().master;
  OpusMaster master(&alloc, &cluster, mcfg);
  const workload::Trace trace = MakeTrace(1000, /*seed=*/13);

  std::size_t i = 0;
  auto feed = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < trace.events.size(); ++k, ++i) {
      master.OnAccess(trace.events[i]);
      cluster.Read(trace.events[i].user, trace.events[i].file);
    }
  };

  feed(400);  // at least one reallocation has pinned the cache
  const double resident_before = cluster.ResidentFraction(0);
  cluster.FailWorker(1);
  feed(50);  // mid-window: degraded reads go to disk
  const std::size_t reallocs_before = master.reallocations();
  const std::uint64_t disk_before =
      CounterValue(cluster.metrics().Snapshot(), "cluster.user.0.disk_bytes") +
      CounterValue(cluster.metrics().Snapshot(), "cluster.user.1.disk_bytes");
  cluster.RecoverWorker(1);
  // No reallocation ran during the fail/recover window...
  EXPECT_EQ(master.reallocations(), reallocs_before);
  // ...yet residency is already back to the pre-failure level.
  EXPECT_NEAR(cluster.ResidentFraction(0), resident_before, 1e-12);
  EXPECT_GT(disk_before, 0u);

  const auto events = cluster.trace().Snapshot();
  EXPECT_TRUE(HasEvent(events, "cluster.worker.failed"));
  EXPECT_TRUE(HasEvent(events, "cluster.worker.recovered"));
}

}  // namespace
}  // namespace opus::sim
