// Tests for the paper's Sec. V-A client workflow: registration assigns an
// OpuS client id; preferences can be reported explicitly through the API or
// inferred from the access history, and explicit reports take precedence.
#include <gtest/gtest.h>

#include "core/opus.h"
#include "sim/opus_master.h"

namespace opus::sim {
namespace {

cache::Catalog FourFileCatalog() {
  cache::Catalog c(1 * cache::kMiB);
  for (int f = 0; f < 4; ++f) {
    c.Register("file-" + std::to_string(f), 10 * cache::kMiB);
  }
  return c;
}

cache::ClusterConfig TwoUserCluster() {
  cache::ClusterConfig cfg;
  cfg.num_workers = 2;
  cfg.num_users = 2;
  cfg.cache_capacity_bytes = 20 * cache::kMiB;
  return cfg;
}

struct Fixture {
  cache::CacheCluster cluster{TwoUserCluster(), FourFileCatalog()};
  OpusAllocator alloc;
  OpusMasterConfig cfg;
  Fixture() { cfg.update_interval = 1000000; }
};

TEST(ClientWorkflowTest, RegistrationAssignsDenseIds) {
  Fixture f;
  OpusMaster master(&f.alloc, &f.cluster, f.cfg);
  EXPECT_EQ(master.RegisterClient("spark-sql"), 0u);
  EXPECT_EQ(master.RegisterClient("ml-train"), 1u);
  EXPECT_EQ(master.num_registered_clients(), 2u);
  EXPECT_EQ(master.client_name(0), "spark-sql");
  EXPECT_EQ(master.client_name(1), "ml-train");
}

TEST(ClientWorkflowTest, ExplicitPreferencesOverrideInference) {
  Fixture f;
  OpusMaster master(&f.alloc, &f.cluster, f.cfg);
  // Access history says client 0 wants file 0...
  workload::AccessEvent e;
  e.user = 0;
  e.file = 0;
  for (int k = 0; k < 10; ++k) master.OnAccess(e);
  // ...but it reports (raw, unnormalized) preferences for file 3.
  master.ReportPreferences(0, {0.0, 0.0, 1.0, 3.0});
  EXPECT_TRUE(master.HasReportedPreferences(0));

  const Matrix prefs = master.InferredPreferences();
  EXPECT_NEAR(prefs(0, 3), 0.75, 1e-12);  // normalized explicit row
  EXPECT_NEAR(prefs(0, 2), 0.25, 1e-12);
  EXPECT_EQ(prefs(0, 0), 0.0);
}

TEST(ClientWorkflowTest, ClearRevertsToInference) {
  Fixture f;
  OpusMaster master(&f.alloc, &f.cluster, f.cfg);
  workload::AccessEvent e;
  e.user = 0;
  e.file = 1;
  for (int k = 0; k < 4; ++k) master.OnAccess(e);
  master.ReportPreferences(0, {1.0, 0.0, 0.0, 0.0});
  master.ClearReportedPreferences(0);
  EXPECT_FALSE(master.HasReportedPreferences(0));
  const Matrix prefs = master.InferredPreferences();
  EXPECT_NEAR(prefs(0, 1), 1.0, 1e-12);
}

TEST(ClientWorkflowTest, ExplicitPreferencesDriveAllocation) {
  Fixture f;
  OpusMaster master(&f.alloc, &f.cluster, f.cfg);
  master.ReportPreferences(0, {0.0, 0.0, 0.0, 1.0});
  master.ReportPreferences(1, {0.0, 0.0, 1.0, 0.0});
  master.Reallocate();
  EXPECT_NEAR(f.cluster.ResidentFraction(3), 1.0, 1e-9);
  EXPECT_NEAR(f.cluster.ResidentFraction(2), 1.0, 1e-9);
  EXPECT_NEAR(f.cluster.ResidentFraction(0), 0.0, 1e-9);
}

TEST(ClientWorkflowTest, OtherClientsUnaffectedByOnesReport) {
  Fixture f;
  OpusMaster master(&f.alloc, &f.cluster, f.cfg);
  workload::AccessEvent e;
  e.user = 1;
  e.file = 2;
  for (int k = 0; k < 6; ++k) master.OnAccess(e);
  master.ReportPreferences(0, {1.0, 0.0, 0.0, 0.0});
  const Matrix prefs = master.InferredPreferences();
  EXPECT_NEAR(prefs(1, 2), 1.0, 1e-12);  // still inferred
}

}  // namespace
}  // namespace opus::sim
