// Span-trace end-to-end: the causal span export carried by
// SimulationResult is byte-identical across tax-solver thread counts and
// reruns, sampling produces only complete trees, and the expected span
// hierarchy (cluster.read -> probe/under.read/blocking_delay,
// master.realloc -> solve/apply/audit) shows up in a managed run.
#include <set>

#include <gtest/gtest.h>

#include "core/opus.h"
#include "obs/span_trace.h"
#include "sim/simulator.h"
#include "workload/trace.h"

namespace opus::sim {
namespace {

cache::Catalog SixFileCatalog() {
  cache::Catalog c(1 * cache::kMiB);
  for (int f = 0; f < 6; ++f) {
    c.Register("file-" + std::to_string(f), 8 * cache::kMiB);
  }
  return c;
}

Matrix TwoUserPrefs() {
  Matrix prefs(2, 6, 0.0);
  prefs(0, 0) = 0.5;
  prefs(0, 1) = 0.3;
  prefs(0, 2) = 0.2;
  prefs(1, 3) = 0.6;
  prefs(1, 4) = 0.3;
  prefs(1, 5) = 0.1;
  return prefs;
}

workload::Trace MakeTrace(std::size_t events, std::uint64_t seed) {
  Rng rng(seed);
  return workload::GenerateTrace(workload::TruthfulSpecs(TwoUserPrefs()),
                                 events, rng);
}

ManagedSimConfig MakeConfig(std::uint64_t span_sample_every = 1) {
  ManagedSimConfig cfg;
  cfg.cluster.num_workers = 3;
  cfg.cluster.num_users = 2;
  cfg.cluster.cache_capacity_bytes = 24 * cache::kMiB;
  cfg.cluster.span_sample_every = span_sample_every;
  cfg.master.update_interval = 200;
  cfg.master.learning_window = 400;
  return cfg;
}

SimulationResult RunWithThreads(unsigned tax_threads,
                                const cache::Catalog& catalog,
                                const workload::Trace& trace,
                                std::uint64_t span_sample_every = 1) {
  OpusOptions options;
  options.tax_threads = tax_threads;
  const OpusAllocator alloc(options);
  return RunManagedSimulation(MakeConfig(span_sample_every), alloc, catalog,
                              trace);
}

TEST(SpanExportTest, ByteIdenticalAcrossThreadCountsAndReruns) {
  const cache::Catalog catalog = SixFileCatalog();
  const workload::Trace trace = MakeTrace(1000, /*seed=*/7);

  const SimulationResult serial = RunWithThreads(1, catalog, trace);
  const SimulationResult parallel = RunWithThreads(8, catalog, trace);
  const SimulationResult rerun = RunWithThreads(8, catalog, trace);

  ASSERT_FALSE(serial.spans.empty());
  const std::string json = obs::SpansToPerfettoJson(serial.spans);
  EXPECT_EQ(json, obs::SpansToPerfettoJson(parallel.spans));
  EXPECT_EQ(json, obs::SpansToPerfettoJson(rerun.spans));
  EXPECT_EQ(obs::SpansToText(serial.spans),
            obs::SpansToText(parallel.spans));

  // The per-window audit and metric windows obey the same contract.
  EXPECT_EQ(serial.audit.ToJson(), parallel.audit.ToJson());
  EXPECT_EQ(obs::MetricWindowsToJson(serial.window_metrics),
            obs::MetricWindowsToJson(parallel.window_metrics));
}

TEST(SpanExportTest, ManagedRunEmitsExpectedHierarchy) {
  const cache::Catalog catalog = SixFileCatalog();
  const workload::Trace trace = MakeTrace(600, /*seed=*/11);
  const SimulationResult r = RunWithThreads(1, catalog, trace);

  std::size_t reads = 0, probes = 0, solves = 0, audits = 0;
  for (const obs::SpanRecord& s : r.spans) {
    if (s.name == "cluster.read") {
      ++reads;
      EXPECT_EQ(s.parent, 0u);  // data-plane roots
    }
    if (s.name == "cluster.probe") {
      ++probes;
      EXPECT_NE(s.parent, 0u);
    }
    if (s.name == "master.solve") {
      ++solves;
      EXPECT_NE(s.parent, 0u);  // child of master.realloc
    }
    if (s.name == "master.audit") ++audits;
  }
  EXPECT_EQ(reads, trace.events.size());
  EXPECT_EQ(probes, reads);
  EXPECT_EQ(solves, r.reallocations);
  EXPECT_EQ(audits, r.reallocations);
}

TEST(SpanExportTest, SamplingYieldsOnlyCompleteTrees) {
  const cache::Catalog catalog = SixFileCatalog();
  const workload::Trace trace = MakeTrace(1000, /*seed=*/7);
  const SimulationResult full = RunWithThreads(1, catalog, trace, 1);
  const SimulationResult sampled = RunWithThreads(1, catalog, trace, 5);

  ASSERT_FALSE(sampled.spans.empty());
  EXPECT_LT(sampled.spans.size(), full.spans.size());
  // Causal muting: every non-root span's parent is present in the export.
  std::set<std::uint64_t> ids;
  for (const obs::SpanRecord& s : sampled.spans) ids.insert(s.id);
  for (const obs::SpanRecord& s : sampled.spans) {
    if (s.parent != 0) {
      EXPECT_TRUE(ids.count(s.parent)) << "orphan span " << s.name;
    }
  }
  // Sampling changes which spans are kept, not the logical clock: sampled
  // ticks are a subset of the full run's tick domain.
  EXPECT_EQ(full.spans.front().begin_tick, sampled.spans.front().begin_tick);
}

TEST(SpanExportTest, DisabledSpansLeaveResultEmpty) {
  const cache::Catalog catalog = SixFileCatalog();
  const workload::Trace trace = MakeTrace(400, /*seed=*/3);
  const SimulationResult r = RunWithThreads(1, catalog, trace, 0);
  EXPECT_TRUE(r.spans.empty());
  // The rest of the run is unaffected.
  EXPECT_GT(r.average_hit_ratio, 0.0);
  EXPECT_FALSE(r.metrics.counters.empty());
}

}  // namespace
}  // namespace opus::sim
