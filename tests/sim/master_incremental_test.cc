// OpusMaster incremental windows: the master-owned OpusWarmState
// warm-starts consecutive reallocations (visible through the
// master.solver.* metrics), live reconfiguration invalidates it, and the
// user-lifecycle hooks (RenameClient / PurgeUser) behave as the serving
// daemon's adduser/dropuser expect.
#include "sim/opus_master.h"

#include <gtest/gtest.h>

#include "core/opus.h"

namespace opus::sim {
namespace {

cache::Catalog SixFileCatalog() {
  cache::Catalog c(1 * cache::kMiB);
  for (int f = 0; f < 6; ++f) {
    c.Register("file-" + std::to_string(f), 10 * cache::kMiB);
  }
  return c;
}

cache::ClusterConfig ThreeUserCluster() {
  cache::ClusterConfig cfg;
  cfg.num_workers = 2;
  cfg.num_users = 3;
  cfg.cache_capacity_bytes = 30 * cache::kMiB;  // 3 of 6 files
  return cfg;
}

std::uint64_t CounterValue(const obs::MetricsRegistry& registry,
                           const std::string& name) {
  for (const auto& c : registry.Snapshot().counters) {
    if (c.name == name) return c.value;
  }
  ADD_FAILURE() << "counter not found: " << name;
  return 0;
}

Matrix ThreeUserPrefs() {
  Matrix prefs(3, 6, 0.0);
  prefs(0, 0) = 0.6;
  prefs(0, 1) = 0.4;
  prefs(1, 2) = 0.7;
  prefs(1, 3) = 0.3;
  prefs(2, 4) = 0.5;
  prefs(2, 5) = 0.5;
  return prefs;
}

TEST(MasterIncrementalTest, ConsecutiveWindowsWarmStart) {
  cache::CacheCluster cluster(ThreeUserCluster(), SixFileCatalog());
  OpusAllocator alloc;
  OpusMasterConfig cfg;
  cfg.update_interval = 1000000;
  OpusMaster master(&alloc, &cluster, cfg);
  master.Prime(ThreeUserPrefs());
  EXPECT_EQ(CounterValue(cluster.metrics(), "master.solver.warm_starts"),
            0u);  // first window is cold
  master.Reallocate();
  master.Reallocate();
  EXPECT_EQ(CounterValue(cluster.metrics(), "master.solver.warm_starts"),
            2u);
}

TEST(MasterIncrementalTest, DisabledIncrementalStaysCold) {
  cache::CacheCluster cluster(ThreeUserCluster(), SixFileCatalog());
  OpusAllocator alloc;
  OpusMasterConfig cfg;
  cfg.update_interval = 1000000;
  cfg.incremental = false;
  OpusMaster master(&alloc, &cluster, cfg);
  master.Prime(ThreeUserPrefs());
  master.Reallocate();
  master.Reallocate();
  EXPECT_EQ(CounterValue(cluster.metrics(), "master.solver.warm_starts"),
            0u);
}

TEST(MasterIncrementalTest, ReconfigurationInvalidatesTheWarmState) {
  cache::CacheCluster cluster(ThreeUserCluster(), SixFileCatalog());
  OpusAllocator alloc;
  OpusMasterConfig cfg;
  cfg.update_interval = 1000000;
  OpusMaster master(&alloc, &cluster, cfg);
  master.Prime(ThreeUserPrefs());
  master.Reallocate();  // warm
  master.set_capacity_units(2.0);
  master.Reallocate();  // cold again: capacity reconfig invalidated
  EXPECT_EQ(CounterValue(cluster.metrics(), "master.solver.warm_starts"),
            1u);
  master.set_allocator(&alloc);  // policy swap (even to the same one)
  master.Reallocate();
  EXPECT_EQ(CounterValue(cluster.metrics(), "master.solver.warm_starts"),
            1u);
}

TEST(MasterIncrementalTest, IncrementalMatchesColdControlLoop) {
  // Two masters over identical clusters and access streams — one keeping a
  // warm state, one always cold — must apply the same allocations.
  cache::CacheCluster warm_cluster(ThreeUserCluster(), SixFileCatalog());
  cache::CacheCluster cold_cluster(ThreeUserCluster(), SixFileCatalog());
  OpusAllocator alloc;
  OpusMasterConfig warm_cfg, cold_cfg;
  warm_cfg.update_interval = cold_cfg.update_interval = 1000000;
  cold_cfg.incremental = false;
  OpusMaster warm(&alloc, &warm_cluster, warm_cfg);
  OpusMaster cold(&alloc, &cold_cluster, cold_cfg);

  Matrix prefs = ThreeUserPrefs();
  for (int round = 0; round < 3; ++round) {
    warm.Prime(prefs);
    cold.Prime(prefs);
    const auto& a = warm.current_allocation();
    const auto& b = cold.current_allocation();
    ASSERT_EQ(a.file_alloc.size(), b.file_alloc.size());
    for (std::size_t j = 0; j < a.file_alloc.size(); ++j) {
      EXPECT_NEAR(a.file_alloc[j], b.file_alloc[j], 1e-6) << j;
    }
    for (std::size_t i = 0; i < a.taxes.size(); ++i) {
      EXPECT_NEAR(a.taxes[i], b.taxes[i], 1e-6) << i;
    }
    prefs(0, 1) += 0.1;  // drift user 0 a little each round
    prefs(0, 0) -= 0.1;
  }
}

TEST(MasterIncrementalTest, RenameClientTakesEffect) {
  cache::CacheCluster cluster(ThreeUserCluster(), SixFileCatalog());
  OpusAllocator alloc;
  OpusMaster master(&alloc, &cluster, OpusMasterConfig{});
  master.RegisterClient("alice");
  master.RegisterClient("bob");
  EXPECT_EQ(master.client_name(1), "bob");
  master.RenameClient(1, "carol");
  EXPECT_EQ(master.client_name(1), "carol");
  EXPECT_EQ(master.client_name(0), "alice");
}

TEST(MasterIncrementalTest, PurgeUserForgetsWindowAndPreferences) {
  cache::CacheCluster cluster(ThreeUserCluster(), SixFileCatalog());
  OpusAllocator alloc;
  OpusMasterConfig cfg;
  cfg.update_interval = 1000000;
  OpusMaster master(&alloc, &cluster, cfg);
  master.RegisterClient("u0");
  master.RegisterClient("u1");
  master.RegisterClient("u2");

  workload::AccessEvent e;
  for (cache::UserId u = 0; u < 3; ++u) {
    e.user = u;
    e.file = 2 * u;
    for (int k = 0; k < 4; ++k) master.OnAccess(e);
  }
  master.ReportPreferences(1, {0.0, 0.0, 1.0, 0.0, 0.0, 0.0});
  master.Reallocate();
  EXPECT_GT(master.current_allocation().reported_utilities[1], 0.0);

  master.PurgeUser(1);
  EXPECT_FALSE(master.HasReportedPreferences(1));
  const Matrix prefs = master.InferredPreferences();
  for (std::size_t j = 0; j < 6; ++j) EXPECT_EQ(prefs(1, j), 0.0);

  // The purged slot holds a zero row: next window allocates it nothing
  // while the survivors keep their shares.
  master.Reallocate();
  const auto& r = master.current_allocation();
  EXPECT_EQ(r.reported_utilities[1], 0.0);
  EXPECT_GT(r.reported_utilities[0], 0.0);
  EXPECT_GT(r.reported_utilities[2], 0.0);
  EXPECT_EQ(r.taxes[1], 0.0);

  // Survivors' window counts are untouched by the purge.
  EXPECT_NEAR(prefs(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(prefs(2, 4), 1.0, 1e-12);
}

}  // namespace
}  // namespace opus::sim
