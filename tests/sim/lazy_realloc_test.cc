// Lazy reallocation: stable inferred preferences skip the Algorithm-1 run;
// real drift still triggers it.
#include <gtest/gtest.h>

#include "core/opus.h"
#include "sim/opus_master.h"

namespace opus::sim {
namespace {

cache::Catalog Catalog4() {
  cache::Catalog c(1 * cache::kMiB);
  for (int f = 0; f < 4; ++f) {
    c.Register("file-" + std::to_string(f), 10 * cache::kMiB);
  }
  return c;
}

cache::ClusterConfig Cluster1() {
  cache::ClusterConfig cfg;
  cfg.num_workers = 2;
  cfg.num_users = 1;
  cfg.cache_capacity_bytes = 20 * cache::kMiB;
  return cfg;
}

TEST(LazyReallocTest, StablePreferencesSkipTheSolve) {
  cache::CacheCluster cluster(Cluster1(), Catalog4());
  OpusAllocator alloc;
  OpusMasterConfig cfg;
  cfg.update_interval = 10;
  cfg.lazy_threshold = 0.05;
  OpusMaster master(&alloc, &cluster, cfg);

  workload::AccessEvent e;
  e.user = 0;
  e.file = 0;
  for (int k = 0; k < 50; ++k) master.OnAccess(e);  // 5 scheduled updates
  EXPECT_EQ(master.reallocations(), 1u);   // only the first one solved
  EXPECT_EQ(master.skipped_reallocations(), 4u);
  EXPECT_NEAR(cluster.ResidentFraction(0), 1.0, 1e-9);
}

TEST(LazyReallocTest, DriftStillTriggers) {
  cache::CacheCluster cluster(Cluster1(), Catalog4());
  OpusAllocator alloc;
  OpusMasterConfig cfg;
  cfg.update_interval = 10;
  cfg.learning_window = 20;
  cfg.lazy_threshold = 0.05;
  OpusMaster master(&alloc, &cluster, cfg);

  workload::AccessEvent e;
  e.user = 0;
  e.file = 0;
  for (int k = 0; k < 20; ++k) master.OnAccess(e);
  e.file = 3;  // demand moves entirely
  for (int k = 0; k < 30; ++k) master.OnAccess(e);
  EXPECT_GE(master.reallocations(), 2u);
  EXPECT_NEAR(cluster.ResidentFraction(3), 1.0, 1e-9);
}

TEST(LazyReallocTest, DisabledByDefault) {
  cache::CacheCluster cluster(Cluster1(), Catalog4());
  OpusAllocator alloc;
  OpusMasterConfig cfg;
  cfg.update_interval = 10;
  OpusMaster master(&alloc, &cluster, cfg);
  workload::AccessEvent e;
  e.user = 0;
  e.file = 0;
  for (int k = 0; k < 50; ++k) master.OnAccess(e);
  EXPECT_EQ(master.reallocations(), 5u);
  EXPECT_EQ(master.skipped_reallocations(), 0u);
}

}  // namespace
}  // namespace opus::sim
