// Prometheus text exporter — name sanitization, per-family HELP/TYPE
// headers, cumulative histogram buckets, summary quantiles, and an
// in-process exposition lint (no duplicate series, every series belongs
// to a declared family).
#include "obs/prometheus.h"

#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/latency.h"
#include "obs/metrics.h"

namespace opus::obs {
namespace {

MetricsSnapshot MakeSnapshot() {
  MetricsRegistry reg;
  reg.counter("cluster.worker.0.mem_hits").Increment(12);
  reg.counter("master.solver.solves").Increment(3);
  reg.gauge("master.window.size").Set(1.5);
  Histogram& h =
      reg.histogram("cluster.read.latency_sec", {0.001, 0.01, 0.1});
  h.Observe(0.0005);
  h.Observe(0.005);
  h.Observe(0.5);
  return reg.Snapshot();
}

std::vector<LatencySample> MakeLatency() {
  RuntimeTelemetry t;
  LogLinearHistogram& h = t.histogram("serve.read.managed_ns");
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<std::uint64_t>(i));
  return t.Snapshot();
}

TEST(PrometheusNameTest, SanitizesAndPrefixes) {
  EXPECT_EQ(PrometheusName("cluster.worker.0.mem_hits"),
            "opus_cluster_worker_0_mem_hits");
  EXPECT_EQ(PrometheusName("weird-name+x"), "opus_weird_name_x");
  EXPECT_EQ(PrometheusName(""), "opus_");
}

TEST(PrometheusExportTest, EmitsHelpTypeAndValues) {
  const std::string text = MetricsToPrometheus(MakeSnapshot(), MakeLatency());
  EXPECT_NE(text.find("# HELP opus_cluster_worker_0_mem_hits "),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE opus_cluster_worker_0_mem_hits counter"),
            std::string::npos);
  EXPECT_NE(text.find("opus_cluster_worker_0_mem_hits 12\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE opus_master_window_size gauge"),
            std::string::npos);
  EXPECT_NE(text.find("opus_master_window_size 1.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE opus_cluster_read_latency_sec histogram"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE opus_serve_read_managed_ns summary"),
            std::string::npos);
  // The HELP line carries the original dotted name for traceability.
  EXPECT_NE(text.find("OpuS counter cluster.worker.0.mem_hits"),
            std::string::npos);
}

TEST(PrometheusExportTest, HistogramBucketsAreCumulativeWithInf) {
  const std::string text = MetricsToPrometheus(MakeSnapshot(), {});
  EXPECT_NE(
      text.find("opus_cluster_read_latency_sec_bucket{le=\"0.001\"} 1\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("opus_cluster_read_latency_sec_bucket{le=\"0.01\"} 2\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("opus_cluster_read_latency_sec_bucket{le=\"0.1\"} 2\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("opus_cluster_read_latency_sec_bucket{le=\"+Inf\"} 3\n"),
      std::string::npos);
  EXPECT_NE(text.find("opus_cluster_read_latency_sec_count 3\n"),
            std::string::npos);
}

TEST(PrometheusExportTest, SummaryQuantileLadder) {
  const std::string text = MetricsToPrometheus(MetricsSnapshot{},
                                               MakeLatency());
  for (const char* q : {"0.5", "0.9", "0.99", "0.999"}) {
    EXPECT_NE(text.find("opus_serve_read_managed_ns{quantile=\"" +
                        std::string(q) + "\"} "),
              std::string::npos)
        << q;
  }
  EXPECT_NE(text.find("opus_serve_read_managed_ns_count 1000\n"),
            std::string::npos);
}

// The lint the smoke test runs with awk, in-process: series lines must be
// unique and every series must belong to a family with HELP + TYPE.
TEST(PrometheusExportTest, ExpositionLint) {
  const std::string text = MetricsToPrometheus(MakeSnapshot(), MakeLatency());
  std::set<std::string> help, type, series;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    std::istringstream fields(line);
    std::string a, b, c;
    fields >> a >> b >> c;
    if (a == "#") {
      ASSERT_TRUE(b == "HELP" || b == "TYPE") << line;
      (b == "HELP" ? help : type).insert(c);
      continue;
    }
    ASSERT_TRUE(series.insert(line).second) << "duplicate series: " << line;
    std::string name = line.substr(0, line.find_first_of("{ "));
    std::string family = name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::size_t pos = family.rfind(suffix);
      if (pos != std::string::npos &&
          pos + std::string(suffix).size() == family.size() &&
          (help.count(family.substr(0, pos)) != 0)) {
        family = family.substr(0, pos);
        break;
      }
    }
    EXPECT_TRUE(help.count(family) == 1 || help.count(name) == 1)
        << "no HELP for " << line;
    EXPECT_TRUE(type.count(family) == 1 || type.count(name) == 1)
        << "no TYPE for " << line;
  }
  EXPECT_FALSE(series.empty());
}

TEST(PrometheusExportTest, NonFiniteGaugesRenderPrometheusStyle) {
  MetricsRegistry reg;
  reg.gauge("g.pos_inf").Set(std::numeric_limits<double>::infinity());
  reg.gauge("g.neg_inf").Set(-std::numeric_limits<double>::infinity());
  reg.gauge("g.nan").Set(std::numeric_limits<double>::quiet_NaN());
  const std::string text = MetricsToPrometheus(reg.Snapshot(), {});
  EXPECT_NE(text.find("opus_g_pos_inf +Inf\n"), std::string::npos);
  EXPECT_NE(text.find("opus_g_neg_inf -Inf\n"), std::string::npos);
  EXPECT_NE(text.find("opus_g_nan NaN\n"), std::string::npos);
}

TEST(PrometheusExportTest, EmptyInputsProduceEmptyExposition) {
  EXPECT_EQ(MetricsToPrometheus(MetricsSnapshot{}, {}), "");
}

}  // namespace
}  // namespace opus::obs
