#include "obs/metrics.h"

#include <gtest/gtest.h>

namespace opus::obs {
namespace {

TEST(MetricsRegistryTest, CounterStartsAtZeroAndIncrements) {
  MetricsRegistry reg;
  Counter& c = reg.counter("cluster.worker.0.mem_hits");
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(MetricsRegistryTest, CreationIsIdempotent) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.count");
  a.Increment(7);
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 7u);
  Gauge& g1 = reg.gauge("x.level");
  Gauge& g2 = reg.gauge("x.level");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = reg.histogram("x.latency", {1.0, 2.0});
  Histogram& h2 = reg.histogram("x.latency", {1.0, 2.0});
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistryTest, ReferencesSurviveLaterRegistrations) {
  // Handles are cached at construction time by the instrumented components;
  // std::map node stability must keep them valid as the registry grows.
  MetricsRegistry reg;
  Counter& first = reg.counter("m.a");
  first.Increment();
  for (int i = 0; i < 100; ++i) {
    reg.counter("m.fill" + std::to_string(i));
  }
  EXPECT_EQ(first.value(), 1u);
  EXPECT_EQ(&first, &reg.counter("m.a"));
}

TEST(MetricsRegistryTest, HistogramBucketsAreUpperInclusive) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", {10.0, 20.0});
  h.Observe(10.0);  // == bound -> that bucket
  h.Observe(10.5);
  h.Observe(25.0);  // +inf bucket
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 45.5);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry reg;
  reg.counter("z.last").Increment();
  reg.counter("a.first").Increment(2);
  reg.gauge("m.mid").Set(0.5);
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.first");
  EXPECT_EQ(snap.counters[1].name, "z.last");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].name, "m.mid");
}

TEST(MetricsRegistryTest, VolatileMetricsExcludedByDefault) {
  MetricsRegistry reg;
  reg.counter("stable").Increment();
  reg.histogram("solve.wall_sec", {0.1, 1.0}).Observe(0.5);
  reg.MarkVolatile("solve.wall_sec");
  const MetricsSnapshot without = reg.Snapshot();
  EXPECT_TRUE(without.histograms.empty());
  ASSERT_EQ(without.counters.size(), 1u);
  const MetricsSnapshot with = reg.Snapshot(/*include_volatile=*/true);
  ASSERT_EQ(with.histograms.size(), 1u);
  EXPECT_EQ(with.histograms[0].name, "solve.wall_sec");
}

TEST(MetricsRegistryTest, FormatForPathPicksBySuffix) {
  EXPECT_EQ(FormatForPath("out/metrics.json"), ExportFormat::kJson);
  EXPECT_EQ(FormatForPath("metrics.csv"), ExportFormat::kCsv);
  EXPECT_EQ(FormatForPath("metrics.txt"), ExportFormat::kText);
  EXPECT_EQ(FormatForPath("metrics"), ExportFormat::kText);
}

TEST(MetricsRegistryTest, TextExportGolden) {
  MetricsRegistry reg;
  reg.counter("c.hits").Increment(3);
  reg.gauge("g.ratio").Set(0.25);
  Histogram& h = reg.histogram("h.lat", {1.0, 10.0});
  h.Observe(0.5);
  h.Observe(5.0);
  EXPECT_EQ(reg.Snapshot().ToText(),
            "counter c.hits 3\n"
            "gauge g.ratio 0.25\n"
            "histogram h.lat count=2 sum=5.5 buckets=le1:1,le10:1,inf:0\n");
}

TEST(MetricsRegistryTest, CsvExportGolden) {
  MetricsRegistry reg;
  reg.counter("c.hits").Increment(3);
  reg.histogram("h.lat", {1.0}).Observe(2.0);
  EXPECT_EQ(reg.Snapshot().ToCsv(),
            "kind,name,field,value\n"
            "counter,c.hits,value,3\n"
            "histogram,h.lat,count,1\n"
            "histogram,h.lat,sum,2\n"
            "histogram,h.lat,bucket_le1,0\n"
            "histogram,h.lat,bucket_inf,1\n");
}

TEST(MetricsRegistryTest, JsonExportParsesShape) {
  MetricsRegistry reg;
  reg.counter("c").Increment();
  reg.gauge("g").Set(1.5);
  reg.histogram("h", {2.0}).Observe(1.0);
  const std::string json = reg.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"g\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"bounds\": [2]"), std::string::npos);
  EXPECT_NE(json.find("\"counts\": [1, 0]"), std::string::npos);
}

TEST(MetricsRegistryTest, SnapshotExportsAreStableAcrossCalls) {
  MetricsRegistry reg;
  reg.counter("a").Increment(5);
  reg.gauge("b").Set(3.14159);
  reg.histogram("c", {1.0, 2.0, 3.0}).Observe(2.5);
  const MetricsSnapshot s1 = reg.Snapshot();
  const MetricsSnapshot s2 = reg.Snapshot();
  EXPECT_EQ(s1.ToText(), s2.ToText());
  EXPECT_EQ(s1.ToCsv(), s2.ToCsv());
  EXPECT_EQ(s1.ToJson(), s2.ToJson());
}

}  // namespace
}  // namespace opus::obs
