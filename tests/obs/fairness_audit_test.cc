#include "obs/fairness_audit.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/matrix.h"
#include "core/isolated.h"
#include "core/opus.h"
#include "core/types.h"
#include "obs/event_trace.h"
#include "obs/metrics.h"

namespace opus::obs {
namespace {

CachingProblem TwoUserProblem() {
  return CachingProblem::FromRaw(
      Matrix::FromRows({{0.4, 0.6, 0.0}, {0.0, 0.6, 0.4}}), 2.0);
}

TEST(FairnessAuditTest, HonestOpusWindowAuditsClean) {
  const CachingProblem p = TwoUserProblem();
  OpusDiagnostics diag;
  const auto r = OpusAllocator().AllocateWithDiagnostics(p, &diag);

  MetricsRegistry registry;
  EventTrace trace;
  FairnessAuditor auditor;
  auditor.Attach(&registry, &trace);
  const WindowAudit& audit = auditor.AuditWindow(1, p, r, &diag);

  EXPECT_TRUE(audit.audited);
  EXPECT_TRUE(audit.violations.empty());
  EXPECT_EQ(auditor.report().total_violations, 0u);
  ASSERT_EQ(audit.users.size(), 2u);
  for (const UserWindowAudit& u : audit.users) {
    // The audited arithmetic must reproduce the mechanism's stage-1 view.
    EXPECT_NEAR(u.pf_utility, diag.pf_utilities[u.user], 1e-9);
    EXPECT_NEAR(u.tax, diag.taxes[u.user], 1e-9);
    EXPECT_GE(u.net_utility, u.isolated_utility - 1e-6);
  }
  EXPECT_EQ(registry.counter("audit.windows").value(), 1u);
  EXPECT_EQ(registry.counter("audit.violations").value(), 0u);
  EXPECT_TRUE(trace.events().empty());
}

TEST(FairnessAuditTest, RiggedInflatedTaxTripsIsolationCheck) {
  // Simulate a mechanism bug that over-blocks user 0: double its tax and
  // halve its applied access row. The stage-1 diagnostics still look
  // legitimate — only the applied access matrix betrays the bug, which is
  // exactly what the auditor recomputes from.
  const CachingProblem p = TwoUserProblem();
  auto r = OpusAllocator().Allocate(p);
  ASSERT_TRUE(r.shared);
  r.taxes[0] += std::log(2.0);
  r.blocking[0] = 1.0 - (1.0 - r.blocking[0]) / 2.0;
  for (std::size_t j = 0; j < r.access.cols(); ++j) {
    r.access(0, j) /= 2.0;
  }

  MetricsRegistry registry;
  EventTrace trace;
  FairnessAuditor auditor;
  auditor.Attach(&registry, &trace);
  const WindowAudit& audit = auditor.AuditWindow(7, p, r);

  bool found_isolation = false;
  for (const AuditViolation& v : audit.violations) {
    if (v.check == "isolation" && v.user == 0) {
      found_isolation = true;
      EXPECT_GT(v.magnitude, 0.0);
      EXPECT_EQ(v.window, 7u);
    }
  }
  EXPECT_TRUE(found_isolation);
  EXPECT_GE(registry.counter("audit.violations").value(), 1u);
  // One structured event per violation.
  ASSERT_FALSE(trace.events().empty());
  EXPECT_EQ(trace.events()[0].kind, "audit.violation");
}

TEST(FairnessAuditTest, JustifiedFallbackAuditsClean) {
  // Disjoint demands with tight capacity: the canonical Stage-2 fallback
  // (each user taxed log 2 > break-even). The fallback must audit clean.
  CachingProblem p;
  p.preferences = Matrix::FromRows({{1.0, 0.0}, {0.0, 1.0}});
  p.capacity = 1.0;
  OpusDiagnostics diag;
  const auto r = OpusAllocator().AllocateWithDiagnostics(p, &diag);
  ASSERT_FALSE(r.shared);

  FairnessAuditor auditor;
  const WindowAudit& audit = auditor.AuditWindow(1, p, r, &diag);
  EXPECT_TRUE(audit.audited);
  EXPECT_FALSE(audit.shared);
  EXPECT_TRUE(audit.violations.empty());
}

TEST(FairnessAuditTest, UnjustifiedFallbackFlagged) {
  // An isolated outcome labeled "opus" whose own diagnostics show every
  // user at or above its isolated baseline: the Stage-2 gate had no reason
  // to fire, so the auditor must flag the fallback as unjustified.
  const CachingProblem p = TwoUserProblem();
  auto r = IsolatedAllocator().Allocate(p);
  r.policy = "opus";
  OpusDiagnostics diag;
  diag.pf_utilities = {0.9, 0.9};
  diag.net_utilities = {0.8, 0.8};
  diag.isolated_utilities = {0.6, 0.6};
  diag.settled_on_sharing = false;

  FairnessAuditor auditor;
  const WindowAudit& audit = auditor.AuditWindow(2, p, r, &diag);
  bool found = false;
  for (const AuditViolation& v : audit.violations) {
    if (v.check == "break_even") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(FairnessAuditTest, NonGuaranteePoliciesPassThroughUnaudited) {
  const CachingProblem p = TwoUserProblem();
  auto r = OpusAllocator().Allocate(p);
  r.policy = "fairride";

  MetricsRegistry registry;
  FairnessAuditor auditor;
  auditor.Attach(&registry, nullptr);
  const WindowAudit& audit = auditor.AuditWindow(1, p, r);
  EXPECT_FALSE(audit.audited);
  EXPECT_TRUE(audit.violations.empty());
  EXPECT_TRUE(audit.users.empty());
  // The window is still counted so unaudited gaps are visible.
  EXPECT_EQ(registry.counter("audit.windows").value(), 1u);
}

TEST(FairnessAuditTest, ReportJsonRoundTripsByteIdentically) {
  const CachingProblem p = TwoUserProblem();
  OpusDiagnostics diag;
  const auto r = OpusAllocator().AllocateWithDiagnostics(p, &diag);
  FairnessAuditor auditor;
  auditor.AuditWindow(1, p, r, &diag);
  // A second window with a rigged result so the report carries violations.
  auto rigged = r;
  rigged.taxes[0] += 1.0;
  for (std::size_t j = 0; j < rigged.access.cols(); ++j) {
    rigged.access(0, j) *= 0.3;
  }
  auditor.AuditWindow(2, p, rigged);

  const std::string json = auditor.report().ToJson();
  AuditReport loaded;
  ASSERT_TRUE(ParseAuditJson(json, &loaded));
  EXPECT_EQ(loaded.ToJson(), json);
  EXPECT_EQ(loaded.total_violations, auditor.report().total_violations);
  ASSERT_EQ(loaded.windows.size(), 2u);
  EXPECT_GT(loaded.windows[1].violations.size(), 0u);
}

TEST(FairnessAuditTest, InfiniteBreakEvenTaxSerializes) {
  // A user with an empty preference row has U-bar = 0, so its break-even
  // tax is +inf; JsonNumber writes it as a quoted "inf" and the loader
  // restores the infinity.
  CachingProblem p = CachingProblem::FromRaw(
      Matrix::FromRows({{0.0, 0.0, 0.0}, {0.4, 0.3, 0.3}}), 2.0);
  OpusDiagnostics diag;
  const auto r = OpusAllocator().AllocateWithDiagnostics(p, &diag);
  FairnessAuditor auditor;
  const WindowAudit& audit = auditor.AuditWindow(1, p, r, &diag);
  ASSERT_EQ(audit.users.size(), 2u);
  EXPECT_TRUE(std::isinf(audit.users[0].break_even_tax));
  EXPECT_TRUE(audit.violations.empty());

  AuditReport loaded;
  ASSERT_TRUE(ParseAuditJson(auditor.report().ToJson(), &loaded));
  EXPECT_TRUE(std::isinf(loaded.windows[0].users[0].break_even_tax));
  EXPECT_GT(loaded.windows[0].users[0].break_even_tax, 0.0);
}

}  // namespace
}  // namespace opus::obs
