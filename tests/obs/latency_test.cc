// LogLinearHistogram / RuntimeTelemetry — bucket-math invariants, quantile
// accuracy against a sorted-vector oracle, and the merge property that the
// serving engine's per-thread-drain design relies on.
#include "obs/latency.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace opus::obs {
namespace {

using Hist = LogLinearHistogram;

TEST(LogLinearHistogramTest, BucketBoundsContainTheirValues) {
  // Every probe value must land in a bucket whose [lower, upper] range
  // contains it, and the bucket index must be monotone in the value.
  std::vector<std::uint64_t> probes = {0, 1, 2, 3, 31, 32, 33, 63, 64, 65,
                                       1000, 4095, 4096, 1u << 20};
  for (unsigned e = 0; e < Hist::kMaxExp; ++e) {
    probes.push_back((1ull << e) - 1);
    probes.push_back(1ull << e);
    probes.push_back((1ull << e) + 1);
  }
  std::size_t prev_index = 0;
  std::sort(probes.begin(), probes.end());
  for (const std::uint64_t v : probes) {
    const std::size_t idx = Hist::BucketIndex(v);
    ASSERT_LT(idx, Hist::kNumBuckets) << "value " << v;
    EXPECT_LE(Hist::BucketLowerBound(idx), v) << "value " << v;
    EXPECT_GE(Hist::BucketUpperBound(idx), v) << "value " << v;
    EXPECT_GE(idx, prev_index) << "value " << v;
    prev_index = idx;
  }
}

TEST(LogLinearHistogramTest, BucketRelativeWidthIsBounded) {
  // Above the linear range, upper/lower <= 1 + 1/kSubCount per bucket —
  // the histogram's quantile error bound.
  for (std::size_t idx = 0; idx < Hist::kNumBuckets; ++idx) {
    const std::uint64_t lo = Hist::BucketLowerBound(idx);
    const std::uint64_t hi = Hist::BucketUpperBound(idx);
    ASSERT_LE(lo, hi);
    if (lo >= Hist::kSubCount) {
      EXPECT_LE(static_cast<double>(hi - lo),
                static_cast<double>(lo) / Hist::kSubCount + 1.0)
          << "bucket " << idx;
    }
  }
}

TEST(LogLinearHistogramTest, CountSumMinMax) {
  Hist h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  h.Record(100);
  h.Record(7);
  h.Record(100000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 100107u);
  EXPECT_EQ(h.min(), 7u);
  EXPECT_EQ(h.max(), 100000u);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);
}

TEST(LogLinearHistogramTest, HugeValuesClampConsistently) {
  Hist h;
  h.Record(~0ull);  // far beyond 2^kMaxExp - 1
  const std::uint64_t clamp = (1ull << Hist::kMaxExp) - 1;
  EXPECT_EQ(h.max(), clamp);
  EXPECT_EQ(h.sum(), clamp);  // sum accumulates the clamped value
  EXPECT_GE(h.ValueAtQuantile(1.0), clamp);
}

TEST(LogLinearHistogramTest, QuantilesMatchSortedVectorOracle) {
  // Property test: on log-uniform random data every reported quantile must
  // sit within one bucket width above the exact nearest-rank value.
  Rng rng(42);
  Hist h;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    const double exp = rng.NextDouble() * 30.0;  // values up to ~2^30
    const auto v = static_cast<std::uint64_t>(std::pow(2.0, exp));
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    std::size_t rank = 0;
    if (q > 0.0) {
      rank = static_cast<std::size_t>(
                 std::ceil(q * static_cast<double>(values.size()))) -
             1;
      rank = std::min(rank, values.size() - 1);
    }
    const std::uint64_t exact = values[rank];
    const std::uint64_t est = h.ValueAtQuantile(q);
    EXPECT_GE(est, exact) << "q=" << q;
    // Bucket upper bound overshoots by at most one bucket width.
    EXPECT_LE(static_cast<double>(est),
              static_cast<double>(exact) +
                  static_cast<double>(exact) / Hist::kSubCount + 1.0)
        << "q=" << q;
  }
}

TEST(LogLinearHistogramTest, MergeEqualsRecordingTheUnion) {
  Rng rng(7);
  Hist a, b, both;
  for (int i = 0; i < 5000; ++i) {
    const auto v = static_cast<std::uint64_t>(rng.NextDouble() * 1e9);
    if (i % 3 == 0) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    both.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.sum(), both.sum());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  for (const double q : {0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(a.ValueAtQuantile(q), both.ValueAtQuantile(q)) << "q=" << q;
  }
}

TEST(LogLinearHistogramTest, MergeIntoEmptyAndWithEmpty) {
  Hist a, b;
  b.Record(10);
  b.Record(20);
  a.Merge(b);  // empty.Merge(nonempty)
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 20u);
  Hist empty;
  a.Merge(empty);  // nonempty.Merge(empty) is a no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
}

TEST(RuntimeTelemetryTest, HistogramIsIdempotentAndFindable) {
  RuntimeTelemetry t;
  LogLinearHistogram& h1 = t.histogram("serve.read.ns");
  LogLinearHistogram& h2 = t.histogram("serve.read.ns");
  EXPECT_EQ(&h1, &h2);
  h1.Record(5);
  EXPECT_EQ(t.Find("serve.read.ns"), &h1);
  EXPECT_EQ(t.Find("absent"), nullptr);
}

TEST(RuntimeTelemetryTest, SnapshotIsSortedAndIncludesEmpty) {
  RuntimeTelemetry t;
  t.histogram("z.last");
  t.histogram("a.first").Record(100);
  const std::vector<LatencySample> samples = t.Snapshot();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].name, "a.first");
  EXPECT_EQ(samples[0].count, 1u);
  EXPECT_EQ(samples[1].name, "z.last");
  EXPECT_EQ(samples[1].count, 0u);  // empty instruments still show up
}

TEST(RuntimeTelemetryTest, SamplesToJsonIsWellFormed) {
  RuntimeTelemetry t;
  for (int i = 1; i <= 100; ++i) {
    t.histogram("daemon.request.ns").Record(static_cast<std::uint64_t>(i));
  }
  const std::string json = RuntimeTelemetry::SamplesToJson(t.Snapshot());
  EXPECT_NE(json.find("\"name\":\"daemon.request.ns\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":100"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p999\":"), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_EQ(RuntimeTelemetry::SamplesToJson({}), "[]");
}

}  // namespace
}  // namespace opus::obs
