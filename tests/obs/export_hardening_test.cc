// Exporter hardening: free-form event/span attribute values (commas,
// quotes, newlines, control bytes) must not be able to corrupt a CSV or
// JSON export, and empty exports must stay well-formed and loadable.
#include <gtest/gtest.h>

#include "obs/event_trace.h"
#include "obs/fairness_audit.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span_trace.h"

namespace opus::obs {
namespace {

constexpr char kNasty[] = "a,b\"c\"\nd\\e";

TEST(ExportHardeningTest, EventCsvQuotesHostileValues) {
  EventTrace trace;
  trace.Emit("kind,with\"comma", {{"k", kNasty}});
  const std::string csv = EventsToCsv(trace.Snapshot());
  // Header plus one record; the record spans two physical lines because the
  // value's newline is preserved inside a quoted cell.
  ASSERT_EQ(csv.find("seq,kind,fields"), 0u);
  // The hostile kind is quoted with its inner quote doubled.
  EXPECT_NE(csv.find("\"kind,with\"\"comma\""), std::string::npos);
  // A parser that honors RFC-4180 quoting sees exactly one data record:
  // count unquoted newlines.
  std::size_t records = 0;
  bool quoted = false;
  for (char c : csv) {
    if (c == '"') quoted = !quoted;
    if (c == '\n' && !quoted) ++records;
  }
  EXPECT_EQ(records, 2u);  // header + one row
}

TEST(ExportHardeningTest, EventJsonStaysParseableWithHostileValues) {
  EventTrace trace;
  trace.Emit("evil\"kind", {{"k", kNasty}, {"ctl", std::string(1, '\x02')}});
  const std::string json = EventsToJson(trace.Snapshot());
  const auto doc = ParseJson(json);
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_array());
  ASSERT_EQ(doc->items.size(), 1u);
  EXPECT_EQ(doc->items[0].Find("kind")->StringOr(""), "evil\"kind");
  EXPECT_EQ(doc->items[0].Find("k")->StringOr(""), kNasty);
}

TEST(ExportHardeningTest, SpanExportsSurviveHostileAttrValues) {
  SpanTrace trace;
  const auto token = trace.Begin("span");
  trace.AddAttr(token, "note", kNasty);
  trace.End(token);
  const auto spans = trace.Snapshot();

  const auto loaded = ParseSpansPerfettoJson(SpansToPerfettoJson(spans));
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ((*loaded)[0].attrs.size(), 1u);
  EXPECT_EQ((*loaded)[0].attrs[0].second, kNasty);

  // CSV: the attrs cell is quoted, so the value's comma and newline stay
  // inside one logical cell.
  const std::string csv = SpansToCsv(spans);
  EXPECT_NE(csv.find('"'), std::string::npos);
}

TEST(ExportHardeningTest, MetricJsonEscapesAndRoundTrips) {
  MetricsRegistry registry;
  registry.counter("a.b").Increment(3);
  registry.gauge("g").Set(1.5);
  registry.histogram("h", {1.0, 2.0}).Observe(0.5);
  const MetricsSnapshot snap = registry.Snapshot();

  MetricsSnapshot from_json, from_text;
  ASSERT_TRUE(ParseMetricsJson(snap.ToJson(), &from_json));
  ASSERT_TRUE(ParseMetricsText(snap.ToText(), &from_text));
  EXPECT_EQ(from_json.ToJson(), snap.ToJson());
  EXPECT_EQ(from_text.ToText(), snap.ToText());
}

TEST(ExportHardeningTest, EmptyExportsAreValid) {
  const MetricsSnapshot empty;
  EXPECT_TRUE(ParseJson(empty.ToJson()).has_value());
  MetricsSnapshot loaded;
  EXPECT_TRUE(ParseMetricsJson(empty.ToJson(), &loaded));
  EXPECT_TRUE(ParseMetricsText(empty.ToText(), &loaded));

  EventTrace trace;
  EXPECT_TRUE(ParseJson(EventsToJson(trace.Snapshot())).has_value());

  const AuditReport report;
  AuditReport loaded_report;
  EXPECT_TRUE(ParseAuditJson(report.ToJson(), &loaded_report));
  EXPECT_EQ(loaded_report.total_violations, 0u);
  EXPECT_TRUE(loaded_report.windows.empty());
}

TEST(ExportHardeningTest, DiffSnapshotsSemantics) {
  MetricsRegistry before_reg;
  before_reg.counter("c").Increment(5);
  before_reg.gauge("g").Set(1.0);
  before_reg.histogram("h", {10.0}).Observe(3.0);
  const MetricsSnapshot before = before_reg.Snapshot();

  MetricsRegistry after_reg;
  after_reg.counter("c").Increment(8);
  after_reg.counter("new").Increment(2);
  after_reg.gauge("g").Set(4.0);
  auto& h = after_reg.histogram("h", {10.0});
  h.Observe(3.0);
  h.Observe(20.0);
  const MetricsSnapshot after = after_reg.Snapshot();

  const MetricsSnapshot delta = DiffSnapshots(before, after);
  for (const auto& c : delta.counters) {
    if (c.name == "c") {
      EXPECT_EQ(c.value, 3u);
    }
    if (c.name == "new") {
      EXPECT_EQ(c.value, 2u);  // treated as all-new
    }
  }
  for (const auto& g : delta.gauges) {
    if (g.name == "g") {
      EXPECT_DOUBLE_EQ(g.value, 4.0);  // level, not flow
    }
  }
  for (const auto& hist : delta.histograms) {
    if (hist.name == "h") {
      // One new observation landed in the overflow bucket.
      ASSERT_EQ(hist.counts.size(), 2u);
      EXPECT_EQ(hist.counts[0], 0u);
      EXPECT_EQ(hist.counts[1], 1u);
    }
  }
}

TEST(ExportHardeningTest, WindowedSnapshotsCaptureDeltas) {
  MetricsRegistry registry;
  WindowedSnapshots windows(/*max_windows=*/2);
  registry.counter("c").Increment(4);
  windows.Capture(registry, 1);
  registry.counter("c").Increment(6);
  windows.Capture(registry, 2);
  ASSERT_EQ(windows.windows().size(), 2u);
  EXPECT_EQ(windows.windows()[0].delta.counters[0].value, 4u);
  EXPECT_EQ(windows.windows()[1].delta.counters[0].value, 6u);
  // Bounded retention: the oldest window falls off and is counted.
  registry.counter("c").Increment(1);
  windows.Capture(registry, 3);
  ASSERT_EQ(windows.windows().size(), 2u);
  EXPECT_EQ(windows.windows()[0].window, 2u);
  EXPECT_EQ(windows.dropped(), 1u);
  // The windows export is valid JSON.
  EXPECT_TRUE(ParseJson(MetricWindowsToJson(windows.windows())).has_value());
}

}  // namespace
}  // namespace opus::obs
