#include "obs/event_trace.h"

#include <gtest/gtest.h>

namespace opus::obs {
namespace {

TEST(EventTraceTest, SequenceNumbersAreEmissionIndices) {
  EventTrace trace;
  trace.Emit("a");
  trace.Emit("b", {{"k", "v"}});
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[0].seq, 0u);
  EXPECT_EQ(trace.events()[0].kind, "a");
  EXPECT_EQ(trace.events()[1].seq, 1u);
  ASSERT_EQ(trace.events()[1].fields.size(), 1u);
  EXPECT_EQ(trace.events()[1].fields[0].first, "k");
  EXPECT_EQ(trace.events()[1].fields[0].second, "v");
}

TEST(EventTraceTest, RingDropsOldestAndCounts) {
  EventTrace trace(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    trace.Emit("e" + std::to_string(i));
  }
  ASSERT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.events().front().kind, "e2");
  EXPECT_EQ(trace.events().back().kind, "e4");
  // Sequence numbers keep counting from the global logical clock.
  EXPECT_EQ(trace.events().front().seq, 2u);
  EXPECT_EQ(trace.total_emitted(), 5u);
  EXPECT_EQ(trace.dropped(), 2u);
}

TEST(EventTraceTest, TextExportGolden) {
  EventTrace trace;
  trace.Emit("worker.failed", {{"worker", "2"}, {"lost_bytes", "1024"}});
  trace.Emit("realloc.applied");
  EXPECT_EQ(EventsToText(trace.Snapshot()),
            "0 worker.failed worker=2 lost_bytes=1024\n"
            "1 realloc.applied\n");
}

TEST(EventTraceTest, CsvExportGolden) {
  EventTrace trace;
  trace.Emit("a", {{"x", "1"}, {"y", "2"}});
  EXPECT_EQ(EventsToCsv(trace.Snapshot()),
            "seq,kind,fields\n"
            "0,a,x=1 y=2\n");
}

TEST(EventTraceTest, JsonExportContainsFields) {
  EventTrace trace;
  trace.Emit("a", {{"x", "1"}});
  const std::string json = EventsToJson(trace.Snapshot());
  EXPECT_NE(json.find("\"seq\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"a\""), std::string::npos);
  EXPECT_NE(json.find("\"x\": \"1\""), std::string::npos);
}

TEST(EventTraceTest, ExportEventsDispatchesOnFormat) {
  EventTrace trace;
  trace.Emit("a");
  const auto events = trace.Snapshot();
  EXPECT_EQ(ExportEvents(events, ExportFormat::kText), EventsToText(events));
  EXPECT_EQ(ExportEvents(events, ExportFormat::kCsv), EventsToCsv(events));
  EXPECT_EQ(ExportEvents(events, ExportFormat::kJson), EventsToJson(events));
}

}  // namespace
}  // namespace opus::obs
