#include "obs/json.h"

#include <gtest/gtest.h>

namespace opus::obs {
namespace {

TEST(JsonEscapeTest, QuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
  // Non-ASCII bytes pass through untouched (UTF-8 stays UTF-8).
  EXPECT_EQ(JsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(CsvEscapeTest, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("two\nlines"), "\"two\nlines\"");
  EXPECT_EQ(CsvEscape(""), "");
}

TEST(ParseJsonTest, Scalars) {
  EXPECT_EQ(ParseJson("true")->bool_value, true);
  EXPECT_EQ(ParseJson("false")->bool_value, false);
  EXPECT_EQ(ParseJson("null")->kind, JsonValue::Kind::kNull);
  EXPECT_DOUBLE_EQ(ParseJson("-3.5e2")->number, -350.0);
  EXPECT_EQ(ParseJson("\"a\\n\\\"b\"")->text, "a\n\"b");
}

TEST(ParseJsonTest, ObjectKeepsMemberOrder) {
  const auto v = ParseJson("{\"z\": 1, \"a\": 2, \"z\": 3}");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  ASSERT_EQ(v->members.size(), 3u);
  EXPECT_EQ(v->members[0].first, "z");
  EXPECT_EQ(v->members[1].first, "a");
  // Find returns the first member with the key.
  EXPECT_DOUBLE_EQ(v->Find("z")->number, 1.0);
}

TEST(ParseJsonTest, NestedArraysAndObjects) {
  const auto v = ParseJson("[{\"k\": [1, 2]}, \"s\", 3]");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_array());
  ASSERT_EQ(v->items.size(), 3u);
  const JsonValue* k = v->items[0].Find("k");
  ASSERT_NE(k, nullptr);
  ASSERT_EQ(k->items.size(), 2u);
  EXPECT_DOUBLE_EQ(k->items[1].number, 2.0);
  EXPECT_EQ(v->items[1].text, "s");
}

TEST(ParseJsonTest, LargeIntegersSurviveViaRawText) {
  // 2^63 - 1 is not representable as a double; UintOr re-parses the raw
  // source text.
  const auto v = ParseJson("9223372036854775807");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->UintOr(0), 9223372036854775807ull);
}

TEST(ParseJsonTest, RejectsMalformedAndTrailingGarbage) {
  EXPECT_FALSE(ParseJson("").has_value());
  EXPECT_FALSE(ParseJson("{").has_value());
  EXPECT_FALSE(ParseJson("[1,]").has_value());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").has_value());
  EXPECT_FALSE(ParseJson("1 2").has_value());
  EXPECT_FALSE(ParseJson("\"unterminated").has_value());
  // Trailing whitespace is fine.
  EXPECT_TRUE(ParseJson("42 \n").has_value());
}

TEST(ParseJsonTest, AccessorFallbacks) {
  const auto v = ParseJson("{\"s\": \"x\", \"n\": 7}");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->Find("s")->StringOr("d"), "x");
  EXPECT_EQ(v->Find("s")->NumberOr(-1.0), -1.0);  // mistyped -> fallback
  EXPECT_EQ(v->Find("n")->UintOr(0), 7u);
  EXPECT_EQ(v->Find("missing"), nullptr);
}

}  // namespace
}  // namespace opus::obs
