// FlightRecorder — ring bounds/drop accounting, epoch rebasing, and the
// Perfetto round-trip through the existing span loader (the property the
// daemon's `dump` command and opus_inspect rely on).
#include "obs/flight_recorder.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/latency.h"
#include "obs/span_trace.h"

namespace opus::obs {
namespace {

TEST(FlightRecorderTest, RecordsSpansWithRebasedTicks) {
  FlightRecorder rec;
  const std::uint64_t t0 = MonotonicNanos();
  rec.RecordSpan("phase", t0, t0 + 1000, {{"k", "v"}});
  const std::vector<SpanRecord> spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "phase");
  EXPECT_EQ(spans[0].end_tick - spans[0].begin_tick, 1000u);
  ASSERT_EQ(spans[0].attrs.size(), 1u);
  EXPECT_EQ(spans[0].attrs[0].first, "k");
  EXPECT_EQ(spans[0].attrs[0].second, "v");
}

TEST(FlightRecorderTest, TimesBeforeEpochClampToZero) {
  FlightRecorder rec;
  // A reading taken before the recorder existed must not underflow.
  rec.RecordSpan("early", 0, 1);
  const std::vector<SpanRecord> spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].begin_tick, 0u);
  EXPECT_EQ(spans[0].end_tick, 0u);
}

TEST(FlightRecorderTest, InvertedIntervalRecordsZeroDuration) {
  FlightRecorder rec;
  const std::uint64_t now = MonotonicNanos();
  rec.RecordSpan("inverted", now + 500, now + 100);
  const std::vector<SpanRecord> spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].begin_tick, spans[0].end_tick);
}

TEST(FlightRecorderTest, RingDropsOldestAndCounts) {
  FlightRecorderConfig config;
  config.capacity = 4;
  FlightRecorder rec(config);
  for (int i = 0; i < 10; ++i) {
    rec.RecordEvent("e" + std::to_string(i));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  const std::vector<SpanRecord> spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first, ids stable across drops.
  EXPECT_EQ(spans.front().name, "e6");
  EXPECT_EQ(spans.back().name, "e9");
  EXPECT_LT(spans.front().id, spans.back().id);
}

TEST(FlightRecorderTest, ZeroCapacityIsClampedToOne) {
  FlightRecorderConfig config;
  config.capacity = 0;
  FlightRecorder rec(config);
  rec.RecordEvent("a");
  rec.RecordEvent("b");
  EXPECT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec.Snapshot()[0].name, "b");
}

TEST(FlightRecorderTest, DumpRoundTripsThroughPerfettoLoader) {
  FlightRecorder rec;
  const std::uint64_t t0 = MonotonicNanos();
  rec.RecordSpan("serve.drain", t0, t0 + 2000, {{"events", "64"}});
  rec.RecordEvent("daemon.anomaly", {{"reason", "p99_threshold"}});

  RuntimeTelemetry telemetry;
  telemetry.histogram("serve.read.managed_ns").Record(1234);
  const std::string json = rec.DumpPerfettoJson(telemetry.Snapshot());

  const auto parsed = ParseSpansPerfettoJson(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  const std::vector<SpanRecord>& loaded = *parsed;
  // 2 recorded spans + 1 latency instant span.
  ASSERT_EQ(loaded.size(), 3u);
  bool saw_drain = false, saw_anomaly = false, saw_latency = false;
  for (const SpanRecord& s : loaded) {
    if (s.name == "serve.drain") saw_drain = true;
    if (s.name == "daemon.anomaly") saw_anomaly = true;
    if (s.name == "flight.latency.serve.read.managed_ns") {
      saw_latency = true;
      bool saw_count = false;
      for (const auto& [k, v] : s.attrs) {
        if (k == "count") {
          saw_count = true;
          EXPECT_EQ(v, "1");
        }
      }
      EXPECT_TRUE(saw_count);
    }
  }
  EXPECT_TRUE(saw_drain);
  EXPECT_TRUE(saw_anomaly);
  EXPECT_TRUE(saw_latency);
}

TEST(FlightRecorderTest, DumpWithoutLatencyIsJustTheRing) {
  FlightRecorder rec;
  rec.RecordEvent("only");
  const auto loaded = ParseSpansPerfettoJson(rec.DumpPerfettoJson());
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].name, "only");
}

}  // namespace
}  // namespace opus::obs
