#include "obs/span_trace.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace opus::obs {
namespace {

TEST(SpanTraceTest, NestingParentingAndLogicalClock) {
  SpanTrace trace;
  const auto outer = trace.Begin("outer");
  const auto inner = trace.Begin("inner");
  trace.AddAttr(inner, "k", "v");
  trace.End(inner);
  trace.End(outer);

  const auto spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].id, 1u);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].id, 2u);
  EXPECT_EQ(spans[1].parent, 1u);
  // Every Begin and every End advances the logical clock by one.
  EXPECT_EQ(spans[0].begin_tick, 1u);
  EXPECT_EQ(spans[1].begin_tick, 2u);
  EXPECT_EQ(spans[1].end_tick, 3u);
  EXPECT_EQ(spans[0].end_tick, 4u);
  ASSERT_EQ(spans[1].attrs.size(), 1u);
  EXPECT_EQ(spans[1].attrs[0].first, "k");
  EXPECT_EQ(spans[1].attrs[0].second, "v");
  EXPECT_EQ(trace.open_depth(), 0u);
}

TEST(SpanTraceTest, SamplingKeepsEveryNthRootPerName) {
  SpanTraceConfig cfg;
  cfg.sample_every = 2;
  SpanTrace trace(cfg);
  for (int k = 0; k < 4; ++k) {
    const auto root = trace.Begin("frequent");
    const auto child = trace.Begin("stage");
    trace.End(child);
    trace.End(root);
  }
  // A rarer root name has its own ordinal counter, so its first instance
  // is always kept — frequent roots cannot starve rare ones.
  const auto rare = trace.Begin("rare");
  trace.End(rare);

  const auto spans = trace.Snapshot();
  // Roots 0 and 2 of "frequent" (each with its child) plus "rare".
  ASSERT_EQ(spans.size(), 5u);
  EXPECT_EQ(spans[0].name, "frequent");
  EXPECT_EQ(spans[1].name, "stage");
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[4].name, "rare");
  EXPECT_EQ(trace.started(), 9u);
  EXPECT_GT(trace.sampled_out(), 0u);
  // Muted spans still advance the clock: determinism is independent of the
  // sampling configuration.
  EXPECT_EQ(trace.tick(), 18u);
}

TEST(SpanTraceTest, ScopedSpanActiveTracksRecordingState) {
  SpanTraceConfig cfg;
  cfg.sample_every = 2;
  SpanTrace trace(cfg);
  {
    ScopedSpan kept(&trace, "root");  // ordinal 0 -> recorded
    EXPECT_TRUE(kept.active());
    if (kept.active()) kept.AddAttr("k", "v");
  }
  {
    ScopedSpan muted(&trace, "root");  // ordinal 1 -> muted
    EXPECT_FALSE(muted.active());
    // The hot-path pattern: formatting is skipped entirely when inactive,
    // and the span still opens/closes (the clock keeps ticking).
    if (muted.active()) muted.AddAttr("k", "never");
    ScopedSpan child(&trace, "child");
    EXPECT_FALSE(child.active());  // causally muted under a muted parent
  }
  ScopedSpan inert;  // no trace attached
  EXPECT_FALSE(inert.active());
  {
    SpanTraceConfig off;
    off.sample_every = 0;
    SpanTrace disabled(off);
    ScopedSpan span(&disabled, "root");
    EXPECT_FALSE(span.active());
  }
  const auto spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].attrs.size(), 1u);
  EXPECT_EQ(spans[0].attrs[0].second, "v");
  // Muted root + child advanced the clock exactly as the recorded one did:
  // kept(2 ticks) + muted root(2) + child(2) = 6.
  EXPECT_EQ(trace.tick(), 6u);
}

TEST(SpanTraceTest, ChildrenOfMutedSpansAreMuted) {
  SpanTraceConfig cfg;
  cfg.sample_every = 2;
  SpanTrace trace(cfg);
  const auto kept = trace.Begin("root");  // ordinal 0 -> kept
  trace.End(kept);
  const auto muted = trace.Begin("root");  // ordinal 1 -> muted
  EXPECT_FALSE(trace.IsRecorded(muted));
  const auto child = trace.Begin("child");
  EXPECT_FALSE(trace.IsRecorded(child));
  trace.AddAttr(child, "k", "v");  // no-op on a muted span
  trace.End(child);
  trace.End(muted);
  const auto spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "root");
}

TEST(SpanTraceTest, DisabledTraceReturnsTokenZero) {
  SpanTraceConfig cfg;
  cfg.sample_every = 0;
  SpanTrace trace(cfg);
  const auto token = trace.Begin("anything");
  EXPECT_EQ(token, 0u);
  trace.AddAttr(token, "k", "v");  // token 0 accepted and ignored
  trace.End(token);
  EXPECT_TRUE(trace.Snapshot().empty());
  EXPECT_FALSE(trace.IsRecorded(0));
}

TEST(SpanTraceTest, CapacityCapDropsAndCounts) {
  SpanTraceConfig cfg;
  cfg.max_spans = 2;
  SpanTrace trace(cfg);
  for (int k = 0; k < 4; ++k) {
    trace.End(trace.Begin("r"));
  }
  EXPECT_EQ(trace.recorded(), 2u);
  EXPECT_EQ(trace.dropped(), 2u);
  // Attaching after the fact catches the counter up on prior drops.
  MetricsRegistry registry;
  Counter& counter = registry.counter("obs.spans.dropped");
  trace.AttachDropCounter(&counter);
  EXPECT_EQ(counter.value(), 2u);
  trace.End(trace.Begin("r"));
  EXPECT_EQ(counter.value(), 3u);
}

TEST(ScopedSpanTest, RaiiAndNullTraceInert) {
  SpanTrace trace;
  {
    ScopedSpan span(&trace, "scoped");
    span.AddAttr("k", "v");
    EXPECT_TRUE(span.recorded());
    ScopedSpan inert(nullptr, "ignored");
    inert.AddAttr("k", "v");
    EXPECT_FALSE(inert.recorded());
    ScopedSpan default_constructed;
    EXPECT_FALSE(default_constructed.recorded());
  }
  const auto spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "scoped");
  EXPECT_GT(spans[0].end_tick, spans[0].begin_tick);
}

TEST(SpanExportTest, PerfettoJsonRoundTrips) {
  SpanTrace trace;
  const auto root = trace.Begin("cluster.read");
  trace.AddAttr(root, "user", "3");
  trace.AddAttr(root, "note", "tricky \"quote\",\ncomma");
  const auto child = trace.Begin("under.read");
  trace.AddAttr(child, "latency_sec", "0.0125");
  trace.End(child);
  trace.End(root);

  const auto spans = trace.Snapshot();
  const std::string json = SpansToPerfettoJson(spans);
  const auto loaded = ParseSpansPerfettoJson(json);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ((*loaded)[i].id, spans[i].id);
    EXPECT_EQ((*loaded)[i].parent, spans[i].parent);
    EXPECT_EQ((*loaded)[i].name, spans[i].name);
    EXPECT_EQ((*loaded)[i].begin_tick, spans[i].begin_tick);
    EXPECT_EQ((*loaded)[i].end_tick, spans[i].end_tick);
    EXPECT_EQ((*loaded)[i].attrs, spans[i].attrs);
  }
}

TEST(SpanExportTest, EmptyExportsAreValid) {
  const std::vector<SpanRecord> empty;
  const auto loaded = ParseSpansPerfettoJson(SpansToPerfettoJson(empty));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
  EXPECT_EQ(SpansToText(empty), "");
  EXPECT_EQ(SpansToCsv(empty), "id,parent,name,begin,end,attrs\n");
}

TEST(SpanExportTest, ParseRejectsMalformed) {
  EXPECT_FALSE(ParseSpansPerfettoJson("not json").has_value());
  EXPECT_FALSE(ParseSpansPerfettoJson("{}").has_value());
  EXPECT_FALSE(
      ParseSpansPerfettoJson("{\"traceEvents\": [{\"ph\": \"X\"}]}")
          .has_value());
}

TEST(SpanExportTest, ExportSpansDispatchesOnFormat) {
  SpanTrace trace;
  trace.End(trace.Begin("a"));
  const auto spans = trace.Snapshot();
  EXPECT_EQ(ExportSpans(spans, ExportFormat::kText), SpansToText(spans));
  EXPECT_EQ(ExportSpans(spans, ExportFormat::kCsv), SpansToCsv(spans));
  EXPECT_EQ(ExportSpans(spans, ExportFormat::kJson),
            SpansToPerfettoJson(spans));
}

}  // namespace
}  // namespace opus::obs
