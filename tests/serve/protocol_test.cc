// Frame protocol: length-prefixed round trips, EOF handling, and the
// oversize-length guard (a corrupt prefix must not drive a giant
// allocation).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "serve/protocol.h"

namespace opus::serve {
namespace {

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(ProtocolTest, RoundTripsPayloads) {
  SocketPair pair;
  const std::vector<std::string> payloads = {
      "ping", "", "line one\nline two\n",
      std::string(100000, 'x') + std::string(1, '\0') + "tail"};
  for (const std::string& payload : payloads) {
    ASSERT_TRUE(WriteFrame(pair.a, payload));
    std::string got = "sentinel";
    ASSERT_TRUE(ReadFrame(pair.b, &got));
    EXPECT_EQ(got, payload);  // exact bytes, embedded NUL included
  }
}

TEST(ProtocolTest, PreservesFrameBoundaries) {
  SocketPair pair;
  ASSERT_TRUE(WriteFrame(pair.a, "first"));
  ASSERT_TRUE(WriteFrame(pair.a, "second"));
  std::string got;
  ASSERT_TRUE(ReadFrame(pair.b, &got));
  EXPECT_EQ(got, "first");
  ASSERT_TRUE(ReadFrame(pair.b, &got));
  EXPECT_EQ(got, "second");
}

TEST(ProtocolTest, ReadFailsCleanlyOnEof) {
  SocketPair pair;
  ::close(pair.a);
  pair.a = -1;
  std::string got;
  EXPECT_FALSE(ReadFrame(pair.b, &got));
}

TEST(ProtocolTest, ReadFailsOnTruncatedFrame) {
  SocketPair pair;
  const char partial[] = {8, 0, 0, 0, 'h', 'i'};  // claims 8, sends 2
  ASSERT_EQ(::write(pair.a, partial, sizeof(partial)),
            static_cast<ssize_t>(sizeof(partial)));
  ::close(pair.a);
  pair.a = -1;
  std::string got;
  EXPECT_FALSE(ReadFrame(pair.b, &got));
}

TEST(ProtocolTest, RejectsOversizeLengthPrefix) {
  SocketPair pair;
  const unsigned char prefix[4] = {0xff, 0xff, 0xff, 0xff};  // ~4 GiB claim
  ASSERT_EQ(::write(pair.a, prefix, sizeof(prefix)),
            static_cast<ssize_t>(sizeof(prefix)));
  std::string got;
  EXPECT_FALSE(ReadFrame(pair.b, &got));
  EXPECT_TRUE(got.empty());  // guard fired before any allocation
}

TEST(ProtocolTest, WriterRefusesOversizePayload) {
  SocketPair pair;
  // Don't materialize 64 MiB: a tight custom cap exercises the same check
  // via ReadFrame's max_payload parameter.
  ASSERT_TRUE(WriteFrame(pair.a, std::string(64, 'y')));
  std::string got;
  EXPECT_FALSE(ReadFrame(pair.b, &got, /*max_payload=*/16));
}

TEST(ProtocolTest, DialFailsWithoutListener) {
  EXPECT_LT(DialUnix("/tmp/opus-test-no-such-socket.sock"), 0);
}

}  // namespace
}  // namespace opus::serve
