// Frame protocol: length-prefixed round trips, EOF handling, and the
// oversize-length guard (a corrupt prefix must not drive a giant
// allocation).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "serve/protocol.h"

namespace opus::serve {
namespace {

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(ProtocolTest, RoundTripsPayloads) {
  SocketPair pair;
  const std::vector<std::string> payloads = {
      "ping", "", "line one\nline two\n",
      std::string(100000, 'x') + std::string(1, '\0') + "tail"};
  for (const std::string& payload : payloads) {
    ASSERT_TRUE(WriteFrame(pair.a, payload));
    std::string got = "sentinel";
    ASSERT_TRUE(ReadFrame(pair.b, &got));
    EXPECT_EQ(got, payload);  // exact bytes, embedded NUL included
  }
}

TEST(ProtocolTest, PreservesFrameBoundaries) {
  SocketPair pair;
  ASSERT_TRUE(WriteFrame(pair.a, "first"));
  ASSERT_TRUE(WriteFrame(pair.a, "second"));
  std::string got;
  ASSERT_TRUE(ReadFrame(pair.b, &got));
  EXPECT_EQ(got, "first");
  ASSERT_TRUE(ReadFrame(pair.b, &got));
  EXPECT_EQ(got, "second");
}

TEST(ProtocolTest, ReadFailsCleanlyOnEof) {
  SocketPair pair;
  ::close(pair.a);
  pair.a = -1;
  std::string got;
  EXPECT_FALSE(ReadFrame(pair.b, &got));
}

TEST(ProtocolTest, ReadFailsOnTruncatedFrame) {
  SocketPair pair;
  const char partial[] = {8, 0, 0, 0, 'h', 'i'};  // claims 8, sends 2
  ASSERT_EQ(::write(pair.a, partial, sizeof(partial)),
            static_cast<ssize_t>(sizeof(partial)));
  ::close(pair.a);
  pair.a = -1;
  std::string got;
  EXPECT_FALSE(ReadFrame(pair.b, &got));
}

TEST(ProtocolTest, RejectsOversizeLengthPrefix) {
  SocketPair pair;
  const unsigned char prefix[4] = {0xff, 0xff, 0xff, 0xff};  // ~4 GiB claim
  ASSERT_EQ(::write(pair.a, prefix, sizeof(prefix)),
            static_cast<ssize_t>(sizeof(prefix)));
  std::string got;
  EXPECT_FALSE(ReadFrame(pair.b, &got));
  EXPECT_TRUE(got.empty());  // guard fired before any allocation
}

TEST(ProtocolTest, WriterRefusesOversizePayload) {
  SocketPair pair;
  // Don't materialize 64 MiB: a tight custom cap exercises the same check
  // via ReadFrame's max_payload parameter.
  ASSERT_TRUE(WriteFrame(pair.a, std::string(64, 'y')));
  std::string got;
  EXPECT_FALSE(ReadFrame(pair.b, &got, /*max_payload=*/16));
}

TEST(ProtocolTest, DialFailsWithoutListener) {
  EXPECT_LT(DialUnix("/tmp/opus-test-no-such-socket.sock"), 0);
}

TEST(ProtocolTest, FrameSplitterAssemblesByteAtATime) {
  const std::string wire =
      EncodeFrame("hello") + EncodeFrame("") + EncodeFrame("world\n!");
  FrameSplitter splitter;
  std::vector<std::string> frames;
  std::string payload;
  for (const char c : wire) {
    splitter.Append(&c, 1);
    while (splitter.Next(&payload) == FrameSplitter::Result::kFrame) {
      frames.push_back(payload);
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0], "hello");
  EXPECT_EQ(frames[1], "");
  EXPECT_EQ(frames[2], "world\n!");
  EXPECT_EQ(splitter.pending_bytes(), 0u);
}

TEST(ProtocolTest, FrameSplitterReturnsSeveralFramesPerAppend) {
  // The pipelining case: one recv() carrying many whole frames.
  const std::string wire = EncodeFrame("a") + EncodeFrame("bb") +
                           EncodeFrame("ccc") + EncodeFrame("dddd");
  FrameSplitter splitter;
  splitter.Append(wire.data(), wire.size());
  std::string payload;
  for (const char* want : {"a", "bb", "ccc", "dddd"}) {
    ASSERT_EQ(splitter.Next(&payload), FrameSplitter::Result::kFrame);
    EXPECT_EQ(payload, want);
  }
  EXPECT_EQ(splitter.Next(&payload), FrameSplitter::Result::kNeedMore);
}

TEST(ProtocolTest, FrameSplitterNeedsMoreOnPartialFrame) {
  const std::string wire = EncodeFrame("stalled");
  FrameSplitter splitter;
  splitter.Append(wire.data(), wire.size() - 1);  // withhold the last byte
  std::string payload;
  EXPECT_EQ(splitter.Next(&payload), FrameSplitter::Result::kNeedMore);
  splitter.Append(wire.data() + wire.size() - 1, 1);
  ASSERT_EQ(splitter.Next(&payload), FrameSplitter::Result::kFrame);
  EXPECT_EQ(payload, "stalled");
}

TEST(ProtocolTest, FrameSplitterFlagsOversizePrefix) {
  const unsigned char prefix[4] = {0xff, 0xff, 0xff, 0xff};  // ~4 GiB claim
  FrameSplitter splitter;
  splitter.Append(reinterpret_cast<const char*>(prefix), sizeof(prefix));
  std::string payload;
  EXPECT_EQ(splitter.Next(&payload), FrameSplitter::Result::kOversize);
}

TEST(ProtocolTest, TcpRoundTripOnKernelAssignedPort) {
  std::uint16_t port = 0;
  const int listener = ListenTcp(/*port=*/0, /*backlog=*/4, &port);
  ASSERT_GE(listener, 0);
  ASSERT_GT(port, 0);
  const int client = DialTcp("127.0.0.1:" + std::to_string(port));
  ASSERT_GE(client, 0);
  // The listener is non-blocking; a just-connected client may race the
  // accept, so spin briefly.
  int server = -1;
  for (int i = 0; i < 1000 && server < 0; ++i) {
    server = ::accept(listener, nullptr, nullptr);
    if (server < 0) ::usleep(1000);
  }
  ASSERT_GE(server, 0);
  ASSERT_TRUE(WriteFrame(client, "ping over tcp"));
  std::string got;
  ASSERT_TRUE(ReadFrame(server, &got));
  EXPECT_EQ(got, "ping over tcp");
  ASSERT_TRUE(WriteFrame(server, "ok pong"));
  ASSERT_TRUE(ReadFrame(client, &got));
  EXPECT_EQ(got, "ok pong");
  ::close(server);
  ::close(client);
  ::close(listener);
}

TEST(ProtocolTest, DialTcpRejectsMalformedTarget) {
  EXPECT_LT(DialTcp("no-port-here"), 0);
  EXPECT_LT(DialTcp(":7070"), 0);
  EXPECT_LT(DialTcp("127.0.0.1:"), 0);
}

}  // namespace
}  // namespace opus::serve
